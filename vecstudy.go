// Package vecstudy is the public face of a from-scratch Go reproduction
// of "Are There Fundamental Limitations in Supporting Vector Data
// Management in Relational Databases? A Case Study of PostgreSQL"
// (ICDE 2024).
//
// The library contains two complete vector-database engines built from
// scratch plus the study harness that compares them:
//
//   - a specialized engine (Faiss-analog): in-memory IVF_FLAT, IVF_PQ,
//     and HNSW over flat float32 arrays;
//   - a generalized engine (PASE-analog): the same three indexes
//     implemented as index access methods over a PostgreSQL-style
//     substrate — slotted 8 KiB pages, shared buffer pool with clock
//     sweep, heap tables with TIDs, WAL, catalog, and a mini SQL layer;
//   - the root-cause toggles (RC#1–RC#7) and per-figure benchmark
//     drivers that regenerate the paper's evaluation.
//
// Quick start (see examples/quickstart for the full program):
//
//	ds := vecstudy.GenerateDataset("sift1m", 0.02, 42)
//	ds.ComputeGroundTruth(10, 0)
//	p := vecstudy.Defaults(ds)
//	cmp, err := vecstudy.CompareBoth(vecstudy.IVFFlat, ds, p)
//	fmt.Println(cmp.SpecSearch, cmp.GenSearch)
//
// Or drive the generalized engine through SQL:
//
//	db, _ := vecstudy.OpenDB(vecstudy.DBConfig{})
//	sess := vecstudy.NewSession(db)
//	sess.Execute("CREATE TABLE t (id int, vec float[])")
//	sess.Execute("CREATE INDEX i ON t USING ivfflat (vec) WITH (clusters=256)")
//	sess.Execute("SELECT id FROM t ORDER BY vec <-> '{0.1,0.2}' LIMIT 10")
package vecstudy

import (
	"vecstudy/internal/core"
	"vecstudy/internal/dataset"
	"vecstudy/internal/kmeans"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"

	_ "vecstudy/internal/pase/all" // register the generalized index AMs
)

// Re-exported comparison-framework types. See internal/core for the full
// documentation of each.
type (
	// Params carries the paper's Table II parameters and the RC toggles.
	Params = core.Params
	// IndexKind selects IVF_FLAT, IVF_PQ, or HNSW.
	IndexKind = core.IndexKind
	// Engine identifies the specialized or generalized engine.
	Engine = core.Engine
	// BuildResult reports one index construction.
	BuildResult = core.BuildResult
	// SearchResult reports one query workload.
	SearchResult = core.SearchResult
	// Comparison pairs both engines' results for one experiment cell.
	Comparison = core.Comparison
	// Index is the engine-neutral searchable handle.
	Index = core.Index
	// Dataset is a generated or loaded workload.
	Dataset = dataset.Dataset
	// KMeansFlavor selects the RC#5 K-means implementation.
	KMeansFlavor = kmeans.Flavor
	// DBConfig configures the generalized engine's database.
	DBConfig = db.Config
	// DB is the generalized engine's database.
	DB = db.DB
	// Session executes SQL against a DB.
	Session = sql.Session
)

// Index kinds (paper Sec II-B).
const (
	IVFFlat = core.IVFFlat
	IVFPQ   = core.IVFPQ
	HNSW    = core.HNSW
)

// Engines under study.
const (
	Specialized         = core.Specialized
	Generalized         = core.Generalized
	GeneralizedBaseline = core.GeneralizedBaseline
)

// K-means flavours (RC#5).
const (
	KMeansFaiss = kmeans.FlavorFaiss
	KMeansPASE  = kmeans.FlavorPASE
)

// GenerateDataset synthesizes one of the paper's six workloads (sift1m,
// gist1m, deep1m, sift10m, deep10m, turing10m) at the given scale
// (1.0 = paper scale; 0.02 is the laptop default).
func GenerateDataset(profile string, scale float64, seed int64) (*Dataset, error) {
	p, err := dataset.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(p, dataset.GenOptions{Scale: scale, Seed: seed}), nil
}

// LoadFvecs reads base and query fvecs files (the TEXMEX format the real
// SIFT/GIST/Deep datasets ship in) into a Dataset.
func LoadFvecs(name, basePath, queryPath string, maxBase, maxQueries int) (*Dataset, error) {
	base, err := dataset.ReadFvecs(basePath, maxBase)
	if err != nil {
		return nil, err
	}
	queries, err := dataset.ReadFvecs(queryPath, maxQueries)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Dim: base.D, Base: base, Queries: queries}, nil
}

// Defaults resolves the paper's default parameters for a dataset.
func Defaults(ds *Dataset) Params { return core.Defaults(ds) }

// BuildSpecialized builds a Faiss-style in-memory index.
func BuildSpecialized(kind IndexKind, ds *Dataset, p Params) (*core.SpecializedIndex, BuildResult, error) {
	return core.BuildSpecialized(kind, ds, p)
}

// BuildGeneralized loads the dataset into a PostgreSQL-style database and
// builds a PASE-style index on it.
func BuildGeneralized(kind IndexKind, ds *Dataset, p Params) (*core.GeneralizedIndex, BuildResult, error) {
	return core.BuildGeneralized(kind, ds, p)
}

// CompareBoth runs the full build+search comparison for one index kind.
func CompareBoth(kind IndexKind, ds *Dataset, p Params) (Comparison, error) {
	return core.CompareBoth(kind, ds, p)
}

// RunSearch runs every dataset query through an index.
func RunSearch(ix Index, ds *Dataset, k int) (SearchResult, error) {
	return core.RunSearch(ix, ds, k)
}

// OpenDB opens a generalized-engine database (in-memory when cfg.Dir is
// empty).
func OpenDB(cfg DBConfig) (*DB, error) { return db.Open(cfg) }

// NewSession opens a SQL session on a database.
func NewSession(d *DB) *Session { return sql.NewSession(d) }
