module vecstudy

go 1.22
