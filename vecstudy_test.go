package vecstudy

import (
	"path/filepath"
	"testing"

	"vecstudy/internal/dataset"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	ds, err := GenerateDataset("sift1m", 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds.ComputeGroundTruth(10, 0)
	p := Defaults(ds)
	p.K = 10
	cmp, err := CompareBoth(IVFFlat, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SpecSearch.Recall < 0.7 || cmp.GenSearch.Recall < 0.7 {
		t.Errorf("recalls: %.3f / %.3f", cmp.SpecSearch.Recall, cmp.GenSearch.Recall)
	}
}

func TestPublicAPIUnknownProfile(t *testing.T) {
	if _, err := GenerateDataset("bogus", 1, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestPublicSQLFlow(t *testing.T) {
	db, err := OpenDB(DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := NewSession(db)
	for _, q := range []string{
		"CREATE TABLE t (id int, vec float[])",
		"INSERT INTO t VALUES (1, '{1,0}'), (2, '{0,1}'), (3, '{5,5}')",
	} {
		if _, err := sess.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := sess.Execute("SELECT id FROM t ORDER BY vec <-> '{4.9,4.9}' LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int32) != 3 {
		t.Errorf("nearest = %v", res.Rows[0][0])
	}
}

func TestLoadFvecsRoundTrip(t *testing.T) {
	ds, err := GenerateDataset("deep1m", 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.fvecs")
	query := filepath.Join(dir, "query.fvecs")
	if err := dataset.WriteFvecs(base, ds.Base); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFvecs(query, ds.Queries); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFvecs("deep1m", base, query, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != ds.N() || loaded.NQ() != 5 || loaded.Dim != ds.Dim {
		t.Errorf("loaded shape %d×%d, %d queries", loaded.N(), loaded.Dim, loaded.NQ())
	}
}
