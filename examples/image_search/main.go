// image_search simulates the application the paper's introduction
// motivates: similarity search over learned image embeddings. It
// generates a GIST-shaped corpus (960-dim embeddings), builds an HNSW
// index in each engine, and serves "find visually similar images"
// queries, reporting the latency/recall trade-off across efs — the knob
// an application operator actually tunes.
package main

import (
	"fmt"
	"log"
	"time"

	"vecstudy"
)

func main() {
	// 5 000 synthetic "image embeddings" (GIST1M profile: 960 dims).
	ds, err := vecstudy.GenerateDataset("gist1m", 0.005, 11)
	if err != nil {
		log.Fatal(err)
	}
	ds.ComputeGroundTruth(10, 0)
	fmt.Printf("image corpus: %d embeddings × %d dims\n", ds.N(), ds.Dim)

	p := vecstudy.Defaults(ds)
	p.K = 10

	fmt.Println("building HNSW in both engines (bnn=16, efb=40)...")
	spec, sb, err := vecstudy.BuildSpecialized(vecstudy.HNSW, ds, p)
	if err != nil {
		log.Fatal(err)
	}
	gen, gb, err := vecstudy.BuildGeneralized(vecstudy.HNSW, ds, p)
	if err != nil {
		log.Fatal(err)
	}
	defer gen.Close()
	fmt.Printf("  specialized: built in %v, %0.1f MB\n", sb.Total.Round(time.Millisecond), float64(sb.SizeBytes)/(1<<20))
	fmt.Printf("  generalized: built in %v, %0.1f MB (%.1f× larger — RC#4)\n",
		gb.Total.Round(time.Millisecond), float64(gb.SizeBytes)/(1<<20),
		float64(gb.SizeBytes)/float64(sb.SizeBytes))

	fmt.Println("\nlatency/recall trade-off (the operator's efs knob):")
	fmt.Println("efs    engine       avg_query   recall@10")
	for _, efs := range []int{16, 64, 200} {
		spec.SetSearchParams(0, efs, 0)
		gen.SetSearchParams(0, efs, 0)
		for _, entry := range []struct {
			name string
			ix   vecstudy.Index
		}{{"specialized", spec}, {"generalized", gen}} {
			res, err := vecstudy.RunSearch(entry.ix, ds, 10)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-12s %-11v %.3f\n", efs, entry.name,
				res.AvgLatency.Round(time.Microsecond), res.Recall)
		}
	}

	// A concrete query: "images similar to query #3".
	ids, err := gen.Search(ds.Queries.Row(3), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimages most similar to query #3 (generalized engine): %v\n", ids)
}
