// Quickstart: build the same IVF_FLAT index in both engines on a
// synthetic SIFT-shaped workload, search it, and print the paper's
// headline comparison — build time, index size, query latency, recall.
package main

import (
	"fmt"
	"log"

	"vecstudy"
)

func main() {
	// 20k vectors of the SIFT1M profile (128 dims), 50 queries.
	ds, err := vecstudy.GenerateDataset("sift1m", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d vectors × %d dims, %d queries\n", ds.Name, ds.N(), ds.Dim, ds.NQ())

	// Exact ground truth so recall can be reported.
	ds.ComputeGroundTruth(10, 0)

	p := vecstudy.Defaults(ds) // Table II defaults: c=√n, nprobe=20, ...
	p.K = 10

	cmp, err := vecstudy.CompareBoth(vecstudy.IVFFlat, ds, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nIVF_FLAT, identical parameters in both engines:")
	fmt.Println("  build:", cmp.Specialized)
	fmt.Println("  build:", cmp.Generalized)
	fmt.Println("  search:", cmp.SpecSearch)
	fmt.Println("  search:", cmp.GenSearch)
	fmt.Printf("\nthe generalized engine built %.1f× slower and searched %.1f× slower\n",
		cmp.BuildGapX(), cmp.SearchGapX())
	fmt.Println("(the paper's conclusion: every contributor to that gap is an " +
		"implementation issue, not a fundamental limitation — see examples/rootcause_tour)")
}
