// rootcause_tour walks through the paper's seven root causes (RC#1–RC#7)
// one at a time: for each, it flips the single corresponding toggle and
// prints the before/after measurement, demonstrating that every
// contributor to the specialized/generalized gap is an implementation
// choice — the paper's central claim.
package main

import (
	"fmt"
	"log"
	"time"

	"vecstudy"
	"vecstudy/internal/core"
)

func main() {
	ds, err := vecstudy.GenerateDataset("sift1m", 0.01, 3)
	if err != nil {
		log.Fatal(err)
	}
	ds.ComputeGroundTruth(10, 0)
	base := vecstudy.Defaults(ds)
	base.K = 10
	fmt.Printf("workload: %s at %d vectors\n\n", ds.Name, ds.N())

	rc1(ds, base)
	rc2(ds, base)
	rc3(ds, base)
	rc4(ds, base)
	rc5(ds, base)
	rc6(ds, base)
	rc7(ds, base)
	fmt.Println("\nevery gap above moved with a single implementation toggle — no fundamental limitation.")
}

func rc1(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#1 — SGEMM batching in the IVF adding phase")
	for _, gemm := range []bool{false, true} {
		p := base
		p.UseGemm = gemm
		ix, br, err := vecstudy.BuildSpecialized(vecstudy.IVFFlat, ds, p)
		if err != nil {
			log.Fatal(err)
		}
		ix.Close()
		fmt.Printf("  sgemm=%-5v add-phase %v\n", gemm, br.AddTime.Round(time.Millisecond))
	}
}

func rc2(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#2 — buffer-manager tuple access (engine-inherent)")
	cmp, err := vecstudy.CompareBoth(vecstudy.HNSW, ds, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  specialized HNSW search %v, generalized %v (%.1f× — page indirection)\n",
		cmp.SpecSearch.AvgLatency.Round(time.Microsecond),
		cmp.GenSearch.AvgLatency.Round(time.Microsecond), cmp.SearchGapX())
}

func rc3(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#3 — parallel search: local heaps vs one locked global heap")
	p := base
	p.NProbe = p.C / 2
	spec, _, err := vecstudy.BuildSpecialized(vecstudy.IVFFlat, ds, p)
	if err != nil {
		log.Fatal(err)
	}
	gen, _, err := vecstudy.BuildGeneralized(vecstudy.IVFFlat, ds, p)
	if err != nil {
		log.Fatal(err)
	}
	defer gen.Close()
	for _, threads := range []int{1, 8} {
		spec.SetSearchParams(0, 0, threads)
		gen.SetSearchParams(0, 0, threads)
		sres, err := vecstudy.RunSearch(spec, ds, p.K)
		if err != nil {
			log.Fatal(err)
		}
		gres, err := vecstudy.RunSearch(gen, ds, p.K)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  threads=%d: specialized %v, generalized %v\n", threads,
			sres.AvgLatency.Round(time.Microsecond), gres.AvgLatency.Round(time.Microsecond))
	}
}

func rc4(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#4 — page-granular HNSW adjacency storage")
	for _, pageSize := range []int{8192, 4096} {
		p := base
		p.PageSize = pageSize
		gen, br, err := vecstudy.BuildGeneralized(vecstudy.HNSW, ds, p)
		if err != nil {
			log.Fatal(err)
		}
		gen.Close()
		fmt.Printf("  page=%dB: index %.1f MB\n", pageSize, float64(br.SizeBytes)/(1<<20))
	}
}

func rc5(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#5 — K-means implementation (cluster balance)")
	for _, flavor := range []vecstudy.KMeansFlavor{vecstudy.KMeansFaiss, vecstudy.KMeansPASE} {
		p := base
		p.KMeansFlavor = flavor
		ix, _, err := vecstudy.BuildSpecialized(vecstudy.IVFFlat, ds, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vecstudy.RunSearch(ix, ds, p.K)
		if err != nil {
			log.Fatal(err)
		}
		ix.Close()
		fmt.Printf("  kmeans=%-5s avg query %v, recall %.3f\n", flavor,
			res.AvgLatency.Round(time.Microsecond), res.Recall)
	}
}

func rc6(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#6 — top-k heap of size n vs size k (generalized engine)")
	gen, _, err := vecstudy.BuildGeneralized(vecstudy.IVFFlat, ds, base)
	if err != nil {
		log.Fatal(err)
	}
	defer gen.Close()
	for _, heap := range []string{"n", "k"} {
		gen.AMParams()["heap"] = heap
		res, err := vecstudy.RunSearch(gen, ds, base.K)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  heap=size-%s: avg query %v (recall %.3f)\n", heap,
			res.AvgLatency.Round(time.Microsecond), res.Recall)
	}
}

func rc7(ds *vecstudy.Dataset, base vecstudy.Params) {
	fmt.Println("RC#7 — IVF_PQ precomputed distance tables")
	for _, pre := range []bool{false, true} {
		p := base
		p.PrecomputeTable = pre
		p.NProbe = 50
		ix, _, err := vecstudy.BuildSpecialized(core.IVFPQ, ds, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vecstudy.RunSearch(ix, ds, p.K)
		if err != nil {
			log.Fatal(err)
		}
		ix.Close()
		fmt.Printf("  precomputed=%-5v avg query %v at nprobe=50\n", pre,
			res.AvgLatency.Round(time.Microsecond))
	}
}
