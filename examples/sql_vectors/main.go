// sql_vectors replays the paper's Sec II-E workflow through the SQL
// layer of the generalized engine: create the (id, vec) table, load
// vectors, create a PASE-style IVF_FLAT index with WITH options, set the
// scan parameter, and run top-k vector search with ORDER BY ... LIMIT.
package main

import (
	"fmt"
	"log"
	"strings"

	"vecstudy"
)

func main() {
	db, err := vecstudy.OpenDB(vecstudy.DBConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := vecstudy.NewSession(db)

	mustExec(sess, "CREATE TABLE items (id int, vec float[])")

	// Load 2 000 vectors on a 3-D spiral so neighbors are predictable.
	ds, err := vecstudy.GenerateDataset("deep1m", 0.002, 7)
	if err != nil {
		log.Fatal(err)
	}
	var batch strings.Builder
	for i := 0; i < ds.N(); i++ {
		if batch.Len() == 0 {
			batch.WriteString("INSERT INTO items VALUES ")
		} else {
			batch.WriteString(", ")
		}
		fmt.Fprintf(&batch, "(%d, '%s')", i, vecLiteral(ds.Base.Row(i)))
		if (i+1)%500 == 0 || i == ds.N()-1 {
			mustExec(sess, batch.String())
			batch.Reset()
		}
	}
	fmt.Printf("loaded %d rows\n", ds.N())

	// The paper's CREATE INDEX with PASE-style WITH options.
	mustExec(sess, "CREATE INDEX items_ivf ON items USING ivfflat (vec) WITH (clusters = 45, sample_ratio = 0.1, seed = 1)")
	mustExec(sess, "SET nprobe = 10")

	query := vecLiteral(ds.Queries.Row(0))
	show(sess, "EXPLAIN SELECT id FROM items ORDER BY vec <-> '"+query+"' LIMIT 5")
	show(sess, "SELECT id, distance FROM items ORDER BY vec <-> '"+query+"'::pase ASC LIMIT 5")

	// The same query without an index on a second table uses the exact
	// brute-force plan — handy for validating index answers.
	mustExec(sess, "SET nprobe = 45")
	show(sess, "SELECT id, distance FROM items ORDER BY vec <-> '"+query+"' LIMIT 5")
}

func vecLiteral(v []float32) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = fmt.Sprintf("%g", f)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func mustExec(sess *vecstudy.Session, sql string) {
	if _, err := sess.Execute(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func show(sess *vecstudy.Session, sql string) {
	fmt.Println("\n=>", sql)
	res, err := sess.Execute(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}
