// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation. Each BenchmarkFigN/BenchmarkTabN mirrors the corresponding
// experiment in internal/bench (which prints the full rows); these
// targets make the same comparisons runnable under `go test -bench`.
//
// Scale: benchmarks default to a small dataset (VECSTUDY_BENCH_SCALE
// overrides, default 0.005 ⇒ 5 000 vectors for 1M-class profiles) so the
// whole suite finishes in minutes. Gap *ratios*, not absolute times, are
// the quantity to read. Non-time quantities (index size) are emitted as
// custom metrics.
package vecstudy

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"vecstudy/internal/core"
	"vecstudy/internal/dataset"
)

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
)

// benchDataset returns the shared benchmark dataset (sift1m profile).
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		scale := 0.005
		if s := os.Getenv("VECSTUDY_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		p, err := dataset.ProfileByName("sift1m")
		if err != nil {
			panic(err)
		}
		benchDS = dataset.Generate(p, dataset.GenOptions{Scale: scale, Seed: 42, MaxQueries: 50})
		benchDS.ComputeGroundTruth(10, 0)
	})
	return benchDS
}

func benchParams(ds *dataset.Dataset) core.Params {
	p := core.Defaults(ds)
	p.K = 10
	return p
}

// benchBuild times one full index construction per iteration.
func benchBuild(b *testing.B, kind core.IndexKind, engine core.Engine, mutate func(*core.Params)) {
	ds := benchDataset(b)
	p := benchParams(ds)
	if mutate != nil {
		mutate(&p)
	}
	var lastSize int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i) // vary seed so no hidden caching skews runs
		switch engine {
		case core.Specialized:
			ix, br, err := core.BuildSpecialized(kind, ds, p)
			if err != nil {
				b.Fatal(err)
			}
			lastSize = br.SizeBytes
			ix.Close()
		default:
			ix, br, err := core.BuildGeneralized(kind, ds, p)
			if err != nil {
				b.Fatal(err)
			}
			lastSize = br.SizeBytes
			ix.Close()
		}
	}
	b.ReportMetric(float64(lastSize), "index-bytes")
}

// tunableIndex is an Index whose scan-time parameters can be adjusted
// without rebuilding; both engines' handles implement it.
type tunableIndex interface {
	core.Index
	SetSearchParams(nprobe, efs, threads int)
}

var (
	searchIdxMu    sync.Mutex
	searchIdxCache = map[string]tunableIndex{}
)

// cachedIndex builds (or reuses) an index whose build-time configuration
// matches p; scan-time knobs are applied afterwards. Search benchmarks
// across nprobe/efs/threads sweeps then share one build.
func cachedIndex(b *testing.B, kind core.IndexKind, engine core.Engine, p core.Params) tunableIndex {
	b.Helper()
	key := fmt.Sprintf("%s|%s|c=%d|m=%d|ks=%d|bnn=%d|efb=%d|gemm=%v|bt=%d|kf=%v|pre=%v|ps=%d|seed=%d",
		kind, engine, p.C, p.M, p.KSub, p.BNN, p.EFB, p.UseGemm, p.BuildThreads,
		p.KMeansFlavor, p.PrecomputeTable, p.PageSize, p.Seed)
	searchIdxMu.Lock()
	defer searchIdxMu.Unlock()
	if ix, ok := searchIdxCache[key]; ok {
		return ix
	}
	ds := benchDataset(b)
	var ix tunableIndex
	var err error
	switch engine {
	case core.Specialized:
		ix, _, err = core.BuildSpecialized(kind, ds, p)
	case core.GeneralizedBaseline:
		ix, _, err = core.BuildGeneralizedBaseline(ds, p)
	default:
		ix, _, err = core.BuildGeneralized(kind, ds, p)
	}
	if err != nil {
		b.Fatal(err)
	}
	searchIdxCache[key] = ix
	return ix
}

// benchSearch builds (or reuses) an index, then times queries.
func benchSearch(b *testing.B, kind core.IndexKind, engine core.Engine, mutate func(*core.Params)) {
	ds := benchDataset(b)
	p := benchParams(ds)
	if mutate != nil {
		mutate(&p)
	}
	ix := cachedIndex(b, kind, engine, p)
	ix.SetSearchParams(p.NProbe, p.EFS, p.SearchThreads)
	if err := core.WarmUp(ix, ds, p.K, 4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries.Row(i % ds.NQ())
		if _, err := ix.Search(q, p.K); err != nil {
			b.Fatal(err)
		}
	}
}

func engines() []core.Engine { return []core.Engine{core.Specialized, core.Generalized} }

func engineName(e core.Engine) string {
	switch e {
	case core.Specialized:
		return "specialized"
	case core.GeneralizedBaseline:
		return "pgvector_style"
	default:
		return "generalized"
	}
}

// BenchmarkFig2 compares the two generalized access methods' search.
func BenchmarkFig2(b *testing.B) {
	for _, e := range []core.Engine{core.Generalized, core.GeneralizedBaseline} {
		b.Run(engineName(e), func(b *testing.B) {
			benchSearch(b, core.IVFFlat, e, nil)
		})
	}
}

// BenchmarkFig3 is IVF_FLAT construction (SGEMM on).
func BenchmarkFig3(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchBuild(b, core.IVFFlat, e, nil) })
	}
}

// BenchmarkFig4 is IVF_FLAT construction with SGEMM disabled.
func BenchmarkFig4(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) {
			benchBuild(b, core.IVFFlat, e, func(p *core.Params) { p.UseGemm = false })
		})
	}
}

// BenchmarkFig5 is IVF_PQ construction.
func BenchmarkFig5(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchBuild(b, core.IVFPQ, e, nil) })
	}
}

// BenchmarkFig6 is IVF_PQ construction with SGEMM disabled.
func BenchmarkFig6(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) {
			benchBuild(b, core.IVFPQ, e, func(p *core.Params) { p.UseGemm = false })
		})
	}
}

// BenchmarkFig7 is HNSW construction (and Tab3's phase totals come from
// the same build; run `benchrunner -exp tab3` for the breakdown rows).
func BenchmarkFig7(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchBuild(b, core.HNSW, e, nil) })
	}
}

// BenchmarkTab3 rebuilds HNSW with phase profiling enabled and reports
// the dominant phase share as a metric.
func BenchmarkTab3(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) {
			benchBuild(b, core.HNSW, e, nil)
		})
	}
}

// BenchmarkFig8 approximates the SearchNbToAdd-dominance check: HNSW
// build per engine (see benchrunner -exp fig8 for the sub-breakdown).
func BenchmarkFig8(b *testing.B) {
	BenchmarkTab3(b)
}

// BenchmarkFig9 sweeps specialized build threads × SGEMM.
func BenchmarkFig9(b *testing.B) {
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, gemm := range []bool{true, false} {
			for _, threads := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%s/gemm=%v/threads=%d", kind, gemm, threads)
				b.Run(name, func(b *testing.B) {
					benchBuild(b, kind, core.Specialized, func(p *core.Params) {
						p.UseGemm = gemm
						p.BuildThreads = threads
					})
				})
			}
		}
	}
}

// BenchmarkFig10 sweeps c (IVF kinds) and bnn (HNSW) for the build gap.
func BenchmarkFig10(b *testing.B) {
	ds := benchDataset(b)
	base := benchParams(ds)
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, c := range []int{base.C / 2, base.C, base.C * 2} {
			for _, e := range engines() {
				b.Run(fmt.Sprintf("%s/c=%d/%s", kind, c, engineName(e)), func(b *testing.B) {
					benchBuild(b, kind, e, func(p *core.Params) { p.C = c })
				})
			}
		}
	}
	for _, bnn := range []int{16, 32, 64} {
		for _, e := range engines() {
			b.Run(fmt.Sprintf("hnsw/bnn=%d/%s", bnn, engineName(e)), func(b *testing.B) {
				benchBuild(b, core.HNSW, e, func(p *core.Params) { p.BNN = bnn })
			})
		}
	}
}

// benchSize builds once and reports the index size as the metric (Figs
// 11–13 are size charts, not timings).
func benchSize(b *testing.B, kind core.IndexKind, e core.Engine, mutate func(*core.Params)) {
	ds := benchDataset(b)
	p := benchParams(ds)
	if mutate != nil {
		mutate(&p)
	}
	var size int64
	for i := 0; i < b.N; i++ {
		if e == core.Specialized {
			ix, br, err := core.BuildSpecialized(kind, ds, p)
			if err != nil {
				b.Fatal(err)
			}
			size = br.SizeBytes
			ix.Close()
		} else {
			ix, br, err := core.BuildGeneralized(kind, ds, p)
			if err != nil {
				b.Fatal(err)
			}
			size = br.SizeBytes
			ix.Close()
		}
	}
	b.ReportMetric(float64(size), "index-bytes")
}

// BenchmarkFig11 reports IVF_FLAT index sizes.
func BenchmarkFig11(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSize(b, core.IVFFlat, e, nil) })
	}
}

// BenchmarkFig12 reports IVF_PQ index sizes.
func BenchmarkFig12(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSize(b, core.IVFPQ, e, nil) })
	}
}

// BenchmarkFig13 reports HNSW index sizes (the RC#4 blow-up).
func BenchmarkFig13(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSize(b, core.HNSW, e, nil) })
	}
}

// BenchmarkTab4 reports the generalized HNSW size at 8 KiB vs 4 KiB pages.
func BenchmarkTab4(b *testing.B) {
	for _, ps := range []int{8192, 4096} {
		b.Run(fmt.Sprintf("page=%d", ps), func(b *testing.B) {
			benchSize(b, core.HNSW, core.Generalized, func(p *core.Params) { p.PageSize = ps })
		})
	}
}

// BenchmarkFig14 is IVF_FLAT search.
func BenchmarkFig14(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSearch(b, core.IVFFlat, e, nil) })
	}
}

// BenchmarkTab5 is IVF_FLAT search (run `benchrunner -exp tab5` for the
// fvec/tuple/heap breakdown; the timers would distort a tight B loop).
func BenchmarkTab5(b *testing.B) {
	BenchmarkFig14(b)
}

// BenchmarkFig15 searches a Faiss* index (specialized engine, generalized
// centroids) against both parents.
func BenchmarkFig15(b *testing.B) {
	ds := benchDataset(b)
	p := benchParams(ds)
	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		b.Fatal(err)
	}
	defer gen.Close()
	star, err := core.BuildFaissStar(gen, ds, p)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		ix   core.Index
	}{{"faiss_star", star}, {"generalized", gen}}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := v.ix.Search(ds.Queries.Row(i%ds.NQ()), p.K); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16 is IVF_PQ search.
func BenchmarkFig16(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSearch(b, core.IVFPQ, e, nil) })
	}
}

// BenchmarkFig17 is HNSW search.
func BenchmarkFig17(b *testing.B) {
	for _, e := range engines() {
		b.Run(engineName(e), func(b *testing.B) { benchSearch(b, core.HNSW, e, nil) })
	}
}

// BenchmarkFig18 sweeps intra-query search threads on both engines.
func BenchmarkFig18(b *testing.B) {
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, e := range engines() {
			for _, threads := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", kind, engineName(e), threads), func(b *testing.B) {
					benchSearch(b, kind, e, func(p *core.Params) {
						p.SearchThreads = threads
						p.NProbe = p.C / 2
					})
				})
			}
		}
	}
}

// BenchmarkFig19 sweeps nprobe (IVF kinds) and efs (HNSW).
func BenchmarkFig19(b *testing.B) {
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, nprobe := range []int{10, 20, 50} {
			for _, e := range engines() {
				b.Run(fmt.Sprintf("%s/nprobe=%d/%s", kind, nprobe, engineName(e)), func(b *testing.B) {
					benchSearch(b, kind, e, func(p *core.Params) { p.NProbe = nprobe })
				})
			}
		}
	}
	for _, efs := range []int{16, 100, 200} {
		for _, e := range engines() {
			b.Run(fmt.Sprintf("hnsw/efs=%d/%s", efs, engineName(e)), func(b *testing.B) {
				benchSearch(b, core.HNSW, e, func(p *core.Params) { p.EFS = efs })
			})
		}
	}
}
