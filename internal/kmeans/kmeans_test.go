package kmeans

import (
	"math/rand"
	"testing"

	"vecstudy/internal/vec"
)

// blobs generates k well-separated Gaussian blobs of points.
func blobs(rng *rand.Rand, k, perCluster, d int, sep float64) ([]float32, int) {
	n := k * perCluster
	data := make([]float32, 0, n*d)
	centers := make([]float32, k*d)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64() * sep)
	}
	for c := 0; c < k; c++ {
		for p := 0; p < perCluster; p++ {
			for j := 0; j < d; j++ {
				data = append(data, centers[c*d+j]+float32(rng.NormFloat64()))
			}
		}
	}
	return data, n
}

func TestTrainRecoversBlobStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, n := blobs(rng, 8, 100, 16, 20)
	for _, flavor := range []Flavor{FlavorFaiss, FlavorPASE} {
		res, err := Train(data, n, 16, Config{K: 8, Seed: 42, Flavor: flavor, UseGemm: true})
		if err != nil {
			t.Fatalf("%v: %v", flavor, err)
		}
		// With well separated blobs the mean within-cluster distance must
		// be far below the blob separation scale.
		assign := res.Assign(data, n, true, 1)
		var inertia float64
		for i := 0; i < n; i++ {
			inertia += float64(vec.L2Sqr(data[i*16:(i+1)*16], res.Centroid(int(assign[i]))))
		}
		perPoint := inertia / float64(n)
		// Each point is its blob center + unit Gaussian noise in 16 dims,
		// so a perfect clustering gives per-point inertia ≈ 16. The faiss
		// flavour (k-means++ with empty-cluster splitting) should get
		// there; the pase flavour (random init, no repair) may leave a
		// blob uncovered — that skew is RC#5 — so its bound is loose.
		limit := 64.0
		if flavor == FlavorPASE {
			limit = 16 * 400 // still far better than unclustered data
		}
		if perPoint > limit {
			t.Errorf("%v: per-point inertia %v, limit %v", flavor, perPoint, limit)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, n := blobs(rng, 4, 50, 8, 10)
	a, err := Train(data, n, 8, Config{K: 4, Seed: 7, Flavor: FlavorFaiss})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, n, 8, Config{K: 4, Seed: 7, Flavor: FlavorFaiss})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatalf("same seed produced different centroids at %d", i)
		}
	}
}

func TestTrainFlavorsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, n := blobs(rng, 4, 100, 8, 5)
	a, err := Train(data, n, 8, Config{K: 16, Seed: 7, Flavor: FlavorFaiss})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, n, 8, Config{K: 16, Seed: 7, Flavor: FlavorPASE})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("RC#5: the two flavours must produce different centroids")
	}
}

func TestTrainGemmTogglePreservesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, n := blobs(rng, 6, 80, 12, 15)
	withGemm, err := Train(data, n, 12, Config{K: 6, Seed: 1, UseGemm: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Train(data, n, 12, Config{K: 6, Seed: 1, UseGemm: false})
	if err != nil {
		t.Fatal(err)
	}
	// RC#1 is a performance toggle only: inertia must be comparable.
	ratio := float64(withGemm.Inertia) / float64(without.Inertia)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("gemm toggle changed quality: inertia ratio %v", ratio)
	}
}

func TestTrainErrors(t *testing.T) {
	data := make([]float32, 10*4)
	if _, err := Train(data, 10, 4, Config{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := Train(data, 10, 4, Config{K: 11}); err == nil {
		t.Error("accepted K > n")
	}
	if _, err := Train(data, 9, 4, Config{K: 2}); err == nil {
		t.Error("accepted mismatched data length")
	}
}

func TestSampleRatioRespectsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, n := blobs(rng, 4, 500, 4, 10)
	// sr=0.001 of 2000 points is 2 — far below 40·K; trainer must still work.
	res, err := Train(data, n, 4, Config{K: 4, Seed: 1, SampleRatio: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || len(res.Centroids) != 16 {
		t.Errorf("unexpected result shape: K=%d len=%d", res.K, len(res.Centroids))
	}
}

func TestEmptyClusterSplitting(t *testing.T) {
	// Duplicate points force empty clusters under k-means++ with K near n.
	d := 4
	n := 64
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			data[i*d+j] = float32(i % 4) // only 4 distinct points
		}
	}
	res, err := Train(data, n, d, Config{K: 8, Seed: 3, Flavor: FlavorFaiss})
	if err != nil {
		t.Fatal(err)
	}
	// Centroids must all be finite (splitting must not produce NaN).
	for i, c := range res.Centroids {
		if c != c {
			t.Fatalf("NaN centroid component at %d", i)
		}
	}
}

func TestAssignMatchesNearestCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data, n := blobs(rng, 3, 40, 6, 12)
	res, err := Train(data, n, 6, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Assign(data, n, false, 1)
	for i := 0; i < n; i++ {
		x := data[i*6 : (i+1)*6]
		best, bestD := 0, vec.L2SqrRef(x, res.Centroid(0))
		for c := 1; c < 3; c++ {
			if dd := vec.L2SqrRef(x, res.Centroid(c)); dd < bestD {
				best, bestD = c, dd
			}
		}
		if int(assign[i]) != best {
			t.Fatalf("row %d assigned to %d, nearest is %d", i, assign[i], best)
		}
	}
}

func TestFlavorString(t *testing.T) {
	if FlavorFaiss.String() != "faiss" || FlavorPASE.String() != "pase" {
		t.Error("Flavor.String mismatch")
	}
}
