// Package kmeans implements the K-means trainers behind the IVF indexes.
//
// The paper's RC#5 observes that PASE and Faiss ship *different* K-means
// implementations, which produce different centroids and therefore
// different cluster-size distributions — and that alone changes IVF search
// time even when every other factor is equal (Fig 15). To reproduce that,
// this package provides two flavours:
//
//   - FlavorFaiss: k-means++ seeding, SGEMM-batched assignment, empty
//     cluster re-splitting, 20 Lloyd iterations. Produces well balanced
//     clusters.
//   - FlavorPASE: uniform random seeding, naive per-pair assignment, no
//     empty-cluster handling, 10 iterations. Produces noticeably more
//     skewed cluster sizes.
//
// The assignment step also honours the RC#1 toggle (UseGemm) and the RC#3
// toggle (Threads), because index construction time in Figs 3–6 and 9 is
// dominated by exactly this step.
package kmeans

import (
	"errors"
	"fmt"
	"math/rand"

	"vecstudy/internal/vec"
)

// Flavor selects which system's K-means behaviour to emulate.
type Flavor int

const (
	// FlavorFaiss emulates the Faiss trainer (k-means++, balanced).
	FlavorFaiss Flavor = iota
	// FlavorPASE emulates the PASE trainer (random init, fewer iterations).
	FlavorPASE
)

// String implements fmt.Stringer.
func (f Flavor) String() string {
	if f == FlavorPASE {
		return "pase"
	}
	return "faiss"
}

// Config parameterizes Train.
type Config struct {
	K           int     // number of centroids; required
	MaxIter     int     // Lloyd iterations; 0 means the flavour default (20 faiss / 10 pase)
	Seed        int64   // RNG seed; same seed + same config ⇒ identical centroids
	SampleRatio float64 // fraction of points used for training; 0 or ≥1 means all (paper default sr=0.01 at full scale)
	MinSample   int     // lower bound on the training sample, to keep tiny scaled datasets trainable; 0 = 4·K (the paper's sr=0.01 at 1M scale gives ~10 samples per cluster; this floor keeps the same regime at laptop scale)
	UseGemm     bool    // RC#1: batched SGEMM assignment vs naive loops
	Threads     int     // RC#3: parallelism of the assignment step; ≤1 serial
	Flavor      Flavor  // RC#5: which implementation to emulate
}

// Result holds the trained codebook.
type Result struct {
	Centroids []float32 // K×D row-major
	K, D      int
	Iters     int     // Lloyd iterations actually run
	Inertia   float32 // sum of squared distances at the last assignment
}

// Centroid returns the i-th centroid (aliasing Result storage).
func (r *Result) Centroid(i int) []float32 { return r.Centroids[i*r.D : (i+1)*r.D] }

// Train runs Lloyd's algorithm over the n×d row-major matrix data.
func Train(data []float32, n, d int, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("kmeans: K must be positive")
	}
	if n < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points cannot form %d clusters", n, cfg.K)
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("kmeans: data length %d != n*d = %d", len(data), n*d)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		if cfg.Flavor == FlavorPASE {
			maxIter = 10
		} else {
			maxIter = 20
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Subsample the training set, as both systems do (paper parameter sr).
	train, tn := sample(data, n, d, cfg, rng)

	centroids := make([]float32, cfg.K*d)
	switch cfg.Flavor {
	case FlavorPASE:
		initRandom(train, tn, d, cfg.K, centroids, rng)
	default:
		initPlusPlus(train, tn, d, cfg.K, centroids, rng)
	}

	assign := make([]int32, tn)
	dists := make([]float32, tn)
	counts := make([]int, cfg.K)
	sums := make([]float64, cfg.K*d)

	res := &Result{Centroids: centroids, K: cfg.K, D: d}
	for iter := 0; iter < maxIter; iter++ {
		vec.AssignBatch(train, tn, centroids, cfg.K, d, assign, dists, cfg.UseGemm, cfg.Threads)
		var inertia float64
		for _, dd := range dists {
			inertia += float64(dd)
		}
		res.Inertia = float32(inertia)
		res.Iters = iter + 1

		for i := range counts {
			counts[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := 0; i < tn; i++ {
			c := int(assign[i])
			counts[c]++
			row := train[i*d : (i+1)*d]
			acc := sums[c*d : (c+1)*d]
			for j, v := range row {
				acc[j] += float64(v)
			}
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			dst := centroids[c*d : (c+1)*d]
			src := sums[c*d : (c+1)*d]
			for j := range dst {
				dst[j] = float32(src[j] * inv)
			}
		}
		if cfg.Flavor == FlavorFaiss {
			splitEmptyClusters(centroids, counts, cfg.K, d, rng)
		}
	}
	return res, nil
}

// sample returns the training subset according to SampleRatio, never going
// below MinSample (default 4·K) or above n.
func sample(data []float32, n, d int, cfg Config, rng *rand.Rand) ([]float32, int) {
	want := n
	if cfg.SampleRatio > 0 && cfg.SampleRatio < 1 {
		want = int(float64(n) * cfg.SampleRatio)
	}
	minSample := cfg.MinSample
	if minSample <= 0 {
		minSample = 4 * cfg.K
	}
	if want < minSample {
		want = minSample
	}
	if want >= n {
		return data, n
	}
	perm := rng.Perm(n)[:want]
	out := make([]float32, want*d)
	for i, p := range perm {
		copy(out[i*d:(i+1)*d], data[p*d:(p+1)*d])
	}
	return out, want
}

// initRandom seeds centroids by sampling K distinct points uniformly —
// the PASE behaviour.
func initRandom(data []float32, n, d, k int, centroids []float32, rng *rand.Rand) {
	perm := rng.Perm(n)[:k]
	for i, p := range perm {
		copy(centroids[i*d:(i+1)*d], data[p*d:(p+1)*d])
	}
}

// initPlusPlus seeds centroids with k-means++ (D² weighting) — the
var refKern = vec.Ref()

// better-spread initialization our Faiss flavour uses.
//
// Seeding arithmetic runs on the ref kernel: training must be
// reproducible across hosts and sessions, independent of which optimized
// kernels happen to be registered.
func initPlusPlus(data []float32, n, d, k int, centroids []float32, rng *rand.Rand) {
	first := rng.Intn(n)
	copy(centroids[:d], data[first*d:(first+1)*d])
	minDist := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		dd := float64(refKern.L2Sqr(data[i*d:(i+1)*d], centroids[:d]))
		minDist[i] = dd
		total += dd
	}
	for c := 1; c < k; c++ {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			chosen = n - 1
			for i, dd := range minDist {
				cum += dd
				if cum >= target {
					chosen = i
					break
				}
			}
		}
		dst := centroids[c*d : (c+1)*d]
		copy(dst, data[chosen*d:(chosen+1)*d])
		if c == k-1 {
			break
		}
		total = 0
		for i := 0; i < n; i++ {
			dd := float64(refKern.L2Sqr(data[i*d:(i+1)*d], dst))
			if dd < minDist[i] {
				minDist[i] = dd
			}
			total += minDist[i]
		}
	}
}

// splitEmptyClusters reassigns each empty centroid to a perturbed copy of
// the centroid with the largest population, as Faiss does, so no bucket
// stays dead across iterations.
func splitEmptyClusters(centroids []float32, counts []int, k, d int, rng *rand.Rand) {
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		biggest := 0
		for j := 1; j < k; j++ {
			if counts[j] > counts[biggest] {
				biggest = j
			}
		}
		if counts[biggest] < 2 {
			return
		}
		src := centroids[biggest*d : (biggest+1)*d]
		dst := centroids[c*d : (c+1)*d]
		const eps = 1.0 / 1024
		for j := range dst {
			sign := float32(1)
			if rng.Intn(2) == 0 {
				sign = -1
			}
			dst[j] = src[j] * (1 + sign*eps)
		}
		counts[c] = counts[biggest] / 2
		counts[biggest] -= counts[c]
	}
}

// Assign maps each of the n rows of data to its nearest centroid in r,
// returning the assignment vector. It uses the same UseGemm/Threads
// configuration semantics as training.
func (r *Result) Assign(data []float32, n int, useGemm bool, threads int) []int32 {
	assign := make([]int32, n)
	vec.AssignBatch(data, n, r.Centroids, r.K, r.D, assign, nil, useGemm, threads)
	return assign
}
