package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/dataset"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/server"

	_ "vecstudy/internal/pase/all"
)

// harness is a loopback cluster: real servers over fresh in-memory
// databases, one per replica, addressable for targeted kills.
type harness struct {
	t       *testing.T
	servers [][]*server.Server
	m       *ShardMap
}

// newHarness starts len(replicasPerShard) shards, shard i with
// replicasPerShard[i] replica servers, all empty (load goes through the
// router, which is itself part of what the tests exercise).
func newHarness(t *testing.T, replicasPerShard ...int) *harness {
	t.Helper()
	h := &harness{t: t, m: &ShardMap{}}
	for _, nr := range replicasPerShard {
		var servers []*server.Server
		var addrs []string
		for r := 0; r < nr; r++ {
			d, err := db.Open(db.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			s := server.New(d, server.Config{})
			if err := s.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx) // ignore "already shut down" from kills
			})
			servers = append(servers, s)
			addrs = append(addrs, s.Addr().String())
		}
		h.servers = append(h.servers, servers)
		h.m.Shards = append(h.m.Shards, addrs)
	}
	return h
}

// kill force-stops one replica server, simulating a crash: the listener
// closes and every open connection is torn down.
func (h *harness) kill(shard, rep int) {
	h.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.servers[shard][rep].Shutdown(ctx)
}

func (h *harness) router(cfg Config) *Router {
	h.t.Helper()
	r := NewRouter(h.m, cfg)
	h.t.Cleanup(r.Close)
	return r
}

func mustExec(t *testing.T, sess server.Session, q string) *sql.Result {
	t.Helper()
	res, err := sess.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// loadLine creates the line-vector table used across tests (vector i is
// {i,i,0,0}, so nearest neighbors are unambiguous) through the router.
func loadLine(t *testing.T, sess server.Session, n int) {
	t.Helper()
	mustExec(t, sess, "CREATE TABLE t (id int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
	}
	mustExec(t, sess, b.String())
	mustExec(t, sess, "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
}

func ids(t *testing.T, res *sql.Result) []int32 {
	t.Helper()
	out := make([]int32, len(res.Rows))
	for i, row := range res.Rows {
		id, ok := row[0].(int32)
		if !ok {
			t.Fatalf("row %d: id column is %T, want int32", i, row[0])
		}
		out[i] = id
	}
	return out
}

func TestClusterBasic(t *testing.T) {
	h := newHarness(t, 1, 1) // 2 shards, 1 replica each
	r := h.router(Config{HealthInterval: -1})
	sess := r.NewSession()
	loadLine(t, sess, 100)

	// Placement is disjoint and modulo: check each shard directly.
	for shard := 0; shard < 2; shard++ {
		c, err := client.Dial(h.m.Shards[shard][0])
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute("SELECT count(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows[0][0].(int64); n != 50 {
			t.Errorf("shard %d holds %d rows, want 50", shard, n)
		}
		res, err = c.Execute("SELECT id FROM t ORDER BY vec <-> '{0,0,0,0}' LIMIT 100")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids(t, &sql.Result{Cols: res.Cols, Rows: res.Rows}) {
			if int(id)%2 != shard {
				t.Fatalf("shard %d holds id %d, violating modulo placement", shard, id)
			}
		}
		c.Close()
	}

	// Global count sums shards.
	res := mustExec(t, sess, "SELECT count(*) FROM t")
	if n := res.Rows[0][0].(int64); n != 100 {
		t.Errorf("count(*) = %d, want 100", n)
	}

	// kNN with explicit distance column: global top-3 spans both shards.
	res = mustExec(t, sess, "SELECT id, distance FROM t ORDER BY vec <-> '{42, 42, 0, 0}' LIMIT 3")
	got := ids(t, res)
	if len(got) != 3 || got[0] != 42 {
		t.Fatalf("top-3 near 42 = %v", got)
	}
	if got[1] != 41 && got[1] != 43 {
		t.Fatalf("top-3 near 42 = %v", got)
	}

	// kNN without the distance column: router appends it for the merge
	// and must strip it from the answer.
	res = mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{42, 42, 0, 0}' LIMIT 3")
	if len(res.Cols) != 1 || res.Cols[0] != "id" {
		t.Fatalf("cols = %v, want [id]", res.Cols)
	}
	if len(res.Rows[0]) != 1 {
		t.Fatalf("row width = %d, want 1 (distance not stripped)", len(res.Rows[0]))
	}
	if got := ids(t, res); got[0] != 42 {
		t.Fatalf("top-3 near 42 = %v", got)
	}

	// Star kNN: `*` expands on the shards, so the appended distance
	// column must be located by name and stripped from the end.
	res = mustExec(t, sess, "SELECT * FROM t ORDER BY vec <-> '{42, 42, 0, 0}' LIMIT 2")
	if len(res.Cols) != 2 || res.Cols[0] != "id" || res.Cols[1] != "vec" {
		t.Fatalf("star kNN cols = %v, want [id vec]", res.Cols)
	}
	if got := ids(t, res); got[0] != 42 {
		t.Fatalf("star kNN top-2 near 42 = %v", got)
	}
	if _, ok := res.Rows[0][1].([]float32); !ok {
		t.Fatalf("star kNN vec column is %T", res.Rows[0][1])
	}

	// Point scan: only the owning shard has the row.
	res = mustExec(t, sess, "SELECT id FROM t WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].(int32) != 7 {
		t.Fatalf("WHERE id = 7 returned %v", res.Rows)
	}

	// Session settings: validated locally, visible in SHOW, replayed to
	// backends (nprobe = 1 with 8 clusters restricts the scan).
	if _, err := sess.Execute("SET no_such_knob = 1"); err == nil {
		t.Error("SET of unknown knob succeeded")
	}
	mustExec(t, sess, "SET nprobe = 8")
	res = mustExec(t, sess, "SHOW nprobe")
	if res.Rows[0][0].(string) != "8" {
		t.Errorf("SHOW nprobe = %v", res.Rows[0])
	}
	res = mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{13, 13, 0, 0}' LIMIT 1")
	if got := ids(t, res); got[0] != 13 {
		t.Fatalf("nprobe=8 top-1 near 13 = %v", got)
	}

	st := r.Stats()
	if st.Shards != 2 || st.Replicas != 2 || st.ReplicasDown != 0 {
		t.Errorf("stats topology = %+v", st)
	}
	if st.Fanouts == 0 || st.Queries == 0 {
		t.Errorf("stats counters = %+v", st)
	}
	if st.Failovers != 0 || st.Degraded != 0 {
		t.Errorf("healthy cluster reports failures: %+v", st)
	}
}

func TestFailover(t *testing.T) {
	h := newHarness(t, 2, 1) // shard 0 has 2 replicas, shard 1 has 1
	r := h.router(Config{HealthInterval: -1, ShardDeadline: 3 * time.Second})
	sess := r.NewSession()
	loadLine(t, sess, 60)

	// Warm the pools so stale connections to the killed replica exist.
	mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 1")

	h.kill(0, 0)

	// Every query must keep succeeding via shard 0's second replica.
	for i := 0; i < 10; i++ {
		q := fmt.Sprintf("SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT 3", i, i)
		res := mustExec(t, sess, q)
		if got := ids(t, res); got[0] != int32(i) {
			t.Fatalf("query %d: top-1 = %v", i, got)
		}
		if res.Msg != "" {
			t.Fatalf("query %d tagged %q despite surviving replica", i, res.Msg)
		}
	}

	st := r.Stats()
	if st.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", st.Failovers)
	}
	if st.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", st.Retries)
	}
	if st.ReplicasDown != 1 {
		t.Errorf("replicas down = %d, want 1", st.ReplicasDown)
	}
	if st.Degraded != 0 {
		t.Errorf("degraded = %d, want 0 (the shard never lost quorum)", st.Degraded)
	}
}

func TestDegraded(t *testing.T) {
	h := newHarness(t, 1, 1)
	partial := h.router(Config{HealthInterval: -1, ShardDeadline: 3 * time.Second, Partial: true})
	strict := h.router(Config{HealthInterval: -1, ShardDeadline: 3 * time.Second})
	sess := partial.NewSession()
	loadLine(t, sess, 40)

	h.kill(1, 0) // shard 1 (odd ids) has no surviving replica

	// Partial mode: reachable shards answer, tagged DEGRADED.
	res := mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{10, 10, 0, 0}' LIMIT 5")
	if !strings.Contains(res.Msg, "DEGRADED") || !strings.Contains(res.Msg, "shard(s) 1") {
		t.Fatalf("msg = %q, want DEGRADED tag naming shard 1", res.Msg)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("degraded top-5 returned %d rows", len(res.Rows))
	}
	for _, id := range ids(t, res) {
		if id%2 != 0 {
			t.Fatalf("degraded answer contains id %d from the dead shard", id)
		}
	}

	res = mustExec(t, sess, "SELECT count(*) FROM t")
	if n := res.Rows[0][0].(int64); n != 20 {
		t.Errorf("degraded count(*) = %d, want 20", n)
	}
	if !strings.Contains(res.Msg, "DEGRADED") {
		t.Errorf("degraded count(*) msg = %q", res.Msg)
	}

	if st := partial.Stats(); st.Degraded < 2 {
		t.Errorf("degraded counter = %d, want >= 2", st.Degraded)
	}

	// Strict mode: the same query fails outright.
	if _, err := strict.NewSession().Execute("SELECT id FROM t ORDER BY vec <-> '{10, 10, 0, 0}' LIMIT 5"); err == nil {
		t.Fatal("strict router answered with a dead shard")
	}
}

// TestHealthRevive kills nothing but checks the prober flips a
// transiently-marked-down replica back up.
func TestHealthRevive(t *testing.T) {
	h := newHarness(t, 1)
	r := h.router(Config{HealthInterval: 20 * time.Millisecond})
	sess := r.NewSession()
	loadLine(t, sess, 10)

	rep := r.shards[0][0]
	rep.down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for rep.down.Load() {
		if time.Now().After(deadline) {
			t.Fatal("health prober never revived the replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecallParity: scatter-gather over S shards returns exactly the
// same top-k set as a single node over the union, on a seeded workload,
// with run-to-run deterministic ordering.
func TestRecallParity(t *testing.T) {
	p, err := dataset.ProfileByName("sift1m")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Generate(p, dataset.GenOptions{Scale: 0.001, Seed: 7, MaxQueries: 20})
	const k = 10

	insertChunk := func(lo, hi int) string {
		var b strings.Builder
		b.WriteString("INSERT INTO t VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			b.WriteString("(")
			b.WriteString(strconv.Itoa(i))
			b.WriteString(", '{")
			for j, x := range ds.Base.Row(i) {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
			}
			b.WriteString("}')")
		}
		return b.String()
	}
	load := func(sess interface {
		Execute(string) (*sql.Result, error)
	}) {
		t.Helper()
		mustExec(t, sess, "CREATE TABLE t (id int, vec float[])")
		for lo := 0; lo < ds.N(); lo += 100 {
			hi := lo + 100
			if hi > ds.N() {
				hi = ds.N()
			}
			mustExec(t, sess, insertChunk(lo, hi))
		}
		mustExec(t, sess, "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)")
		// nprobe far above the cluster count makes ivfflat exact, so
		// single-node and scatter-gather answers must agree as sets.
		mustExec(t, sess, "SET nprobe = 1000000")
	}
	queryText := func(q int) string {
		var b strings.Builder
		b.WriteString("SELECT id, distance FROM t ORDER BY vec <-> '{")
		for j, x := range ds.Queries.Row(q) {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		}
		fmt.Fprintf(&b, "}' LIMIT %d", k)
		return b.String()
	}

	// Single-node reference over the union.
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	single := sql.NewSession(d)
	load(single)

	for _, S := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", S), func(t *testing.T) {
			shape := make([]int, S)
			for i := range shape {
				shape[i] = 1
			}
			h := newHarness(t, shape...)
			r := h.router(Config{HealthInterval: -1})
			sess := r.NewSession()
			load(sess)

			for q := 0; q < ds.NQ(); q++ {
				text := queryText(q)
				want := mustExec(t, single, text)
				got := mustExec(t, sess, text)
				if len(got.Rows) != k || len(want.Rows) != k {
					t.Fatalf("query %d: got %d rows, single node %d, want %d", q, len(got.Rows), len(want.Rows), k)
				}
				wantSet := map[int32]bool{}
				for _, id := range ids(t, want) {
					wantSet[id] = true
				}
				for _, id := range ids(t, got) {
					if !wantSet[id] {
						t.Errorf("query %d: cluster returned id %d outside the single-node top-%d", q, id, k)
					}
				}
				// Deterministic ordering: a fresh session must reproduce
				// the merged order exactly.
				again := mustExec(t, r.NewSession().(*Session), text)
				for i := range got.Rows {
					if got.Rows[i][0] != again.Rows[i][0] {
						t.Fatalf("query %d: merged order differs across runs at rank %d", q, i)
					}
				}
			}
		})
	}
}

// TestClusterConcurrent hammers the router from parallel sessions while
// a replica dies mid-traffic; every query must still succeed. Run under
// -race this also checks the scatter/health/pool paths for races.
func TestClusterConcurrent(t *testing.T) {
	h := newHarness(t, 2, 2)
	r := h.router(Config{HealthInterval: 50 * time.Millisecond, ShardDeadline: 5 * time.Second})
	loadLine(t, r.NewSession(), 80)

	const goroutines = 8
	const perG = 15
	errc := make(chan error, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := r.NewSession()
			for i := 0; i < perG; i++ {
				if g == 0 && i == 5 {
					h.kill(0, 0)
				}
				n := (g*perG + i) % 80
				q := fmt.Sprintf("SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT 3", n, n)
				res, err := sess.Execute(q)
				if err != nil {
					errc <- fmt.Errorf("g%d q%d: %w", g, i, err)
					continue
				}
				if res.Rows[0][0].(int32) != int32(n) {
					errc <- fmt.Errorf("g%d q%d: top-1 = %v", g, i, res.Rows[0][0])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := r.Stats(); st.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1 after mid-traffic kill", st.Failovers)
	}
}

// TestFilteredClusterParity: filtered kNN through the router must match
// a single node over the union at every acceptance selectivity, for
// every strategy the session can force. Predicates are row-local, so
// per-shard filtered top-k merges exactly; this also exercises the
// WHERE re-render and the filter_strategy/filter_overfetch SET replay.
func TestFilteredClusterParity(t *testing.T) {
	const n, k = 400, 10
	loadAttr := func(sess interface {
		Execute(string) (*sql.Result, error)
	}) {
		t.Helper()
		mustExec(t, sess, "CREATE TABLE t (id int, attr int, vec float[])")
		var b strings.Builder
		b.WriteString("INSERT INTO t VALUES ")
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, '{%d, %d, 0, 0}')", i, i%100, i, i%100)
		}
		mustExec(t, sess, b.String())
		mustExec(t, sess, "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)")
		mustExec(t, sess, "SET nprobe = 1000000") // exact: probe everything
	}

	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	single := sql.NewSession(d)
	loadAttr(single)

	for _, S := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", S), func(t *testing.T) {
			shape := make([]int, S)
			for i := range shape {
				shape[i] = 1
			}
			h := newHarness(t, shape...)
			r := h.router(Config{HealthInterval: -1})
			sess := r.NewSession()
			loadAttr(sess)

			for _, selPct := range []int{1, 10, 50, 90} {
				where := fmt.Sprintf("attr < %d", selPct)
				q := fmt.Sprintf("SELECT id, distance FROM t WHERE %s ORDER BY vec <-> '{200.3, 41.7, 0, 0}' LIMIT %d", where, k)
				want := ids(t, mustExec(t, single, q))
				for _, strat := range []string{"auto", "pre", "post", "intraversal"} {
					mustExec(t, sess, "SET filter_strategy = "+strat)
					got := ids(t, mustExec(t, sess, q))
					if len(got) != len(want) {
						t.Fatalf("sel=%d%% strategy=%s: %d rows, single node %d", selPct, strat, len(got), len(want))
					}
					wantSet := map[int32]bool{}
					for _, id := range want {
						wantSet[id] = true
					}
					for _, id := range got {
						if !wantSet[id] {
							t.Errorf("sel=%d%% strategy=%s: id %d outside single-node top-%d %v", selPct, strat, id, k, want)
						}
						if int(id)%100 >= selPct {
							t.Errorf("sel=%d%% strategy=%s: id %d violates %s", selPct, strat, id, where)
						}
					}
				}
			}

			// A zero-match predicate must come back empty, not hang or error.
			mustExec(t, sess, "SET filter_strategy = post")
			res := mustExec(t, sess, "SELECT id FROM t WHERE attr = 777 ORDER BY vec <-> '{1, 1, 0, 0}' LIMIT 5")
			if len(res.Rows) != 0 {
				t.Errorf("zero-match cluster query returned %d rows", len(res.Rows))
			}
		})
	}
}

// TestBatchKnobReplay proves the coalescing knobs ride the router's
// SET-replay machinery end to end: the router session records them,
// SHOW answers locally, and the replayed knob makes the shard servers
// actually coalesce (their SHOW server_stats batch counters move).
func TestBatchKnobReplay(t *testing.T) {
	h := newHarness(t, 1, 1)
	sess := h.router(Config{}).NewSession()
	loadLine(t, sess, 120)

	mustExec(t, sess, "SET batch_window = 500")
	mustExec(t, sess, "SET batch_max = 8")
	if res := mustExec(t, sess, "SHOW batch_window"); res.Rows[0][0].(string) != "500" {
		t.Errorf("router SHOW batch_window = %v", res.Rows[0][0])
	}
	if _, err := sess.Execute("SET batch_window = -5"); err == nil {
		t.Error("router accepted SET batch_window = -5")
	}

	got := ids(t, mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{40, 40, 0, 0}' LIMIT 3"))
	if len(got) != 3 || got[0] != 40 {
		t.Errorf("scatter-gather with batch_window set: got %v, want nearest 40", got)
	}

	// The shard executed that query with the replayed window, so its
	// coalescer flushed at least one (single-member) probe.
	probed := false
	for shard := range h.servers {
		c, err := client.Dial(h.servers[shard][0].Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute("SHOW server_stats")
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[0].(string) == "batch_probes" {
				if n, err := strconv.ParseInt(fmt.Sprint(row[1]), 10, 64); err == nil && n > 0 {
					probed = true
				}
			}
		}
	}
	if !probed {
		t.Error("no shard coalescer flushed a probe; batch_window replay did not reach the shards")
	}
}

// TestClusterDynamicParity broadcasts DELETE/UPDATE/VACUUM through the
// router at 2 and 4 shards and demands (a) mutation counts sum across
// shards, (b) post-churn kNN answers match a single-node database that
// applied the identical statements, and (c) deleted rows are invisible
// through the scatter-gather path.
func TestClusterDynamicParity(t *testing.T) {
	const n, k = 120, 10
	churn := []string{
		"DELETE FROM t WHERE id < 30",
		"UPDATE t SET vec = '{-4, -4, 0, 0}' WHERE id = 100",
		"DELETE FROM t WHERE id = 57",
	}
	queries := []string{
		"SELECT id FROM t ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT %d",
		"SELECT id FROM t ORDER BY vec <-> '{-4.1, -4.1, 0, 0}' LIMIT %d",
		"SELECT id FROM t ORDER BY vec <-> '{57, 57, 0, 0}' LIMIT %d",
	}

	// Single-node reference applying the same load and churn.
	ref, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	refSess := sql.NewSession(ref)
	loadLine(t, refSess, n)
	mustExec(t, refSess, "SET nprobe = 8")
	for _, q := range churn {
		mustExec(t, refSess, q)
	}
	var want [][]int32
	for _, q := range queries {
		want = append(want, ids(t, mustExec(t, refSess, fmt.Sprintf(q, k))))
	}

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			reps := make([]int, shards)
			for i := range reps {
				reps[i] = 1
			}
			h := newHarness(t, reps...)
			r := h.router(Config{HealthInterval: -1})
			sess := r.NewSession()
			loadLine(t, sess, n)
			mustExec(t, sess, "SET nprobe = 8")

			// Broadcast counts must sum to the global row counts.
			if res := mustExec(t, sess, churn[0]); res.Msg != "DELETE 30" {
				t.Errorf("broadcast delete msg = %q, want \"DELETE 30\"", res.Msg)
			}
			if res := mustExec(t, sess, churn[1]); res.Msg != "UPDATE 1" {
				t.Errorf("broadcast update msg = %q, want \"UPDATE 1\"", res.Msg)
			}
			if res := mustExec(t, sess, churn[2]); res.Msg != "DELETE 1" {
				t.Errorf("broadcast delete msg = %q, want \"DELETE 1\"", res.Msg)
			}

			check := func(stage string) {
				t.Helper()
				for i, q := range queries {
					got := ids(t, mustExec(t, sess, fmt.Sprintf(q, k)))
					// Set comparison: equidistant rows may tie-break
					// differently in the scatter-gather merge.
					gotSet := append([]int32(nil), got...)
					wantSet := append([]int32(nil), want[i]...)
					sort.Slice(gotSet, func(a, b int) bool { return gotSet[a] < gotSet[b] })
					sort.Slice(wantSet, func(a, b int) bool { return wantSet[a] < wantSet[b] })
					if fmt.Sprint(gotSet) != fmt.Sprint(wantSet) {
						t.Fatalf("%s q%d: got %v, want %v", stage, i, got, want[i])
					}
					for _, id := range got {
						if id < 30 || id == 57 {
							t.Fatalf("%s q%d: deleted id %d visible", stage, i, id)
						}
					}
				}
				// Global count excludes the 31 deleted rows.
				if res := mustExec(t, sess, "SELECT count(*) FROM t"); res.Rows[0][0].(int64) != n-31 {
					t.Fatalf("%s count(*) = %v, want %d", stage, res.Rows[0][0], n-31)
				}
			}
			check("churned")

			// VACUUM broadcasts to every shard; answers are unchanged.
			mustExec(t, sess, "VACUUM t")
			check("vacuumed")
		})
	}
}

// TestClusterDeleteReachesAllReplicas checks mutation replication: with
// 2 replicas on one shard, a broadcast DELETE must land on both, so a
// failover to the second replica never resurrects the row.
func TestClusterDeleteReachesAllReplicas(t *testing.T) {
	h := newHarness(t, 2) // one shard, two replicas
	r := h.router(Config{HealthInterval: -1, ShardDeadline: 3 * time.Second})
	sess := r.NewSession()
	loadLine(t, sess, 40)
	mustExec(t, sess, "DELETE FROM t WHERE id < 10")

	for rep := 0; rep < 2; rep++ {
		c, err := client.Dial(h.m.Shards[0][rep])
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute("SELECT count(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(int64); got != 30 {
			t.Errorf("replica %d holds %d rows after broadcast delete, want 30", rep, got)
		}
		c.Close()
	}

	// Kill the primary: the failover replica must agree the rows are gone.
	h.kill(0, 0)
	res := mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT 5")
	for _, id := range ids(t, res) {
		if id < 10 {
			t.Errorf("failover replica returned deleted id %d", id)
		}
	}
	if st := r.Stats(); st.Failovers == 0 {
		t.Errorf("expected a failover after kill: %+v", st)
	}
}
