package cluster

import (
	"strconv"
	"strings"

	"vecstudy/internal/pg/sql"
)

// render.go turns parsed statements back into SQL text for per-shard
// subqueries. The router parses each client statement once (to classify
// and split it) and re-renders the per-shard variant — e.g. a kNN
// SELECT with the distance pseudo-column appended so results can be
// merged, or an INSERT holding only the rows a shard owns.

// renderLiteral appends one literal in the dialect's syntax.
func renderLiteral(b *strings.Builder, l sql.Literal) {
	switch {
	case l.IsNull:
		b.WriteString("NULL")
	case l.IsStr:
		// Vector literals round-trip through Str too: the parser keeps
		// the original text ('{0.1,0.2}').
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(l.Str, "'", "''"))
		b.WriteByte('\'')
	default:
		b.WriteString(strconv.FormatFloat(l.Num, 'g', -1, 64))
	}
}

// renderVector renders a float32 slice as a quoted vector literal with
// round-trip precision.
func renderVector(b *strings.Builder, v []float32) {
	b.WriteString("'{")
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
	}
	b.WriteString("}'")
}

// renderInsert renders INSERT INTO table VALUES (...) for one shard's
// row subset.
func renderInsert(table string, rows [][]sql.Literal) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" VALUES ")
	for i, row := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, lit := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			renderLiteral(&b, lit)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// renderSelect renders a SELECT. When ensureDistance is set and the
// statement is a vector search whose target list lacks the distance
// pseudo-column, distance is appended (the merge needs it); distIdx
// reports its position in the rendered target list and added whether
// the router must strip it before answering the client.
func renderSelect(st *sql.SelectStmt, ensureDistance bool) (text string, distIdx int, added bool) {
	cols := st.Columns
	distIdx = -1
	if !st.CountStar {
		for i, c := range cols {
			if c == sql.DistanceColumn {
				distIdx = i
			}
		}
	}
	if ensureDistance && st.OrderCol != "" && !st.CountStar && distIdx < 0 {
		cols = append(append([]string(nil), cols...), sql.DistanceColumn)
		distIdx = len(cols) - 1
		added = true
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	if st.CountStar {
		b.WriteString("count(*)")
	} else {
		b.WriteString(strings.Join(cols, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(st.Table)
	for i, cond := range st.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(cond.Col)
		b.WriteByte(' ')
		b.WriteString(cond.Op)
		b.WriteByte(' ')
		renderLiteral(&b, cond.Val)
	}
	if st.OrderCol != "" {
		b.WriteString(" ORDER BY ")
		b.WriteString(st.OrderCol)
		b.WriteString(" <-> ")
		renderVector(&b, st.QueryVec)
	}
	if st.HasLimit {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(st.Limit))
	}
	return b.String(), distIdx, added
}
