// Package cluster composes N serving-layer instances (internal/server)
// into one logical vector database: a static shard map places rows,
// and a scatter-gather router fans kNN queries out to every shard over
// the existing wire protocol, merging per-shard top-k results into a
// global size-k answer with deterministic tie-breaking.
//
// The architecture is the partition-parallel search with replicated
// shards that specialized systems (Milvus-style) use: each shard holds
// a disjoint slice of the table (placement is by rowid modulo shard
// count) and is served by an ordered list of replicas. Reads go to one
// replica per shard with retry-once-on-next-replica failover; writes
// and DDL are broadcast to every replica of the owning shard(s).
// Rebalancing, distributed transactions, and dynamic membership are
// explicitly out of scope — the map is fixed at router start.
package cluster

import (
	"fmt"
	"strings"
)

// ShardMap is the static placement: Shards[i] is shard i's ordered
// replica address list (first = preferred).
type ShardMap struct {
	Shards [][]string
}

// ParseShardMap parses the `-shards` spec: shards separated by ';',
// replicas within a shard separated by ','. For example
//
//	"10.0.0.1:5462,10.0.0.2:5462;10.0.0.3:5462"
//
// is two shards, the first with two replicas.
func ParseShardMap(spec string) (*ShardMap, error) {
	m := &ShardMap{}
	for i, shard := range strings.Split(spec, ";") {
		var replicas []string
		for _, addr := range strings.Split(shard, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			replicas = append(replicas, addr)
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replica addresses in spec %q", i, spec)
		}
		m.Shards = append(m.Shards, replicas)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: empty shard spec")
	}
	return m, nil
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return len(m.Shards) }

// NumReplicas returns the total replica count across shards.
func (m *ShardMap) NumReplicas() int {
	n := 0
	for _, s := range m.Shards {
		n += len(s)
	}
	return n
}

// ShardFor places a row: shard = rowid mod NumShards (non-negative).
// This is the same modulo split `datagen -shard i/N` emits and the
// disjoint-load helpers use, so a loader can populate shard i of N
// directly and the router will look for each row where the loader put
// it.
func (m *ShardMap) ShardFor(rowid int64) int {
	s := rowid % int64(len(m.Shards))
	if s < 0 {
		s += int64(len(m.Shards))
	}
	return int(s)
}

// Owns reports whether shard owns rowid under the modulo placement —
// the disjoint-load predicate shard loaders filter with.
func (m *ShardMap) Owns(shard int, rowid int64) bool { return m.ShardFor(rowid) == shard }

// String renders the map back in the `-shards` spec syntax.
func (m *ShardMap) String() string {
	shards := make([]string, len(m.Shards))
	for i, replicas := range m.Shards {
		shards[i] = strings.Join(replicas, ",")
	}
	return strings.Join(shards, ";")
}
