package cluster

import (
	"time"

	"vecstudy/internal/client"
)

// healthLoop probes every replica at the configured interval over a
// dedicated short-lived connection (never the pool — a wedged pool must
// not stop the prober from noticing recovery) and flips the down flag
// both ways: a failed subquery marks a replica down immediately, and
// only the prober marks it up again once Ping succeeds.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		r.probeAll()
	}
}

// probeAll pings every replica concurrently and updates health state.
func (r *Router) probeAll() {
	done := make(chan struct{})
	n := 0
	for _, reps := range r.shards {
		for _, rep := range reps {
			n++
			go func(rep *replica) {
				rep.down.Store(!r.probe(rep))
				done <- struct{}{}
			}(rep)
		}
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// probe reports whether one replica answers a Ping within the dial
// timeout.
func (r *Router) probe(rep *replica) bool {
	timeout := r.cfg.DialTimeout
	conn, err := client.DialTimeout(rep.addr, timeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	conn.SetReadTimeout(timeout)
	return conn.Ping() == nil
}
