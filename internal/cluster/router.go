package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/minheap"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/server"
	"vecstudy/internal/wire"
)

// Config parameterizes a Router.
type Config struct {
	// PoolSize bounds connections per replica (checked out + idle).
	// 0 means 8.
	PoolSize int
	// DialTimeout bounds backend connection attempts. 0 means 2s.
	DialTimeout time.Duration
	// ShardDeadline bounds one per-shard subquery (pool checkout +
	// settings replay + execution). 0 means 10s.
	ShardDeadline time.Duration
	// HealthInterval paces the background replica health probes that
	// mark replicas down/up. 0 means 2s; negative disables probing
	// (replicas are then only marked down by failed subqueries and
	// never revived).
	HealthInterval time.Duration
	// Partial enables degraded answers: a kNN or scan query whose
	// shard is entirely unreachable returns the reachable shards'
	// merged rows with a DEGRADED message tag instead of failing.
	Partial bool
}

func (c *Config) defaults() {
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ShardDeadline <= 0 {
		c.ShardDeadline = 10 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
}

// replica is one backend server: its connection pool and health state.
type replica struct {
	shard int
	addr  string
	pool  *client.Pool
	down  atomic.Bool
}

// routerStats is the router's hot-path instrumentation.
type routerStats struct {
	queries   atomic.Int64 // statements executed through router sessions
	errors    atomic.Int64 // statements that failed
	fanouts   atomic.Int64 // per-shard subqueries issued (scatter width)
	retries   atomic.Int64 // subqueries reissued on the next replica
	failovers atomic.Int64 // replicas marked down by a failed subquery
	degraded  atomic.Int64 // queries answered without every shard
}

// Stats is a point-in-time snapshot of router activity.
type Stats struct {
	Shards       int
	Replicas     int
	ReplicasDown int
	Queries      int64
	Errors       int64
	Fanouts      int64
	Retries      int64
	Failovers    int64
	Degraded     int64
}

// Router fans statements out across the shard map. It implements
// server.Backend, so mounting it under server.NewWithBackend gives
// clients the identical wire protocol against the cluster as against a
// single server.
type Router struct {
	m      *ShardMap
	cfg    Config
	shards [][]*replica
	stats  routerStats

	stop    chan struct{}
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewRouter builds a router over the shard map and starts its health
// checker. Close releases the pools and stops the checker.
func NewRouter(m *ShardMap, cfg Config) *Router {
	cfg.defaults()
	r := &Router{m: m, cfg: cfg, stop: make(chan struct{})}
	for si, addrs := range m.Shards {
		reps := make([]*replica, len(addrs))
		for ri, addr := range addrs {
			reps[ri] = &replica{
				shard: si,
				addr:  addr,
				pool:  client.NewPool(addr, cfg.PoolSize, cfg.DialTimeout),
			}
		}
		r.shards = append(r.shards, reps)
	}
	if cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r
}

// Map returns the router's shard map.
func (r *Router) Map() *ShardMap { return r.m }

// Close stops the health checker and closes every backend pool.
func (r *Router) Close() {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	r.closeMu.Unlock()
	r.wg.Wait()
	for _, reps := range r.shards {
		for _, rep := range reps {
			rep.pool.Close()
		}
	}
}

// Stats snapshots the router counters and replica health.
func (r *Router) Stats() Stats {
	st := Stats{
		Shards:    len(r.shards),
		Queries:   r.stats.queries.Load(),
		Errors:    r.stats.errors.Load(),
		Fanouts:   r.stats.fanouts.Load(),
		Retries:   r.stats.retries.Load(),
		Failovers: r.stats.failovers.Load(),
		Degraded:  r.stats.degraded.Load(),
	}
	for _, reps := range r.shards {
		st.Replicas += len(reps)
		for _, rep := range reps {
			if rep.down.Load() {
				st.ReplicasDown++
			}
		}
	}
	return st
}

// StatsRows implements server.StatsRower: the router's counters ride
// along in the front-end server's SHOW server_stats answer.
func (r *Router) StatsRows() [][]any {
	st := r.Stats()
	return [][]any{
		{"router_shards", int64(st.Shards)},
		{"router_replicas", int64(st.Replicas)},
		{"router_replicas_down", int64(st.ReplicasDown)},
		{"router_queries", st.Queries},
		{"router_errors", st.Errors},
		{"router_fanouts", st.Fanouts},
		{"router_retries", st.Retries},
		{"router_failovers", st.Failovers},
		{"router_degraded", st.Degraded},
	}
}

// NewSession implements server.Backend. Each client connection gets its
// own routing session so SET knobs stay per-session, exactly as on a
// single server: the session records its SETs and replays them onto
// whichever pooled backend connection executes its subqueries.
func (r *Router) NewSession() server.Session { return &Session{r: r} }

// Session is one client connection's routing state.
type Session struct {
	r    *Router
	sets []sql.SetStmt // session SETs in apply order, last write per knob
	fp   string        // fingerprint of sets, compared against PoolConn.Tag
}

// Execute classifies one statement and routes it: session-local (SET,
// SHOW), broadcast (DDL to every replica, INSERT split by placement to
// the owning shard's replicas), or scatter-gather (SELECT).
func (s *Session) Execute(text string) (*sql.Result, error) {
	res, err := s.execute(text)
	if err != nil {
		s.r.stats.errors.Add(1)
	} else {
		s.r.stats.queries.Add(1)
	}
	return res, err
}

func (s *Session) execute(text string) (*sql.Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.SetStmt:
		return s.runSet(st)
	case *sql.ShowStmt:
		return s.runShow(st)
	case *sql.CreateTableStmt, *sql.CreateIndexStmt:
		return s.broadcastAll(text)
	case *sql.InsertStmt:
		return s.routeInsert(st)
	case *sql.DeleteStmt:
		// Broadcast verbatim: each shard's WHERE matches only the rows it
		// owns, so the union of per-shard deletes is exactly the global
		// delete. Counts are summed across shards.
		return s.broadcastMutation(text, "DELETE")
	case *sql.UpdateStmt:
		return s.broadcastMutation(text, "UPDATE")
	case *sql.VacuumStmt:
		return s.broadcastAll(text)
	case *sql.SelectStmt:
		if st.OrderCol != "" && !st.CountStar {
			return s.scatterKNN(st)
		}
		return s.scatterScan(st)
	default:
		return nil, fmt.Errorf("cluster: statement %T is not supported through the router", stmt)
	}
}

// --- session-local statements ----------------------------------------------

func (s *Session) runSet(st *sql.SetStmt) (*sql.Result, error) {
	known := false
	for _, k := range sql.KnownSettings() {
		if k.Name == st.Name {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("cluster: unrecognized setting %q (SHOW ALL lists the known settings)", st.Name)
	}
	// Reject bad values at record time: these SETs replay onto shard
	// sessions later, where the failure would blame an innocent query.
	if err := sql.ValidateSetting(st.Name, st.Value); err != nil {
		return nil, err
	}
	replaced := false
	for i := range s.sets {
		if s.sets[i].Name == st.Name {
			s.sets[i] = *st
			replaced = true
			break
		}
	}
	if !replaced {
		s.sets = append(s.sets, *st)
	}
	var b strings.Builder
	for _, set := range s.sets {
		b.WriteString(set.Name)
		b.WriteByte('=')
		b.WriteString(set.Value)
		b.WriteByte(';')
	}
	s.fp = b.String()
	return &sql.Result{Msg: "SET"}, nil
}

// runShow answers from the session's own settings. Router sessions hold
// settings as overrides-to-replay, so SHOW reports the session value or
// the dialect default — not any one shard's live state.
func (s *Session) runShow(st *sql.ShowStmt) (*sql.Result, error) {
	value := func(k sql.Setting) string {
		for _, set := range s.sets {
			if set.Name == k.Name {
				return set.Value
			}
		}
		return k.Default
	}
	if st.Name == "all" {
		res := &sql.Result{Cols: []string{"name", "setting", "description"}}
		for _, k := range sql.KnownSettings() {
			res.Rows = append(res.Rows, []any{k.Name, value(k), k.Desc})
		}
		return res, nil
	}
	for _, k := range sql.KnownSettings() {
		if k.Name == st.Name {
			return &sql.Result{Cols: []string{st.Name}, Rows: [][]any{{value(k)}}}, nil
		}
	}
	return nil, fmt.Errorf("cluster: unrecognized setting %q (SHOW ALL lists the known settings)", st.Name)
}

// --- backend execution ------------------------------------------------------

// isStatementError reports whether err is a deterministic statement-
// level failure every replica would reproduce (parse error, execution
// error, per-query timeout, admission rejection under the session's own
// load). A shutdown error is excluded: the replica is going away, which
// is exactly the case failover exists for.
func isStatementError(err error) bool {
	var werr *wire.Error
	if !errors.As(err, &werr) {
		return false
	}
	return werr.Code != wire.CodeShutdown
}

// execOnReplica runs one statement on one replica under the shard
// deadline, replaying the session's SETs first when the pooled conn
// last served a session with different settings.
func (s *Session) execOnReplica(rep *replica, text string) (*wire.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.r.cfg.ShardDeadline)
	defer cancel()
	pc, err := rep.pool.Get(ctx)
	if err != nil {
		return nil, err
	}
	pc.SetReadTimeout(s.r.cfg.ShardDeadline)
	if pc.Tag != s.fp {
		for _, set := range s.sets {
			if _, err := pc.Execute("SET " + set.Name + " = " + set.Value); err != nil {
				rep.pool.Put(pc, err)
				return nil, err
			}
		}
		pc.Tag = s.fp
	}
	res, err := pc.Execute(text)
	rep.pool.Put(pc, err)
	return res, err
}

// replicaOrder returns shard's replicas, healthy ones first, preserving
// the configured order within each class (so replica 0 stays preferred
// while it is up).
func (r *Router) replicaOrder(shard int) []*replica {
	reps := r.shards[shard]
	out := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		if !rep.down.Load() {
			out = append(out, rep)
		}
	}
	for _, rep := range reps {
		if rep.down.Load() {
			out = append(out, rep)
		}
	}
	return out
}

// queryShard executes a read on one shard with retry-once-on-next-
// replica failover. A statement-level error is returned immediately
// (it is deterministic — every replica would reject it identically); a
// transport-level failure marks the replica down and moves on.
func (s *Session) queryShard(shard int, text string) (*wire.Result, error) {
	r := s.r
	r.stats.fanouts.Add(1)
	reps := r.replicaOrder(shard)
	attempts := len(reps)
	if attempts > 2 {
		attempts = 2
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			r.stats.retries.Add(1)
		}
		rep := reps[i]
		res, err := s.execOnReplica(rep, text)
		if err == nil {
			rep.down.Store(false)
			return res, nil
		}
		if isStatementError(err) {
			return nil, err
		}
		lastErr = err
		if !rep.down.Swap(true) {
			r.stats.failovers.Add(1)
		}
	}
	return nil, fmt.Errorf("cluster: shard %d unreachable: %w", shard, lastErr)
}

// broadcastShard sends a write to every replica of one shard; all must
// succeed (replication is synchronous and has no reconciliation — a
// down replica fails the write rather than silently diverging).
func (s *Session) broadcastShard(shard int, text string) (*wire.Result, error) {
	reps := s.r.shards[shard]
	results := make([]*wire.Result, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i], errs[i] = s.execOnReplica(rep, text)
		}(i, rep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d replica %s: %w", shard, reps[i].addr, err)
		}
	}
	return results[0], nil
}

// broadcastAll sends DDL to every replica of every shard.
func (s *Session) broadcastAll(text string) (*sql.Result, error) {
	S := len(s.r.shards)
	results := make([]*wire.Result, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for sh := 0; sh < S; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			results[sh], errs[sh] = s.broadcastShard(sh, text)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &sql.Result{Cols: results[0].Cols, Rows: results[0].Rows, Msg: results[0].Msg}, nil
}

// broadcastMutation sends a DELETE or UPDATE to every replica of every
// shard and sums the per-shard row counts into one "VERB n" tag (each
// shard reports only the rows it owns, so the sum is the global count).
func (s *Session) broadcastMutation(text, verb string) (*sql.Result, error) {
	S := len(s.r.shards)
	results := make([]*wire.Result, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for sh := 0; sh < S; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			results[sh], errs[sh] = s.broadcastShard(sh, text)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var total int64
	for _, res := range results {
		fields := strings.Fields(res.Msg)
		if len(fields) == 0 {
			continue
		}
		if n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64); err == nil {
			total += n
		}
	}
	return &sql.Result{Msg: fmt.Sprintf("%s %d", verb, total)}, nil
}

// routeInsert splits an INSERT's rows by placement — the first numeric
// column is the rowid — and broadcasts each group to its shard's
// replicas.
func (s *Session) routeInsert(st *sql.InsertStmt) (*sql.Result, error) {
	m := s.r.m
	groups := make([][][]sql.Literal, m.NumShards())
	for _, row := range st.Rows {
		id, ok := rowidOf(row)
		if !ok {
			return nil, fmt.Errorf("cluster: INSERT row has no integer rowid in its first column; the router places rows by rowid %% %d", m.NumShards())
		}
		sh := m.ShardFor(id)
		groups[sh] = append(groups[sh], row)
	}
	type out struct {
		err error
	}
	outs := make([]out, m.NumShards())
	var wg sync.WaitGroup
	for sh, rows := range groups {
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, rows [][]sql.Literal) {
			defer wg.Done()
			_, err := s.broadcastShard(sh, renderInsert(st.Table, rows))
			outs[sh].err = err
		}(sh, rows)
	}
	wg.Wait()
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}
	return &sql.Result{Msg: fmt.Sprintf("INSERT 0 %d", len(st.Rows))}, nil
}

// rowidOf extracts the placement id: the first numeric column.
func rowidOf(row []sql.Literal) (int64, bool) {
	for _, lit := range row {
		if lit.IsNum {
			return int64(lit.Num), true
		}
	}
	return 0, false
}

// --- scatter-gather reads ---------------------------------------------------

// shardOutcome is one shard's scatter result.
type shardOutcome struct {
	res *wire.Result
	err error
}

// scatter runs text on every shard in parallel (one replica each, with
// failover) and gathers the outcomes.
func (s *Session) scatter(text string) []shardOutcome {
	S := len(s.r.shards)
	outs := make([]shardOutcome, S)
	var wg sync.WaitGroup
	for sh := 0; sh < S; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			outs[sh].res, outs[sh].err = s.queryShard(sh, text)
		}(sh)
	}
	wg.Wait()
	return outs
}

// gatherAvailable partitions scatter outcomes into reachable results
// and failed shard ids, honouring the partial-results mode: a
// statement-level error always fails the whole query, a transport-level
// shard failure either fails it (strict) or records the shard as
// degraded (partial).
func (s *Session) gatherAvailable(outs []shardOutcome) (reached map[int]*wire.Result, failed []int, err error) {
	reached = make(map[int]*wire.Result, len(outs))
	for sh, out := range outs {
		if out.err == nil {
			reached[sh] = out.res
			continue
		}
		if isStatementError(out.err) || !s.r.cfg.Partial {
			return nil, nil, out.err
		}
		failed = append(failed, sh)
	}
	if len(reached) == 0 {
		return nil, nil, fmt.Errorf("cluster: all %d shards unreachable: %w", len(outs), outs[0].err)
	}
	return reached, failed, nil
}

// degradedMsg tags a partial answer with the shards it is missing.
func degradedMsg(failed []int) string {
	parts := make([]string, len(failed))
	for i, sh := range failed {
		parts[i] = fmt.Sprint(sh)
	}
	return "DEGRADED: shard(s) " + strings.Join(parts, ",") + " unreachable"
}

// scatterKNN is the hot path: fan the top-k search out to every shard
// (rewritten so each shard reports the distance pseudo-column), then
// merge the per-shard top-k lists into the global top-k via the
// deterministic bounded heap. Each shard's global-top-k members are by
// definition within that shard's local top-k, so merging size-k lists
// loses nothing.
func (s *Session) scatterKNN(st *sql.SelectStmt) (*sql.Result, error) {
	text, _, added := renderSelect(st, true)
	outs := s.scatter(text)
	reached, failed, err := s.gatherAvailable(outs)
	if err != nil {
		return nil, err
	}

	// Locate the distance column in the answered header, not in the
	// rendered target list: a `*` in the list expands to several
	// columns on the shard, shifting positions. The renderer appends
	// distance last, so on ties the last occurrence is ours.
	var cols []string
	for sh := 0; sh < len(outs); sh++ {
		if res, ok := reached[sh]; ok {
			cols = res.Cols
			break
		}
	}
	distIdx := -1
	for i, c := range cols {
		if c == sql.DistanceColumn {
			distIdx = i
		}
	}
	if distIdx < 0 {
		return nil, fmt.Errorf("cluster: shards answered without a %s column (cols %v)", sql.DistanceColumn, cols)
	}

	// Per-shard candidate lists: ID encodes (shard, row position), so
	// the merge tie-breaks on (distance, shard, tid) and the gathered
	// ordering is identical across runs.
	k := 0
	lists := make([][]minheap.Item, 0, len(reached))
	for sh := 0; sh < len(outs); sh++ {
		res, ok := reached[sh]
		if !ok {
			continue
		}
		items := make([]minheap.Item, len(res.Rows))
		for i, row := range res.Rows {
			d, ok := row[distIdx].(float32)
			if !ok {
				return nil, fmt.Errorf("cluster: shard %d returned a non-float distance %T", sh, row[distIdx])
			}
			items[i] = minheap.Item{ID: int64(sh)<<32 | int64(i), Dist: d}
		}
		lists = append(lists, items)
		k += len(items)
	}
	if st.HasLimit && st.Limit < k {
		k = st.Limit
	}
	if k == 0 {
		k = 1 // MergeK needs k >= 1; an empty merge returns no items anyway
	}

	rows := make([][]any, 0, k)
	for _, it := range minheap.MergeK(k, lists...) {
		sh, pos := int(it.ID>>32), int(it.ID&0xffffffff)
		row := reached[sh].Rows[pos]
		if added {
			row = row[:distIdx:distIdx] // strip the appended (last) distance column
		}
		rows = append(rows, row)
	}
	res := &sql.Result{Cols: cols, Rows: rows}
	if added {
		res.Cols = cols[:distIdx:distIdx]
	}
	if len(failed) > 0 {
		s.r.stats.degraded.Add(1)
		res.Msg = degradedMsg(failed)
	}
	return res, nil
}

// scatterScan handles non-kNN SELECTs: count(*) sums per-shard counts;
// plain scans concatenate rows in shard order (and truncate to LIMIT).
func (s *Session) scatterScan(st *sql.SelectStmt) (*sql.Result, error) {
	text, _, _ := renderSelect(st, false)
	outs := s.scatter(text)
	reached, failed, err := s.gatherAvailable(outs)
	if err != nil {
		return nil, err
	}
	res := &sql.Result{}
	if st.CountStar {
		var total int64
		for _, r := range reached {
			if len(r.Rows) == 1 && len(r.Rows[0]) == 1 {
				if n, ok := r.Rows[0][0].(int64); ok {
					total += n
				}
			}
			res.Cols = r.Cols
		}
		res.Rows = [][]any{{total}}
	} else {
		for sh := 0; sh < len(outs); sh++ {
			r, ok := reached[sh]
			if !ok {
				continue
			}
			res.Cols = r.Cols
			res.Rows = append(res.Rows, r.Rows...)
		}
		if st.HasLimit && len(res.Rows) > st.Limit {
			res.Rows = res.Rows[:st.Limit]
		}
	}
	if len(failed) > 0 {
		s.r.stats.degraded.Add(1)
		res.Msg = degradedMsg(failed)
	}
	return res, nil
}
