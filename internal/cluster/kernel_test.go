package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/server"
	"vecstudy/internal/vec"
)

// loadLineSQ8 mirrors loadLine but indexes with ivfsq8, so the
// scatter-gather path exercises quantized scan + re-rank on every shard.
func loadLineSQ8(t *testing.T, sess server.Session, n int) {
	t.Helper()
	mustExec(t, sess, "CREATE TABLE t (id int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
	}
	mustExec(t, sess, b.String())
	mustExec(t, sess, "CREATE INDEX idx ON t USING ivfsq8 (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
}

// TestClusterSQ8KernelReplay: the router must replay SET
// distance_kernel and SET sq8_rerank to every shard, and the sharded
// ivfsq8 answer must match a single-node database under the same knobs,
// at 2 and 4 shards and under every registered kernel. Also checks that
// a KNOWN-but-possibly-unregistered kernel (avx2 on non-AVX2 hosts)
// records without error — the shard falls back at scan time.
func TestClusterSQ8KernelReplay(t *testing.T) {
	const n, k = 150, 8
	queries := []string{
		"SELECT id FROM t ORDER BY vec <-> '{12.2, 12.2, 0, 0}' LIMIT %d",
		"SELECT id FROM t ORDER BY vec <-> '{103.6, 104.1, 0, 0}' LIMIT %d",
	}
	knobs := []string{"SET nprobe = 8", "SET sq8_rerank = 2"}

	// Single-node reference under identical knobs.
	ref, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	refSess := sql.NewSession(ref)
	loadLineSQ8(t, refSess, n)
	for _, kn := range knobs {
		mustExec(t, refSess, kn)
	}
	want := map[string][][]int32{}
	for _, kern := range vec.RegisteredKernelNames() {
		mustExec(t, refSess, "SET distance_kernel = "+kern)
		for _, q := range queries {
			want[kern] = append(want[kern], ids(t, mustExec(t, refSess, fmt.Sprintf(q, k))))
		}
	}

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			reps := make([]int, shards)
			for i := range reps {
				reps[i] = 1
			}
			h := newHarness(t, reps...)
			sess := h.router(Config{HealthInterval: -1}).NewSession()
			loadLineSQ8(t, sess, n)
			for _, kn := range knobs {
				mustExec(t, sess, kn)
			}
			// Every KNOWN kernel name must be recordable at the router,
			// registered here or not.
			for _, kern := range vec.KnownKernelNames() {
				mustExec(t, sess, "SET distance_kernel = "+kern)
			}
			for _, kern := range vec.RegisteredKernelNames() {
				mustExec(t, sess, "SET distance_kernel = "+kern)
				for i, q := range queries {
					got := ids(t, mustExec(t, sess, fmt.Sprintf(q, k)))
					// Set comparison: scatter-gather merge may break
					// exact-distance ties differently than one node.
					gotSet := append([]int32(nil), got...)
					wantSet := append([]int32(nil), want[kern][i]...)
					sort.Slice(gotSet, func(a, b int) bool { return gotSet[a] < gotSet[b] })
					sort.Slice(wantSet, func(a, b int) bool { return wantSet[a] < wantSet[b] })
					if fmt.Sprint(gotSet) != fmt.Sprint(wantSet) {
						t.Errorf("kernel %s q%d: got %v, want %v", kern, i, got, want[kern][i])
					}
				}
			}
		})
	}
}
