// Package pgvector implements a second, deliberately simpler generalized
// IVF_FLAT access method, standing in for the other PostgreSQL vector
// extensions the paper's Fig 2 compares against PASE. It reuses the PASE
// on-page bucket structure but ranks candidates the way the early
// pgvector releases did: materialize every candidate from the probed
// buckets, comparison-sort the whole list, and return the first k — plus
// it re-fetches each returned tuple's vector from the heap to re-evaluate
// the ORDER BY expression, as the generic executor path does.
//
// Fig 2's point is only that PASE is the fastest open generalized vector
// database; this sibling reproduces that ordering on the same substrate.
package pgvector

import (
	"fmt"
	"sort"

	"vecstudy/internal/pase"
	paseivf "vecstudy/internal/pase/ivfflat"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
)

func init() {
	am.Register("pgv_ivfflat", Build)
}

// Index wraps the PASE bucket structure with the slower ranking strategy.
type Index struct {
	inner *paseivf.Index
	ctx   *am.BuildContext
}

// Build constructs the underlying IVF structure (same options as the PASE
// ivfflat AM).
func Build(ctx *am.BuildContext) (am.Index, error) {
	inner, err := paseivf.Build(ctx)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner.(*paseivf.Index), ctx: ctx}, nil
}

// AM implements am.Index.
func (ix *Index) AM() string { return "pgv_ivfflat" }

// Insert implements am.Index.
func (ix *Index) Insert(v []float32, tid heap.TID) error { return ix.inner.Insert(v, tid) }

// SizeBytes implements am.Index.
func (ix *Index) SizeBytes() (int64, error) { return ix.inner.SizeBytes() }

// SearchFiltered implements am.FilteredIndex by delegating to the
// underlying PASE bucket structure's in-traversal scan: the predicate
// gates candidates inside the bucket walk, which is the behaviour the
// extension family grew after its early releases.
func (ix *Index) SearchFiltered(query []float32, k int, params map[string]string, pred am.Predicate) ([]am.Result, error) {
	if pred == nil {
		return ix.Search(query, k, params)
	}
	return ix.inner.SearchFiltered(query, k, params, pred)
}

// Search implements am.Index: full candidate materialization plus
// comparison sort, then a heap re-fetch per returned row.
func (ix *Index) Search(query []float32, k int, params map[string]string) ([]am.Result, error) {
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	type cand struct {
		tid  heap.TID
		dist float32
	}
	cands := make([]cand, 0, 4096)
	err = ix.inner.ScanProbes(kern, query, nprobe, func(tid heap.TID, dist float32) {
		cands = append(cands, cand{tid: tid, dist: dist})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]am.Result, 0, k)
	for i := 0; i < len(cands) && len(out) < k; i++ {
		// Re-evaluate the ORDER BY expression against the heap tuple, as
		// the generic executor re-check does. The visibility check doubles
		// as the executor's tuple re-check: a candidate whose heap tuple
		// died since the index entry was written is skipped and the next
		// sorted candidate takes its slot.
		v, ok, err := ix.ctx.Table.GetVectorVisible(cands[i].tid, ix.ctx.VecCol)
		if err != nil {
			return nil, fmt.Errorf("pgvector: re-fetch %v: %w", cands[i].tid, err)
		}
		if !ok {
			continue
		}
		out = append(out, am.Result{TID: cands[i].tid, Dist: kern.L2Sqr(query, v)})
	}
	return out, nil
}

// Delete implements am.MutableIndex by tombstoning the entry in the
// underlying bucket structure.
func (ix *Index) Delete(v []float32, tid heap.TID) (bool, error) { return ix.inner.Delete(v, tid) }

// DeadCount implements am.MutableIndex.
func (ix *Index) DeadCount() int64 { return ix.inner.DeadCount() }

// Maintain implements am.MutableIndex: IVF list compaction on the
// underlying chains.
func (ix *Index) Maintain() (int64, error) { return ix.inner.Maintain() }
