package batch

import (
	"strconv"
	"time"

	"vecstudy/internal/pg/sql"
)

// Session wraps a sql.Session with query coalescing. It satisfies the
// server's Session contract structurally (Execute(string) (*sql.Result,
// error)) without importing the server package, keeping the dependency
// arrow server -> batch -> sql.
type Session struct {
	inner *sql.Session
	co    *Coalescer
}

// NewSession wraps inner so its vector searches may coalesce through co.
func NewSession(inner *sql.Session, co *Coalescer) *Session {
	return &Session{inner: inner, co: co}
}

// Inner exposes the wrapped SQL session (tests reach SET/SHOW state
// through it).
func (s *Session) Inner() *sql.Session { return s.inner }

// Execute runs one statement. Non-vector statements and unbatchable or
// window-disabled vector searches behave exactly as the bare SQL
// session; a batchable search with SET batch_window > 0 parks in the
// coalescer and returns its share of a multi-query probe.
func (s *Session) Execute(text string) (*sql.Result, error) {
	res, q, err := s.inner.ExecuteOrPlan(text)
	if err != nil || q == nil {
		return res, err
	}
	if ok, _ := q.Batchable(); !ok {
		s.co.unbatchable.Add(1)
		return q.Run()
	}
	window := settingInt(s.inner, sql.BatchWindowSetting, 0)
	if window <= 0 {
		s.co.solo.Add(1)
		return q.Run()
	}
	max := settingInt(s.inner, sql.BatchMaxSetting, 32)
	return s.co.Submit(q, time.Duration(window)*time.Microsecond, max)
}

// settingInt reads a knob's effective value as an integer; SET
// validation guarantees parseability, so def only covers an unknown
// name.
func settingInt(s *sql.Session, name string, def int) int {
	n, err := strconv.Atoi(s.EffectiveSetting(name))
	if err != nil {
		return def
	}
	return n
}
