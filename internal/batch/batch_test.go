package batch

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	_ "vecstudy/internal/pase/all"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
)

// newDB opens a fresh database with n 4-dim rows whose coordinates
// repeat (i mod n/2), so every vector has an exact duplicate at a
// different TID. Distance ties are everywhere, which is precisely what
// makes byte-identity a strong check: any deviation from the solo push
// order shows up as swapped tie rows.
func newDB(t *testing.T, n int) *db.DB {
	t.Helper()
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s := sql.NewSession(d)
	mustExec(t, s, "CREATE TABLE t (id int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	half := n / 2
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i%half, i%half)
	}
	mustExec(t, s, b.String())
	return d
}

func mustExec(t *testing.T, s interface {
	Execute(string) (*sql.Result, error)
}, q string) *sql.Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// renderRows flattens a result to an exact textual form: float32 cells
// are rendered by bit pattern, so equality means byte-identity.
func renderRows(res *sql.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			switch v := cell.(type) {
			case float32:
				fmt.Fprintf(&b, "f%08x", math.Float32bits(v))
			default:
				fmt.Fprintf(&b, "%v", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func queryFor(i int) string {
	return fmt.Sprintf("SELECT id, distance FROM t ORDER BY vec <-> '{%d.3, %d.1, 0, 0}' LIMIT 7", (i*5)%40, (i*3)%40)
}

// runParity executes the same B queries solo and as one coalesced
// probe, asserting byte-identical results. setup statements (CREATE
// INDEX, SET ...) run on every session; SETs are replayed per session
// so the group key matches across the batch.
func runParity(t *testing.T, d *db.DB, B int, index string, sets []string, queries func(int) string) {
	t.Helper()
	if index != "" {
		mustExec(t, sql.NewSession(d), index)
	}
	// Solo baselines on a bare SQL session.
	want := make([]string, B)
	for i := 0; i < B; i++ {
		s := sql.NewSession(d)
		for _, set := range sets {
			mustExec(t, s, set)
		}
		want[i] = renderRows(mustExec(t, s, queries(i)))
	}

	co := NewCoalescer()
	got := make([]string, B)
	errs := make([]error, B)
	var wg sync.WaitGroup
	for i := 0; i < B; i++ {
		sess := NewSession(sql.NewSession(d), co)
		for _, set := range sets {
			mustExec(t, sess, set)
		}
		mustExec(t, sess, fmt.Sprintf("SET batch_window = %d", 500000))
		mustExec(t, sess, fmt.Sprintf("SET batch_max = %d", B))
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			res, err := sess.Execute(queries(i))
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = renderRows(res)
		}(i, sess)
	}
	wg.Wait()
	for i := 0; i < B; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("query %d: batched result differs from solo\nsolo:\n%s\nbatched:\n%s", i, want[i], got[i])
		}
	}
	if co.batched.Load() != int64(B) {
		t.Errorf("batched counter = %d, want %d", co.batched.Load(), B)
	}
	if co.probes.Load() == 0 {
		t.Error("no multi-query probe was flushed")
	}
}

func TestParityIVFFlat(t *testing.T) {
	d := newDB(t, 400)
	runParity(t, d, 8,
		"CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)",
		[]string{"SET nprobe = 4"}, queryFor)
}

func TestParityIVFFlatBoundedHeap(t *testing.T) {
	d := newDB(t, 400)
	runParity(t, d, 6,
		"CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)",
		[]string{"SET nprobe = 4", "SET heap = k"}, queryFor)
}

func TestParityIVFPQ(t *testing.T) {
	d := newDB(t, 400)
	runParity(t, d, 8,
		"CREATE INDEX idx ON t USING ivfpq (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1, m = 2, ksub = 16)",
		[]string{"SET nprobe = 4"}, queryFor)
}

func TestParityHNSW(t *testing.T) {
	d := newDB(t, 300)
	runParity(t, d, 6,
		"CREATE INDEX idx ON t USING hnsw (vec) WITH (bnn = 8, efb = 40, seed = 2)",
		[]string{"SET efs = 64"}, queryFor)
}

func TestParityExactNoIndex(t *testing.T) {
	d := newDB(t, 300)
	runParity(t, d, 8, "", nil, queryFor)
}

func TestParityFilteredInTraversal(t *testing.T) {
	d := newDB(t, 400)
	runParity(t, d, 6,
		"CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)",
		[]string{"SET nprobe = 4", "SET filter_strategy = intraversal"},
		func(i int) string {
			return fmt.Sprintf("SELECT id, distance FROM t WHERE id < %d ORDER BY vec <-> '{%d.3, %d.1, 0, 0}' LIMIT 5", 120+i*10, (i*5)%40, (i*3)%40)
		})
}

func TestParityFilteredPre(t *testing.T) {
	d := newDB(t, 400)
	runParity(t, d, 6,
		"CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)",
		[]string{"SET filter_strategy = pre"},
		func(i int) string {
			// Different predicates sharing one exact group: per-query
			// ordinal counters must keep tie ordering solo-identical.
			return fmt.Sprintf("SELECT id, distance FROM t WHERE id >= %d ORDER BY vec <-> '{%d.3, %d.1, 0, 0}' LIMIT 5", i*7, (i*5)%40, (i*3)%40)
		})
}

// TestWindowZeroDegenerates proves batch_window = 0 (the default) is
// exactly the solo path: no probes, the solo counter ticks, results
// match the bare SQL session.
func TestWindowZeroDegenerates(t *testing.T) {
	d := newDB(t, 200)
	mustExec(t, sql.NewSession(d), "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	want := renderRows(mustExec(t, sql.NewSession(d), queryFor(3)))

	co := NewCoalescer()
	sess := NewSession(sql.NewSession(d), co)
	got := renderRows(mustExec(t, sess, queryFor(3)))
	if got != want {
		t.Errorf("window=0 result differs from solo\nsolo:\n%s\ngot:\n%s", want, got)
	}
	if co.probes.Load() != 0 || co.batched.Load() != 0 {
		t.Errorf("window=0 flushed a probe: probes=%d batched=%d", co.probes.Load(), co.batched.Load())
	}
	if co.solo.Load() != 1 {
		t.Errorf("solo counter = %d, want 1", co.solo.Load())
	}
}

// TestBatchMaxCapsProbeSize runs 3*max queries through one group and
// checks no probe exceeded the cap while every query still got solo
// rows.
func TestBatchMaxCapsProbeSize(t *testing.T) {
	d := newDB(t, 200)
	mustExec(t, sql.NewSession(d), "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	const max, B = 4, 12
	want := renderRows(mustExec(t, sql.NewSession(d), queryFor(1)))

	co := NewCoalescer()
	var wg sync.WaitGroup
	errCh := make(chan error, B)
	for i := 0; i < B; i++ {
		sess := NewSession(sql.NewSession(d), co)
		mustExec(t, sess, "SET batch_window = 20000")
		mustExec(t, sess, fmt.Sprintf("SET batch_max = %d", max))
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			res, err := sess.Execute(queryFor(1))
			if err != nil {
				errCh <- err
				return
			}
			if got := renderRows(res); got != want {
				errCh <- fmt.Errorf("batched result differs from solo:\n%s\nvs\n%s", got, want)
			}
		}(sess)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if co.batched.Load() != B {
		t.Errorf("batched = %d, want %d", co.batched.Load(), B)
	}
	if co.probes.Load() < B/max {
		t.Errorf("probes = %d, want >= %d", co.probes.Load(), B/max)
	}
	if co.maxBatchSeen.Load() > max {
		t.Errorf("a probe carried %d queries, cap is %d", co.maxBatchSeen.Load(), max)
	}
}

// TestUnbatchableShapesRunSolo checks the bypasses: no LIMIT, count(*),
// post-filter strategy, and threads > 1 never enter a group even with
// the window open.
func TestUnbatchableShapesRunSolo(t *testing.T) {
	d := newDB(t, 200)
	mustExec(t, sql.NewSession(d), "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	co := NewCoalescer()
	sess := NewSession(sql.NewSession(d), co)
	mustExec(t, sess, "SET batch_window = 500000")
	mustExec(t, sess, "SET batch_max = 32")

	mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{3, 3, 0, 0}'") // no LIMIT
	mustExec(t, sess, "SET filter_strategy = post")
	mustExec(t, sess, "SELECT id FROM t WHERE id < 150 ORDER BY vec <-> '{3, 3, 0, 0}' LIMIT 5")
	mustExec(t, sess, "SET filter_strategy = auto")
	mustExec(t, sess, "SET threads = 4")
	mustExec(t, sess, "SELECT id FROM t ORDER BY vec <-> '{3, 3, 0, 0}' LIMIT 5")

	if co.probes.Load() != 0 {
		t.Errorf("unbatchable shapes flushed %d probes", co.probes.Load())
	}
	if co.unbatchable.Load() != 3 {
		t.Errorf("unbatchable counter = %d, want 3", co.unbatchable.Load())
	}
}

// TestGroupKeysSeparateSettings checks that sessions with different
// effective scan settings never share a probe.
func TestGroupKeysSeparateSettings(t *testing.T) {
	d := newDB(t, 200)
	mustExec(t, sql.NewSession(d), "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	co := NewCoalescer()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		sess := NewSession(sql.NewSession(d), co)
		mustExec(t, sess, fmt.Sprintf("SET nprobe = %d", 2+i*2))
		mustExec(t, sess, "SET batch_window = 30000")
		mustExec(t, sess, "SET batch_max = 2")
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			if _, err := sess.Execute(queryFor(0)); err != nil {
				t.Error(err)
			}
		}(sess)
	}
	wg.Wait()
	// Two different nprobe values: two groups, each flushed by timer
	// with a single member.
	if co.probes.Load() != 2 {
		t.Errorf("probes = %d, want 2 (one per settings group)", co.probes.Load())
	}
	if co.maxBatchSeen.Load() != 1 {
		t.Errorf("maxBatchSeen = %d, want 1", co.maxBatchSeen.Load())
	}
}

// TestCoalescerRace hammers one coalescer from many sessions with mixed
// batchable and unbatchable statements; run under -race this is the
// locking proof for the group lifecycle.
func TestCoalescerRace(t *testing.T) {
	d := newDB(t, 200)
	mustExec(t, sql.NewSession(d), "CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	co := NewCoalescer()
	const G, rounds = 12, 5
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		sess := NewSession(sql.NewSession(d), co)
		mustExec(t, sess, "SET batch_window = 300")
		mustExec(t, sess, "SET batch_max = 5")
		wg.Add(1)
		go func(g int, sess *Session) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queryFor(g + r)
				if g%4 == 3 && r%2 == 1 {
					q = "SELECT count(*) FROM t"
				}
				if _, err := sess.Execute(q); err != nil {
					t.Errorf("g%d r%d: %v", g, r, err)
					return
				}
			}
		}(g, sess)
	}
	wg.Wait()
}
