// Package batch is the query-coalescing layer between the server's
// admission control and the SQL executor: concurrently arriving kNN
// queries against the same (table, column, access method, strategy,
// settings) group wait for up to SET batch_window microseconds, then
// execute as one multi-query probe (sql.MultiRun) — centroid scoring
// becomes one SGEMM-shaped kernel call and bucket page pins are shared
// across the batch, while every session receives exactly the rows its
// solo execution would have produced.
//
// The trade is explicit: the first query of a batch pays up to the
// window in added latency to buy probe-level sharing for the whole
// group. batch_window = 0 (the default) disables coalescing entirely,
// and unbatchable queries (see sql.VectorQuery.Batchable) bypass the
// window and run solo.
package batch

import (
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/pg/sql"
)

// outcome is one coalesced query's delivery.
type outcome struct {
	res *sql.Result
	err error
}

// pending is one query waiting in a group. ch is buffered so the
// flushing goroutine never blocks on delivery.
type pending struct {
	q  *sql.VectorQuery
	ch chan outcome
}

// group collects same-key queries for one flush. The first submitter
// (the leader) fixes the group's window and size cap and arms its
// timer; the group flushes on whichever comes first — the timer or the
// cap — and exactly once (flushed guards the race between the two).
type group struct {
	co      *Coalescer
	key     string
	max     int
	timer   *time.Timer
	members []*pending
	flushed bool
}

// Coalescer groups batchable vector queries by their sql GroupKey and
// executes each group as one multi-query probe. One coalescer serves a
// whole server; sessions funnel into it through batch.Session.
type Coalescer struct {
	mu     sync.Mutex
	groups map[string]*group

	probes       atomic.Int64 // multi-query probes flushed
	batched      atomic.Int64 // queries served through a probe
	solo         atomic.Int64 // batchable queries run solo (batch_window = 0)
	unbatchable  atomic.Int64 // vector queries whose shape cannot batch
	maxBatchSeen atomic.Int64 // largest probe flushed
}

// NewCoalescer returns an empty coalescer.
func NewCoalescer() *Coalescer {
	return &Coalescer{groups: make(map[string]*group)}
}

// Submit parks q in its group until the group flushes, then returns q's
// own share of the multi-query probe. It blocks the calling session's
// goroutine — which is what keeps sessions single-threaded: the session
// cannot issue another statement while one is coalescing.
func (c *Coalescer) Submit(q *sql.VectorQuery, window time.Duration, max int) (*sql.Result, error) {
	if max < 1 {
		max = 1
	}
	p := &pending{q: q, ch: make(chan outcome, 1)}
	key := q.GroupKey()

	c.mu.Lock()
	g, ok := c.groups[key]
	if !ok {
		g = &group{co: c, key: key, max: max}
		c.groups[key] = g
		g.timer = time.AfterFunc(window, g.flushByTimer)
	}
	g.members = append(g.members, p)
	full := len(g.members) >= g.max
	if full {
		g.flushed = true
		delete(c.groups, key)
	}
	c.mu.Unlock()

	if full {
		// Flush-by-cap executes on this submitter's goroutine; the timer
		// may still fire but finds the group detached and does nothing.
		g.timer.Stop()
		g.execute()
	}
	out := <-p.ch
	return out.res, out.err
}

// flushByTimer detaches the group when its window closes; the loser of
// the race with a flush-by-cap (or a later same-key leader's map slot)
// sees flushed and backs off.
func (g *group) flushByTimer() {
	g.co.mu.Lock()
	if g.flushed {
		g.co.mu.Unlock()
		return
	}
	g.flushed = true
	delete(g.co.groups, g.key)
	g.co.mu.Unlock()
	g.execute()
}

// execute runs the detached group as one probe and delivers each
// member's outcome. No lock is held: the group is out of the map and
// flushed, so members is immutable here.
func (g *group) execute() {
	qs := make([]*sql.VectorQuery, len(g.members))
	for i, p := range g.members {
		qs[i] = p.q
	}
	results, err := sql.MultiRun(qs)

	c := g.co
	c.probes.Add(1)
	c.batched.Add(int64(len(qs)))
	for {
		old := c.maxBatchSeen.Load()
		if int64(len(qs)) <= old || c.maxBatchSeen.CompareAndSwap(old, int64(len(qs))) {
			break
		}
	}
	for i, p := range g.members {
		if err != nil {
			p.ch <- outcome{nil, err}
		} else {
			p.ch <- outcome{results[i], nil}
		}
	}
}

// StatsRows contributes the coalescing counters to SHOW server_stats.
func (c *Coalescer) StatsRows() [][]any {
	return [][]any{
		{"batch_probes", c.probes.Load()},
		{"batch_queries_batched", c.batched.Load()},
		{"batch_queries_solo", c.solo.Load()},
		{"batch_queries_unbatchable", c.unbatchable.Load()},
		{"batch_max_size", c.maxBatchSeen.Load()},
	}
}
