// Package testutil provides the shared fixtures used by index tests in
// both engines: a small deterministic clustered dataset with brute-force
// ground truth, and recall helpers.
package testutil

import (
	"sync"
	"testing"

	"vecstudy/internal/dataset"
	"vecstudy/internal/minheap"
)

var (
	once  sync.Once
	small *dataset.Dataset
)

// SmallDataset returns a cached 2000×128 clustered dataset with top-20
// ground truth for 20 queries. Tests must treat it as read-only.
func SmallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	once.Do(func() {
		p, err := dataset.ProfileByName("sift1m")
		if err != nil {
			panic(err)
		}
		small = dataset.Generate(p, dataset.GenOptions{Scale: 0.002, Seed: 12345, MaxQueries: 20})
		small.ComputeGroundTruth(20, 4)
	})
	return small
}

// IDs extracts the result IDs from search items.
func IDs(items []minheap.Item) []int64 {
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// Recall runs search over every query of ds and returns recall@k.
func Recall(t *testing.T, ds *dataset.Dataset, k int, search func(q []float32) []minheap.Item) float64 {
	t.Helper()
	results := make([][]int64, ds.NQ())
	for q := 0; q < ds.NQ(); q++ {
		results[q] = IDs(search(ds.Queries.Row(q)))
	}
	return ds.Recall(results, k)
}

// SameResults reports whether two result lists agree on distances rank by
// rank (IDs may differ on ties).
func SameResults(a, b []minheap.Item, tol float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		diff := a[i].Dist - b[i].Dist
		if diff < -tol || diff > tol {
			return false
		}
	}
	return true
}
