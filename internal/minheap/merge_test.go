package minheap

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestMergeKDeterministicTies is the regression test for the sharded
// merge path: before the (Dist, ID) total order, which equal-distance
// items survived at the k boundary depended on arrival order, so a
// scatter-gathered result could flap across runs when shard responses
// raced. MergeK must return an identical slice for every permutation of
// the input lists.
func TestMergeKDeterministicTies(t *testing.T) {
	// Nine items, all at distance 1 — the pure tie case — plus one
	// clear winner. k=4 keeps the winner and the three smallest IDs.
	winner := Item{ID: 500, Dist: 0.5}
	ties := []Item{
		{ID: 7, Dist: 1}, {ID: 3, Dist: 1}, {ID: 9, Dist: 1},
		{ID: 1, Dist: 1}, {ID: 8, Dist: 1}, {ID: 2, Dist: 1},
		{ID: 6, Dist: 1}, {ID: 4, Dist: 1}, {ID: 5, Dist: 1},
	}
	want := []Item{winner, {ID: 1, Dist: 1}, {ID: 2, Dist: 1}, {ID: 3, Dist: 1}}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		all := append([]Item{winner}, ties...)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		// Split the shuffled items into a random number of "shard" lists.
		nLists := 1 + rng.Intn(4)
		lists := make([][]Item, nLists)
		for i, it := range all {
			lists[i%nLists] = append(lists[i%nLists], it)
		}
		got := MergeK(4, lists...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MergeK = %v, want %v", trial, got, want)
		}
	}
}

// TestTopKTieBreakDeterministic pins the TopK-level property MergeK
// relies on: the retained set is the k smallest items under (Dist, ID)
// independent of push order.
func TestTopKTieBreakDeterministic(t *testing.T) {
	pushes := [][]Item{
		{{ID: 2, Dist: 1}, {ID: 1, Dist: 1}, {ID: 3, Dist: 1}},
		{{ID: 3, Dist: 1}, {ID: 2, Dist: 1}, {ID: 1, Dist: 1}},
		{{ID: 1, Dist: 1}, {ID: 3, Dist: 1}, {ID: 2, Dist: 1}},
	}
	want := []Item{{ID: 1, Dist: 1}, {ID: 2, Dist: 1}}
	for _, order := range pushes {
		h := NewTopK(2)
		for _, it := range order {
			h.Push(it.ID, it.Dist)
		}
		if got := h.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("push order %v: Results = %v, want %v", order, got, want)
		}
	}
	// An equal-distance candidate with a larger ID than the root must be
	// rejected; a smaller ID must displace it.
	h := NewTopK(1)
	h.Push(5, 1)
	if h.Push(9, 1) {
		t.Error("equal-distance larger ID displaced the root")
	}
	if !h.Push(2, 1) {
		t.Error("equal-distance smaller ID rejected")
	}
	if got := h.Results(); got[0].ID != 2 {
		t.Errorf("root = %v, want ID 2", got[0])
	}
}

// TestMergeKShardEncoding exercises the (distance, shard, tid) tie-break
// the router uses: IDs encode (shard, row position), so equal distances
// resolve by shard then position.
func TestMergeKShardEncoding(t *testing.T) {
	enc := func(shard, pos int) int64 { return int64(shard)<<32 | int64(pos) }
	shard0 := []Item{{ID: enc(0, 0), Dist: 2}, {ID: enc(0, 1), Dist: 2}}
	shard1 := []Item{{ID: enc(1, 0), Dist: 2}, {ID: enc(1, 1), Dist: 1}}
	got := MergeK(3, shard0, shard1)
	want := []Item{
		{ID: enc(1, 1), Dist: 1}, // strictly closer wins regardless of shard
		{ID: enc(0, 0), Dist: 2}, // then shard 0 before shard 1, position order
		{ID: enc(0, 1), Dist: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeK = %v, want %v", got, want)
	}
	// Argument order must not matter.
	if got2 := MergeK(3, shard1, shard0); !reflect.DeepEqual(got2, want) {
		t.Fatalf("MergeK(reversed) = %v, want %v", got2, want)
	}
}
