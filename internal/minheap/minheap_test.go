package minheap

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// bruteTopK computes the expected result by sorting everything.
func bruteTopK(items []Item, k int) []Item {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dist != sorted[j].Dist {
			return sorted[i].Dist < sorted[j].Dist
		}
		return sorted[i].ID < sorted[j].ID
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Dist: float32(rng.Float64() * 100)}
	}
	return items
}

func sameIDs(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// compare by distance, as equal-distance orderings may differ
		if a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func TestTopKMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 10, 100, 1000} {
		for _, k := range []int{1, 3, 10, 100} {
			items := randItems(rng, n)
			h := NewTopK(k)
			for _, it := range items {
				h.Push(it.ID, it.Dist)
			}
			got := h.Results()
			want := bruteTopK(items, k)
			if !sameIDs(got, want) {
				t.Errorf("n=%d k=%d: got %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestTopKResultsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewTopK(50)
	for _, it := range randItems(rng, 500) {
		h.Push(it.ID, it.Dist)
	}
	res := h.Results()
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results not sorted at %d: %v > %v", i, res[i-1].Dist, res[i].Dist)
		}
	}
}

func TestTopKWorst(t *testing.T) {
	h := NewTopK(2)
	if _, full := h.Worst(); full {
		t.Error("empty heap reported full")
	}
	h.Push(1, 5)
	if _, full := h.Worst(); full {
		t.Error("partially filled heap reported full")
	}
	h.Push(2, 3)
	w, full := h.Worst()
	if !full || w != 5 {
		t.Errorf("Worst = %v, %v; want 5, true", w, full)
	}
	if h.Push(3, 10) {
		t.Error("kept candidate worse than heap root")
	}
	if !h.Push(4, 1) {
		t.Error("rejected improving candidate")
	}
	w, _ = h.Worst()
	if w != 3 {
		t.Errorf("Worst after eviction = %v, want 3", w)
	}
}

func TestTopKRejectsInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

func TestTopKReset(t *testing.T) {
	h := NewTopK(3)
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("Len after Reset = %d", h.Len())
	}
	h.Push(2, 2)
	if res := h.Results(); len(res) != 1 || res[0].ID != 2 {
		t.Errorf("heap unusable after Reset: %v", res)
	}
}

func TestCollectorMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 17, 333} {
		for _, k := range []int{1, 5, 17, 500} {
			items := randItems(rng, n)
			c := NewCollector(0)
			h := NewTopK(k)
			for _, it := range items {
				c.Push(it.ID, it.Dist)
				h.Push(it.ID, it.Dist)
			}
			got := c.PopK(k)
			want := h.Results()
			if !sameIDs(got, want) {
				t.Errorf("n=%d k=%d: collector %v, topk %v", n, k, got, want)
			}
		}
	}
}

func TestCollectorDrainsAfterPopK(t *testing.T) {
	c := NewCollector(4)
	c.Push(1, 1)
	c.Push(2, 2)
	if got := c.PopK(1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("PopK = %v", got)
	}
	if c.Len() != 0 {
		t.Errorf("collector not drained: len %d", c.Len())
	}
	c.Push(3, 3)
	if got := c.PopK(5); len(got) != 1 || got[0].ID != 3 {
		t.Errorf("collector unusable after drain: %v", got)
	}
}

func TestCollectorPopKEmpty(t *testing.T) {
	c := NewCollector(0)
	if got := c.PopK(10); len(got) != 0 {
		t.Errorf("PopK on empty = %v", got)
	}
}

func TestSharedTopKConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 2000)
	want := bruteTopK(items, 25)

	s := NewSharedTopK(25)
	var wg sync.WaitGroup
	for t := 0; t < 8; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := t; i < len(items); i += 8 {
				s.Push(items[i].ID, items[i].Dist)
			}
		}(t)
	}
	wg.Wait()
	if got := s.Results(); !sameIDs(got, want) {
		t.Errorf("concurrent shared heap diverged from brute force")
	}
}

func TestMergeLocalEquivalentToGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 999)
	k := 20
	locals := make([]*TopK, 4)
	for i := range locals {
		locals[i] = NewTopK(k)
	}
	for i, it := range items {
		locals[i%4].Push(it.ID, it.Dist)
	}
	got := MergeLocal(k, locals)
	want := bruteTopK(items, k)
	if !sameIDs(got, want) {
		t.Errorf("MergeLocal %v, want %v", got, want)
	}
}

func TestMergeLocalNilEntries(t *testing.T) {
	l := NewTopK(2)
	l.Push(1, 1)
	got := MergeLocal(2, []*TopK{nil, l, nil})
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("MergeLocal with nils = %v", got)
	}
}

func TestTopKPropertyAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 1+rng.Intn(300), 1+rng.Intn(40)
		items := randItems(rng, n)
		h := NewTopK(k)
		for _, it := range items {
			h.Push(it.ID, it.Dist)
		}
		return sameIDs(h.Results(), bruteTopK(items, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
