package minheap

import "sync"

// SharedTopK is a TopK guarded by a mutex, used to model PASE's
// intra-query parallel search: every worker thread pushes each candidate
// into one global heap, serializing on the lock (paper Fig 18). The
// contrasting Faiss strategy is per-worker TopK heaps merged at the end
// (see TopK.Merge).
type SharedTopK struct {
	mu   sync.Mutex
	heap *TopK
}

// NewSharedTopK returns a lock-guarded top-k collector.
func NewSharedTopK(k int) *SharedTopK {
	return &SharedTopK{heap: NewTopK(k)}
}

// Push offers a candidate under the global lock.
func (s *SharedTopK) Push(id int64, dist float32) bool {
	s.mu.Lock()
	kept := s.heap.Push(id, dist)
	s.mu.Unlock()
	return kept
}

// Results returns the k best items sorted by ascending distance.
func (s *SharedTopK) Results() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Results()
}

// MergeLocal merges per-worker local heaps into a single result set — the
// Faiss reduction. It exists here so benchmarks can express both
// strategies against the same interface.
func MergeLocal(k int, locals []*TopK) []Item {
	global := NewTopK(k)
	for _, l := range locals {
		if l != nil {
			global.Merge(l)
		}
	}
	return global.Results()
}
