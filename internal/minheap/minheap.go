// Package minheap implements the top-k selection machinery whose cost the
// paper isolates as RC#6 (heap of size n instead of size k) and part of
// RC#3 (a lock-guarded shared heap versus per-thread local heaps).
//
// Three strategies are provided:
//
//   - TopK: a bounded max-heap of size k; pushing is O(log k) and only
//     happens when a candidate beats the current k-th best. This is the
//     Faiss strategy.
//   - Collector: accumulate all n candidates, heapify, then pop k.
//     This is the PASE strategy the paper measures in Table V.
//   - SharedTopK: a TopK behind a mutex, the PASE intra-query parallel
//     strategy in Fig 18; Faiss instead merges thread-local TopKs.
package minheap

import "sort"

// Item is a candidate search result: an opaque 64-bit identifier and its
// distance to the query (smaller is better).
type Item struct {
	ID   int64
	Dist float32
}

// Less is the deterministic total order on items: ascending distance,
// equal distances broken by ascending ID. TopK keeps the k smallest
// items under this order, so for a given multiset of (ID, Dist) pairs
// the retained set does not depend on arrival order — which is what
// keeps scatter-gathered shard results stable across runs.
func Less(a, b Item) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// TopK keeps the k smallest items seen so far (under Less) using a
// bounded binary max-heap: the root is the current worst of the best k,
// so a new candidate is accepted only if it beats the root.
type TopK struct {
	k     int
	items []Item // max-heap under Less once len == k
}

// NewTopK returns a collector for the k best items. k must be ≥ 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("minheap: k must be >= 1")
	}
	return &TopK{k: k, items: make([]Item, 0, k)}
}

// K returns the configured capacity.
func (h *TopK) K() int { return h.k }

// Len returns the number of items currently held (≤ k).
func (h *TopK) Len() int { return len(h.items) }

// Worst returns the largest distance currently in the heap, or +Inf-like
// behaviour via ok=false when the heap is not yet full. Candidates with
// Dist > Worst cannot improve the result once ok is true (a candidate at
// exactly Worst may still displace the root on the ID tie-break).
func (h *TopK) Worst() (float32, bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was kept.
func (h *TopK) Push(id int64, dist float32) bool {
	it := Item{ID: id, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !Less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.siftDown(0)
	return true
}

func (h *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !Less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *TopK) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && Less(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && Less(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// Results returns the collected items sorted by ascending distance.
// The heap is consumed conceptually but remains usable (results are
// copied out).
func (h *TopK) Results() []Item {
	out := make([]Item, len(h.items))
	copy(out, h.items)
	sortItems(out)
	return out
}

// Merge folds every item of other into h. It is the reduction step of the
// Faiss local-heap parallel strategy.
func (h *TopK) Merge(other *TopK) {
	for _, it := range other.items {
		h.Push(it.ID, it.Dist)
	}
}

// Reset empties the heap for reuse without reallocating.
func (h *TopK) Reset() { h.items = h.items[:0] }

// Collector implements the PASE top-k strategy (RC#6): every candidate is
// appended to a slice of size n, which is then heapified as a *min*-heap
// and popped k times. Compared to TopK this costs O(n) memory and
// O(n + k·log n) pops instead of O(k) memory and mostly-rejected pushes.
type Collector struct {
	items []Item
}

// NewCollector returns an empty collector; sizeHint preallocates.
func NewCollector(sizeHint int) *Collector {
	return &Collector{items: make([]Item, 0, sizeHint)}
}

// Push appends a candidate unconditionally (that is the point: PASE pays
// for every candidate regardless of whether it can make the top k).
func (c *Collector) Push(id int64, dist float32) {
	c.items = append(c.items, Item{ID: id, Dist: dist})
}

// Append bulk-adds already-materialized candidates in order — exactly
// len(items) Push calls, at memmove speed. The batched replay path uses
// it to reproduce a solo push sequence without per-item call overhead.
func (c *Collector) Append(items []Item) {
	c.items = append(c.items, items...)
}

// Len returns the number of collected candidates.
func (c *Collector) Len() int { return len(c.items) }

// PopK heapifies all collected items and pops the k smallest, mirroring
// PASE's n-sized heap. The collector is drained.
func (c *Collector) PopK(k int) []Item {
	n := len(c.items)
	// Build a min-heap over all n items (Floyd heapify, O(n)).
	for i := n/2 - 1; i >= 0; i-- {
		c.minSiftDown(i, n)
	}
	if k > n {
		k = n
	}
	out := make([]Item, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, c.items[0])
		n--
		c.items[0] = c.items[n]
		c.minSiftDown(0, n)
	}
	c.items = c.items[:0]
	return out
}

func (c *Collector) minSiftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.items[l].Dist < c.items[smallest].Dist {
			smallest = l
		}
		if r < n && c.items[r].Dist < c.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.items[i], c.items[smallest] = c.items[smallest], c.items[i]
		i = smallest
	}
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return Less(items[i], items[j]) })
}

// MergeK merges candidate lists (e.g. per-shard top-k results) into the
// k globally best items via a size-k bounded heap. Because TopK retains
// the k smallest items under the (Dist, ID) total order, the returned
// slice is deterministic for a given multiset of items regardless of
// list order or arrival order — equal-distance ties at the k boundary
// always resolve the same way. Callers merging across shards encode
// (shard, position) into ID to realize a (distance, shard, tid)
// tie-break.
func MergeK(k int, lists ...[]Item) []Item {
	h := NewTopK(k)
	for _, list := range lists {
		for _, it := range list {
			h.Push(it.ID, it.Dist)
		}
	}
	return h.Results()
}
