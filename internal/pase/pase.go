// Package pase holds the pieces shared by the PASE-style index access
// methods (ivfflat, ivfpq, hnsw): WITH-option parsing, the data-page
// chain convention (next-block pointer in the page special space), and
// the aligned float view used to read vector payloads in place, the way
// PASE casts C structs over PostgreSQL page bytes.
//
// The sub-packages implement the same algorithms as the specialized
// engine (internal/faiss/...), but every vector and graph edge lives in
// slotted pages behind the shared buffer pool. The deliberate
// inefficiencies the paper measures — naive distance loops (RC#1), page
// indirection on every access (RC#2), lock-guarded parallel heaps
// (RC#3), page-per-adjacency-list layout (RC#4), size-n top-k heaps
// (RC#6), per-list PQ tables (RC#7) — are all faithfully reproduced and
// individually measurable.
package pase

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"unsafe"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

// InvalidBlk is the nil block-pointer value in page chains.
const InvalidBlk = ^uint32(0)

// ChainSpecialSize is the special-space footprint of chained data pages:
// a next-block pointer padded to MAXALIGN.
const ChainSpecialSize = 8

// SetNextBlk stores the chain pointer in a page's special space.
func SetNextBlk(p page.Page, blk uint32) {
	binary.LittleEndian.PutUint32(p.Special(), blk)
}

// NextBlk reads the chain pointer from a page's special space.
func NextBlk(p page.Page) uint32 {
	return binary.LittleEndian.Uint32(p.Special())
}

// Float32View reinterprets b as a []float32 without copying. b must be
// 4-byte aligned and a multiple of 4 long — guaranteed for vector
// payloads placed at MAXALIGNed offsets inside page items. It falls back
// to a copy if the alignment contract is ever violated.
func Float32View(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 || len(b)%4 != 0 {
		out := make([]float32, len(b)/4)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return out
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// PutFloat32s serializes vs into b (little-endian), returning the bytes
// consumed.
func PutFloat32s(b []byte, vs []float32) int {
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return 4 * len(vs)
}

// KernelOpt resolves the session's distance kernel from scan-time
// params (SET distance_kernel). An absent or empty value resolves to
// the default kernel; a known-but-unavailable name (avx2 without the
// ISA) falls back silently, per vec.ForName. Search paths score every
// candidate through the returned kernel — build, insert, and delete
// paths do NOT use it (bucket assignment must be session-independent,
// see vec.Ref).
func KernelOpt(params map[string]string) (vec.Kernel, error) {
	return vec.ForName(params["distance_kernel"])
}

// OptInt parses an integer WITH-option, returning def when absent.
func OptInt(opts map[string]string, key string, def int) (int, error) {
	s, ok := opts[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("pase: option %s=%q: %w", key, s, err)
	}
	return v, nil
}

// OptFloat parses a float WITH-option, returning def when absent.
func OptFloat(opts map[string]string, key string, def float64) (float64, error) {
	s, ok := opts[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("pase: option %s=%q: %w", key, s, err)
	}
	return v, nil
}

// OptBool parses a boolean WITH-option ("true"/"false"/"1"/"0"),
// returning def when absent.
func OptBool(opts map[string]string, key string, def bool) (bool, error) {
	s, ok := opts[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("pase: option %s=%q: %w", key, s, err)
	}
	return v, nil
}
