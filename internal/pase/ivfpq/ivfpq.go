// Package ivfpq implements the PASE-style IVF_PQ index access method on
// the PostgreSQL substrate: coarse centroids in centroid pages, PQ
// codebooks in codebook pages, and per-bucket chains of data pages whose
// entries pack a heap TID with the M-byte PQ code of the vector's
// residual.
//
// The paper's RC#7 lives here: PASE computes the query-to-codeword
// distance table from scratch for every probed bucket (a m×c_pq×(d/m)
// scalar-loop computation), while the specialized engine assembles it
// from terms cached at train time. RC#1/RC#2/RC#3/RC#6 apply as in the
// ivfflat sibling.
package ivfpq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/pq"
	"vecstudy/internal/vec"
)

func init() {
	am.Register("ivfpq", Build)
}

const centroidTrailerSize = 16 // firstBlk | lastBlk | count | pad
const dataEntryHeaderSize = 8  // packed TID (6) + pad (2)

type meta struct {
	Dim              uint32
	NList            uint32
	M                uint32
	KSub             uint32
	FirstCentroidBlk uint32
	CentroidsPerPage uint32
	FirstCodebookBlk uint32
}

func encodeMeta(m meta) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint32(b[0:], m.Dim)
	binary.LittleEndian.PutUint32(b[4:], m.NList)
	binary.LittleEndian.PutUint32(b[8:], m.M)
	binary.LittleEndian.PutUint32(b[12:], m.KSub)
	binary.LittleEndian.PutUint32(b[16:], m.FirstCentroidBlk)
	binary.LittleEndian.PutUint32(b[20:], m.CentroidsPerPage)
	binary.LittleEndian.PutUint32(b[24:], m.FirstCodebookBlk)
	return b
}

func decodeMeta(b []byte) meta {
	return meta{
		Dim:              binary.LittleEndian.Uint32(b[0:]),
		NList:            binary.LittleEndian.Uint32(b[4:]),
		M:                binary.LittleEndian.Uint32(b[8:]),
		KSub:             binary.LittleEndian.Uint32(b[12:]),
		FirstCentroidBlk: binary.LittleEndian.Uint32(b[16:]),
		CentroidsPerPage: binary.LittleEndian.Uint32(b[20:]),
		FirstCodebookBlk: binary.LittleEndian.Uint32(b[24:]),
	}
}

// BuildStats reports the construction phases of Figs 5–6.
type BuildStats struct {
	TrainTime time.Duration
	AddTime   time.Duration
	NAdded    int
}

// Index is a built PASE IVF_PQ index.
type Index struct {
	ctx           *am.BuildContext
	meta          meta
	centroidCache []float32
	quant         *pq.Quantizer
	mu            sync.Mutex
	dead          atomic.Int64 // tombstoned entries awaiting Maintain
	stats         BuildStats
}

// AM implements am.Index.
func (ix *Index) AM() string { return "ivfpq" }

// Stats returns build phase timings.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Build trains the coarse and product quantizers over the table and
// bulk-loads the codes. Options: clusters, sample_ratio, m, ksub, seed.
func Build(ctx *am.BuildContext) (am.Index, error) {
	nlist, err := pase.OptInt(ctx.Opts, "clusters", 256)
	if err != nil {
		return nil, err
	}
	sr, err := pase.OptFloat(ctx.Opts, "sample_ratio", 0.01)
	if err != nil {
		return nil, err
	}
	m, err := pase.OptInt(ctx.Opts, "m", 16)
	if err != nil {
		return nil, err
	}
	ksub, err := pase.OptInt(ctx.Opts, "ksub", 256)
	if err != nil {
		return nil, err
	}
	seed, err := pase.OptInt(ctx.Opts, "seed", 0)
	if err != nil {
		return nil, err
	}
	if ctx.Dim%m != 0 {
		return nil, fmt.Errorf("pase/ivfpq: m=%d must divide dim=%d", m, ctx.Dim)
	}

	start := time.Now()
	var tids []heap.TID
	data := vec.NewFlat(ctx.Dim, 1024)
	err = ctx.Table.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		v, err := ctx.Table.Schema().VectorAt(tup, ctx.VecCol)
		if err != nil {
			return false, err
		}
		tids = append(tids, tid)
		data.Append(v)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	n := data.N()
	if n < nlist || n < ksub {
		return nil, fmt.Errorf("pase/ivfpq: %d rows too few for clusters=%d ksub=%d", n, nlist, ksub)
	}
	d := ctx.Dim

	coarse, err := kmeans.Train(data.Data, n, d, kmeans.Config{
		K: nlist, Seed: int64(seed), SampleRatio: sr,
		UseGemm: false, Threads: 1, Flavor: kmeans.FlavorPASE,
	})
	if err != nil {
		return nil, err
	}

	// PQ trained on residuals of a training subset, naive kernels.
	tn := n
	if maxTrain := 64 * ksub; tn > maxTrain {
		tn = maxTrain
	}
	resid := make([]float32, tn*d)
	for i := 0; i < tn; i++ {
		row := data.Data[i*d : (i+1)*d]
		cid := nearest(row, coarse.Centroids, nlist, d)
		c := coarse.Centroids[cid*d : (cid+1)*d]
		dst := resid[i*d : (i+1)*d]
		for j := range dst {
			dst[j] = row[j] - c[j]
		}
	}
	quant, err := pq.Train(resid, tn, d, pq.Config{
		M: m, KSub: ksub, Seed: int64(seed) + 1,
		UseGemm: false, Threads: 1, Flavor: kmeans.FlavorPASE,
	})
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(start)

	addStart := time.Now()
	ix := &Index{ctx: ctx, quant: quant}
	if err := ix.initPages(coarse.Centroids, nlist, quant); err != nil {
		return nil, err
	}
	scratch := make([]float32, d)
	code := make([]byte, m)
	for i := 0; i < n; i++ {
		row := data.Data[i*d : (i+1)*d]
		cid := ix.nearestCentroid(row)
		c := ix.centroidCache[cid*d : (cid+1)*d]
		for j := range scratch {
			scratch[j] = row[j] - c[j]
		}
		quant.Encode(scratch, code)
		if err := ix.appendEntry(cid, code, tids[i]); err != nil {
			return nil, err
		}
	}
	ix.stats = BuildStats{TrainTime: trainTime, AddTime: time.Since(addStart), NAdded: n}
	return ix, nil
}

// refKern pins build-, insert-, and delete-time bucket assignment to the
// ref kernel: which bucket a tuple lands in (and is later re-derived
// from on Delete) must not depend on the session's SET distance_kernel.
var refKern = vec.Ref()

func nearest(x, centroids []float32, k, d int) int {
	best, bestD := 0, refKern.L2Sqr(x, centroids[:d])
	for c := 1; c < k; c++ {
		if dd := refKern.L2Sqr(x, centroids[c*d:(c+1)*d]); dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}

func (ix *Index) nearestCentroid(x []float32) int {
	return nearest(x, ix.centroidCache, int(ix.meta.NList), int(ix.meta.Dim))
}

// initPages lays out meta, centroid, and codebook pages.
func (ix *Index) initPages(centroids []float32, nlist int, quant *pq.Quantizer) error {
	ctx := ix.ctx
	d := ctx.Dim
	entrySize := d*4 + centroidTrailerSize
	usable := ctx.Pool.PageSize() - page.HeaderSize
	perPage := usable / (entrySize + page.ItemIDSize + page.MaxAlign)
	if perPage == 0 {
		return fmt.Errorf("pase/ivfpq: centroid entry of %d bytes does not fit page", entrySize)
	}

	metaBuf, metaBlk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return err
	}
	if metaBlk != 0 {
		metaBuf.Release()
		return fmt.Errorf("pase/ivfpq: meta page allocated at block %d", metaBlk)
	}
	page.Init(metaBuf.Page(), 0)
	ncentroidBlks := (nlist + perPage - 1) / perPage
	ix.meta = meta{
		Dim: uint32(d), NList: uint32(nlist), M: uint32(quant.M), KSub: uint32(quant.KSub),
		FirstCentroidBlk: 1, CentroidsPerPage: uint32(perPage),
		FirstCodebookBlk: uint32(1 + ncentroidBlks),
	}
	if _, err := metaBuf.Page().AddItem(encodeMeta(ix.meta)); err != nil {
		metaBuf.Release()
		return err
	}
	metaBuf.MarkDirty()
	metaBuf.Release()

	entry := make([]byte, entrySize)
	written := 0
	for written < nlist {
		buf, _, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			return err
		}
		page.Init(buf.Page(), 0)
		for i := 0; i < perPage && written < nlist; i++ {
			pase.PutFloat32s(entry, centroids[written*d:(written+1)*d])
			trailer := entry[d*4:]
			binary.LittleEndian.PutUint32(trailer[0:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[4:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[8:], 0)
			if _, err := buf.Page().AddItem(entry); err != nil {
				buf.Release()
				return err
			}
			written++
		}
		buf.MarkDirty()
		buf.Release()
	}
	ix.centroidCache = append([]float32(nil), centroids...)

	// Codebook pages: codewords written sequentially, dsub floats each.
	cw := make([]byte, quant.DSub*4)
	var codeBuf *buffer.Buf
	release := func() {
		if codeBuf != nil {
			codeBuf.MarkDirty()
			codeBuf.Release()
			codeBuf = nil
		}
	}
	newCodePage := func() error {
		release()
		b, _, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			return err
		}
		page.Init(b.Page(), 0)
		codeBuf = b
		return nil
	}
	for m := 0; m < quant.M; m++ {
		for j := 0; j < quant.KSub; j++ {
			pase.PutFloat32s(cw, quant.Codeword(m, j))
			if codeBuf == nil {
				if err := newCodePage(); err != nil {
					return err
				}
			}
			if _, err := codeBuf.Page().AddItem(cw); err != nil {
				if !errors.Is(err, page.ErrPageFull) {
					release()
					return err
				}
				if err := newCodePage(); err != nil {
					return err
				}
				if _, err := codeBuf.Page().AddItem(cw); err != nil {
					release()
					return err
				}
			}
		}
	}
	release()
	return nil
}

// appendEntry adds (code, tid) to bucket cid's chain.
func (ix *Index) appendEntry(cid int, code []byte, tid heap.TID) error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	per := int(ix.meta.CentroidsPerPage)
	blk := ix.meta.FirstCentroidBlk + uint32(cid/per)
	off := uint16(cid%per) + 1

	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		return err
	}
	centry, err := cbuf.Page().Item(off)
	if err != nil {
		cbuf.Release()
		return err
	}
	trailer := centry[d*4:]
	lastBlk := binary.LittleEndian.Uint32(trailer[4:])

	entry := make([]byte, dataEntryHeaderSize+len(code))
	tid.Pack(entry)
	copy(entry[dataEntryHeaderSize:], code)

	appendTo := func(target uint32) (bool, error) {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, target)
		if err != nil {
			return false, err
		}
		_, err = dbuf.Page().AddItem(entry)
		if err == nil {
			dbuf.MarkDirty()
			dbuf.Release()
			return true, nil
		}
		dbuf.Release()
		if errors.Is(err, page.ErrPageFull) {
			return false, nil
		}
		return false, err
	}

	if lastBlk != pase.InvalidBlk {
		ok, err := appendTo(lastBlk)
		if err != nil {
			cbuf.Release()
			return err
		}
		if ok {
			bumpCount(trailer)
			cbuf.MarkDirty()
			cbuf.Release()
			return nil
		}
	}
	// Need a fresh page (bucket head or chain extension).
	nbuf, nblk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		cbuf.Release()
		return err
	}
	page.Init(nbuf.Page(), pase.ChainSpecialSize)
	pase.SetNextBlk(nbuf.Page(), pase.InvalidBlk)
	if _, err := nbuf.Page().AddItem(entry); err != nil {
		nbuf.Release()
		cbuf.Release()
		return err
	}
	nbuf.MarkDirty()
	nbuf.Release()
	if lastBlk != pase.InvalidBlk {
		pbuf, err := ctx.Pool.Pin(ctx.Rel, lastBlk)
		if err != nil {
			cbuf.Release()
			return err
		}
		pase.SetNextBlk(pbuf.Page(), nblk)
		pbuf.MarkDirty()
		pbuf.Release()
	} else {
		binary.LittleEndian.PutUint32(trailer[0:], nblk)
	}
	binary.LittleEndian.PutUint32(trailer[4:], nblk)
	bumpCount(trailer)
	cbuf.MarkDirty()
	cbuf.Release()
	return nil
}

func bumpCount(trailer []byte) {
	binary.LittleEndian.PutUint32(trailer[8:], binary.LittleEndian.Uint32(trailer[8:])+1)
}

// Insert implements am.Index.
func (ix *Index) Insert(v []float32, tid heap.TID) error {
	if len(v) != int(ix.meta.Dim) {
		return fmt.Errorf("pase/ivfpq: inserting %d-dim vector into %d-dim index", len(v), ix.meta.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	d := int(ix.meta.Dim)
	cid := ix.nearestCentroid(v)
	c := ix.centroidCache[cid*d : (cid+1)*d]
	resid := make([]float32, d)
	for j := range resid {
		resid[j] = v[j] - c[j]
	}
	code := make([]byte, ix.quant.M)
	ix.quant.Encode(resid, code)
	if err := ix.appendEntry(cid, code, tid); err != nil {
		return err
	}
	ix.stats.NAdded++
	return nil
}

// SizeBytes reports the index relation's page footprint (Fig 12).
func (ix *Index) SizeBytes() (int64, error) {
	nblocks, err := ix.ctx.Pool.NumBlocks(ix.ctx.Rel)
	if err != nil {
		return 0, err
	}
	return int64(nblocks) * int64(ix.ctx.Pool.PageSize()), nil
}

// Search implements am.Index. params: nprobe, threads. The distance
// table for each probed bucket is recomputed naively (RC#7); candidates
// go into a size-n collector (RC#6) or, when threads > 1, a lock-guarded
// global heap (RC#3).
func (ix *Index) Search(query []float32, k int, params map[string]string) ([]am.Result, error) {
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/ivfpq: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	threads, err := pase.OptInt(params, "threads", 1)
	if err != nil {
		return nil, err
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	probes := ix.selectProbes(kern, query, nprobe)
	if threads > 1 {
		return ix.searchParallel(query, k, probes, threads)
	}
	pr := ix.ctx.Prof
	collector := minheap.NewCollector(1024)
	tHeap := pr.Timer("min-heap")
	tab := make([]float32, ix.quant.M*ix.quant.KSub)
	scratch := make([]float32, ix.meta.Dim)
	for _, cid := range probes {
		if err := ix.scanBucket(query, cid, tab, scratch, func(tid heap.TID, dist float32) {
			ts := tHeap.Start()
			collector.Push(packTID(tid), dist)
			tHeap.Stop(ts)
		}); err != nil {
			return nil, err
		}
	}
	ts := tHeap.Start()
	items := collector.PopK(k)
	tHeap.Stop(ts)
	return itemsToResults(items), nil
}

// SearchFiltered implements am.FilteredIndex: the predicate gates each
// candidate inside the ADC bucket scans, so non-matching codes never
// enter the result heap. The scan is serial (the predicate callback
// resolves heap tuples and is not synchronized).
func (ix *Index) SearchFiltered(query []float32, k int, params map[string]string, pred am.Predicate) ([]am.Result, error) {
	if pred == nil {
		return ix.Search(query, k, params)
	}
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/ivfpq: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	if k <= 0 {
		return nil, errors.New("pase/ivfpq: k must be positive")
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	top := minheap.NewTopK(k)
	tab := make([]float32, ix.quant.M*ix.quant.KSub)
	scratch := make([]float32, ix.meta.Dim)
	var predErr error
	for _, cid := range ix.selectProbes(kern, query, nprobe) {
		if err := ix.scanBucket(query, cid, tab, scratch, func(tid heap.TID, dist float32) {
			if predErr != nil {
				return
			}
			ok, err := pred(tid)
			if err != nil {
				predErr = err
				return
			}
			if ok {
				top.Push(packTID(tid), dist)
			}
		}); err != nil {
			return nil, err
		}
		if predErr != nil {
			return nil, predErr
		}
	}
	return itemsToResults(top.Results()), nil
}

func (ix *Index) searchParallel(query []float32, k int, probes []int32, threads int) ([]am.Result, error) {
	global := minheap.NewSharedTopK(k)
	err := pase.ScanProbesParallel(probes, threads, func() func(int32) error {
		// Per-worker scratch: the naive distance table (RC#7) and the
		// residual buffer.
		tab := make([]float32, ix.quant.M*ix.quant.KSub)
		scratch := make([]float32, ix.meta.Dim)
		return func(cid int32) error {
			return ix.scanBucket(query, cid, tab, scratch, func(tid heap.TID, dist float32) {
				global.Push(packTID(tid), dist)
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return itemsToResults(global.Results()), nil
}

// scanBucket computes the naive distance table for bucket cid and scans
// its code chain, emitting (tid, approx distance) for every entry.
func (ix *Index) scanBucket(query []float32, cid int32, tab, scratch []float32, emit func(heap.TID, float32)) error {
	pr := ix.ctx.Prof
	m := int(ix.meta.M)
	ksub := int(ix.meta.KSub)
	ix.computeTab(query, cid, tab, scratch)
	tScan := pr.Timer("adc-scan")
	return ix.scanCodes(cid, func(tid heap.TID, code []byte) {
		tsS := tScan.Start()
		var dist float32
		for mm := 0; mm < m; mm++ {
			dist += tab[mm*ksub+int(code[mm])]
		}
		tScan.Stop(tsS)
		emit(tid, dist)
	})
}

// computeTab rebuilds the query-to-codeword distance table for bucket cid
// from scratch (RC#7): residual against the coarse centroid, then the
// naive sub-quantizer table. The table depends only on (query, cid), so
// the multi-query probe computes it once per probing query per bucket
// with arithmetic identical to the solo scan.
func (ix *Index) computeTab(query []float32, cid int32, tab, scratch []float32) {
	pr := ix.ctx.Prof
	d := int(ix.meta.Dim)
	ts := pr.Timer("precomputed-table").Start()
	c := ix.centroidCache[int(cid)*d : (int(cid)+1)*d]
	for j := range scratch {
		scratch[j] = query[j] - c[j]
	}
	ix.quant.DistanceTableNaive(scratch, tab)
	pr.Timer("precomputed-table").Stop(ts)
}

// scanCodes walks bucket cid's code chain through the buffer pool,
// emitting each entry's TID and PQ code. The code slice aliases the
// pinned page and is valid only during the callback. MultiSearch scans a
// bucket once through this walker for all queries probing it.
func (ix *Index) scanCodes(cid int32, emit func(heap.TID, []byte)) error {
	ctx := ix.ctx
	pr := ctx.Prof
	d := int(ix.meta.Dim)
	per := int(ix.meta.CentroidsPerPage)
	blk := ix.meta.FirstCentroidBlk + uint32(int(cid)/per)
	off := uint16(int(cid)%per) + 1
	tTuple := pr.Timer("tuple_access")

	tsT := tTuple.Start()
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		tTuple.Stop(tsT)
		return err
	}
	centry, err := cbuf.Page().Item(off)
	tTuple.Stop(tsT)
	if err != nil {
		cbuf.Release()
		return err
	}
	next := binary.LittleEndian.Uint32(centry[d*4:])
	cbuf.Release()

	for next != pase.InvalidBlk {
		tsT := tTuple.Start()
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		tTuple.Stop(tsT)
		if err != nil {
			return err
		}
		pg := dbuf.Page()
		n := pg.NumItems()
		for i := uint16(1); i <= n; i++ {
			tsT := tTuple.Start()
			item, err := pg.Item(i)
			if err != nil {
				tTuple.Stop(tsT)
				if errors.Is(err, page.ErrDeadItem) {
					continue // tombstoned code: skip, reclaimed by Maintain
				}
				dbuf.Release()
				return err
			}
			tid := heap.UnpackTID(item)
			code := item[dataEntryHeaderSize:]
			tTuple.Stop(tsT)
			emit(tid, code)
		}
		next = pase.NextBlk(pg)
		dbuf.Release()
	}
	return nil
}

func (ix *Index) selectProbes(kern vec.Kernel, query []float32, nprobe int) []int32 {
	d := int(ix.meta.Dim)
	heap := minheap.NewTopK(nprobe)
	for c := 0; c < int(ix.meta.NList); c++ {
		heap.Push(int64(c), kern.L2Sqr(query, ix.centroidCache[c*d:(c+1)*d]))
	}
	items := heap.Results()
	out := make([]int32, len(items))
	for i, it := range items {
		out[i] = int32(it.ID)
	}
	return out
}

func packTID(tid heap.TID) int64 {
	return int64(tid.Blk)<<16 | int64(tid.Off)
}

func unpackTID(v int64) heap.TID {
	return heap.TID{Blk: uint32(v >> 16), Off: uint16(v & 0xFFFF)}
}

func itemsToResults(items []minheap.Item) []am.Result {
	out := make([]am.Result, len(items))
	for i, it := range items {
		out[i] = am.Result{TID: unpackTID(it.ID), Dist: it.Dist}
	}
	return out
}
