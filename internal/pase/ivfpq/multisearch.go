package ivfpq

import (
	"errors"
	"fmt"
	"sort"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/vec"
)

// MultiSearch implements am.BatchIndex for IVF_PQ. Coarse centroid
// scoring for the whole batch is one kernel L2SqrNT call (bit-equal,
// pair by pair, to the solo L2Sqr of selectProbes), and each probed bucket's code
// chain is walked once for all queries probing it, amortizing page pins
// across the batch. The per-(query, bucket) distance tables are still
// rebuilt from scratch with the exact solo arithmetic — RC#7 is about
// the table's construction cost, and it is preserved unchanged — only
// the chain walk and pins are shared.
//
// Candidates are recorded per (query, probe-rank) and replayed in each
// query's own probe order, reproducing the solo push sequence into the
// size-n collector (RC#6) or, for filtered queries, the bounded TopK,
// so results are byte-identical to per-query calls. threads > 1 (the
// RC#3 shared-heap path) degenerates to a per-query loop with solo
// semantics.
func (ix *Index) MultiSearch(queries [][]float32, ks []int, params map[string]string, preds []am.Predicate) ([][]am.Result, error) {
	B := len(queries)
	if len(ks) != B || (preds != nil && len(preds) != B) {
		return nil, errors.New("pase/ivfpq: MultiSearch argument lengths differ")
	}
	if B == 0 {
		return nil, nil
	}
	pred := func(i int) am.Predicate {
		if preds == nil {
			return nil
		}
		return preds[i]
	}
	anyUnfiltered := false
	for i := range queries {
		if len(queries[i]) != int(ix.meta.Dim) {
			return nil, fmt.Errorf("pase/ivfpq: query dimension %d != %d", len(queries[i]), ix.meta.Dim)
		}
		if pred(i) == nil {
			anyUnfiltered = true
		} else if ks[i] <= 0 {
			// Solo SearchFiltered rejects k <= 0; solo Search does not
			// check (the collector clamps), so only filtered queries get
			// the explicit error.
			return nil, errors.New("pase/ivfpq: k must be positive")
		}
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	threads := 1
	if anyUnfiltered {
		if threads, err = pase.OptInt(params, "threads", 1); err != nil {
			return nil, err
		}
	}
	if threads > 1 {
		return ix.multiSearchSolo(queries, ks, params, pred)
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}

	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	probes := ix.multiSelectProbes(kern, queries, nprobe)

	type sub struct{ qi, rank int }
	subs := make(map[int32][]sub)
	for qi, ps := range probes {
		for rank, cid := range ps {
			subs[cid] = append(subs[cid], sub{qi, rank})
		}
	}
	order := make([]int32, 0, len(subs))
	for cid := range subs {
		order = append(order, cid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	cand := make([][][]minheap.Item, B)
	for i := range cand {
		cand[i] = make([][]minheap.Item, len(probes[i]))
	}
	m := int(ix.meta.M)
	ksub := int(ix.meta.KSub)
	scratch := make([]float32, ix.meta.Dim)
	tabs := make(map[int]int) // qi -> row in tabBuf for the current bucket
	var tabBuf []float32
	tScan := ix.ctx.Prof.Timer("adc-scan")
	for _, cid := range order {
		ss := subs[cid]
		// One RC#7 table per probing query for this bucket, with the
		// exact solo arithmetic (residual + naive sub-quantizer table).
		if need := len(ss) * m * ksub; cap(tabBuf) < need {
			tabBuf = make([]float32, need)
		}
		for k := range tabs {
			delete(tabs, k)
		}
		for row, sb := range ss {
			tab := tabBuf[row*m*ksub : (row+1)*m*ksub]
			ix.computeTab(queries[sb.qi], cid, tab, scratch)
			tabs[sb.qi] = row
		}
		err := ix.scanCodes(cid, func(tid heap.TID, code []byte) {
			id := packTID(tid)
			for _, sb := range ss {
				tab := tabBuf[tabs[sb.qi]*m*ksub:]
				tsS := tScan.Start()
				var dist float32
				for mm := 0; mm < m; mm++ {
					dist += tab[mm*ksub+int(code[mm])]
				}
				tScan.Stop(tsS)
				cand[sb.qi][sb.rank] = append(cand[sb.qi][sb.rank], minheap.Item{ID: id, Dist: dist})
			}
		})
		if err != nil {
			return nil, err
		}
	}

	out := make([][]am.Result, B)
	for i := 0; i < B; i++ {
		if p := pred(i); p != nil {
			top := minheap.NewTopK(ks[i])
			for _, lst := range cand[i] {
				for _, it := range lst {
					ok, err := p(unpackTID(it.ID))
					if err != nil {
						return nil, err
					}
					if ok {
						top.Push(it.ID, it.Dist)
					}
				}
			}
			out[i] = itemsToResults(top.Results())
			continue
		}
		collector := minheap.NewCollector(1024)
		for _, lst := range cand[i] {
			for _, it := range lst {
				collector.Push(it.ID, it.Dist)
			}
		}
		out[i] = itemsToResults(collector.PopK(ks[i]))
	}
	return out, nil
}

// multiSearchSolo executes the batch as a per-query loop with exact solo
// semantics.
func (ix *Index) multiSearchSolo(queries [][]float32, ks []int, params map[string]string, pred func(int) am.Predicate) ([][]am.Result, error) {
	out := make([][]am.Result, len(queries))
	for i := range queries {
		var hits []am.Result
		var err error
		if p := pred(i); p != nil {
			hits, err = ix.SearchFiltered(queries[i], ks[i], params, p)
		} else {
			hits, err = ix.Search(queries[i], ks[i], params)
		}
		if err != nil {
			return nil, err
		}
		out[i] = hits
	}
	return out, nil
}

// multiSelectProbes is selectProbes for the whole batch via one batched
// scoring call; see the ivfflat sibling for the bitwise-parity argument.
func (ix *Index) multiSelectProbes(kern vec.Kernel, queries [][]float32, nprobe int) [][]int32 {
	d := int(ix.meta.Dim)
	nlist := int(ix.meta.NList)
	B := len(queries)
	flat := make([]float32, B*d)
	for i, q := range queries {
		copy(flat[i*d:(i+1)*d], q)
	}
	dists := make([]float32, B*nlist)
	vec.NTParallel(kern, flat, B, d, ix.centroidCache[:nlist*d], nlist, dists, 0)
	out := make([][]int32, B)
	for i := range queries {
		h := minheap.NewTopK(nprobe)
		for c := 0; c < nlist; c++ {
			h.Push(int64(c), dists[i*nlist+c])
		}
		items := h.Results()
		probes := make([]int32, len(items))
		for j, it := range items {
			probes[j] = int32(it.ID)
		}
		out[i] = probes
	}
	return out
}
