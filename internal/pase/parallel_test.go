package pase

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func probeRange(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestScanProbesParallelCoversAllProbes(t *testing.T) {
	const n = 257
	var seen [n]atomic.Int32
	err := ScanProbesParallel(probeRange(n), 4, func() func(int32) error {
		return func(p int32) error {
			seen[p].Add(1)
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("probe %d scanned %d times, want exactly 1", i, got)
		}
	}
}

// Regression: a worker error used to end only that worker's loop; its
// siblings kept scanning every leftover probe, wasting work and delaying
// error propagation. The shared cancel flag must stop the pool promptly.
func TestScanProbesParallelCancelsOnError(t *testing.T) {
	const n = 1000
	boom := errors.New("bucket scan failed")
	var scanned atomic.Int64
	err := ScanProbesParallel(probeRange(n), 4, func() func(int32) error {
		return func(p int32) error {
			if p == 0 {
				return boom // the very first probe fails
			}
			scanned.Add(1)
			time.Sleep(200 * time.Microsecond)
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Without cancellation the three surviving workers scan all ~999
	// remaining probes; with it they stop at their next cursor check.
	if got := scanned.Load(); got > n/10 {
		t.Errorf("workers scanned %d probes after the error, want early cancellation", got)
	}
}

func TestScanProbesParallelFirstErrorWins(t *testing.T) {
	boom := errors.New("scan error")
	err := ScanProbesParallel(probeRange(64), 8, func() func(int32) error {
		return func(p int32) error { return boom }
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want scan error, got %v", err)
	}
	if err := ScanProbesParallel(nil, 8, func() func(int32) error {
		return func(p int32) error { return errors.New("must not run") }
	}); err != nil {
		t.Fatalf("empty probe list: %v", err)
	}
}
