// Package ivfflat implements the PASE-style IVF_FLAT index access method
// on the PostgreSQL substrate. The on-page structure follows the PASE
// paper: a meta page, centroid pages holding the trained centroid tuples
// (each with head/tail pointers to its bucket), and per-bucket chains of
// data pages whose entries pack a heap TID with the raw vector.
//
// Faithful PASE behaviours the study measures:
//
//   - RC#1: the adding phase assigns vectors with plain scalar distance
//     loops (no SGEMM batching).
//   - RC#2: every bucket scan pins pages through the shared buffer pool
//     and locates entries via line pointers.
//   - RC#3: intra-query parallelism pushes candidates into one global
//     lock-guarded heap.
//   - RC#5: centroids come from the PASE-flavour K-means.
//   - RC#6: serial top-k uses a size-n collector heap, not a size-k heap.
package ivfflat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

func init() {
	am.Register("ivfflat", Build)
}

// centroid entry layout: vector (dim·4) then bucket bookkeeping.
const centroidTrailerSize = 16 // firstBlk u32 | lastBlk u32 | count u32 | pad u32

// data entry layout: packed TID (6) + pad (2) so the vector lands
// MAXALIGN-compatible, then the vector.
const dataEntryHeaderSize = 8

// metaFormat is item 1 of block 0.
type meta struct {
	Dim              uint32
	NList            uint32
	FirstCentroidBlk uint32
	CentroidsPerPage uint32
}

func encodeMeta(m meta) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint32(b[0:], m.Dim)
	binary.LittleEndian.PutUint32(b[4:], m.NList)
	binary.LittleEndian.PutUint32(b[8:], m.FirstCentroidBlk)
	binary.LittleEndian.PutUint32(b[12:], m.CentroidsPerPage)
	return b
}

func decodeMeta(b []byte) meta {
	return meta{
		Dim:              binary.LittleEndian.Uint32(b[0:]),
		NList:            binary.LittleEndian.Uint32(b[4:]),
		FirstCentroidBlk: binary.LittleEndian.Uint32(b[8:]),
		CentroidsPerPage: binary.LittleEndian.Uint32(b[12:]),
	}
}

// Index is a built PASE IVF_FLAT index.
type Index struct {
	ctx  *am.BuildContext
	meta meta

	// centroidCache holds the centroid vectors read once at open; PASE
	// similarly keeps centroid buffers pinned during build/search since
	// access is sequential (the paper notes IVF build does not suffer the
	// indirection penalty the way HNSW does).
	centroidCache []float32

	mu sync.Mutex // serializes inserts and deletes

	dead atomic.Int64 // tombstoned entries awaiting Maintain

	stats BuildStats
}

// BuildStats reports the construction phases of Figs 3–4.
type BuildStats struct {
	TrainTime time.Duration
	AddTime   time.Duration
	NAdded    int
}

// Stats returns the build phase timings.
func (ix *Index) Stats() BuildStats { return ix.stats }

// AM implements am.Index.
func (ix *Index) AM() string { return "ivfflat" }

// Centroids returns the trained centroid matrix (NList×Dim) — the hook
// the Fig 15 experiment uses to transplant PASE's clustering into Faiss*.
func (ix *Index) Centroids() []float32 { return ix.centroidCache }

// NList returns the number of buckets.
func (ix *Index) NList() int { return int(ix.meta.NList) }

// Build trains centroids over the table's vectors and bulk-loads every
// row into its bucket. Options: clusters (c), sample_ratio (sr),
// distance_type (0=L2), seed.
func Build(ctx *am.BuildContext) (am.Index, error) {
	nlist, err := pase.OptInt(ctx.Opts, "clusters", 256)
	if err != nil {
		return nil, err
	}
	sr, err := pase.OptFloat(ctx.Opts, "sample_ratio", 0.01)
	if err != nil {
		return nil, err
	}
	seed, err := pase.OptInt(ctx.Opts, "seed", 0)
	if err != nil {
		return nil, err
	}
	if nlist <= 0 {
		return nil, errors.New("pase/ivfflat: clusters must be positive")
	}

	// Phase 0: scan the heap to materialize (tid, vector) pairs. PASE's
	// ambuild does the same underlying table scan through the buffer pool.
	start := time.Now()
	var tids []heap.TID
	data := vec.NewFlat(ctx.Dim, 1024)
	err = ctx.Table.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		v, err := ctx.Table.Schema().VectorAt(tup, ctx.VecCol)
		if err != nil {
			return false, err
		}
		if len(v) != ctx.Dim {
			return false, fmt.Errorf("pase/ivfflat: row %v has dimension %d, index expects %d", tid, len(v), ctx.Dim)
		}
		tids = append(tids, tid)
		data.Append(v)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	n := data.N()
	if n < nlist {
		return nil, fmt.Errorf("pase/ivfflat: %d rows cannot form %d clusters", n, nlist)
	}

	// Training phase: PASE-flavour K-means, naive distance kernels.
	res, err := kmeans.Train(data.Data, n, ctx.Dim, kmeans.Config{
		K:           nlist,
		Seed:        int64(seed),
		SampleRatio: sr,
		UseGemm:     false, // RC#1: PASE has no SGEMM path
		Threads:     1,     // RC#3: PASE builds single-threaded
		Flavor:      kmeans.FlavorPASE,
	})
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(start)

	// Write the index structure: meta page, centroid pages, buckets.
	addStart := time.Now()
	ix := &Index{ctx: ctx}
	if err := ix.initPages(res.Centroids, nlist); err != nil {
		return nil, err
	}

	// Adding phase: assign each vector with naive scalar loops and append
	// it to its bucket through the buffer manager.
	d := ctx.Dim
	for i := 0; i < n; i++ {
		x := data.Data[i*d : (i+1)*d]
		cid := ix.nearestCentroid(x)
		if err := ix.appendEntry(cid, x, tids[i]); err != nil {
			return nil, err
		}
	}
	ix.stats = BuildStats{TrainTime: trainTime, AddTime: time.Since(addStart), NAdded: n}
	return ix, nil
}

// Open re-binds an existing index relation (e.g., after restart).
func Open(ctx *am.BuildContext) (am.Index, error) {
	ix := &Index{ctx: ctx}
	buf, err := ctx.Pool.Pin(ctx.Rel, 0)
	if err != nil {
		return nil, err
	}
	item, err := buf.Page().Item(1)
	if err != nil {
		buf.Release()
		return nil, fmt.Errorf("pase/ivfflat: reading meta page: %w", err)
	}
	ix.meta = decodeMeta(item)
	buf.Release()
	if int(ix.meta.Dim) != ctx.Dim {
		return nil, fmt.Errorf("pase/ivfflat: index dim %d != table dim %d", ix.meta.Dim, ctx.Dim)
	}
	return ix, ix.loadCentroidCache()
}

// initPages lays out the meta page and centroid pages.
func (ix *Index) initPages(centroids []float32, nlist int) error {
	ctx := ix.ctx
	d := ctx.Dim
	entrySize := d*4 + centroidTrailerSize
	usable := ctx.Pool.PageSize() - page.HeaderSize
	perPage := usable / (entrySize + page.ItemIDSize + page.MaxAlign)
	if perPage == 0 {
		return fmt.Errorf("pase/ivfflat: centroid entry of %d bytes does not fit page", entrySize)
	}

	metaBuf, metaBlk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return err
	}
	if metaBlk != 0 {
		metaBuf.Release()
		return fmt.Errorf("pase/ivfflat: meta page allocated at block %d", metaBlk)
	}
	page.Init(metaBuf.Page(), 0)

	ix.meta = meta{Dim: uint32(d), NList: uint32(nlist), FirstCentroidBlk: 1, CentroidsPerPage: uint32(perPage)}
	if _, err := metaBuf.Page().AddItem(encodeMeta(ix.meta)); err != nil {
		metaBuf.Release()
		return err
	}
	metaBuf.MarkDirty()
	metaBuf.Release()

	entry := make([]byte, entrySize)
	written := 0
	for written < nlist {
		buf, _, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			return err
		}
		page.Init(buf.Page(), 0)
		for i := 0; i < perPage && written < nlist; i++ {
			pase.PutFloat32s(entry, centroids[written*d:(written+1)*d])
			trailer := entry[d*4:]
			binary.LittleEndian.PutUint32(trailer[0:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[4:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[8:], 0)
			if _, err := buf.Page().AddItem(entry); err != nil {
				buf.Release()
				return err
			}
			written++
		}
		buf.MarkDirty()
		buf.Release()
	}
	return ix.loadCentroidCache()
}

// loadCentroidCache reads every centroid vector into memory once.
func (ix *Index) loadCentroidCache() error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	nlist := int(ix.meta.NList)
	cache := make([]float32, 0, nlist*d)
	read := 0
	blk := ix.meta.FirstCentroidBlk
	for read < nlist {
		buf, err := ctx.Pool.Pin(ctx.Rel, blk)
		if err != nil {
			return err
		}
		pg := buf.Page()
		n := int(pg.NumItems())
		for i := 1; i <= n && read < nlist; i++ {
			item, err := pg.Item(uint16(i))
			if err != nil {
				buf.Release()
				return err
			}
			cache = append(cache, pase.Float32View(item[:d*4])...)
			read++
		}
		buf.Release()
		blk++
	}
	ix.centroidCache = cache
	return nil
}

// centroidLoc maps a centroid ID to its page slot.
func (ix *Index) centroidLoc(cid int) (uint32, uint16) {
	per := int(ix.meta.CentroidsPerPage)
	return ix.meta.FirstCentroidBlk + uint32(cid/per), uint16(cid%per) + 1
}

// refKern is the fixed reference kernel for bucket assignment: Insert
// and Delete must re-derive the same bucket for a vector regardless of
// the session's SET distance_kernel, so assignment arithmetic is pinned
// here and never dispatched.
var refKern = vec.Ref()

// nearestCentroid runs the PASE-style scalar argmin over all centroids.
func (ix *Index) nearestCentroid(x []float32) int {
	d := int(ix.meta.Dim)
	best, bestD := 0, refKern.L2Sqr(x, ix.centroidCache[:d])
	for c := 1; c < int(ix.meta.NList); c++ {
		if dd := refKern.L2Sqr(x, ix.centroidCache[c*d:(c+1)*d]); dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}

// appendEntry adds (vector, tid) to bucket cid's data-page chain.
func (ix *Index) appendEntry(cid int, x []float32, tid heap.TID) error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	blk, off := ix.centroidLoc(cid)

	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		return err
	}
	centry, err := cbuf.Page().Item(off)
	if err != nil {
		cbuf.Release()
		return err
	}
	trailer := centry[d*4:]
	lastBlk := binary.LittleEndian.Uint32(trailer[4:])

	entry := make([]byte, dataEntryHeaderSize+d*4)
	tid.Pack(entry)
	pase.PutFloat32s(entry[dataEntryHeaderSize:], x)

	if lastBlk != pase.InvalidBlk {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, lastBlk)
		if err != nil {
			cbuf.Release()
			return err
		}
		if _, err := dbuf.Page().AddItem(entry); err == nil {
			dbuf.MarkDirty()
			dbuf.Release()
			ix.bumpCount(cbuf, trailer)
			cbuf.Release()
			return nil
		} else if !errors.Is(err, page.ErrPageFull) {
			dbuf.Release()
			cbuf.Release()
			return err
		}
		// Chain a new page after the full tail.
		nbuf, nblk, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			dbuf.Release()
			cbuf.Release()
			return err
		}
		page.Init(nbuf.Page(), pase.ChainSpecialSize)
		pase.SetNextBlk(nbuf.Page(), pase.InvalidBlk)
		if _, err := nbuf.Page().AddItem(entry); err != nil {
			nbuf.Release()
			dbuf.Release()
			cbuf.Release()
			return err
		}
		nbuf.MarkDirty()
		nbuf.Release()
		pase.SetNextBlk(dbuf.Page(), nblk)
		dbuf.MarkDirty()
		dbuf.Release()
		binary.LittleEndian.PutUint32(trailer[4:], nblk)
		ix.bumpCount(cbuf, trailer)
		cbuf.Release()
		return nil
	}

	// First entry of this bucket: allocate its head page.
	nbuf, nblk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		cbuf.Release()
		return err
	}
	page.Init(nbuf.Page(), pase.ChainSpecialSize)
	pase.SetNextBlk(nbuf.Page(), pase.InvalidBlk)
	if _, err := nbuf.Page().AddItem(entry); err != nil {
		nbuf.Release()
		cbuf.Release()
		return err
	}
	nbuf.MarkDirty()
	nbuf.Release()
	binary.LittleEndian.PutUint32(trailer[0:], nblk)
	binary.LittleEndian.PutUint32(trailer[4:], nblk)
	ix.bumpCount(cbuf, trailer)
	cbuf.Release()
	return nil
}

// bumpCount increments the bucket population stored in the centroid entry.
func (ix *Index) bumpCount(cbuf *buffer.Buf, trailer []byte) {
	binary.LittleEndian.PutUint32(trailer[8:], binary.LittleEndian.Uint32(trailer[8:])+1)
	cbuf.MarkDirty()
}

// Insert implements am.Index.
func (ix *Index) Insert(v []float32, tid heap.TID) error {
	if len(v) != int(ix.meta.Dim) {
		return fmt.Errorf("pase/ivfflat: inserting %d-dim vector into %d-dim index", len(v), ix.meta.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cid := ix.nearestCentroid(v)
	if err := ix.appendEntry(cid, v, tid); err != nil {
		return err
	}
	ix.stats.NAdded++
	return nil
}

// SizeBytes reports the index relation's page footprint (pages × page
// size), the way Fig 11 measures on-disk index size.
func (ix *Index) SizeBytes() (int64, error) {
	nblocks, err := ix.ctx.Pool.NumBlocks(ix.ctx.Rel)
	if err != nil {
		return 0, err
	}
	return int64(nblocks) * int64(ix.ctx.Pool.PageSize()), nil
}

// BucketSizes returns per-bucket populations (for skew reports).
func (ix *Index) BucketSizes() ([]int, error) {
	out := make([]int, ix.meta.NList)
	d := int(ix.meta.Dim)
	for cid := range out {
		blk, off := ix.centroidLoc(cid)
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, blk)
		if err != nil {
			return nil, err
		}
		centry, err := buf.Page().Item(off)
		if err != nil {
			buf.Release()
			return nil, err
		}
		out[cid] = int(binary.LittleEndian.Uint32(centry[d*4+8:]))
		buf.Release()
	}
	return out, nil
}

// Assignments maps every indexed TID to its bucket (Fig 15 transplant).
func (ix *Index) Assignments() (map[heap.TID]int32, error) {
	out := make(map[heap.TID]int32, ix.stats.NAdded)
	d := int(ix.meta.Dim)
	for cid := 0; cid < int(ix.meta.NList); cid++ {
		blk, off := ix.centroidLoc(cid)
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, blk)
		if err != nil {
			return nil, err
		}
		centry, err := buf.Page().Item(off)
		if err != nil {
			buf.Release()
			return nil, err
		}
		next := binary.LittleEndian.Uint32(centry[d*4:])
		buf.Release()
		for next != pase.InvalidBlk {
			dbuf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, next)
			if err != nil {
				return nil, err
			}
			pg := dbuf.Page()
			for i := uint16(1); i <= pg.NumItems(); i++ {
				item, err := pg.Item(i)
				if err != nil {
					if errors.Is(err, page.ErrDeadItem) {
						continue
					}
					dbuf.Release()
					return nil, err
				}
				out[heap.UnpackTID(item)] = int32(cid)
			}
			next = pase.NextBlk(pg)
			dbuf.Release()
		}
	}
	return out, nil
}
