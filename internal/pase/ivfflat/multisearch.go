package ivfflat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

// MultiSearch implements am.BatchIndex: a batch of queries executes as
// one multi-query probe. Centroid scoring for the whole batch is a
// single SGEMM-shaped kernel L2SqrNT call (paper RC#1 applied to
// serving), and each probed bucket's page chain is walked once for
// every query probing it, so page pins and tuple accesses are amortized
// across the batch instead of repeated per query.
//
// Results are byte-identical to per-query Search/SearchFiltered calls
// under every kernel (a batch group never mixes kernels —
// distance_kernel is part of the coalescer's group key):
//
//   - every kernel's L2SqrNT is bit-equal, pair by pair, to the solo
//     L2Sqr that selectProbes uses (the kernelparity contract), and the
//     per-query TopK(nprobe) sees centroids in the same c=0..NList-1
//     push order, so probe lists match exactly;
//   - bucket distances are one kernel L2SqrNTRows call per bucket segment,
//     with the bucket's tuples as the A rows — zero-copy views into the
//     pinned pages — and the subscribing queries as the B rows. The
//     transposition is deliberate: A rows drive the unroll, and a bucket
//     always has many tuples even when only one query subscribes, so the
//     independent accumulator chains (the ILP that makes RC#1 pay on a
//     single core) engage for every bucket.
//     Each (tuple, query) chain computes Σ(t_p−q_p)², which is bitwise
//     equal to solo's Σ(q_p−t_p)²: IEEE subtraction is sign-symmetric,
//     and x·x == (−x)·(−x);
//   - candidates are recorded per (query, probe-rank) during the shared
//     bucket-union scan and replayed in each query's own probe-rank
//     order, reproducing the solo push sequence exactly. That matters
//     because the default collector's PopK (RC#6) breaks distance ties
//     by push order; TopK-based paths (heap=k, filtered) are push-order
//     independent under the (Dist, ID) total order but get the same
//     sequence anyway.
//
// threads > 1 (the RC#3 lock-guarded shared-heap path) is not coalesced;
// the batch degenerates to a per-query loop with solo semantics.
func (ix *Index) MultiSearch(queries [][]float32, ks []int, params map[string]string, preds []am.Predicate) ([][]am.Result, error) {
	B := len(queries)
	if len(ks) != B || (preds != nil && len(preds) != B) {
		return nil, errors.New("pase/ivfflat: MultiSearch argument lengths differ")
	}
	if B == 0 {
		return nil, nil
	}
	pred := func(i int) am.Predicate {
		if preds == nil {
			return nil
		}
		return preds[i]
	}
	anyUnfiltered := false
	for i := range queries {
		if len(queries[i]) != int(ix.meta.Dim) {
			return nil, fmt.Errorf("pase/ivfflat: query dimension %d != %d", len(queries[i]), ix.meta.Dim)
		}
		if ks[i] <= 0 {
			return nil, errors.New("pase/ivfflat: k must be positive")
		}
		if pred(i) == nil {
			anyUnfiltered = true
		}
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	// Solo filtered search never reads threads, so only consult it when
	// an unfiltered query (whose solo path does) is present.
	threads := 1
	if anyUnfiltered {
		if threads, err = pase.OptInt(params, "threads", 1); err != nil {
			return nil, err
		}
	}
	if threads > 1 {
		return ix.multiSearchSolo(queries, ks, params, pred)
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}

	probes := ix.multiSelectProbes(kern, queries, nprobe)

	// Invert probe lists into per-bucket subscriber lists and scan the
	// bucket union once, recording candidates per (query, probe-rank).
	type sub struct{ qi, rank int }
	subs := make(map[int32][]sub)
	for qi, ps := range probes {
		for rank, cid := range ps {
			subs[cid] = append(subs[cid], sub{qi, rank})
		}
	}
	order := make([]int32, 0, len(subs))
	for cid := range subs {
		order = append(order, cid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	cand := make([][][]minheap.Item, B)
	for i := range cand {
		cand[i] = make([][]minheap.Item, len(probes[i]))
	}
	d := int(ix.meta.Dim)
	tDist := ix.ctx.Prof.Timer("fvec_L2sqr")
	var sc bucketScanScratch
	var qf []float32    // subscriber queries, len(ss)×d (B rows)
	var dists []float32 // nt×len(ss) distance matrix
	for _, cid := range order {
		ss := subs[cid]
		qf = qf[:0]
		for _, sb := range ss {
			qf = append(qf, queries[sb.qi]...)
		}
		// The pinned walk hands over tuple views that alias page memory;
		// one L2SqrNTRows call scores the whole segment against every
		// subscriber without copying a single vector.
		err := ix.scanBucketPinned(cid, &sc, func(tids []int64, rows [][]float32) error {
			nt := len(tids)
			if cap(dists) < nt*len(ss) {
				dists = make([]float32, nt*len(ss))
			}
			dd := dists[:nt*len(ss)]
			ts := tDist.Start()
			kern.L2SqrNTRows(rows, d, qf, len(ss), dd)
			tDist.Stop(ts)
			for si, sb := range ss {
				lst := cand[sb.qi][sb.rank]
				if lst == nil {
					lst = make([]minheap.Item, 0, nt)
				}
				for t := 0; t < nt; t++ {
					lst = append(lst, minheap.Item{ID: tids[t], Dist: dd[t*len(ss)+si]})
				}
				cand[sb.qi][sb.rank] = lst
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Replay each query's candidates in its solo push order and rank them
	// with the same heap strategy its solo call would use.
	heapK := params["heap"] == "k"
	out := make([][]am.Result, B)
	for i := 0; i < B; i++ {
		switch p := pred(i); {
		case p != nil:
			top := minheap.NewTopK(ks[i])
			for _, lst := range cand[i] {
				for _, it := range lst {
					ok, err := p(unpackTID(it.ID))
					if err != nil {
						return nil, err
					}
					if ok {
						top.Push(it.ID, it.Dist)
					}
				}
			}
			out[i] = itemsToResults(top.Results())
		case heapK:
			top := minheap.NewTopK(ks[i])
			for _, lst := range cand[i] {
				for _, it := range lst {
					top.Push(it.ID, it.Dist)
				}
			}
			out[i] = itemsToResults(top.Results())
		default:
			total := 0
			for _, lst := range cand[i] {
				total += len(lst)
			}
			collector := minheap.NewCollector(total)
			for _, lst := range cand[i] {
				collector.Append(lst)
			}
			out[i] = itemsToResults(collector.PopK(ks[i]))
		}
	}
	return out, nil
}

// bucketScanScratch is the reusable state of scanBucketPinned: tuple IDs
// and page-aliasing vector views for the current segment, plus the pins
// that keep those views alive.
type bucketScanScratch struct {
	tids   []int64
	rows   [][]float32
	pinned []*buffer.Buf
}

// scanBucketPinned walks one bucket's page chain keeping the visited
// pages pinned and hands the accumulated tuple views to visit in chain
// order, then releases the pins. The views alias pinned page memory and
// are valid only for the duration of the visit call. If the pool runs
// out of unpinned frames mid-chain, the segment collected so far is
// flushed and released before the walk continues, so the scan degrades
// gracefully at any pool size; visit sees one or more segments whose
// concatenation is the full bucket in chain order.
func (ix *Index) scanBucketPinned(cid int32, sc *bucketScanScratch, visit func(tids []int64, rows [][]float32) error) error {
	ctx := ix.ctx
	pr := ctx.Prof
	d := int(ix.meta.Dim)
	tTuple := pr.Timer("tuple_access")
	blk, off := ix.centroidLoc(int(cid))
	ts := tTuple.Start()
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		tTuple.Stop(ts)
		return err
	}
	centry, err := cbuf.Page().Item(off)
	tTuple.Stop(ts)
	if err != nil {
		cbuf.Release()
		return err
	}
	next := binary.LittleEndian.Uint32(centry[d*4:])
	cbuf.Release()

	sc.tids, sc.rows, sc.pinned = sc.tids[:0], sc.rows[:0], sc.pinned[:0]
	release := func() {
		for _, b := range sc.pinned {
			b.Release()
		}
		sc.tids, sc.rows, sc.pinned = sc.tids[:0], sc.rows[:0], sc.pinned[:0]
	}
	flush := func() error {
		var err error
		if len(sc.tids) > 0 {
			err = visit(sc.tids, sc.rows)
		}
		release()
		return err
	}
	for next != pase.InvalidBlk {
		ts := tTuple.Start()
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		tTuple.Stop(ts)
		if err != nil {
			if !errors.Is(err, buffer.ErrNoUnpinned) || len(sc.pinned) == 0 {
				release()
				return err
			}
			// Pool exhausted mid-chain: hand the segment collected so
			// far to visit, drop its pins, and retry the page once.
			if err := flush(); err != nil {
				return err
			}
			ts = tTuple.Start()
			dbuf, err = ctx.Pool.Pin(ctx.Rel, next)
			tTuple.Stop(ts)
			if err != nil {
				release()
				return err
			}
		}
		sc.pinned = append(sc.pinned, dbuf)
		pg := dbuf.Page()
		ts = tTuple.Start()
		n := pg.NumItems()
		for i := uint16(1); i <= n; i++ {
			item, err := pg.Item(i)
			if err != nil {
				if errors.Is(err, page.ErrDeadItem) {
					continue // tombstoned entry, identical to the solo skip
				}
				tTuple.Stop(ts)
				release()
				return err
			}
			sc.tids = append(sc.tids, packTID(heap.UnpackTID(item)))
			v := pase.Float32View(item[dataEntryHeaderSize:])
			sc.rows = append(sc.rows, v[:d:d])
		}
		tTuple.Stop(ts)
		next = pase.NextBlk(pg)
	}
	return flush()
}

// multiSearchSolo executes the batch as a per-query loop with exact solo
// semantics, for parameter combinations the shared scan does not cover.
func (ix *Index) multiSearchSolo(queries [][]float32, ks []int, params map[string]string, pred func(int) am.Predicate) ([][]am.Result, error) {
	out := make([][]am.Result, len(queries))
	for i := range queries {
		var hits []am.Result
		var err error
		if p := pred(i); p != nil {
			hits, err = ix.SearchFiltered(queries[i], ks[i], params, p)
		} else {
			hits, err = ix.Search(queries[i], ks[i], params)
		}
		if err != nil {
			return nil, err
		}
		out[i] = hits
	}
	return out, nil
}

// multiSelectProbes ranks all centroids against the whole batch with one
// batched scoring call and returns each query's nprobe nearest bucket
// IDs — the same lists selectProbes produces, since the kernel's
// L2SqrNT matches its solo L2Sqr bitwise per pair and the TopK push
// order (c ascending) is shared.
func (ix *Index) multiSelectProbes(kern vec.Kernel, queries [][]float32, nprobe int) [][]int32 {
	d := int(ix.meta.Dim)
	nlist := int(ix.meta.NList)
	B := len(queries)
	flat := make([]float32, B*d)
	for i, q := range queries {
		copy(flat[i*d:(i+1)*d], q)
	}
	dists := make([]float32, B*nlist)
	vec.NTParallel(kern, flat, B, d, ix.centroidCache[:nlist*d], nlist, dists, 0)
	out := make([][]int32, B)
	for i := range queries {
		h := minheap.NewTopK(nprobe)
		for c := 0; c < nlist; c++ {
			h.Push(int64(c), dists[i*nlist+c])
		}
		items := h.Results()
		probes := make([]int32, len(items))
		for j, it := range items {
			probes[j] = int32(it.ID)
		}
		out[i] = probes
	}
	return out
}
