package ivfflat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

// Search implements am.Index. params: nprobe (default 20), threads
// (default 1). Serial search collects every candidate into a size-n heap
// (RC#6); parallel search pushes into one lock-guarded global heap
// (RC#3), both as the paper describes PASE doing.
func (ix *Index) Search(query []float32, k int, params map[string]string) ([]am.Result, error) {
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/ivfflat: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	if k <= 0 {
		return nil, errors.New("pase/ivfflat: k must be positive")
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	threads, err := pase.OptInt(params, "threads", 1)
	if err != nil {
		return nil, err
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	probes := ix.selectProbes(kern, query, nprobe)
	if threads > 1 {
		return ix.searchParallel(kern, query, k, probes, threads)
	}
	// The RC#6 ablation: heap=k replaces PASE's size-n collector with the
	// Faiss-style bounded heap, leaving everything else untouched.
	if params["heap"] == "k" {
		return ix.searchBoundedHeap(kern, query, k, probes)
	}
	return ix.searchSerial(kern, query, k, probes)
}

// SearchFiltered implements am.FilteredIndex: the predicate is applied
// inside the bucket scans, so non-matching entries never reach the
// result heap — the in-traversal strategy of filtered kNN. The scan is
// serial (the predicate callback resolves heap tuples and is not
// synchronized); params other than threads behave as in Search.
func (ix *Index) SearchFiltered(query []float32, k int, params map[string]string, pred am.Predicate) ([]am.Result, error) {
	if pred == nil {
		return ix.Search(query, k, params)
	}
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/ivfflat: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	if k <= 0 {
		return nil, errors.New("pase/ivfflat: k must be positive")
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}
	top := minheap.NewTopK(k)
	var predErr error
	err = ix.scanBuckets(kern, query, ix.selectProbes(kern, query, nprobe), func(tid heap.TID, dist float32) {
		if predErr != nil {
			return
		}
		ok, err := pred(tid)
		if err != nil {
			predErr = err
			return
		}
		if ok {
			top.Push(int64(packTID(tid)), dist)
		}
	})
	if err != nil {
		return nil, err
	}
	if predErr != nil {
		return nil, predErr
	}
	return itemsToResults(top.Results()), nil
}

// searchBoundedHeap is searchSerial with the Faiss top-k strategy — used
// only by the ablation_heap experiment to isolate RC#6.
func (ix *Index) searchBoundedHeap(kern vec.Kernel, query []float32, k int, probes []int32) ([]am.Result, error) {
	pr := ix.ctx.Prof
	top := minheap.NewTopK(k)
	tHeap := pr.Timer("min-heap")
	err := ix.scanBuckets(kern, query, probes, func(tid heap.TID, dist float32) {
		ts := tHeap.Start()
		top.Push(int64(packTID(tid)), dist)
		tHeap.Stop(ts)
	})
	if err != nil {
		return nil, err
	}
	return itemsToResults(top.Results()), nil
}

// selectProbes ranks all centroids by distance (kernel calls over the
// centroid cache) and returns the nprobe nearest bucket IDs.
func (ix *Index) selectProbes(kern vec.Kernel, query []float32, nprobe int) []int32 {
	d := int(ix.meta.Dim)
	heap := minheap.NewTopK(nprobe)
	for c := 0; c < int(ix.meta.NList); c++ {
		heap.Push(int64(c), kern.L2Sqr(query, ix.centroidCache[c*d:(c+1)*d]))
	}
	items := heap.Results()
	out := make([]int32, len(items))
	for i, it := range items {
		out[i] = int32(it.ID)
	}
	return out
}

// searchSerial walks each probed bucket's page chain through the buffer
// pool, pushing every candidate into a size-n collector, then heapifies
// and pops k (the PASE top-k strategy, RC#6).
func (ix *Index) searchSerial(kern vec.Kernel, query []float32, k int, probes []int32) ([]am.Result, error) {
	pr := ix.ctx.Prof
	collector := minheap.NewCollector(1024)
	tHeap := pr.Timer("min-heap")
	err := ix.scanBuckets(kern, query, probes, func(tid heap.TID, dist float32) {
		ts := tHeap.Start()
		collector.Push(int64(packTID(tid)), dist)
		tHeap.Stop(ts)
	})
	if err != nil {
		return nil, err
	}
	ts := tHeap.Start()
	items := collector.PopK(k)
	tHeap.Stop(ts)
	return itemsToResults(items), nil
}

// searchParallel distributes probed buckets over the shared worker pool;
// every worker pushes into a single mutex-guarded global heap — PASE's
// strategy in Fig 18, which is why it fails to scale.
func (ix *Index) searchParallel(kern vec.Kernel, query []float32, k int, probes []int32, threads int) ([]am.Result, error) {
	global := minheap.NewSharedTopK(k)
	err := pase.ScanProbesParallel(probes, threads, func() func(int32) error {
		return func(probe int32) error {
			return ix.scanBuckets(kern, query, []int32{probe}, func(tid heap.TID, dist float32) {
				global.Push(int64(packTID(tid)), dist)
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return itemsToResults(global.Results()), nil
}

// scanBuckets visits every entry of the given buckets, invoking emit with
// the entry's TID and its distance to the query. All page access goes
// through the buffer pool; the breakdown timers attribute time exactly as
// Table V does (fvec_L2sqr vs tuple access).
func (ix *Index) scanBuckets(kern vec.Kernel, query []float32, probes []int32, emit func(heap.TID, float32)) error {
	pr := ix.ctx.Prof
	tDist := pr.Timer("fvec_L2sqr")
	for _, cid := range probes {
		err := ix.scanBucketRaw(cid, func(tid heap.TID, v []float32) {
			ts := tDist.Start()
			dist := kern.L2Sqr(query, v)
			tDist.Stop(ts)
			emit(tid, dist)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// scanBucketRaw walks one bucket's page chain through the buffer pool and
// emits each entry's TID plus a view of its raw vector. The view aliases
// the pinned page and is valid only for the duration of the callback. The
// multi-query probe path (MultiSearch) scans a bucket once through this
// walker and fans each entry out to every query probing the bucket, which
// is how page pins are amortized across a batch.
func (ix *Index) scanBucketRaw(cid int32, emit func(heap.TID, []float32)) error {
	ctx := ix.ctx
	pr := ctx.Prof
	d := int(ix.meta.Dim)
	tTuple := pr.Timer("tuple_access")
	blk, off := ix.centroidLoc(int(cid))
	ts := tTuple.Start()
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		tTuple.Stop(ts)
		return err
	}
	centry, err := cbuf.Page().Item(off)
	tTuple.Stop(ts)
	if err != nil {
		cbuf.Release()
		return err
	}
	next := binary.LittleEndian.Uint32(centry[d*4:])
	cbuf.Release()

	for next != pase.InvalidBlk {
		ts := tTuple.Start()
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		tTuple.Stop(ts)
		if err != nil {
			return err
		}
		pg := dbuf.Page()
		n := pg.NumItems()
		for i := uint16(1); i <= n; i++ {
			ts := tTuple.Start()
			item, err := pg.Item(i)
			if err != nil {
				tTuple.Stop(ts)
				if errors.Is(err, page.ErrDeadItem) {
					continue // tombstoned entry: skip, reclaimed by Maintain
				}
				dbuf.Release()
				return err
			}
			tid := heap.UnpackTID(item)
			v := pase.Float32View(item[dataEntryHeaderSize:])
			tTuple.Stop(ts)
			emit(tid, v)
		}
		next = pase.NextBlk(pg)
		dbuf.Release()
	}
	return nil
}

// ScanProbes selects the nprobe buckets nearest to query and streams
// every (tid, distance) candidate to emit, scoring through kern. It
// exposes the bucket-scan machinery to sibling access methods (the
// pgvector-style baseline builds the same structure but ranks
// candidates differently).
func (ix *Index) ScanProbes(kern vec.Kernel, query []float32, nprobe int, emit func(heap.TID, float32)) error {
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	return ix.scanBuckets(kern, query, ix.selectProbes(kern, query, nprobe), emit)
}

// packTID squeezes a TID into an int64 for the heap item ID.
func packTID(tid heap.TID) int64 {
	return int64(tid.Blk)<<16 | int64(tid.Off)
}

func unpackTID(v int64) heap.TID {
	return heap.TID{Blk: uint32(v >> 16), Off: uint16(v & 0xFFFF)}
}

func itemsToResults(items []minheap.Item) []am.Result {
	out := make([]am.Result, len(items))
	for i, it := range items {
		out[i] = am.Result{TID: unpackTID(it.ID), Dist: it.Dist}
	}
	return out
}
