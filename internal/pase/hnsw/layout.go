// Package hnsw implements the PASE-style HNSW index access method on the
// PostgreSQL substrate. Its on-page layout reproduces the two structures
// the paper blames for RC#2 and RC#4:
//
//   - Every vertex's adjacency lists start on a **fresh page** of
//     fixed-size 24-byte HNSWNeighborTuple items (one per neighbor slot),
//     so a bnn=16 vertex occupies a whole 8 KiB page for ~1 KiB of
//     payload — the source of the 2.9–13.3× size blow-up in Fig 13 and
//     the halving under 4 KiB pages in Table IV.
//   - Every vector read, neighbor-list traversal (pasepfirst), and
//     visited check (HVTGet, a hash over global IDs instead of Faiss's
//     epoch array) goes through the shared buffer pool, which is what
//     makes SearchNbToAdd 3.4× slower than Faiss in Table III / Fig 8.
package hnsw

import (
	"encoding/binary"

	"vecstudy/internal/pase"
	"vecstudy/internal/pg/heap"
)

// VID is the in-memory form of the paper's HNSWGlobalId: where the
// vertex's vector lives (dblkid, doffset) and where its neighbor lists
// start (nblkid). In the packed layout (the paper's "memory-optimized
// table design" future direction) NbOff addresses the vertex's single
// adjacency blob item within a shared page; in the faithful PASE layout
// it is unused (each vertex owns its pages).
type VID struct {
	NbBlk   uint32 // first neighbor page
	DataBlk uint32 // data page holding the vector entry
	DataOff uint16 // item offset within the data page
	NbOff   uint16 // adjacency blob item offset (packed layout only)
}

// InvalidVID is the nil vertex reference.
var InvalidVID = VID{NbBlk: pase.InvalidBlk, DataBlk: pase.InvalidBlk}

// Valid reports whether v references a vertex.
func (v VID) Valid() bool { return v.DataBlk != pase.InvalidBlk }

// key packs the vertex's data location into a hash key for the visited
// table (HVTGet hashes the same global-ID bytes in PASE).
func (v VID) key() uint64 { return uint64(v.DataBlk)<<16 | uint64(v.DataOff) }

// neighborTupleSize is sizeof(HNSWNeighborTuple) in PASE: an 8-byte
// PaseTuple virtual-link pointer plus the 12-byte HNSWGlobalId, padded to
// 24 by alignment. Our layout packs the same information:
//
//	[0:4]   nblkid   — neighbor's first neighbor page
//	[4:8]   dblkid   — neighbor's data page
//	[8:10]  doffset  — neighbor's data item
//	[10:12] level    — which graph level this slot belongs to
//	[12:13] used     — slot occupancy flag
//	[13:16] padding
//	[16:24] reserved — stands in for the PaseTuple pointer
const neighborTupleSize = 24

// encodeSlot serializes an adjacency slot.
func encodeSlot(b []byte, nb VID, level uint16, used bool) {
	binary.LittleEndian.PutUint32(b[0:], nb.NbBlk)
	binary.LittleEndian.PutUint32(b[4:], nb.DataBlk)
	binary.LittleEndian.PutUint16(b[8:], nb.DataOff)
	binary.LittleEndian.PutUint16(b[10:], level)
	if used {
		b[12] = 1
	} else {
		b[12] = 0
	}
	b[13] = 0
	binary.LittleEndian.PutUint16(b[14:], nb.NbOff)
	for i := 16; i < neighborTupleSize; i++ {
		b[i] = 0
	}
}

// decodeSlot deserializes an adjacency slot.
func decodeSlot(b []byte) (nb VID, level uint16, used bool) {
	nb.NbBlk = binary.LittleEndian.Uint32(b[0:])
	nb.DataBlk = binary.LittleEndian.Uint32(b[4:])
	nb.DataOff = binary.LittleEndian.Uint16(b[8:])
	level = binary.LittleEndian.Uint16(b[10:])
	used = b[12] != 0
	nb.NbOff = binary.LittleEndian.Uint16(b[14:])
	return
}

// data entry layout: heap TID (6) + pad (2) + nblkid (4) + level (2) +
// nboff (2), then the vector at a MAXALIGN-compatible offset.
const dataEntryHeaderSize = 16

func encodeDataEntry(b []byte, tid heap.TID, nbBlk uint32, nbOff, level uint16, v []float32) {
	tid.Pack(b)
	b[6], b[7] = 0, 0
	binary.LittleEndian.PutUint32(b[8:], nbBlk)
	binary.LittleEndian.PutUint16(b[12:], level)
	binary.LittleEndian.PutUint16(b[14:], nbOff)
	pase.PutFloat32s(b[dataEntryHeaderSize:], v)
}

// decodeDataLevel reads just the level field of a data entry.
func decodeDataLevel(b []byte) uint16 { return binary.LittleEndian.Uint16(b[12:]) }

func decodeDataEntry(b []byte) (tid heap.TID, nbBlk uint32, nbOff, level uint16, vecBytes []byte) {
	tid = heap.UnpackTID(b)
	nbBlk = binary.LittleEndian.Uint32(b[8:])
	level = binary.LittleEndian.Uint16(b[12:])
	nbOff = binary.LittleEndian.Uint16(b[14:])
	vecBytes = b[dataEntryHeaderSize:]
	return
}

// meta page (block 0) layout.
type meta struct {
	Dim         uint32
	BNN         uint32
	EFB         uint32
	MaxLevel    int32 // -1 when empty
	Entry       VID
	LastDataBlk uint32 // append hint for data entries
	NVertices   uint32
	Packed      bool   // memory-optimized adjacency layout (RC#4 bridged)
	LastNbBlk   uint32 // append hint for packed adjacency blobs
}

func encodeMeta(m meta) []byte {
	b := make([]byte, 48)
	binary.LittleEndian.PutUint32(b[0:], m.Dim)
	binary.LittleEndian.PutUint32(b[4:], m.BNN)
	binary.LittleEndian.PutUint32(b[8:], m.EFB)
	binary.LittleEndian.PutUint32(b[12:], uint32(m.MaxLevel))
	binary.LittleEndian.PutUint32(b[16:], m.Entry.NbBlk)
	binary.LittleEndian.PutUint32(b[20:], m.Entry.DataBlk)
	binary.LittleEndian.PutUint16(b[24:], m.Entry.DataOff)
	binary.LittleEndian.PutUint16(b[26:], m.Entry.NbOff)
	binary.LittleEndian.PutUint32(b[28:], m.LastDataBlk)
	binary.LittleEndian.PutUint32(b[32:], m.NVertices)
	if m.Packed {
		b[36] = 1
	}
	binary.LittleEndian.PutUint32(b[40:], m.LastNbBlk)
	return b
}

func decodeMeta(b []byte) meta {
	return meta{
		Dim:      binary.LittleEndian.Uint32(b[0:]),
		BNN:      binary.LittleEndian.Uint32(b[4:]),
		EFB:      binary.LittleEndian.Uint32(b[8:]),
		MaxLevel: int32(binary.LittleEndian.Uint32(b[12:])),
		Entry: VID{
			NbBlk:   binary.LittleEndian.Uint32(b[16:]),
			DataBlk: binary.LittleEndian.Uint32(b[20:]),
			DataOff: binary.LittleEndian.Uint16(b[24:]),
			NbOff:   binary.LittleEndian.Uint16(b[26:]),
		},
		LastDataBlk: binary.LittleEndian.Uint32(b[28:]),
		NVertices:   binary.LittleEndian.Uint32(b[32:]),
		Packed:      b[36] != 0,
		LastNbBlk:   binary.LittleEndian.Uint32(b[40:]),
	}
}
