package hnsw

import (
	"errors"
	"fmt"

	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
)

// Search implements am.Index. params: efs (search queue length, default
// 200). Neither PASE nor Faiss parallelizes a single HNSW query (paper
// Sec VII-D), so no threads parameter exists here.
func (ix *Index) Search(query []float32, k int, params map[string]string) ([]am.Result, error) {
	return ix.SearchFiltered(query, k, params, nil)
}

// SearchFiltered implements am.FilteredIndex: the greedy descent through
// the upper levels is unfiltered (it only positions the entry point),
// and the level-0 beam search explores the graph normally but admits
// only predicate-satisfying vertices into its result heap, so filtered-
// out tuples never surface. A nil pred is a plain Search.
func (ix *Index) SearchFiltered(query []float32, k int, params map[string]string, pred am.Predicate) ([]am.Result, error) {
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/hnsw: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	if k <= 0 {
		return nil, errors.New("pase/hnsw: k must be positive")
	}
	if !ix.meta.Entry.Valid() {
		// Either never populated, or every vertex was deleted and
		// Maintain unlinked the entry point: zero rows, not an error.
		return nil, nil
	}
	efs, err := pase.OptInt(params, "efs", 200)
	if err != nil {
		return nil, err
	}
	if efs < k {
		efs = k
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}

	ep := ix.meta.Entry
	epDist, err := ix.distTo(kern, query, ep)
	if err != nil {
		return nil, err
	}
	for lev := ix.meta.MaxLevel; lev > 0; lev-- {
		ep, epDist, err = ix.greedyClosest(kern, query, ep, epDist, uint16(lev))
		if err != nil {
			return nil, err
		}
	}
	cands, err := ix.searchLayer(kern, query, ep, epDist, efs, 0, pred)
	if err != nil {
		return nil, err
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]am.Result, len(cands))
	for i, c := range cands {
		tid, err := ix.tidOf(c.vid)
		if err != nil {
			return nil, err
		}
		out[i] = am.Result{TID: tid, Dist: c.dist}
	}
	return out, nil
}
