package hnsw

import (
	"errors"

	"vecstudy/internal/pg/am"
)

// MultiSearch implements am.BatchIndex for HNSW as a grouped sequential
// loop: graph traversal is inherently per-query (each query's entry
// descent and layer-0 beam depend on its own frontier), so there is no
// SGEMM-shaped batching to exploit. Coalescing still pays off at the
// serving layer — the batch executes back-to-back on one goroutine over
// a warm buffer pool instead of interleaving with unrelated work — and
// parity is trivial because each query runs the exact solo path.
func (ix *Index) MultiSearch(queries [][]float32, ks []int, params map[string]string, preds []am.Predicate) ([][]am.Result, error) {
	B := len(queries)
	if len(ks) != B || (preds != nil && len(preds) != B) {
		return nil, errors.New("pase/hnsw: MultiSearch argument lengths differ")
	}
	out := make([][]am.Result, B)
	for i := range queries {
		var p am.Predicate
		if preds != nil {
			p = preds[i]
		}
		hits, err := ix.SearchFiltered(queries[i], ks[i], params, p)
		if err != nil {
			return nil, err
		}
		out[i] = hits
	}
	return out, nil
}
