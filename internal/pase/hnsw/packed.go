package hnsw

import (
	"errors"
	"fmt"

	"vecstudy/internal/pase"
	"vecstudy/internal/pg/page"
)

// This file implements the *packed* adjacency layout — the paper's
// "memory-optimized table design" future direction (Sec IX-C Step#1,
// bridging RC#4). Instead of a fresh page per vertex holding one 24-byte
// item per neighbor slot, each vertex's entire adjacency state is a
// single blob item (totalSlots × 24 bytes) appended to a shared page.
// Multiple vertices share pages, so the space overhead drops from ~1 page
// per vertex to the blob payload itself, and a vertex's whole
// neighborhood is read with one pin + one line-pointer lookup.

// blobSlots returns the slot count for a vertex of the given level.
func (ix *Index) blobSlots(level uint16) int {
	total := ix.capAt(0)
	for l := uint16(1); l <= level; l++ {
		total += ix.capAt(l)
	}
	return total
}

// allocPackedBlob appends an all-empty adjacency blob for a new vertex,
// sharing pages with earlier vertices. It returns the blob's location.
func (ix *Index) allocPackedBlob(level uint16) (uint32, uint16, error) {
	ctx := ix.ctx
	blob := make([]byte, ix.blobSlots(level)*neighborTupleSize)
	slotLevel := uint16(0)
	remaining := ix.capAt(0)
	for i := 0; i < len(blob); i += neighborTupleSize {
		encodeSlot(blob[i:], InvalidVID, slotLevel, false)
		remaining--
		if remaining == 0 {
			slotLevel++
			remaining = ix.capAt(slotLevel)
		}
	}
	if ix.meta.LastNbBlk != pase.InvalidBlk {
		buf, err := ctx.Pool.Pin(ctx.Rel, ix.meta.LastNbBlk)
		if err != nil {
			return 0, 0, err
		}
		if off, err := buf.Page().AddItem(blob); err == nil {
			buf.MarkDirty()
			blk := ix.meta.LastNbBlk
			buf.Release()
			return blk, off, nil
		} else if !errors.Is(err, page.ErrPageFull) {
			buf.Release()
			return 0, 0, err
		}
		buf.Release()
	}
	buf, blk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return 0, 0, err
	}
	page.Init(buf.Page(), 0)
	off, err := buf.Page().AddItem(blob)
	if err != nil {
		buf.Release()
		return 0, 0, fmt.Errorf("pase/hnsw: adjacency blob of %d bytes does not fit a %d-byte page; use the chained layout for this bnn", len(blob), ctx.Pool.PageSize())
	}
	buf.MarkDirty()
	buf.Release()
	ix.meta.LastNbBlk = blk
	return blk, off, nil
}

// withBlob pins the vertex's adjacency blob and passes the in-place slice
// to fn; fn returns whether it mutated the blob.
func (ix *Index) withBlob(v VID, fn func(blob []byte) (bool, error)) error {
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.NbBlk)
	if err != nil {
		return err
	}
	item, err := buf.Page().Item(v.NbOff)
	if err != nil {
		buf.Release()
		return err
	}
	dirty, err := fn(item)
	if dirty {
		buf.MarkDirty()
	}
	buf.Release()
	return err
}

// packedNeighborsAt reads the used slots of one level from the blob.
func (ix *Index) packedNeighborsAt(v VID, level uint16) ([]VID, error) {
	pr := ix.ctx.Prof
	ts := pr.Timer("pasepfirst").Start()
	defer pr.Timer("pasepfirst").Stop(ts)
	var out []VID
	err := ix.withBlob(v, func(blob []byte) (bool, error) {
		for i := 0; i+neighborTupleSize <= len(blob); i += neighborTupleSize {
			nb, slotLevel, used := decodeSlot(blob[i:])
			if used && slotLevel == level {
				out = append(out, nb)
			}
		}
		return false, nil
	})
	return out, err
}

// packedAppendLink writes nb into the first free slot at level, returning
// full=true (and writing nothing) when the level's slots are exhausted.
func (ix *Index) packedAppendLink(v, nb VID, level uint16) (bool, error) {
	full := true
	err := ix.withBlob(v, func(blob []byte) (bool, error) {
		for i := 0; i+neighborTupleSize <= len(blob); i += neighborTupleSize {
			_, slotLevel, used := decodeSlot(blob[i:])
			if slotLevel == level && !used {
				encodeSlot(blob[i:], nb, level, true)
				full = false
				return true, nil
			}
		}
		return false, nil
	})
	return full, err
}

// packedRewriteLevel replaces the level's slots with selected.
func (ix *Index) packedRewriteLevel(v VID, level uint16, selected []scored) error {
	idx := 0
	err := ix.withBlob(v, func(blob []byte) (bool, error) {
		for i := 0; i+neighborTupleSize <= len(blob); i += neighborTupleSize {
			_, slotLevel, _ := decodeSlot(blob[i:])
			if slotLevel != level {
				continue
			}
			if idx < len(selected) {
				encodeSlot(blob[i:], selected[idx].vid, level, true)
				idx++
			} else {
				encodeSlot(blob[i:], InvalidVID, level, false)
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	if idx < len(selected) {
		return fmt.Errorf("pase/hnsw: %d selected neighbors but only %d packed slots at level %d", len(selected), idx, level)
	}
	return nil
}
