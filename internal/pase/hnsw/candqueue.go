package hnsw

// candQueue is a binary min-heap of (VID, distance) pairs — the
// exploration frontier of the beam search, ordered by ascending distance.
type candQueue struct {
	vids  []VID
	dists []float32
}

func newCandQueue() *candQueue {
	return &candQueue{vids: make([]VID, 0, 64), dists: make([]float32, 0, 64)}
}

func (q *candQueue) len() int { return len(q.vids) }

func (q *candQueue) push(v VID, dist float32) {
	q.vids = append(q.vids, v)
	q.dists = append(q.dists, dist)
	i := len(q.vids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.dists[parent] <= q.dists[i] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *candQueue) pop() (VID, float32) {
	v, dist := q.vids[0], q.dists[0]
	last := len(q.vids) - 1
	q.vids[0], q.dists[0] = q.vids[last], q.dists[last]
	q.vids, q.dists = q.vids[:last], q.dists[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.dists[l] < q.dists[smallest] {
			smallest = l
		}
		if r < n && q.dists[r] < q.dists[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
	return v, dist
}

func (q *candQueue) swap(i, j int) {
	q.vids[i], q.vids[j] = q.vids[j], q.vids[i]
	q.dists[i], q.dists[j] = q.dists[j], q.dists[i]
}
