package hnsw

import (
	"fmt"

	"vecstudy/internal/pg/heap"
)

// Tombstones. A deleted vertex cannot simply vanish from the graph: its
// edges may be the only paths between regions, and HNSW's recall rests
// on that connectivity. So Delete only sets a tombstone byte in the
// vertex's data entry (pad byte 6 of the 16-byte header): searchLayer
// keeps traversing through tombstoned vertices but never admits them to
// the result heap. Maintain later repairs every live neighborhood —
// dropping dead neighbors and reconnecting through their live neighbors
// — then unlinks the dead data entries for real.

// entryState reads a vertex's data-entry header: its heap TID, its top
// graph level, and whether it is tombstoned.
func (ix *Index) entryState(v VID) (tid heap.TID, level uint16, dead bool, err error) {
	pr := ix.ctx.Prof
	ts := pr.Timer("tuple_access").Start()
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.DataBlk)
	if err != nil {
		pr.Timer("tuple_access").Stop(ts)
		return tid, 0, false, err
	}
	item, err := buf.Page().Item(v.DataOff)
	if err == nil {
		tid = heap.UnpackTID(item)
		level = decodeDataLevel(item)
		dead = item[6] != 0
	}
	pr.Timer("tuple_access").Stop(ts)
	buf.Release()
	return tid, level, dead, err
}

// setTombstone flips the tombstone byte on a vertex's data entry.
func (ix *Index) setTombstone(v VID) error {
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.DataBlk)
	if err != nil {
		return err
	}
	item, err := buf.Page().Item(v.DataOff)
	if err == nil {
		item[6] = 1
		buf.MarkDirty()
	}
	buf.Release()
	return err
}

// Delete implements am.MutableIndex. The vector argument is unused:
// unlike IVF's deterministic coarse assignment, a vector does not locate
// its HNSW vertex, so the lookup goes through the in-memory TID map.
func (ix *Index) Delete(_ []float32, tid heap.TID) (bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	vid, ok := ix.tids[tid]
	if !ok {
		return false, nil
	}
	if err := ix.setTombstone(vid); err != nil {
		return false, err
	}
	delete(ix.tids, tid)
	ix.tombs[vid.key()] = vid
	ix.dead.Add(1)
	if ix.meta.NVertices > 0 {
		ix.meta.NVertices--
	}
	return true, ix.saveMeta()
}

// DeadCount implements am.MutableIndex.
func (ix *Index) DeadCount() int64 { return ix.dead.Load() }

// Maintain implements am.MutableIndex: graph repair. For every live
// vertex whose adjacency list references a tombstoned vertex, the list
// is rebuilt from its remaining live neighbors plus the dead vertices'
// own live neighbors (one-hop reconnection), re-ranked by the standard
// diversification heuristic. Then a dead entry point is replaced by the
// highest-levelled live vertex, and the dead data entries are unlinked.
// The dead vertices' adjacency pages are orphaned — block reclamation
// would need a free-space map the substrate doesn't have.
//
// Per-vertex repairs are order-independent: a rewrite reads only the
// vertex's own list and dead vertices' lists, and dead lists are never
// rewritten, so results don't depend on map iteration order.
func (ix *Index) Maintain() (int64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.tombs) == 0 {
		ix.dead.Store(0)
		return 0, nil
	}

	for _, v := range ix.tids {
		_, topLevel, _, err := ix.entryState(v)
		if err != nil {
			return 0, err
		}
		for lev := uint16(0); lev <= topLevel; lev++ {
			if err := ix.repairLevel(v, lev); err != nil {
				return 0, err
			}
		}
	}

	if _, entryDead := ix.tombs[ix.meta.Entry.key()]; entryDead || !ix.meta.Entry.Valid() {
		if err := ix.electEntry(); err != nil {
			return 0, err
		}
	}

	removed := int64(len(ix.tombs))
	for _, v := range ix.tombs {
		// Maintenance holds ix.mu for its whole run by design: repair must
		// see a frozen graph, and concurrent searches are excluded anyway
		// by the executor's statement gate.
		//vetvec:locked-io
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.DataBlk)
		if err != nil {
			return 0, err
		}
		err = buf.Page().DeleteItem(v.DataOff)
		if err == nil {
			buf.MarkDirty()
		}
		buf.Release()
		if err != nil {
			return 0, err
		}
	}
	ix.tombs = make(map[uint64]VID)
	ix.dead.Store(0)
	return removed, ix.saveMeta()
}

// repairLevel rewrites v's adjacency list at one level if it references
// any tombstoned vertex.
func (ix *Index) repairLevel(v VID, level uint16) error {
	nbs, err := ix.neighborsAt(v, level)
	if err != nil {
		return err
	}
	hasDead := false
	for _, nb := range nbs {
		if _, ok := ix.tombs[nb.key()]; ok {
			hasDead = true
			break
		}
	}
	if !hasDead {
		return nil
	}

	vvec, err := ix.vectorCopy(v)
	if err != nil {
		return err
	}
	seen := map[uint64]bool{v.key(): true}
	var cands []scored
	add := func(nb VID) error {
		if seen[nb.key()] {
			return nil
		}
		seen[nb.key()] = true
		if _, dead := ix.tombs[nb.key()]; dead {
			return nil
		}
		d, err := ix.distTo(refKern, vvec, nb)
		if err != nil {
			return err
		}
		cands = append(cands, scored{vid: nb, dist: d})
		return nil
	}
	for _, nb := range nbs {
		if _, dead := ix.tombs[nb.key()]; !dead {
			if err := add(nb); err != nil {
				return err
			}
			continue
		}
		// Reconnect through the dead neighbor's own live neighbors so
		// the region it bridged stays reachable.
		hops, err := ix.neighborsAt(nb, level)
		if err != nil {
			return err
		}
		for _, hop := range hops {
			if err := add(hop); err != nil {
				return err
			}
		}
	}
	sortScored(cands)
	selected, err := ix.selectNeighbors(cands, ix.capAt(level))
	if err != nil {
		return err
	}
	return ix.rewriteLevel(v, level, selected)
}

// electEntry replaces a dead entry point with the highest-levelled live
// vertex, or marks the graph empty when none remain.
func (ix *Index) electEntry() error {
	best := InvalidVID
	bestLevel := int32(-1)
	for _, v := range ix.tids {
		_, level, _, err := ix.entryState(v)
		if err != nil {
			return err
		}
		if int32(level) > bestLevel {
			best, bestLevel = v, int32(level)
		}
	}
	ix.meta.Entry = best
	ix.meta.MaxLevel = bestLevel
	if !best.Valid() && len(ix.tids) > 0 {
		return fmt.Errorf("pase/hnsw: %d live vertices but no entry candidate", len(ix.tids))
	}
	return nil
}
