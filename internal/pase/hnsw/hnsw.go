package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

func init() {
	am.Register("hnsw", Build)
}

// BuildStats reports construction timing (Fig 7).
type BuildStats struct {
	Total  time.Duration
	NAdded int
}

// Index is a built PASE HNSW index.
type Index struct {
	ctx  *am.BuildContext
	meta meta

	mu        sync.Mutex // serializes inserts, deletes, Maintain, and meta updates
	levelMult float64
	rng       *rand.Rand
	stats     BuildStats

	// tids maps each live vertex's heap TID to its graph location —
	// HNSW has no deterministic vector→vertex mapping (unlike IVF's
	// coarse assignment), so Delete needs the reverse map. tombs holds
	// tombstoned vertices (by VID key) until Maintain unlinks them.
	// Both are guarded by mu; search paths never read them — the
	// on-page tombstone byte is the single source of truth there.
	tids  map[heap.TID]VID
	tombs map[uint64]VID
	dead  atomic.Int64 // tombstoned vertices awaiting Maintain
}

// AM implements am.Index.
func (ix *Index) AM() string { return "hnsw" }

// Stats returns build statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Build constructs the graph by inserting every table row in TID order.
// Options: bnn (base neighbor count, default 16), efb (construction
// queue length, default 40), seed.
func Build(ctx *am.BuildContext) (am.Index, error) {
	bnn, err := pase.OptInt(ctx.Opts, "bnn", 16)
	if err != nil {
		return nil, err
	}
	efb, err := pase.OptInt(ctx.Opts, "efb", 40)
	if err != nil {
		return nil, err
	}
	seed, err := pase.OptInt(ctx.Opts, "seed", 0)
	if err != nil {
		return nil, err
	}
	if bnn < 2 {
		return nil, errors.New("pase/hnsw: bnn must be >= 2")
	}
	if efb < 1 {
		return nil, errors.New("pase/hnsw: efb must be >= 1")
	}
	packed, err := pase.OptBool(ctx.Opts, "packed", false)
	if err != nil {
		return nil, err
	}

	ix := &Index{
		ctx:       ctx,
		levelMult: 1 / math.Log(float64(bnn)),
		rng:       rand.New(rand.NewSource(int64(seed))),
		tids:      make(map[heap.TID]VID),
		tombs:     make(map[uint64]VID),
	}
	ix.meta = meta{
		Dim: uint32(ctx.Dim), BNN: uint32(bnn), EFB: uint32(efb),
		MaxLevel: -1, Entry: InvalidVID, LastDataBlk: pase.InvalidBlk,
		Packed: packed, LastNbBlk: pase.InvalidBlk,
	}

	metaBuf, metaBlk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return nil, err
	}
	if metaBlk != 0 {
		metaBuf.Release()
		return nil, fmt.Errorf("pase/hnsw: meta page allocated at block %d", metaBlk)
	}
	page.Init(metaBuf.Page(), 0)
	if _, err := metaBuf.Page().AddItem(encodeMeta(ix.meta)); err != nil {
		metaBuf.Release()
		return nil, err
	}
	metaBuf.MarkDirty()
	metaBuf.Release()

	start := time.Now()
	err = ctx.Table.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		v, err := ctx.Table.Schema().VectorAt(tup, ctx.VecCol)
		if err != nil {
			return false, err
		}
		if len(v) != ctx.Dim {
			return false, fmt.Errorf("pase/hnsw: row %v has dimension %d, index expects %d", tid, len(v), ctx.Dim)
		}
		return true, ix.insertLocked(v, tid)
	})
	if err != nil {
		return nil, err
	}
	ix.stats.Total = time.Since(start)
	return ix, ix.saveMeta()
}

// Insert implements am.Index.
func (ix *Index) Insert(v []float32, tid heap.TID) error {
	if len(v) != int(ix.meta.Dim) {
		return fmt.Errorf("pase/hnsw: inserting %d-dim vector into %d-dim index", len(v), ix.meta.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.insertLocked(v, tid); err != nil {
		return err
	}
	return ix.saveMeta()
}

// SizeBytes reports the index relation footprint (Fig 13 / Table IV).
func (ix *Index) SizeBytes() (int64, error) {
	nblocks, err := ix.ctx.Pool.NumBlocks(ix.ctx.Rel)
	if err != nil {
		return 0, err
	}
	return int64(nblocks) * int64(ix.ctx.Pool.PageSize()), nil
}

// NVertices returns the number of inserted vertices.
func (ix *Index) NVertices() int { return int(ix.meta.NVertices) }

func (ix *Index) randomLevel() uint16 {
	r := ix.rng.Float64()
	for r <= 0 {
		r = ix.rng.Float64()
	}
	l := int(math.Floor(-math.Log(r) * ix.levelMult))
	if l > 30 {
		l = 30
	}
	return uint16(l)
}

func (ix *Index) capAt(level uint16) int {
	if level == 0 {
		return 2 * int(ix.meta.BNN)
	}
	return int(ix.meta.BNN)
}

// insertLocked adds one vertex. Callers hold ix.mu (Build runs without
// contention).
func (ix *Index) insertLocked(v []float32, tid heap.TID) error {
	pr := ix.ctx.Prof
	level := ix.randomLevel()

	var nbBlk uint32
	var nbOff uint16
	var err error
	if ix.meta.Packed {
		nbBlk, nbOff, err = ix.allocPackedBlob(level)
	} else {
		nbBlk, err = ix.allocNeighborPages(level)
	}
	if err != nil {
		return err
	}
	dataBlk, dataOff, err := ix.appendData(tid, nbBlk, nbOff, level, v)
	if err != nil {
		return err
	}
	self := VID{NbBlk: nbBlk, DataBlk: dataBlk, DataOff: dataOff, NbOff: nbOff}
	ix.tids[tid] = self
	ix.meta.NVertices++

	if !ix.meta.Entry.Valid() {
		ix.meta.Entry = self
		ix.meta.MaxLevel = int32(level)
		ix.stats.NAdded++
		return nil
	}

	ep := ix.meta.Entry
	epDist, err := ix.distTo(refKern, v, ep)
	if err != nil {
		return err
	}

	// GreedyUpdate: descend levels above the new vertex's level.
	ts := pr.Timer("GreedyUpdate").Start()
	for lev := uint16(ix.meta.MaxLevel); int32(lev) > int32(level) && lev > 0; lev-- {
		ep, epDist, err = ix.greedyClosest(refKern, v, ep, epDist, lev)
		if err != nil {
			pr.Timer("GreedyUpdate").Stop(ts)
			return err
		}
	}
	pr.Timer("GreedyUpdate").Stop(ts)

	topLevel := level
	if int32(topLevel) > ix.meta.MaxLevel {
		topLevel = uint16(ix.meta.MaxLevel)
	}
	for lev := int32(topLevel); lev >= 0; lev-- {
		ts := pr.Timer("SearchNbToAdd").Start()
		cands, err := ix.searchLayer(refKern, v, ep, epDist, int(ix.meta.EFB), uint16(lev), nil)
		pr.Timer("SearchNbToAdd").Stop(ts)
		if err != nil {
			return err
		}

		ts = pr.Timer("ShrinkNbList").Start()
		selected, err := ix.selectNeighbors(cands, ix.capAt(uint16(lev)))
		pr.Timer("ShrinkNbList").Stop(ts)
		if err != nil {
			return err
		}

		// AddLink: wire forward and reverse edges. The new vertex's own
		// lists were freshly allocated, so forward links never overflow;
		// reverse lists that are full are rebuilt afterwards under the
		// ShrinkNbList timer, matching Table III's attribution.
		ts = pr.Timer("AddLink").Start()
		var overflow []scored
		for _, s := range selected {
			if _, err := ix.appendLink(self, s.vid, uint16(lev)); err != nil {
				pr.Timer("AddLink").Stop(ts)
				return err
			}
			full, err := ix.appendLink(s.vid, self, uint16(lev))
			if err != nil {
				pr.Timer("AddLink").Stop(ts)
				return err
			}
			if full {
				overflow = append(overflow, s)
			}
		}
		pr.Timer("AddLink").Stop(ts)

		if len(overflow) > 0 {
			ts = pr.Timer("ShrinkNbList").Start()
			for _, s := range overflow {
				if err := ix.shrinkWith(s.vid, self, uint16(lev)); err != nil {
					pr.Timer("ShrinkNbList").Stop(ts)
					return err
				}
			}
			pr.Timer("ShrinkNbList").Stop(ts)
		}

		if len(cands) > 0 {
			ep, epDist = cands[0].vid, cands[0].dist
		}
	}
	if int32(level) > ix.meta.MaxLevel {
		ix.meta.MaxLevel = int32(level)
		ix.meta.Entry = self
	}
	ix.stats.NAdded++
	return nil
}

// appendLink writes nb into the first free slot of v's list at level.
// When the list is already full it writes nothing and returns true so
// the caller can rebuild the list (with nb included) via shrinkWith.
func (ix *Index) appendLink(v, nb VID, level uint16) (bool, error) {
	if ix.meta.Packed {
		return ix.packedAppendLink(v, nb, level)
	}
	blk := v.NbBlk
	for blk != pase.InvalidBlk {
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, blk)
		if err != nil {
			return false, err
		}
		pg := buf.Page()
		n := pg.NumItems()
		for i := uint16(1); i <= n; i++ {
			item, err := pg.Item(i)
			if err != nil {
				buf.Release()
				return false, err
			}
			_, slotLevel, used := decodeSlot(item)
			if slotLevel != level || used {
				continue
			}
			encodeSlot(item, nb, level, true)
			buf.MarkDirty()
			buf.Release()
			return false, nil
		}
		next := pase.NextBlk(pg)
		buf.Release()
		blk = next
	}
	return true, nil // list full; caller rebuilds via shrinkWith
}

// shrinkWith rebuilds v's adjacency list at level from its current
// neighbors plus extra, using the diversification heuristic. This is the
// expensive PASE path: it re-reads every neighbor vector through the
// buffer pool.
func (ix *Index) shrinkWith(v, extra VID, level uint16) error {
	vvec, err := ix.vectorCopy(v)
	if err != nil {
		return err
	}
	nbs, err := ix.neighborsAt(v, level)
	if err != nil {
		return err
	}
	cands := make([]scored, 0, len(nbs)+1)
	seen := map[uint64]bool{extra.key(): true}
	d, err := ix.distTo(refKern, vvec, extra)
	if err != nil {
		return err
	}
	cands = append(cands, scored{vid: extra, dist: d})
	for _, nb := range nbs {
		if seen[nb.key()] {
			continue
		}
		seen[nb.key()] = true
		d, err := ix.distTo(refKern, vvec, nb)
		if err != nil {
			return err
		}
		cands = append(cands, scored{vid: nb, dist: d})
	}
	sortScored(cands)
	selected, err := ix.selectNeighbors(cands, ix.capAt(level))
	if err != nil {
		return err
	}
	return ix.rewriteLevel(v, level, selected)
}

// rewriteLevel clears every slot of v's list at level and refills them
// with the selected neighbors.
func (ix *Index) rewriteLevel(v VID, level uint16, selected []scored) error {
	if ix.meta.Packed {
		return ix.packedRewriteLevel(v, level, selected)
	}
	idx := 0
	blk := v.NbBlk
	for blk != pase.InvalidBlk {
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, blk)
		if err != nil {
			return err
		}
		pg := buf.Page()
		n := pg.NumItems()
		dirty := false
		for i := uint16(1); i <= n; i++ {
			item, err := pg.Item(i)
			if err != nil {
				buf.Release()
				return err
			}
			_, slotLevel, _ := decodeSlot(item)
			if slotLevel != level {
				continue
			}
			if idx < len(selected) {
				encodeSlot(item, selected[idx].vid, level, true)
				idx++
			} else {
				encodeSlot(item, InvalidVID, level, false)
			}
			dirty = true
		}
		if dirty {
			buf.MarkDirty()
		}
		next := pase.NextBlk(pg)
		buf.Release()
		blk = next
	}
	if idx < len(selected) {
		return fmt.Errorf("pase/hnsw: %d selected neighbors but only %d slots at level %d", len(selected), idx, level)
	}
	return nil
}

// allocNeighborPages allocates the vertex's adjacency pages — always
// starting from a fresh page (RC#4) — pre-filling empty 24-byte slots for
// every level up to the vertex's level.
func (ix *Index) allocNeighborPages(level uint16) (uint32, error) {
	ctx := ix.ctx
	totalSlots := ix.capAt(0)
	for l := uint16(1); l <= level; l++ {
		totalSlots += ix.capAt(l)
	}
	slot := make([]byte, neighborTupleSize)
	var firstBlk = pase.InvalidBlk
	var cur *buffer.Buf
	var curBlk uint32
	newPage := func() error {
		buf, blk, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			// Drop the pin on the previous chain page before bailing out;
			// failing mid-chain (pool exhausted) used to leave it pinned
			// forever, making its frame unevictable.
			if cur != nil {
				cur.MarkDirty()
				cur.Release()
				cur = nil
			}
			return err
		}
		page.Init(buf.Page(), pase.ChainSpecialSize)
		pase.SetNextBlk(buf.Page(), pase.InvalidBlk)
		if cur != nil {
			pase.SetNextBlk(cur.Page(), blk)
			cur.MarkDirty()
			cur.Release()
		} else {
			firstBlk = blk
		}
		cur, curBlk = buf, blk
		return nil
	}
	if err := newPage(); err != nil {
		return 0, err
	}
	written := 0
	curLevel := uint16(0)
	remainingAtLevel := ix.capAt(0)
	for written < totalSlots {
		encodeSlot(slot, InvalidVID, curLevel, false)
		if _, err := cur.Page().AddItem(slot); err != nil {
			if !errors.Is(err, page.ErrPageFull) {
				cur.Release()
				return 0, err
			}
			if err := newPage(); err != nil {
				return 0, err
			}
			continue
		}
		written++
		remainingAtLevel--
		if remainingAtLevel == 0 && written < totalSlots {
			curLevel++
			remainingAtLevel = ix.capAt(curLevel)
		}
	}
	cur.MarkDirty()
	cur.Release()
	_ = curBlk
	return firstBlk, nil
}

// appendData stores the vector entry in the shared data pages, returning
// its location.
func (ix *Index) appendData(tid heap.TID, nbBlk uint32, nbOff, level uint16, v []float32) (uint32, uint16, error) {
	ctx := ix.ctx
	entry := make([]byte, dataEntryHeaderSize+len(v)*4)
	encodeDataEntry(entry, tid, nbBlk, nbOff, level, v)

	if ix.meta.LastDataBlk != pase.InvalidBlk {
		buf, err := ctx.Pool.Pin(ctx.Rel, ix.meta.LastDataBlk)
		if err != nil {
			return 0, 0, err
		}
		if off, err := buf.Page().AddItem(entry); err == nil {
			buf.MarkDirty()
			blk := ix.meta.LastDataBlk
			buf.Release()
			return blk, off, nil
		} else if !errors.Is(err, page.ErrPageFull) {
			buf.Release()
			return 0, 0, err
		}
		buf.Release()
	}
	buf, blk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return 0, 0, err
	}
	page.Init(buf.Page(), 0)
	off, err := buf.Page().AddItem(entry)
	if err != nil {
		buf.Release()
		return 0, 0, fmt.Errorf("pase/hnsw: data entry does not fit an empty page: %w", err)
	}
	buf.MarkDirty()
	buf.Release()
	ix.meta.LastDataBlk = blk
	return blk, off, nil
}

// saveMeta rewrites the meta page item.
func (ix *Index) saveMeta() error {
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, 0)
	if err != nil {
		return err
	}
	err = buf.Page().OverwriteItem(1, encodeMeta(ix.meta))
	if err == nil {
		buf.MarkDirty()
	}
	buf.Release()
	return err
}

// scored pairs a vertex with its distance to the current query point.
type scored struct {
	vid  VID
	dist float32
}

func sortScored(s []scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].dist < s[j-1].dist; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// vectorCopy reads a vertex's vector out of its data page.
func (ix *Index) vectorCopy(v VID) ([]float32, error) {
	out := make([]float32, ix.meta.Dim)
	err := ix.withVector(v, func(vecView []float32) {
		copy(out, vecView)
	})
	return out, err
}

// withVector pins the vertex's data page and exposes its vector in place
// — the PASE "tuple access" path, timed as such.
func (ix *Index) withVector(v VID, fn func([]float32)) error {
	pr := ix.ctx.Prof
	ts := pr.Timer("tuple_access").Start()
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.DataBlk)
	if err != nil {
		pr.Timer("tuple_access").Stop(ts)
		return err
	}
	item, err := buf.Page().Item(v.DataOff)
	if err != nil {
		pr.Timer("tuple_access").Stop(ts)
		buf.Release()
		return err
	}
	_, _, _, _, vecBytes := decodeDataEntry(item)
	view := pase.Float32View(vecBytes)
	pr.Timer("tuple_access").Stop(ts)
	fn(view)
	buf.Release()
	return nil
}

// tidOf returns the heap TID stored with a vertex.
func (ix *Index) tidOf(v VID) (heap.TID, error) {
	var tid heap.TID
	pr := ix.ctx.Prof
	ts := pr.Timer("tuple_access").Start()
	buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, v.DataBlk)
	if err != nil {
		pr.Timer("tuple_access").Stop(ts)
		return tid, err
	}
	item, err := buf.Page().Item(v.DataOff)
	if err == nil {
		tid, _, _, _, _ = decodeDataEntry(item)
	}
	pr.Timer("tuple_access").Stop(ts)
	buf.Release()
	return tid, err
}

// refKern pins graph construction and repair to the ref kernel: the
// edges a vertex gets (and the repairs Delete/Maintain perform) must not
// depend on the session's SET distance_kernel. Search paths resolve the
// session kernel via pase.KernelOpt and thread it through distTo.
var refKern = vec.Ref()

// distTo computes the distance between query and the vertex's vector,
// through the buffer pool (tuple access + fvec_L2sqr, as Fig 8 splits).
func (ix *Index) distTo(kern vec.Kernel, query []float32, v VID) (float32, error) {
	pr := ix.ctx.Prof
	var d float32
	err := ix.withVector(v, func(view []float32) {
		ts := pr.Timer("fvec_L2sqr").Start()
		d = kern.L2Sqr(query, view)
		pr.Timer("fvec_L2sqr").Stop(ts)
	})
	return d, err
}

// neighborsAt collects the used slots of v's list at level. The chain
// walk and per-item fetches are the pasepfirst cost in Fig 8.
func (ix *Index) neighborsAt(v VID, level uint16) ([]VID, error) {
	if ix.meta.Packed {
		return ix.packedNeighborsAt(v, level)
	}
	pr := ix.ctx.Prof
	ts := pr.Timer("pasepfirst").Start()
	defer pr.Timer("pasepfirst").Stop(ts)
	var out []VID
	blk := v.NbBlk
	for blk != pase.InvalidBlk {
		buf, err := ix.ctx.Pool.Pin(ix.ctx.Rel, blk)
		if err != nil {
			return nil, err
		}
		pg := buf.Page()
		n := pg.NumItems()
		for i := uint16(1); i <= n; i++ {
			item, err := pg.Item(i)
			if err != nil {
				buf.Release()
				return nil, err
			}
			nb, slotLevel, used := decodeSlot(item)
			if used && slotLevel == level {
				out = append(out, nb)
			}
		}
		next := pase.NextBlk(pg)
		buf.Release()
		blk = next
	}
	return out, nil
}

// greedyClosest walks one level moving to strictly closer neighbors.
func (ix *Index) greedyClosest(kern vec.Kernel, query []float32, ep VID, epDist float32, level uint16) (VID, float32, error) {
	for {
		nbs, err := ix.neighborsAt(ep, level)
		if err != nil {
			return ep, epDist, err
		}
		improved := false
		for _, nb := range nbs {
			d, err := ix.distTo(kern, query, nb)
			if err != nil {
				return ep, epDist, err
			}
			if d < epDist {
				ep, epDist = nb, d
				improved = true
			}
		}
		if !improved {
			return ep, epDist, nil
		}
	}
}

// searchLayer is the beam search at one level. The visited set is a hash
// map over global IDs — PASE's HVTGet — timed separately. A non-nil pred
// makes the search filtering: traversal still explores every neighbor
// (connectivity must not depend on the predicate, or the beam strands in
// filtered-out regions), but only predicate-satisfying vertices enter
// the result heap — in-traversal filtered kNN, the way filtered HNSW
// variants gate the result set.
func (ix *Index) searchLayer(kern vec.Kernel, query []float32, ep VID, epDist float32, ef int, level uint16, pred am.Predicate) ([]scored, error) {
	pr := ix.ctx.Prof
	tVisit := pr.Timer("HVTGet")

	visited := make(map[uint64]struct{}, 4*ef)
	visited[ep.key()] = struct{}{}

	results := minheap.NewTopK(ef)
	byID := make(map[int64]VID, 4*ef)
	push := func(v VID, d float32) error {
		tid, _, dead, err := ix.entryState(v)
		if err != nil {
			return err
		}
		if dead {
			// Tombstoned vertex: traversal still routes through it (its
			// edges keep the graph connected until Maintain repairs the
			// neighborhood), but it never surfaces as a result.
			return nil
		}
		if pred != nil {
			ok, err := pred(tid)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		id := int64(v.key())
		byID[id] = v
		results.Push(id, d)
		return nil
	}
	if err := push(ep, epDist); err != nil {
		return nil, err
	}

	cq := newCandQueue()
	cq.push(ep, epDist)

	for cq.len() > 0 {
		cur, curDist := cq.pop()
		if worst, full := results.Worst(); full && curDist > worst {
			break
		}
		nbs, err := ix.neighborsAt(cur, level)
		if err != nil {
			return nil, err
		}
		for _, nb := range nbs {
			ts := tVisit.Start()
			_, seen := visited[nb.key()]
			if !seen {
				visited[nb.key()] = struct{}{}
			}
			tVisit.Stop(ts)
			if seen {
				continue
			}
			d, err := ix.distTo(kern, query, nb)
			if err != nil {
				return nil, err
			}
			if worst, full := results.Worst(); !full || d < worst {
				if err := push(nb, d); err != nil {
					return nil, err
				}
				cq.push(nb, d)
			}
		}
	}
	items := results.Results()
	out := make([]scored, len(items))
	for i, it := range items {
		out[i] = scored{vid: byID[it.ID], dist: it.Dist}
	}
	return out, nil
}

// selectNeighbors applies the HNSW diversification heuristic; distances
// between candidates require further tuple accesses, unlike Faiss's
// array reads.
func (ix *Index) selectNeighbors(cands []scored, capacity int) ([]scored, error) {
	if len(cands) <= capacity {
		return cands, nil
	}
	kept := make([]scored, 0, capacity)
	var rejected []scored
	for _, c := range cands {
		if len(kept) >= capacity {
			break
		}
		cvec, err := ix.vectorCopy(c.vid)
		if err != nil {
			return nil, err
		}
		diverse := true
		for _, s := range kept {
			var d float32
			if err := ix.withVector(s.vid, func(view []float32) {
				d = refKern.L2Sqr(cvec, view)
			}); err != nil {
				return nil, err
			}
			if d < c.dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, r := range rejected {
		if len(kept) >= capacity {
			break
		}
		kept = append(kept, r)
	}
	return kept, nil
}
