package pase

import (
	"sync"
	"sync/atomic"
)

// ScanProbesParallel distributes probed bucket IDs over worker
// goroutines — the shared worker pool behind the RC#3 parallel search
// paths of ivfflat and ivfpq. newWorker runs once per goroutine and
// returns that worker's scan function (closing over any per-worker
// scratch, e.g. ivfpq's distance table).
//
// Probes are handed out through an atomic cursor. The first scan error
// raises a shared cancel flag that every worker checks before taking its
// next probe, so the remaining workers stop promptly instead of scanning
// every leftover probe, and the error propagates as soon as the pool
// drains. Only the first error is returned.
func ScanProbesParallel(probes []int32, threads int, newWorker func() func(probe int32) error) error {
	if threads > len(probes) {
		threads = len(probes)
	}
	if threads < 1 {
		threads = 1
	}
	var (
		cursor   atomic.Int64
		canceled atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scan := newWorker()
			for !canceled.Load() {
				i := cursor.Add(1) - 1
				if i >= int64(len(probes)) {
					return
				}
				if err := scan(probes[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
					canceled.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
