// Package all registers every generalized index access method (the four
// PASE AMs plus the pgvector-style baseline) with the am registry. Blank
// import it wherever the generalized engine must resolve `USING <am>`
// clauses:
//
//	import _ "vecstudy/internal/pase/all"
package all

import (
	_ "vecstudy/internal/pase/hnsw"
	_ "vecstudy/internal/pase/ivfflat"
	_ "vecstudy/internal/pase/ivfpq"
	_ "vecstudy/internal/pase/ivfsq8"
	_ "vecstudy/internal/pgvector"
)
