package ivfsq8

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/storage"
	"vecstudy/internal/vec"

	flat "vecstudy/internal/pase/ivfflat"
)

const (
	testDim   = 32
	testN     = 400
	tableRel  = 1
	indexRel  = 2
	secondRel = 3
)

var testSchema = heap.Schema{Cols: []heap.Column{
	{Name: "id", Type: heap.Int4},
	{Name: "vec", Type: heap.Float4Array},
}}

type fixture struct {
	pool *buffer.Pool
	tbl  *heap.Table
	vecs [][]float32
	tids []heap.TID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	pool, err := buffer.NewPool(4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []buffer.RelID{tableRel, indexRel, secondRel} {
		if err := pool.Register(rel, storage.NewMemStore(4096)); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := heap.New(pool, tableRel, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	fx := &fixture{pool: pool, tbl: tbl}
	for i := 0; i < testN; i++ {
		v := make([]float32, testDim)
		for j := range v {
			v[j] = float32(rng.NormFloat64()) * 10
		}
		tid, err := tbl.Insert([]any{int32(i), v})
		if err != nil {
			t.Fatal(err)
		}
		fx.vecs = append(fx.vecs, v)
		fx.tids = append(fx.tids, tid)
	}
	return fx
}

func (fx *fixture) ctx(rel buffer.RelID) *am.BuildContext {
	return &am.BuildContext{
		Pool: fx.pool, Rel: rel, Table: fx.tbl, VecCol: 1, Dim: testDim,
		Opts: map[string]string{"clusters": "10", "sample_ratio": "1", "seed": "1"},
	}
}

func (fx *fixture) build(t *testing.T) *Index {
	t.Helper()
	ix, err := Build(fx.ctx(indexRel))
	if err != nil {
		t.Fatal(err)
	}
	return ix.(*Index)
}

// exhaustive are the scan params that make the 10-cluster index exact.
func exhaustive() map[string]string {
	return map[string]string{"nprobe": "10"}
}

// exactTopK is the brute-force oracle on the ref kernel.
func (fx *fixture) exactTopK(query []float32, k int) []heap.TID {
	ref := vec.Ref()
	type cand struct {
		i int
		d float32
	}
	cands := make([]cand, len(fx.vecs))
	for i, v := range fx.vecs {
		cands[i] = cand{i, ref.L2Sqr(query, v)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return a < b
	})
	out := make([]heap.TID, k)
	for i := 0; i < k; i++ {
		out[i] = fx.tids[cands[i].i]
	}
	return out
}

func queryVec(seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float32, testDim)
	for j := range q {
		q[j] = float32(rng.NormFloat64()) * 10
	}
	return q
}

// TestSearchMatchesExactAfterRerank: with exhaustive probes, the
// re-ranked results equal the full-precision brute-force top-k — the
// quantized phase only pre-selects; final distances are exact.
func TestSearchMatchesExactAfterRerank(t *testing.T) {
	fx := newFixture(t)
	ix := fx.build(t)
	const k = 10
	for seed := int64(100); seed < 110; seed++ {
		q := queryVec(seed)
		got, err := ix.Search(q, k, exhaustive())
		if err != nil {
			t.Fatal(err)
		}
		want := fx.exactTopK(q, k)
		if len(got) != k {
			t.Fatalf("seed %d: got %d results, want %d", seed, len(got), k)
		}
		for i := range got {
			if got[i].TID != want[i] {
				t.Errorf("seed %d rank %d: TID %v, exact %v", seed, i, got[i].TID, want[i])
			}
		}
	}
}

// TestMultiSearchMatchesSolo: the batched path must be byte-identical
// to per-query calls, filtered and unfiltered, under every registered
// kernel (the group key pins one kernel per batch).
func TestMultiSearchMatchesSolo(t *testing.T) {
	fx := newFixture(t)
	ix := fx.build(t)
	const B, k = 5, 7
	queries := make([][]float32, B)
	ks := make([]int, B)
	for i := range queries {
		queries[i] = queryVec(int64(200 + i))
		ks[i] = k
	}
	evenPred := func(tid heap.TID) (bool, error) {
		for i, tt := range fx.tids {
			if tt == tid {
				return i%2 == 0, nil
			}
		}
		return false, nil
	}
	for _, name := range vec.RegisteredKernelNames() {
		params := exhaustive()
		params["distance_kernel"] = name
		// Unfiltered.
		multi, err := ix.MultiSearch(queries, ks, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			solo, err := ix.Search(queries[i], ks[i], params)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, name+"/plain", i, multi[i], solo)
		}
		// Filtered.
		preds := make([]am.Predicate, B)
		for i := range preds {
			preds[i] = evenPred
		}
		multi, err = ix.MultiSearch(queries, ks, params, preds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			solo, err := ix.SearchFiltered(queries[i], ks[i], params, evenPred)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, name+"/filtered", i, multi[i], solo)
		}
	}
}

func assertSameResults(t *testing.T, label string, qi int, got, want []am.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s q=%d: batched %d results, solo %d", label, qi, len(got), len(want))
	}
	for j := range got {
		if got[j].TID != want[j].TID || math.Float32bits(got[j].Dist) != math.Float32bits(want[j].Dist) {
			t.Fatalf("%s q=%d rank %d: batched (%v, %x) != solo (%v, %x)",
				label, qi, j, got[j].TID, math.Float32bits(got[j].Dist),
				want[j].TID, math.Float32bits(want[j].Dist))
		}
	}
}

// TestOpenReloadsPersistedStats: Open on the already-written relation
// must reload the identical quantization grid from the stats pages and
// answer queries byte-identically.
func TestOpenReloadsPersistedStats(t *testing.T) {
	fx := newFixture(t)
	built := fx.build(t)
	q := queryVec(300)
	want, err := built.Search(q, 10, exhaustive())
	if err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(fx.ctx(indexRel))
	if err != nil {
		t.Fatal(err)
	}
	ro := reopened.(*Index)
	for j := 0; j < testDim; j++ {
		if math.Float32bits(ro.sq.Min[j]) != math.Float32bits(built.sq.Min[j]) ||
			math.Float32bits(ro.sq.Step[j]) != math.Float32bits(built.sq.Step[j]) {
			t.Fatalf("dim %d: reloaded grid (%v, %v) != trained (%v, %v)",
				j, ro.sq.Min[j], ro.sq.Step[j], built.sq.Min[j], built.sq.Step[j])
		}
	}
	got, err := ro.Search(q, 10, exhaustive())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "reopened", 0, got, want)
}

// TestDeleteMaintainChurn: tombstoned codes vanish from results
// immediately; Maintain reclaims them and results stay exact.
func TestDeleteMaintainChurn(t *testing.T) {
	fx := newFixture(t)
	ix := fx.build(t)
	q := queryVec(400)
	before, err := ix.Search(q, 5, exhaustive())
	if err != nil {
		t.Fatal(err)
	}
	// Delete the current top result from heap and index.
	victim := before[0].TID
	var vi int
	for i, tt := range fx.tids {
		if tt == victim {
			vi = i
			break
		}
	}
	found, err := ix.Delete(fx.vecs[vi], victim)
	if err != nil || !found {
		t.Fatalf("Delete = (%v, %v)", found, err)
	}
	if ok, err := fx.tbl.Delete(victim); err != nil || !ok {
		t.Fatalf("heap Delete = (%v, %v)", ok, err)
	}
	if got := ix.DeadCount(); got != 1 {
		t.Fatalf("DeadCount = %d, want 1", got)
	}
	after, err := ix.Search(q, 5, exhaustive())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.TID == victim {
			t.Fatal("deleted TID still surfaced")
		}
	}
	removed, err := ix.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Maintain removed %d, want 1", removed)
	}
	if got := ix.DeadCount(); got != 0 {
		t.Fatalf("post-Maintain DeadCount = %d", got)
	}
	again, err := ix.Search(q, 5, exhaustive())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "post-maintain", 0, again, after)
}

// TestIndexSmallerThanIvfflat: byte codes shrink the data entries 4x
// at d=32 (40 vs 136 bytes). At this small scale the fixed overhead —
// meta, centroid, and stats pages plus the one-page minimum per bucket
// chain — dilutes the on-disk ratio, so we only assert the whole
// relation is strictly smaller; the asymptotic ratio is exercised by
// the -exp sq8 experiment at dataset scale.
func TestIndexSmallerThanIvfflat(t *testing.T) {
	fx := newFixture(t)
	sq8 := fx.build(t)
	flatIx, err := flat.Build(fx.ctx(secondRel))
	if err != nil {
		t.Fatal(err)
	}
	sq8Size, err := sq8.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	flatSize, err := flatIx.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if sq8Size >= flatSize {
		t.Errorf("ivfsq8 = %d bytes, ivfflat = %d: quantized index should be smaller", sq8Size, flatSize)
	}
}

// TestRerankBetaClamp: sq8_rerank = 1 still returns k rows at
// exhaustive probes (the quantized order is good enough to keep the
// true neighbors inside the top k on this easy data).
func TestRerankBetaClamp(t *testing.T) {
	fx := newFixture(t)
	ix := fx.build(t)
	params := exhaustive()
	params["sq8_rerank"] = "1"
	got, err := ix.Search(queryVec(500), 10, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("beta=1: got %d rows, want 10", len(got))
	}
}
