package ivfsq8

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vecstudy/internal/pase"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
)

// Delete implements am.MutableIndex: the code entry for (v, tid) is
// tombstoned in place so bucket scans skip it immediately; the bytes
// stay on the page until Maintain compacts the chain. The owning bucket
// is re-derived from the full-precision v with the pinned ref kernel —
// the same arithmetic Build and Insert assigned with — so the bucket
// found here is the one the code was appended to.
func (ix *Index) Delete(v []float32, tid heap.TID) (bool, error) {
	if len(v) != int(ix.meta.Dim) {
		return false, fmt.Errorf("pase/ivfsq8: deleting %d-dim vector from %d-dim index", len(v), ix.meta.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cid := ix.nearestCentroid(v)
	found, err := ix.tombstone(cid, tid)
	if err != nil || !found {
		return false, err
	}
	ix.dead.Add(1)
	return true, nil
}

// DeadCount implements am.MutableIndex.
func (ix *Index) DeadCount() int64 { return ix.dead.Load() }

// tombstone walks bucket cid's chain, marks the entry with the given
// heap TID dead, and decrements the bucket's population counter.
func (ix *Index) tombstone(cid int, tid heap.TID) (bool, error) {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	blk, off := ix.centroidLoc(cid)
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		return false, err
	}
	centry, err := cbuf.Page().Item(off)
	if err != nil {
		cbuf.Release()
		return false, err
	}
	trailer := centry[d*4:]
	next := binary.LittleEndian.Uint32(trailer[0:])

	for next != pase.InvalidBlk {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		if err != nil {
			cbuf.Release()
			return false, err
		}
		pg := dbuf.Page()
		for i := uint16(1); i <= pg.NumItems(); i++ {
			item, err := pg.Item(i)
			if err != nil {
				if errors.Is(err, page.ErrDeadItem) {
					continue
				}
				dbuf.Release()
				cbuf.Release()
				return false, err
			}
			if heap.UnpackTID(item) != tid {
				continue
			}
			if err := pg.DeleteItem(i); err != nil {
				dbuf.Release()
				cbuf.Release()
				return false, err
			}
			dbuf.MarkDirty()
			dbuf.Release()
			count := binary.LittleEndian.Uint32(trailer[8:])
			if count > 0 {
				binary.LittleEndian.PutUint32(trailer[8:], count-1)
				cbuf.MarkDirty()
			}
			cbuf.Release()
			return true, nil
		}
		nxt := pase.NextBlk(pg)
		dbuf.Release()
		next = nxt
	}
	cbuf.Release()
	return false, nil
}

// Maintain implements am.MutableIndex: every bucket chain is rewritten
// in place dropping tombstoned codes — IVF list compaction, exactly as
// ivfflat's (code entries are uniform size, so the repack always fits).
// Returns the number of tombstones removed.
func (ix *Index) Maintain() (int64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var removed int64
	for cid := 0; cid < int(ix.meta.NList); cid++ {
		n, err := ix.compactBucket(cid)
		if err != nil {
			return removed, err
		}
		removed += n
	}
	ix.dead.Store(0)
	return removed, nil
}

// compactBucket rewrites one bucket's chain dropping dead entries.
func (ix *Index) compactBucket(cid int) (int64, error) {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	blk, off := ix.centroidLoc(cid)
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		return 0, err
	}
	centry, err := cbuf.Page().Item(off)
	if err != nil {
		cbuf.Release()
		return 0, err
	}
	trailer := centry[d*4:]
	first := binary.LittleEndian.Uint32(trailer[0:])
	if first == pase.InvalidBlk {
		cbuf.Release()
		return 0, nil
	}

	// Pass 1: collect live entries and the chain's block numbers.
	var entries [][]byte
	var chain []uint32
	var dead int64
	next := first
	for next != pase.InvalidBlk {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		if err != nil {
			cbuf.Release()
			return 0, err
		}
		pg := dbuf.Page()
		chain = append(chain, next)
		for i := uint16(1); i <= pg.NumItems(); i++ {
			item, err := pg.Item(i)
			if err != nil {
				if errors.Is(err, page.ErrDeadItem) {
					dead++
					continue
				}
				dbuf.Release()
				cbuf.Release()
				return 0, err
			}
			entries = append(entries, append([]byte(nil), item...))
		}
		next = pase.NextBlk(pg)
		dbuf.Release()
	}
	if dead == 0 {
		cbuf.Release()
		return 0, nil
	}

	// Pass 2: rewrite the chain's pages front to back with the live
	// entries, terminating the chain at the last page used.
	ei := 0
	newLast := first
	for pi := 0; pi < len(chain); pi++ {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, chain[pi])
		if err != nil {
			cbuf.Release()
			return 0, err
		}
		pg := dbuf.Page()
		page.Init(pg, pase.ChainSpecialSize)
		for ei < len(entries) {
			if _, err := pg.AddItem(entries[ei]); err != nil {
				if errors.Is(err, page.ErrPageFull) {
					break
				}
				dbuf.Release()
				cbuf.Release()
				return 0, err
			}
			ei++
		}
		more := ei < len(entries)
		if more {
			if pi+1 >= len(chain) {
				dbuf.Release()
				cbuf.Release()
				return 0, fmt.Errorf("pase/ivfsq8: bucket %d repack overflowed its chain", cid)
			}
			pase.SetNextBlk(pg, chain[pi+1])
		} else {
			pase.SetNextBlk(pg, pase.InvalidBlk)
		}
		dbuf.MarkDirty()
		newLast = chain[pi]
		dbuf.Release()
		if !more {
			break
		}
	}

	binary.LittleEndian.PutUint32(trailer[0:], first)
	binary.LittleEndian.PutUint32(trailer[4:], newLast)
	binary.LittleEndian.PutUint32(trailer[8:], uint32(len(entries)))
	cbuf.MarkDirty()
	cbuf.Release()
	return dead, nil
}
