package ivfsq8

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

// Search implements am.Index. params: nprobe (default 20), sq8_rerank
// (β, default 4), distance_kernel. The quantized scan scores one page
// of codes per kernel call in the decomposed asymmetric form
// (DotSQ8Batch against per-entry stored norms) and keeps the k·β
// best candidates by asymmetric code distance in a bounded TopK, then
// every survivor is re-fetched from the heap (visibility-checked, so
// entries whose rows died since indexing silently drop out) and
// re-scored at full precision; the final TopK(k) ranks those exact
// distances. Both heaps use the (Dist, ID) total order, so results do
// not depend on bucket visit order — which is what lets MultiSearch
// share one chain walk and still return byte-identical rows.
func (ix *Index) Search(query []float32, k int, params map[string]string) ([]am.Result, error) {
	return ix.SearchFiltered(query, k, params, nil)
}

// SearchFiltered implements am.FilteredIndex: the predicate gates
// candidates before they enter the quantized TopK (in-traversal
// filtering), so β over-fetch is spent entirely on rows that qualify.
func (ix *Index) SearchFiltered(query []float32, k int, params map[string]string, pred am.Predicate) ([]am.Result, error) {
	if len(query) != int(ix.meta.Dim) {
		return nil, fmt.Errorf("pase/ivfsq8: query dimension %d != %d", len(query), ix.meta.Dim)
	}
	if k <= 0 {
		return nil, errors.New("pase/ivfsq8: k must be positive")
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	beta, err := pase.OptInt(params, "sq8_rerank", 4)
	if err != nil {
		return nil, err
	}
	if beta < 1 {
		beta = 1
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}

	approx := minheap.NewTopK(k * beta)
	probes := ix.selectProbes(kern, query, nprobe)
	if pred == nil {
		// Plain scans score one whole page per kernel call in the
		// decomposed form: dist_i = ‖u‖² − 2·(w·c_i) + norm_i, with the
		// query terms precomputed once (vec.SQ8.DecomposeQuery) and each
		// entry's code norm read off the page where Build stored it. The
		// per-candidate kernel work is then a bare uint8 dot product —
		// roughly a third of the direct subtract-square form. The
		// reassembled distance rounds differently from the direct form,
		// which only moves candidates at the k·β selection boundary; the
		// full-precision re-rank makes the returned distances exact
		// either way. MultiSearch applies the identical transform and
		// per-page kernel calls, so batched and solo results still match
		// bitwise.
		tDist := ix.ctx.Prof.Timer("fvec_L2sqr")
		sc := &pageScanScratch{}
		w := make([]float32, len(query))
		unorm := ix.sq.DecomposeQuery(query, w)
		for _, cid := range probes {
			err := ix.scanBucketPages(cid, sc, func(tids []heap.TID, codes [][]byte, norms []float32) error {
				if cap(sc.dists) < len(codes) {
					sc.dists = make([]float32, len(codes))
				}
				dists := sc.dists[:len(codes)]
				ts := tDist.Start()
				kern.DotSQ8Batch(w, codes, dists)
				for i := range dists {
					dists[i] = unorm - 2*dists[i] + norms[i]
				}
				tDist.Stop(ts)
				for i, tid := range tids {
					approx.Push(packTID(tid), dists[i])
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return ix.rerank(kern, query, k, approx.Results())
	}
	var predErr error
	err = ix.scanBuckets(kern, query, probes, func(tid heap.TID, dist float32) {
		if predErr != nil {
			return
		}
		ok, err := pred(tid)
		if err != nil {
			predErr = err
			return
		}
		if !ok {
			return
		}
		approx.Push(packTID(tid), dist)
	})
	if err != nil {
		return nil, err
	}
	if predErr != nil {
		return nil, predErr
	}
	return ix.rerank(kern, query, k, approx.Results())
}

// rerank re-fetches every quantized candidate's full-precision vector
// from the heap and ranks the exact distances in a TopK(k). The
// visibility check doubles as the executor's re-check: a candidate
// whose heap tuple died since the code was written is skipped.
func (ix *Index) rerank(kern vec.Kernel, query []float32, k int, cands []minheap.Item) ([]am.Result, error) {
	pr := ix.ctx.Prof
	tRerank := pr.Timer("sq8_rerank")
	ts := tRerank.Start()
	defer tRerank.Stop(ts)
	top := minheap.NewTopK(k)
	for _, it := range cands {
		tid := unpackTID(it.ID)
		v, ok, err := ix.ctx.Table.GetVectorVisible(tid, ix.ctx.VecCol)
		if err != nil {
			return nil, fmt.Errorf("pase/ivfsq8: re-rank fetch %v: %w", tid, err)
		}
		if !ok {
			continue
		}
		top.Push(it.ID, kern.L2Sqr(query, v))
	}
	return itemsToResults(top.Results()), nil
}

// selectProbes ranks all centroids by full-precision distance and
// returns the nprobe nearest bucket IDs — identical to ivfflat (probe
// selection is not quantized).
func (ix *Index) selectProbes(kern vec.Kernel, query []float32, nprobe int) []int32 {
	d := int(ix.meta.Dim)
	heap := minheap.NewTopK(nprobe)
	for c := 0; c < int(ix.meta.NList); c++ {
		heap.Push(int64(c), kern.L2Sqr(query, ix.centroidCache[c*d:(c+1)*d]))
	}
	items := heap.Results()
	out := make([]int32, len(items))
	for i, it := range items {
		out[i] = int32(it.ID)
	}
	return out
}

// scanBuckets visits every code of the given buckets, invoking emit
// with the entry's TID and its asymmetric distance to the query.
func (ix *Index) scanBuckets(kern vec.Kernel, query []float32, probes []int32, emit func(heap.TID, float32)) error {
	pr := ix.ctx.Prof
	tDist := pr.Timer("fvec_L2sqr")
	for _, cid := range probes {
		err := ix.scanBucketRaw(cid, func(tid heap.TID, code []byte) {
			ts := tDist.Start()
			dist := kern.L2SqrSQ8(query, code, ix.sq)
			tDist.Stop(ts)
			emit(tid, dist)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// pageScanScratch holds the reusable per-page views of a bucket scan:
// parallel TID/norm/code slices refilled for each visited page, plus the
// distance buffer the batch-scoring path writes into. The page field
// escorts the views: it holds the pin whose frame the code slices point
// into, so the views are valid exactly while it is non-nil (pagealias
// permits view stores into a struct only when the struct carries the
// pin alongside).
type pageScanScratch struct {
	page  *buffer.Buf
	tids  []heap.TID
	codes [][]byte
	norms []float32
	dists []float32
}

// releasePage drops the escorted pin; the code views stored in sc are
// invalid past this point.
func (sc *pageScanScratch) releasePage() {
	if sc.page != nil {
		sc.page.Release()
		sc.page = nil
	}
}

// scanBucketPages walks one bucket's page chain through the buffer pool
// and hands visit each page's live entries as parallel TID/code/norm
// slices (norms are the stored code-side terms of the decomposed
// distance). The code views alias the pinned page (held across the
// callback) and the slices alias sc, so both are valid only for the
// callback's duration.
func (ix *Index) scanBucketPages(cid int32, sc *pageScanScratch, visit func(tids []heap.TID, codes [][]byte, norms []float32) error) error {
	ctx := ix.ctx
	pr := ctx.Prof
	d := int(ix.meta.Dim)
	tTuple := pr.Timer("tuple_access")
	blk, off := ix.centroidLoc(int(cid))
	ts := tTuple.Start()
	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		tTuple.Stop(ts)
		return err
	}
	centry, err := cbuf.Page().Item(off)
	tTuple.Stop(ts)
	if err != nil {
		cbuf.Release()
		return err
	}
	next := binary.LittleEndian.Uint32(centry[d*4:])
	cbuf.Release()

	for next != pase.InvalidBlk {
		ts := tTuple.Start()
		dbuf, err := ctx.Pool.Pin(ctx.Rel, next)
		if err != nil {
			tTuple.Stop(ts)
			return err
		}
		// Escort the pin in the scratch: the code views appended below
		// point into this frame, and sc.page holding it is what makes
		// storing them legal (and keeps it legal only until releasePage).
		sc.page = dbuf
		pg := dbuf.Page()
		n := pg.NumItems()
		sc.tids = sc.tids[:0]
		sc.codes = sc.codes[:0]
		sc.norms = sc.norms[:0]
		for i := uint16(1); i <= n; i++ {
			item, err := pg.Item(i)
			if err != nil {
				if errors.Is(err, page.ErrDeadItem) {
					continue // tombstoned entry: skip, reclaimed by Maintain
				}
				tTuple.Stop(ts)
				sc.releasePage()
				return err
			}
			sc.tids = append(sc.tids, heap.UnpackTID(item))
			sc.norms = append(sc.norms, math.Float32frombits(binary.LittleEndian.Uint32(item[dataEntryHeaderSize:])))
			sc.codes = append(sc.codes, item[dataEntryCodeOff:])
		}
		tTuple.Stop(ts)
		if err := visit(sc.tids, sc.codes, sc.norms); err != nil {
			sc.releasePage()
			return err
		}
		next = pase.NextBlk(pg)
		sc.releasePage()
	}
	return nil
}

// scanBucketRaw is the per-entry view of scanBucketPages, used by the
// predicate path, which interleaves per-candidate filtering with
// scoring and scores survivors with the direct solo form (the stored
// norms go unused there). Each code view is valid only for emit's
// duration.
func (ix *Index) scanBucketRaw(cid int32, emit func(heap.TID, []byte)) error {
	var sc pageScanScratch
	return ix.scanBucketPages(cid, &sc, func(tids []heap.TID, codes [][]byte, _ []float32) error {
		for i, tid := range tids {
			emit(tid, codes[i])
		}
		return nil
	})
}

// packTID squeezes a TID into an int64 for the heap item ID.
func packTID(tid heap.TID) int64 {
	return int64(tid.Blk)<<16 | int64(tid.Off)
}

func unpackTID(v int64) heap.TID {
	return heap.TID{Blk: uint32(v >> 16), Off: uint16(v & 0xFFFF)}
}

func itemsToResults(items []minheap.Item) []am.Result {
	out := make([]am.Result, len(items))
	for i, it := range items {
		out[i] = am.Result{TID: unpackTID(it.ID), Dist: it.Dist}
	}
	return out
}
