// Package ivfsq8 implements a PASE-style IVF index with SQ8 scalar
// quantization on the PostgreSQL substrate: the bucket layout of
// ivfflat, but each data entry stores the vector as d uint8 codes on a
// per-dimension [min, max] grid trained at build time, so data pages
// hold roughly 4× more tuples per page. Search scores codes with the
// kernel's asymmetric uint8-vs-float32 distance — plain scans in the
// decomposed form (a uint8 dot product against stored code norms, one
// page per kernel call), predicate and multi-query paths per item —
// keeps k·β candidates (SET sq8_rerank), and re-ranks them against the
// full-precision heap tuples before returning k — the classic SQ8 +
// refinement recipe, here paying PostgreSQL's tuple re-fetch cost for
// the refinement step.
//
// On-page structure: a meta page (block 0), a chain of stats pages
// persisting the trained per-dimension min/step arrays, centroid pages
// identical to ivfflat's (full-precision centroids — probe selection is
// not quantized), and per-bucket chains of code pages.
package ivfsq8

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/vec"
)

func init() {
	am.Register("ivfsq8", Build)
}

// centroid entry layout: full-precision vector (dim·4) then bucket
// bookkeeping, exactly as ivfflat.
const centroidTrailerSize = 16 // firstBlk u32 | lastBlk u32 | count u32 | pad u32

// data entry layout: packed TID (6) + pad (2), the entry's code norm
// Σ(Step_i·c_i)² as a little-endian float32 (4), then the d code bytes.
// The stored norm is the code-side term of the decomposed asymmetric
// distance (vec.SQ8.DecomposeQuery): computing it once at encode time
// lets plain scans score each candidate with a single uint8 dot product
// instead of the full subtract-square form. It is derived purely from
// the code and the trained grid with fixed scalar arithmetic
// (vec.SQ8.CodeNorm), so it is kernel-independent like the rest of the
// on-disk layout.
const (
	dataEntryHeaderSize = 8
	dataEntryNormSize   = 4
	dataEntryCodeOff    = dataEntryHeaderSize + dataEntryNormSize
)

// statsChunkSize bounds one stats item: the min/step arrays are split
// into page-item-sized chunks so any dimensionality fits the page size.
const statsChunkSize = 4096

// meta is item 1 of block 0.
type meta struct {
	Dim              uint32
	NList            uint32
	FirstCentroidBlk uint32
	CentroidsPerPage uint32
	FirstStatsBlk    uint32
}

func encodeMeta(m meta) []byte {
	b := make([]byte, 20)
	binary.LittleEndian.PutUint32(b[0:], m.Dim)
	binary.LittleEndian.PutUint32(b[4:], m.NList)
	binary.LittleEndian.PutUint32(b[8:], m.FirstCentroidBlk)
	binary.LittleEndian.PutUint32(b[12:], m.CentroidsPerPage)
	binary.LittleEndian.PutUint32(b[16:], m.FirstStatsBlk)
	return b
}

func decodeMeta(b []byte) meta {
	return meta{
		Dim:              binary.LittleEndian.Uint32(b[0:]),
		NList:            binary.LittleEndian.Uint32(b[4:]),
		FirstCentroidBlk: binary.LittleEndian.Uint32(b[8:]),
		CentroidsPerPage: binary.LittleEndian.Uint32(b[12:]),
		FirstStatsBlk:    binary.LittleEndian.Uint32(b[16:]),
	}
}

// Index is a built IVF_SQ8 index.
type Index struct {
	ctx  *am.BuildContext
	meta meta

	// centroidCache holds the full-precision centroids read once at open
	// (probe selection is never quantized); sq holds the trained grid,
	// loaded from the stats pages.
	centroidCache []float32
	sq            *vec.SQ8

	mu sync.Mutex // serializes inserts and deletes

	dead atomic.Int64 // tombstoned entries awaiting Maintain

	stats BuildStats
}

// BuildStats reports the construction phases.
type BuildStats struct {
	TrainTime time.Duration
	AddTime   time.Duration
	NAdded    int
}

// Stats returns the build phase timings.
func (ix *Index) Stats() BuildStats { return ix.stats }

// AM implements am.Index.
func (ix *Index) AM() string { return "ivfsq8" }

// NList returns the number of buckets.
func (ix *Index) NList() int { return int(ix.meta.NList) }

// Quantizer exposes the trained grid (tests verify persistence).
func (ix *Index) Quantizer() *vec.SQ8 { return ix.sq }

// Build trains centroids and the SQ8 grid over the table's vectors and
// bulk-loads every row as a code. Options: clusters (c), sample_ratio
// (sr), seed — the same knobs as ivfflat.
func Build(ctx *am.BuildContext) (am.Index, error) {
	nlist, err := pase.OptInt(ctx.Opts, "clusters", 256)
	if err != nil {
		return nil, err
	}
	sr, err := pase.OptFloat(ctx.Opts, "sample_ratio", 0.01)
	if err != nil {
		return nil, err
	}
	seed, err := pase.OptInt(ctx.Opts, "seed", 0)
	if err != nil {
		return nil, err
	}
	if nlist <= 0 {
		return nil, errors.New("pase/ivfsq8: clusters must be positive")
	}

	start := time.Now()
	var tids []heap.TID
	data := vec.NewFlat(ctx.Dim, 1024)
	trainer := vec.NewSQ8Trainer(ctx.Dim)
	err = ctx.Table.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		v, err := ctx.Table.Schema().VectorAt(tup, ctx.VecCol)
		if err != nil {
			return false, err
		}
		if len(v) != ctx.Dim {
			return false, fmt.Errorf("pase/ivfsq8: row %v has dimension %d, index expects %d", tid, len(v), ctx.Dim)
		}
		tids = append(tids, tid)
		data.Append(v)
		trainer.Observe(v)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	n := data.N()
	if n < nlist {
		return nil, fmt.Errorf("pase/ivfsq8: %d rows cannot form %d clusters", n, nlist)
	}

	res, err := kmeans.Train(data.Data, n, ctx.Dim, kmeans.Config{
		K:           nlist,
		Seed:        int64(seed),
		SampleRatio: sr,
		UseGemm:     false,
		Threads:     1,
		Flavor:      kmeans.FlavorPASE,
	})
	if err != nil {
		return nil, err
	}
	sq := trainer.Finish()
	trainTime := time.Since(start)

	addStart := time.Now()
	ix := &Index{ctx: ctx, sq: sq}
	if err := ix.initPages(res.Centroids, nlist, sq); err != nil {
		return nil, err
	}

	d := ctx.Dim
	code := make([]byte, d)
	for i := 0; i < n; i++ {
		x := data.Data[i*d : (i+1)*d]
		cid := ix.nearestCentroid(x)
		sq.Encode(x, code)
		if err := ix.appendEntry(cid, code, tids[i]); err != nil {
			return nil, err
		}
	}
	ix.stats = BuildStats{TrainTime: trainTime, AddTime: time.Since(addStart), NAdded: n}
	return ix, nil
}

// Open re-binds an existing index relation, reloading the centroid cache
// and the persisted SQ8 grid from the stats pages.
func Open(ctx *am.BuildContext) (am.Index, error) {
	ix := &Index{ctx: ctx}
	buf, err := ctx.Pool.Pin(ctx.Rel, 0)
	if err != nil {
		return nil, err
	}
	item, err := buf.Page().Item(1)
	if err != nil {
		buf.Release()
		return nil, fmt.Errorf("pase/ivfsq8: reading meta page: %w", err)
	}
	ix.meta = decodeMeta(item)
	buf.Release()
	if int(ix.meta.Dim) != ctx.Dim {
		return nil, fmt.Errorf("pase/ivfsq8: index dim %d != table dim %d", ix.meta.Dim, ctx.Dim)
	}
	if err := ix.loadStats(); err != nil {
		return nil, err
	}
	return ix, ix.loadCentroidCache()
}

// initPages lays out the meta page, stats pages, and centroid pages.
func (ix *Index) initPages(centroids []float32, nlist int, sq *vec.SQ8) error {
	ctx := ix.ctx
	d := ctx.Dim
	entrySize := d*4 + centroidTrailerSize
	usable := ctx.Pool.PageSize() - page.HeaderSize
	perPage := usable / (entrySize + page.ItemIDSize + page.MaxAlign)
	if perPage == 0 {
		return fmt.Errorf("pase/ivfsq8: centroid entry of %d bytes does not fit page", entrySize)
	}

	metaBuf, metaBlk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		return err
	}
	if metaBlk != 0 {
		metaBuf.Release()
		return fmt.Errorf("pase/ivfsq8: meta page allocated at block %d", metaBlk)
	}
	page.Init(metaBuf.Page(), 0)

	// Stats pages first: the trained grid is serialized as one byte
	// stream (d mins then d steps, little-endian float32) split into
	// page items, on a chain starting right after the meta page.
	statsBlk, err := ix.writeStats(sq)
	if err != nil {
		metaBuf.Release()
		return err
	}
	firstCentroidBlk, err := ix.writeCentroids(centroids, nlist, perPage, entrySize)
	if err != nil {
		metaBuf.Release()
		return err
	}

	ix.meta = meta{
		Dim:              uint32(d),
		NList:            uint32(nlist),
		FirstCentroidBlk: firstCentroidBlk,
		CentroidsPerPage: uint32(perPage),
		FirstStatsBlk:    statsBlk,
	}
	if _, err := metaBuf.Page().AddItem(encodeMeta(ix.meta)); err != nil {
		metaBuf.Release()
		return err
	}
	metaBuf.MarkDirty()
	metaBuf.Release()
	return ix.loadCentroidCache()
}

// statsBytes serializes the grid: d mins then d steps.
func statsBytes(sq *vec.SQ8) []byte {
	d := sq.Dim()
	out := make([]byte, 8*d)
	pase.PutFloat32s(out, sq.Min)
	pase.PutFloat32s(out[4*d:], sq.Step)
	return out
}

// writeStats persists the grid onto a chain of stats pages and returns
// the first block number.
func (ix *Index) writeStats(sq *vec.SQ8) (uint32, error) {
	ctx := ix.ctx
	raw := statsBytes(sq)
	first := pase.InvalidBlk
	var prev *buffer.Buf
	var prevBlk uint32
	for off := 0; off < len(raw); {
		buf, blk, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			if prev != nil {
				prev.Release()
			}
			return 0, err
		}
		page.Init(buf.Page(), pase.ChainSpecialSize)
		pase.SetNextBlk(buf.Page(), pase.InvalidBlk)
		if first == pase.InvalidBlk {
			first = blk
		}
		if prev != nil {
			pase.SetNextBlk(prev.Page(), blk)
			prev.MarkDirty()
			prev.Release()
		}
		for off < len(raw) {
			end := off + statsChunkSize
			if end > len(raw) {
				end = len(raw)
			}
			if _, err := buf.Page().AddItem(raw[off:end]); err != nil {
				if errors.Is(err, page.ErrPageFull) {
					break
				}
				buf.Release()
				return 0, err
			}
			off = end
		}
		buf.MarkDirty()
		prev, prevBlk = buf, blk
		_ = prevBlk
	}
	if prev != nil {
		prev.Release()
	}
	return first, nil
}

// loadStats reads the persisted grid back from the stats chain.
func (ix *Index) loadStats() error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	want := 8 * d
	raw := make([]byte, 0, want)
	blk := ix.meta.FirstStatsBlk
	for blk != pase.InvalidBlk && len(raw) < want {
		buf, err := ctx.Pool.Pin(ctx.Rel, blk)
		if err != nil {
			return err
		}
		pg := buf.Page()
		for i := uint16(1); i <= pg.NumItems(); i++ {
			item, err := pg.Item(i)
			if err != nil {
				buf.Release()
				return err
			}
			raw = append(raw, item...)
		}
		blk = pase.NextBlk(pg)
		buf.Release()
	}
	if len(raw) != want {
		return fmt.Errorf("pase/ivfsq8: stats chain holds %d bytes, want %d", len(raw), want)
	}
	mins := make([]float32, d)
	steps := make([]float32, d)
	copy(mins, pase.Float32View(raw[:4*d]))
	copy(steps, pase.Float32View(raw[4*d:]))
	ix.sq = &vec.SQ8{Min: mins, Step: steps}
	return nil
}

// writeCentroids lays out the centroid pages (ivfflat layout) and
// returns the first centroid block.
func (ix *Index) writeCentroids(centroids []float32, nlist, perPage, entrySize int) (uint32, error) {
	ctx := ix.ctx
	d := ctx.Dim
	entry := make([]byte, entrySize)
	written := 0
	first := pase.InvalidBlk
	for written < nlist {
		buf, blk, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			return 0, err
		}
		if first == pase.InvalidBlk {
			first = blk
		}
		page.Init(buf.Page(), 0)
		for i := 0; i < perPage && written < nlist; i++ {
			pase.PutFloat32s(entry, centroids[written*d:(written+1)*d])
			trailer := entry[d*4:]
			binary.LittleEndian.PutUint32(trailer[0:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[4:], pase.InvalidBlk)
			binary.LittleEndian.PutUint32(trailer[8:], 0)
			binary.LittleEndian.PutUint32(trailer[12:], 0)
			if _, err := buf.Page().AddItem(entry); err != nil {
				buf.Release()
				return 0, err
			}
			written++
		}
		buf.MarkDirty()
		buf.Release()
	}
	return first, nil
}

// loadCentroidCache reads every centroid vector into memory once.
func (ix *Index) loadCentroidCache() error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	nlist := int(ix.meta.NList)
	cache := make([]float32, 0, nlist*d)
	read := 0
	blk := ix.meta.FirstCentroidBlk
	for read < nlist {
		buf, err := ctx.Pool.Pin(ctx.Rel, blk)
		if err != nil {
			return err
		}
		pg := buf.Page()
		n := int(pg.NumItems())
		for i := 1; i <= n && read < nlist; i++ {
			item, err := pg.Item(uint16(i))
			if err != nil {
				buf.Release()
				return err
			}
			cache = append(cache, pase.Float32View(item[:d*4])...)
			read++
		}
		buf.Release()
		blk++
	}
	ix.centroidCache = cache
	return nil
}

// centroidLoc maps a centroid ID to its page slot.
func (ix *Index) centroidLoc(cid int) (uint32, uint16) {
	per := int(ix.meta.CentroidsPerPage)
	return ix.meta.FirstCentroidBlk + uint32(cid/per), uint16(cid%per) + 1
}

// refKern pins bucket assignment to the reference kernel: Insert and
// Delete must re-derive the same bucket for a vector regardless of the
// session's SET distance_kernel. Assignment runs on the full-precision
// vector — the same input Build assigned from — never on the code.
var refKern = vec.Ref()

// nearestCentroid runs the scalar argmin over all centroids.
func (ix *Index) nearestCentroid(x []float32) int {
	d := int(ix.meta.Dim)
	best, bestD := 0, refKern.L2Sqr(x, ix.centroidCache[:d])
	for c := 1; c < int(ix.meta.NList); c++ {
		if dd := refKern.L2Sqr(x, ix.centroidCache[c*d:(c+1)*d]); dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}

// appendEntry adds (code, tid) to bucket cid's data-page chain.
func (ix *Index) appendEntry(cid int, code []byte, tid heap.TID) error {
	ctx := ix.ctx
	d := int(ix.meta.Dim)
	blk, off := ix.centroidLoc(cid)

	cbuf, err := ctx.Pool.Pin(ctx.Rel, blk)
	if err != nil {
		return err
	}
	centry, err := cbuf.Page().Item(off)
	if err != nil {
		cbuf.Release()
		return err
	}
	trailer := centry[d*4:]
	lastBlk := binary.LittleEndian.Uint32(trailer[4:])

	entry := make([]byte, dataEntryCodeOff+d)
	tid.Pack(entry)
	binary.LittleEndian.PutUint32(entry[dataEntryHeaderSize:], math.Float32bits(ix.sq.CodeNorm(code)))
	copy(entry[dataEntryCodeOff:], code)

	if lastBlk != pase.InvalidBlk {
		dbuf, err := ctx.Pool.Pin(ctx.Rel, lastBlk)
		if err != nil {
			cbuf.Release()
			return err
		}
		if _, err := dbuf.Page().AddItem(entry); err == nil {
			dbuf.MarkDirty()
			dbuf.Release()
			ix.bumpCount(cbuf, trailer)
			cbuf.Release()
			return nil
		} else if !errors.Is(err, page.ErrPageFull) {
			dbuf.Release()
			cbuf.Release()
			return err
		}
		nbuf, nblk, err := ctx.Pool.NewPage(ctx.Rel)
		if err != nil {
			dbuf.Release()
			cbuf.Release()
			return err
		}
		page.Init(nbuf.Page(), pase.ChainSpecialSize)
		pase.SetNextBlk(nbuf.Page(), pase.InvalidBlk)
		if _, err := nbuf.Page().AddItem(entry); err != nil {
			nbuf.Release()
			dbuf.Release()
			cbuf.Release()
			return err
		}
		nbuf.MarkDirty()
		nbuf.Release()
		pase.SetNextBlk(dbuf.Page(), nblk)
		dbuf.MarkDirty()
		dbuf.Release()
		binary.LittleEndian.PutUint32(trailer[4:], nblk)
		ix.bumpCount(cbuf, trailer)
		cbuf.Release()
		return nil
	}

	nbuf, nblk, err := ctx.Pool.NewPage(ctx.Rel)
	if err != nil {
		cbuf.Release()
		return err
	}
	page.Init(nbuf.Page(), pase.ChainSpecialSize)
	pase.SetNextBlk(nbuf.Page(), pase.InvalidBlk)
	if _, err := nbuf.Page().AddItem(entry); err != nil {
		nbuf.Release()
		cbuf.Release()
		return err
	}
	nbuf.MarkDirty()
	nbuf.Release()
	binary.LittleEndian.PutUint32(trailer[0:], nblk)
	binary.LittleEndian.PutUint32(trailer[4:], nblk)
	ix.bumpCount(cbuf, trailer)
	cbuf.Release()
	return nil
}

// bumpCount increments the bucket population stored in the centroid entry.
func (ix *Index) bumpCount(cbuf *buffer.Buf, trailer []byte) {
	binary.LittleEndian.PutUint32(trailer[8:], binary.LittleEndian.Uint32(trailer[8:])+1)
	cbuf.MarkDirty()
}

// Insert implements am.Index: the vector is encoded on the trained grid
// (the grid is never retrained — out-of-range values clamp to the edge
// cells, the standard SQ8 behaviour for drifting data).
func (ix *Index) Insert(v []float32, tid heap.TID) error {
	if len(v) != int(ix.meta.Dim) {
		return fmt.Errorf("pase/ivfsq8: inserting %d-dim vector into %d-dim index", len(v), ix.meta.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cid := ix.nearestCentroid(v)
	code := make([]byte, ix.meta.Dim)
	ix.sq.Encode(v, code)
	if err := ix.appendEntry(cid, code, tid); err != nil {
		return err
	}
	ix.stats.NAdded++
	return nil
}

// SizeBytes reports the index relation's page footprint.
func (ix *Index) SizeBytes() (int64, error) {
	nblocks, err := ix.ctx.Pool.NumBlocks(ix.ctx.Rel)
	if err != nil {
		return 0, err
	}
	return int64(nblocks) * int64(ix.ctx.Pool.PageSize()), nil
}
