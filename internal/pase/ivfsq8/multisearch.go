package ivfsq8

import (
	"errors"
	"fmt"
	"sort"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pase"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/vec"
)

// MultiSearch implements am.BatchIndex: the batch shares one centroid
// scoring pass (kernel L2SqrNT, bit-equal pair by pair to solo probe
// selection) and one walk over the union of probed bucket chains, so
// page pins amortize across queries. Inside the shared walk each
// subscriber takes the same scoring path its solo call would:
// unpredicated queries score each page with the decomposed form
// (DotSQ8Batch on the identical code views, w and ‖u‖² from the
// identical DecomposeQuery transform, reassembled with the identical
// expression), predicated queries score survivors per item with the
// direct solo form. Every per-(query, code) distance is therefore
// bit-equal to the solo scan's.
//
// Results are byte-identical to per-query SearchFiltered calls: every
// heap in the SQ8 pipeline (quantized TopK(k·β), final TopK(k)) uses
// the (Dist, ID) total order, so only the candidate multiset matters,
// and the shared walk feeds each query exactly the multiset its solo
// scan would have seen.
func (ix *Index) MultiSearch(queries [][]float32, ks []int, params map[string]string, preds []am.Predicate) ([][]am.Result, error) {
	B := len(queries)
	if len(ks) != B || (preds != nil && len(preds) != B) {
		return nil, errors.New("pase/ivfsq8: MultiSearch argument lengths differ")
	}
	if B == 0 {
		return nil, nil
	}
	pred := func(i int) am.Predicate {
		if preds == nil {
			return nil
		}
		return preds[i]
	}
	for i := range queries {
		if len(queries[i]) != int(ix.meta.Dim) {
			return nil, fmt.Errorf("pase/ivfsq8: query dimension %d != %d", len(queries[i]), ix.meta.Dim)
		}
		if ks[i] <= 0 {
			return nil, errors.New("pase/ivfsq8: k must be positive")
		}
	}
	nprobe, err := pase.OptInt(params, "nprobe", 20)
	if err != nil {
		return nil, err
	}
	beta, err := pase.OptInt(params, "sq8_rerank", 4)
	if err != nil {
		return nil, err
	}
	if beta < 1 {
		beta = 1
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > int(ix.meta.NList) {
		nprobe = int(ix.meta.NList)
	}
	kern, err := pase.KernelOpt(params)
	if err != nil {
		return nil, err
	}

	probes := ix.multiSelectProbes(kern, queries, nprobe)

	// Invert probe lists into per-bucket subscriber lists and walk the
	// bucket union once, in ascending bucket order.
	subs := make(map[int32][]int)
	for qi, ps := range probes {
		for _, cid := range ps {
			subs[cid] = append(subs[cid], qi)
		}
	}
	order := make([]int32, 0, len(subs))
	for cid := range subs {
		order = append(order, cid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	approx := make([]*minheap.TopK, B)
	for i := range approx {
		approx[i] = minheap.NewTopK(ks[i] * beta)
	}

	// Query-side decomposition for the unpredicated subscribers: the
	// same sequential transform the solo plain scan applies, so each
	// query's w and ‖u‖² are bit-identical to its solo values.
	ws := make([][]float32, B)
	unorms := make([]float32, B)
	for i, q := range queries {
		ws[i] = make([]float32, len(q))
		unorms[i] = ix.sq.DecomposeQuery(q, ws[i])
	}

	tDist := ix.ctx.Prof.Timer("fvec_L2sqr")
	sc := &pageScanScratch{}
	for _, cid := range order {
		ss := subs[cid]
		err := ix.scanBucketPages(cid, sc, func(tids []heap.TID, codes [][]byte, norms []float32) error {
			if cap(sc.dists) < len(codes) {
				sc.dists = make([]float32, len(codes))
			}
			dists := sc.dists[:len(codes)]
			for _, qi := range ss {
				p := pred(qi)
				if p == nil {
					ts := tDist.Start()
					kern.DotSQ8Batch(ws[qi], codes, dists)
					for i := range dists {
						dists[i] = unorms[qi] - 2*dists[i] + norms[i]
					}
					tDist.Stop(ts)
					for i, tid := range tids {
						approx[qi].Push(packTID(tid), dists[i])
					}
					continue
				}
				for i, tid := range tids {
					ok, err := p(tid)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					ts := tDist.Start()
					dist := kern.L2SqrSQ8(queries[qi], codes[i], ix.sq)
					tDist.Stop(ts)
					approx[qi].Push(packTID(tid), dist)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	out := make([][]am.Result, B)
	for i := range queries {
		hits, err := ix.rerank(kern, queries[i], ks[i], approx[i].Results())
		if err != nil {
			return nil, err
		}
		out[i] = hits
	}
	return out, nil
}

// multiSelectProbes ranks all centroids against the whole batch with
// one batched scoring call and returns each query's nprobe nearest
// bucket IDs — the same lists selectProbes produces, since the kernel's
// L2SqrNT matches its solo L2Sqr bitwise per pair and the TopK push
// order (c ascending) is shared.
func (ix *Index) multiSelectProbes(kern vec.Kernel, queries [][]float32, nprobe int) [][]int32 {
	d := int(ix.meta.Dim)
	nlist := int(ix.meta.NList)
	B := len(queries)
	flat := make([]float32, B*d)
	for i, q := range queries {
		copy(flat[i*d:(i+1)*d], q)
	}
	dists := make([]float32, B*nlist)
	vec.NTParallel(kern, flat, B, d, ix.centroidCache[:nlist*d], nlist, dists, 0)
	out := make([][]int32, B)
	for i := range queries {
		h := minheap.NewTopK(nprobe)
		for c := 0; c < nlist; c++ {
			h.Push(int64(c), dists[i*nlist+c])
		}
		items := h.Results()
		ps := make([]int32, len(items))
		for j, it := range items {
			ps[j] = int32(it.ID)
		}
		out[i] = ps
	}
	return out
}
