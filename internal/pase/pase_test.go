package pase

import (
	"testing"

	"vecstudy/internal/pg/page"
)

func TestFloat32ViewAligned(t *testing.T) {
	// A MAXALIGNed page item yields an aliasing view.
	p := make(page.Page, 1024)
	page.Init(p, 0)
	buf := make([]byte, 16)
	PutFloat32s(buf, []float32{1.5, -2.25, 3, 4})
	off, err := p.AddItem(buf)
	if err != nil {
		t.Fatal(err)
	}
	item, err := p.Item(off)
	if err != nil {
		t.Fatal(err)
	}
	view := Float32View(item)
	if len(view) != 4 || view[0] != 1.5 || view[1] != -2.25 {
		t.Fatalf("view = %v", view)
	}
	// Aliasing: mutating the view mutates the page.
	view[2] = 42
	again := Float32View(item)
	if again[2] != 42 {
		t.Error("aligned view did not alias page memory")
	}
}

func TestFloat32ViewMisalignedFallsBack(t *testing.T) {
	raw := make([]byte, 20)
	PutFloat32s(raw[1:17], []float32{7, 8, 9, 10})
	view := Float32View(raw[1:17]) // deliberately misaligned
	if len(view) != 4 || view[0] != 7 || view[3] != 10 {
		t.Fatalf("fallback view = %v", view)
	}
}

func TestFloat32ViewEmpty(t *testing.T) {
	if v := Float32View(nil); v != nil {
		t.Errorf("nil input: %v", v)
	}
}

func TestChainPointers(t *testing.T) {
	p := make(page.Page, 1024)
	page.Init(p, ChainSpecialSize)
	SetNextBlk(p, 12345)
	if NextBlk(p) != 12345 {
		t.Errorf("NextBlk = %d", NextBlk(p))
	}
	SetNextBlk(p, InvalidBlk)
	if NextBlk(p) != InvalidBlk {
		t.Error("InvalidBlk round trip failed")
	}
}

func TestOptParsers(t *testing.T) {
	opts := map[string]string{"a": "7", "f": "0.25", "b": "true", "bad": "x"}
	if v, err := OptInt(opts, "a", 1); err != nil || v != 7 {
		t.Errorf("OptInt: %d, %v", v, err)
	}
	if v, err := OptInt(opts, "missing", 9); err != nil || v != 9 {
		t.Errorf("OptInt default: %d, %v", v, err)
	}
	if _, err := OptInt(opts, "bad", 0); err == nil {
		t.Error("OptInt accepted garbage")
	}
	if v, err := OptFloat(opts, "f", 1); err != nil || v != 0.25 {
		t.Errorf("OptFloat: %v, %v", v, err)
	}
	if _, err := OptFloat(opts, "bad", 0); err == nil {
		t.Error("OptFloat accepted garbage")
	}
	if v, err := OptBool(opts, "b", false); err != nil || !v {
		t.Errorf("OptBool: %v, %v", v, err)
	}
	if v, err := OptBool(opts, "missing", true); err != nil || !v {
		t.Errorf("OptBool default: %v, %v", v, err)
	}
	if _, err := OptBool(opts, "bad", false); err == nil {
		t.Error("OptBool accepted garbage")
	}
	if v, err := OptInt(nil, "anything", 3); err != nil || v != 3 {
		t.Errorf("nil opts: %d, %v", v, err)
	}
}
