package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"

	_ "vecstudy/internal/pase/all"
)

func init() {
	register(Experiment{
		ID:    "churn",
		Title: "Dynamic data: recall and QPS through delete/update churn, tombstones, and VACUUM",
		Paper: "index-heap consistency under churn is a relational obligation vector libraries skip; tombstone + vacuum keeps recall near a fresh rebuild",
		Run:   runChurn,
	})
}

// churn fractions: 20% of rows deleted + 10% updated = 30% churned.
const (
	churnDelFrac = 0.2
	churnUpdFrac = 0.1
)

// churnAMs are the access methods swept; HNSW exercises graph repair,
// IVF_FLAT exercises list compaction.
var churnAMs = []string{"ivfflat", "hnsw"}

// runChurn loads one dataset through the SQL layer, then for each AM
// measures kNN recall and QPS at four phases: fresh, after churn
// (tombstoned entries still in the index), after VACUUM (heap
// compaction + index repair), and against a from-scratch rebuild on the
// surviving rows. The last two rows' recall delta is the cost of
// repairing in place instead of rebuilding.
func runChurn(cfg *Config) error {
	name := cfg.Datasets[0]
	const k = 10
	ds, err := cfg.Dataset(name, k)
	if err != nil {
		return err
	}
	n := ds.N()

	// The churn plan is deterministic: delete/update targets and update
	// noise come from a fixed-seed generator so runs are comparable.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	nDel := int(churnDelFrac * float64(n))
	nUpd := int(churnUpdFrac * float64(n))
	delIDs := perm[:nDel]
	updIDs := perm[nDel : nDel+nUpd]
	live := make(map[int]bool, n)
	cur := make([][]float32, n) // current vector per id (post-update)
	for i := 0; i < n; i++ {
		live[i] = true
		cur[i] = ds.Base.Row(i)
	}
	updated := make([][]float32, len(updIDs))
	for i, id := range updIDs {
		v := append([]float32(nil), ds.Base.Row(id)...)
		for j := range v {
			v[j] += (rng.Float32() - 0.5) * 0.1
		}
		updated[i] = v
	}

	groundTruth := func(q int) map[int32]bool {
		type cand struct {
			id   int32
			dist float32
		}
		var cands []cand
		qv := ds.Queries.Row(q)
		for i := 0; i < n; i++ {
			if live[i] {
				cands = append(cands, cand{int32(i), benchRefKern.L2Sqr(qv, cur[i])})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		if len(cands) > k {
			cands = cands[:k]
		}
		gt := make(map[int32]bool, len(cands))
		for _, c := range cands {
			gt[c.id] = true
		}
		return gt
	}

	var b strings.Builder
	vecLit := func(v []float32) string {
		b.Reset()
		b.WriteByte('{')
		for j, x := range v {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		}
		b.WriteByte('}')
		return b.String()
	}
	load := func(sess *sql.Session, table string, ids []int) error {
		if _, err := sess.Execute(fmt.Sprintf("CREATE TABLE %s (id int, vec float[])", table)); err != nil {
			return err
		}
		var sb strings.Builder
		for lo := 0; lo < len(ids); lo += 200 {
			hi := lo + 200
			if hi > len(ids) {
				hi = len(ids)
			}
			sb.Reset()
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, '%s')", ids[i], vecLit(cur[ids[i]]))
			}
			if _, err := sess.Execute(sb.String()); err != nil {
				return err
			}
		}
		return nil
	}
	measure := func(sess *sql.Session, table string, gts []map[int32]bool) (time.Duration, float64, error) {
		var hit, want int
		start := time.Now()
		for q := 0; q < ds.NQ(); q++ {
			text := fmt.Sprintf("SELECT id FROM %s ORDER BY vec <-> '%s' LIMIT %d",
				table, vecLit(ds.Queries.Row(q)), k)
			res, err := sess.Execute(text)
			if err != nil {
				return 0, 0, err
			}
			want += len(gts[q])
			for _, row := range res.Rows {
				if gts[q][row[0].(int32)] {
					hit++
				}
			}
		}
		elapsed := time.Since(start)
		recall := 0.0
		if want > 0 {
			recall = float64(hit) / float64(want)
		}
		return elapsed, recall, nil
	}

	clusters := ds.NumClusters()
	indexOpts := func(am string) string {
		if am == "hnsw" {
			return "WITH (bnn = 16, efb = 40, seed = 1)"
		}
		return fmt.Sprintf("WITH (clusters = %d, sample_ratio = 1, seed = 1)", clusters)
	}
	cfg.printf("dataset=%s n=%d del=%d upd=%d k=%d clusters=%d\n", name, n, nDel, nUpd, k, clusters)
	cfg.printf("am        phase           avg_query   qps       recall@k\n")

	for _, am := range churnAMs {
		d, err := db.Open(db.Config{})
		if err != nil {
			return err
		}
		sess := sql.NewSession(d)

		// Reset the churn bookkeeping for this AM's pass.
		for i := 0; i < n; i++ {
			live[i] = true
			cur[i] = ds.Base.Row(i)
		}
		allIDs := make([]int, n)
		for i := range allIDs {
			allIDs[i] = i
		}
		if err := load(sess, "t", allIDs); err != nil {
			d.Close()
			return err
		}
		if _, err := sess.Execute(fmt.Sprintf("CREATE INDEX t_idx ON t USING %s (vec) %s", am, indexOpts(am))); err != nil {
			d.Close()
			return err
		}
		if am == "ivfflat" {
			if err := sess.Set("nprobe", strconv.Itoa((clusters+1)/2)); err != nil {
				d.Close()
				return err
			}
		}

		report := func(phase string) error {
			gts := make([]map[int32]bool, ds.NQ())
			for q := range gts {
				gts[q] = groundTruth(q)
			}
			elapsed, recall, err := measure(sess, "t", gts)
			if err != nil {
				return err
			}
			avg := elapsed / time.Duration(ds.NQ())
			cfg.printf("%-9s %-15s %-11v %-9.1f %.3f\n",
				am, phase, avg.Round(time.Microsecond), float64(ds.NQ())/secs(elapsed), recall)
			return nil
		}
		if err := report("fresh"); err != nil {
			d.Close()
			return err
		}

		// Churn: interleave deletes and updates through the SQL layer.
		for i, id := range delIDs {
			if _, err := sess.Execute(fmt.Sprintf("DELETE FROM t WHERE id = %d", id)); err != nil {
				d.Close()
				return err
			}
			live[id] = false
			if i%2 == 0 && i/2 < len(updIDs) {
				uid := updIDs[i/2]
				if _, err := sess.Execute(fmt.Sprintf("UPDATE t SET vec = '%s' WHERE id = %d", vecLit(updated[i/2]), uid)); err != nil {
					d.Close()
					return err
				}
				cur[uid] = updated[i/2]
			}
		}
		for i := (len(delIDs) + 1) / 2; i < len(updIDs); i++ {
			if _, err := sess.Execute(fmt.Sprintf("UPDATE t SET vec = '%s' WHERE id = %d", vecLit(updated[i]), updIDs[i])); err != nil {
				d.Close()
				return err
			}
			cur[updIDs[i]] = updated[i]
		}
		if err := report("churned"); err != nil {
			d.Close()
			return err
		}

		if _, err := sess.Execute("VACUUM t"); err != nil {
			d.Close()
			return err
		}
		var vacRecall float64
		{
			gts := make([]map[int32]bool, ds.NQ())
			for q := range gts {
				gts[q] = groundTruth(q)
			}
			elapsed, recall, err := measure(sess, "t", gts)
			if err != nil {
				d.Close()
				return err
			}
			vacRecall = recall
			avg := elapsed / time.Duration(ds.NQ())
			cfg.printf("%-9s %-15s %-11v %-9.1f %.3f\n",
				am, "vacuumed", avg.Round(time.Microsecond), float64(ds.NQ())/secs(elapsed), recall)
		}

		// Fresh rebuild on the surviving rows, same options: the recall
		// parity target for in-place repair.
		var liveIDs []int
		for i := 0; i < n; i++ {
			if live[i] {
				liveIDs = append(liveIDs, i)
			}
		}
		if err := load(sess, "t2", liveIDs); err != nil {
			d.Close()
			return err
		}
		if _, err := sess.Execute(fmt.Sprintf("CREATE INDEX t2_idx ON t2 USING %s (vec) %s", am, indexOpts(am))); err != nil {
			d.Close()
			return err
		}
		{
			gts := make([]map[int32]bool, ds.NQ())
			for q := range gts {
				gts[q] = groundTruth(q)
			}
			elapsed, recall, err := measure(sess, "t2", gts)
			if err != nil {
				d.Close()
				return err
			}
			avg := elapsed / time.Duration(ds.NQ())
			cfg.printf("%-9s %-15s %-11v %-9.1f %.3f   (vacuum-rebuild delta %+.4f)\n",
				am, "rebuilt", avg.Round(time.Microsecond), float64(ds.NQ())/secs(elapsed), recall, vacRecall-recall)
		}
		d.Close()
	}
	return nil
}
