package bench

import (
	"runtime"
	"sort"
	"time"

	"vecstudy/internal/core"
)

func init() {
	register(Experiment{
		ID:    "qps",
		Title: "Concurrent top-k serving: QPS and tail latency vs clients, partitioned vs single-lock buffer pool",
		Paper: "beyond the paper: its workloads are single-query; this measures the inter-query scaling PostgreSQL buys with 128 buffer-mapping partitions",
		Run:   runQPS,
	})
}

// runQPS builds one shared generalized IVF_FLAT index and serves it from
// N client goroutines, repartitioning the buffer pool between sweeps:
// partitions=1 is the paper-faithful global lock that every tuple access
// funnels through (RC#2/RC#3); partitions=16 is the PostgreSQL-style
// buffer-mapping split. Intra-query threading stays at 1 — all
// parallelism here is inter-query.
func runQPS(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	p := core.Defaults(ds)
	p.K = 10
	p.BufferPartitions = 1
	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	defer gen.Close()

	perClient := cfg.Queries
	if perClient <= 0 {
		perClient = 100
	}
	// Sweep client counts ascending regardless of the -clients order the
	// user typed, so speedup_x is always normalized to the smallest
	// client count (the closest thing to a single-client baseline).
	clientCounts := append([]int(nil), cfg.Clients...)
	sort.Ints(clientCounts)
	cfg.printf("dataset=%s index=ivf_flat nprobe=%d k=%d queries_per_client=%d gomaxprocs=%d\n",
		ds.Name, p.NProbe, p.K, perClient, runtime.GOMAXPROCS(0))
	cfg.printf("partitions  clients  qps        p50        p99        lock_waits  speedup_x\n")
	pool := gen.DB().Pool()
	for _, parts := range []int{1, 16} {
		if err := gen.DB().SetBufferPartitions(parts); err != nil {
			return err
		}
		var base float64
		for _, clients := range clientCounts {
			if err := core.WarmUp(gen, ds, p.K, 4); err != nil {
				return err
			}
			waits0 := pool.Stats().LockWaits
			res, err := core.RunSearchConcurrent(gen, ds, p.K, clients, perClient)
			if err != nil {
				return err
			}
			waits := pool.Stats().LockWaits - waits0
			if clients == clientCounts[0] {
				base = res.QPS
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.QPS / base
			}
			cfg.printf("%-11d %-8d %-10.1f %-10v %-10v %-11d %.2f\n",
				parts, clients, res.QPS,
				res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond), waits, speedup)
		}
	}
	cfg.printf("# partitions=1 reproduces the paper's single-lock pool every tuple access funnels through.\n")
	cfg.printf("# lock_waits = contended buffer-pool lock acquisitions: the contention partitioning removes.\n")
	if runtime.GOMAXPROCS(0) == 1 {
		cfg.printf("# gomaxprocs=1: QPS cannot scale with clients on one core; lock_waits still shows the single-lock convoy.\n")
	}
	return nil
}
