package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "sq8",
		Title: "SQ8 quantized search vs full-precision ivfflat at equal probes (recall / QPS / index size)",
		Paper: "quantized scan + full-precision re-rank sets the throughput ceiling, not engine architecture (PAPERS.md GPU study)",
		Run:   runSQ8,
	})
}

// runSQ8 builds ivfflat and ivfsq8 over the same rows through the SQL
// layer and runs the identical kNN workload at equal nprobe, sweeping
// the re-rank multiplier beta in {1, 2, 4}. Reported per AM: build
// time, on-disk index size, average query latency, QPS, recall@k, and
// the QPS ratio against the ivfflat baseline.
func runSQ8(cfg *Config) error {
	const k = 10
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, k)
		if err != nil {
			return err
		}
		n := ds.N()
		clusters := ds.NumClusters()
		// nprobe = clusters/4 puts both AMs at a scan-dominated operating
		// point (recall ≈ 1 for both on the clustered synthetic data):
		// the comparison then measures per-candidate scoring cost, which
		// is what quantization changes, rather than the fixed per-query
		// overheads both AMs share.
		nprobe := clusters / 4
		if nprobe < 1 {
			nprobe = 1
		}
		// Both AMs score with the same (fastest registered) kernel so the
		// comparison isolates the quantization, not the instruction set:
		// avx2 when the host has it, else the default.
		kernel := vec.Default().Name()
		for _, kn := range vec.RegisteredKernelNames() {
			if kn == "avx2" {
				kernel = kn
			}
		}
		cfg.printf("dataset=%s n=%d d=%d clusters=%d nprobe=%d k=%d kernel=%s\n",
			name, n, ds.Base.D, clusters, nprobe, k, kernel)
		cfg.printf("am        beta  build_s  size_MB  avg_query   qps       recall@k  qps_vs_flat\n")

		var vb strings.Builder
		vecLit := func(v []float32) string {
			vb.Reset()
			vb.WriteByte('{')
			for j, x := range v {
				if j > 0 {
					vb.WriteByte(',')
				}
				vb.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
			}
			vb.WriteByte('}')
			return vb.String()
		}

		type variant struct {
			am   string
			beta int // 0 ⇒ knob not applicable
		}
		variants := []variant{{"ivfflat", 0}, {"ivfsq8", 1}, {"ivfsq8", 2}, {"ivfsq8", 4}}
		var flatQPS float64
		for _, v := range variants {
			d, err := db.Open(db.Config{})
			if err != nil {
				return err
			}
			sess := sql.NewSession(d)
			if _, err := sess.Execute("CREATE TABLE t (id int, vec float[])"); err != nil {
				d.Close()
				return err
			}
			var sb strings.Builder
			for lo := 0; lo < n; lo += 200 {
				hi := lo + 200
				if hi > n {
					hi = n
				}
				sb.Reset()
				sb.WriteString("INSERT INTO t VALUES ")
				for i := lo; i < hi; i++ {
					if i > lo {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "(%d, '%s')", i, vecLit(ds.Base.Row(i)))
				}
				if _, err := sess.Execute(sb.String()); err != nil {
					d.Close()
					return err
				}
			}

			buildStart := time.Now()
			if _, err := sess.Execute(fmt.Sprintf(
				"CREATE INDEX sq8_idx ON t USING %s (vec) WITH (clusters = %d, sample_ratio = 1, seed = 1)",
				v.am, clusters)); err != nil {
				d.Close()
				return err
			}
			buildTime := time.Since(buildStart)
			var sizeBytes int64
			if ix := d.IndexOn("t", "vec"); ix != nil {
				if sz, err := ix.SizeBytes(); err == nil {
					sizeBytes = sz
				}
			}
			if _, err := sess.Execute(fmt.Sprintf("SET nprobe = %d", nprobe)); err != nil {
				d.Close()
				return err
			}
			if _, err := sess.Execute(fmt.Sprintf("SET distance_kernel = %s", kernel)); err != nil {
				d.Close()
				return err
			}
			if v.beta > 0 {
				if _, err := sess.Execute(fmt.Sprintf("SET sq8_rerank = %d", v.beta)); err != nil {
					d.Close()
					return err
				}
			}

			// Query strings are materialized before the clock starts:
			// formatting a d-dimensional float literal costs more than a
			// probe at small scale, and it is harness cost, not engine cost.
			queries := make([]string, ds.NQ())
			for q := range queries {
				queries[q] = fmt.Sprintf(
					"SELECT id FROM t ORDER BY vec <-> '%s' LIMIT %d", vecLit(ds.Queries.Row(q)), k)
			}

			var hit, want int
			start := time.Now()
			for q := 0; q < ds.NQ(); q++ {
				res, err := sess.Execute(queries[q])
				if err != nil {
					d.Close()
					return err
				}
				truth := map[int32]bool{}
				for _, id := range ds.GroundTruth[q][:k] {
					truth[id] = true
				}
				want += k
				for _, row := range res.Rows {
					if truth[row[0].(int32)] {
						hit++
					}
				}
			}
			elapsed := time.Since(start)
			d.Close()

			qps := float64(ds.NQ()) / secs(elapsed)
			recall := float64(hit) / float64(want)
			label := v.am
			betaCol := "-"
			if v.beta > 0 {
				betaCol = strconv.Itoa(v.beta)
			}
			ratioCol := ""
			if v.am == "ivfflat" {
				flatQPS = qps
			} else if flatQPS > 0 {
				ratioCol = fmt.Sprintf("%.2f", qps/flatQPS)
			}
			cfg.printf("%-9s %-5s %-8.2f %-8.2f %-11v %-9.1f %-9.3f %s\n",
				label, betaCol, secs(buildTime), mb(sizeBytes),
				(elapsed / time.Duration(ds.NQ())).Round(time.Microsecond), qps, recall, ratioCol)
		}
	}
	return nil
}
