package bench

import (
	"time"

	"vecstudy/internal/core"
	"vecstudy/internal/prof"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "IVF_FLAT index construction time, both engines (train/add split)",
		Paper: "PASE is 35.0×–84.8× slower than Faiss; the adding phase dominates (w/ MKL SGEMM; pure-Go SGEMM compresses the magnitude, direction preserved)",
		Run:   func(cfg *Config) error { return runBuild(cfg, core.IVFFlat, true) },
	})
	register(Experiment{
		ID:    "fig4",
		Title: "IVF_FLAT construction with SGEMM disabled in the specialized engine",
		Paper: "without SGEMM the adding phases converge; residual train gap is the K-means implementation (RC#5)",
		Run:   func(cfg *Config) error { return runBuild(cfg, core.IVFFlat, false) },
	})
	register(Experiment{
		ID:    "fig5",
		Title: "IVF_PQ index construction time, both engines",
		Paper: "Faiss outperforms PASE by 6.5×–20.2× (same RC#1 mechanism as Fig 3)",
		Run:   func(cfg *Config) error { return runBuild(cfg, core.IVFPQ, true) },
	})
	register(Experiment{
		ID:    "fig6",
		Title: "IVF_PQ construction with SGEMM disabled",
		Paper: "gap becomes negligible once SGEMM is off",
		Run:   func(cfg *Config) error { return runBuild(cfg, core.IVFPQ, false) },
	})
	register(Experiment{
		ID:    "fig7",
		Title: "HNSW index construction time, both engines",
		Paper: "PASE 1.6×–8.7× slower; cause is buffer-manager tuple access (RC#2), not SGEMM",
		Run:   func(cfg *Config) error { return runBuild(cfg, core.HNSW, true) },
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Time breakdown of HNSW building (SearchNbToAdd/AddLink/GreedyUpdate/ShrinkNbList)",
		Paper: "SearchNbToAdd dominates both engines (75.6% PASE, 70.4% Faiss); PASE's is 3.4× slower in absolute time",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Breakdown inside SearchNbToAdd during HNSW build",
		Paper: "Faiss spends 80.6% on distance calc; PASE only 22% — 46% goes to tuple access, 14% to HVTGet, 7.7% to pasepfirst",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Specialized-engine parallel build: threads × {IVF_FLAT, IVF_PQ} × {SGEMM on, off}",
		Paper: "all configurations scale with threads except IVF_FLAT with SGEMM (its adding phase is already small)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Build-time gap vs parameters: c for IVF kinds, bnn for HNSW",
		Paper: "the PASE/Faiss gap widens as c and bnn grow",
		Run:   runFig10,
	})
}

// runBuild is the Fig 3–7 driver: build one index kind in both engines on
// every dataset and print the train/add/total split plus the gap.
func runBuild(cfg *Config, kind core.IndexKind, useGemm bool) error {
	cfg.printf("dataset       engine       train_s   add_s     total_s   gap_x\n")
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		p := core.Defaults(ds)
		p.UseGemm = useGemm
		spec, sb, err := core.BuildSpecialized(kind, ds, p)
		if err != nil {
			return err
		}
		spec.Close()
		gen, gb, err := core.BuildGeneralized(kind, ds, p)
		if err != nil {
			return err
		}
		gen.Close()
		cfg.printf("%-13s %-12s %-9.3f %-9.3f %-9.3f\n", name, "specialized", secs(sb.TrainTime), secs(sb.AddTime), secs(sb.Total))
		cfg.printf("%-13s %-12s %-9.3f %-9.3f %-9.3f %.2f\n", name, "generalized", secs(gb.TrainTime), secs(gb.AddTime), secs(gb.Total), ratio(sb.Total, gb.Total))
	}
	return nil
}

// runTab3 rebuilds HNSW in both engines with phase profiling enabled.
func runTab3(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	phases := []string{"SearchNbToAdd", "AddLink", "GreedyUpdate", "ShrinkNbList"}
	for _, engine := range []core.Engine{core.Specialized, core.Generalized} {
		p := core.Defaults(ds)
		p.Prof = prof.New()
		var total time.Duration
		if engine == core.Specialized {
			ix, br, err := core.BuildSpecialized(core.HNSW, ds, p)
			if err != nil {
				return err
			}
			ix.Close()
			total = br.Total
		} else {
			ix, br, err := core.BuildGeneralized(core.HNSW, ds, p)
			if err != nil {
				return err
			}
			ix.Close()
			total = br.Total
		}
		cfg.printf("%s HNSW build on %s (total %v):\n", engine, ds.Name, total.Round(time.Millisecond))
		// The fine-grained timers nest inside the phase timers; exclude
		// them from the residual so "others" matches the paper's Table III.
		entries := p.Prof.Report(total, "fvec_L2sqr", "tuple_access", "HVTGet", "pasepfirst", "visited-check", "min-heap")
		for _, e := range entries {
			if contains(phases, e.Name) || e.Name == "others" {
				cfg.printf("  %-16s %6.2f%%  %v\n", e.Name, e.Percent, e.Total.Round(time.Millisecond))
			}
		}
	}
	return nil
}

// runFig8 reports the nested timers as shares of SearchNbToAdd.
func runFig8(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	type row struct {
		engine core.Engine
		parts  []string
	}
	rows := []row{
		{core.Specialized, []string{"fvec_L2sqr", "visited-check"}},
		{core.Generalized, []string{"fvec_L2sqr", "tuple_access", "HVTGet", "pasepfirst"}},
	}
	for _, r := range rows {
		p := core.Defaults(ds)
		p.Prof = prof.New()
		if r.engine == core.Specialized {
			ix, _, err := core.BuildSpecialized(core.HNSW, ds, p)
			if err != nil {
				return err
			}
			ix.Close()
		} else {
			ix, _, err := core.BuildGeneralized(core.HNSW, ds, p)
			if err != nil {
				return err
			}
			ix.Close()
		}
		searchNb := p.Prof.Timer("SearchNbToAdd").Total()
		cfg.printf("%s SearchNbToAdd on %s: %v total\n", r.engine, ds.Name, searchNb.Round(time.Millisecond))
		var accounted time.Duration
		for _, part := range r.parts {
			t := p.Prof.Timer(part).Total()
			accounted += t
			cfg.printf("  %-14s %6.2f%%  %v\n", part, 100*float64(t)/float64(searchNb), t.Round(time.Millisecond))
		}
		if rest := searchNb - accounted; rest > 0 {
			cfg.printf("  %-14s %6.2f%%  %v\n", "others", 100*float64(rest)/float64(searchNb), rest.Round(time.Millisecond))
		}
	}
	cfg.printf("# note: nested timers also accrue in other phases; shares are vs SearchNbToAdd as in the paper\n")
	return nil
}

// runFig9 sweeps build threads on the specialized engine.
func runFig9(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("kind      sgemm  threads  train_s   add_s     total_s   speedup_x\n")
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, gemm := range []bool{true, false} {
			var base time.Duration
			for _, threads := range []int{1, 2, 4, 8} {
				p := core.Defaults(ds)
				p.UseGemm = gemm
				p.BuildThreads = threads
				ix, br, err := core.BuildSpecialized(kind, ds, p)
				if err != nil {
					return err
				}
				ix.Close()
				if threads == 1 {
					base = br.Total
				}
				cfg.printf("%-9s %-6v %-8d %-9.3f %-9.3f %-9.3f %.2f\n",
					kind, gemm, threads, secs(br.TrainTime), secs(br.AddTime), secs(br.Total), ratio(br.Total, base))
			}
		}
	}
	return nil
}

// runFig10 sweeps c (IVF kinds) and bnn (HNSW) and reports the build gap.
func runFig10(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	base := core.Defaults(ds)
	// The paper fixes c ∈ {100, 500, 1000} on SIFT1M; scale-proportional
	// values keep the same c/√n ratios at laptop scale.
	cs := []int{base.C / 2, base.C, base.C * 2}
	cfg.printf("kind      param      spec_total_s  gen_total_s  gap_x\n")
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		for _, c := range cs {
			p := base
			p.C = c
			spec, sb, err := core.BuildSpecialized(kind, ds, p)
			if err != nil {
				return err
			}
			spec.Close()
			gen, gb, err := core.BuildGeneralized(kind, ds, p)
			if err != nil {
				return err
			}
			gen.Close()
			cfg.printf("%-9s c=%-8d %-13.3f %-12.3f %.2f\n", kind, c, secs(sb.Total), secs(gb.Total), ratio(sb.Total, gb.Total))
		}
	}
	for _, bnn := range []int{16, 32, 64} {
		p := base
		p.BNN = bnn
		spec, sb, err := core.BuildSpecialized(core.HNSW, ds, p)
		if err != nil {
			return err
		}
		spec.Close()
		gen, gb, err := core.BuildGeneralized(core.HNSW, ds, p)
		if err != nil {
			return err
		}
		gen.Close()
		cfg.printf("%-9s bnn=%-6d %-13.3f %-12.3f %.2f\n", core.HNSW, bnn, secs(sb.Total), secs(gb.Total), ratio(sb.Total, gb.Total))
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
