package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "kernels",
		Title: "End-to-end kNN throughput under each distance kernel (SET distance_kernel)",
		Paper: "Table V / RC#5: fvec_L2sqr dominates the scan, so the kernel's instruction mix sets the query ceiling",
		Run:   runKernels,
	})
}

// runKernels builds one ivfflat index and replays the identical kNN
// workload once per session kernel — ref (the PASE-style scalar
// baseline), unrolled (generic Go, the default), and avx2 where the
// host registers it. The only variable across rows is SET
// distance_kernel, so the speedup column is the end-to-end realization
// of the microbench ratios cmd/kernelgate gates: how much of the
// kernel-level win survives page pinning, heap pushes, and SQL
// dispatch. Unregistered known kernels (avx2 on a host without the ISA)
// are skipped rather than silently re-measuring the fallback.
func runKernels(cfg *Config) error {
	const k = 10
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, k)
		if err != nil {
			return err
		}
		n := ds.N()
		clusters := ds.NumClusters()
		// Same scan-dominated operating point as -exp sq8: the kernel
		// difference is per-candidate, so probe enough buckets that
		// candidate scoring dominates the fixed per-query costs.
		nprobe := clusters / 4
		if nprobe < 1 {
			nprobe = 1
		}
		cfg.printf("dataset=%s n=%d d=%d clusters=%d nprobe=%d k=%d am=ivfflat\n",
			name, n, ds.Base.D, clusters, nprobe, k)
		cfg.printf("kernel    avg_query   qps       recall@k  qps_vs_ref\n")

		var vb strings.Builder
		vecLit := func(v []float32) string {
			vb.Reset()
			vb.WriteByte('{')
			for j, x := range v {
				if j > 0 {
					vb.WriteByte(',')
				}
				vb.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
			}
			vb.WriteByte('}')
			return vb.String()
		}

		d, err := db.Open(db.Config{})
		if err != nil {
			return err
		}
		sess := sql.NewSession(d)
		if _, err := sess.Execute("CREATE TABLE t (id int, vec float[])"); err != nil {
			d.Close()
			return err
		}
		var sb strings.Builder
		for lo := 0; lo < n; lo += 200 {
			hi := lo + 200
			if hi > n {
				hi = n
			}
			sb.Reset()
			sb.WriteString("INSERT INTO t VALUES ")
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, '%s')", i, vecLit(ds.Base.Row(i)))
			}
			if _, err := sess.Execute(sb.String()); err != nil {
				d.Close()
				return err
			}
		}
		if _, err := sess.Execute(fmt.Sprintf(
			"CREATE INDEX kern_idx ON t USING ivfflat (vec) WITH (clusters = %d, sample_ratio = 1, seed = 1)",
			clusters)); err != nil {
			d.Close()
			return err
		}
		if _, err := sess.Execute(fmt.Sprintf("SET nprobe = %d", nprobe)); err != nil {
			d.Close()
			return err
		}

		queries := make([]string, ds.NQ())
		for q := range queries {
			queries[q] = fmt.Sprintf(
				"SELECT id FROM t ORDER BY vec <-> '%s' LIMIT %d", vecLit(ds.Queries.Row(q)), k)
		}

		// ref runs first so every later row has its baseline.
		kernelOrder := []string{"ref"}
		for _, kn := range vec.RegisteredKernelNames() {
			if kn != "ref" {
				kernelOrder = append(kernelOrder, kn)
			}
		}

		var refQPS float64
		for _, kernel := range kernelOrder {
			if _, err := sess.Execute(fmt.Sprintf("SET distance_kernel = %s", kernel)); err != nil {
				d.Close()
				return err
			}
			var hit, want int
			start := time.Now()
			for q := 0; q < ds.NQ(); q++ {
				res, err := sess.Execute(queries[q])
				if err != nil {
					d.Close()
					return err
				}
				truth := map[int32]bool{}
				for _, id := range ds.GroundTruth[q][:k] {
					truth[id] = true
				}
				want += k
				for _, row := range res.Rows {
					if truth[row[0].(int32)] {
						hit++
					}
				}
			}
			elapsed := time.Since(start)
			qps := float64(ds.NQ()) / secs(elapsed)
			ratioCol := ""
			if kernel == "ref" {
				refQPS = qps
			} else if refQPS > 0 {
				ratioCol = fmt.Sprintf("%.2f", qps/refQPS)
			}
			cfg.printf("%-9s %-11v %-9.1f %-9.3f %s\n",
				kernel, (elapsed / time.Duration(ds.NQ())).Round(time.Microsecond),
				qps, float64(hit)/float64(want), ratioCol)
		}
		d.Close()
	}
	return nil
}
