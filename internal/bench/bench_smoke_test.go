package bench

import (
	"strings"
	"testing"
)

// smokeConfig runs experiments on a tiny workload so the whole registry
// can be exercised in CI time.
func smokeConfig(buf *strings.Builder) *Config {
	return &Config{Scale: 0.002, Queries: 10, Seed: 7, Datasets: []string{"sift1m"}, Out: buf}
}

func TestRegistryCoversEveryFigureAndTable(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"tab3", "tab4", "tab5",
		"ablation_io", "ablation_heap", "ablation_pqtab", "ablation_kmeans", "ablation_layout",
		"qps", "qps_remote", "qps_cluster", "qps_batched",
		"filtered", "churn", "kernels", "sq8",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("experiment %s not registered: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, inventory lists %d", len(All()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

// TestExperimentsRunAtSmokeScale executes a representative subset of the
// drivers end to end. The heavy sweeps (fig9, fig18) and the full HNSW
// builds are covered by the quick variants here plus the root benchmarks;
// churn, kernels, and sq8 run as their own CI smoke steps (their extra
// index builds and per-statement loops under -race would push this
// package past the test binary's timeout).
func TestExperimentsRunAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping harness smoke in -short mode")
	}
	for _, id := range []string{"fig2", "fig3", "fig4", "fig11", "fig13", "fig14", "fig15", "tab4", "tab5", "ablation_heap", "ablation_pqtab", "qps", "qps_remote", "qps_cluster", "qps_batched", "filtered"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf strings.Builder
			if err := Run(id, smokeConfig(&buf)); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, "## "+id+" done") {
				t.Errorf("%s: missing completion footer:\n%s", id, out)
			}
			// Every driver must emit at least one data row beyond headers.
			lines := 0
			for _, l := range strings.Split(out, "\n") {
				if l != "" && !strings.HasPrefix(l, "##") && !strings.HasPrefix(l, "#") {
					lines++
				}
			}
			if lines < 2 {
				t.Errorf("%s: only %d data lines:\n%s", id, lines, out)
			}
		})
	}
}

func TestHNSWSizeShapeAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	var buf strings.Builder
	cfg := smokeConfig(&buf)
	if err := Run("fig13", cfg); err != nil {
		t.Fatal(err)
	}
	// The generalized HNSW must be several times larger (paper: 2.9–13.3×).
	out := buf.String()
	if !strings.Contains(out, "ratio_x") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
