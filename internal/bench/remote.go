package bench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/core"
	"vecstudy/internal/server"
)

func init() {
	register(Experiment{
		ID:    "qps_remote",
		Title: "Remote top-k serving over loopback: network-path QPS and tail latency vs the in-process numbers",
		Paper: "beyond the paper: its harness links the engine in-process; production serving pays parse + wire + session costs, measured here instead of guessed",
		Run:   runQPSRemote,
	})
}

// runQPSRemote reruns the qps sweep with the engine behind the serving
// layer: one vdb server on loopback, N client connections each issuing
// the same top-k SELECT the in-process workload runs through the SQL
// layer. Every row pairs the in-process QPS with the remote QPS, so the
// serving overhead (statement parse, wire round-trip, session dispatch)
// is measured rather than guessed.
func runQPSRemote(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	p := core.Defaults(ds)
	p.K = 10
	p.BufferPartitions = 1
	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	defer gen.Close()

	perClient := cfg.Queries
	if perClient <= 0 {
		perClient = 100
	}
	clientCounts := append([]int(nil), cfg.Clients...)
	maxClients := 0
	for _, c := range clientCounts {
		if c > maxClients {
			maxClients = c
		}
	}

	srv := server.New(gen.DB(), server.Config{
		MaxActive:    maxClients + 4,
		QueueDepth:   maxClients,
		QueryTimeout: time.Minute,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	// Pre-render every query as SQL text once; per-query formatting cost
	// must not pollute the serving measurement.
	sqls := make([]string, ds.NQ())
	for q := range sqls {
		sqls[q] = searchSQL(ds.Queries.Row(q), p.K)
	}

	cfg.printf("dataset=%s index=ivf_flat nprobe=%d k=%d queries_per_client=%d gomaxprocs=%d server=%s\n",
		ds.Name, p.NProbe, p.K, perClient, runtime.GOMAXPROCS(0), addr)
	cfg.printf("partitions  clients  inproc_qps  remote_qps  net_overhead  remote_p50  remote_p99\n")
	for _, parts := range []int{1, 16} {
		if err := gen.DB().SetBufferPartitions(parts); err != nil {
			return err
		}
		for _, clients := range clientCounts {
			if err := core.WarmUp(gen, ds, p.K, 4); err != nil {
				return err
			}
			inproc, err := core.RunSearchConcurrent(gen, ds, p.K, clients, perClient)
			if err != nil {
				return err
			}
			remote, err := runRemoteClients(addr, clients, perClient, p.NProbe, sqls)
			if err != nil {
				return err
			}
			overhead := 0.0
			if remote.QPS > 0 {
				overhead = inproc.QPS/remote.QPS - 1
			}
			cfg.printf("%-11d %-8d %-11.1f %-11.1f %-13s %-11v %v\n",
				parts, clients, inproc.QPS, remote.QPS,
				fmt.Sprintf("%.0f%%", 100*overhead),
				remote.P50.Round(time.Microsecond), remote.P99.Round(time.Microsecond))
		}
	}
	st := srv.Stats()
	cfg.printf("# server stats: accepted=%d queries=%d errors=%d rejected=%d p50=%v p99=%v\n",
		st.Accepted, st.Queries, st.Errors, st.Rejected, st.P50, st.P99)
	cfg.printf("# net_overhead = inproc_qps/remote_qps - 1: the cost of parse + wire framing + loopback TCP + session dispatch.\n")
	return nil
}

// runRemoteClients opens one connection per client (each pinned to its
// own session, with the scan knob SET once up front) and drives the
// query mix through the serving layer.
func runRemoteClients(addr string, clients, perClient, nprobe int, sqls []string) (core.ConcurrentResult, error) {
	conns := make([]*client.Conn, clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range conns {
		c, err := client.Dial(addr)
		if err != nil {
			return core.ConcurrentResult{}, err
		}
		conns[i] = c
		if _, err := c.Execute(fmt.Sprintf("SET nprobe = %d", nprobe)); err != nil {
			return core.ConcurrentResult{}, err
		}
	}
	return core.RunConcurrent(clients, perClient, func(c, i int) error {
		res, err := conns[c].Execute(sqls[(c*perClient+i)%len(sqls)])
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("bench: remote query returned no rows")
		}
		return nil
	})
}

// searchSQL renders one top-k search as the SQL the serving layer
// parses, against the table BuildGeneralized loads ("t", column "vec").
func searchSQL(query []float32, k int) string {
	var b strings.Builder
	b.WriteString("SELECT id, distance FROM t ORDER BY vec <-> '{")
	for i, v := range query {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32))
	}
	b.WriteString("}' LIMIT ")
	b.WriteString(strconv.Itoa(k))
	return b.String()
}
