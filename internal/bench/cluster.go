package bench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"vecstudy/internal/cluster"
	"vecstudy/internal/core"
	"vecstudy/internal/dataset"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/server"
)

func init() {
	register(Experiment{
		ID:    "qps_cluster",
		Title: "Scatter-gather cluster QPS: sharded serving vs the single-node remote baseline",
		Paper: "beyond the paper: it scales PostgreSQL up (one box, many cores); specialized systems scale out by partition-parallel search, reproduced here as a shard router over the serving layer",
		Run:   runQPSCluster,
	})
}

// shardNode is one running shard backend and its database.
type shardNode struct {
	db  *db.DB
	srv *server.Server
}

func (n *shardNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.db.Close()
}

// buildShardNode loads the slice of ds owned by shard (rows with
// id mod shards == shard, keeping global ids) into a fresh database,
// indexes it, and serves it. It is the disjoint-load path `datagen
// -shard i/N` feeds in a real deployment, performed in-process here.
func buildShardNode(ds *dataset.Dataset, shard, shards int, p core.Params, maxClients int) (*shardNode, error) {
	d, err := db.Open(db.Config{})
	if err != nil {
		return nil, err
	}
	schema := heap.Schema{Cols: []heap.Column{
		{Name: "id", Type: heap.Int4},
		{Name: "vec", Type: heap.Float4Array},
	}}
	tbl, err := d.CreateTable("t", schema)
	if err != nil {
		d.Close()
		return nil, err
	}
	n := 0
	row := make([]any, 2)
	for i := shard; i < ds.N(); i += shards {
		row[0], row[1] = int32(i), ds.Base.Row(i)
		if _, err := tbl.Insert(row); err != nil {
			d.Close()
			return nil, err
		}
		n++
	}
	clusters := p.C / shards
	if clusters < 4 {
		clusters = 4
	}
	opts := map[string]string{
		"clusters":     strconv.Itoa(clusters),
		"sample_ratio": strconv.FormatFloat(p.SR, 'g', -1, 64),
		"seed":         strconv.FormatInt(p.Seed, 10),
	}
	if _, err := d.CreateIndex("bench_idx", "t", "vec", "ivfflat", opts); err != nil {
		d.Close()
		return nil, err
	}
	srv := server.New(d, server.Config{
		MaxActive:    maxClients + 8,
		QueueDepth:   maxClients,
		QueryTimeout: time.Minute,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		d.Close()
		return nil, err
	}
	return &shardNode{db: d, srv: srv}, nil
}

// runQPSCluster sweeps shard count x client count through real loopback
// shard servers fronted by the scatter-gather router, next to the
// single-node remote baseline (the same serving path qps_remote
// measures), so the scale-out yield of partition-parallel search is
// read off directly: vs_single = cluster QPS over single-node QPS at
// the same client count, efficiency = vs_single / shards.
func runQPSCluster(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	p := core.Defaults(ds)
	p.K = 10
	p.BufferPartitions = 1

	perClient := cfg.Queries
	if perClient <= 0 {
		perClient = 100
	}
	clientCounts := append([]int(nil), cfg.Clients...)
	maxClients := 0
	for _, c := range clientCounts {
		if c > maxClients {
			maxClients = c
		}
	}

	sqls := make([]string, ds.NQ())
	for q := range sqls {
		sqls[q] = searchSQL(ds.Queries.Row(q), p.K)
	}

	cfg.printf("dataset=%s index=ivf_flat nprobe=%d k=%d queries_per_client=%d gomaxprocs=%d\n",
		ds.Name, p.NProbe, p.K, perClient, runtime.GOMAXPROCS(0))
	cfg.printf("shards  clients  qps       p50        p99        vs_single  efficiency\n")

	// Single-node baseline: one shard, no router, same serving path.
	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	single := server.New(gen.DB(), server.Config{
		MaxActive:    maxClients + 8,
		QueueDepth:   maxClients,
		QueryTimeout: time.Minute,
	})
	if err := single.Start("127.0.0.1:0"); err != nil {
		gen.Close()
		return err
	}
	stopSingle := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		single.Shutdown(ctx)
		gen.Close()
	}

	baseline := make(map[int]core.ConcurrentResult, len(clientCounts))
	for _, clients := range clientCounts {
		r, err := runRemoteClients(single.Addr().String(), clients, perClient, p.NProbe, sqls)
		if err != nil {
			stopSingle()
			return err
		}
		baseline[clients] = r
		cfg.printf("%-7d %-8d %-9.1f %-10v %-10v %-10s %s\n",
			1, clients, r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), "1.00x", "100%")
	}
	stopSingle()

	for _, shards := range []int{2, 4} {
		nodes := make([]*shardNode, shards)
		m := &cluster.ShardMap{}
		for s := 0; s < shards; s++ {
			node, err := buildShardNode(ds, s, shards, p, maxClients)
			if err != nil {
				for _, n := range nodes {
					if n != nil {
						n.stop()
					}
				}
				return err
			}
			nodes[s] = node
			m.Shards = append(m.Shards, []string{node.srv.Addr().String()})
		}
		router := cluster.NewRouter(m, cluster.Config{PoolSize: maxClients + 4})
		front := server.NewWithBackend(router, server.Config{
			MaxActive:    maxClients + 8,
			QueueDepth:   maxClients,
			QueryTimeout: time.Minute,
		})
		if err := front.Start("127.0.0.1:0"); err != nil {
			router.Close()
			for _, n := range nodes {
				n.stop()
			}
			return err
		}

		var runErr error
		for _, clients := range clientCounts {
			r, err := runRemoteClients(front.Addr().String(), clients, perClient, p.NProbe, sqls)
			if err != nil {
				runErr = err
				break
			}
			base := baseline[clients]
			vs := 0.0
			if base.QPS > 0 {
				vs = r.QPS / base.QPS
			}
			cfg.printf("%-7d %-8d %-9.1f %-10v %-10v %-10s %s\n",
				shards, clients, r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
				fmt.Sprintf("%.2fx", vs), fmt.Sprintf("%.0f%%", 100*vs/float64(shards)))
		}

		st := router.Stats()
		cfg.printf("# router stats (shards=%d): queries=%d fanouts=%d retries=%d failovers=%d degraded=%d errors=%d\n",
			shards, st.Queries, st.Fanouts, st.Retries, st.Failovers, st.Degraded, st.Errors)

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		front.Shutdown(ctx)
		cancel()
		router.Close()
		for _, n := range nodes {
			n.stop()
		}
		if runErr != nil {
			return runErr
		}
	}
	cfg.printf("# vs_single = cluster QPS / single-node QPS at the same client count; efficiency = vs_single / shards.\n")
	cfg.printf("# Each shard holds N/shards rows (placement: id mod shards), so per-shard scans are smaller; the router\n")
	cfg.printf("# pays one extra hop plus a k-way merge. Scaling well below 100%% shows where fan-out overhead goes.\n")
	return nil
}
