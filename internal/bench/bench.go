// Package bench regenerates every table and figure of the paper's
// evaluation (Figs 2–19, Tables III–V) plus the ablations DESIGN.md
// lists. Each experiment is a registered driver that builds the needed
// indexes through internal/core, runs the workload, and prints the same
// rows/series the paper reports, with the paper's reference numbers in
// the header comment so shape can be checked at a glance.
//
// Scale note: the drivers default to laptop-scale datasets (Scale=0.02 ⇒
// 20k vectors for 1M-class datasets). Absolute times are not comparable
// to the paper's 152-core server; orderings, ratios, and trends are.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vecstudy/internal/dataset"
	"vecstudy/internal/vec"
)

// Config parameterizes a harness run.
type Config struct {
	Scale    float64  // dataset scale factor; 0 ⇒ 0.02
	Datasets []string // subset of profiles; empty ⇒ all six
	Queries  int      // cap on query count per dataset; 0 ⇒ 100
	Clients  []int    // client counts for the concurrent-QPS experiment; empty ⇒ 1,2,4,8,16
	Seed     int64
	Out      io.Writer

	cache map[string]*dataset.Dataset
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Queries == 0 {
		c.Queries = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Datasets) == 0 {
		for _, p := range dataset.Profiles {
			c.Datasets = append(c.Datasets, p.Name)
		}
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8, 16}
	}
	if c.cache == nil {
		c.cache = make(map[string]*dataset.Dataset)
	}
}

// Dataset loads (and caches) one profile at the configured scale, with
// ground truth for recall reporting.
func (c *Config) Dataset(name string, k int) (*dataset.Dataset, error) {
	c.defaults()
	key := fmt.Sprintf("%s/%d", name, k)
	if ds, ok := c.cache[key]; ok {
		return ds, nil
	}
	p, err := dataset.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	ds := dataset.Generate(p, dataset.GenOptions{Scale: c.Scale, Seed: c.Seed, MaxQueries: c.Queries})
	ds.ComputeGroundTruth(k, 0)
	c.cache[key] = ds
	return ds, nil
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Experiment is one registered driver.
type Experiment struct {
	ID    string // "fig3", "tab5", "ablation_heap", ...
	Title string
	Paper string // the paper's headline result, for side-by-side reading
	Run   func(cfg *Config) error
}

// benchRefKern pins every exact-oracle computation in this package (the
// churn and filtered ground truths) to the ref kernel, matching
// dataset.ComputeGroundTruth.
var benchRefKern = vec.Ref()

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (see `benchrunner -list`)", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes one experiment with a standard header.
func Run(id string, cfg *Config) error {
	cfg.defaults()
	e, err := Lookup(id)
	if err != nil {
		return err
	}
	cfg.printf("## %s — %s\n", e.ID, e.Title)
	cfg.printf("## paper: %s\n", e.Paper)
	cfg.printf("## scale=%.3f queries<=%d seed=%d\n", cfg.Scale, cfg.Queries, cfg.Seed)
	start := time.Now()
	if err := e.Run(cfg); err != nil {
		return fmt.Errorf("bench: %s: %w", id, err)
	}
	cfg.printf("## %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

func secs(d time.Duration) float64 { return d.Seconds() }

func mb(b int64) float64 { return float64(b) / (1 << 20) }

func ratio(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return float64(b) / float64(a)
}
