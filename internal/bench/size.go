package bench

import "vecstudy/internal/core"

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "IVF_FLAT index size, both engines",
		Paper: "sizes are almost identical — the IVF page layout aligns with the memory layout",
		Run:   func(cfg *Config) error { return runSize(cfg, core.IVFFlat) },
	})
	register(Experiment{
		ID:    "fig12",
		Title: "IVF_PQ index size, both engines",
		Paper: "no obvious size difference, same reason as Fig 11",
		Run:   func(cfg *Config) error { return runSize(cfg, core.IVFPQ) },
	})
	register(Experiment{
		ID:    "fig13",
		Title: "HNSW index size, both engines",
		Paper: "PASE consumes 2.9×–13.3× more space (24-byte neighbor tuples + page per adjacency list, RC#4)",
		Run:   func(cfg *Config) error { return runSize(cfg, core.HNSW) },
	})
	register(Experiment{
		ID:    "tab4",
		Title: "PASE HNSW index size at 8 KiB vs 4 KiB pages",
		Paper: "halving the page size (8333→4464 MB on SIFT1M) almost halves the index",
		Run:   runTab4,
	})
}

func runSize(cfg *Config, kind core.IndexKind) error {
	cfg.printf("dataset       spec_MB    gen_MB     ratio_x\n")
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		p := core.Defaults(ds)
		spec, sb, err := core.BuildSpecialized(kind, ds, p)
		if err != nil {
			return err
		}
		spec.Close()
		gen, gb, err := core.BuildGeneralized(kind, ds, p)
		if err != nil {
			return err
		}
		gen.Close()
		r := 0.0
		if sb.SizeBytes > 0 {
			r = float64(gb.SizeBytes) / float64(sb.SizeBytes)
		}
		cfg.printf("%-13s %-10.2f %-10.2f %.2f\n", name, mb(sb.SizeBytes), mb(gb.SizeBytes), r)
	}
	return nil
}

func runTab4(cfg *Config) error {
	// The paper uses the three 1M-class datasets.
	names := []string{"sift1m", "gist1m", "deep1m"}
	cfg.printf("dataset       page_8K_MB  page_4K_MB  ratio_x\n")
	for _, name := range names {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		sizes := map[int]int64{}
		for _, pageSize := range []int{8192, 4096} {
			p := core.Defaults(ds)
			p.PageSize = pageSize
			gen, gb, err := core.BuildGeneralized(core.HNSW, ds, p)
			if err != nil {
				return err
			}
			gen.Close()
			sizes[pageSize] = gb.SizeBytes
		}
		cfg.printf("%-13s %-11.2f %-11.2f %.2f\n", name, mb(sizes[8192]), mb(sizes[4096]),
			float64(sizes[8192])/float64(sizes[4096]))
	}
	return nil
}
