package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"

	_ "vecstudy/internal/pase/all"
)

func init() {
	register(Experiment{
		ID:    "filtered",
		Title: "Filtered kNN: recall and QPS vs predicate selectivity, per strategy",
		Paper: "generalized engines must plan WHERE + ORDER BY <-> together; pre/post/in-traversal trade places as selectivity moves",
		Run:   runFiltered,
	})
}

// filteredSelectivities are the acceptance points of the sweep; the
// attribute column is id % 100, so `attr < 100·s` matches fraction s.
var filteredSelectivities = []float64{0.01, 0.1, 0.5, 0.9}

// runFiltered loads one dataset through the SQL layer with a synthetic
// low-cardinality attribute, builds an IVF_FLAT index, and sweeps
// predicate selectivity × strategy, reporting per-query latency, QPS,
// and recall against a filtered brute-force ground truth. The `auto`
// rows additionally show which strategy the planner picked (via
// EXPLAIN), making the crossover visible in one table.
func runFiltered(cfg *Config) error {
	name := cfg.Datasets[0]
	const k = 10
	ds, err := cfg.Dataset(name, k)
	if err != nil {
		return err
	}
	n := ds.N()

	d, err := db.Open(db.Config{})
	if err != nil {
		return err
	}
	defer d.Close()
	sess := sql.NewSession(d)
	if _, err := sess.Execute("CREATE TABLE t (id int, attr int, vec float[])"); err != nil {
		return err
	}
	var b strings.Builder
	for lo := 0; lo < n; lo += 200 {
		hi := lo + 200
		if hi > n {
			hi = n
		}
		b.Reset()
		b.WriteString("INSERT INTO t VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, '{", i, i%100)
			for j, x := range ds.Base.Row(i) {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
			}
			b.WriteString("}')")
		}
		if _, err := sess.Execute(b.String()); err != nil {
			return err
		}
	}
	clusters := ds.NumClusters()
	if _, err := sess.Execute(fmt.Sprintf(
		"CREATE INDEX f_idx ON t USING ivfflat (vec) WITH (clusters = %d, sample_ratio = 1, seed = 1)", clusters)); err != nil {
		return err
	}
	if err := sess.Set("nprobe", strconv.Itoa((clusters+1)/2)); err != nil {
		return err
	}

	queryText := func(q int, attrBound float64, explain bool) string {
		b.Reset()
		if explain {
			b.WriteString("EXPLAIN ")
		}
		fmt.Fprintf(&b, "SELECT id FROM t WHERE attr < %g ORDER BY vec <-> '{", attrBound)
		for j, x := range ds.Queries.Row(q) {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		}
		fmt.Fprintf(&b, "}' LIMIT %d", k)
		return b.String()
	}

	// Filtered brute-force ground truth, recomputed per selectivity.
	groundTruth := func(q int, attrBound float64) map[int32]bool {
		type cand struct {
			id   int32
			dist float32
		}
		var cands []cand
		qv := ds.Queries.Row(q)
		for i := 0; i < n; i++ {
			if float64(i%100) < attrBound {
				cands = append(cands, cand{int32(i), benchRefKern.L2Sqr(qv, ds.Base.Row(i))})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		if len(cands) > k {
			cands = cands[:k]
		}
		gt := make(map[int32]bool, len(cands))
		for _, c := range cands {
			gt[c.id] = true
		}
		return gt
	}

	cfg.printf("dataset=%s n=%d clusters=%d nprobe=%d k=%d\n", name, n, clusters, (clusters+1)/2, k)
	cfg.printf("selectivity  strategy        avg_query   qps       recall@k  planned\n")
	for _, sel := range filteredSelectivities {
		attrBound := sel * 100
		gts := make([]map[int32]bool, ds.NQ())
		for q := range gts {
			gts[q] = groundTruth(q, attrBound)
		}
		for _, strat := range []string{"auto", "pre", "post", "intraversal"} {
			if err := sess.Set(sql.FilterStrategySetting, strat); err != nil {
				return err
			}
			planned := ""
			if strat == "auto" {
				res, err := sess.Execute(queryText(0, attrBound, true))
				if err != nil {
					return err
				}
				for _, row := range res.Rows {
					line := row[0].(string)
					for _, st := range []string{"pre-filter", "post-filter", "in-traversal"} {
						if strings.Contains(line, st) {
							planned = st
						}
					}
				}
			}
			var hit, want int
			start := time.Now()
			for q := 0; q < ds.NQ(); q++ {
				res, err := sess.Execute(queryText(q, attrBound, false))
				if err != nil {
					return err
				}
				want += len(gts[q])
				for _, row := range res.Rows {
					if gts[q][row[0].(int32)] {
						hit++
					}
				}
			}
			elapsed := time.Since(start)
			avg := elapsed / time.Duration(ds.NQ())
			recall := 0.0
			if want > 0 {
				recall = float64(hit) / float64(want)
			}
			cfg.printf("%-12.2f %-15s %-11v %-9.1f %-9.3f %s\n",
				sel, strat, avg.Round(time.Microsecond), float64(ds.NQ())/secs(elapsed), recall, planned)
		}
	}
	return sess.Set(sql.FilterStrategySetting, "auto")
}
