package bench

import (
	"os"
	"path/filepath"
	"strconv"
	"time"

	"vecstudy/internal/core"
	"vecstudy/internal/dataset"
	"vecstudy/internal/kmeans"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"
)

func init() {
	register(Experiment{
		ID:    "ablation_io",
		Title: "PASE IVF_FLAT build on in-memory pages vs file-backed pages (the paper's tmpfs check)",
		Paper: "Sec V-A2: 'even if we use tmpfs ... the performance does not change much' — disk I/O is not the cause",
		Run:   runAblationIO,
	})
	register(Experiment{
		ID:    "ablation_heap",
		Title: "PASE IVF_FLAT search with size-n collector vs bounded size-k heap (RC#6 isolated)",
		Paper: "Table V attributes 13.4% of PASE search to the min-heap; a size-k heap removes most of it",
		Run:   runAblationHeap,
	})
	register(Experiment{
		ID:    "ablation_pqtab",
		Title: "Specialized IVF_PQ search with precomputed tables on vs off (RC#7 isolated)",
		Paper: "Fig 19b: the naive per-bucket table makes the gap grow with nprobe",
		Run:   runAblationPQTab,
	})
	register(Experiment{
		ID:    "ablation_layout",
		Title: "Generalized HNSW: page-per-adjacency-list (PASE) vs packed memory-optimized layout",
		Paper: "Sec IX-C Step#1/Step#5: a memory-optimized table design bridges RC#4's space blow-up and part of RC#2",
		Run:   runAblationLayout,
	})
	register(Experiment{
		ID:    "ablation_kmeans",
		Title: "Specialized IVF_FLAT search with Faiss-flavour vs PASE-flavour K-means (RC#5 isolated)",
		Paper: "Fig 15: clustering quality alone changes IVF search time",
		Run:   runAblationKMeans,
	})
}

func runAblationIO(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("storage     build_total_s\n")
	// In-memory pages (tmpfs equivalent).
	p := core.Defaults(ds)
	gen, gb, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	gen.Close()
	cfg.printf("%-11s %.3f\n", "memory", secs(gb.Total))

	// File-backed pages.
	dir, err := os.MkdirTemp("", "vecstudy-io-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fileTotal, err := buildFileBacked(ds, p, filepath.Join(dir, "db"))
	if err != nil {
		return err
	}
	cfg.printf("%-11s %.3f\n", "file", secs(fileTotal))
	cfg.printf("# near-identical times confirm the gap is not disk I/O (buffer pool absorbs it)\n")
	return nil
}

// buildFileBacked loads the dataset into a file-backed database and
// times CREATE INDEX.
func buildFileBacked(ds *dataset.Dataset, p core.Params, dir string) (time.Duration, error) {
	d, err := db.Open(db.Config{Dir: dir, PageSize: p.PageSize})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	schema := heap.Schema{Cols: []heap.Column{
		{Name: "id", Type: heap.Int4},
		{Name: "vec", Type: heap.Float4Array},
	}}
	tbl, err := d.CreateTable("t", schema)
	if err != nil {
		return 0, err
	}
	row := make([]any, 2)
	for i := 0; i < ds.N(); i++ {
		row[0], row[1] = int32(i), ds.Base.Row(i)
		if _, err := tbl.Insert(row); err != nil {
			return 0, err
		}
	}
	opts := map[string]string{
		"clusters":     strconv.Itoa(p.C),
		"sample_ratio": strconv.FormatFloat(p.SR, 'g', -1, 64),
		"seed":         strconv.FormatInt(p.Seed, 10),
	}
	start := time.Now()
	if _, err := d.CreateIndex("idx", "t", "vec", "ivfflat", opts); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func runAblationHeap(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	p := core.Defaults(ds)
	p.K = 10
	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	defer gen.Close()
	cfg.printf("heap     avg_query   recall@k\n")
	for _, heapMode := range []string{"n", "k"} {
		gen.AMParams()["heap"] = heapMode
		if err := core.WarmUp(gen, ds, p.K, 4); err != nil {
			return err
		}
		res, err := core.RunSearch(gen, ds, p.K)
		if err != nil {
			return err
		}
		cfg.printf("size-%-3s %-11v %.3f\n", heapMode, res.AvgLatency.Round(time.Microsecond), res.Recall)
	}
	return nil
}

func runAblationPQTab(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("precompute  nprobe  avg_query\n")
	for _, pre := range []bool{true, false} {
		p := core.Defaults(ds)
		p.K = 10
		p.PrecomputeTable = pre
		spec, _, err := core.BuildSpecialized(core.IVFPQ, ds, p)
		if err != nil {
			return err
		}
		for _, nprobe := range []int{10, 20, 50} {
			spec.SetSearchParams(nprobe, 0, 0)
			res, err := core.RunSearch(spec, ds, p.K)
			if err != nil {
				return err
			}
			cfg.printf("%-11v %-7d %v\n", pre, nprobe, res.AvgLatency.Round(time.Microsecond))
		}
		spec.Close()
	}
	cfg.printf("# the naive-table cost grows with nprobe, the precomputed-table cost does not (RC#7)\n")
	return nil
}

func runAblationLayout(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("layout   build_s   size_MB    avg_query   recall@k\n")
	for _, packed := range []string{"false", "true"} {
		p := core.Defaults(ds)
		p.K = 10
		p.ExtraAMOpts = map[string]string{"packed": packed}
		gen, gb, err := core.BuildGeneralized(core.HNSW, ds, p)
		if err != nil {
			return err
		}
		if err := core.WarmUp(gen, ds, p.K, 4); err != nil {
			return err
		}
		res, err := core.RunSearch(gen, ds, p.K)
		if err != nil {
			return err
		}
		label := "pase"
		if packed == "true" {
			label = "packed"
		}
		cfg.printf("%-8s %-9.3f %-10.2f %-11v %.3f\n", label, secs(gb.Total), mb(gb.SizeBytes),
			res.AvgLatency.Round(time.Microsecond), res.Recall)
		gen.Close()
	}
	return nil
}

func runAblationKMeans(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("kmeans   avg_query   recall@k\n")
	for _, flavor := range []kmeans.Flavor{kmeans.FlavorFaiss, kmeans.FlavorPASE} {
		p := core.Defaults(ds)
		p.K = 10
		p.KMeansFlavor = flavor
		spec, _, err := core.BuildSpecialized(core.IVFFlat, ds, p)
		if err != nil {
			return err
		}
		res, err := core.RunSearch(spec, ds, p.K)
		if err != nil {
			return err
		}
		spec.Close()
		cfg.printf("%-8s %-11v %.3f\n", flavor, res.AvgLatency.Round(time.Microsecond), res.Recall)
	}
	return nil
}
