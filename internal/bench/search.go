package bench

import (
	"time"

	"vecstudy/internal/core"
	"vecstudy/internal/prof"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Generalized-engine comparison: PASE-style vs pgvector-style IVF_FLAT search",
		Paper: "PASE exhibits the highest performance among open-source generalized vector databases",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "IVF_FLAT search time, both engines",
		Paper: "PASE is 2.0×–3.4× slower (RC#5 centroids, RC#2 tuple access, RC#6 heap size)",
		Run:   func(cfg *Config) error { return runSearch(cfg, core.IVFFlat) },
	})
	register(Experiment{
		ID:    "tab5",
		Title: "Time breakdown of IVF_FLAT search (fvec_L2sqr / tuple access / min-heap)",
		Paper: "PASE: 54.8% dist, 23.5% tuple access, 13.4% min-heap; Faiss: 95.0% dist, 1.8%, 0.3%",
		Run:   runTab5,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "IVF_FLAT search with PASE's centroids transplanted into the specialized engine (Faiss*)",
		Paper: "with identical clustering the gap shrinks — the K-means difference (RC#5) explains part of Fig 14",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "IVF_PQ search time, both engines",
		Paper: "PASE 3.9×–11.2× slower (adds the naive per-bucket distance table, RC#7)",
		Run:   func(cfg *Config) error { return runSearch(cfg, core.IVFPQ) },
	})
	register(Experiment{
		ID:    "fig17",
		Title: "HNSW search time, both engines",
		Paper: "PASE 2.2×–7.3× slower, dominated by tuple access (RC#2)",
		Run:   func(cfg *Config) error { return runSearch(cfg, core.HNSW) },
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Intra-query parallel search: local heaps (specialized) vs one locked global heap (generalized)",
		Paper: "Faiss scales with threads; PASE does not (global heap + lock, RC#3)",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Search gap vs parameters: nprobe for IVF kinds, efs for HNSW",
		Paper: "IVF_FLAT gap flat in nprobe; IVF_PQ gap grows with nprobe (RC#7); HNSW gap grows with efs (RC#2)",
		Run:   runFig19,
	})
}

func runSearch(cfg *Config, kind core.IndexKind) error {
	cfg.printf("dataset       engine       avg_query  recall@k  gap_x\n")
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		p := core.Defaults(ds)
		p.K = 10
		cmp, err := core.CompareBoth(kind, ds, p)
		if err != nil {
			return err
		}
		cfg.printf("%-13s %-12s %-10v %-9.3f\n", name, "specialized",
			cmp.SpecSearch.AvgLatency.Round(time.Microsecond), cmp.SpecSearch.Recall)
		cfg.printf("%-13s %-12s %-10v %-9.3f %.2f\n", name, "generalized",
			cmp.GenSearch.AvgLatency.Round(time.Microsecond), cmp.GenSearch.Recall, cmp.SearchGapX())
	}
	return nil
}

func runFig2(cfg *Config) error {
	cfg.printf("dataset       engine            avg_query  recall@k\n")
	for _, name := range cfg.Datasets[:min(2, len(cfg.Datasets))] {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		p := core.Defaults(ds)
		p.K = 10
		pase, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
		if err != nil {
			return err
		}
		pgv, _, err := core.BuildGeneralizedBaseline(ds, p)
		if err != nil {
			return err
		}
		for _, ix := range []core.Index{pase, pgv} {
			if err := core.WarmUp(ix, ds, p.K, 4); err != nil {
				return err
			}
			res, err := core.RunSearch(ix, ds, p.K)
			if err != nil {
				return err
			}
			label := "pase_ivfflat"
			if ix.Engine() == core.GeneralizedBaseline {
				label = "pgv_ivfflat"
			}
			cfg.printf("%-13s %-17s %-10v %.3f\n", name, label, res.AvgLatency.Round(time.Microsecond), res.Recall)
		}
		pase.Close()
		pgv.Close()
	}
	return nil
}

func runTab5(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	for _, engine := range []core.Engine{core.Specialized, core.Generalized} {
		p := core.Defaults(ds)
		p.K = 10
		p.Prof = prof.New()
		var ix core.Index
		if engine == core.Specialized {
			ix, _, err = core.BuildSpecialized(core.IVFFlat, ds, p)
		} else {
			ix, _, err = core.BuildGeneralized(core.IVFFlat, ds, p)
		}
		if err != nil {
			return err
		}
		if err := core.WarmUp(ix, ds, p.K, 4); err != nil {
			return err
		}
		p.Prof.Reset()
		res, err := core.RunSearch(ix, ds, p.K)
		if err != nil {
			return err
		}
		ix.Close()
		cfg.printf("%s IVF_FLAT search on %s (avg %v):\n", engine, ds.Name, res.AvgLatency.Round(time.Microsecond))
		for _, e := range p.Prof.Report(res.Total) {
			if e.Total == 0 {
				continue
			}
			cfg.printf("  %-14s %6.2f%%  %v\n", e.Name, e.Percent, e.Total.Round(time.Millisecond))
		}
	}
	cfg.printf("# note: profiling timers add per-call overhead; shares, not absolutes, are comparable\n")
	return nil
}

func runFig15(cfg *Config) error {
	cfg.printf("dataset       engine       avg_query  recall@k\n")
	for _, name := range cfg.Datasets {
		ds, err := cfg.Dataset(name, 10)
		if err != nil {
			return err
		}
		p := core.Defaults(ds)
		p.K = 10
		spec, _, err := core.BuildSpecialized(core.IVFFlat, ds, p)
		if err != nil {
			return err
		}
		gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
		if err != nil {
			return err
		}
		star, err := core.BuildFaissStar(gen, ds, p)
		if err != nil {
			return err
		}
		variants := []struct {
			label string
			ix    core.Index
		}{{"specialized", spec}, {"faiss_star", star}, {"generalized", gen}}
		for _, v := range variants {
			label, ix := v.label, v.ix
			if err := core.WarmUp(ix, ds, p.K, 4); err != nil {
				return err
			}
			res, err := core.RunSearch(ix, ds, p.K)
			if err != nil {
				return err
			}
			cfg.printf("%-13s %-12s %-10v %.3f\n", name, label, res.AvgLatency.Round(time.Microsecond), res.Recall)
		}
		spec.Close()
		star.Close()
		gen.Close()
	}
	return nil
}

func runFig18(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("kind      engine       threads  avg_query   speedup_x\n")
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		p := core.Defaults(ds)
		p.K = 10
		// Probe more buckets so there is parallel work to distribute, as
		// the paper's intra-query parallel experiment does.
		p.NProbe = p.C / 2
		spec, _, err := core.BuildSpecialized(kind, ds, p)
		if err != nil {
			return err
		}
		gen, _, err := core.BuildGeneralized(kind, ds, p)
		if err != nil {
			return err
		}
		for _, pair := range []struct {
			label string
			ix    interface {
				core.Index
				SetSearchParams(nprobe, efs, threads int)
			}
		}{{"specialized", spec}, {"generalized", gen}} {
			var base time.Duration
			for _, threads := range []int{1, 2, 4, 8} {
				pair.ix.SetSearchParams(0, 0, threads)
				if err := core.WarmUp(pair.ix, ds, p.K, 4); err != nil {
					return err
				}
				res, err := core.RunSearch(pair.ix, ds, p.K)
				if err != nil {
					return err
				}
				if threads == 1 {
					base = res.AvgLatency
				}
				cfg.printf("%-9s %-12s %-8d %-11v %.2f\n", kind, pair.label, threads,
					res.AvgLatency.Round(time.Microsecond), ratio(res.AvgLatency, base))
			}
		}
		spec.Close()
		gen.Close()
	}
	return nil
}

func runFig19(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	cfg.printf("kind      param        spec_avg    gen_avg     gap_x\n")
	for _, kind := range []core.IndexKind{core.IVFFlat, core.IVFPQ} {
		p := core.Defaults(ds)
		p.K = 10
		spec, _, err := core.BuildSpecialized(kind, ds, p)
		if err != nil {
			return err
		}
		gen, _, err := core.BuildGeneralized(kind, ds, p)
		if err != nil {
			return err
		}
		for _, nprobe := range []int{10, 20, 50} {
			spec.SetSearchParams(nprobe, 0, 0)
			gen.SetSearchParams(nprobe, 0, 0)
			sres, err := core.RunSearch(spec, ds, p.K)
			if err != nil {
				return err
			}
			gres, err := core.RunSearch(gen, ds, p.K)
			if err != nil {
				return err
			}
			cfg.printf("%-9s nprobe=%-6d %-11v %-11v %.2f\n", kind, nprobe,
				sres.AvgLatency.Round(time.Microsecond), gres.AvgLatency.Round(time.Microsecond),
				ratio(sres.AvgLatency, gres.AvgLatency))
		}
		spec.Close()
		gen.Close()
	}
	{
		p := core.Defaults(ds)
		p.K = 10
		spec, _, err := core.BuildSpecialized(core.HNSW, ds, p)
		if err != nil {
			return err
		}
		gen, _, err := core.BuildGeneralized(core.HNSW, ds, p)
		if err != nil {
			return err
		}
		for _, efs := range []int{16, 100, 200} {
			spec.SetSearchParams(0, efs, 0)
			gen.SetSearchParams(0, efs, 0)
			sres, err := core.RunSearch(spec, ds, p.K)
			if err != nil {
				return err
			}
			gres, err := core.RunSearch(gen, ds, p.K)
			if err != nil {
				return err
			}
			cfg.printf("%-9s efs=%-9d %-11v %-11v %.2f\n", core.HNSW, efs,
				sres.AvgLatency.Round(time.Microsecond), gres.AvgLatency.Round(time.Microsecond),
				ratio(sres.AvgLatency, gres.AvgLatency))
		}
		spec.Close()
		gen.Close()
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
