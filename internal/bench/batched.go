package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/cluster"
	"vecstudy/internal/core"
	"vecstudy/internal/server"
)

func init() {
	register(Experiment{
		ID:    "qps_batched",
		Title: "Server-side batched kNN: QPS and tail latency vs coalescing window, single node and sharded",
		Paper: "beyond the paper: its RC#1 (batched SGEMM-shaped scoring beats per-pair loops) applied to serving — concurrent queries coalesce into multi-query probes that share centroid scoring and bucket page pins",
		Run:   runQPSBatched,
	})
}

// batchWindowsMicros is the coalescing sweep: off (the solo baseline),
// a short window that mostly catches already-concurrent arrivals, and a
// full millisecond that trades first-query latency for bigger probes.
var batchWindowsMicros = []int{0, 200, 1000}

// runQPSBatched sweeps batch_window x client count against one server,
// then replays the off/on comparison through a 2-shard scatter-gather
// router to show coalescing composes with the cluster layer (each shard
// batches the router's scattered sub-queries with other sessions').
// vs_off is the speedup over batch_window=0 at the same client count —
// the headline number: batching only pays at saturation, so expect
// ~1.0x at 1 client and the gain to grow with concurrency.
func runQPSBatched(cfg *Config) error {
	ds, err := cfg.Dataset(cfg.Datasets[0], 10)
	if err != nil {
		return err
	}
	p := core.Defaults(ds)
	p.K = 10
	p.BufferPartitions = 1

	perClient := cfg.Queries
	if perClient <= 0 {
		perClient = 100
	}
	clientCounts := append([]int(nil), cfg.Clients...)
	maxClients := 0
	for _, c := range clientCounts {
		if c > maxClients {
			maxClients = c
		}
	}

	gen, _, err := core.BuildGeneralized(core.IVFFlat, ds, p)
	if err != nil {
		return err
	}
	srv := server.New(gen.DB(), server.Config{
		MaxActive:    maxClients + 4,
		QueueDepth:   maxClients,
		QueryTimeout: time.Minute,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		gen.Close()
		return err
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		gen.Close()
	}
	addr := srv.Addr().String()

	sqls := make([]string, ds.NQ())
	for q := range sqls {
		sqls[q] = searchSQL(ds.Queries.Row(q), p.K)
	}

	cfg.printf("dataset=%s index=ivf_flat nprobe=%d k=%d queries_per_client=%d gomaxprocs=%d\n",
		ds.Name, p.NProbe, p.K, perClient, runtime.GOMAXPROCS(0))
	cfg.printf("window_us  clients  qps       p50        p99        vs_off\n")

	baseline := make(map[int]core.ConcurrentResult, len(clientCounts))
	for _, window := range batchWindowsMicros {
		for _, clients := range clientCounts {
			// batch_max = client count: a full batch flushes by cap the
			// moment the last concurrent session joins, so the window is
			// only a deadline for stragglers, not a fixed tax.
			r, err := runBatchedClients(addr, clients, perClient, p.NProbe, window, clients, sqls)
			if err != nil {
				stop()
				return err
			}
			vs := "1.00x"
			if window == 0 {
				baseline[clients] = r
			} else if base := baseline[clients]; base.QPS > 0 {
				vs = fmt.Sprintf("%.2fx", r.QPS/base.QPS)
			}
			cfg.printf("%-10d %-8d %-9.1f %-10v %-10v %s\n",
				window, clients, r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), vs)
		}
	}
	if err := printBatchStats(cfg, addr, "single-node"); err != nil {
		stop()
		return err
	}
	stop()

	// Sharded leg: same workload through a 2-shard router, coalescing
	// off vs on at peak concurrency. The shard servers do the batching;
	// the router only replays the knob.
	const shards = 2
	nodes := make([]*shardNode, 0, shards)
	m := &cluster.ShardMap{}
	stopNodes := func() {
		for _, n := range nodes {
			n.stop()
		}
	}
	for s := 0; s < shards; s++ {
		node, err := buildShardNode(ds, s, shards, p, maxClients)
		if err != nil {
			stopNodes()
			return err
		}
		nodes = append(nodes, node)
		m.Shards = append(m.Shards, []string{node.srv.Addr().String()})
	}
	router := cluster.NewRouter(m, cluster.Config{PoolSize: maxClients + 4})
	front := server.NewWithBackend(router, server.Config{
		MaxActive:    maxClients + 8,
		QueueDepth:   maxClients,
		QueryTimeout: time.Minute,
	})
	if err := front.Start("127.0.0.1:0"); err != nil {
		router.Close()
		stopNodes()
		return err
	}
	stopFront := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		router.Close()
		stopNodes()
	}
	cfg.printf("sharded (%d shards, %d clients):\n", shards, maxClients)
	cfg.printf("window_us  qps       p50        p99        vs_off\n")
	var shardBase core.ConcurrentResult
	for _, window := range []int{0, 1000} {
		r, err := runBatchedClients(front.Addr().String(), maxClients, perClient, p.NProbe, window, maxClients, sqls)
		if err != nil {
			stopFront()
			return err
		}
		vs := "1.00x"
		if window == 0 {
			shardBase = r
		} else if shardBase.QPS > 0 {
			vs = fmt.Sprintf("%.2fx", r.QPS/shardBase.QPS)
		}
		cfg.printf("%-10d %-9.1f %-10v %-10v %s\n",
			window, r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), vs)
	}
	err = printBatchStats(cfg, nodes[0].srv.Addr().String(), "shard 0")
	stopFront()
	if err != nil {
		return err
	}
	cfg.printf("# vs_off = QPS over the batch_window=0 run at the same client count; the window is a tail-latency tax on the batch leader, so read p99 next to the speedup.\n")
	return nil
}

// runBatchedClients is runRemoteClients plus the coalescing knobs SET
// per session.
func runBatchedClients(addr string, clients, perClient, nprobe, windowMicros, batchMax int, sqls []string) (core.ConcurrentResult, error) {
	conns := make([]*client.Conn, clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range conns {
		c, err := client.Dial(addr)
		if err != nil {
			return core.ConcurrentResult{}, err
		}
		conns[i] = c
		for _, set := range []string{
			fmt.Sprintf("SET nprobe = %d", nprobe),
			fmt.Sprintf("SET batch_window = %d", windowMicros),
			fmt.Sprintf("SET batch_max = %d", batchMax),
		} {
			if _, err := c.Execute(set); err != nil {
				return core.ConcurrentResult{}, err
			}
		}
	}
	return core.RunConcurrent(clients, perClient, func(c, i int) error {
		res, err := conns[c].Execute(sqls[(c*perClient+i)%len(sqls)])
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("bench: batched query returned no rows")
		}
		return nil
	})
}

// printBatchStats dials the server and echoes its coalescing counters.
func printBatchStats(cfg *Config, addr, label string) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.Execute("SHOW server_stats")
	if err != nil {
		return err
	}
	cfg.printf("# %s batch stats:", label)
	for _, row := range res.Rows {
		name, _ := row[0].(string)
		if len(name) >= 6 && name[:6] == "batch_" {
			cfg.printf(" %s=%v", name, row[1])
		}
	}
	cfg.printf("\n")
	return nil
}
