// Package sql implements the mini SQL dialect of the generalized engine:
// enough of PostgreSQL's surface — CREATE TABLE, INSERT, CREATE INDEX …
// USING … WITH (…), SELECT … ORDER BY vec <-> '…' LIMIT k, SET, EXPLAIN —
// to express every workload in the paper, including PASE's vector-search
// SQL from Sec II-E.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted
	tokPunct  // single punctuation or multi-char operator
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens. Identifiers and keywords are lowercased
// (the dialect is case-insensitive, like PostgreSQL's unquoted names).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) && l.numberContext()):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			l.lexPunct()
		}
	}
}

// numberContext disambiguates unary minus (start of a number) from the
// '-' inside the <-> operator: a digit-leading '-' only starts a number
// when the previous token is not '<'.
func (l *lexer) numberContext() bool {
	if len(l.toks) == 0 {
		return true
	}
	prev := l.toks[len(l.toks)-1]
	return !(prev.kind == tokPunct && prev.text == "<")
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start})
}

// multi-char operators recognized before single punctuation.
var operators = []string{"<->", "<=>", "<>", "!=", "<=", ">=", "::"}

func (l *lexer) lexPunct() {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.toks = append(l.toks, token{kind: tokPunct, text: op, pos: l.pos})
			l.pos += len(op)
			return
		}
	}
	l.toks = append(l.toks, token{kind: tokPunct, text: string(l.src[l.pos]), pos: l.pos})
	l.pos++
}
