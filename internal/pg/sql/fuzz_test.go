package sql

import (
	"strings"
	"testing"
)

// FuzzParse drives the SQL lexer and parser with arbitrary input. The
// properties under test: the parser never panics, never returns a nil
// statement without an error, and accepts every statement shape the
// executor supports (the seed corpus) so regressions in the grammar
// surface as corpus failures rather than silence.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t (id int, vec float[])",
		"INSERT INTO t VALUES (1, '{1.5, 2.5, 3.5}')",
		"SELECT count(*) FROM t",
		"SELECT id, vec FROM t WHERE id = 7",
		"SELECT id FROM t WHERE price < 10 AND cat != 'x' ORDER BY vec <-> '{1, 1, 0, 0}' LIMIT 5",
		"SELECT id FROM t WHERE a <= 1 AND b >= 2 AND c <> 3 AND d > -4.5 ORDER BY vec <-> '{0,0}' LIMIT 1",
		"SELECT count(*) FROM t WHERE attr >= 90",
		"SELECT id FROM t WHERE a < ORDER BY vec <-> '{1,1}' LIMIT 1",
		"SELECT id FROM t WHERE a = 1 AND ORDER BY vec <-> '{1,1}' LIMIT 1",
		"SELECT id FROM t WHERE AND a = 1",
		"SELECT id FROM t WHERE a <-> 1",
		"SELECT id FROM t WHERE a = -",
		"SELECT id FROM t ORDER BY vec <-> '{10.2, 10.2, 0, 0}' LIMIT 3",
		"SELECT id, distance FROM t ORDER BY vec <-> '{42.1, 42.1}'::pase ASC LIMIT 5",
		"CREATE INDEX ivf_idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)",
		"CREATE INDEX h_idx ON t USING hnsw (vec) WITH (bnn = 8, efb = 40)",
		"SET nprobe = 16",
		"SHOW nprobe",
		"EXPLAIN SELECT id FROM t ORDER BY vec <-> '{1,1,0,0}' LIMIT 5",
		"",
		"SELECT",
		"'unterminated",
		"SELECT * FROM t WHERE id = 99999999999999999999999999",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement with nil error", src)
		}
		if err != nil && stmt != nil {
			t.Fatalf("Parse(%q) returned both a statement and an error: %v", src, err)
		}
		// Error messages must be printable: no raw control bytes leaked
		// from the input into the message (they end up in wire frames).
		if err != nil && strings.ContainsRune(err.Error(), '\x00') {
			t.Fatalf("Parse(%q) error message contains NUL: %q", src, err)
		}
	})
}
