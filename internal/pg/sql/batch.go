package sql

import (
	"fmt"
	"sort"
	"strings"

	"vecstudy/internal/minheap"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/vec"
)

// batch.go is the SQL side of server-side batched kNN execution: a
// vector search is split into a plan step (VectorQuery) and a run step,
// so the query coalescer (internal/batch) can hold planned queries for a
// SET batch_window and execute a whole group as one multi-query probe.
// Grouping is by GroupKey — same table, ORDER BY column, access method,
// filter strategy, query dimensionality, and effective session settings
// — because only then does one MultiSearch (or one shared exact scan)
// reproduce every member's solo execution byte for byte.

// BatchWindowSetting and BatchMaxSetting are the session knobs steering
// query coalescing: the former is the window, in microseconds, a
// batchable query waits for same-group company (0 disables coalescing);
// the latter caps how many queries one multi-query probe may carry.
const (
	BatchWindowSetting = "batch_window"
	BatchMaxSetting    = "batch_max"
)

// BatchWindowMaxMicros bounds SET batch_window: one second expressed in
// the knob's own unit. A coalescing window is a latency tax paid on the
// first query of every batch, so the knob refuses values that would turn
// a tail-latency knob into a stall.
const BatchWindowMaxMicros = 1000000

// BatchMaxLimit bounds SET batch_max. Beyond ~1k queries a probe's
// candidate buffers dwarf the page-pin savings, and the admission layer
// should shed load instead.
const BatchMaxLimit = 1024

// VectorQuery is a planned-but-unexecuted vector search: everything
// runVectorSearch decides before touching the index or heap, captured so
// the coalescer can group it with concurrently planned queries. Run
// executes it solo with exactly the original semantics; MultiRun
// executes a whole group.
type VectorQuery struct {
	s       *Session
	st      *SelectStmt
	tbl     *heap.Table
	outCols []int
	cols    []string
	pred    *compiledPred
	plan    filterPlan
	idx     am.Index
	vcol    int
	k       int
}

// planVector performs the planning half of runVectorSearch: resolve the
// vector column, fix k, look up the index, and pick the filter strategy.
// A k == 0 query skips planning entirely (as the solo path did) and its
// Run returns the empty result without touching the planner.
func (s *Session) planVector(st *SelectStmt, tbl *heap.Table, outCols []int, pred *compiledPred) (*VectorQuery, error) {
	schema := tbl.Schema()
	vcol := schema.ColIndex(st.OrderCol)
	if vcol < 0 || schema.Cols[vcol].Type != heap.Float4Array {
		return nil, fmt.Errorf("sql: ORDER BY column %q is not a vector column", st.OrderCol)
	}
	k := st.Limit
	if !st.HasLimit {
		k = int(tbl.NTuples())
	}
	q := &VectorQuery{
		s:       s,
		st:      st,
		tbl:     tbl,
		outCols: outCols,
		cols:    colNames(outCols, schema, st),
		pred:    pred,
		vcol:    vcol,
		k:       k,
	}
	if k == 0 {
		return q, nil
	}
	q.idx = s.db.IndexOn(st.Table, st.OrderCol)
	plan, err := s.planFilter(tbl, q.idx, pred)
	if err != nil {
		return nil, err
	}
	q.plan = plan
	return q, nil
}

// Run executes the query solo, byte-for-byte the original
// runVectorSearch dispatch.
func (q *VectorQuery) Run() (*Result, error) {
	s := q.s
	res := &Result{Cols: q.cols}
	if q.k == 0 {
		return res, nil
	}
	s.db.StmtGate().RLock()
	defer s.db.StmtGate().RUnlock()
	s.lastFilter = execTrace{}

	var hits []am.Result
	var err error
	switch q.plan.strategy {
	case FilterNone:
		if q.idx == nil {
			return s.exactSearch(q.st, q.tbl, q.vcol, q.k, nil, q.outCols, res)
		}
		hits, err = q.idx.Search(q.st.QueryVec, q.k, s.settings)
	case FilterPre:
		return s.exactSearch(q.st, q.tbl, q.vcol, q.k, q.pred, q.outCols, res)
	case FilterPost:
		hits, err = s.postFilterSearch(q.tbl, q.idx, q.st.QueryVec, q.k, q.pred)
	case FilterInTraversal:
		hits, err = q.idx.(am.FilteredIndex).SearchFiltered(q.st.QueryVec, q.k, s.settings, predicateFor(q.tbl, q.pred))
	}
	if err != nil {
		return nil, err
	}
	for _, h := range hits {
		row, ok, err := s.fetchRow(q.tbl, h.TID, q.outCols, h.Dist)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Batchable reports whether the query may join a coalescing batch, with
// a human-readable reason when it may not. Unbatchable shapes: no LIMIT
// (k is the table size — nothing to amortize), count(*), the post-filter
// strategy (its over-fetch-and-refill loop is adaptive per query), an
// access method without MultiSearch, and threads > 1 (the RC#3
// shared-heap path owns the worker pool; coalescing it would serialize
// what the session asked to parallelize).
func (q *VectorQuery) Batchable() (bool, string) {
	if q.st.CountStar {
		return false, "count(*)"
	}
	if !q.st.HasLimit {
		return false, "no LIMIT"
	}
	if q.k <= 0 {
		return false, "LIMIT 0"
	}
	if q.plan.strategy == FilterPost {
		return false, "post-filter strategy"
	}
	if q.idx != nil && q.plan.strategy != FilterPre {
		if _, ok := q.idx.(am.BatchIndex); !ok {
			return false, fmt.Sprintf("access method %q has no multi-query probe", q.idx.AM())
		}
		if v, ok := q.s.settings["threads"]; ok && v != "1" && v != "" {
			return false, "threads > 1"
		}
	}
	return true, ""
}

// GroupKey identifies the coalescing group: queries with equal keys are
// guaranteed to produce solo-identical results when executed as one
// multi-query probe. The access-method slot is "exact" for plans that
// never touch an index (no index, or the pre-filter strategy), and the
// query's own dimensionality is part of the key so a dimension-mismatch
// error stays confined to the queries that would have failed solo.
// Different WHERE predicates may share a group — the strategy component
// keeps each group uniformly filtered or uniformly not.
func (q *VectorQuery) GroupKey() string {
	amName := "exact"
	if q.idx != nil && q.plan.strategy != FilterPre {
		amName = q.idx.AM()
	}
	return fmt.Sprintf("%s|%s|%s|%s|d=%d|%s",
		q.st.Table, q.st.OrderCol, amName, q.plan.strategy, len(q.st.QueryVec), q.settingsKey())
}

// settingsKey renders every known setting at its effective value, sorted
// by name. Keying on effective values (not the raw SET map) lets a
// session that SET nprobe = 20 batch with one that left the default.
func (q *VectorQuery) settingsKey() string {
	parts := make([]string, 0, len(knownSettings))
	for _, st := range knownSettings {
		parts = append(parts, st.Name+"="+q.s.effective(st))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Params is the canonical scan-parameter map for the group: every known
// setting at its effective value. Passing defaults explicitly is
// behavior-identical to each member's own raw settings map because the
// knownSettings defaults mirror the access methods' own fallbacks.
func (q *VectorQuery) Params() map[string]string {
	out := make(map[string]string, len(knownSettings))
	for _, st := range knownSettings {
		out[st.Name] = q.s.effective(st)
	}
	return out
}

// Finish materializes index hits into the query's projected result rows
// (the tail of the solo dispatch).
func (q *VectorQuery) Finish(hits []am.Result) (*Result, error) {
	res := &Result{Cols: q.cols}
	for _, h := range hits {
		row, ok, err := q.s.fetchRow(q.tbl, h.TID, q.outCols, h.Dist)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// EffectiveSetting resolves a known setting to its effective value for
// this session (the SET override or the default); unknown names return
// "". The coalescer reads batch_window and batch_max through this.
func (s *Session) EffectiveSetting(name string) string {
	st, ok := lookupSetting(name)
	if !ok {
		return ""
	}
	return s.effective(st)
}

// ExecuteOrPlan parses and runs one statement like Execute, except that
// a vector search is returned as a planned, unexecuted *VectorQuery
// (with a nil *Result) for the caller to coalesce or Run. Every other
// statement executes to completion exactly as Execute would.
func (s *Session) ExecuteOrPlan(text string) (*Result, *VectorQuery, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok || sel.OrderCol == "" {
		res, err := s.run(stmt)
		return res, nil, err
	}
	tbl, err := s.db.Table(sel.Table)
	if err != nil {
		return nil, nil, err
	}
	outCols, err := resolveColumns(sel, tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	pred, err := compilePred(sel.Where, tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	q, err := s.planVector(sel, tbl, outCols, pred)
	if err != nil {
		return nil, nil, err
	}
	return nil, q, nil
}

// MultiRun executes a group of same-GroupKey queries as one multi-query
// probe and returns each query's Result in order. Index groups go
// through the access method's MultiSearch; exact groups share one heap
// pass (multiExact). An error anywhere fails the whole group — every
// member observes it, which for uniform-key groups is the error each
// solo run would have raised (dimension mismatches are keyed into their
// own group) or a heap-access failure no member could have dodged.
func MultiRun(qs []*VectorQuery) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	lead := qs[0]
	// One shared read hold for the whole group: members target the same
	// table (it is in the group key) and therefore the same database.
	lead.s.db.StmtGate().RLock()
	defer lead.s.db.StmtGate().RUnlock()
	for _, q := range qs {
		q.s.lastFilter = execTrace{}
	}

	var hits [][]am.Result
	var err error
	if lead.idx == nil || lead.plan.strategy == FilterPre {
		hits, err = multiExact(qs)
	} else {
		bidx := lead.idx.(am.BatchIndex)
		queries := make([][]float32, len(qs))
		ks := make([]int, len(qs))
		for i, q := range qs {
			queries[i] = q.st.QueryVec
			ks[i] = q.k
		}
		var preds []am.Predicate
		if lead.plan.strategy == FilterInTraversal {
			preds = make([]am.Predicate, len(qs))
			for i, q := range qs {
				preds[i] = predicateFor(q.tbl, q.pred)
			}
		}
		hits, err = bidx.MultiSearch(queries, ks, lead.Params(), preds)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(qs))
	for i, q := range qs {
		r, err := q.Finish(hits[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// multiExact serves an exact group (no index, or pre-filter) with one
// shared heap pass. Per tuple the row is decoded at most once and the
// vector materialized at most once, then fanned out to every member
// whose predicate admits it. Each member keeps its own bounded top-k
// heap and its own ordinal counter over its admitted rows, so heap IDs
// — and therefore distance-tie ordering — match its solo exactSearch
// push for push.
func multiExact(qs []*VectorQuery) ([][]am.Result, error) {
	lead := qs[0]
	tbl := lead.tbl
	schema := tbl.Schema()
	filtered := lead.plan.strategy == FilterPre
	// distance_kernel is part of the group key, so the lead's effective
	// value is every member's.
	kern, err := vec.ForName(lead.Params()[DistanceKernelSetting])
	if err != nil {
		return nil, err
	}

	tops := make([]*minheap.TopK, len(qs))
	tids := make([][]heap.TID, len(qs))
	for i, q := range qs {
		tops[i] = minheap.NewTopK(q.k)
		if filtered {
			q.s.lastFilter.strategy = FilterPre
		}
	}
	err = tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		var vals []any
		var v []float32
		for i, q := range qs {
			if q.pred != nil {
				if vals == nil {
					var err error
					if vals, err = schema.Decode(tup); err != nil {
						return false, err
					}
				}
				if !q.pred.eval(vals) {
					continue
				}
			}
			if v == nil {
				var err error
				if v, err = schema.VectorAt(tup, lead.vcol); err != nil {
					return false, err
				}
				// Group members share query dimensionality (it is in the
				// key), so one check stands for all — and fires only on a
				// tuple some member admits, exactly as solo.
				if len(v) != len(q.st.QueryVec) {
					return false, fmt.Errorf("sql: query vector has %d dims, column %q has %d", len(q.st.QueryVec), q.st.OrderCol, len(v))
				}
			}
			tops[i].Push(int64(len(tids[i])), kern.L2Sqr(q.st.QueryVec, v))
			tids[i] = append(tids[i], tid)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]am.Result, len(qs))
	for i := range qs {
		items := tops[i].Results()
		hits := make([]am.Result, len(items))
		for j, it := range items {
			hits[j] = am.Result{TID: tids[i][it.ID], Dist: it.Dist}
		}
		out[i] = hits
	}
	return out, nil
}
