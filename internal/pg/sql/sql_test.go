package sql

import (
	"fmt"
	"strings"
	"testing"

	_ "vecstudy/internal/pase/all"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return NewSession(d)
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// loadVectors creates the paper's schema and inserts n 4-dim rows laid
// out on a line so nearest neighbors are unambiguous.
func loadVectors(t *testing.T, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE t (id int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
	}
	mustExec(t, s, b.String())
}

func TestCreateTableAndCount(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 25)
	res := mustExec(t, s, "SELECT count(*) FROM t")
	if res.Rows[0][0].(int64) != 25 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestSelectWhere(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 10)
	res := mustExec(t, s, "SELECT id, vec FROM t WHERE id = 7")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].(int32) != 7 {
		t.Errorf("id = %v", res.Rows[0][0])
	}
	v := res.Rows[0][1].([]float32)
	if v[0] != 7 || v[1] != 7 {
		t.Errorf("vec = %v", v)
	}
}

func TestVectorSearchSeqFallback(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 50)
	res := mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{10.2, 10.2, 0, 0}' LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].(int32) != 10 {
		t.Errorf("nearest id = %v, want 10", res.Rows[0][0])
	}
}

func TestVectorSearchWithIndexMatchesPaperSyntax(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 300)
	// The paper's Sec II-E workflow: create index with WITH options, set
	// scan parameters, search with ORDER BY ... LIMIT.
	mustExec(t, s, "CREATE INDEX ivf_idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)")
	mustExec(t, s, "SET nprobe = 16")
	res := mustExec(t, s, "SELECT id, distance FROM t ORDER BY vec <-> '{42.1, 42.1, 0, 0}'::pase ASC LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].(int32) != 42 {
		t.Errorf("nearest id = %v, want 42", res.Rows[0][0])
	}
	d0 := res.Rows[0][1].(float32)
	d1 := res.Rows[1][1].(float32)
	if d0 > d1 {
		t.Errorf("distances not ascending: %v then %v", d0, d1)
	}
}

func TestHNSWViaSQL(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 300)
	mustExec(t, s, "CREATE INDEX h_idx ON t USING hnsw (vec) WITH (bnn = 8, efb = 40, seed = 2)")
	mustExec(t, s, "SET efs = 100")
	res := mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{100, 100, 0, 0}' LIMIT 1")
	if res.Rows[0][0].(int32) != 100 {
		t.Errorf("nearest id = %v, want 100", res.Rows[0][0])
	}
}

func TestExplainShowsIndexScan(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 300)
	planText := func(res *Result) string {
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].(string))
			b.WriteByte('\n')
		}
		return b.String()
	}
	res := mustExec(t, s, "EXPLAIN SELECT id FROM t ORDER BY vec <-> '{1,1,0,0}' LIMIT 5")
	if !strings.Contains(planText(res), "Seq Scan") {
		t.Errorf("expected seq-scan plan before index exists: %v", res.Rows)
	}
	mustExec(t, s, "CREATE INDEX ivf_idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1)")
	res = mustExec(t, s, "EXPLAIN SELECT id FROM t ORDER BY vec <-> '{1,1,0,0}' LIMIT 5")
	if !strings.Contains(planText(res), "Index Scan") {
		t.Errorf("expected index-scan plan: %v", res.Rows)
	}
}

func TestSetAndShow(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "SET nprobe = 33")
	res := mustExec(t, s, "SHOW nprobe")
	if res.Rows[0][0].(string) != "33" {
		t.Errorf("SHOW nprobe = %v", res.Rows[0][0])
	}
}

func TestSetRejectsUnknownKnob(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute("SET nprobes = 10"); err == nil {
		t.Error("SET of a misspelled knob accepted")
	}
	if err := s.Set("wibble", "1"); err == nil {
		t.Error("Session.Set of an unknown knob accepted")
	}
	if err := s.Set("nprobe", "10"); err != nil {
		t.Errorf("Session.Set(nprobe) rejected: %v", err)
	}
	res := mustExec(t, s, "SHOW nprobe")
	if res.Rows[0][0].(string) != "10" {
		t.Errorf("SHOW nprobe after Set = %v", res.Rows[0][0])
	}
}

func TestShowRejectsUnknownSetting(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute("SHOW wibble"); err == nil {
		t.Error("SHOW of an unknown setting accepted")
	}
}

func TestShowAll(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "SET efs = 321")
	res := mustExec(t, s, "SHOW ALL")
	if len(res.Cols) != 3 || res.Cols[0] != "name" {
		t.Fatalf("SHOW ALL cols = %v", res.Cols)
	}
	if len(res.Rows) != len(KnownSettings()) {
		t.Fatalf("SHOW ALL lists %d settings, want %d", len(res.Rows), len(KnownSettings()))
	}
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].(string)] = row[1].(string)
	}
	if got["efs"] != "321" {
		t.Errorf("SHOW ALL efs = %q after SET, want 321", got["efs"])
	}
	if got["nprobe"] != "20" {
		t.Errorf("SHOW ALL nprobe default = %q, want 20", got["nprobe"])
	}
	if got[BufferPartitionsSetting] == "" {
		t.Errorf("SHOW ALL %s empty, want live pool partition count", BufferPartitionsSetting)
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 5)
	for _, q := range []string{
		"SELECT nope FROM t",
		"SELECT id FROM t WHERE nope = 1",
		"SELECT id FROM t ORDER BY nope <-> '{1,2,3,4}' LIMIT 1",
		"SELECT id FROM t ORDER BY id <-> '{1,2,3,4}' LIMIT 1", // not a vector column
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("no error for: %s", q)
		}
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE m (a int, b bigint, c real, d text, e float[])")
	for _, q := range []string{
		"INSERT INTO m VALUES ('x', 2, 3.5, 'ok', '{1,2}')",   // string into int
		"INSERT INTO m VALUES (1, 'x', 3.5, 'ok', '{1,2}')",   // string into bigint
		"INSERT INTO m VALUES (1, 2, 'x', 'ok', '{1,2}')",     // string into real
		"INSERT INTO m VALUES (1, 2, 3.5, 4, '{1,2}')",        // number into text
		"INSERT INTO m VALUES (1, 2, 3.5, 'ok', 9)",           // number into vector
		"INSERT INTO m VALUES (1, 2, 3.5, 'ok', 'not a vec')", // non-vector string
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("no error for: %s", q)
		}
	}
	if res := mustExec(t, s, "SELECT count(*) FROM m"); res.Rows[0][0].(int64) != 0 {
		t.Errorf("failed INSERTs left %v rows", res.Rows[0][0])
	}
}

func TestSetBufferPartitions(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 50)
	mustExec(t, s, "SET buffer_partitions = 8")
	if got := s.db.Pool().Partitions(); got != 8 {
		t.Fatalf("pool partitions = %d after SET, want 8", got)
	}
	res := mustExec(t, s, "SHOW buffer_partitions")
	if res.Rows[0][0].(string) != "8" {
		t.Errorf("SHOW buffer_partitions = %v", res.Rows[0][0])
	}
	// Data must survive the repartition (flush + cold restart of the cache).
	res = mustExec(t, s, "SELECT count(*) FROM t")
	if res.Rows[0][0].(int64) != 50 {
		t.Errorf("count after repartition = %v, want 50", res.Rows[0][0])
	}
	// Back to the paper's single-lock configuration.
	mustExec(t, s, "SET buffer_partitions = 1")
	if got := s.db.Pool().Partitions(); got != 1 {
		t.Errorf("pool partitions = %d, want 1", got)
	}
	if _, err := s.Execute("SET buffer_partitions = zero"); err == nil {
		t.Error("non-integer buffer_partitions accepted")
	}
}

func TestInsertAfterIndexIsSearchable(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 200)
	mustExec(t, s, "CREATE INDEX ivf_idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1)")
	mustExec(t, s, "SET nprobe = 8")
	mustExec(t, s, "INSERT INTO t VALUES (777, '{-50, -50, 0, 0}')")
	res := mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{-50,-50,0,0}' LIMIT 1")
	if res.Rows[0][0].(int32) != 777 {
		t.Errorf("nearest = %v, want 777", res.Rows[0][0])
	}
}

func TestParseErrors(t *testing.T) {
	s := newSession(t)
	bad := []string{
		"CREATE TABLE",
		"CREATE TABLE t (id wibble)",
		"SELECT FROM t",
		"SELECT id FROM t ORDER BY vec <-> 'not a vector' LIMIT 3",
		"INSERT INTO t (1)",
		"SELECT id FROM t LIMIT -3",
		"FROBNICATE",
		"SELECT id FROM t; garbage",
	}
	for _, q := range bad {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("accepted invalid SQL: %s", q)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 10)
	for _, q := range []string{
		"SELECT id FROM missing",
		"SELECT nope FROM t",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t VALUES ('x', '{1,2,3,4}')",
		"CREATE TABLE t (id int)", // duplicate
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("no error for: %s", q)
		}
	}
}

func TestSchemaTypesRoundTripThroughSQL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE k (a int, b bigint, c real, d text, e float[])")
	mustExec(t, s, "INSERT INTO k VALUES (1, 2, 3.5, 'hello ''world''', '{1.5, -2.5}')")
	res := mustExec(t, s, "SELECT * FROM k")
	row := res.Rows[0]
	if row[0].(int32) != 1 || row[1].(int64) != 2 || row[2].(float32) != 3.5 {
		t.Errorf("numeric round trip: %v", row)
	}
	if row[3].(string) != "hello 'world'" {
		t.Errorf("text round trip: %q", row[3])
	}
	v := row[4].([]float32)
	if v[0] != 1.5 || v[1] != -2.5 {
		t.Errorf("vector round trip: %v", v)
	}
}

func TestHeapSchemaUsedBySQL(t *testing.T) {
	// Guard: the float[] syntax must map to Float4Array.
	stmt, err := Parse("CREATE TABLE x (v float[])")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Schema.Cols[0].Type != heap.Float4Array {
		t.Errorf("float[] parsed as %v", ct.Schema.Cols[0].Type)
	}
}
