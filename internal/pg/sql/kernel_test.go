package sql

import (
	"fmt"
	"strings"
	"testing"

	"vecstudy/internal/vec"
)

// TestDistanceKernelSettingValidation: every KNOWN kernel name is
// accepted by SET (including ones not registered on this host — a
// cluster router must be able to replay avx2 to an AVX2-capable shard
// from a non-AVX2 coordinator); unknown names are rejected with the
// roster in the message.
func TestDistanceKernelSettingValidation(t *testing.T) {
	s := newSession(t)
	for _, name := range vec.KnownKernelNames() {
		mustExec(t, s, "SET distance_kernel = "+name)
	}
	_, err := s.Execute("SET distance_kernel = simd512")
	if err == nil {
		t.Fatal("unknown kernel accepted")
	}
	for _, name := range vec.KnownKernelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list kernel %q", err, name)
		}
	}
}

// TestSQ8RerankSettingValidation: beta must be an integer in [1, 64].
func TestSQ8RerankSettingValidation(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "SET sq8_rerank = 8")
	for _, bad := range []string{"0", "65", "-1", "2.5", "lots"} {
		if _, err := s.Execute("SET sq8_rerank = " + bad); err == nil {
			t.Errorf("SET sq8_rerank = %s accepted", bad)
		}
	}
}

// TestKernelsAgreeOnExactPath: the sequential-scan kNN path must return
// the same rows under every registered kernel — the kernels differ only
// in summation order, and the line-layout data is exactly representable,
// so even the distances agree here.
func TestKernelsAgreeOnExactPath(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 120)
	const q = "SELECT id FROM t ORDER BY vec <-> '{31.4, 31.4, 0, 0}' LIMIT 5"
	want := resultIDs(mustExec(t, s, q))
	for _, name := range vec.RegisteredKernelNames() {
		mustExec(t, s, "SET distance_kernel = "+name)
		if got := resultIDs(mustExec(t, s, q)); !idsEqual(got, want) {
			t.Errorf("kernel %s: ids = %v, want %v", name, got, want)
		}
	}
}

// TestKernelsAgreeOnIndexPath: same invariance on the ivfflat scan path
// (probe selection and bucket scoring both go through the session
// kernel).
func TestKernelsAgreeOnIndexPath(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 200)
	mustExec(t, s, "CREATE INDEX k_idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	mustExec(t, s, "SET nprobe = 8")
	const q = "SELECT id FROM t ORDER BY vec <-> '{77.3, 77.3, 0, 0}' LIMIT 5"
	want := resultIDs(mustExec(t, s, q))
	for _, name := range vec.RegisteredKernelNames() {
		mustExec(t, s, "SET distance_kernel = "+name)
		if got := resultIDs(mustExec(t, s, q)); !idsEqual(got, want) {
			t.Errorf("kernel %s: ids = %v, want %v", name, got, want)
		}
	}
}

// TestIvfsq8MatchesIvfflatViaSQL: at exhaustive probes the re-ranked
// SQ8 answer equals the full-precision ivfflat answer row for row —
// the quantized phase only pre-selects candidates, never ranks output.
func TestIvfsq8MatchesIvfflatViaSQL(t *testing.T) {
	const n, k = 300, 10
	// Queries are chosen tie-free: an exact distance tie (e.g. a point
	// equidistant from two rows) is ordered by push order in ivfflat's
	// collector but by TID in ivfsq8's TopK, and both are valid answers.
	queries := []string{"'{42.7, 42.7, 0, 0}'", "'{0.1, -0.3, 0, 0}'", "'{255.6, 254.5, 0, 0}'"}

	run := func(am string) [][]int32 {
		s := newSession(t)
		loadVectors(t, s, n)
		mustExec(t, s, fmt.Sprintf(
			"CREATE INDEX m_idx ON t USING %s (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)", am))
		mustExec(t, s, "SET nprobe = 8")
		var out [][]int32
		for _, q := range queries {
			res := mustExec(t, s, fmt.Sprintf("SELECT id FROM t ORDER BY vec <-> %s LIMIT %d", q, k))
			out = append(out, resultIDs(res))
		}
		return out
	}

	flat := run("ivfflat")
	sq8 := run("ivfsq8")
	for i := range queries {
		if !idsEqual(sq8[i], flat[i]) {
			t.Errorf("query %s: ivfsq8 ids = %v, ivfflat ids = %v", queries[i], sq8[i], flat[i])
		}
	}
}

// TestExplainShowsKernel: EXPLAIN must name the kernel that will
// actually run — the resolved one, so a known-but-unregistered request
// (avx2 on a plain host) renders the fallback, not the wish.
func TestExplainShowsKernel(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 120)
	mustExec(t, s, "CREATE INDEX e_idx ON t USING ivfsq8 (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	planText := func() string {
		res := mustExec(t, s, "EXPLAIN SELECT id FROM t ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 3")
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].(string))
			b.WriteByte('\n')
		}
		return b.String()
	}
	if p := planText(); !strings.Contains(p, "Kernel: "+vec.DefaultKernelName) {
		t.Errorf("default plan missing kernel line:\n%s", p)
	}
	mustExec(t, s, "SET distance_kernel = ref")
	if p := planText(); !strings.Contains(p, "Kernel: ref") {
		t.Errorf("plan does not reflect SET distance_kernel = ref:\n%s", p)
	}
	// A known but unregistered kernel falls back to the default in the
	// plan; a registered non-default one renders itself.
	for _, name := range vec.KnownKernelNames() {
		mustExec(t, s, "SET distance_kernel = "+name)
		eff, err := vec.ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p := planText(); !strings.Contains(p, "Kernel: "+eff.Name()) {
			t.Errorf("SET %s: plan missing %q:\n%s", name, eff.Name(), p)
		}
	}
}

// TestSQ8RerankKnobReachesScan: a pathological beta must not break the
// row count, and SHOW must reflect the session value.
func TestSQ8RerankKnobReachesScan(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 150)
	mustExec(t, s, "CREATE INDEX r_idx ON t USING ivfsq8 (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")
	mustExec(t, s, "SET nprobe = 8")
	for _, beta := range []string{"1", "64"} {
		mustExec(t, s, "SET sq8_rerank = "+beta)
		res := mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{60, 60, 0, 0}' LIMIT 7")
		if len(res.Rows) != 7 {
			t.Errorf("beta %s: got %d rows, want 7", beta, len(res.Rows))
		}
	}
	res := mustExec(t, s, "SHOW sq8_rerank")
	if got := res.Rows[0][0].(string); got != "64" {
		t.Errorf("SHOW sq8_rerank = %q, want 64", got)
	}
}
