package sql

import "vecstudy/internal/pg/heap"

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name   string
	Schema heap.Schema
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Literal
}

// Literal is a parsed value: a number, a string, or a vector literal
// ('{0.1,0.2}' or '0.1,0.2').
type Literal struct {
	Num    float64
	Str    string
	Vec    []float32
	IsNum  bool
	IsStr  bool
	IsVec  bool
	IsNull bool
}

// CreateIndexStmt is CREATE INDEX name ON table USING am (col) WITH (...).
type CreateIndexStmt struct {
	Name    string
	Table   string
	AM      string
	Column  string
	Options map[string]string
}

// Cond is one comparison predicate in a WHERE clause: Col Op Val.
// Op is one of "=", "!=", "<", "<=", ">", ">=" (the parser folds "<>"
// into "!="). Conditions in SelectStmt.Where are AND-chained.
type Cond struct {
	Col string
	Op  string
	Val Literal
}

// SelectStmt is SELECT cols FROM table [WHERE col op lit [AND ...]]
// [ORDER BY col <-> 'vec' [ASC]] [LIMIT n].
type SelectStmt struct {
	Columns   []string // "*" allowed alone; "count(*)" as aggregate
	CountStar bool
	Table     string

	Where []Cond // AND-chained comparison predicates; empty = no filter

	OrderCol string // empty = no vector ordering
	QueryVec []float32

	Limit    int // -1 = none
	HasLimit bool
}

// DeleteStmt is DELETE FROM table [WHERE col op lit [AND ...]].
type DeleteStmt struct {
	Table string
	Where []Cond
}

// Assign is one SET col = literal assignment in an UPDATE.
type Assign struct {
	Col string
	Val Literal
}

// UpdateStmt is UPDATE table SET col = lit [, ...] [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assign
	Where []Cond
}

// VacuumStmt is VACUUM [table]: reclaim dead heap space, repair index
// tombstones, and rebuild the planner's reservoir sample. An empty Table
// vacuums every table.
type VacuumStmt struct {
	Table string
}

// SetStmt is SET name = value (session scan parameters: nprobe, efs,
// threads, ...).
type SetStmt struct {
	Name  string
	Value string
}

// ExplainStmt wraps another statement.
type ExplainStmt struct {
	Inner Stmt
}

// ShowStmt is SHOW name, or SHOW ALL (Name == "all") listing every
// recognized setting with its effective value.
type ShowStmt struct {
	Name string
}

func (*CreateTableStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*VacuumStmt) stmt()      {}
func (*CreateIndexStmt) stmt() {}
func (*SelectStmt) stmt()      {}
func (*SetStmt) stmt()         {}
func (*ExplainStmt) stmt()     {}
func (*ShowStmt) stmt()        {}
