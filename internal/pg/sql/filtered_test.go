package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// loadAttrVectors creates a table with a low-cardinality attribute
// column (attr = id % 100, so "attr < K" has selectivity K/100) and
// line-layout vectors, the shape the filtered-search tests and the
// benchrunner's filtered experiment share.
func loadAttrVectors(t *testing.T, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE t (id int, attr int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, '{%d, %d, 0, 0}')", i, i%100, i, i)
	}
	mustExec(t, s, b.String())
}

// exhaustiveIVF builds an ivfflat index and sets nprobe to cover every
// cluster, so index search is exact and parity checks can demand
// identical row sets rather than recall bounds.
func exhaustiveIVF(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, "CREATE INDEX ivf_idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)")
	mustExec(t, s, "SET nprobe = 16")
}

// filteredGroundTruth computes the exact answer to
// WHERE attr < attrBound ORDER BY vec <-> {q,q,0,0} LIMIT k
// over the loadAttrVectors layout.
func filteredGroundTruth(n int, attrBound, q float64, k int) []int32 {
	type cand struct {
		id   int32
		dist float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		if float64(i%100) < attrBound {
			d := float64(i) - q
			cands = append(cands, cand{id: int32(i), dist: 2 * d * d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	ids := make([]int32, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	return ids
}

func resultIDs(res *Result) []int32 {
	ids := make([]int32, len(res.Rows))
	for i, row := range res.Rows {
		ids[i] = row[0].(int32)
	}
	return ids
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFilteredVectorSearchAppliesPredicate is the regression test for
// the silent-drop bug: a WHERE clause on a kNN query used to parse
// cleanly and then be ignored, returning the unfiltered top-k.
func TestFilteredVectorSearchAppliesPredicate(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 300)
	exhaustiveIVF(t, s)
	// The unfiltered top-5 near the origin is ids 0..4 with attr 0..4 —
	// every one violates the predicate, so the old behavior returned
	// rows the query excluded.
	res := mustExec(t, s, "SELECT id, attr FROM t WHERE attr >= 90 ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].(int32) < 90 {
			t.Fatalf("predicate dropped: returned attr=%v < 90 (row %v)", row[1], row)
		}
	}
	if got, want := resultIDs(res), []int32{90, 91, 92, 93, 94}; !idsEqual(got, want) {
		t.Errorf("filtered top-5 = %v, want %v", got, want)
	}
}

// TestFilteredParityAcrossStrategies runs the same filtered queries at
// the acceptance selectivities {0.01, 0.1, 0.5, 0.9} under every
// strategy (auto, forced pre, forced post, forced in-traversal) and
// demands results identical to the exact ground truth. nprobe covers
// all clusters, so the index paths have no approximation excuse.
func TestFilteredParityAcrossStrategies(t *testing.T) {
	const n, k = 400, 5
	s := newSession(t)
	loadAttrVectors(t, s, n)
	exhaustiveIVF(t, s)
	for _, sel := range []float64{0.01, 0.1, 0.5, 0.9} {
		attrBound := sel * 100
		q := fmt.Sprintf("SELECT id FROM t WHERE attr < %g ORDER BY vec <-> '{200.3, 200.3, 0, 0}' LIMIT %d", attrBound, k)
		want := filteredGroundTruth(n, attrBound, 200.3, k)
		for _, strat := range []string{"auto", "pre", "post", "intraversal"} {
			mustExec(t, s, "SET filter_strategy = "+strat)
			got := resultIDs(mustExec(t, s, q))
			if !idsEqual(got, want) {
				t.Errorf("sel=%g strategy=%s: ids = %v, want %v", sel, strat, got, want)
			}
		}
	}
	mustExec(t, s, "SET filter_strategy = auto")
}

// TestFilteredHNSWInTraversal drives the in-traversal path through the
// graph AM: results must satisfy the predicate and find the nearest
// matching row even though the unfiltered nearest rows are much closer.
func TestFilteredHNSWInTraversal(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 300)
	mustExec(t, s, "CREATE INDEX h_idx ON t USING hnsw (vec) WITH (bnn = 8, efb = 40, seed = 2)")
	mustExec(t, s, "SET efs = 300")
	mustExec(t, s, "SET filter_strategy = intraversal")
	res := mustExec(t, s, "SELECT id, attr FROM t WHERE attr >= 50 ORDER BY vec <-> '{10, 10, 0, 0}' LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].(int32) < 50 {
			t.Errorf("in-traversal leaked attr=%v < 50", row[1])
		}
	}
	// Nearest row with attr >= 50 to {10,10} is id 50.
	if res.Rows[0][0].(int32) != 50 {
		t.Errorf("nearest filtered id = %v, want 50", res.Rows[0][0])
	}
}

// TestFilteredUnknownColumnOnVectorPath: an unknown WHERE column must
// fail identically whether or not the query has an ORDER BY vector
// clause or an index — the silent-drop bug also swallowed this error.
func TestFilteredUnknownColumnOnVectorPath(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 50)
	check := func(q string) {
		t.Helper()
		_, err := s.Execute(q)
		if err == nil {
			t.Errorf("no error for: %s", q)
			return
		}
		if !strings.Contains(err.Error(), `no column "nope"`) {
			t.Errorf("%s: error %q, want sql: no column \"nope\"", q, err)
		}
	}
	check("SELECT id FROM t WHERE nope = 1")
	check("SELECT id FROM t WHERE nope = 1 ORDER BY vec <-> '{1,1,0,0}' LIMIT 3")
	exhaustiveIVF(t, s)
	check("SELECT id FROM t WHERE nope = 1 ORDER BY vec <-> '{1,1,0,0}' LIMIT 3")
	check("SELECT id FROM t WHERE attr = 1 AND nope = 1 ORDER BY vec <-> '{1,1,0,0}' LIMIT 3")
}

// TestExplainFilteredPlans checks EXPLAIN renders the real predicate
// text (not a placeholder) plus the chosen strategy on vector plans.
func TestExplainFilteredPlans(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 300)
	planText := func(q string) string {
		res := mustExec(t, s, q)
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].(string))
			b.WriteByte('\n')
		}
		return b.String()
	}
	// Plain (non-vector) scan: predicate with its literal.
	if p := planText("EXPLAIN SELECT id FROM t WHERE attr = 7 AND id < 200"); !strings.Contains(p, "Filter: attr = 7 AND id < 200") {
		t.Errorf("plain-scan EXPLAIN lost the predicate:\n%s", p)
	}
	// Vector query without an index: pre-filter under a seq scan.
	p := planText("EXPLAIN SELECT id FROM t WHERE attr < 3 ORDER BY vec <-> '{1,1,0,0}' LIMIT 5")
	if !strings.Contains(p, "Filter: attr < 3") || !strings.Contains(p, "pre-filter") {
		t.Errorf("no-index filtered EXPLAIN:\n%s", p)
	}
	// With an index the auto planner's choice shows strategy + estimate.
	exhaustiveIVF(t, s)
	p = planText("EXPLAIN SELECT id FROM t WHERE attr < 90 ORDER BY vec <-> '{1,1,0,0}' LIMIT 5")
	if !strings.Contains(p, "Index Scan") || !strings.Contains(p, "Filter: attr < 90") || !strings.Contains(p, "post-filter") {
		t.Errorf("indexed filtered EXPLAIN:\n%s", p)
	}
	if !strings.Contains(p, "est sel=") {
		t.Errorf("EXPLAIN missing selectivity estimate:\n%s", p)
	}
	// Text literals render quoted.
	mustExec(t, s, "CREATE TABLE txt (name text, vec float[])")
	mustExec(t, s, "INSERT INTO txt VALUES ('ann', '{1,2}')")
	if p := planText("EXPLAIN SELECT name FROM txt WHERE name = 'ann'"); !strings.Contains(p, "Filter: name = 'ann'") {
		t.Errorf("text literal EXPLAIN:\n%s", p)
	}
}

// TestPlannerAutoStrategyBySelectivity pins the auto policy's
// thresholds: highly selective predicates pre-filter, middling ones run
// in-traversal, non-selective ones post-filter.
func TestPlannerAutoStrategyBySelectivity(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 400)
	exhaustiveIVF(t, s)
	strategyOf := func(attrBound int) string {
		q := fmt.Sprintf("EXPLAIN SELECT id FROM t WHERE attr < %d ORDER BY vec <-> '{1,1,0,0}' LIMIT 5", attrBound)
		res := mustExec(t, s, q)
		for _, row := range res.Rows {
			line := row[0].(string)
			for _, st := range []string{"pre-filter", "post-filter", "in-traversal"} {
				if strings.Contains(line, st) {
					return st
				}
			}
		}
		t.Fatalf("no strategy in EXPLAIN for attr < %d: %v", attrBound, res.Rows)
		return ""
	}
	if got := strategyOf(2); got != "pre-filter" {
		t.Errorf("sel≈0.02 chose %s, want pre-filter", got)
	}
	if got := strategyOf(30); got != "in-traversal" {
		t.Errorf("sel≈0.30 chose %s, want in-traversal", got)
	}
	if got := strategyOf(90); got != "post-filter" {
		t.Errorf("sel≈0.90 chose %s, want post-filter", got)
	}
}

// TestZeroMatchPostFilterTerminates: a predicate matching nothing must
// return zero rows (not loop), and the refill loop's total index
// fetches must stay within the geometric-series bound (< 4n).
func TestZeroMatchPostFilterTerminates(t *testing.T) {
	const n = 300
	s := newSession(t)
	loadAttrVectors(t, s, n)
	exhaustiveIVF(t, s)
	mustExec(t, s, "SET filter_strategy = post")
	res := mustExec(t, s, "SELECT id FROM t WHERE attr = 555 ORDER BY vec <-> '{1,1,0,0}' LIMIT 10")
	if len(res.Rows) != 0 {
		t.Fatalf("zero-match query returned %d rows", len(res.Rows))
	}
	if s.lastFilter.strategy != FilterPost {
		t.Fatalf("strategy = %v, want post-filter", s.lastFilter.strategy)
	}
	if s.lastFilter.fetched > 4*n {
		t.Errorf("fetched %d hits, bound is %d", s.lastFilter.fetched, 4*n)
	}
	if maxRefills := int(math.Log2(n)) + 1; s.lastFilter.refills > maxRefills {
		t.Errorf("refills = %d, want <= %d", s.lastFilter.refills, maxRefills)
	}
}

// TestFilterSettingsValidation pins SET-time validation of the two new
// knobs and their round trip through SHOW.
func TestFilterSettingsValidation(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{
		"SET filter_strategy = bogus",
		"SET filter_strategy = 3",
		"SET filter_overfetch = 0",
		"SET filter_overfetch = -2",
		"SET filter_overfetch = lots",
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("accepted invalid setting: %s", q)
		}
	}
	mustExec(t, s, "SET filter_strategy = intraversal")
	if res := mustExec(t, s, "SHOW filter_strategy"); res.Rows[0][0].(string) != "intraversal" {
		t.Errorf("SHOW filter_strategy = %v", res.Rows[0][0])
	}
	mustExec(t, s, "SET filter_overfetch = 8")
	if res := mustExec(t, s, "SHOW filter_overfetch"); res.Rows[0][0].(string) != "8" {
		t.Errorf("SHOW filter_overfetch = %v", res.Rows[0][0])
	}
}

// TestWherePredicateOperators exercises every comparison operator, AND
// chains, text comparison, and negative literals (which stress the
// lexer's <-> disambiguation: `attr > -5` must not lex as `<->`).
func TestWherePredicateOperators(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 100)
	cases := []struct {
		where string
		want  int
	}{
		{"attr = 7", 1},
		{"attr != 7", 99},
		{"attr <> 7", 99},
		{"attr < 10", 10},
		{"attr <= 10", 11},
		{"attr > 89", 10},
		{"attr >= 89", 11},
		{"attr >= 10 AND attr < 20", 10},
		{"attr > -5", 100},
		{"id < -1", 0},
	}
	for _, c := range cases {
		res := mustExec(t, s, "SELECT count(*) FROM t WHERE "+c.where)
		if got := res.Rows[0][0].(int64); got != int64(c.want) {
			t.Errorf("WHERE %s: count = %d, want %d", c.where, got, c.want)
		}
		// The same predicate on the vector path must agree.
		res = mustExec(t, s, "SELECT id FROM t WHERE "+c.where+" ORDER BY vec <-> '{0,0,0,0}' LIMIT 1000")
		if got := len(res.Rows); got != c.want {
			t.Errorf("WHERE %s on kNN path: %d rows, want %d", c.where, got, c.want)
		}
	}
	// Text comparison on the vector path.
	mustExec(t, s, "CREATE TABLE names (n text, vec float[])")
	mustExec(t, s, "INSERT INTO names VALUES ('alpha', '{0,0}'), ('beta', '{1,1}'), ('gamma', '{2,2}')")
	res := mustExec(t, s, "SELECT n FROM names WHERE n > 'alpha' ORDER BY vec <-> '{0,0}' LIMIT 5")
	if len(res.Rows) != 2 || res.Rows[0][0].(string) != "beta" {
		t.Errorf("text predicate rows = %v", res.Rows)
	}
}
