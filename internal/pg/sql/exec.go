package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vecstudy/internal/maintenance"
	"vecstudy/internal/minheap"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/vec"
)

// BufferPartitionsSetting is the session knob that repartitions the
// shared buffer pool at runtime (`SET buffer_partitions = 16`), the
// analogue of PostgreSQL's NUM_BUFFER_PARTITIONS compile-time constant.
// 1 restores the paper's single-lock pool.
const BufferPartitionsSetting = "buffer_partitions"

// VacuumThresholdSetting is the auto-vacuum trigger: after a DELETE or
// UPDATE, a table whose dead-tuple fraction meets or exceeds this value
// is vacuumed in place (heap compaction + index repair + sample
// rebuild). 0 disables auto-vacuum; VACUUM remains available manually.
const VacuumThresholdSetting = "vacuum_threshold"

// DistanceKernelSetting selects the distance kernel search paths score
// candidates with: ref (bit-exact scalar baseline), unrolled
// (cache-blocked generic Go, the default), or avx2 (assembly, amd64
// hosts with the ISA; silently falls back to the default elsewhere).
// Build, insert, and delete arithmetic is pinned to ref regardless —
// bucket assignment and graph wiring must not depend on a session knob.
const DistanceKernelSetting = "distance_kernel"

// SQ8RerankSetting is the ivfsq8 re-rank multiplier β: the quantized
// scan collects k·β candidates by asymmetric code distance, then the
// top k are re-ranked against the full-precision heap tuples. 1 skips
// no candidates but re-ranks exactly k.
const SQ8RerankSetting = "sq8_rerank"

// Setting describes one recognized session knob.
type Setting struct {
	Name    string
	Default string // effective value when the session has not SET it
	Desc    string
}

// knownSettings is the closed list of knobs SET and SHOW accept, in
// SHOW ALL order. The scan-time defaults mirror the access methods'
// own fallbacks (pase.OptInt defaults).
var knownSettings = []Setting{
	{BatchMaxSetting, "32", "batched execution: max queries coalesced into one multi-query probe"},
	{BatchWindowSetting, "0", "batched execution: coalescing window in microseconds (0 = off)"},
	{BufferPartitionsSetting, "", "buffer-mapping partitions of the shared pool (1 = paper's single lock)"},
	{DistanceKernelSetting, vec.DefaultKernelName, "distance kernel for search-path scoring: ref, unrolled, or avx2"},
	{"efs", "200", "hnsw: search queue length"},
	{FilterOverfetchSetting, "4", "filtered kNN: post-filter over-fetch multiplier (k' = k*alpha)"},
	{FilterStrategySetting, "auto", "filtered kNN strategy: auto, pre, post, or intraversal"},
	{"heap", "n", "ivfflat: top-k heap policy, n (PASE size-n, RC#6) or k (size-k)"},
	{"nprobe", "20", "ivf: clusters probed per query"},
	{SQ8RerankSetting, "4", "ivfsq8: re-rank multiplier beta (k*beta quantized candidates re-ranked at full precision)"},
	{"threads", "1", "intra-query scan parallelism"},
	{VacuumThresholdSetting, "0", "auto-vacuum when a table's dead-tuple fraction reaches this (0 = off)"},
}

// KnownSettings returns the recognized session knobs (for SHOW ALL and
// external tooling).
func KnownSettings() []Setting {
	out := make([]Setting, len(knownSettings))
	copy(out, knownSettings)
	return out
}

func lookupSetting(name string) (Setting, bool) {
	for _, s := range knownSettings {
		if s.Name == name {
			return s, true
		}
	}
	return Setting{}, false
}

// Session executes statements against a database and carries session
// settings (scan parameters like nprobe, efs, threads — PASE exposes the
// same knobs through GUCs).
type Session struct {
	db       *db.DB
	settings map[string]string

	lastFilter execTrace // what the last filtered vector search did
}

// NewSession opens a session on d.
func NewSession(d *db.DB) *Session {
	return &Session{db: d, settings: map[string]string{}}
}

// Set overrides one session setting programmatically. It validates the
// knob name against the same known-settings list the SET statement uses
// and returns an error for unknown knobs.
func (s *Session) Set(name, value string) error { return s.applySet(name, value) }

// applySet is the single SET path shared by Set and the SET statement.
func (s *Session) applySet(name, value string) error {
	if err := ValidateSetting(name, value); err != nil {
		return err
	}
	if name == BufferPartitionsSetting {
		n, _ := strconv.Atoi(value)
		if err := s.db.SetBufferPartitions(n); err != nil {
			return err
		}
		// Record the clamped, effective value, not the request.
		s.settings[name] = strconv.Itoa(s.db.Pool().Partitions())
		return nil
	}
	s.settings[name] = value
	return nil
}

// ValidateSetting checks one knob assignment without applying it. The
// cluster router validates at record time through this — its SETs are
// replayed onto shard sessions later, where a bad value would otherwise
// surface as a confusing error on an unrelated query.
func ValidateSetting(name, value string) error {
	if _, ok := lookupSetting(name); !ok {
		return fmt.Errorf("sql: unrecognized setting %q (SHOW ALL lists the known settings)", name)
	}
	switch name {
	case BufferPartitionsSetting:
		if _, err := strconv.Atoi(value); err != nil {
			return fmt.Errorf("sql: SET %s expects an integer: %w", BufferPartitionsSetting, err)
		}
	case FilterStrategySetting:
		switch value {
		case "auto", "pre", "post", "intraversal":
		default:
			return fmt.Errorf("sql: SET %s expects auto, pre, post, or intraversal", FilterStrategySetting)
		}
	case FilterOverfetchSetting:
		if n, err := strconv.Atoi(value); err != nil || n < 1 {
			return fmt.Errorf("sql: SET %s expects a positive integer", FilterOverfetchSetting)
		}
	case BatchWindowSetting:
		if n, err := strconv.Atoi(value); err != nil || n < 0 || n > BatchWindowMaxMicros {
			return fmt.Errorf("sql: SET %s expects an integer between 0 and %d (microseconds)", BatchWindowSetting, BatchWindowMaxMicros)
		}
	case BatchMaxSetting:
		if n, err := strconv.Atoi(value); err != nil || n < 1 || n > BatchMaxLimit {
			return fmt.Errorf("sql: SET %s expects an integer between 1 and %d", BatchMaxSetting, BatchMaxLimit)
		}
	case VacuumThresholdSetting:
		if f, err := strconv.ParseFloat(value, 64); err != nil || f < 0 || f > 1 {
			return fmt.Errorf("sql: SET %s expects a fraction between 0 and 1", VacuumThresholdSetting)
		}
	case DistanceKernelSetting:
		// Any KNOWN kernel name is accepted regardless of what this host
		// registered: a cluster router validates here and replays the SET
		// onto shards whose hardware may differ, so avx2 must validate on
		// a machine without the ISA (vec.ForName falls back at scan time).
		ok := false
		for _, name := range vec.KnownKernelNames() {
			if value == name {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("sql: SET %s expects one of %s", DistanceKernelSetting, strings.Join(vec.KnownKernelNames(), ", "))
		}
	case SQ8RerankSetting:
		if n, err := strconv.Atoi(value); err != nil || n < 1 || n > 64 {
			return fmt.Errorf("sql: SET %s expects an integer between 1 and 64", SQ8RerankSetting)
		}
	}
	return nil
}

// effective resolves a known setting to its current value: the session
// override if SET, otherwise the default (the pool's live partition
// count for buffer_partitions).
func (s *Session) effective(st Setting) string {
	if st.Name == BufferPartitionsSetting {
		return strconv.Itoa(s.db.Pool().Partitions())
	}
	if v, ok := s.settings[st.Name]; ok {
		return v
	}
	return st.Default
}

// Result is the outcome of one statement.
type Result struct {
	Cols []string
	Rows [][]any
	Msg  string // DDL/utility acknowledgment
}

// Execute parses and runs one statement.
func (s *Session) Execute(text string) (*Result, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return s.run(stmt)
}

func (s *Session) run(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateTableStmt:
		if _, err := s.db.CreateTable(st.Name, st.Schema); err != nil {
			return nil, err
		}
		return &Result{Msg: "CREATE TABLE"}, nil
	case *InsertStmt:
		return s.runInsert(st)
	case *DeleteStmt:
		return s.runDelete(st)
	case *UpdateStmt:
		return s.runUpdate(st)
	case *VacuumStmt:
		return s.runVacuum(st)
	case *CreateIndexStmt:
		s.db.StmtGate().RLock()
		_, err := s.db.CreateIndex(st.Name, st.Table, st.Column, st.AM, st.Options)
		s.db.StmtGate().RUnlock()
		if err != nil {
			return nil, err
		}
		return &Result{Msg: "CREATE INDEX"}, nil
	case *SetStmt:
		if err := s.applySet(st.Name, st.Value); err != nil {
			return nil, err
		}
		return &Result{Msg: "SET"}, nil
	case *ShowStmt:
		if st.Name == "all" {
			res := &Result{Cols: []string{"name", "setting", "description"}}
			for _, known := range knownSettings {
				res.Rows = append(res.Rows, []any{known.Name, s.effective(known), known.Desc})
			}
			return res, nil
		}
		known, ok := lookupSetting(st.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unrecognized setting %q (SHOW ALL lists the known settings)", st.Name)
		}
		return &Result{Cols: []string{st.Name}, Rows: [][]any{{s.effective(known)}}}, nil
	case *SelectStmt:
		return s.runSelect(st)
	case *ExplainStmt:
		return s.runExplain(st)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

func (s *Session) runInsert(st *InsertStmt) (*Result, error) {
	tbl, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	s.db.StmtGate().RLock()
	defer s.db.StmtGate().RUnlock()
	schema := tbl.Schema()
	for _, row := range st.Rows {
		if len(row) != len(schema.Cols) {
			return nil, fmt.Errorf("sql: INSERT has %d values, table %q has %d columns", len(row), st.Table, len(schema.Cols))
		}
		values := make([]any, len(row))
		for i, lit := range row {
			v, err := litToValue(lit, schema.Cols[i])
			if err != nil {
				return nil, err
			}
			values[i] = v
		}
		if _, err := s.db.Insert(st.Table, values); err != nil {
			return nil, err
		}
	}
	return &Result{Msg: fmt.Sprintf("INSERT 0 %d", len(st.Rows))}, nil
}

// matchingTIDs collects the TIDs of live rows satisfying the predicate,
// decoding values only when a predicate needs them. Collect-then-mutate
// keeps DELETE and UPDATE out of their own way: an UPDATE's freshly
// inserted rows can never be re-visited by the same statement (the
// Halloween problem).
func matchingTIDs(tbl *heap.Table, pred *compiledPred) ([]heap.TID, error) {
	schema := tbl.Schema()
	var tids []heap.TID
	err := tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		if pred != nil {
			vals, err := schema.Decode(tup)
			if err != nil {
				return false, err
			}
			if !pred.eval(vals) {
				return true, nil
			}
		}
		tids = append(tids, tid)
		return true, nil
	})
	return tids, err
}

// vacuumThreshold resolves the session's auto-vacuum trigger fraction.
func (s *Session) vacuumThreshold() float64 {
	v, ok := s.settings[VacuumThresholdSetting]
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return f
}

// maybeAutoVacuum vacuums the table if its dead fraction has reached the
// session's vacuum_threshold. Callers hold the statement gate
// exclusively already (DELETE/UPDATE run under it).
func (s *Session) maybeAutoVacuum(tbl *heap.Table, table string) error {
	th := s.vacuumThreshold()
	if th <= 0 || tbl.DeadFraction() < th {
		return nil
	}
	_, err := maintenance.VacuumTable(s.db, table)
	return err
}

func (s *Session) runDelete(st *DeleteStmt) (*Result, error) {
	tbl, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	pred, err := compilePred(st.Where, tbl.Schema())
	if err != nil {
		return nil, err
	}
	s.db.StmtGate().Lock()
	defer s.db.StmtGate().Unlock()
	tids, err := matchingTIDs(tbl, pred)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, tid := range tids {
		ok, err := s.db.Delete(st.Table, tid)
		if err != nil {
			return nil, err
		}
		if ok {
			n++
		}
	}
	if err := s.maybeAutoVacuum(tbl, st.Table); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("DELETE %d", n)}, nil
}

func (s *Session) runUpdate(st *UpdateStmt) (*Result, error) {
	tbl, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	pred, err := compilePred(st.Where, schema)
	if err != nil {
		return nil, err
	}
	type assign struct {
		col int
		val any
	}
	assigns := make([]assign, 0, len(st.Set))
	for _, a := range st.Set {
		col := schema.ColIndex(a.Col)
		if col < 0 {
			return nil, fmt.Errorf("sql: no column %q", a.Col)
		}
		v, err := litToValue(a.Val, schema.Cols[col])
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, assign{col: col, val: v})
	}
	s.db.StmtGate().Lock()
	defer s.db.StmtGate().Unlock()
	tids, err := matchingTIDs(tbl, pred)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, tid := range tids {
		var values []any
		ok, err := tbl.GetVisible(tid, func(tup []byte) error {
			var err error
			values, err = schema.Decode(tup)
			return err
		})
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		for _, a := range assigns {
			values[a.col] = a.val
		}
		if _, ok, err := s.db.Update(st.Table, tid, values); err != nil {
			return nil, err
		} else if ok {
			n++
		}
	}
	if err := s.maybeAutoVacuum(tbl, st.Table); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) runVacuum(st *VacuumStmt) (*Result, error) {
	s.db.StmtGate().Lock()
	defer s.db.StmtGate().Unlock()
	if st.Table != "" {
		if _, err := maintenance.VacuumTable(s.db, st.Table); err != nil {
			return nil, err
		}
		return &Result{Msg: "VACUUM"}, nil
	}
	if _, err := maintenance.VacuumAll(s.db); err != nil {
		return nil, err
	}
	return &Result{Msg: "VACUUM"}, nil
}

// litToValue coerces a parsed literal to the column's Go type.
func litToValue(lit Literal, col heap.Column) (any, error) {
	switch col.Type {
	case heap.Int4:
		if !lit.IsNum {
			return nil, fmt.Errorf("sql: column %q expects an integer", col.Name)
		}
		return int32(lit.Num), nil
	case heap.Int8:
		if !lit.IsNum {
			return nil, fmt.Errorf("sql: column %q expects a bigint", col.Name)
		}
		return int64(lit.Num), nil
	case heap.Float4:
		if !lit.IsNum {
			return nil, fmt.Errorf("sql: column %q expects a real", col.Name)
		}
		return float32(lit.Num), nil
	case heap.Text:
		if !lit.IsStr {
			return nil, fmt.Errorf("sql: column %q expects a string", col.Name)
		}
		return lit.Str, nil
	case heap.Float4Array:
		if !lit.IsVec {
			return nil, fmt.Errorf("sql: column %q expects a vector literal like '{0.1,0.2}'", col.Name)
		}
		return lit.Vec, nil
	}
	return nil, fmt.Errorf("sql: unsupported column type %v", col.Type)
}

// DistanceColumn is the pseudo-column that exposes the ORDER BY distance
// in the target list of a vector search.
const DistanceColumn = "distance"

func (s *Session) runSelect(st *SelectStmt) (*Result, error) {
	tbl, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	outCols, err := resolveColumns(st, schema)
	if err != nil {
		return nil, err
	}
	// The predicate is validated against the schema before dispatch, so
	// an unknown WHERE column errors identically on the scan and vector
	// paths (the silent-drop bug ignored it entirely on the latter).
	pred, err := compilePred(st.Where, schema)
	if err != nil {
		return nil, err
	}

	if st.OrderCol != "" {
		return s.runVectorSearch(st, tbl, outCols, pred)
	}

	// Plain (optionally filtered) sequential scan.
	s.db.StmtGate().RLock()
	defer s.db.StmtGate().RUnlock()
	res := &Result{Cols: colNames(outCols, schema, st)}
	count := 0
	err = tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		vals, err := schema.Decode(tup)
		if err != nil {
			return false, err
		}
		if pred != nil && !pred.eval(vals) {
			return true, nil
		}
		count++
		if !st.CountStar {
			res.Rows = append(res.Rows, project(vals, outCols, 0))
		}
		if st.HasLimit && !st.CountStar && len(res.Rows) >= st.Limit {
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if st.CountStar {
		res.Rows = [][]any{{int64(count)}}
	}
	return res, nil
}

// runVectorSearch executes [WHERE ...] ORDER BY vec <-> '...' [LIMIT k].
// Unfiltered queries prefer an index scan and fall back to an exact
// scan-and-sort; filtered queries go through the planner seam, which
// picks pre-filter, post-filter, or in-traversal by estimated
// selectivity (see planner.go). Planning and execution are split as
// planVector + Run so the query coalescer can hold a planned query for
// a batch window (see batch.go).
func (s *Session) runVectorSearch(st *SelectStmt, tbl *heap.Table, outCols []int, pred *compiledPred) (*Result, error) {
	q, err := s.planVector(st, tbl, outCols, pred)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// execTrace records what the last filtered search actually did, for
// in-package tests and debugging (the planner's choice is visible to
// clients through EXPLAIN).
type execTrace struct {
	fetched  int // index hits pulled across every post-filter refill round
	refills  int // extra search rounds beyond the first
	strategy FilterStrategy
}

// exactSearch is the brute-force path: one heap pass, predicate pushed
// below the distance computation, survivors ranked in a bounded top-k
// heap. It serves both the unfiltered no-index fallback (pred == nil)
// and the pre-filter strategy.
func (s *Session) exactSearch(st *SelectStmt, tbl *heap.Table, vcol, k int, pred *compiledPred, outCols []int, res *Result) (*Result, error) {
	if pred != nil {
		s.lastFilter.strategy = FilterPre
	}
	kern, err := vec.ForName(s.settings[DistanceKernelSetting])
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	top := minheap.NewTopK(k)
	var tids []heap.TID
	err = tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		if pred != nil {
			vals, err := schema.Decode(tup)
			if err != nil {
				return false, err
			}
			if !pred.eval(vals) {
				return true, nil
			}
		}
		v, err := schema.VectorAt(tup, vcol)
		if err != nil {
			return false, err
		}
		if len(v) != len(st.QueryVec) {
			return false, fmt.Errorf("sql: query vector has %d dims, column %q has %d", len(st.QueryVec), st.OrderCol, len(v))
		}
		top.Push(int64(len(tids)), kern.L2Sqr(st.QueryVec, v))
		tids = append(tids, tid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, it := range top.Results() {
		row, ok, err := s.fetchRow(tbl, tids[it.ID], outCols, it.Dist)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// postFilterSearch over-fetches k' = k·α from the index, keeps the hits
// satisfying pred, and doubles k' until k survive or k' has reached the
// table size (the index is exhausted). Termination is unconditional:
// k' grows geometrically to the n cap, so a predicate matching zero
// rows performs O(log n) rounds and returns empty, with total fetched
// hits bounded by the k'-series sum (< 4n).
func (s *Session) postFilterSearch(tbl *heap.Table, idx am.Index, query []float32, k int, cp *compiledPred) ([]am.Result, error) {
	s.lastFilter.strategy = FilterPost
	alpha := 4
	if v, ok := s.settings[FilterOverfetchSetting]; ok {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			alpha = n
		}
	}
	n := int(tbl.NTuples())
	pred := predicateFor(tbl, cp)
	kPrime := k * alpha
	if kPrime > n || kPrime < k { // cap at table size; guard overflow
		kPrime = n
	}
	for {
		hits, err := idx.Search(query, kPrime, s.settings)
		if err != nil {
			return nil, err
		}
		s.lastFilter.fetched += len(hits)
		survivors := make([]am.Result, 0, k)
		for _, h := range hits {
			ok, err := pred(h.TID)
			if err != nil {
				return nil, err
			}
			if ok {
				survivors = append(survivors, h)
				if len(survivors) == k {
					break
				}
			}
		}
		if len(survivors) >= k || kPrime >= n || len(hits) < kPrime {
			return survivors, nil
		}
		s.lastFilter.refills++
		kPrime *= 2
		if kPrime > n || kPrime < 0 {
			kPrime = n
		}
	}
}

// fetchRow resolves a TID to projected output values. A TID whose heap
// tuple has died since the index entry was written reports (nil, false,
// nil) and the caller drops the row — the executor's visibility
// re-check, the last line of defense against a stale index TID.
func (s *Session) fetchRow(tbl *heap.Table, tid heap.TID, outCols []int, dist float32) ([]any, bool, error) {
	var row []any
	ok, err := tbl.GetVisible(tid, func(tup []byte) error {
		vals, err := tbl.Schema().Decode(tup)
		if err != nil {
			return err
		}
		row = project(vals, outCols, dist)
		return nil
	})
	return row, ok, err
}

// resolveColumns maps the target list to column ordinals; -1 encodes the
// distance pseudo-column.
func resolveColumns(st *SelectStmt, schema heap.Schema) ([]int, error) {
	if st.CountStar {
		return nil, nil
	}
	var out []int
	for _, name := range st.Columns {
		if name == "*" {
			for i := range schema.Cols {
				out = append(out, i)
			}
			continue
		}
		if name == DistanceColumn && st.OrderCol != "" {
			out = append(out, -1)
			continue
		}
		i := schema.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("sql: no column %q", name)
		}
		out = append(out, i)
	}
	return out, nil
}

func colNames(outCols []int, schema heap.Schema, st *SelectStmt) []string {
	if st.CountStar {
		return []string{"count"}
	}
	names := make([]string, len(outCols))
	for i, c := range outCols {
		if c == -1 {
			names[i] = DistanceColumn
		} else {
			names[i] = schema.Cols[c].Name
		}
	}
	return names
}

func project(vals []any, outCols []int, dist float32) []any {
	row := make([]any, len(outCols))
	for i, c := range outCols {
		if c == -1 {
			row[i] = dist
		} else {
			row[i] = vals[c]
		}
	}
	return row
}

// runExplain renders the plan the inner statement would use, including
// the predicate and the filter strategy the planner picks for filtered
// vector searches.
func (s *Session) runExplain(st *ExplainStmt) (*Result, error) {
	sel, ok := st.Inner.(*SelectStmt)
	if !ok {
		return &Result{Cols: []string{"QUERY PLAN"}, Rows: [][]any{{"Utility Statement"}}}, nil
	}

	// Plan the predicate when the table exists; EXPLAIN of a missing
	// table still renders a shape-only plan (the statement would fail at
	// execution, but EXPLAIN has no DDL side effects to protect).
	var pred *compiledPred
	var vq *VectorQuery
	plan := filterPlan{strategy: FilterNone}
	if tbl, err := s.db.Table(sel.Table); err == nil {
		pred, err = compilePred(sel.Where, tbl.Schema())
		if err != nil {
			return nil, err
		}
		if sel.OrderCol != "" {
			// Prefer the full plan (it also answers batchability); a
			// non-vector ORDER BY column keeps the shape-only rendering.
			if q, vErr := s.planVector(sel, tbl, nil, pred); vErr == nil {
				vq, plan = q, q.plan
			} else if plan, err = s.planFilter(tbl, s.db.IndexOn(sel.Table, sel.OrderCol), pred); err != nil {
				return nil, err
			}
		}
	}

	var lines []string
	if sel.OrderCol != "" {
		filterLine := func(indent string) {
			if pred == nil {
				return
			}
			lines = append(lines, fmt.Sprintf("%sFilter: %s (%s, est sel=%.2f)", indent, pred, plan.strategy, plan.selectivity))
		}
		if idx := s.db.IndexOn(sel.Table, sel.OrderCol); idx != nil && plan.strategy != FilterPre {
			params := make([]string, 0, len(s.settings))
			for k, v := range s.settings {
				params = append(params, k+"="+v)
			}
			sort.Strings(params)
			lines = append(lines,
				fmt.Sprintf("Limit (k=%d)", sel.Limit),
				fmt.Sprintf("  -> Index Scan using %s on %s (%s)", idx.AM(), sel.Table, strings.Join(params, " ")),
			)
			filterLine("       ")
		} else {
			lines = append(lines,
				fmt.Sprintf("Limit (k=%d)", sel.Limit),
				"  -> Sort by vector distance",
				fmt.Sprintf("    -> Seq Scan on %s", sel.Table),
			)
			filterLine("       ")
		}
		// Report the kernel that will actually score distances: ForName
		// falls back to the default when the requested kernel is known
		// but not registered on this host (avx2 without AVX2).
		if kern, err := vec.ForName(s.settings[DistanceKernelSetting]); err == nil {
			lines = append(lines, fmt.Sprintf("Kernel: %s", kern.Name()))
		}
		if vq != nil {
			if ok, reason := vq.Batchable(); ok {
				lines = append(lines, fmt.Sprintf("Batchable: yes (group %s)", vq.GroupKey()))
			} else {
				lines = append(lines, fmt.Sprintf("Batchable: no (%s)", reason))
			}
		}
	} else {
		lines = append(lines, fmt.Sprintf("Seq Scan on %s", sel.Table))
		if len(sel.Where) > 0 {
			if pred == nil {
				// Missing table: render from the AST instead.
				pred = &compiledPred{src: sel.Where}
			}
			lines = append(lines, fmt.Sprintf("  Filter: %s", pred))
		}
	}
	res := &Result{Cols: []string{"QUERY PLAN"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []any{l})
	}
	return res, nil
}
