package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// dynamicAMs is the access-method sweep for the dynamic-data suite:
// every registered AM must make deleted tuples invisible on every read
// path, mirroring the delete-then-search anomaly class from the VDBMS
// bug taxonomy.
var dynamicAMs = []string{"ivfflat", "ivfpq", "ivfsq8", "hnsw", "pgv_ivfflat"}

// dynIndex builds an index of the given AM over t(vec) with options
// that make the small-n search as close to exhaustive as each AM
// allows.
func dynIndex(t *testing.T, s *Session, am string) {
	t.Helper()
	var opts string
	switch am {
	case "hnsw":
		opts = "WITH (bnn = 8, efb = 40, seed = 1)"
	case "ivfpq":
		opts = "WITH (clusters = 8, sample_ratio = 1, seed = 1, m = 2, ksub = 16)"
	default:
		opts = "WITH (clusters = 8, sample_ratio = 1, seed = 1)"
	}
	mustExec(t, s, fmt.Sprintf("CREATE INDEX dyn_idx ON t USING %s (vec) %s", am, opts))
	mustExec(t, s, "SET nprobe = 8")
}

// assertNoneDeleted fails if any returned id falls in [lo, hi).
func assertNoneDeleted(t *testing.T, label string, res *Result, lo, hi int32) {
	t.Helper()
	for _, row := range res.Rows {
		if id := row[0].(int32); id >= lo && id < hi {
			t.Errorf("%s: returned deleted id %d", label, id)
		}
	}
}

// TestDeleteThenSearchInvisibleAcrossAMs deletes the rows nearest the
// query and demands the kNN answer is drawn entirely from survivors, on
// the plain index path, the filtered path, and (where the AM supports
// it) the batched multi-query path.
func TestDeleteThenSearchInvisibleAcrossAMs(t *testing.T) {
	const n, k = 200, 10
	for _, am := range dynamicAMs {
		t.Run(am, func(t *testing.T) {
			s := newSession(t)
			loadVectors(t, s, n)
			dynIndex(t, s, am)

			res := mustExec(t, s, "DELETE FROM t WHERE id < 50")
			if res.Msg != "DELETE 50" {
				t.Fatalf("delete msg = %q", res.Msg)
			}

			// Plain path: the 50 nearest rows to the origin are all gone.
			q := fmt.Sprintf("SELECT id FROM t ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT %d", k)
			res = mustExec(t, s, q)
			if len(res.Rows) != k {
				t.Fatalf("plain: got %d rows, want %d", len(res.Rows), k)
			}
			assertNoneDeleted(t, "plain", res, 0, 50)
			if am != "ivfpq" { // PQ distances may reorder the tail
				if got, want := resultIDs(res), []int32{50, 51, 52, 53, 54, 55, 56, 57, 58, 59}; !idsEqual(got, want) {
					t.Errorf("plain: ids = %v, want %v", got, want)
				}
			}

			// Filtered path: the predicate admits deleted ids, visibility
			// must still exclude them under every strategy.
			for _, strat := range []string{"pre", "post", "intraversal"} {
				mustExec(t, s, "SET filter_strategy = "+strat)
				fres := mustExec(t, s, fmt.Sprintf(
					"SELECT id FROM t WHERE id < 100 ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT %d", k))
				assertNoneDeleted(t, "filtered/"+strat, fres, 0, 50)
				if len(fres.Rows) != k {
					t.Errorf("filtered/%s: got %d rows, want %d", strat, len(fres.Rows), k)
				}
			}
			mustExec(t, s, "SET filter_strategy = auto")

			// Batched path: a same-key group through MultiRun.
			var qs []*VectorQuery
			for i := 0; i < 3; i++ {
				_, vq, err := s.ExecuteOrPlan(fmt.Sprintf(
					"SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT %d", i, i, k))
				if err != nil {
					t.Fatal(err)
				}
				if vq == nil {
					t.Fatal("ExecuteOrPlan did not plan a vector query")
				}
				qs = append(qs, vq)
			}
			if ok, _ := qs[0].Batchable(); ok {
				results, err := MultiRun(qs)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					assertNoneDeleted(t, fmt.Sprintf("batched[%d]", i), r, 0, 50)
					if len(r.Rows) != k {
						t.Errorf("batched[%d]: got %d rows, want %d", i, len(r.Rows), k)
					}
				}
			}
		})
	}
}

// TestUpdateChangesDistanceReordering checks the update path end to
// end: after UPDATE moves a far row next to the query point, the row
// wins the kNN; its old position must no longer be reachable.
func TestUpdateChangesDistanceReordering(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 100)
	exhaustiveIVF(t, s)

	res := mustExec(t, s, "UPDATE t SET vec = '{-3, -3, 0, 0}' WHERE id = 99")
	if res.Msg != "UPDATE 1" {
		t.Fatalf("update msg = %q", res.Msg)
	}

	// id 99 moved from (99,99) to (-3,-3): nearest to (-3.2,-3.2) by a mile.
	res = mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{-3.2, -3.2, 0, 0}' LIMIT 2")
	if got, want := resultIDs(res), []int32{99, 0}; !idsEqual(got, want) {
		t.Errorf("post-update top-2 = %v, want %v", got, want)
	}
	// And its old neighborhood no longer contains it.
	res = mustExec(t, s, "SELECT id FROM t ORDER BY vec <-> '{99, 99, 0, 0}' LIMIT 1")
	if got, want := resultIDs(res), []int32{98}; !idsEqual(got, want) {
		t.Errorf("old-position top-1 = %v, want %v", got, want)
	}
}

// TestDeleteAllThenVacuum empties the table under every AM: searches
// return zero rows (not an error) before and after VACUUM, and a
// subsequent insert re-seeds the index.
func TestDeleteAllThenVacuum(t *testing.T) {
	const n = 60
	for _, am := range dynamicAMs {
		t.Run(am, func(t *testing.T) {
			s := newSession(t)
			loadVectors(t, s, n)
			dynIndex(t, s, am)

			res := mustExec(t, s, "DELETE FROM t WHERE id >= 0")
			if res.Msg != fmt.Sprintf("DELETE %d", n) {
				t.Fatalf("delete msg = %q", res.Msg)
			}
			q := "SELECT id FROM t ORDER BY vec <-> '{0, 0, 0, 0}' LIMIT 5"
			if res = mustExec(t, s, q); len(res.Rows) != 0 {
				t.Fatalf("post-delete-all search returned %d rows", len(res.Rows))
			}
			mustExec(t, s, "VACUUM t")
			if res = mustExec(t, s, q); len(res.Rows) != 0 {
				t.Fatalf("post-vacuum search returned %d rows", len(res.Rows))
			}
			mustExec(t, s, "INSERT INTO t VALUES (7, '{7, 7, 0, 0}')")
			res = mustExec(t, s, q)
			if got, want := resultIDs(res), []int32{7}; !idsEqual(got, want) {
				t.Errorf("post-reinsert search = %v, want %v", got, want)
			}
		})
	}
}

// TestVacuumVsFreshRebuildParity churns a table (deletes + updates),
// vacuums it, and demands the repaired index answer queries exactly as
// well as an index built from scratch on the surviving rows. At this
// scale both ivfflat (exhaustive nprobe) and hnsw resolve the exact
// neighbors, so parity is asserted on result sets, a stricter form of
// the 0.5%-recall acceptance bound.
func TestVacuumVsFreshRebuildParity(t *testing.T) {
	const n, k = 150, 10
	for _, am := range []string{"ivfflat", "ivfsq8", "hnsw"} {
		t.Run(am, func(t *testing.T) {
			s := newSession(t)
			loadVectors(t, s, n)
			dynIndex(t, s, am)

			// 30% churn: delete ids ≡ 0 or 1 (mod 10), update ids ≡ 2 (mod 10).
			for i := 0; i < n; i++ {
				switch i % 10 {
				case 0, 1:
					mustExec(t, s, fmt.Sprintf("DELETE FROM t WHERE id = %d", i))
				case 2:
					mustExec(t, s, fmt.Sprintf("UPDATE t SET vec = '{%d, %d, 1, 1}' WHERE id = %d", i, i, i))
				}
			}
			mustExec(t, s, "VACUUM t")

			// Fresh rebuild on the identical surviving data.
			mustExec(t, s, "CREATE TABLE t2 (id int, vec float[])")
			var b strings.Builder
			b.WriteString("INSERT INTO t2 VALUES ")
			first := true
			for i := 0; i < n; i++ {
				if i%10 == 0 || i%10 == 1 {
					continue
				}
				if !first {
					b.WriteString(", ")
				}
				first = false
				if i%10 == 2 {
					fmt.Fprintf(&b, "(%d, '{%d, %d, 1, 1}')", i, i, i)
				} else {
					fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
				}
			}
			mustExec(t, s, b.String())
			var opts string
			if am == "hnsw" {
				opts = "WITH (bnn = 8, efb = 40, seed = 1)"
			} else {
				opts = "WITH (clusters = 8, sample_ratio = 1, seed = 1)"
			}
			mustExec(t, s, fmt.Sprintf("CREATE INDEX t2_idx ON t2 USING %s (vec) %s", am, opts))
			mustExec(t, s, "SET nprobe = 8")

			for _, q := range []string{"{0, 0, 0, 0}", "{40.3, 40.3, 0, 0}", "{149, 149, 0, 0}", "{75.5, 75.5, 1, 1}"} {
				vac := resultIDs(mustExec(t, s, fmt.Sprintf(
					"SELECT id FROM t ORDER BY vec <-> '%s' LIMIT %d", q, k)))
				fresh := resultIDs(mustExec(t, s, fmt.Sprintf(
					"SELECT id FROM t2 ORDER BY vec <-> '%s' LIMIT %d", q, k)))
				// Compare as sets: equal distances may tie-break differently.
				sort.Slice(vac, func(i, j int) bool { return vac[i] < vac[j] })
				sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
				if !idsEqual(vac, fresh) {
					t.Errorf("q=%s: vacuumed index = %v, fresh rebuild = %v", q, vac, fresh)
				}
			}
		})
	}
}

// TestSelectivityEstimateAfterChurn pins the planner-statistics
// regression at the SQL layer: after skewed deletes, the selectivity
// estimate for a predicate over the deleted range must collapse, both
// immediately (drop-on-delete) and after the vacuum rebuild.
func TestSelectivityEstimateAfterChurn(t *testing.T) {
	s := newSession(t)
	loadAttrVectors(t, s, 400)
	tbl, err := s.db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := compilePred([]Cond{{Col: "attr", Op: "<", Val: Literal{Num: 50, IsNum: true}}}, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := estimateSelectivity(tbl, pred)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.3 || sel > 0.7 {
		t.Fatalf("pre-churn estimate = %g, want ~0.5", sel)
	}
	mustExec(t, s, "DELETE FROM t WHERE attr < 50")
	if sel, err = estimateSelectivity(tbl, pred); err != nil {
		t.Fatal(err)
	}
	if sel > 0.05 {
		t.Errorf("post-delete estimate = %g, want ~0", sel)
	}
	mustExec(t, s, "VACUUM t")
	if sel, err = estimateSelectivity(tbl, pred); err != nil {
		t.Fatal(err)
	}
	if sel > 0.05 {
		t.Errorf("post-vacuum estimate = %g, want ~0", sel)
	}
}

// TestAutoVacuumThreshold exercises the auto trigger: with
// vacuum_threshold set, crossing the dead fraction inside a DELETE
// fires an inline vacuum and the dead count returns to zero.
func TestAutoVacuumThreshold(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 100)
	exhaustiveIVF(t, s)
	mustExec(t, s, "SET vacuum_threshold = 0.25")
	mustExec(t, s, "DELETE FROM t WHERE id < 30")
	tbl, err := s.db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.NDead(); got != 0 {
		t.Errorf("NDead = %d after threshold-crossing delete, want 0 (auto-vacuum)", got)
	}
	st := s.db.Mutations()
	if st.VacuumRuns == 0 {
		t.Error("no vacuum run recorded")
	}
	if st.TuplesDeleted != 30 {
		t.Errorf("TuplesDeleted = %d, want 30", st.TuplesDeleted)
	}
	// Threshold off: deletes accumulate again.
	mustExec(t, s, "SET vacuum_threshold = 0")
	mustExec(t, s, "DELETE FROM t WHERE id < 40")
	if got := tbl.NDead(); got != 10 {
		t.Errorf("NDead = %d with auto-vacuum off, want 10", got)
	}
}

// TestDynamicParseAndErrors covers the new statements' parse surface.
func TestDynamicParseAndErrors(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 10)

	// DELETE/UPDATE with no matches report zero without error.
	if res := mustExec(t, s, "DELETE FROM t WHERE id = 500"); res.Msg != "DELETE 0" {
		t.Errorf("msg = %q", res.Msg)
	}
	if res := mustExec(t, s, "UPDATE t SET id = 1 WHERE id = 500"); res.Msg != "UPDATE 0" {
		t.Errorf("msg = %q", res.Msg)
	}
	// Bare VACUUM (all tables) and VACUUM <table> both parse.
	mustExec(t, s, "VACUUM")
	mustExec(t, s, "VACUUM t")

	for _, bad := range []string{
		"DELETE t WHERE id = 1",            // missing FROM
		"UPDATE t id = 1",                  // missing SET
		"UPDATE t SET WHERE id = 1",        // empty assignment list
		"DELETE FROM missing WHERE id = 1", // unknown table
		"UPDATE t SET nope = 1",            // unknown column
		"VACUUM missing",                   // unknown table
		"UPDATE t SET id = 'abc'",          // type mismatch
	} {
		if _, err := s.Execute(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}

	// An UPDATE whose WHERE matches every row rewrites every row once
	// (collect-then-mutate: no Halloween re-visitation of new tuples).
	if res := mustExec(t, s, "UPDATE t SET vec = '{0, 0, 0, 0}' WHERE id >= 0"); res.Msg != "UPDATE 10" {
		t.Errorf("msg = %q", res.Msg)
	}
	if res := mustExec(t, s, "SELECT count(*) FROM t"); res.Rows[0][0].(int64) != 10 {
		t.Errorf("count after full-table update = %v", res.Rows[0][0])
	}
}
