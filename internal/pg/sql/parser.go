package sql

import (
	"fmt"
	"strconv"
	"strings"

	"vecstudy/internal/pg/heap"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %q, found %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(tokIdent, "create"):
		if p.accept(tokIdent, "table") {
			return p.parseCreateTable()
		}
		if p.accept(tokIdent, "index") {
			return p.parseCreateIndex()
		}
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	case p.accept(tokIdent, "insert"):
		return p.parseInsert()
	case p.accept(tokIdent, "delete"):
		return p.parseDelete()
	case p.accept(tokIdent, "update"):
		return p.parseUpdate()
	case p.accept(tokIdent, "vacuum"):
		st := &VacuumStmt{}
		if p.at(tokIdent, "") {
			st.Table = p.cur().text
			p.pos++
		}
		return st, nil
	case p.accept(tokIdent, "select"):
		return p.parseSelect()
	case p.accept(tokIdent, "set"):
		return p.parseSet()
	case p.accept(tokIdent, "show"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ShowStmt{Name: name.text}, nil
	case p.accept(tokIdent, "explain"):
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner}, nil
	}
	return nil, p.errorf("unrecognized statement beginning with %q", p.cur().text)
}

var typeNames = map[string]heap.ColType{
	"int":     heap.Int4,
	"integer": heap.Int4,
	"int4":    heap.Int4,
	"bigint":  heap.Int8,
	"int8":    heap.Int8,
	"real":    heap.Float4,
	"float4":  heap.Float4,
	"text":    heap.Text,
	"varchar": heap.Text,
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var schema heap.Schema
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var typ heap.ColType
		if typTok.text == "float" && p.accept(tokPunct, "[") {
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			typ = heap.Float4Array
		} else if t, ok := typeNames[typTok.text]; ok {
			typ = t
		} else {
			return nil, p.errorf("unknown column type %q", typTok.text)
		}
		schema.Cols = append(schema.Cols, heap.Column{Name: col.text, Type: typ})
		if p.accept(tokPunct, ",") {
			continue
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTableStmt{Name: name.text, Schema: schema}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if _, err := p.expect(tokIdent, "into"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "values"); err != nil {
		return nil, err
	}
	var rows [][]Literal
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		rows = append(rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return &InsertStmt{Table: table.text, Rows: rows}, nil
}

// parseWhere parses an optional WHERE clause of AND-chained conditions.
func (p *parser) parseWhere() ([]Cond, error) {
	if !p.accept(tokIdent, "where") {
		return nil, nil
	}
	var conds []Cond
	for {
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
		if !p.accept(tokIdent, "and") {
			return conds, nil
		}
	}
}

func (p *parser) parseDelete() (Stmt, error) {
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Table: table.text, Where: where}, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "set"); err != nil {
		return nil, err
	}
	var assigns []Assign
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assign{Col: col.text, Val: lit})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &UpdateStmt{Table: table.text, Set: assigns, Where: where}, nil
}

// parseLiteral handles numbers, strings, vector strings, and NULL. A
// trailing ::pase or ::vector cast is accepted and ignored.
func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, p.errorf("bad number %q", t.text)
		}
		return Literal{Num: v, IsNum: true}, nil
	case t.kind == tokString:
		p.pos++
		p.acceptCast()
		if vec, ok := parseVectorLiteral(t.text); ok {
			return Literal{Str: t.text, Vec: vec, IsStr: true, IsVec: true}, nil
		}
		return Literal{Str: t.text, IsStr: true}, nil
	case t.kind == tokIdent && t.text == "null":
		p.pos++
		return Literal{IsNull: true}, nil
	case t.kind == tokPunct && t.text == "-":
		// Unary minus as its own token: the lexer refuses to start a
		// number directly after '<' (the <-> ambiguity), so "a < -5"
		// reaches the parser as '-' followed by '5'.
		if nxt := p.toks[p.pos+1]; nxt.kind == tokNumber {
			p.pos += 2
			v, err := strconv.ParseFloat(nxt.text, 64)
			if err != nil {
				return Literal{}, p.errorf("bad number %q", nxt.text)
			}
			return Literal{Num: -v, IsNum: true}, nil
		}
	}
	return Literal{}, p.errorf("expected literal, found %q", t.text)
}

func (p *parser) acceptCast() {
	if p.accept(tokPunct, "::") {
		p.accept(tokIdent, "") // cast target name, ignored
	}
}

// parseVectorLiteral parses '{0.1,0.2}' or '0.1,0.2' forms.
func parseVectorLiteral(s string) ([]float32, bool) {
	trimmed := strings.TrimSpace(s)
	trimmed = strings.TrimPrefix(trimmed, "{")
	trimmed = strings.TrimSuffix(trimmed, "}")
	trimmed = strings.TrimPrefix(trimmed, "[")
	trimmed = strings.TrimSuffix(trimmed, "]")
	if trimmed == "" {
		return nil, false
	}
	parts := strings.Split(trimmed, ",")
	out := make([]float32, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 32)
		if err != nil {
			return nil, false
		}
		out[i] = float32(v)
	}
	return out, true
}

func (p *parser) parseCreateIndex() (Stmt, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "on"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "using"); err != nil {
		return nil, err
	}
	amName, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	opts := map[string]string{}
	if p.accept(tokIdent, "with") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			key, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			val := p.cur()
			if val.kind != tokNumber && val.kind != tokString && val.kind != tokIdent {
				return nil, p.errorf("bad option value %q", val.text)
			}
			p.pos++
			opts[key.text] = val.text
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	return &CreateIndexStmt{Name: name.text, Table: table.text, AM: amName.text, Column: col.text, Options: opts}, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	sel := &SelectStmt{Limit: -1}
	// target list
	if p.accept(tokIdent, "count") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		sel.CountStar = true
	} else {
		// "*" may appear as a target-list element alongside named columns
		// ("SELECT *, distance FROM ..."): resolveColumns expands it in
		// place, and the cluster router relies on the form to append the
		// distance pseudo-column to star queries it scatters.
		for {
			if p.accept(tokPunct, "*") {
				sel.Columns = append(sel.Columns, "*")
			} else {
				col, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				sel.Columns = append(sel.Columns, col.text)
			}
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	sel.Table = table.text

	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	sel.Where = where

	if p.accept(tokIdent, "order") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "<->"); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if !lit.IsVec {
			return nil, p.errorf("ORDER BY %s <-> expects a vector literal", col.text)
		}
		sel.OrderCol, sel.QueryVec = col.text, lit.Vec
		p.accept(tokIdent, "asc")
	}

	if p.accept(tokIdent, "limit") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		sel.Limit, sel.HasLimit = v, true
	}
	return sel, nil
}

// condOps is the closed set of comparison operators a WHERE condition
// accepts; "<>" is normalized to "!=" at parse time.
var condOps = []string{"=", "!=", "<>", "<=", ">=", "<", ">"}

// parseCond parses one `col op literal` comparison.
func (p *parser) parseCond() (Cond, error) {
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return Cond{}, err
	}
	op := ""
	for _, cand := range condOps {
		if p.accept(tokPunct, cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return Cond{}, p.errorf("expected a comparison operator after %q, found %q", col.text, p.cur().text)
	}
	if op == "<>" {
		op = "!="
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Col: col.text, Op: op, Val: lit}, nil
}

func (p *parser) parseSet() (Stmt, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "=") {
		p.accept(tokIdent, "to")
	}
	val := p.cur()
	if val.kind != tokNumber && val.kind != tokString && val.kind != tokIdent {
		return nil, p.errorf("bad SET value %q", val.text)
	}
	p.pos++
	return &SetStmt{Name: name.text, Value: val.text}, nil
}
