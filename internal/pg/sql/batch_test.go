package sql

import (
	"strings"
	"testing"
)

func TestBatchSettingsValidation(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{
		"SET batch_window = -1",
		"SET batch_window = 1000001",
		"SET batch_window = soon",
		"SET batch_max = 0",
		"SET batch_max = -4",
		"SET batch_max = 1025",
		"SET batch_max = many",
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("accepted invalid setting: %s", q)
		}
	}
	mustExec(t, s, "SET batch_window = 250")
	if res := mustExec(t, s, "SHOW batch_window"); res.Rows[0][0].(string) != "250" {
		t.Errorf("SHOW batch_window = %v", res.Rows[0][0])
	}
	mustExec(t, s, "SET batch_max = 64")
	if res := mustExec(t, s, "SHOW batch_max"); res.Rows[0][0].(string) != "64" {
		t.Errorf("SHOW batch_max = %v", res.Rows[0][0])
	}
}

func TestBatchSettingsInShowAll(t *testing.T) {
	s := newSession(t)
	res := mustExec(t, s, "SHOW ALL")
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].(string)] = row[1].(string)
	}
	if got[BatchWindowSetting] != "0" {
		t.Errorf("default %s = %q, want 0 (off)", BatchWindowSetting, got[BatchWindowSetting])
	}
	if got[BatchMaxSetting] != "32" {
		t.Errorf("default %s = %q, want 32", BatchMaxSetting, got[BatchMaxSetting])
	}
}

func TestEffectiveSetting(t *testing.T) {
	s := newSession(t)
	if v := s.EffectiveSetting(BatchWindowSetting); v != "0" {
		t.Errorf("default effective batch_window = %q", v)
	}
	mustExec(t, s, "SET batch_window = 400")
	if v := s.EffectiveSetting(BatchWindowSetting); v != "400" {
		t.Errorf("effective batch_window after SET = %q", v)
	}
	if v := s.EffectiveSetting("no_such_knob"); v != "" {
		t.Errorf("unknown knob effective = %q, want empty", v)
	}
}

// TestExplainBatchable checks EXPLAIN surfaces the coalescing verdict:
// batchable index scans report their group key; unbatchable shapes
// report the reason.
func TestExplainBatchable(t *testing.T) {
	s := newSession(t)
	loadVectors(t, s, 300)
	mustExec(t, s, "CREATE INDEX b_idx ON t USING ivfflat (vec) WITH (clusters = 16, sample_ratio = 1, seed = 1)")
	planText := func(q string) string {
		res := mustExec(t, s, q)
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].(string))
			b.WriteByte('\n')
		}
		return b.String()
	}

	plan := planText("EXPLAIN SELECT id FROM t ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 3")
	if !strings.Contains(plan, "Batchable: yes (group t|vec|ivfflat|none|d=4|") {
		t.Errorf("index scan not reported batchable with its group key:\n%s", plan)
	}

	plan = planText("EXPLAIN SELECT id FROM t ORDER BY vec <-> '{5, 5, 0, 0}'")
	if !strings.Contains(plan, "Batchable: no (no LIMIT)") {
		t.Errorf("missing LIMIT not reported:\n%s", plan)
	}

	mustExec(t, s, "SET threads = 4")
	plan = planText("EXPLAIN SELECT id FROM t ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 3")
	if !strings.Contains(plan, "Batchable: no (threads > 1)") {
		t.Errorf("threads > 1 not reported:\n%s", plan)
	}
	mustExec(t, s, "SET threads = 1")

	mustExec(t, s, "SET filter_strategy = post")
	plan = planText("EXPLAIN SELECT id FROM t WHERE id < 200 ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 3")
	if !strings.Contains(plan, "Batchable: no (post-filter strategy)") {
		t.Errorf("post-filter not reported:\n%s", plan)
	}
	mustExec(t, s, "SET filter_strategy = pre")
	plan = planText("EXPLAIN SELECT id FROM t WHERE id < 200 ORDER BY vec <-> '{5, 5, 0, 0}' LIMIT 3")
	if !strings.Contains(plan, "Batchable: yes (group t|vec|exact|pre-filter|d=4|") {
		t.Errorf("pre-filter exact group not reported batchable:\n%s", plan)
	}
}

// TestGroupKeyReflectsEffectiveSettings checks two sessions whose SETs
// differ only cosmetically (explicit default vs unset) produce equal
// keys, while a real difference separates them.
func TestGroupKeyReflectsEffectiveSettings(t *testing.T) {
	d := newSession(t) // session A on its own db
	loadVectors(t, d, 100)
	key := func(s *Session) string {
		_, q, err := s.ExecuteOrPlan("SELECT id FROM t ORDER BY vec <-> '{1, 1, 0, 0}' LIMIT 3")
		if err != nil {
			t.Fatal(err)
		}
		return q.GroupKey()
	}
	base := key(d)
	mustExec(t, d, "SET nprobe = 20") // explicit default
	if k := key(d); k != base {
		t.Errorf("explicit default changed the group key:\n%s\nvs\n%s", base, k)
	}
	mustExec(t, d, "SET nprobe = 7")
	if k := key(d); k == base {
		t.Error("different nprobe kept the same group key")
	}
}
