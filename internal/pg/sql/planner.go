package sql

import (
	"fmt"
	"strconv"
	"strings"

	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
)

// planner.go is the filtered-kNN planning seam: it compiles the parsed
// WHERE clause against the table schema, estimates its selectivity from
// the heap's tuple reservoir, and picks one of three execution
// strategies for `WHERE ... ORDER BY vec <-> q LIMIT k`:
//
//   - pre-filter: predicate-pushed sequential scan + exact bounded
//     top-k over the survivors. Exact; cost ~ one heap pass, distance
//     math only on matching rows. Wins when few rows match.
//   - post-filter: index kNN with over-fetch k' = k·α, dropping
//     non-matching hits and refilling (k' doubles) until k survive or
//     the index is exhausted. Wins when most rows match.
//   - in-traversal: the predicate rides into the access method
//     (am.FilteredIndex) so non-matching tuples never enter the result
//     heap — HNSW beam search and IVF list scans skip them in place.
//     Wins at middling selectivity, where post-filter over-fetches and
//     pre-filter still pays a full heap pass.

// FilterStrategy is how a filtered vector search executes.
type FilterStrategy int

const (
	// FilterNone means the query has no predicate.
	FilterNone FilterStrategy = iota
	// FilterPre is the predicate-pushed exact scan.
	FilterPre
	// FilterPost is index kNN with over-fetch and refill.
	FilterPost
	// FilterInTraversal threads the predicate into the index traversal.
	FilterInTraversal
)

func (f FilterStrategy) String() string {
	switch f {
	case FilterPre:
		return "pre-filter"
	case FilterPost:
		return "post-filter"
	case FilterInTraversal:
		return "in-traversal"
	}
	return "none"
}

// Selectivity thresholds of the auto policy. Below Low a predicate is
// selective enough that scanning only matching rows beats any index
// walk; at and above High the index's top-k is barely thinned, so plain
// over-fetch wins; in between, in-traversal filtering avoids both the
// full heap pass and the over-fetch amplification.
const (
	selLowThreshold  = 0.1
	selHighThreshold = 0.5
)

// compiledCond is one schema-resolved comparison.
type compiledCond struct {
	col int
	op  string
	val Literal
}

// compiledPred is the WHERE clause bound to column ordinals.
type compiledPred struct {
	conds []compiledCond
	src   []Cond // retained for rendering (EXPLAIN)
}

// compilePred resolves every condition's column against the schema,
// returning nil for an empty predicate. Unknown columns fail with the
// same "sql: no column" error on every path — the silent-drop bug let
// the vector path skip this entirely.
func compilePred(conds []Cond, schema heap.Schema) (*compiledPred, error) {
	if len(conds) == 0 {
		return nil, nil
	}
	cp := &compiledPred{src: conds}
	for _, c := range conds {
		i := schema.ColIndex(c.Col)
		if i < 0 {
			return nil, fmt.Errorf("sql: no column %q", c.Col)
		}
		cp.conds = append(cp.conds, compiledCond{col: i, op: c.Op, val: c.Val})
	}
	return cp, nil
}

// eval applies the AND chain to one decoded row.
func (cp *compiledPred) eval(vals []any) bool {
	for _, c := range cp.conds {
		if !litCompare(c.op, c.val, vals[c.col]) {
			return false
		}
	}
	return true
}

// String renders the predicate in the dialect's syntax ("price < 10 AND
// cat = 'x'") for EXPLAIN output.
func (cp *compiledPred) String() string {
	var b strings.Builder
	for i, c := range cp.src {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.Col)
		b.WriteByte(' ')
		b.WriteString(c.Op)
		b.WriteByte(' ')
		b.WriteString(renderLiteral(c.Val))
	}
	return b.String()
}

// renderLiteral formats one literal the way the parser would accept it
// back.
func renderLiteral(l Literal) string {
	switch {
	case l.IsNull:
		return "NULL"
	case l.IsStr:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	default:
		return strconv.FormatFloat(l.Num, 'g', -1, 64)
	}
}

// litCompare evaluates `v op lit`. Numeric columns compare as float64
// against numeric literals; text columns compare lexicographically
// against string literals. A type mismatch (or NULL) satisfies nothing,
// mirroring SQL's unknown-comparison semantics.
func litCompare(op string, lit Literal, v any) bool {
	switch val := v.(type) {
	case int32:
		return lit.IsNum && cmpOrd(op, float64(val), lit.Num)
	case int64:
		return lit.IsNum && cmpOrd(op, float64(val), lit.Num)
	case float32:
		return lit.IsNum && cmpOrd(op, float64(val), lit.Num)
	case string:
		return lit.IsStr && cmpOrd(op, strings.Compare(val, lit.Str), 0)
	}
	return false
}

// cmpOrd applies a comparison operator to an ordered pair.
func cmpOrd[T int | float64](op string, a, b T) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// estimateSelectivity returns the fraction of the table's tuple
// reservoir satisfying the predicate. An empty reservoir (empty table)
// reports 1 — with nothing to thin, every strategy degenerates anyway.
func estimateSelectivity(tbl *heap.Table, cp *compiledPred) (float64, error) {
	rows, err := tbl.Sample()
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 1, nil
	}
	match := 0
	for _, vals := range rows {
		if cp.eval(vals) {
			match++
		}
	}
	return float64(match) / float64(len(rows)), nil
}

// filterPlan is the planner's decision for one filtered vector query.
type filterPlan struct {
	strategy    FilterStrategy
	selectivity float64 // estimated; meaningful when strategy != FilterNone
	forced      bool    // SET filter_strategy overrode the estimate
}

// FilterStrategySetting and FilterOverfetchSetting are the session knobs
// steering filtered search: the former forces a strategy (auto | pre |
// post | intraversal), the latter sets the post-filter over-fetch
// multiplier α in k' = k·α.
const (
	FilterStrategySetting  = "filter_strategy"
	FilterOverfetchSetting = "filter_overfetch"
)

// planFilter picks the execution strategy for st's predicate. idx may be
// nil (no index on the ORDER BY column), which leaves only the exact
// pre-filter path. A forced in-traversal choice silently falls back to
// post-filter when the AM cannot filter in traversal; EXPLAIN reports
// the strategy actually planned.
func (s *Session) planFilter(tbl *heap.Table, idx am.Index, cp *compiledPred) (filterPlan, error) {
	if cp == nil {
		return filterPlan{strategy: FilterNone}, nil
	}
	sel, err := estimateSelectivity(tbl, cp)
	if err != nil {
		return filterPlan{}, err
	}
	_, inTraversalOK := idx.(am.FilteredIndex)
	switch s.settings[FilterStrategySetting] {
	case "pre":
		return filterPlan{strategy: FilterPre, selectivity: sel, forced: true}, nil
	case "post":
		if idx == nil {
			return filterPlan{strategy: FilterPre, selectivity: sel, forced: true}, nil
		}
		return filterPlan{strategy: FilterPost, selectivity: sel, forced: true}, nil
	case "intraversal":
		if !inTraversalOK {
			if idx == nil {
				return filterPlan{strategy: FilterPre, selectivity: sel, forced: true}, nil
			}
			return filterPlan{strategy: FilterPost, selectivity: sel, forced: true}, nil
		}
		return filterPlan{strategy: FilterInTraversal, selectivity: sel, forced: true}, nil
	}
	// auto
	switch {
	case idx == nil || sel < selLowThreshold:
		return filterPlan{strategy: FilterPre, selectivity: sel}, nil
	case sel < selHighThreshold && inTraversalOK:
		return filterPlan{strategy: FilterInTraversal, selectivity: sel}, nil
	default:
		return filterPlan{strategy: FilterPost, selectivity: sel}, nil
	}
}

// predicateFor compiles cp into an am.Predicate resolving TIDs through
// the heap, memoizing per-TID verdicts (graph traversals revisit, and
// the post-filter refill loop re-sees earlier hits). The visibility
// check rides along: a dead tuple satisfies no predicate, so a stale
// index TID is filtered out rather than resolved.
func predicateFor(tbl *heap.Table, cp *compiledPred) am.Predicate {
	schema := tbl.Schema()
	cache := make(map[heap.TID]bool)
	return func(tid heap.TID) (bool, error) {
		if ok, seen := cache[tid]; seen {
			return ok, nil
		}
		var ok bool
		visible, err := tbl.GetVisible(tid, func(tup []byte) error {
			vals, err := schema.Decode(tup)
			if err != nil {
				return err
			}
			ok = cp.eval(vals)
			return nil
		})
		if err != nil {
			return false, err
		}
		ok = ok && visible
		cache[tid] = ok
		return ok, nil
	}
}
