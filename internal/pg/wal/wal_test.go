package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), []byte("bravo"), bytes.Repeat([]byte{7}, 1000)}
	var lsns []uint64
	for i, pl := range payloads {
		lsn, err := l.Append(uint32(i), uint32(i*10), pl)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// LSNs are byte positions: strictly increasing.
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not increasing: %v", lsns)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i, r := range got {
		if r.Rel != uint32(i) || r.Blk != uint32(i*10) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.LSN != lsns[i] {
			t.Fatalf("record %d LSN %d, want %d", i, r.LSN, lsns[i])
		}
	}
}

func TestFlushToIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(1, 2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.FlushTo(lsn); err != nil {
		t.Fatal(err)
	}
	// Already durable: must be a no-op, not an error.
	if err := l.FlushTo(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushTo(lsn - 1); err != nil {
		t.Fatal(err)
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(1, 1, []byte("complete"))
	l.Append(2, 2, []byte("will be torn"))
	l.Sync()
	l.Close()

	// Truncate mid-way through the second record.
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-4); err != nil {
		t.Fatal(err)
	}
	var count int
	if err := Replay(path, func(Record) error { count++; return nil }); err != nil {
		t.Fatalf("torn tail should replay cleanly, got %v", err)
	}
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (the complete one)", count)
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(1, 1, []byte("aaaaaaaa"))
	l.Append(2, 2, []byte("bbbbbbbb"))
	l.Sync()
	l.Close()

	// Flip a payload byte of the FIRST record.
	raw, _ := os.ReadFile(path)
	raw[recordHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err := Replay(path, func(Record) error { return nil })
	if err == nil {
		t.Fatal("corrupted record replayed without error")
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(1, 0, []byte("first"))
	l.Sync()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(1, 0, []byte("second"))
	l2.Sync()
	l2.Close()

	var got []string
	Replay(path, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	})
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("replay after reopen: %v", got)
	}
}
