// Package wal implements a minimal physical write-ahead log: each record
// carries a full or partial page image for one (relation, block), records
// are CRC-protected, and LSNs are byte positions in the log — the same
// convention PostgreSQL uses. The buffer pool calls FlushTo before
// writing back a dirty page (WAL-before-data), and Replay restores pages
// after a crash.
//
// The paper's benchmarks run with WAL disabled (as its in-memory analysis
// assumes); the log exists because a credible relational substrate needs
// durability, and the durability tests exercise it.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// record header: lsn is implicit (offset); layout:
//
//	u32 payloadLen | u32 rel | u32 blk | u32 crc | payload...
const recordHeaderSize = 16

// ErrCorrupt is returned by Replay when a record fails its CRC; replay
// stops at the last valid record, mirroring recovery semantics.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one replayable log entry.
type Record struct {
	LSN     uint64 // position of the record end (the LSN to flush to)
	Rel     uint32
	Blk     uint32
	Payload []byte
}

// Log is an append-only write-ahead log over a single file.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	writePos uint64 // next append position
	flushPos uint64 // durably synced position
}

// Open creates or appends to the log at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriterSize(f, 1<<16), writePos: uint64(info.Size()), flushPos: uint64(info.Size())}, nil
}

// Append logs a page image for (rel, blk) and returns the record's LSN.
// The record is buffered; durability requires FlushTo (or Sync).
func (l *Log) Append(rel, blk uint32, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], rel)
	binary.LittleEndian.PutUint32(hdr[8:], blk)
	crc := crc32.ChecksumIEEE(hdr[:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[12:], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, err
	}
	l.writePos += uint64(recordHeaderSize + len(payload))
	return l.writePos, nil
}

// FlushTo makes the log durable up to at least lsn. It satisfies
// buffer.WALFlusher.
func (l *Log) FlushTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.flushPos {
		return nil
	}
	return l.syncLocked()
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.flushPos = l.writePos
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay streams every valid record to fn in log order. It stops cleanly
// at a truncated tail (torn final record) and returns ErrCorrupt for a
// mid-log CRC failure.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var pos uint64
	var hdr [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header: stop replay
			}
			return err
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		rel := binary.LittleEndian.Uint32(hdr[4:])
		blk := binary.LittleEndian.Uint32(hdr[8:])
		wantCRC := binary.LittleEndian.Uint32(hdr[12:])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload: record never committed
			}
			return err
		}
		crc := crc32.ChecksumIEEE(hdr[:12])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != wantCRC {
			return fmt.Errorf("%w at offset %d", ErrCorrupt, pos)
		}
		pos += uint64(recordHeaderSize) + uint64(plen)
		if err := fn(Record{LSN: pos, Rel: rel, Blk: blk, Payload: payload}); err != nil {
			return err
		}
	}
}
