package catalog

import (
	"errors"
	"path/filepath"
	"testing"

	"vecstudy/internal/pg/heap"
)

var schema = heap.Schema{Cols: []heap.Column{
	{Name: "id", Type: heap.Int4},
	{Name: "vec", Type: heap.Float4Array},
}}

func TestAllocRelMonotonic(t *testing.T) {
	c := New()
	a, b := c.AllocRel(), c.AllocRel()
	if b <= a {
		t.Errorf("AllocRel not monotonic: %d then %d", a, b)
	}
}

func TestTableLifecycle(t *testing.T) {
	c := New()
	rel := c.AllocRel()
	if _, err := c.CreateTable("t", rel, schema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", c.AllocRel(), schema); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table: %v", err)
	}
	tm, err := c.Table("t")
	if err != nil || tm.Rel != rel {
		t.Fatalf("Table: %+v, %v", tm, err)
	}
	if _, err := c.Table("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	if len(c.Tables()) != 1 {
		t.Errorf("Tables() = %d entries", len(c.Tables()))
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := New()
	c.CreateTable("t", c.AllocRel(), schema)
	rel := c.AllocRel()
	if _, err := c.CreateIndex("i", rel, "t", "vec", "ivfflat", map[string]string{"clusters": "8"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("i", c.AllocRel(), "t", "vec", "hnsw", nil); !errors.Is(err, ErrIndexExists) {
		t.Errorf("duplicate index: %v", err)
	}
	if _, err := c.CreateIndex("j", c.AllocRel(), "missing", "vec", "hnsw", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("index on missing table: %v", err)
	}
	if _, err := c.CreateIndex("j", c.AllocRel(), "t", "nope", "hnsw", nil); !errors.Is(err, ErrColumnMissing) {
		t.Errorf("index on missing column: %v", err)
	}
	im, err := c.Index("i")
	if err != nil || im.AM != "ivfflat" || im.Options["clusters"] != "8" {
		t.Fatalf("Index: %+v, %v", im, err)
	}
	if got := c.IndexesOn("t"); len(got) != 1 {
		t.Errorf("IndexesOn = %d", len(got))
	}
	if err := c.DropIndex("i"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("i"); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("double drop: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	c.CreateTable("t", c.AllocRel(), schema)
	c.CreateIndex("i", c.AllocRel(), "t", "vec", "hnsw", map[string]string{"bnn": "16"})
	path := filepath.Join(t.TempDir(), "catalog.gob")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := loaded.Table("t")
	if err != nil || len(tm.Schema.Cols) != 2 {
		t.Fatalf("loaded table: %+v, %v", tm, err)
	}
	im, err := loaded.Index("i")
	if err != nil || im.Options["bnn"] != "16" {
		t.Fatalf("loaded index: %+v, %v", im, err)
	}
	// Rel allocation must continue past persisted IDs.
	if loaded.AllocRel() <= im.Rel {
		t.Error("AllocRel reused a persisted relation ID")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("loaded a missing catalog")
	}
}
