// Package catalog tracks the generalized engine's schema objects —
// tables and indexes — and allocates relation IDs, playing the role of
// pg_class/pg_index. It persists itself with encoding/gob so a database
// directory can be reopened.
package catalog

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sync"

	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
)

// Errors returned by catalog operations.
var (
	ErrTableExists   = errors.New("catalog: table already exists")
	ErrIndexExists   = errors.New("catalog: index already exists")
	ErrNoSuchTable   = errors.New("catalog: no such table")
	ErrNoSuchIndex   = errors.New("catalog: no such index")
	ErrColumnMissing = errors.New("catalog: no such column")
)

// TableMeta describes one table.
type TableMeta struct {
	Name   string
	Rel    buffer.RelID
	Schema heap.Schema
}

// IndexMeta describes one index.
type IndexMeta struct {
	Name    string
	Rel     buffer.RelID
	Table   string
	Column  string
	AM      string // access method name (ivfflat, ivfpq, hnsw, ...)
	Options map[string]string
}

// Catalog is the schema registry. All methods are safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*TableMeta
	indexes map[string]*IndexMeta
	nextRel buffer.RelID
}

// New returns an empty catalog. Relation IDs start at 1.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableMeta),
		indexes: make(map[string]*IndexMeta),
		nextRel: 1,
	}
}

// AllocRel hands out a fresh relation ID.
func (c *Catalog) AllocRel() buffer.RelID {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel := c.nextRel
	c.nextRel++
	return rel
}

// CreateTable registers a table.
func (c *Catalog) CreateTable(name string, rel buffer.RelID, schema heap.Schema) (*TableMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	tm := &TableMeta{Name: name, Rel: rel, Schema: schema}
	c.tables[name] = tm
	return tm, nil
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*TableMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tm, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return tm, nil
}

// Tables returns all table metadata.
func (c *Catalog) Tables() []*TableMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableMeta, 0, len(c.tables))
	for _, tm := range c.tables {
		out = append(out, tm)
	}
	return out
}

// CreateIndex registers an index over an existing table and column.
func (c *Catalog) CreateIndex(name string, rel buffer.RelID, table, column, amName string, opts map[string]string) (*IndexMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.indexes[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	tm, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if tm.Schema.ColIndex(column) < 0 {
		return nil, fmt.Errorf("%w: %q.%q", ErrColumnMissing, table, column)
	}
	im := &IndexMeta{Name: name, Rel: rel, Table: table, Column: column, AM: amName, Options: opts}
	c.indexes[name] = im
	return im, nil
}

// Index looks an index up by name.
func (c *Catalog) Index(name string) (*IndexMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	im, ok := c.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	return im, nil
}

// IndexesOn returns the indexes covering the given table.
func (c *Catalog) IndexesOn(table string) []*IndexMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IndexMeta
	for _, im := range c.indexes {
		if im.Table == table {
			out = append(out, im)
		}
	}
	return out
}

// DropIndex removes an index entry.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	delete(c.indexes, name)
	return nil
}

// snapshot is the gob wire form.
type snapshot struct {
	Tables  map[string]*TableMeta
	Indexes map[string]*IndexMeta
	NextRel buffer.RelID
}

// Save persists the catalog to path.
func (c *Catalog) Save(path string) error {
	c.mu.RLock()
	snap := snapshot{Tables: c.tables, Indexes: c.indexes, NextRel: c.nextRel}
	c.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("catalog: encode: %w", err)
	}
	return f.Close()
}

// Load reads a catalog previously written by Save.
func Load(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	c := New()
	if snap.Tables != nil {
		c.tables = snap.Tables
	}
	if snap.Indexes != nil {
		c.indexes = snap.Indexes
	}
	if snap.NextRel > 0 {
		c.nextRel = snap.NextRel
	}
	return c, nil
}
