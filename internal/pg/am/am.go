// Package am defines the index access-method contract of the generalized
// engine, mirroring PostgreSQL's IndexAmRoutine: an index is built over a
// heap table's vector column, lives in its own relation of slotted pages
// reached through the shared buffer pool, and answers ordered scans by
// returning heap TIDs with distances.
//
// PASE's three methods (ivfflat, ivfpq, hnsw) and the pgvector-style
// baseline register themselves here; the SQL planner resolves `USING
// <am>` clauses against this registry.
package am

import (
	"fmt"
	"sort"
	"sync"

	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/prof"
)

// Result is one index-scan hit: the heap tuple to fetch and its distance
// to the query vector.
type Result struct {
	TID  heap.TID
	Dist float32
}

// BuildContext carries everything an AM needs to build an index.
type BuildContext struct {
	Pool   *buffer.Pool // shared buffer pool
	Rel    buffer.RelID // the index's own relation (already registered)
	Table  *heap.Table  // the indexed heap table
	VecCol int          // ordinal of the Float4Array column
	Dim    int          // vector dimensionality (from the first tuple or DDL)
	Opts   map[string]string
	Prof   *prof.Profile // optional breakdown instrumentation
}

// Index is a built index ready for inserts and scans.
type Index interface {
	// AM returns the access-method name.
	AM() string
	// Insert adds one (vector, tid) entry.
	Insert(v []float32, tid heap.TID) error
	// Search returns the k nearest entries, ascending by distance.
	// params carries scan-time knobs (nprobe, efs, threads).
	Search(query []float32, k int, params map[string]string) ([]Result, error)
	// SizeBytes reports the on-page footprint of the index relation.
	SizeBytes() (int64, error)
}

// Predicate decides whether the heap tuple at tid satisfies the query's
// WHERE clause. The executor compiles it from the parsed predicate; the
// access methods call it during traversal so non-matching tuples never
// enter the result heap (in-traversal filtering). Implementations must
// be safe for the single-goroutine traversal that invokes them and are
// expected to memoize per-TID verdicts, since graph searches revisit.
type Predicate func(tid heap.TID) (bool, error)

// FilteredIndex is the optional extension an access method implements
// when it can evaluate a predicate inside its own traversal — the
// in-traversal strategy of selectivity-adaptive filtered kNN. AMs that
// do not implement it are served by the executor's pre- or post-filter
// paths instead.
type FilteredIndex interface {
	Index
	// SearchFiltered returns the k nearest entries whose tuples satisfy
	// pred, ascending by distance. A nil pred degenerates to Search.
	SearchFiltered(query []float32, k int, params map[string]string, pred Predicate) ([]Result, error)
}

// BatchIndex is the optional extension an access method implements when
// it can answer several queries as one multi-query probe — the serving
// side of the paper's RC#1 (batched SGEMM-shaped scoring beats per-pair
// loops). The query coalescer (internal/batch) feeds it concurrently-
// arrived queries against the same index so centroid scoring is batched
// and bucket page pins are amortized across the batch.
//
// The contract is strict: MultiSearch(queries, ks, params, preds)[i]
// must be byte-identical to what the solo call for query i would return
// (Search when preds is nil or preds[i] is nil, SearchFiltered
// otherwise, with the same params). preds is either nil or parallel to
// queries; ks is parallel to queries. Implementations may assume the
// single-goroutine calling discipline of Search.
type BatchIndex interface {
	Index
	MultiSearch(queries [][]float32, ks []int, params map[string]string, preds []Predicate) ([][]Result, error)
}

// MutableIndex is the optional extension an access method implements
// when it supports tombstone deletion and background maintenance — the
// index side of the dynamic-data subsystem. The standard VDBMS design
// (see the survey in PAPERS.md) is reproduced here: Delete marks the
// entry dead synchronously (search must stop returning it immediately),
// and Maintain later reclaims the tombstones — compacting IVF bucket
// chains, or repairing the HNSW graph around dead nodes and unlinking
// them.
type MutableIndex interface {
	Index
	// Delete tombstones the entry for (v, tid). v is the indexed vector
	// the entry was inserted with; bucketed AMs re-derive the owning
	// bucket from it deterministically. Deleting an entry the index does
	// not hold is a no-op (false, nil).
	Delete(v []float32, tid heap.TID) (bool, error)
	// DeadCount reports tombstoned entries not yet reclaimed by Maintain.
	DeadCount() int64
	// Maintain reclaims tombstones (IVF list compaction, HNSW repair) and
	// returns how many entries it removed. The caller must hold the
	// engine's statement gate exclusively.
	Maintain() (int64, error)
}

// BuildFunc constructs an index over the table's current contents.
type BuildFunc func(ctx *BuildContext) (Index, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]BuildFunc)
)

// Register installs an access method under name. It panics on duplicate
// registration (a programming error).
func Register(name string, fn BuildFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("am: duplicate access method %q", name))
	}
	registry[name] = fn
}

// Lookup resolves an access method by name.
func Lookup(name string) (BuildFunc, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("am: unknown access method %q", name)
	}
	return fn, nil
}

// Names returns the registered access-method names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
