// Package heap implements PostgreSQL-style heap tables: tuples packed
// into slotted pages, addressed by TID (block number, offset number), and
// always reached through the shared buffer pool.
//
// The generalized engine stores its base table here — `CREATE TABLE T (id
// int, vec float[])` — and its index access methods return TIDs that the
// executor resolves through Table.Get. That resolution path (pin page →
// locate line pointer → decode tuple) is exactly the "Tuple Access" cost
// the paper's Table V and Fig 8 break out under RC#2.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/wal"
	"vecstudy/internal/prof"
)

// TID addresses one tuple: (block number, 1-based offset number), like
// PostgreSQL's ItemPointer.
type TID struct {
	Blk uint32
	Off uint16
}

// String renders the TID in PostgreSQL's "(blk,off)" form.
func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Blk, t.Off) }

// Pack encodes the TID into 6 bytes at b.
func (t TID) Pack(b []byte) {
	binary.LittleEndian.PutUint32(b, t.Blk)
	binary.LittleEndian.PutUint16(b[4:], t.Off)
}

// UnpackTID decodes a TID packed by Pack.
func UnpackTID(b []byte) TID {
	return TID{Blk: binary.LittleEndian.Uint32(b), Off: binary.LittleEndian.Uint16(b[4:])}
}

// PackedTIDSize is the on-page footprint of a packed TID.
const PackedTIDSize = 6

// ColType enumerates supported column types.
type ColType int

// Supported column types.
const (
	Int4 ColType = iota
	Int8
	Float4
	Text
	Float4Array // the vector type, PASE's float[]
)

// String implements fmt.Stringer for schema printing.
func (c ColType) String() string {
	switch c {
	case Int4:
		return "int"
	case Int8:
		return "bigint"
	case Float4:
		return "real"
	case Text:
		return "text"
	case Float4Array:
		return "float[]"
	default:
		return fmt.Sprintf("coltype(%d)", int(c))
	}
}

// Column is one schema column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table's tuple layout.
type Schema struct {
	Cols []Column
}

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Encode serializes one row. Values must match the schema's types:
// int32/int64/float32/string/[]float32.
func (s Schema) Encode(values []any) ([]byte, error) {
	if len(values) != len(s.Cols) {
		return nil, fmt.Errorf("heap: %d values for %d columns", len(values), len(s.Cols))
	}
	size := 0
	for i, c := range s.Cols {
		switch c.Type {
		case Int4, Float4:
			size += 4
		case Int8:
			size += 8
		case Text:
			v, ok := values[i].(string)
			if !ok {
				return nil, typeErr(c, values[i])
			}
			size += 4 + len(v)
		case Float4Array:
			v, ok := values[i].([]float32)
			if !ok {
				return nil, typeErr(c, values[i])
			}
			size += 4 + 4*len(v)
		}
	}
	out := make([]byte, 0, size)
	var scratch [8]byte
	for i, c := range s.Cols {
		switch c.Type {
		case Int4:
			v, ok := values[i].(int32)
			if !ok {
				return nil, typeErr(c, values[i])
			}
			binary.LittleEndian.PutUint32(scratch[:], uint32(v))
			out = append(out, scratch[:4]...)
		case Int8:
			v, ok := values[i].(int64)
			if !ok {
				return nil, typeErr(c, values[i])
			}
			binary.LittleEndian.PutUint64(scratch[:], uint64(v))
			out = append(out, scratch[:8]...)
		case Float4:
			v, ok := values[i].(float32)
			if !ok {
				return nil, typeErr(c, values[i])
			}
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			out = append(out, scratch[:4]...)
		case Text:
			v := values[i].(string)
			binary.LittleEndian.PutUint32(scratch[:], uint32(len(v)))
			out = append(out, scratch[:4]...)
			out = append(out, v...)
		case Float4Array:
			v := values[i].([]float32)
			binary.LittleEndian.PutUint32(scratch[:], uint32(len(v)))
			out = append(out, scratch[:4]...)
			for _, f := range v {
				binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
				out = append(out, scratch[:4]...)
			}
		}
	}
	return out, nil
}

func typeErr(c Column, v any) error {
	return fmt.Errorf("heap: column %q (%s): incompatible value %T", c.Name, c.Type, v)
}

// Decode deserializes one row into Go values.
func (s Schema) Decode(data []byte) ([]any, error) {
	out := make([]any, len(s.Cols))
	pos := 0
	for i, c := range s.Cols {
		switch c.Type {
		case Int4:
			if pos+4 > len(data) {
				return nil, errShortTuple(c)
			}
			out[i] = int32(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		case Int8:
			if pos+8 > len(data) {
				return nil, errShortTuple(c)
			}
			out[i] = int64(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		case Float4:
			if pos+4 > len(data) {
				return nil, errShortTuple(c)
			}
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		case Text:
			if pos+4 > len(data) {
				return nil, errShortTuple(c)
			}
			n := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if pos+n > len(data) {
				return nil, errShortTuple(c)
			}
			out[i] = string(data[pos : pos+n])
			pos += n
		case Float4Array:
			if pos+4 > len(data) {
				return nil, errShortTuple(c)
			}
			n := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if pos+4*n > len(data) {
				return nil, errShortTuple(c)
			}
			v := make([]float32, n)
			for j := range v {
				v[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*j:]))
			}
			out[i] = v
			pos += 4 * n
		}
	}
	return out, nil
}

func errShortTuple(c Column) error {
	return fmt.Errorf("heap: tuple too short decoding column %q", c.Name)
}

// VectorAt extracts the []float32 of a Float4Array column from an encoded
// tuple without decoding the other columns. The returned slice is a copy.
func (s Schema) VectorAt(data []byte, col int) ([]float32, error) {
	pos := 0
	for i := 0; i < col; i++ {
		switch s.Cols[i].Type {
		case Int4, Float4:
			pos += 4
		case Int8:
			pos += 8
		case Text, Float4Array:
			if pos+4 > len(data) {
				return nil, errShortTuple(s.Cols[i])
			}
			n := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if s.Cols[i].Type == Float4Array {
				n *= 4
			}
			pos += n
		}
	}
	if s.Cols[col].Type != Float4Array {
		return nil, fmt.Errorf("heap: column %d is %s, not float[]", col, s.Cols[col].Type)
	}
	if pos+4 > len(data) {
		return nil, errShortTuple(s.Cols[col])
	}
	n := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if pos+4*n > len(data) {
		return nil, errShortTuple(s.Cols[col])
	}
	v := make([]float32, n)
	for j := range v {
		v[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*j:]))
	}
	return v, nil
}

// Table is a heap table bound to a relation in a buffer pool.
type Table struct {
	pool   *buffer.Pool
	rel    buffer.RelID
	schema Schema

	mu      sync.Mutex
	lastBlk uint32 // insertion target hint
	hasBlk  bool
	ntuples int64
	ndead   int64 // dead line pointers awaiting vacuum

	sample sampler // reservoir of raw tuples for selectivity estimation

	wal  *wal.Log
	prof *prof.Profile
}

// SampleCap is the reservoir capacity of the per-table tuple sample the
// planner estimates predicate selectivity from (ANALYZE-style statistics
// maintained inline, PostgreSQL's default_statistics_target in spirit).
const SampleCap = 256

// sampler keeps a bounded uniform reservoir of raw tuples (Vitter's
// algorithm R) maintained on every insert and rebuilt by the restore
// scan on reopen. The seed is fixed so plan choices are reproducible.
type sampler struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rows [][]byte
	seen int64
}

func (s *sampler) add(tup []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(1))
	}
	s.seen++
	if len(s.rows) < SampleCap {
		s.rows = append(s.rows, append([]byte(nil), tup...))
		return
	}
	if j := s.rng.Int63n(s.seen); j < int64(len(s.rows)) {
		s.rows[j] = append(s.rows[j][:0], tup...)
	}
}

// drop down-weights the reservoir after a delete: the first byte-equal
// row (if sampled) is evicted and the population count shrinks, so the
// sample keeps tracking the live tuple distribution instead of drifting
// toward deleted data. A full rebuild (vacuum) restores exact uniformity.
func (s *sampler) drop(tup []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen > 0 {
		s.seen--
	}
	for i, r := range s.rows {
		if string(r) == string(tup) {
			last := len(s.rows) - 1
			s.rows[i] = s.rows[last]
			s.rows[last] = nil
			s.rows = s.rows[:last]
			return
		}
	}
}

// reset empties the reservoir (rebuild begins from a fresh, reproducible
// stream: same fixed seed as first construction).
func (s *sampler) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rand.New(rand.NewSource(1))
	s.rows = s.rows[:0]
	s.seen = 0
}

// Sample returns up to SampleCap rows decoded from the table's uniform
// tuple reservoir. The result is a fresh slice; an empty table yields
// nil.
func (t *Table) Sample() ([][]any, error) {
	t.sample.mu.Lock()
	raw := make([][]byte, len(t.sample.rows))
	for i, r := range t.sample.rows {
		raw[i] = append([]byte(nil), r...) // deep copy: add may recycle entries
	}
	t.sample.mu.Unlock()
	out := make([][]any, 0, len(raw))
	for _, tup := range raw {
		vals, err := t.schema.Decode(tup)
		if err != nil {
			return nil, err
		}
		out = append(out, vals)
	}
	return out, nil
}

// New binds a table to (pool, rel). The relation must be registered with
// the pool. Existing blocks are scanned to restore the tuple count.
func New(pool *buffer.Pool, rel buffer.RelID, schema Schema) (*Table, error) {
	t := &Table{pool: pool, rel: rel, schema: schema}
	nblocks, err := pool.NumBlocks(rel)
	if err != nil {
		return nil, err
	}
	if nblocks > 0 {
		t.lastBlk = nblocks - 1
		t.hasBlk = true
		if err := t.Scan(func(_ TID, tup []byte) (bool, error) {
			t.ntuples++
			t.sample.add(tup) // rebuild planner statistics on reopen
			return true, nil
		}); err != nil {
			return nil, err
		}
		// Restore the dead-tuple count too, so DeadFraction (the
		// auto-vacuum trigger) survives a reopen.
		for blk := uint32(0); blk < nblocks; blk++ {
			buf, err := pool.Pin(rel, blk)
			if err != nil {
				return nil, err
			}
			pg := buf.Page()
			for off := uint16(1); off <= pg.NumItems(); off++ {
				if pg.ItemIsDead(off) && pg.DeadSpace(off) > 0 {
					t.ndead++
				}
			}
			buf.Release()
		}
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Rel returns the relation ID.
func (t *Table) Rel() buffer.RelID { return t.rel }

// NTuples returns the number of live tuples.
func (t *Table) NTuples() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ntuples
}

// NDead returns the number of dead tuples not yet reclaimed by vacuum.
func (t *Table) NDead() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ndead
}

// DeadFraction returns the fraction of the table's tuples that are dead
// — the auto-vacuum trigger metric. An empty table reports 0.
func (t *Table) DeadFraction() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.ntuples + t.ndead
	if total == 0 {
		return 0
	}
	return float64(t.ndead) / float64(total)
}

// SetWAL enables logical WAL logging of inserts.
func (t *Table) SetWAL(l *wal.Log) { t.wal = l }

// SetProf attaches breakdown instrumentation to tuple accesses.
func (t *Table) SetProf(p *prof.Profile) { t.prof = p }

// Insert encodes and stores one row, returning its TID.
func (t *Table) Insert(values []any) (TID, error) {
	tup, err := t.schema.Encode(values)
	if err != nil {
		return TID{}, err
	}
	return t.InsertRaw(tup)
}

// InsertRaw stores a pre-encoded tuple.
func (t *Table) InsertRaw(tup []byte) (TID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hasBlk {
		// Pinning under t.mu is deliberate: the lock serializes AddItem
		// against lastBlk so two inserters cannot interleave slot
		// allocation on the same page. The paper's single-writer insert
		// path never contends here; a free-space map would be the real
		// fix if it ever did.
		//vetvec:locked-io
		buf, err := t.pool.Pin(t.rel, t.lastBlk)
		if err != nil {
			return TID{}, err
		}
		if off, err := buf.Page().AddItem(tup); err == nil {
			buf.MarkDirty()
			tid := TID{Blk: t.lastBlk, Off: off}
			buf.Release()
			t.ntuples++
			t.sample.add(tup)
			return tid, t.logInsert(tup)
		} else if !errors.Is(err, page.ErrPageFull) {
			buf.Release()
			return TID{}, err
		}
		buf.Release()
	}
	// Same rationale as the Pin above: t.mu keeps page extension and
	// lastBlk publication atomic with respect to other inserters.
	//vetvec:locked-io
	buf, blk, err := t.pool.NewPage(t.rel)
	if err != nil {
		return TID{}, err
	}
	page.Init(buf.Page(), 0)
	off, err := buf.Page().AddItem(tup)
	if err != nil {
		buf.Release()
		return TID{}, fmt.Errorf("heap: tuple does not fit an empty page: %w", err)
	}
	buf.MarkDirty()
	buf.Release()
	t.lastBlk, t.hasBlk = blk, true
	t.ntuples++
	t.sample.add(tup)
	return TID{Blk: blk, Off: off}, t.logInsert(tup)
}

func (t *Table) logInsert(tup []byte) error {
	if t.wal == nil {
		return nil
	}
	_, err := t.wal.Append(uint32(t.rel), 0, tup)
	return err
}

// Get pins the tuple's page and invokes fn with the raw tuple bytes. The
// slice is only valid inside fn. A dead tuple is an error here; search
// and executor paths that may race a DELETE must use GetVisible (the
// visibility check helper the vetvec deadvisibility rule enforces).
func (t *Table) Get(tid TID, fn func(tup []byte) error) error {
	ts := t.prof.Timer("tuple_access").Start()
	buf, err := t.pool.Pin(t.rel, tid.Blk)
	if err != nil {
		t.prof.Timer("tuple_access").Stop(ts)
		return err
	}
	item, err := buf.Page().Item(tid.Off)
	t.prof.Timer("tuple_access").Stop(ts)
	if err != nil {
		buf.Release()
		return fmt.Errorf("heap: %v: %w", tid, err)
	}
	err = fn(item)
	buf.Release()
	return err
}

// GetVector resolves the Float4Array column col of the tuple at tid.
func (t *Table) GetVector(tid TID, col int) ([]float32, error) {
	var v []float32
	err := t.Get(tid, func(tup []byte) error {
		var err error
		v, err = t.schema.VectorAt(tup, col)
		return err
	})
	return v, err
}

// GetVisible is the visibility-checked tuple access: it pins the tuple's
// page, checks the dead bit, and invokes fn only on a live tuple. The
// bool reports visibility — (false, nil) means the tuple is dead, which
// read paths must treat as "skip", never as an error. This is the only
// sanctioned way for AM and executor scan paths to read heap bytes by
// TID (enforced by vetvec's deadvisibility analyzer).
func (t *Table) GetVisible(tid TID, fn func(tup []byte) error) (bool, error) {
	err := t.Get(tid, fn)
	if errors.Is(err, page.ErrDeadItem) {
		return false, nil
	}
	return err == nil, err
}

// GetVectorVisible resolves a Float4Array column under the visibility
// check: a dead tuple reports (nil, false, nil).
func (t *Table) GetVectorVisible(tid TID, col int) ([]float32, bool, error) {
	var v []float32
	ok, err := t.GetVisible(tid, func(tup []byte) error {
		var err error
		v, err = t.schema.VectorAt(tup, col)
		return err
	})
	if err != nil || !ok {
		return nil, false, err
	}
	return v, true, nil
}

// Visible reports whether the tuple at tid is live. Unlike GetVisible it
// does not decode anything — predicate paths use it to drop dead TIDs
// cheaply.
func (t *Table) Visible(tid TID) (bool, error) {
	buf, err := t.pool.Pin(t.rel, tid.Blk)
	if err != nil {
		return false, err
	}
	defer buf.Release()
	pg := buf.Page()
	if tid.Off == 0 || tid.Off > pg.NumItems() {
		return false, fmt.Errorf("heap: %v: offset out of range", tid)
	}
	return !pg.ItemIsDead(tid.Off), nil
}

// Scan iterates all live tuples in TID order. fn returns false to stop.
func (t *Table) Scan(fn func(tid TID, tup []byte) (bool, error)) error {
	nblocks, err := t.pool.NumBlocks(t.rel)
	if err != nil {
		return err
	}
	for blk := uint32(0); blk < nblocks; blk++ {
		buf, err := t.pool.Pin(t.rel, blk)
		if err != nil {
			return err
		}
		pg := buf.Page()
		if !pg.IsInit() {
			buf.Release()
			continue
		}
		n := pg.NumItems()
		for off := uint16(1); off <= n; off++ {
			item, err := pg.Item(off)
			if err != nil {
				if errors.Is(err, page.ErrDeadItem) {
					continue
				}
				buf.Release()
				return err
			}
			keep, err := fn(TID{Blk: blk, Off: off}, item)
			if err != nil || !keep {
				buf.Release()
				return err
			}
		}
		buf.Release()
	}
	return nil
}

// Delete marks the tuple at tid dead and down-weights the planner's
// reservoir sample so selectivity estimates keep tracking live data.
// Deleting an already-dead tuple is a no-op (false, nil) so concurrent
// or replayed deletes stay idempotent.
func (t *Table) Delete(tid TID) (bool, error) {
	buf, err := t.pool.Pin(t.rel, tid.Blk)
	if err != nil {
		return false, err
	}
	pg := buf.Page()
	item, err := pg.Item(tid.Off)
	if err != nil {
		buf.Release()
		if errors.Is(err, page.ErrDeadItem) {
			return false, nil
		}
		return false, fmt.Errorf("heap: delete %v: %w", tid, err)
	}
	tup := append([]byte(nil), item...)
	if err := pg.DeleteItem(tid.Off); err != nil {
		buf.Release()
		return false, err
	}
	buf.MarkDirty()
	buf.Release()
	t.mu.Lock()
	t.ntuples--
	t.ndead++
	t.mu.Unlock()
	t.sample.drop(tup)
	return true, nil
}

// RebuildSample discards the reservoir and repopulates it from a full
// scan of the live tuples, restoring exact uniformity after churn.
func (t *Table) RebuildSample() error {
	t.sample.reset()
	return t.Scan(func(_ TID, tup []byte) (bool, error) {
		t.sample.add(tup)
		return true, nil
	})
}

// VacuumStats reports what one heap vacuum pass reclaimed.
type VacuumStats struct {
	DeadReclaimed  int64 // dead tuples whose space was freed
	BytesFreed     int64 // page bytes returned to free space
	PagesCompacted int64
}

// Vacuum reclaims the space of dead tuples page by page (page.Compact)
// and rebuilds the reservoir sample. Dead line pointers stay dead —
// TIDs are never reused, so a stale index entry can only ever resolve
// to "invisible", never to the wrong row. The caller must hold the
// engine's statement gate exclusively: Vacuum rewrites page internals
// that concurrent readers alias.
func (t *Table) Vacuum() (VacuumStats, error) {
	var st VacuumStats
	nblocks, err := t.pool.NumBlocks(t.rel)
	if err != nil {
		return st, err
	}
	for blk := uint32(0); blk < nblocks; blk++ {
		buf, err := t.pool.Pin(t.rel, blk)
		if err != nil {
			return st, err
		}
		pg := buf.Page()
		if !pg.IsInit() {
			buf.Release()
			continue
		}
		dead := int64(0)
		for off := uint16(1); off <= pg.NumItems(); off++ {
			if pg.ItemIsDead(off) && pg.DeadSpace(off) > 0 {
				dead++
			}
		}
		if dead > 0 {
			st.BytesFreed += int64(pg.Compact())
			st.DeadReclaimed += dead
			st.PagesCompacted++
			buf.MarkDirty()
		}
		buf.Release()
	}
	if err := t.RebuildSample(); err != nil {
		return st, err
	}
	t.mu.Lock()
	t.ndead = 0
	t.mu.Unlock()
	return st, nil
}
