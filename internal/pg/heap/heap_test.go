package heap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/storage"
)

var testSchema = Schema{Cols: []Column{
	{Name: "id", Type: Int4},
	{Name: "big", Type: Int8},
	{Name: "score", Type: Float4},
	{Name: "name", Type: Text},
	{Name: "vec", Type: Float4Array},
}}

func newTable(t *testing.T) *Table {
	t.Helper()
	pool, err := buffer.NewPool(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Register(1, storage.NewMemStore(4096)); err != nil {
		t.Fatal(err)
	}
	tbl, err := New(pool, 1, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func sampleRow(i int) []any {
	return []any{int32(i), int64(i) << 32, float32(i) / 2, fmt.Sprintf("row-%d", i), []float32{float32(i), -float32(i)}}
}

func TestTIDPackUnpack(t *testing.T) {
	f := func(blk uint32, off uint16) bool {
		var b [PackedTIDSize]byte
		tid := TID{Blk: blk, Off: off}
		tid.Pack(b[:])
		return UnpackTID(b[:]) == tid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	row := sampleRow(7)
	enc, err := testSchema.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := testSchema.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].(int32) != 7 || dec[1].(int64) != 7<<32 || dec[2].(float32) != 3.5 || dec[3].(string) != "row-7" {
		t.Errorf("decoded %v", dec)
	}
	v := dec[4].([]float32)
	if v[0] != 7 || v[1] != -7 {
		t.Errorf("vector %v", v)
	}
}

func TestEncodeTypeErrors(t *testing.T) {
	bad := [][]any{
		{int64(1), int64(1), float32(1), "x", []float32{1}}, // int64 for Int4
		{int32(1), "no", float32(1), "x", []float32{1}},     // string for Int8
		{int32(1), int64(1), float64(1), "x", []float32{1}}, // float64 for Float4
		{int32(1), int64(1), float32(1), 5, []float32{1}},   // int for Text
		{int32(1), int64(1), float32(1), "x", []float64{1}}, // wrong array type
		{int32(1), int64(1), float32(1), "x"},               // arity
	}
	for i, row := range bad {
		if _, err := testSchema.Encode(row); err == nil {
			t.Errorf("case %d: bad row encoded", i)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc, _ := testSchema.Encode(sampleRow(1))
	for _, cut := range []int{0, 3, 11, len(enc) - 1} {
		if _, err := testSchema.Decode(enc[:cut]); err == nil {
			t.Errorf("decoded truncated tuple of %d bytes", cut)
		}
	}
}

func TestVectorAtSkipsColumns(t *testing.T) {
	enc, _ := testSchema.Encode(sampleRow(9))
	v, err := testSchema.VectorAt(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 9 || v[1] != -9 {
		t.Errorf("VectorAt = %v", v)
	}
	if _, err := testSchema.VectorAt(enc, 0); err == nil {
		t.Error("VectorAt on a non-vector column succeeded")
	}
}

func TestInsertGetScan(t *testing.T) {
	tbl := newTable(t)
	const n = 500 // spans multiple pages
	tids := make([]TID, n)
	for i := 0; i < n; i++ {
		tid, err := tbl.Insert(sampleRow(i))
		if err != nil {
			t.Fatal(err)
		}
		tids[i] = tid
	}
	if tbl.NTuples() != n {
		t.Fatalf("NTuples = %d", tbl.NTuples())
	}
	// Random access by TID.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(n)
		var id int32
		err := tbl.Get(tids[i], func(tup []byte) error {
			vals, err := testSchema.Decode(tup)
			if err != nil {
				return err
			}
			id = vals[0].(int32)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if id != int32(i) {
			t.Fatalf("tid %v returned id %d, want %d", tids[i], id, i)
		}
	}
	// Full scan covers everything in insertion order.
	next := 0
	err := tbl.Scan(func(tid TID, tup []byte) (bool, error) {
		vals, err := testSchema.Decode(tup)
		if err != nil {
			return false, err
		}
		if vals[0].(int32) != int32(next) {
			return false, fmt.Errorf("scan out of order at %d", next)
		}
		next++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("scan visited %d tuples", next)
	}
}

func TestGetVector(t *testing.T) {
	tbl := newTable(t)
	tid, err := tbl.Insert(sampleRow(3))
	if err != nil {
		t.Fatal(err)
	}
	v, err := tbl.GetVector(tid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != -3 {
		t.Errorf("GetVector = %v", v)
	}
}

func TestDeleteHidesTuple(t *testing.T) {
	tbl := newTable(t)
	tidA, _ := tbl.Insert(sampleRow(1))
	tbl.Insert(sampleRow(2))
	if ok, err := tbl.Delete(tidA); err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if tbl.NTuples() != 1 {
		t.Errorf("NTuples after delete = %d", tbl.NTuples())
	}
	count := 0
	tbl.Scan(func(TID, []byte) (bool, error) { count++; return true, nil })
	if count != 1 {
		t.Errorf("scan saw %d tuples after delete", count)
	}
	if err := tbl.Get(tidA, func([]byte) error { return nil }); err == nil {
		t.Error("Get of deleted tuple succeeded")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := newTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(sampleRow(i))
	}
	count := 0
	tbl.Scan(func(TID, []byte) (bool, error) {
		count++
		return count < 3, nil
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestReopenRestoresCount(t *testing.T) {
	pool, _ := buffer.NewPool(4096, 64)
	store := storage.NewMemStore(4096)
	pool.Register(1, store)
	tbl, _ := New(pool, 1, testSchema)
	for i := 0; i < 20; i++ {
		tbl.Insert(sampleRow(i))
	}
	pool.FlushAll()
	// A second Table over the same relation must see the tuples.
	tbl2, err := New(pool, 1, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NTuples() != 20 {
		t.Errorf("reopened NTuples = %d", tbl2.NTuples())
	}
}

func TestVacuumReclaimsDeadTuples(t *testing.T) {
	tbl := newTable(t)
	var tids []TID
	for i := 0; i < 50; i++ {
		tid, err := tbl.Insert(sampleRow(i))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	for i := 0; i < 50; i += 2 {
		if ok, err := tbl.Delete(tids[i]); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", i, ok, err)
		}
	}
	if got := tbl.NDead(); got != 25 {
		t.Fatalf("NDead = %d, want 25", got)
	}
	if f := tbl.DeadFraction(); f < 0.49 || f > 0.51 {
		t.Fatalf("DeadFraction = %g, want 0.5", f)
	}

	stats, err := tbl.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadReclaimed != 25 {
		t.Errorf("DeadReclaimed = %d, want 25", stats.DeadReclaimed)
	}
	if stats.BytesFreed <= 0 || stats.PagesCompacted <= 0 {
		t.Errorf("vacuum freed %d bytes over %d pages, want > 0", stats.BytesFreed, stats.PagesCompacted)
	}
	if got := tbl.NDead(); got != 0 {
		t.Errorf("NDead after vacuum = %d", got)
	}
	// Survivors stay readable at their original TIDs, victims stay gone.
	for i, tid := range tids {
		ok, err := tbl.Visible(tid)
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; ok != want {
			t.Errorf("Visible(%d) = %v after vacuum, want %v", i, ok, want)
		}
	}
	// A second vacuum is a no-op.
	stats, err = tbl.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadReclaimed != 0 {
		t.Errorf("second vacuum reclaimed %d", stats.DeadReclaimed)
	}
}

func TestVacuumThenInsertReusesTable(t *testing.T) {
	tbl := newTable(t)
	var tids []TID
	for i := 0; i < 20; i++ {
		tid, _ := tbl.Insert(sampleRow(i))
		tids = append(tids, tid)
	}
	for _, tid := range tids {
		tbl.Delete(tid)
	}
	if _, err := tbl.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if tbl.NTuples() != 0 {
		t.Fatalf("NTuples = %d after delete-all vacuum", tbl.NTuples())
	}
	tid, err := tbl.Insert(sampleRow(99))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := tbl.Visible(tid); err != nil || !ok {
		t.Fatalf("fresh insert not visible: (%v, %v)", ok, err)
	}
}

func TestReopenRestoresDeadCount(t *testing.T) {
	pool, _ := buffer.NewPool(4096, 64)
	store := storage.NewMemStore(4096)
	pool.Register(1, store)
	tbl, _ := New(pool, 1, testSchema)
	var tids []TID
	for i := 0; i < 12; i++ {
		tid, _ := tbl.Insert(sampleRow(i))
		tids = append(tids, tid)
	}
	for i := 0; i < 4; i++ {
		tbl.Delete(tids[i])
	}
	pool.FlushAll()
	tbl2, err := New(pool, 1, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NTuples() != 8 {
		t.Errorf("reopened NTuples = %d, want 8", tbl2.NTuples())
	}
	if tbl2.NDead() != 4 {
		t.Errorf("reopened NDead = %d, want 4", tbl2.NDead())
	}
}

// TestSampleTracksDeletes is the planner-statistics regression test:
// deletes down-weight the reservoir immediately, and vacuum rebuilds it
// from the surviving tuples, so selectivity estimates follow the live
// distribution instead of the historical one.
func TestSampleTracksDeletes(t *testing.T) {
	tbl := newTable(t)
	var tids []TID
	for i := 0; i < 200; i++ {
		tid, err := tbl.Insert(sampleRow(i))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	lowFrac := func() float64 {
		rows, err := tbl.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			return 0
		}
		low := 0
		for _, r := range rows {
			if r[0].(int32) < 100 {
				low++
			}
		}
		return float64(low) / float64(len(rows))
	}
	if f := lowFrac(); f < 0.3 || f > 0.7 {
		t.Fatalf("pre-delete sample fraction id<100 = %g, want ~0.5", f)
	}
	// Skewed churn: delete every id < 100.
	for i := 0; i < 100; i++ {
		if ok, err := tbl.Delete(tids[i]); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", i, ok, err)
		}
	}
	// The drop-on-delete path already purges them from the reservoir.
	if f := lowFrac(); f != 0 {
		t.Errorf("post-delete sample fraction id<100 = %g, want 0", f)
	}
	// And vacuum's full rebuild keeps it that way with restored uniformity.
	if _, err := tbl.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if f := lowFrac(); f != 0 {
		t.Errorf("post-vacuum sample fraction id<100 = %g, want 0", f)
	}
	rows, err := tbl.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("post-vacuum sample is empty with 100 live tuples")
	}
}
