package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPage(t *testing.T, size, special int) Page {
	t.Helper()
	p := make(Page, size)
	Init(p, special)
	return p
}

func TestInitLayout(t *testing.T) {
	p := newPage(t, DefaultSize, 16)
	if !p.IsInit() {
		t.Fatal("page not initialized")
	}
	if p.NumItems() != 0 {
		t.Errorf("NumItems = %d", p.NumItems())
	}
	if len(p.Special()) != 16 {
		t.Errorf("special space %d bytes, want 16", len(p.Special()))
	}
	if p.FreeSpace() <= 0 || p.FreeSpace() >= DefaultSize {
		t.Errorf("implausible FreeSpace %d", p.FreeSpace())
	}
}

func TestInitPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Init accepted an undersized page")
		}
	}()
	Init(make(Page, 64), 0)
}

func TestAddAndGetItems(t *testing.T) {
	p := newPage(t, 4096, 8)
	var want [][]byte
	for i := 0; i < 20; i++ {
		item := bytes.Repeat([]byte{byte(i + 1)}, 10+i)
		off, err := p.AddItem(item)
		if err != nil {
			t.Fatal(err)
		}
		if off != uint16(i+1) {
			t.Fatalf("offset %d, want %d (1-based sequential)", off, i+1)
		}
		want = append(want, item)
	}
	for i, item := range want {
		got, err := p.Item(uint16(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, item) {
			t.Fatalf("item %d: got %v, want %v", i+1, got, item)
		}
	}
}

func TestItemsAreMaxAligned(t *testing.T) {
	p := newPage(t, 4096, 0)
	for i := 0; i < 10; i++ {
		if _, err := p.AddItem(make([]byte, 13)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint16(1); i <= p.NumItems(); i++ {
		off, _, _ := p.itemID(i - 1)
		if off%MaxAlign != 0 {
			t.Fatalf("item %d starts at %d, not MAXALIGNed", i, off)
		}
	}
}

func TestPageFull(t *testing.T) {
	p := newPage(t, MinSize, 0)
	added := 0
	for {
		_, err := p.AddItem(make([]byte, 64))
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		added++
		if added > 100 {
			t.Fatal("page never filled")
		}
	}
	if added == 0 {
		t.Fatal("no item fit an empty page")
	}
	// A full page must still serve reads.
	if _, err := p.Item(1); err != nil {
		t.Fatal(err)
	}
}

func TestItemTooBig(t *testing.T) {
	p := newPage(t, MinSize, 0)
	if _, err := p.AddItem(make([]byte, MinSize)); err != ErrItemTooBig {
		t.Errorf("err = %v, want ErrItemTooBig", err)
	}
}

func TestItemErrors(t *testing.T) {
	p := newPage(t, 4096, 0)
	if _, err := p.Item(1); err == nil {
		t.Error("read of missing item succeeded")
	}
	if _, err := p.Item(0); err == nil {
		t.Error("offset 0 accepted (offsets are 1-based)")
	}
	var uninit Page = make([]byte, 4096)
	if _, err := uninit.Item(1); err != ErrUninitPage {
		t.Errorf("uninit read: %v", err)
	}
	if _, err := uninit.AddItem([]byte{1}); err != ErrUninitPage {
		t.Errorf("uninit add: %v", err)
	}
}

func TestDeleteItem(t *testing.T) {
	p := newPage(t, 4096, 0)
	p.AddItem([]byte{1, 2, 3})
	p.AddItem([]byte{4, 5, 6})
	if err := p.DeleteItem(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Item(1); err != ErrDeadItem {
		t.Errorf("dead item read: %v", err)
	}
	if got, err := p.Item(2); err != nil || got[0] != 4 {
		t.Errorf("live item after delete: %v, %v", got, err)
	}
	if err := p.DeleteItem(9); err == nil {
		t.Error("deleted out-of-range item")
	}
}

func TestOverwriteItem(t *testing.T) {
	p := newPage(t, 4096, 0)
	p.AddItem([]byte{1, 2, 3, 4})
	if err := p.OverwriteItem(1, []byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Item(1)
	if got[0] != 9 || got[3] != 6 {
		t.Errorf("overwrite not applied: %v", got)
	}
	if err := p.OverwriteItem(1, make([]byte, 5)); err == nil {
		t.Error("oversized overwrite accepted")
	}
	// Shrinking overwrite adjusts the visible length.
	if err := p.OverwriteItem(1, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Item(1); len(got) != 1 || got[0] != 5 {
		t.Errorf("shrunk item: %v", got)
	}
}

func TestLSNAndFlagsAndOpaque(t *testing.T) {
	p := newPage(t, 4096, 0)
	p.SetLSN(0xDEADBEEF01)
	if p.LSN() != 0xDEADBEEF01 {
		t.Errorf("LSN = %x", p.LSN())
	}
	p.SetFlags(0x1234)
	if p.Flags() != 0x1234 {
		t.Errorf("Flags = %x", p.Flags())
	}
	p.SetOpaque(0xCAFE)
	if p.Opaque() != 0xCAFE {
		t.Errorf("Opaque = %x", p.Opaque())
	}
}

func TestSpecialSpaceUntouchedByItems(t *testing.T) {
	p := newPage(t, 1024, 8)
	sp := p.Special()
	sp[0], sp[7] = 0xAA, 0xBB
	for {
		if _, err := p.AddItem(make([]byte, 32)); err != nil {
			break
		}
	}
	if sp[0] != 0xAA || sp[7] != 0xBB {
		t.Error("item data overwrote special space")
	}
}

func TestPropertyRandomItemsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make(Page, 2048)
		Init(p, 8)
		var items [][]byte
		for {
			item := make([]byte, 1+rng.Intn(200))
			rng.Read(item)
			if _, err := p.AddItem(item); err != nil {
				break
			}
			items = append(items, item)
		}
		if int(p.NumItems()) != len(items) {
			return false
		}
		for i, want := range items {
			got, err := p.Item(uint16(i + 1))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
