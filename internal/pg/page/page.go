// Package page implements PostgreSQL-style slotted pages: a fixed-size
// byte array with a 24-byte header, an array of 4-byte line pointers
// (item IDs) growing downward from the header, tuple data growing upward
// from the end, and an optional "special space" reserved at the tail for
// access-method metadata.
//
// This layout is the heart of the paper's RC#2 and RC#4: every tuple and
// index entry in the generalized engine lives inside one of these pages
// and is reached through (block, offset) indirection, and the
// page-granular allocation is what blows up the PASE HNSW index size
// (Fig 13 / Table IV).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sizes mirroring PostgreSQL's bufpage.h.
const (
	HeaderSize = 24 // pd_lsn .. pd_prune_xid
	ItemIDSize = 4  // one line pointer

	// DefaultSize is PostgreSQL's default BLCKSZ. Table IV repeats the
	// HNSW size experiment at 4 KiB.
	DefaultSize = 8192
	MinSize     = 512
	MaxSize     = 65536
)

// Header field offsets.
const (
	offLSN      = 0  // 8 bytes
	offFlags    = 8  // 2 bytes (checksum slot reused as flags padding)
	offLower    = 12 // 2 bytes: end of line-pointer array
	offUpper    = 14 // 2 bytes: start of tuple space
	offSpecial  = 16 // 2 bytes: start of special space
	offPageSize = 18 // 2 bytes: page size (0 encodes 65536)
	offNextFree = 20 // 4 bytes: free-list hint (pd_prune_xid slot)
)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadOffset   = errors.New("page: item offset out of range")
	ErrDeadItem    = errors.New("page: item is dead")
	ErrUninitPage  = errors.New("page: page is not initialized")
	ErrItemTooBig  = errors.New("page: item exceeds page capacity")
	ErrCorruptPage = errors.New("page: corrupt header")
)

// Page is one disk block. Offsets into the line-pointer array are
// 1-based, matching PostgreSQL's OffsetNumber convention.
type Page []byte

// Init formats p as an empty page with the given special-space size.
func Init(p Page, specialSize int) {
	if len(p) < MinSize || len(p) > MaxSize {
		panic(fmt.Sprintf("page: invalid page size %d", len(p)))
	}
	for i := range p {
		p[i] = 0
	}
	special := len(p) - specialSize
	binary.LittleEndian.PutUint16(p[offLower:], HeaderSize)
	binary.LittleEndian.PutUint16(p[offUpper:], uint16(special))
	binary.LittleEndian.PutUint16(p[offSpecial:], uint16(special))
	binary.LittleEndian.PutUint16(p[offPageSize:], uint16(len(p)%MaxSize))
}

// IsInit reports whether the page has been formatted (a zero page has
// lower == 0).
func (p Page) IsInit() bool { return p.lower() != 0 }

func (p Page) lower() uint16   { return binary.LittleEndian.Uint16(p[offLower:]) }
func (p Page) upper() uint16   { return binary.LittleEndian.Uint16(p[offUpper:]) }
func (p Page) special() uint16 { return binary.LittleEndian.Uint16(p[offSpecial:]) }

// LSN returns the page's log sequence number.
func (p Page) LSN() uint64 { return binary.LittleEndian.Uint64(p[offLSN:]) }

// SetLSN stamps the page with an LSN; the buffer manager enforces
// WAL-before-data using it.
func (p Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p[offLSN:], lsn) }

// Flags returns the 16-bit page flags word.
func (p Page) Flags() uint16 { return binary.LittleEndian.Uint16(p[offFlags:]) }

// SetFlags stores the page flags word.
func (p Page) SetFlags(f uint16) { binary.LittleEndian.PutUint16(p[offFlags:], f) }

// Opaque returns the 4-byte access-method scratch word in the header
// (PostgreSQL reuses pd_prune_xid similarly).
func (p Page) Opaque() uint32 { return binary.LittleEndian.Uint32(p[offNextFree:]) }

// SetOpaque stores the header scratch word.
func (p Page) SetOpaque(v uint32) { binary.LittleEndian.PutUint32(p[offNextFree:], v) }

// NumItems returns the number of line pointers (live or dead).
func (p Page) NumItems() uint16 {
	if !p.IsInit() {
		return 0
	}
	return (p.lower() - HeaderSize) / ItemIDSize
}

// FreeSpace returns the bytes available for one more item plus its line
// pointer.
func (p Page) FreeSpace() int {
	if !p.IsInit() {
		return 0
	}
	free := int(p.upper()) - int(p.lower()) - ItemIDSize
	if free < 0 {
		return 0
	}
	return free
}

// Special returns the special space slice.
func (p Page) Special() []byte { return p[p.special():] }

// itemID packs (offset 15 bits | dead flag 1 bit | length 16 bits).
func (p Page) itemID(i uint16) (off uint16, length uint16, dead bool) {
	base := HeaderSize + int(i)*ItemIDSize
	word := binary.LittleEndian.Uint32(p[base:])
	off = uint16(word & 0x7FFF)
	dead = word&0x8000 != 0
	length = uint16(word >> 16)
	return
}

func (p Page) setItemID(i uint16, off, length uint16, dead bool) {
	base := HeaderSize + int(i)*ItemIDSize
	word := uint32(off&0x7FFF) | uint32(length)<<16
	if dead {
		word |= 0x8000
	}
	binary.LittleEndian.PutUint32(p[base:], word)
}

// MaxAlign is PostgreSQL's MAXIMUM_ALIGNOF: every item start is aligned
// down to an 8-byte boundary, so fixed-layout index entries can be
// reinterpreted in place (e.g., their vector payload viewed as []float32).
const MaxAlign = 8

// AddItem appends data as a new item and returns its 1-based offset
// number. The data is copied into the page; the item start is MAXALIGNed
// like PostgreSQL tuples.
func (p Page) AddItem(data []byte) (uint16, error) {
	if !p.IsInit() {
		return 0, ErrUninitPage
	}
	if len(data)+MaxAlign > len(p)-HeaderSize-ItemIDSize {
		return 0, ErrItemTooBig
	}
	if p.FreeSpace() < len(data)+MaxAlign {
		return 0, ErrPageFull
	}
	n := p.NumItems()
	newUpper := (p.upper() - uint16(len(data))) &^ (MaxAlign - 1)
	copy(p[newUpper:], data)
	p.setItemID(n, newUpper, uint16(len(data)), false)
	binary.LittleEndian.PutUint16(p[offLower:], p.lower()+ItemIDSize)
	binary.LittleEndian.PutUint16(p[offUpper:], newUpper)
	return n + 1, nil
}

// Item returns the payload of the item at the 1-based offset number. The
// returned slice aliases the page; callers must copy if they hold it past
// the buffer pin.
func (p Page) Item(offnum uint16) ([]byte, error) {
	if !p.IsInit() {
		return nil, ErrUninitPage
	}
	if offnum == 0 || offnum > p.NumItems() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, offnum, p.NumItems())
	}
	off, length, dead := p.itemID(offnum - 1)
	if dead {
		return nil, ErrDeadItem
	}
	if int(off)+int(length) > len(p) {
		return nil, ErrCorruptPage
	}
	return p[off : off+length], nil
}

// DeleteItem marks the item dead. Space is not reclaimed (PostgreSQL
// defers that to VACUUM; we never need it for the paper's workloads).
func (p Page) DeleteItem(offnum uint16) error {
	if offnum == 0 || offnum > p.NumItems() {
		return fmt.Errorf("%w: %d of %d", ErrBadOffset, offnum, p.NumItems())
	}
	off, length, _ := p.itemID(offnum - 1)
	p.setItemID(offnum-1, off, length, true)
	return nil
}

// ItemIsDead reports whether the item at the 1-based offset number has
// been deleted. Out-of-range offsets report false.
func (p Page) ItemIsDead(offnum uint16) bool {
	if !p.IsInit() || offnum == 0 || offnum > p.NumItems() {
		return false
	}
	_, _, dead := p.itemID(offnum - 1)
	return dead
}

// DeadSpace returns the payload bytes still held by the dead item at the
// 1-based offset number — zero for live items and for dead items whose
// space Compact already reclaimed.
func (p Page) DeadSpace(offnum uint16) int {
	if !p.IsInit() || offnum == 0 || offnum > p.NumItems() {
		return 0
	}
	_, length, dead := p.itemID(offnum - 1)
	if !dead {
		return 0
	}
	return int(length)
}

// Compact rewrites the tuple data area dropping dead items' payloads, the
// page half of VACUUM. Live payloads move toward the page tail (their
// offset numbers are preserved — TIDs stay stable), dead line pointers
// stay dead with a zero-length payload, and the reclaimed bytes join the
// page's free space. Line pointers are never removed: reusing a dead
// slot would let a stale index TID resolve to an unrelated new tuple.
// Returns the number of bytes freed.
func (p Page) Compact() int {
	if !p.IsInit() {
		return 0
	}
	n := p.NumItems()
	oldUpper := p.upper()
	// Copy live payloads out, then repack from the special space downward
	// in the same MAXALIGNed style AddItem uses.
	type live struct {
		off  uint16
		data []byte
	}
	lives := make([]live, 0, n)
	for i := uint16(0); i < n; i++ {
		off, length, dead := p.itemID(i)
		if dead {
			p.setItemID(i, 0, 0, true)
			continue
		}
		lives = append(lives, live{off: i, data: append([]byte(nil), p[off:off+length]...)})
	}
	upper := p.special()
	for _, lv := range lives {
		upper = (upper - uint16(len(lv.data))) &^ (MaxAlign - 1)
		copy(p[upper:], lv.data)
		p.setItemID(lv.off, upper, uint16(len(lv.data)), false)
	}
	binary.LittleEndian.PutUint16(p[offUpper:], upper)
	return int(upper) - int(oldUpper)
}

// OverwriteItem replaces the payload of an existing item in place. The new
// payload must fit the item's current allocation; index AMs use it for
// fixed-size entries (e.g., neighbor slots).
func (p Page) OverwriteItem(offnum uint16, data []byte) error {
	if offnum == 0 || offnum > p.NumItems() {
		return fmt.Errorf("%w: %d of %d", ErrBadOffset, offnum, p.NumItems())
	}
	off, length, dead := p.itemID(offnum - 1)
	if dead {
		return ErrDeadItem
	}
	if len(data) > int(length) {
		return fmt.Errorf("page: overwrite of %d bytes into %d-byte item", len(data), length)
	}
	copy(p[off:off+uint16(len(data))], data)
	if len(data) < int(length) {
		p.setItemID(offnum-1, off, uint16(len(data)), false)
	}
	return nil
}
