package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testStoreBehaviour(t *testing.T, s PageStore) {
	t.Helper()
	if s.NumBlocks() != 0 {
		t.Fatalf("fresh store has %d blocks", s.NumBlocks())
	}
	blk0, err := s.Extend()
	if err != nil || blk0 != 0 {
		t.Fatalf("first Extend = %d, %v", blk0, err)
	}
	blk1, _ := s.Extend()
	if blk1 != 1 || s.NumBlocks() != 2 {
		t.Fatalf("second Extend = %d, NumBlocks = %d", blk1, s.NumBlocks())
	}

	data := bytes.Repeat([]byte{0x5A}, s.PageSize())
	if err := s.WriteBlock(1, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize())
	if err := s.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read back different data")
	}
	// Fresh block 0 must read as zeroes.
	if err := s.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh block not zeroed")
		}
	}
	// Out of range.
	if err := s.ReadBlock(5, buf); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := s.WriteBlock(5, data); err == nil {
		t.Error("out-of-range write succeeded")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore(512)
	testStoreBehaviour(t, s)
	if s.SizeBytes() != 2*512 {
		t.Errorf("SizeBytes = %d", s.SizeBytes())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel_1")
	s, err := OpenFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	testStoreBehaviour(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: block count and contents must survive.
	s2, err := OpenFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumBlocks() != 2 {
		t.Fatalf("reopened NumBlocks = %d", s2.NumBlocks())
	}
	buf := make([]byte, 512)
	if err := s2.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x5A {
		t.Error("contents lost across reopen")
	}
}

func TestFileStoreRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel_bad")
	s, err := OpenFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	s.Extend()
	s.Close()
	// Reopen with a different page size that does not divide the length.
	if _, err := OpenFileStore(path, 768); err == nil {
		t.Error("accepted file with misaligned length")
	}
}
