// Package storage provides the block-device layer below the buffer
// manager: a PageStore is a growable array of fixed-size blocks belonging
// to one relation (table or index), analogous to PostgreSQL's smgr/md
// layer.
//
// Two implementations exist because the paper's Sec V-A2 explicitly rules
// out disk I/O as the cause of the build-time gap by rerunning on tmpfs:
// FileStore is the disk-backed default and MemStore is the tmpfs
// equivalent (identical code paths above this interface, no file I/O).
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrBlockRange is returned for out-of-range block numbers.
var ErrBlockRange = errors.New("storage: block number out of range")

// PageStore is a relation's block array.
type PageStore interface {
	// PageSize returns the fixed block size in bytes.
	PageSize() int
	// NumBlocks returns the current relation length in blocks.
	NumBlocks() uint32
	// Extend appends a zeroed block and returns its number.
	Extend() (uint32, error)
	// ReadBlock copies block blk into buf (len(buf) == PageSize()).
	ReadBlock(blk uint32, buf []byte) error
	// WriteBlock overwrites block blk from data.
	WriteBlock(blk uint32, data []byte) error
	// Sync forces written blocks to stable storage.
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// MemStore keeps blocks in heap memory — the tmpfs stand-in.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int
	blocks   [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{pageSize: pageSize}
}

// PageSize implements PageStore.
func (s *MemStore) PageSize() int { return s.pageSize }

// NumBlocks implements PageStore.
func (s *MemStore) NumBlocks() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint32(len(s.blocks))
}

// Extend implements PageStore.
func (s *MemStore) Extend() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks = append(s.blocks, make([]byte, s.pageSize))
	return uint32(len(s.blocks) - 1), nil
}

// ReadBlock implements PageStore.
func (s *MemStore) ReadBlock(blk uint32, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(blk) >= len(s.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrBlockRange, blk, len(s.blocks))
	}
	copy(buf, s.blocks[blk])
	return nil
}

// WriteBlock implements PageStore.
func (s *MemStore) WriteBlock(blk uint32, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(blk) >= len(s.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrBlockRange, blk, len(s.blocks))
	}
	copy(s.blocks[blk], data)
	return nil
}

// Sync implements PageStore (no-op in memory).
func (s *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks = nil
	return nil
}

// SizeBytes returns the total block payload held.
func (s *MemStore) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.blocks)) * int64(s.pageSize)
}

// FileStore keeps blocks in a single file, like one PostgreSQL relation
// segment.
type FileStore struct {
	mu       sync.Mutex
	pageSize int
	f        *os.File
	nblocks  uint32
}

// OpenFileStore creates or opens the file at path. An existing file must
// have a length that is a multiple of pageSize.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s length %d not a multiple of page size %d", path, info.Size(), pageSize)
	}
	return &FileStore{pageSize: pageSize, f: f, nblocks: uint32(info.Size() / int64(pageSize))}, nil
}

// PageSize implements PageStore.
func (s *FileStore) PageSize() int { return s.pageSize }

// NumBlocks implements PageStore.
func (s *FileStore) NumBlocks() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nblocks
}

// Extend implements PageStore.
func (s *FileStore) Extend() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blk := s.nblocks
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(blk)*int64(s.pageSize)); err != nil {
		return 0, fmt.Errorf("storage: extend: %w", err)
	}
	s.nblocks++
	return blk, nil
}

// ReadBlock implements PageStore.
func (s *FileStore) ReadBlock(blk uint32, buf []byte) error {
	s.mu.Lock()
	n := s.nblocks
	s.mu.Unlock()
	if blk >= n {
		return fmt.Errorf("%w: %d of %d", ErrBlockRange, blk, n)
	}
	_, err := s.f.ReadAt(buf[:s.pageSize], int64(blk)*int64(s.pageSize))
	return err
}

// WriteBlock implements PageStore.
func (s *FileStore) WriteBlock(blk uint32, data []byte) error {
	s.mu.Lock()
	n := s.nblocks
	s.mu.Unlock()
	if blk >= n {
		return fmt.Errorf("%w: %d of %d", ErrBlockRange, blk, n)
	}
	_, err := s.f.WriteAt(data[:s.pageSize], int64(blk)*int64(s.pageSize))
	return err
}

// Sync implements PageStore.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close implements PageStore.
func (s *FileStore) Close() error { return s.f.Close() }
