package db

import (
	"fmt"
	"testing"

	_ "vecstudy/internal/pase/all" // register the generalized AMs
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/testutil"
)

// loadSmall creates an in-memory database holding the shared test dataset
// in a (id int, vec float[]) table — the paper's schema.
func loadSmall(t *testing.T, cfg Config) *DB {
	t.Helper()
	ds := testutil.SmallDataset(t)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	schema := heap.Schema{Cols: []heap.Column{
		{Name: "id", Type: heap.Int4},
		{Name: "vec", Type: heap.Float4Array},
	}}
	tbl, err := d.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.N(); i++ {
		if _, err := tbl.Insert([]any{int32(i), ds.Base.Row(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// searchIDs runs an index search and maps the TIDs back to the id column.
func searchIDs(t *testing.T, d *DB, idx am.Index, query []float32, k int, params map[string]string) []int64 {
	t.Helper()
	res, err := idx.Search(query, k, params)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, len(res))
	for i, r := range res {
		err := tbl.Get(r.TID, func(tup []byte) error {
			vals, err := tbl.Schema().Decode(tup)
			if err != nil {
				return err
			}
			ids[i] = int64(vals[0].(int32))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func recallOf(t *testing.T, d *DB, idx am.Index, k int, params map[string]string) float64 {
	t.Helper()
	ds := testutil.SmallDataset(t)
	results := make([][]int64, ds.NQ())
	for q := 0; q < ds.NQ(); q++ {
		results[q] = searchIDs(t, d, idx, ds.Queries.Row(q), k, params)
	}
	return ds.Recall(results, k)
}

func TestTableRoundTrip(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	tbl, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NTuples() != int64(ds.N()) {
		t.Fatalf("NTuples = %d, want %d", tbl.NTuples(), ds.N())
	}
	count := 0
	err = tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		vals, err := tbl.Schema().Decode(tup)
		if err != nil {
			return false, err
		}
		id := int(vals[0].(int32))
		if id != count {
			return false, fmt.Errorf("scan order: got id %d at position %d", id, count)
		}
		v := vals[1].([]float32)
		want := ds.Base.Row(id)
		for j := range v {
			if v[j] != want[j] {
				return false, fmt.Errorf("row %d component %d: %v != %v", id, j, v[j], want[j])
			}
		}
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != ds.N() {
		t.Fatalf("scanned %d tuples, want %d", count, ds.N())
	}
}

func TestPaseIVFFlatRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	idx, err := d.CreateIndex("ivf_idx", "t", "vec", "ivfflat",
		map[string]string{"clusters": fmt.Sprint(ds.NumClusters()), "seed": "1"})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive probing must be exact.
	if r := recallOf(t, d, idx, 10, map[string]string{"nprobe": fmt.Sprint(ds.NumClusters())}); r != 1 {
		t.Errorf("exhaustive recall = %v, want 1", r)
	}
	// The paper's default nprobe=20 on ~45 clusters should be accurate.
	if r := recallOf(t, d, idx, 10, map[string]string{"nprobe": "20"}); r < 0.8 {
		t.Errorf("recall@10 nprobe=20 = %v, want >= 0.8", r)
	}
}

func TestPaseIVFFlatParallelMatchesSerial(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	idx, err := d.CreateIndex("ivf_idx", "t", "vec", "ivfflat",
		map[string]string{"clusters": fmt.Sprint(ds.NumClusters()), "seed": "2"})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		serial := searchIDs(t, d, idx, ds.Queries.Row(q), 10, map[string]string{"nprobe": "10"})
		par := searchIDs(t, d, idx, ds.Queries.Row(q), 10, map[string]string{"nprobe": "10", "threads": "4"})
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("query %d rank %d: serial id %d vs parallel id %d", q, i, serial[i], par[i])
			}
		}
	}
}

func TestPaseIVFPQRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	idx, err := d.CreateIndex("pq_idx", "t", "vec", "ivfpq", map[string]string{
		"clusters": fmt.Sprint(ds.NumClusters()), "m": "16", "ksub": "64", "seed": "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, d, idx, 10, map[string]string{"nprobe": "10"}); r < 0.35 {
		t.Errorf("PQ recall@10 = %v, want >= 0.35", r)
	}
}

func TestPaseHNSWRecall(t *testing.T) {
	d := loadSmall(t, Config{})
	idx, err := d.CreateIndex("hnsw_idx", "t", "vec", "hnsw",
		map[string]string{"bnn": "16", "efb": "40", "seed": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, d, idx, 10, map[string]string{"efs": "200"}); r < 0.85 {
		t.Errorf("HNSW recall@10 efs=200 = %v, want >= 0.85", r)
	}
}

func TestPgvectorBaselineRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	idx, err := d.CreateIndex("pgv_idx", "t", "vec", "pgv_ivfflat",
		map[string]string{"clusters": fmt.Sprint(ds.NumClusters()), "seed": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, d, idx, 10, map[string]string{"nprobe": "20"}); r < 0.8 {
		t.Errorf("pgvector-style recall@10 = %v, want >= 0.8", r)
	}
}

func TestHNSWSizeBlowupAndPageSize(t *testing.T) {
	// RC#4: the PASE HNSW relation should dwarf the raw vector payload,
	// and halving the page size should roughly halve it (Table IV).
	ds := testutil.SmallDataset(t)
	sizes := map[int]int64{}
	for _, ps := range []int{8192, 4096} {
		d := loadSmall(t, Config{PageSize: ps})
		idx, err := d.CreateIndex("hnsw_idx", "t", "vec", "hnsw",
			map[string]string{"bnn": "16", "efb": "40", "seed": "6"})
		if err != nil {
			t.Fatal(err)
		}
		sz, err := idx.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		sizes[ps] = sz
	}
	rawBytes := int64(ds.N()) * int64(ds.Dim) * 4
	if sizes[8192] < 2*rawBytes {
		t.Errorf("8KiB HNSW index %d bytes; expected ≥ 2× raw payload %d (RC#4)", sizes[8192], rawBytes)
	}
	ratio := float64(sizes[8192]) / float64(sizes[4096])
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("8KiB/4KiB size ratio = %v, want ≈ 2 (Table IV)", ratio)
	}
}

func TestIVFSizesReasonable(t *testing.T) {
	// Fig 11/12: IVF page layouts align well with memory layout — the
	// relation should be within ~2× of the raw payload, and PQ much
	// smaller than FLAT.
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	flat, err := d.CreateIndex("f_idx", "t", "vec", "ivfflat",
		map[string]string{"clusters": fmt.Sprint(ds.NumClusters()), "seed": "7"})
	if err != nil {
		t.Fatal(err)
	}
	pqIdx, err := d.CreateIndex("p_idx", "t", "vec", "ivfpq", map[string]string{
		"clusters": fmt.Sprint(ds.NumClusters()), "m": "16", "ksub": "64", "seed": "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := int64(ds.N()) * int64(ds.Dim) * 4
	fs, _ := flat.SizeBytes()
	ps, _ := pqIdx.SizeBytes()
	if fs > 2*rawBytes {
		t.Errorf("IVF_FLAT relation %d bytes vs raw %d — layout should align (Fig 11)", fs, rawBytes)
	}
	if ps >= fs/2 {
		t.Errorf("IVF_PQ %d should be far smaller than IVF_FLAT %d", ps, fs)
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	ds := testutil.SmallDataset(t)
	d := loadSmall(t, Config{})
	_, err := d.CreateIndex("ivf_idx", "t", "vec", "ivfflat",
		map[string]string{"clusters": fmt.Sprint(ds.NumClusters()), "seed": "8"})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a brand-new far-away vector; it must become findable.
	far := make([]float32, ds.Dim)
	for i := range far {
		far[i] = 500
	}
	if _, err := d.Insert("t", []any{int32(999999), far}); err != nil {
		t.Fatal(err)
	}
	idx, err := d.Index("ivf_idx")
	if err != nil {
		t.Fatal(err)
	}
	ids := searchIDs(t, d, idx, far, 1, map[string]string{"nprobe": "5"})
	if len(ids) != 1 || ids[0] != 999999 {
		t.Errorf("freshly inserted vector not found: got %v", ids)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	d := loadSmall(t, Config{})
	if _, err := d.CreateIndex("x", "t", "nope", "ivfflat", nil); err == nil {
		t.Error("accepted missing column")
	}
	if _, err := d.CreateIndex("x", "nope", "vec", "ivfflat", nil); err == nil {
		t.Error("accepted missing table")
	}
	if _, err := d.CreateIndex("x", "t", "vec", "btree", nil); err == nil {
		t.Error("accepted unknown AM")
	}
}

func TestBufferStatsAccumulate(t *testing.T) {
	d := loadSmall(t, Config{})
	st := d.Pool().Stats()
	if st.Hits == 0 {
		t.Error("no buffer hits recorded during load")
	}
}
