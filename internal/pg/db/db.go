// Package db assembles the PostgreSQL-style substrate into a usable
// database engine: a shared buffer pool over per-relation page stores, a
// catalog, heap tables, registered index access methods, and optional
// write-ahead logging. The SQL layer (internal/pg/sql) executes against
// this engine; the benchmark harness drives it directly.
package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/buffer"
	"vecstudy/internal/pg/catalog"
	"vecstudy/internal/pg/heap"
	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
	"vecstudy/internal/pg/wal"
	"vecstudy/internal/prof"
)

// Config parameterizes Open.
type Config struct {
	// PageSize is the block size; 0 means page.DefaultSize (8 KiB).
	// Table IV reruns the HNSW size experiment at 4096.
	PageSize int
	// BufferFrames sizes the shared buffer pool; 0 means 16384 frames
	// (128 MiB at the default page size — everything memory-resident, as
	// the paper's methodology requires).
	BufferFrames int
	// BufferPartitions splits the buffer pool into independently locked
	// partitions, like PostgreSQL's buffer-mapping partitions. 0 means
	// buffer.DefaultPartitions (16, the concurrent-serving default);
	// 1 reproduces the paper's single-lock pool (the RC#2/RC#3
	// ablation configuration). Adjustable at runtime through
	// SetBufferPartitions / SET buffer_partitions.
	BufferPartitions int
	// Dir is the database directory for file-backed storage; empty means
	// fully in-memory page stores (the tmpfs configuration of Sec V-A2).
	Dir string
	// EnableWAL turns on write-ahead logging (file-backed only).
	EnableWAL bool
	// Prof attaches breakdown instrumentation to tables and indexes.
	Prof *prof.Profile
}

// DB is an open database.
type DB struct {
	cfg  Config
	pool *buffer.Pool
	cat  *catalog.Catalog
	wal  *wal.Log

	mu      sync.Mutex
	stores  map[buffer.RelID]storage.PageStore
	tables  map[string]*heap.Table
	indexes map[string]am.Index

	// gate is the statement-level lock: SELECT and INSERT take it shared
	// (heap and index structures handle their own fine-grained locking),
	// DELETE/UPDATE/VACUUM take it exclusive so visibility flips and
	// structure rewrites never interleave with concurrent scans.
	gate sync.RWMutex

	nDeleted      atomic.Int64
	nUpdated      atomic.Int64
	nVacuums      atomic.Int64
	nDeadReclaim  atomic.Int64
	nIndexRepairs atomic.Int64
}

// Open creates (or reopens, for file-backed dirs with a saved catalog) a
// database.
func Open(cfg Config) (*DB, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = page.DefaultSize
	}
	if cfg.BufferFrames == 0 {
		cfg.BufferFrames = 16384
	}
	if cfg.BufferPartitions == 0 {
		cfg.BufferPartitions = buffer.DefaultPartitions
	}
	pool, err := buffer.NewPartitionedPool(cfg.PageSize, cfg.BufferFrames, cfg.BufferPartitions)
	if err != nil {
		return nil, err
	}
	d := &DB{
		cfg:     cfg,
		pool:    pool,
		cat:     catalog.New(),
		stores:  make(map[buffer.RelID]storage.PageStore),
		tables:  make(map[string]*heap.Table),
		indexes: make(map[string]am.Index),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if cfg.EnableWAL {
			w, err := wal.Open(filepath.Join(cfg.Dir, "wal.log"))
			if err != nil {
				return nil, err
			}
			d.wal = w
			pool.SetWAL(w)
		}
		if cat, err := catalog.Load(filepath.Join(cfg.Dir, "catalog.gob")); err == nil {
			d.cat = cat
			if err := d.reattach(); err != nil {
				return nil, err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	} else if cfg.EnableWAL {
		return nil, errors.New("db: WAL requires a file-backed directory")
	}
	return d, nil
}

// reattach re-registers stored relations after reopening a directory.
// Indexes are reopened lazily by rebuilding on first use (the paper's
// workloads always rebuild; see Limitations in README).
func (d *DB) reattach() error {
	for _, tm := range d.cat.Tables() {
		store, err := d.openStore(tm.Rel)
		if err != nil {
			return err
		}
		if err := d.pool.Register(tm.Rel, store); err != nil {
			return err
		}
		tbl, err := heap.New(d.pool, tm.Rel, tm.Schema)
		if err != nil {
			return err
		}
		tbl.SetProf(d.cfg.Prof)
		if d.wal != nil {
			tbl.SetWAL(d.wal)
		}
		d.tables[tm.Name] = tbl
	}
	return nil
}

func (d *DB) openStore(rel buffer.RelID) (storage.PageStore, error) {
	if d.cfg.Dir == "" {
		return storage.NewMemStore(d.cfg.PageSize), nil
	}
	return storage.OpenFileStore(filepath.Join(d.cfg.Dir, fmt.Sprintf("rel_%d", rel)), d.cfg.PageSize)
}

// Pool exposes the shared buffer pool (benchmarks report its hit rates).
func (d *DB) Pool() *buffer.Pool { return d.pool }

// SetBufferPartitions repartitions the buffer pool at runtime (the SET
// buffer_partitions knob). The pool must be quiescent — no pinned
// buffers — or buffer.ErrPoolPinned is returned.
func (d *DB) SetBufferPartitions(n int) error {
	return d.pool.SetPartitions(n)
}

// Catalog exposes the schema registry.
func (d *DB) Catalog() *catalog.Catalog { return d.cat }

// CreateTable creates an empty heap table.
func (d *DB) CreateTable(name string, schema heap.Schema) (*heap.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rel := d.cat.AllocRel()
	store, err := d.openStore(rel)
	if err != nil {
		return nil, err
	}
	if err := d.pool.Register(rel, store); err != nil {
		return nil, err
	}
	if _, err := d.cat.CreateTable(name, rel, schema); err != nil {
		return nil, err
	}
	tbl, err := heap.New(d.pool, rel, schema)
	if err != nil {
		return nil, err
	}
	tbl.SetProf(d.cfg.Prof)
	if d.wal != nil {
		tbl.SetWAL(d.wal)
	}
	d.stores[rel] = store
	d.tables[name] = tbl
	return tbl, nil
}

// Table returns an open table by name.
func (d *DB) Table(name string) (*heap.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tbl, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no such table %q", name)
	}
	return tbl, nil
}

// Insert adds one row to a table and maintains every index on it.
func (d *DB) Insert(table string, values []any) (heap.TID, error) {
	tbl, err := d.Table(table)
	if err != nil {
		return heap.TID{}, err
	}
	tid, err := tbl.Insert(values)
	if err != nil {
		return heap.TID{}, err
	}
	for _, im := range d.cat.IndexesOn(table) {
		d.mu.Lock()
		idx, ok := d.indexes[im.Name]
		d.mu.Unlock()
		if !ok {
			continue
		}
		col := tbl.Schema().ColIndex(im.Column)
		v, ok := values[col].([]float32)
		if !ok {
			return tid, fmt.Errorf("db: column %q is not a vector", im.Column)
		}
		if err := idx.Insert(v, tid); err != nil {
			return tid, err
		}
	}
	return tid, nil
}

// StmtGate exposes the statement-level lock. The SQL executor (and the
// batch coalescer's group runner) takes it shared around reads and
// inserts and exclusive around DELETE/UPDATE/VACUUM.
func (d *DB) StmtGate() *sync.RWMutex { return &d.gate }

// MutationStats is a snapshot of the dynamic-data counters, surfaced by
// SHOW server_stats.
type MutationStats struct {
	TuplesDeleted int64
	TuplesUpdated int64
	VacuumRuns    int64
	DeadReclaimed int64 // dead entries removed across heap + indexes
	IndexRepairs  int64 // per-index Maintain passes that removed entries
}

// Mutations snapshots the dynamic-data counters.
func (d *DB) Mutations() MutationStats {
	return MutationStats{
		TuplesDeleted: d.nDeleted.Load(),
		TuplesUpdated: d.nUpdated.Load(),
		VacuumRuns:    d.nVacuums.Load(),
		DeadReclaimed: d.nDeadReclaim.Load(),
		IndexRepairs:  d.nIndexRepairs.Load(),
	}
}

// indexedVectors reads the still-visible tuple's vector for every index
// on the table, keyed by index name. Index deletion needs the vector:
// IVF re-derives the owning bucket from it.
func (d *DB) indexedVectors(table string, tbl *heap.Table, tid heap.TID) (map[string][]float32, bool, error) {
	ims := d.cat.IndexesOn(table)
	if len(ims) == 0 {
		return nil, true, nil
	}
	vecs := make(map[string][]float32, len(ims))
	ok, err := tbl.GetVisible(tid, func(tup []byte) error {
		for _, im := range ims {
			col := tbl.Schema().ColIndex(im.Column)
			v, err := tbl.Schema().VectorAt(tup, col)
			if err != nil {
				return err
			}
			vecs[im.Name] = append([]float32(nil), v...)
		}
		return nil
	})
	return vecs, ok, err
}

// Delete removes one row: the heap tuple's line pointer is marked dead
// and every mutable index on the table tombstones its entry. Deleting an
// already-dead or unknown TID is a no-op returning false. Callers must
// hold the statement gate exclusively.
func (d *DB) Delete(table string, tid heap.TID) (bool, error) {
	tbl, err := d.Table(table)
	if err != nil {
		return false, err
	}
	vecs, visible, err := d.indexedVectors(table, tbl, tid)
	if err != nil {
		return false, err
	}
	if !visible {
		return false, nil
	}
	ok, err := tbl.Delete(tid)
	if err != nil || !ok {
		return false, err
	}
	for _, im := range d.cat.IndexesOn(table) {
		d.mu.Lock()
		idx, open := d.indexes[im.Name]
		d.mu.Unlock()
		if !open {
			continue
		}
		mi, mutable := idx.(am.MutableIndex)
		if !mutable {
			continue
		}
		if _, err := mi.Delete(vecs[im.Name], tid); err != nil {
			return true, err
		}
	}
	d.nDeleted.Add(1)
	return true, nil
}

// Update replaces one row: delete-old + insert-new, PostgreSQL's
// non-HOT update path — the TID changes and indexes see a tombstone plus
// a fresh entry. Returns the new TID; ok is false when the old tuple was
// already gone. Callers must hold the statement gate exclusively.
func (d *DB) Update(table string, tid heap.TID, values []any) (heap.TID, bool, error) {
	ok, err := d.Delete(table, tid)
	if err != nil || !ok {
		return heap.TID{}, false, err
	}
	newTID, err := d.Insert(table, values)
	if err != nil {
		return heap.TID{}, false, err
	}
	d.nUpdated.Add(1)
	d.nDeleted.Add(-1) // counted as an update, not a delete
	return newTID, true, nil
}

// NoteVacuum records a completed vacuum pass in the stats counters.
func (d *DB) NoteVacuum(deadReclaimed, indexRepairs int64) {
	d.nVacuums.Add(1)
	d.nDeadReclaim.Add(deadReclaimed)
	d.nIndexRepairs.Add(indexRepairs)
}

// CreateIndex builds an index over an existing table column using the
// named access method.
func (d *DB) CreateIndex(name, table, column, amName string, opts map[string]string) (am.Index, error) {
	build, err := am.Lookup(amName)
	if err != nil {
		return nil, err
	}
	tbl, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	col := tbl.Schema().ColIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("db: no column %q on %q", column, table)
	}
	dim, err := d.vectorDim(tbl, col)
	if err != nil {
		return nil, err
	}

	d.mu.Lock()
	rel := d.cat.AllocRel()
	store, err := d.openStore(rel)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	if err := d.pool.Register(rel, store); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.stores[rel] = store
	d.mu.Unlock()

	ctx := &am.BuildContext{
		Pool: d.pool, Rel: rel, Table: tbl, VecCol: col, Dim: dim,
		Opts: opts, Prof: d.cfg.Prof,
	}
	idx, err := build(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := d.cat.CreateIndex(name, rel, table, column, amName, opts); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.indexes[name] = idx
	d.mu.Unlock()
	return idx, nil
}

// vectorDim infers the vector column's dimensionality from the first row.
func (d *DB) vectorDim(tbl *heap.Table, col int) (int, error) {
	dim := -1
	err := tbl.Scan(func(tid heap.TID, tup []byte) (bool, error) {
		v, err := tbl.Schema().VectorAt(tup, col)
		if err != nil {
			return false, err
		}
		dim = len(v)
		return false, nil
	})
	if err != nil {
		return 0, err
	}
	if dim <= 0 {
		return 0, errors.New("db: cannot infer vector dimension from an empty table")
	}
	return dim, nil
}

// Index returns a built index by name.
func (d *DB) Index(name string) (am.Index, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	idx, ok := d.indexes[name]
	if !ok {
		return nil, fmt.Errorf("db: no such index %q", name)
	}
	return idx, nil
}

// IndexOn returns some built index on (table, column), or nil.
func (d *DB) IndexOn(table, column string) am.Index {
	for _, im := range d.cat.IndexesOn(table) {
		if im.Column == column {
			d.mu.Lock()
			idx := d.indexes[im.Name]
			d.mu.Unlock()
			if idx != nil {
				return idx
			}
		}
	}
	return nil
}

// Checkpoint flushes dirty pages (and the catalog, when file-backed).
func (d *DB) Checkpoint() error {
	if d.wal != nil {
		if err := d.wal.Sync(); err != nil {
			return err
		}
	}
	if err := d.pool.FlushAll(); err != nil {
		return err
	}
	if d.cfg.Dir != "" {
		if err := d.cat.Save(filepath.Join(d.cfg.Dir, "catalog.gob")); err != nil {
			return err
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		for _, s := range d.stores {
			if err := s.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close checkpoints and releases every store.
func (d *DB) Close() error {
	if err := d.Checkpoint(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var firstErr error
	for _, s := range d.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
