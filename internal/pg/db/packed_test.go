package db

import (
	"testing"

	"vecstudy/internal/testutil"
)

// TestPackedHNSWLayout verifies the memory-optimized adjacency layout
// (the paper's Sec IX-C "bridge the gap" direction for RC#4): same
// search quality, several-times-smaller index.
func TestPackedHNSWLayout(t *testing.T) {
	ds := testutil.SmallDataset(t)

	type built struct {
		size   int64
		recall float64
	}
	results := map[string]built{}
	for _, variant := range []struct {
		name   string
		packed string
	}{{"pase", "false"}, {"packed", "true"}} {
		d := loadSmall(t, Config{})
		idx, err := d.CreateIndex("h_idx", "t", "vec", "hnsw", map[string]string{
			"bnn": "16", "efb": "40", "seed": "11", "packed": variant.packed,
		})
		if err != nil {
			t.Fatal(err)
		}
		size, err := idx.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		results[variant.name] = built{
			size:   size,
			recall: recallOf(t, d, idx, 10, map[string]string{"efs": "200"}),
		}
	}

	if results["packed"].recall < 0.85 {
		t.Errorf("packed layout recall %.3f, want >= 0.85", results["packed"].recall)
	}
	// Identical seeds build identical graphs, so recalls must match.
	if results["packed"].recall != results["pase"].recall {
		t.Errorf("layout changed search results: packed %.3f vs pase %.3f",
			results["packed"].recall, results["pase"].recall)
	}
	shrink := float64(results["pase"].size) / float64(results["packed"].size)
	if shrink < 3 {
		t.Errorf("packed layout only %.1f× smaller (pase %d vs packed %d); expected ≥ 3×",
			shrink, results["pase"].size, results["packed"].size)
	}
	// The packed index should approach the raw payload size.
	raw := int64(ds.N()) * int64(ds.Dim+40) * 4
	if results["packed"].size > 3*raw {
		t.Errorf("packed index %d bytes still far above payload scale %d", results["packed"].size, raw)
	}
}
