package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
)

// TestConcurrentStress hammers the pool from many goroutines doing
// Pin/Release/MarkDirty/NewPage across several relations with a frame
// budget far smaller than the working set, so the clock sweep, the free
// list, and the lock-free pin/dirty paths are all exercised together.
// Run with -race; the partitioned and single-lock configurations must
// both survive.
//
// Discipline mirrors the engines': a page's payload is written only by
// its creator before first Release; afterwards it is read-only (readers
// re-verify it on every hit, which also checks that evict/reload cycles
// and failed-read cleanup never serve another block's bytes).
func TestConcurrentStress(t *testing.T) {
	for _, parts := range []int{1, 16} {
		parts := parts
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			stressPool(t, parts)
		})
	}
}

func stressPool(t *testing.T, partitions int) {
	const (
		nRels   = 3
		frames  = 64 // well below the working set: constant eviction
		workers = 8
	)
	iters := 400
	if testing.Short() {
		iters = 120
	}
	p, err := NewPartitionedPool(testPageSize, frames, partitions)
	if err != nil {
		t.Fatal(err)
	}
	for rel := RelID(1); rel <= nRels; rel++ {
		if err := p.Register(rel, storage.NewMemStore(testPageSize)); err != nil {
			t.Fatal(err)
		}
	}

	// blocks[rel] is the number of published pages of rel; a published
	// page blk of rel carries the payload byte(uint32(rel)*31+blk).
	var blocks [nRels + 1]atomic.Uint32
	payload := func(rel RelID, blk uint32) byte { return byte(uint32(rel)*31 + blk) }

	// One creator at a time per relation, like the heap layer's insert
	// mutex: publication stays dense and monotonic.
	var seedMu [nRels + 1]sync.Mutex
	seedPage := func(rel RelID) error {
		seedMu[rel].Lock()
		defer seedMu[rel].Unlock()
		buf, blk, err := p.NewPage(rel)
		if err != nil {
			return err
		}
		page.Init(buf.Page(), 0)
		if _, err := buf.Page().AddItem([]byte{payload(rel, blk)}); err != nil {
			buf.Release()
			return err
		}
		buf.MarkDirty()
		buf.Release()
		// Publish only after the content is final.
		blocks[rel].Store(blk + 1)
		return nil
	}
	for rel := RelID(1); rel <= nRels; rel++ {
		for i := 0; i < 4; i++ {
			if err := seedPage(rel); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < iters; i++ {
				rel := RelID(rng.Intn(nRels) + 1)
				switch op := rng.Intn(10); {
				case op == 0: // grow a relation (NewPage path, extension lock)
					if err := seedPage(rel); err != nil {
						// Transient overcommit is legal under pin pressure.
						if errors.Is(err, ErrNoUnpinned) {
							continue
						}
						errCh <- err
						return
					}
				default: // pin a published page, verify, sometimes re-dirty
					n := blocks[rel].Load()
					if n == 0 {
						continue
					}
					blk := uint32(rng.Intn(int(n)))
					buf, err := p.Pin(rel, blk)
					if err != nil {
						if errors.Is(err, ErrNoUnpinned) {
							continue
						}
						errCh <- err
						return
					}
					item, err := buf.Page().Item(1)
					if err != nil || item[0] != payload(rel, blk) {
						buf.Release()
						errCh <- fmt.Errorf("rel %d blk %d: item %v err %v", rel, blk, item, err)
						return
					}
					if op == 1 {
						buf.MarkDirty() // content unchanged; forces extra write-backs
					}
					buf.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Every published page must have survived the churn, via the store.
	for rel := RelID(1); rel <= nRels; rel++ {
		n := blocks[rel].Load()
		for blk := uint32(0); blk < n; blk++ {
			buf, err := p.Pin(rel, blk)
			if err != nil {
				t.Fatal(err)
			}
			item, err := buf.Page().Item(1)
			if err != nil || item[0] != payload(rel, blk) {
				t.Fatalf("rel %d blk %d after stress: item %v err %v", rel, blk, item, err)
			}
			buf.Release()
		}
	}
	st := p.Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("stress did not exercise eviction: %+v", st)
	}
}
