// Package buffer implements a PostgreSQL-style shared buffer pool: a
// fixed set of page frames, a page table mapping (relation, block) tags
// to frames, pin/unpin reference counting, and clock-sweep victim
// selection with dirty write-back.
//
// Every tuple access in the generalized engine goes through Pool.Pin —
// the page-table lookup, pin bookkeeping, and (on miss) block I/O are the
// "Tuple Access" overhead the paper attributes to RC#2. The pool is shared
// and mutex-protected like PostgreSQL's buffer mapping locks, which is
// also what serializes PASE's intra-query parallelism in Fig 18.
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
)

// RelID identifies a relation registered with the pool (a table or an
// index), like PostgreSQL's relfilenode.
type RelID uint32

// Tag addresses one block of one relation.
type Tag struct {
	Rel RelID
	Blk uint32
}

// Errors returned by the pool.
var (
	ErrNoUnpinned    = errors.New("buffer: no unpinned buffers available")
	ErrUnknownRel    = errors.New("buffer: relation not registered")
	ErrNotPinned     = errors.New("buffer: releasing an unpinned buffer")
	ErrPoolTooSmall  = errors.New("buffer: pool must have at least 4 frames")
	ErrPageSizeMixed = errors.New("buffer: store page size differs from pool page size")
)

// Stats counts pool activity; the benchmark harness reports hit rates.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64 // dirty write-backs
}

// WALFlusher is the hook the write-ahead log registers so the pool can
// enforce WAL-before-data on dirty evictions.
type WALFlusher interface {
	// FlushTo durably writes all WAL up to and including lsn.
	FlushTo(lsn uint64) error
}

type frame struct {
	tag   Tag
	data  []byte
	pin   int32
	usage uint8
	dirty bool
	valid bool
}

// Pool is a shared buffer pool.
type Pool struct {
	mu        sync.Mutex
	pageSize  int
	frames    []frame
	table     map[Tag]int
	stores    map[RelID]storage.PageStore
	clockHand int
	stats     Stats
	wal       WALFlusher
}

// NewPool creates a pool of nframes pages of pageSize bytes each.
func NewPool(pageSize, nframes int) (*Pool, error) {
	if nframes < 4 {
		return nil, ErrPoolTooSmall
	}
	if pageSize < page.MinSize || pageSize > page.MaxSize {
		return nil, fmt.Errorf("buffer: invalid page size %d", pageSize)
	}
	p := &Pool{
		pageSize: pageSize,
		frames:   make([]frame, nframes),
		table:    make(map[Tag]int, nframes),
		stores:   make(map[RelID]storage.PageStore, 8),
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, pageSize)
	}
	return p, nil
}

// PageSize returns the pool's page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Register attaches a relation's page store to the pool.
func (p *Pool) Register(rel RelID, store storage.PageStore) error {
	if store.PageSize() != p.pageSize {
		return ErrPageSizeMixed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stores[rel] = store
	return nil
}

// Deregister flushes and detaches a relation (e.g., on DROP).
func (p *Pool) Deregister(rel RelID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.valid && f.tag.Rel == rel {
			if f.pin > 0 {
				return fmt.Errorf("buffer: deregistering %d with pinned buffers", rel)
			}
			if f.dirty {
				if err := p.writeBackLocked(i); err != nil {
					return err
				}
			}
			delete(p.table, f.tag)
			f.valid = false
		}
	}
	delete(p.stores, rel)
	return nil
}

// SetWAL installs the WAL-before-data hook.
func (p *Pool) SetWAL(w WALFlusher) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = w
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Buf is a pinned buffer. It must be Released exactly once; the page
// slice is only valid while pinned.
type Buf struct {
	pool  *Pool
	idx   int
	tag   Tag
	valid bool
}

// Page returns the pinned page contents.
func (b *Buf) Page() page.Page {
	if !b.valid {
		panic("buffer: access after Release")
	}
	return page.Page(b.pool.frames[b.idx].data)
}

// Block returns the block number this buffer holds.
func (b *Buf) Block() uint32 { return b.tag.Blk }

// MarkDirty flags the page as modified so eviction writes it back.
func (b *Buf) MarkDirty() {
	if !b.valid {
		panic("buffer: MarkDirty after Release")
	}
	b.pool.mu.Lock()
	b.pool.frames[b.idx].dirty = true
	b.pool.mu.Unlock()
}

// Release unpins the buffer.
func (b *Buf) Release() {
	if !b.valid {
		panic("buffer: double Release")
	}
	b.valid = false
	p := b.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[b.idx]
	if f.pin <= 0 {
		panic(ErrNotPinned)
	}
	f.pin--
}

// Pin fetches (rel, blk) into the pool and returns a pinned buffer.
func (p *Pool) Pin(rel RelID, blk uint32) (*Buf, error) {
	tag := Tag{Rel: rel, Blk: blk}
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[tag]; ok {
		f := &p.frames[idx]
		f.pin++
		if f.usage < 5 {
			f.usage++
		}
		p.stats.Hits++
		return &Buf{pool: p, idx: idx, tag: tag, valid: true}, nil
	}
	p.stats.Misses++
	store, ok := p.stores[rel]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRel, rel)
	}
	idx, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if err := store.ReadBlock(blk, f.data); err != nil {
		return nil, fmt.Errorf("buffer: read %v: %w", tag, err)
	}
	f.tag = tag
	f.pin = 1
	f.usage = 1
	f.dirty = false
	f.valid = true
	p.table[tag] = idx
	return &Buf{pool: p, idx: idx, tag: tag, valid: true}, nil
}

// NewPage extends the relation by one block and returns it pinned and
// zero-initialized (callers run page.Init).
func (p *Pool) NewPage(rel RelID) (*Buf, uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	store, ok := p.stores[rel]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownRel, rel)
	}
	blk, err := store.Extend()
	if err != nil {
		return nil, 0, err
	}
	idx, err := p.victimLocked()
	if err != nil {
		return nil, 0, err
	}
	f := &p.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	tag := Tag{Rel: rel, Blk: blk}
	f.tag = tag
	f.pin = 1
	f.usage = 1
	f.dirty = true
	f.valid = true
	p.table[tag] = idx
	return &Buf{pool: p, idx: idx, tag: tag, valid: true}, blk, nil
}

// victimLocked runs the clock sweep: decrement usage counts of unpinned
// frames until one reaches zero, evicting (with write-back) as needed.
func (p *Pool) victimLocked() (int, error) {
	n := len(p.frames)
	// An unused (invalid) frame is free; prefer those first.
	for i := range p.frames {
		if !p.frames[i].valid {
			return i, nil
		}
	}
	for spins := 0; spins < 2*n*6; spins++ {
		idx := p.clockHand
		p.clockHand = (p.clockHand + 1) % n
		f := &p.frames[idx]
		if f.pin > 0 {
			continue
		}
		if f.usage > 0 {
			f.usage--
			continue
		}
		if f.dirty {
			if err := p.writeBackLocked(idx); err != nil {
				return 0, err
			}
			p.stats.Writes++
		}
		delete(p.table, f.tag)
		f.valid = false
		p.stats.Evictions++
		return idx, nil
	}
	return 0, ErrNoUnpinned
}

// writeBackLocked flushes one dirty frame to its store, honouring
// WAL-before-data when a WAL is attached.
func (p *Pool) writeBackLocked(idx int) error {
	f := &p.frames[idx]
	store, ok := p.stores[f.tag.Rel]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRel, f.tag.Rel)
	}
	if p.wal != nil {
		if lsn := page.Page(f.data).LSN(); lsn > 0 {
			if err := p.wal.FlushTo(lsn); err != nil {
				return err
			}
		}
	}
	if err := store.WriteBlock(f.tag.Blk, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushAll writes back every dirty page (checkpoint).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			if err := p.writeBackLocked(i); err != nil {
				return err
			}
			p.stats.Writes++
		}
	}
	return nil
}

// NumBlocks returns the block count of a registered relation.
func (p *Pool) NumBlocks(rel RelID) (uint32, error) {
	p.mu.Lock()
	store, ok := p.stores[rel]
	p.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownRel, rel)
	}
	return store.NumBlocks(), nil
}
