// Package buffer implements a PostgreSQL-style shared buffer pool: a
// fixed set of page frames, a page table mapping (relation, block) tags
// to frames, pin/unpin reference counting, and clock-sweep victim
// selection with dirty write-back.
//
// Every tuple access in the generalized engine goes through Pool.Pin —
// the page-table lookup, pin bookkeeping, and (on miss) block I/O are the
// "Tuple Access" overhead the paper attributes to RC#2.
//
// The pool is hash-partitioned the way PostgreSQL splits its buffer
// mapping lock into NUM_BUFFER_PARTITIONS (128) independently locked
// partitions: each Tag hashes to one partition with its own mutex, page
// table, frame arena, clock hand, and counters, so concurrent queries
// touching different pages proceed without contending on a single lock.
// A single-partition pool (NewPool) reproduces the paper's global-lock
// behavior — the configuration PASE inherits and the one that serializes
// intra-query parallelism in Fig 18 — and stays the default for every
// paper experiment. Pin counts and dirty flags are atomics, so Release
// and MarkDirty never take a partition lock on the hot path (the pin
// atomics also carry the happens-before edge that publishes a writer's
// page modifications to the next pinner).
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
)

// RelID identifies a relation registered with the pool (a table or an
// index), like PostgreSQL's relfilenode.
type RelID uint32

// Tag addresses one block of one relation.
type Tag struct {
	Rel RelID
	Blk uint32
}

// Errors returned by the pool.
var (
	ErrNoUnpinned    = errors.New("buffer: no unpinned buffers available")
	ErrUnknownRel    = errors.New("buffer: relation not registered")
	ErrNotPinned     = errors.New("buffer: releasing an unpinned buffer")
	ErrPoolTooSmall  = errors.New("buffer: pool must have at least 4 frames")
	ErrPageSizeMixed = errors.New("buffer: store page size differs from pool page size")
	ErrBadPartitions = errors.New("buffer: partition count must be at least 1")
	ErrPoolPinned    = errors.New("buffer: pool has pinned buffers")
)

// DefaultPartitions is the production partition count. PostgreSQL uses
// 128 buffer-mapping partitions; 16 saturates the core counts this pool
// is run on while keeping each partition's frame arena large.
const DefaultPartitions = 16

// MaxPartitions bounds the SET buffer_partitions knob (PostgreSQL's
// NUM_BUFFER_PARTITIONS).
const MaxPartitions = 128

// Stats counts pool activity; the benchmark harness reports hit rates.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64 // dirty write-backs
	// LockWaits counts contended partition-lock acquisitions on the Pin
	// hot path (a TryLock that failed before blocking). This is the
	// direct signal the partitioning removes: concurrent clients on a
	// single-partition pool rack these up on every tuple access, the way
	// PostgreSQL backends queue on an undersized buffer mapping lock.
	LockWaits int64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writes += o.Writes
	s.LockWaits += o.LockWaits
}

// WALFlusher is the hook the write-ahead log registers so the pool can
// enforce WAL-before-data on dirty evictions.
type WALFlusher interface {
	// FlushTo durably writes all WAL up to and including lsn.
	FlushTo(lsn uint64) error
}

type frame struct {
	tag   Tag
	data  []byte
	pin   atomic.Int32
	usage uint8
	dirty atomic.Bool
	valid bool
}

// partition is one independently locked slice of the pool: its own page
// table, frame arena, free list, clock hand, and counters.
type partition struct {
	mu        sync.Mutex
	lockWaits atomic.Int64 // contended hot-path acquisitions (see Stats.LockWaits)
	frames    []frame
	table     map[Tag]int
	free      []int // invalid frames ready for reuse
	clockHand int
	stats     Stats
}

// lock acquires the partition mutex, counting the acquisition as
// contended when another holder forces the slow path.
func (pt *partition) lock() {
	if pt.mu.TryLock() {
		return
	}
	pt.lockWaits.Add(1)
	pt.mu.Lock()
}

// Pool is a shared, hash-partitioned buffer pool.
type Pool struct {
	pageSize int
	nframes  int
	parts    atomic.Pointer[[]*partition]

	// regMu guards the relation registry (stores, per-relation extension
	// locks, WAL hook). Lock order: partition mutexes before regMu; no
	// code path acquires a partition mutex while holding regMu.
	regMu  sync.RWMutex
	stores map[RelID]storage.PageStore
	extend map[RelID]*sync.Mutex
	wal    WALFlusher

	repartMu sync.Mutex // serializes SetPartitions
}

// NewPool creates a single-partition pool of nframes pages of pageSize
// bytes each — the paper-faithful global-lock configuration.
func NewPool(pageSize, nframes int) (*Pool, error) {
	return NewPartitionedPool(pageSize, nframes, 1)
}

// NewPartitionedPool creates a pool whose frames are split over
// partitions independently locked partitions. The count is clamped so
// every partition keeps at least 4 frames, and to MaxPartitions.
func NewPartitionedPool(pageSize, nframes, partitions int) (*Pool, error) {
	if nframes < 4 {
		return nil, ErrPoolTooSmall
	}
	if pageSize < page.MinSize || pageSize > page.MaxSize {
		return nil, fmt.Errorf("buffer: invalid page size %d", pageSize)
	}
	if partitions < 1 {
		return nil, ErrBadPartitions
	}
	p := &Pool{
		pageSize: pageSize,
		nframes:  nframes,
		stores:   make(map[RelID]storage.PageStore, 8),
		extend:   make(map[RelID]*sync.Mutex, 8),
	}
	parts := makePartitions(pageSize, nframes, clampPartitions(partitions, nframes))
	p.parts.Store(&parts)
	return p, nil
}

// clampPartitions bounds a requested partition count to [1, MaxPartitions]
// with at least 4 frames per partition.
func clampPartitions(n, nframes int) int {
	if max := nframes / 4; n > max {
		n = max
	}
	if n > MaxPartitions {
		n = MaxPartitions
	}
	if n < 1 {
		n = 1
	}
	return n
}

// makePartitions distributes nframes frames over n partitions (the first
// nframes%n partitions take one extra frame).
func makePartitions(pageSize, nframes, n int) []*partition {
	parts := make([]*partition, n)
	per, rem := nframes/n, nframes%n
	for i := range parts {
		sz := per
		if i < rem {
			sz++
		}
		pt := &partition{
			frames: make([]frame, sz),
			table:  make(map[Tag]int, sz),
			free:   make([]int, 0, sz),
		}
		for j := range pt.frames {
			pt.frames[j].data = make([]byte, pageSize)
			pt.free = append(pt.free, sz-1-j) // pop order = ascending index
		}
		parts[i] = pt
	}
	return parts
}

// partitions returns the current partition set.
func (p *Pool) partitions() []*partition {
	return *p.parts.Load()
}

// partitionFor hashes a tag to its partition (64-bit multiplicative mix,
// the moral equivalent of PostgreSQL's BufTableHashPartition).
func (p *Pool) partitionFor(tag Tag) *partition {
	parts := p.partitions()
	if len(parts) == 1 {
		return parts[0]
	}
	h := uint64(tag.Rel)*0x9E3779B97F4A7C15 ^ uint64(tag.Blk)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return parts[h%uint64(len(parts))]
}

// Partitions reports the current partition count.
func (p *Pool) Partitions() int { return len(p.partitions()) }

// PageSize returns the pool's page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Register attaches a relation's page store to the pool.
func (p *Pool) Register(rel RelID, store storage.PageStore) error {
	if store.PageSize() != p.pageSize {
		return ErrPageSizeMixed
	}
	p.regMu.Lock()
	defer p.regMu.Unlock()
	p.stores[rel] = store
	if _, ok := p.extend[rel]; !ok {
		p.extend[rel] = new(sync.Mutex)
	}
	return nil
}

// store resolves a registered relation's page store.
func (p *Pool) store(rel RelID) (storage.PageStore, error) {
	p.regMu.RLock()
	store, ok := p.stores[rel]
	p.regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRel, rel)
	}
	return store, nil
}

// storeAndExtendLock resolves a relation's store together with its
// extension lock (PostgreSQL's relation extension lock).
func (p *Pool) storeAndExtendLock(rel RelID) (storage.PageStore, *sync.Mutex, error) {
	p.regMu.RLock()
	store, ok := p.stores[rel]
	ext := p.extend[rel]
	p.regMu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownRel, rel)
	}
	return store, ext, nil
}

// Deregister flushes and detaches a relation (e.g., on DROP). It fails
// without mutating anything when the relation still has pinned buffers:
// the pinned-frame scan runs to completion before any frame is flushed
// or invalidated, so a failed Deregister never leaves the pool
// half-deregistered.
func (p *Pool) Deregister(rel RelID) error {
	p.repartMu.Lock() // the partition set must not be swapped mid-scan
	defer p.repartMu.Unlock()
	parts := p.partitions()
	for _, pt := range parts {
		pt.mu.Lock()
	}
	unlock := func() {
		for _, pt := range parts {
			pt.mu.Unlock()
		}
	}
	// Pass 1: refuse before touching any frame.
	for _, pt := range parts {
		for i := range pt.frames {
			f := &pt.frames[i]
			if f.valid && f.tag.Rel == rel && f.pin.Load() > 0 {
				unlock()
				return fmt.Errorf("buffer: deregistering %d with pinned buffers: %w", rel, ErrPoolPinned)
			}
		}
	}
	// Pass 2: flush and invalidate.
	for _, pt := range parts {
		for i := range pt.frames {
			f := &pt.frames[i]
			if f.valid && f.tag.Rel == rel {
				if f.dirty.Load() {
					if err := p.writeBack(f); err != nil {
						unlock()
						return err
					}
				}
				delete(pt.table, f.tag)
				f.tag = Tag{}
				f.valid = false
				pt.free = append(pt.free, i)
			}
		}
	}
	unlock()
	p.regMu.Lock()
	delete(p.stores, rel)
	delete(p.extend, rel)
	p.regMu.Unlock()
	return nil
}

// SetWAL installs the WAL-before-data hook.
func (p *Pool) SetWAL(w WALFlusher) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	p.wal = w
}

func (p *Pool) walHook() WALFlusher {
	p.regMu.RLock()
	defer p.regMu.RUnlock()
	return p.wal
}

// Stats returns a snapshot of the pool counters aggregated over all
// partitions.
func (p *Pool) Stats() Stats {
	var total Stats
	for _, pt := range p.partitions() {
		pt.mu.Lock()
		st := pt.stats
		// stats.LockWaits carries repartition history; the atomic holds
		// waits since this partition was created.
		st.LockWaits += pt.lockWaits.Load()
		pt.mu.Unlock()
		total.add(st)
	}
	return total
}

// PartitionStats returns each partition's counters (for load-balance
// inspection in the concurrency benchmarks).
func (p *Pool) PartitionStats() []Stats {
	parts := p.partitions()
	out := make([]Stats, len(parts))
	for i, pt := range parts {
		pt.mu.Lock()
		out[i] = pt.stats
		out[i].LockWaits += pt.lockWaits.Load()
		pt.mu.Unlock()
	}
	return out
}

// SetPartitions re-hashes the pool into n partitions (clamped like
// NewPartitionedPool). It requires a quiescent pool — every buffer
// unpinned — and fails with ErrPoolPinned otherwise. Dirty pages are
// written back and the cache restarts cold; aggregated counters are
// preserved. This backs the SET buffer_partitions session knob.
func (p *Pool) SetPartitions(n int) error {
	if n < 1 {
		return ErrBadPartitions
	}
	n = clampPartitions(n, p.nframes)
	p.repartMu.Lock()
	defer p.repartMu.Unlock()
	old := p.partitions()
	if len(old) == n {
		return nil
	}
	for _, pt := range old {
		pt.mu.Lock()
	}
	unlock := func() {
		for _, pt := range old {
			pt.mu.Unlock()
		}
	}
	var carried Stats
	for _, pt := range old {
		for i := range pt.frames {
			if pt.frames[i].valid && pt.frames[i].pin.Load() > 0 {
				unlock()
				return fmt.Errorf("buffer: repartition with pinned buffers: %w", ErrPoolPinned)
			}
		}
	}
	for _, pt := range old {
		for i := range pt.frames {
			f := &pt.frames[i]
			if f.valid && f.dirty.Load() {
				if err := p.writeBack(f); err != nil {
					unlock()
					return err
				}
				pt.stats.Writes++
			}
		}
		st := pt.stats
		st.LockWaits += pt.lockWaits.Load()
		carried.add(st)
	}
	fresh := makePartitions(p.pageSize, p.nframes, n)
	fresh[0].stats = carried
	p.parts.Store(&fresh)
	unlock()
	return nil
}

// Buf is a pinned buffer. It must be Released exactly once; the page
// slice is only valid while pinned.
type Buf struct {
	part  *partition
	idx   int
	tag   Tag
	valid bool
}

// Page returns the pinned page contents.
func (b *Buf) Page() page.Page {
	if !b.valid {
		panic("buffer: access after Release")
	}
	return page.Page(b.part.frames[b.idx].data)
}

// Block returns the block number this buffer holds.
func (b *Buf) Block() uint32 { return b.tag.Blk }

// MarkDirty flags the page as modified so eviction writes it back. It is
// lock-free: an atomic store on the frame's dirty flag.
func (b *Buf) MarkDirty() {
	if !b.valid {
		panic("buffer: MarkDirty after Release")
	}
	b.part.frames[b.idx].dirty.Store(true)
}

// Release unpins the buffer. It is lock-free: one atomic decrement,
// which also publishes the holder's page writes to the next pinner.
func (b *Buf) Release() {
	if !b.valid {
		panic("buffer: double Release")
	}
	b.valid = false
	if b.part.frames[b.idx].pin.Add(-1) < 0 {
		panic(ErrNotPinned)
	}
}

// Pin fetches (rel, blk) into the pool and returns a pinned buffer.
func (p *Pool) Pin(rel RelID, blk uint32) (*Buf, error) {
	tag := Tag{Rel: rel, Blk: blk}
	pt := p.partitionFor(tag)
	pt.lock()
	if idx, ok := pt.table[tag]; ok {
		f := &pt.frames[idx]
		f.pin.Add(1)
		if f.usage < 5 {
			f.usage++
		}
		pt.stats.Hits++
		pt.mu.Unlock()
		return &Buf{part: pt, idx: idx, tag: tag, valid: true}, nil
	}
	pt.stats.Misses++
	store, err := p.store(rel)
	if err != nil {
		pt.mu.Unlock()
		return nil, err
	}
	idx, err := p.victimLocked(pt)
	if err != nil {
		pt.mu.Unlock()
		return nil, err
	}
	f := &pt.frames[idx]
	// The read happens under pt.mu by design: releasing it here would
	// need PostgreSQL's IO_IN_PROGRESS protocol (per-frame I/O locks and
	// a wait queue) to stop a concurrent Pin of the same tag from seeing
	// a half-filled frame. The partition split exists precisely to keep
	// this hold tolerable; RC#3 measures what remains.
	//vetvec:locked-io
	if err := store.ReadBlock(blk, f.data); err != nil {
		// Leave the frame invalid with a cleared tag and back on the free
		// list, so a stale Tag can never alias a future hit.
		f.tag = Tag{}
		f.valid = false
		pt.free = append(pt.free, idx)
		pt.mu.Unlock()
		return nil, fmt.Errorf("buffer: read %v: %w", tag, err)
	}
	f.tag = tag
	f.pin.Store(1)
	f.usage = 1
	f.dirty.Store(false)
	f.valid = true
	pt.table[tag] = idx
	pt.mu.Unlock()
	return &Buf{part: pt, idx: idx, tag: tag, valid: true}, nil
}

// NewPage extends the relation by one block and returns it pinned and
// zero-initialized (callers run page.Init). The victim frame is secured
// before the store grows, so a failed victim search can never leave the
// relation with an orphan, never-initialized block; the per-relation
// extension lock makes the predicted block number authoritative.
func (p *Pool) NewPage(rel RelID) (*Buf, uint32, error) {
	store, ext, err := p.storeAndExtendLock(rel)
	if err != nil {
		return nil, 0, err
	}
	ext.Lock()
	defer ext.Unlock()
	blk := store.NumBlocks() // the block Extend will create
	tag := Tag{Rel: rel, Blk: blk}
	pt := p.partitionFor(tag)
	pt.lock()
	idx, err := p.victimLocked(pt)
	if err != nil {
		pt.mu.Unlock()
		return nil, 0, err
	}
	// Extend runs under both the relation extension lock and pt.mu by
	// design: the predicted block number is only authoritative while no
	// other extender can run, and the victim frame must stay reserved
	// across the grow. PostgreSQL serializes relation extension the same
	// way (the relation extension lock).
	//vetvec:locked-io
	got, err := store.Extend()
	if err != nil {
		pt.free = append(pt.free, idx)
		pt.mu.Unlock()
		return nil, 0, err
	}
	if got != blk {
		pt.free = append(pt.free, idx)
		pt.mu.Unlock()
		return nil, 0, fmt.Errorf("buffer: store extended to block %d, expected %d (store modified outside the pool?)", got, blk)
	}
	f := &pt.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	f.tag = tag
	f.pin.Store(1)
	f.usage = 1
	f.dirty.Store(true)
	f.valid = true
	pt.table[tag] = idx
	pt.mu.Unlock()
	return &Buf{part: pt, idx: idx, tag: tag, valid: true}, blk, nil
}

// victimLocked pops a free frame if one exists, otherwise runs the clock
// sweep: decrement usage counts of unpinned frames until one reaches
// zero, evicting (with write-back) as needed. The returned frame is
// invalid and owned by the caller, who must either install a page in it
// or push it back onto the free list. pt.mu must be held.
func (p *Pool) victimLocked(pt *partition) (int, error) {
	if n := len(pt.free); n > 0 {
		idx := pt.free[n-1]
		pt.free = pt.free[:n-1]
		return idx, nil
	}
	n := len(pt.frames)
	for spins := 0; spins < 2*n*6; spins++ {
		idx := pt.clockHand
		pt.clockHand = (pt.clockHand + 1) % n
		f := &pt.frames[idx]
		if f.pin.Load() > 0 {
			continue
		}
		if f.usage > 0 {
			f.usage--
			continue
		}
		if f.dirty.Load() {
			if err := p.writeBack(f); err != nil {
				return 0, err
			}
			pt.stats.Writes++
		}
		delete(pt.table, f.tag)
		f.tag = Tag{}
		f.valid = false
		pt.stats.Evictions++
		return idx, nil
	}
	return 0, ErrNoUnpinned
}

// writeBack flushes one dirty frame to its store, honouring
// WAL-before-data when a WAL is attached. The frame's partition mutex
// must be held. The dirty flag is cleared before the write and restored
// on failure, so a concurrent MarkDirty during the write is never lost.
func (p *Pool) writeBack(f *frame) error {
	store, err := p.store(f.tag.Rel)
	if err != nil {
		return err
	}
	if w := p.walHook(); w != nil {
		if lsn := page.Page(f.data).LSN(); lsn > 0 {
			if err := w.FlushTo(lsn); err != nil {
				return err
			}
		}
	}
	f.dirty.Store(false)
	if err := store.WriteBlock(f.tag.Blk, f.data); err != nil {
		f.dirty.Store(true)
		return err
	}
	return nil
}

// FlushAll writes back every dirty page (checkpoint).
func (p *Pool) FlushAll() error {
	for _, pt := range p.partitions() {
		pt.mu.Lock()
		for i := range pt.frames {
			f := &pt.frames[i]
			if f.valid && f.dirty.Load() {
				if err := p.writeBack(f); err != nil {
					pt.mu.Unlock()
					return err
				}
				pt.stats.Writes++
			}
		}
		pt.mu.Unlock()
	}
	return nil
}

// NumBlocks returns the block count of a registered relation.
func (p *Pool) NumBlocks(rel RelID) (uint32, error) {
	store, err := p.store(rel)
	if err != nil {
		return 0, err
	}
	return store.NumBlocks(), nil
}
