package buffer

import (
	"errors"
	"fmt"
	"testing"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
)

// failingStore wraps a PageStore and injects errors into selected calls.
type failingStore struct {
	storage.PageStore
	failRead   bool
	failExtend bool
}

var errInjected = errors.New("injected store failure")

func (s *failingStore) ReadBlock(blk uint32, buf []byte) error {
	if s.failRead {
		return errInjected
	}
	return s.PageStore.ReadBlock(blk, buf)
}

func (s *failingStore) Extend() (uint32, error) {
	if s.failExtend {
		return 0, errInjected
	}
	return s.PageStore.Extend()
}

// addPage appends one initialized page carrying payload b.
func addPage(t *testing.T, p *Pool, rel RelID, b byte) uint32 {
	t.Helper()
	buf, blk, err := p.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	page.Init(buf.Page(), 0)
	if _, err := buf.Page().AddItem([]byte{b}); err != nil {
		t.Fatal(err)
	}
	buf.MarkDirty()
	buf.Release()
	return blk
}

// Regression: Deregister used to flush and invalidate earlier frames of
// the relation before discovering a pinned one, leaving the pool
// half-deregistered. A failed Deregister must be a no-op.
func TestDeregisterPinnedIsAtomic(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 8)
	blk0 := addPage(t, p, rel, 0) // cached, unpinned
	buf, _, err := p.NewPage(rel) // later frame, kept pinned
	if err != nil {
		t.Fatal(err)
	}
	page.Init(buf.Page(), 0)

	if err := p.Deregister(rel); err == nil {
		t.Fatal("Deregister of a relation with pinned buffers succeeded")
	}

	// blk0's frame must still be resident: re-pinning it is a cache hit.
	before := p.Stats()
	b0, err := p.Pin(rel, blk0)
	if err != nil {
		t.Fatalf("pool half-deregistered: %v", err)
	}
	b0.Release()
	after := p.Stats()
	if after.Hits-before.Hits != 1 {
		t.Errorf("blk0 was invalidated by the failed Deregister (hits delta %d, want 1)", after.Hits-before.Hits)
	}

	buf.Release()
	if err := p.Deregister(rel); err != nil {
		t.Fatalf("Deregister after releasing pins: %v", err)
	}
}

// Regression: NewPage used to call store.Extend() before selecting a
// victim frame; when every frame was pinned the relation was left with an
// orphan, never-initialized block that later full scans read as garbage.
func TestNewPageVictimFailureDoesNotExtend(t *testing.T) {
	p, err := NewPool(testPageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	rel1, rel2 := RelID(1), RelID(2)
	store1 := storage.NewMemStore(testPageSize)
	store2 := storage.NewMemStore(testPageSize)
	if err := p.Register(rel1, store1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(rel2, store2); err != nil {
		t.Fatal(err)
	}
	var pinned []*Buf
	for i := 0; i < 4; i++ {
		buf, _, err := p.NewPage(rel1)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, buf)
	}
	if _, _, err := p.NewPage(rel2); !errors.Is(err, ErrNoUnpinned) {
		t.Fatalf("NewPage with all frames pinned: %v", err)
	}
	if n := store2.NumBlocks(); n != 0 {
		t.Errorf("failed NewPage left %d orphan block(s) in the store", n)
	}
	for _, b := range pinned {
		b.Release()
	}
}

// NewPage must also release its reserved victim frame when Extend fails,
// instead of leaking it.
func TestNewPageExtendFailureReleasesFrame(t *testing.T) {
	p, err := NewPool(testPageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := &failingStore{PageStore: storage.NewMemStore(testPageSize), failExtend: true}
	if err := p.Register(1, fs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := p.NewPage(1); !errors.Is(err, errInjected) {
			t.Fatalf("NewPage: %v", err)
		}
	}
	// All four frames must still be allocatable.
	fs.failExtend = false
	var bufs []*Buf
	for i := 0; i < 4; i++ {
		buf, _, err := p.NewPage(1)
		if err != nil {
			t.Fatalf("frame leaked by failed NewPage: %v", err)
		}
		bufs = append(bufs, buf)
	}
	for _, b := range bufs {
		b.Release()
	}
}

// Regression: a failed ReadBlock on the Pin miss path must leave the
// victim frame with a cleared tag (and back on the free list), so a stale
// Tag can never alias a future hit.
func TestPinReadErrorClearsFrameTag(t *testing.T) {
	p, err := NewPool(testPageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := &failingStore{PageStore: storage.NewMemStore(testPageSize)}
	if err := p.Register(1, fs); err != nil {
		t.Fatal(err)
	}
	blk := addPage(t, p, 1, 7)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	fs.failRead = true
	if _, err := p.Pin(1, blk+100); err == nil {
		t.Fatal("Pin with failing store succeeded")
	}
	for _, pt := range p.partitions() {
		pt.mu.Lock()
		for i := range pt.frames {
			f := &pt.frames[i]
			if !f.valid && f.tag != (Tag{}) {
				t.Errorf("invalid frame %d retains stale tag %+v", i, f.tag)
			}
		}
		pt.mu.Unlock()
	}

	// The pool must stay fully usable: the failed miss may not consume a
	// frame or corrupt the resident page.
	fs.failRead = false
	buf, err := p.Pin(1, blk)
	if err != nil {
		t.Fatal(err)
	}
	item, err := buf.Page().Item(1)
	if err != nil || item[0] != 7 {
		t.Fatalf("resident page corrupted after failed Pin: %v %v", item, err)
	}
	buf.Release()
}

func TestPartitionedPoolRoundTrip(t *testing.T) {
	p, err := NewPartitionedPool(testPageSize, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Partitions(); got != 8 {
		t.Fatalf("Partitions() = %d, want 8", got)
	}
	store := storage.NewMemStore(testPageSize)
	if err := p.Register(1, store); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		addPage(t, p, 1, byte(i))
	}
	for i := 0; i < n; i++ {
		buf, err := p.Pin(1, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		item, err := buf.Page().Item(1)
		if err != nil || item[0] != byte(i) {
			t.Fatalf("block %d: item %v err %v", i, item, err)
		}
		buf.Release()
	}
	if st := p.Stats(); st.Hits == 0 {
		t.Errorf("no hits recorded across partitions: %+v", st)
	}
}

func TestPartitionClamping(t *testing.T) {
	// 8 frames can hold at most 2 partitions of 4 frames.
	p, err := NewPartitionedPool(testPageSize, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Partitions(); got != 2 {
		t.Errorf("Partitions() = %d, want clamp to 2", got)
	}
	if _, err := NewPartitionedPool(testPageSize, 8, 0); !errors.Is(err, ErrBadPartitions) {
		t.Errorf("partitions=0: %v", err)
	}
}

func TestSetPartitionsRepartitions(t *testing.T) {
	p, rel, store := newPoolWithRel(t, 32)
	const n = 10
	for i := 0; i < n; i++ {
		addPage(t, p, rel, byte(i))
	}
	statsBefore := p.Stats()

	// Pinned pool refuses to repartition.
	buf, err := p.Pin(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPartitions(4); !errors.Is(err, ErrPoolPinned) {
		t.Fatalf("SetPartitions with pinned buffer: %v", err)
	}
	buf.Release()

	if err := p.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Partitions(); got != 4 {
		t.Fatalf("Partitions() = %d, want 4", got)
	}
	// Counters carry over and dirty pages reached the store.
	if st := p.Stats(); st.Misses < statsBefore.Misses {
		t.Errorf("stats lost on repartition: %+v < %+v", st, statsBefore)
	}
	if store.NumBlocks() != n {
		t.Fatalf("store has %d blocks, want %d", store.NumBlocks(), n)
	}
	for i := 0; i < n; i++ {
		buf, err := p.Pin(rel, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		item, err := buf.Page().Item(1)
		if err != nil || item[0] != byte(i) {
			t.Fatalf("block %d after repartition: %v %v", i, item, err)
		}
		buf.Release()
	}
	// Back to the paper-faithful single lock.
	if err := p.SetPartitions(1); err != nil {
		t.Fatal(err)
	}
	if got := p.Partitions(); got != 1 {
		t.Errorf("Partitions() = %d, want 1", got)
	}
}

func TestDeregisterErrorMentionsRelation(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 8)
	buf, _, err := p.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Deregister(rel)
	if !errors.Is(err, ErrPoolPinned) {
		t.Fatalf("want ErrPoolPinned, got %v", err)
	}
	if want := fmt.Sprintf("%d", rel); !contains(err.Error(), want) {
		t.Errorf("error %q does not name relation %s", err, want)
	}
	buf.Release()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
