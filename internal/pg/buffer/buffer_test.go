package buffer

import (
	"sync"
	"testing"

	"vecstudy/internal/pg/page"
	"vecstudy/internal/pg/storage"
)

const testPageSize = 1024

func newPoolWithRel(t *testing.T, frames int) (*Pool, RelID, *storage.MemStore) {
	t.Helper()
	p, err := NewPool(testPageSize, frames)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore(testPageSize)
	if err := p.Register(1, store); err != nil {
		t.Fatal(err)
	}
	return p, 1, store
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(testPageSize, 2); err != ErrPoolTooSmall {
		t.Errorf("small pool: %v", err)
	}
	if _, err := NewPool(17, 8); err == nil {
		t.Error("accepted bogus page size")
	}
}

func TestRegisterPageSizeMismatch(t *testing.T) {
	p, _ := NewPool(testPageSize, 8)
	if err := p.Register(9, storage.NewMemStore(2048)); err != ErrPageSizeMixed {
		t.Errorf("mixed page sizes: %v", err)
	}
}

func TestNewPageAndPinRoundTrip(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 8)
	buf, blk, err := p.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	page.Init(buf.Page(), 0)
	if _, err := buf.Page().AddItem([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf.MarkDirty()
	buf.Release()

	got, err := p.Pin(rel, blk)
	if err != nil {
		t.Fatal(err)
	}
	item, err := got.Page().Item(1)
	if err != nil || string(item) != "hello" {
		t.Fatalf("item %q err %v", item, err)
	}
	got.Release()
}

func TestPinUnknownRelation(t *testing.T) {
	p, _ := NewPool(testPageSize, 8)
	if _, err := p.Pin(42, 0); err == nil {
		t.Error("pin of unregistered relation succeeded")
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	p, rel, store := newPoolWithRel(t, 4)
	// Create more pages than frames; each write must survive eviction.
	const n = 12
	for i := 0; i < n; i++ {
		buf, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		page.Init(buf.Page(), 0)
		if _, err := buf.Page().AddItem([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		buf.MarkDirty()
		buf.Release()
	}
	// Every page must be readable with its own payload.
	for i := 0; i < n; i++ {
		buf, err := p.Pin(rel, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		item, err := buf.Page().Item(1)
		if err != nil || item[0] != byte(i) {
			t.Fatalf("block %d: item %v err %v", i, item, err)
		}
		buf.Release()
	}
	st := p.Stats()
	if st.Evictions == 0 || st.Writes == 0 {
		t.Errorf("expected evictions and write-backs, got %+v", st)
	}
	if store.NumBlocks() != n {
		t.Errorf("store has %d blocks, want %d", store.NumBlocks(), n)
	}
}

func TestAllPinnedFails(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 4)
	var bufs []*Buf
	for i := 0; i < 4; i++ {
		buf, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, buf)
	}
	if _, _, err := p.NewPage(rel); err != ErrNoUnpinned {
		t.Errorf("overcommit: %v", err)
	}
	for _, b := range bufs {
		b.Release()
	}
	// After releasing, allocation works again.
	buf, _, err := p.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	buf.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 8)
	buf, _, err := p.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	buf.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	buf.Release()
}

func TestHitMissAccounting(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 8)
	buf, blk, _ := p.NewPage(rel)
	page.Init(buf.Page(), 0)
	buf.MarkDirty()
	buf.Release()
	before := p.Stats()
	for i := 0; i < 5; i++ {
		b, err := p.Pin(rel, blk)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	after := p.Stats()
	if after.Hits-before.Hits != 5 {
		t.Errorf("hits delta = %d, want 5", after.Hits-before.Hits)
	}
}

func TestConcurrentPinners(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 16)
	const nPages = 32
	for i := 0; i < nPages; i++ {
		buf, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		page.Init(buf.Page(), 0)
		if _, err := buf.Page().AddItem([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		buf.MarkDirty()
		buf.Release()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				blk := uint32((i*7 + w) % nPages)
				buf, err := p.Pin(rel, blk)
				if err != nil {
					errs <- err
					return
				}
				item, err := buf.Page().Item(1)
				if err != nil || item[0] != byte(blk) {
					buf.Release()
					errs <- err
					return
				}
				buf.Release()
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestFlushAllAndDeregister(t *testing.T) {
	p, rel, store := newPoolWithRel(t, 8)
	buf, blk, _ := p.NewPage(rel)
	page.Init(buf.Page(), 0)
	buf.Page().AddItem([]byte("persist me"))
	buf.MarkDirty()
	buf.Release()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, testPageSize)
	if err := store.ReadBlock(blk, raw); err != nil {
		t.Fatal(err)
	}
	item, err := page.Page(raw).Item(1)
	if err != nil || string(item) != "persist me" {
		t.Fatalf("store content after flush: %q, %v", item, err)
	}
	if err := p.Deregister(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin(rel, blk); err == nil {
		t.Error("pin after deregister succeeded")
	}
}

type recordingWAL struct{ flushedTo uint64 }

func (w *recordingWAL) FlushTo(lsn uint64) error {
	if lsn > w.flushedTo {
		w.flushedTo = lsn
	}
	return nil
}

func TestWALBeforeData(t *testing.T) {
	p, rel, _ := newPoolWithRel(t, 4)
	w := &recordingWAL{}
	p.SetWAL(w)
	// Dirty a page with an LSN, then force its eviction.
	buf, _, _ := p.NewPage(rel)
	page.Init(buf.Page(), 0)
	buf.Page().SetLSN(777)
	buf.MarkDirty()
	buf.Release()
	for i := 0; i < 8; i++ {
		b, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		page.Init(b.Page(), 0)
		b.Release()
	}
	if w.flushedTo < 777 {
		t.Errorf("dirty eviction did not flush WAL to page LSN: flushed %d", w.flushedTo)
	}
}
