package ivfpq

import (
	"testing"

	"vecstudy/internal/minheap"
	"vecstudy/internal/testutil"
)

func buildSmall(t *testing.T, opts Options) *Index {
	t.Helper()
	ds := testutil.SmallDataset(t)
	if opts.Dim == 0 {
		opts.Dim = ds.Dim
	}
	if opts.NList == 0 {
		opts.NList = ds.NumClusters()
	}
	if opts.M == 0 {
		opts.M = 16
	}
	if opts.KSub == 0 {
		opts.KSub = 64 // smaller codebooks keep tiny-scale training sane
	}
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Train(ds.Base.Data, ds.N()); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(ds.Base.Data, ds.N(), nil); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Dim: 0, NList: 4, M: 2}); err == nil {
		t.Error("accepted Dim=0")
	}
	if _, err := New(Options{Dim: 8, NList: 4, M: 3}); err == nil {
		t.Error("accepted M not dividing Dim")
	}
	if _, err := New(Options{Dim: 8, NList: 0, M: 2}); err == nil {
		t.Error("accepted NList=0")
	}
}

func TestLifecycleErrors(t *testing.T) {
	ix, _ := New(Options{Dim: 8, NList: 2, M: 2})
	if err := ix.Add(make([]float32, 8), 1, nil); err == nil {
		t.Error("Add before Train succeeded")
	}
	if _, err := ix.Search(make([]float32, 8), 1, SearchParams{NProbe: 1}); err == nil {
		t.Error("Search before Train succeeded")
	}
}

func TestSearchRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{UseGemm: true, PrecomputeTable: true, Seed: 1})
	recall := testutil.Recall(t, ds, 10, func(q []float32) []minheap.Item {
		items, err := ix.Search(q, 10, SearchParams{NProbe: 10})
		if err != nil {
			t.Fatal(err)
		}
		return items
	})
	// PQ is lossy; the paper's IVF_PQ recalls sit well below IVF_FLAT.
	if recall < 0.4 {
		t.Errorf("recall@10 = %v, want >= 0.4", recall)
	}
}

func TestPrecomputeToggleSameResults(t *testing.T) {
	// RC#7 is a performance-only change: with and without the precomputed
	// tables the returned distances must agree (modulo FP noise).
	ds := testutil.SmallDataset(t)
	a := buildSmall(t, Options{PrecomputeTable: true, Seed: 2})
	b := buildSmall(t, Options{PrecomputeTable: false, Seed: 2})
	for q := 0; q < 5; q++ {
		ra, err := a.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 10})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.SameResults(ra, rb, 0.05) {
			t.Fatalf("query %d: RC#7 toggle changed results:\n%v\n%v", q, ra, rb)
		}
	}
}

func TestParallelSearchMatchesSerial(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{PrecomputeTable: true, Seed: 3})
	for q := 0; q < 5; q++ {
		serial, _ := ix.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 8})
		par, _ := ix.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 8, Threads: 4})
		if !testutil.SameResults(serial, par, 1e-3) {
			t.Fatalf("query %d: parallel diverged", q)
		}
	}
}

func TestStatsPhases(t *testing.T) {
	ix := buildSmall(t, Options{Seed: 4})
	st := ix.Stats()
	if st.TrainTime <= 0 || st.AddTime <= 0 || st.NAdded == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

func TestSizeBytesSmallerThanFlat(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 5})
	rawBytes := int64(ds.N()) * int64(ds.Dim) * 4
	if ix.SizeBytes() >= rawBytes {
		t.Errorf("IVF_PQ size %d not smaller than raw vectors %d", ix.SizeBytes(), rawBytes)
	}
}

func TestSearchQueryDimMismatch(t *testing.T) {
	ix := buildSmall(t, Options{Seed: 6})
	if _, err := ix.Search(make([]float32, 3), 5, SearchParams{NProbe: 4}); err == nil {
		t.Error("accepted wrong-dimension query")
	}
}
