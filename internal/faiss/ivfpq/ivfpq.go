// Package ivfpq implements the specialized (Faiss-style) IVF_PQ index:
// an IVF coarse quantizer whose buckets store product-quantized residual
// codes instead of raw vectors.
//
// The package exposes the paper's RC#7 directly: with
// Options.PrecomputeTable true (the Faiss default), the per-list distance
// tables are assembled from terms cached at train time plus one
// inner-product table per query; with it false the table is recomputed
// from scratch for every probed list, PASE-style, which is why the Fig 19b
// gap grows with nprobe.
package ivfpq

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/minheap"
	"vecstudy/internal/pq"
	"vecstudy/internal/prof"
	"vecstudy/internal/vec"
)

// Options configures the index.
type Options struct {
	Dim          int  // required
	NList        int  // coarse clusters (paper parameter c); required
	M            int  // PQ subspaces (paper parameter m); required, must divide Dim
	KSub         int  // PQ codewords per subspace (paper parameter c_pq); 0 = 256
	UseGemm      bool // RC#1
	Threads      int  // RC#3
	KMeansFlavor kmeans.Flavor
	SampleRatio  float64
	Seed         int64
	// PrecomputeTable enables the Faiss-style precomputed term tables
	// (RC#7). Off reproduces the PASE per-list computation.
	PrecomputeTable bool
	Prof            *prof.Profile
}

// Stats reports construction timing split into the paper's phases.
type Stats struct {
	TrainTime time.Duration
	AddTime   time.Duration
	NAdded    int
}

// Index is an in-memory IVF_PQ index.
type Index struct {
	opts      Options
	centroids []float32
	quant     *pq.Quantizer
	// precomp[r][m][j] = ‖p_mj‖² + 2·c_{r,m}·p_mj, flattened
	// NList×M×KSub; nil unless PrecomputeTable.
	precomp   []float32
	listCodes [][]byte
	listIDs   [][]int64
	stats     Stats
	trained   bool
}

// New creates an empty index, validating options.
func New(opts Options) (*Index, error) {
	if opts.Dim <= 0 || opts.NList <= 0 {
		return nil, errors.New("ivfpq: Dim and NList must be positive")
	}
	if opts.M <= 0 || opts.Dim%opts.M != 0 {
		return nil, fmt.Errorf("ivfpq: M=%d must divide Dim=%d", opts.M, opts.Dim)
	}
	if opts.KSub == 0 {
		opts.KSub = 256
	}
	return &Index{opts: opts}, nil
}

// Opts returns the construction options.
func (ix *Index) Opts() Options { return ix.opts }

// Stats returns build timing.
func (ix *Index) Stats() Stats { return ix.stats }

// Quantizer exposes the trained product quantizer.
func (ix *Index) Quantizer() *pq.Quantizer { return ix.quant }

// Train builds the coarse codebook and the product quantizer (over
// residuals), then — when PrecomputeTable is on — the per-list term
// tables.
func (ix *Index) Train(data []float32, n int) error {
	start := time.Now()
	d := ix.opts.Dim
	coarse, err := kmeans.Train(data, n, d, kmeans.Config{
		K:           ix.opts.NList,
		Seed:        ix.opts.Seed,
		SampleRatio: ix.opts.SampleRatio,
		UseGemm:     ix.opts.UseGemm,
		Threads:     ix.opts.Threads,
		Flavor:      ix.opts.KMeansFlavor,
	})
	if err != nil {
		return fmt.Errorf("ivfpq: coarse train: %w", err)
	}
	ix.centroids = coarse.Centroids

	// PQ is trained on residuals x − c(x), like Faiss's by_residual mode.
	// Training on the full set is wasteful; subsample like the coarse step.
	tn := n
	maxTrain := 256 * ix.opts.KSub / 4
	if maxTrain < 4*ix.opts.KSub {
		maxTrain = 4 * ix.opts.KSub
	}
	if tn > maxTrain {
		tn = maxTrain
	}
	assign := make([]int32, tn)
	vec.AssignBatch(data[:tn*d], tn, ix.centroids, ix.opts.NList, d, assign, nil, ix.opts.UseGemm, ix.opts.Threads)
	resid := make([]float32, tn*d)
	for i := 0; i < tn; i++ {
		c := ix.centroids[int(assign[i])*d : (int(assign[i])+1)*d]
		row := data[i*d : (i+1)*d]
		dst := resid[i*d : (i+1)*d]
		for j := range dst {
			dst[j] = row[j] - c[j]
		}
	}
	quant, err := pq.Train(resid, tn, d, pq.Config{
		M:       ix.opts.M,
		KSub:    ix.opts.KSub,
		Seed:    ix.opts.Seed + 1,
		UseGemm: ix.opts.UseGemm,
		Threads: ix.opts.Threads,
		Flavor:  ix.opts.KMeansFlavor,
	})
	if err != nil {
		return fmt.Errorf("ivfpq: pq train: %w", err)
	}
	ix.quant = quant

	if ix.opts.PrecomputeTable {
		ix.buildPrecomputedTables()
	}
	ix.listCodes = make([][]byte, ix.opts.NList)
	ix.listIDs = make([][]int64, ix.opts.NList)
	ix.trained = true
	ix.stats.TrainTime += time.Since(start)
	return nil
}

// buildPrecomputedTables fills precomp[r][m][j] = ‖p_mj‖² + 2·c_{r,m}·p_mj.
// This is the train-time work that lets search assemble a distance table
// with one multiply-add per entry instead of a dsub-length scalar loop.
func (ix *Index) buildPrecomputedTables() {
	q := ix.quant
	norms := q.CodewordNorms()
	ix.precomp = make([]float32, ix.opts.NList*q.M*q.KSub)
	threads := ix.opts.Threads
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	per := (ix.opts.NList + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * per
		if lo >= ix.opts.NList {
			break
		}
		hi := lo + per
		if hi > ix.opts.NList {
			hi = ix.opts.NList
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				c := ix.centroids[r*ix.opts.Dim : (r+1)*ix.opts.Dim]
				base := r * q.M * q.KSub
				for m := 0; m < q.M; m++ {
					cm := c[m*q.DSub : (m+1)*q.DSub]
					for j := 0; j < q.KSub; j++ {
						ix.precomp[base+m*q.KSub+j] = norms[m*q.KSub+j] + 2*vec.Dot(cm, q.Codeword(m, j))
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Add encodes vectors as residual PQ codes and appends them to the bucket
// of their nearest coarse centroid.
func (ix *Index) Add(data []float32, n int, ids []int64) error {
	if !ix.trained {
		return errors.New("ivfpq: Add before Train")
	}
	start := time.Now()
	d := ix.opts.Dim
	assign := make([]int32, n)
	vec.AssignBatch(data, n, ix.centroids, ix.opts.NList, d, assign, nil, ix.opts.UseGemm, ix.opts.Threads)
	base := int64(ix.stats.NAdded)
	threads := ix.opts.Threads
	if threads < 1 {
		threads = 1
	}
	codes := make([]byte, n*ix.quant.M)
	var wg sync.WaitGroup
	per := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * per
		if lo >= n {
			break
		}
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			resid := make([]float32, d)
			for i := lo; i < hi; i++ {
				c := ix.centroids[int(assign[i])*d : (int(assign[i])+1)*d]
				row := data[i*d : (i+1)*d]
				for j := range resid {
					resid[j] = row[j] - c[j]
				}
				ix.quant.Encode(resid, codes[i*ix.quant.M:(i+1)*ix.quant.M])
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		list := assign[i]
		ix.listCodes[list] = append(ix.listCodes[list], codes[i*ix.quant.M:(i+1)*ix.quant.M]...)
		id := base + int64(i)
		if ids != nil {
			id = ids[i]
		}
		ix.listIDs[list] = append(ix.listIDs[list], id)
	}
	ix.stats.NAdded += n
	ix.stats.AddTime += time.Since(start)
	return nil
}

// SearchParams tunes one search call.
type SearchParams struct {
	NProbe  int
	Threads int
}

// Search returns the k approximate nearest neighbors of query using
// asymmetric distance computation over the PQ codes.
func (ix *Index) Search(query []float32, k int, p SearchParams) ([]minheap.Item, error) {
	if !ix.trained {
		return nil, errors.New("ivfpq: Search before Train")
	}
	if len(query) != ix.opts.Dim {
		return nil, fmt.Errorf("ivfpq: query dimension %d != %d", len(query), ix.opts.Dim)
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > ix.opts.NList {
		nprobe = ix.opts.NList
	}
	probes, coarseDists := ix.selectProbes(query, nprobe)
	if p.Threads > 1 {
		return ix.searchParallel(query, k, probes, coarseDists, p.Threads), nil
	}
	pr := ix.opts.Prof
	heap := minheap.NewTopK(k)
	tab := make([]float32, ix.quant.M*ix.quant.KSub)
	var ipTab []float32
	if ix.opts.PrecomputeTable {
		ts := pr.Timer("precomputed-table").Start()
		ipTab = make([]float32, ix.quant.M*ix.quant.KSub)
		ix.quant.InnerProductTable(query, ipTab)
		pr.Timer("precomputed-table").Stop(ts)
	}
	scratch := make([]float32, ix.opts.Dim)
	for pi, list := range probes {
		ix.listTable(query, list, coarseDists[pi], ipTab, tab, scratch)
		ix.scanList(list, coarseDists[pi], tab, heap)
	}
	return heap.Results(), nil
}

// listTable fills tab with the per-codeword distance contributions for
// one probed list. With precomputed tables the entries are
// precomp − 2·ip (to be offset by the coarse term1 during the scan);
// without, the entries are exact residual sub-distances and term1 is 0.
func (ix *Index) listTable(query []float32, list int32, term1 float32, ipTab, tab, scratch []float32) {
	q := ix.quant
	pr := ix.opts.Prof
	ts := pr.Timer("precomputed-table").Start()
	defer pr.Timer("precomputed-table").Stop(ts)
	if ix.opts.PrecomputeTable {
		base := int(list) * q.M * q.KSub
		pc := ix.precomp[base : base+q.M*q.KSub]
		for i := range tab {
			tab[i] = pc[i] - 2*ipTab[i]
		}
		return
	}
	// PASE path: recompute the residual and a naive table per list.
	c := ix.centroids[int(list)*ix.opts.Dim : (int(list)+1)*ix.opts.Dim]
	for j := range scratch {
		scratch[j] = query[j] - c[j]
	}
	q.DistanceTableNaive(scratch, tab)
}

// scanList accumulates table lookups for every code in the list and pushes
// candidates into the heap.
func (ix *Index) scanList(list int32, term1 float32, tab []float32, heap *minheap.TopK) {
	q := ix.quant
	pr := ix.opts.Prof
	codes := ix.listCodes[list]
	ids := ix.listIDs[list]
	offset := float32(0)
	if ix.opts.PrecomputeTable {
		offset = term1
	}
	ts := pr.Timer("adc-scan").Start()
	for i, id := range ids {
		code := codes[i*q.M : (i+1)*q.M]
		dist := offset
		for m, cj := range code {
			dist += tab[m*q.KSub+int(cj)]
		}
		hs := pr.Timer("min-heap").Start()
		heap.Push(id, dist)
		pr.Timer("min-heap").Stop(hs)
	}
	pr.Timer("adc-scan").Stop(ts)
}

// kern is the fixed kernel the specialized engine scores with: the
// session-level SET distance_kernel knob is a SQL-layer concept; the
// in-memory engine always uses the best registered kernel.
var kern = vec.Default()

func (ix *Index) selectProbes(query []float32, nprobe int) ([]int32, []float32) {
	heap := minheap.NewTopK(nprobe)
	d := ix.opts.Dim
	for c := 0; c < ix.opts.NList; c++ {
		heap.Push(int64(c), kern.L2Sqr(query, ix.centroids[c*d:(c+1)*d]))
	}
	items := heap.Results()
	lists := make([]int32, len(items))
	dists := make([]float32, len(items))
	for i, it := range items {
		lists[i] = int32(it.ID)
		dists[i] = it.Dist
	}
	return lists, dists
}

func (ix *Index) searchParallel(query []float32, k int, probes []int32, coarseDists []float32, threads int) []minheap.Item {
	if threads > len(probes) {
		threads = len(probes)
	}
	var ipTab []float32
	if ix.opts.PrecomputeTable {
		ipTab = make([]float32, ix.quant.M*ix.quant.KSub)
		ix.quant.InnerProductTable(query, ipTab)
	}
	locals := make([]*minheap.TopK, threads)
	var wg sync.WaitGroup
	var cursor int32 = -1
	var mu sync.Mutex
	nextIdx := func() int {
		mu.Lock()
		defer mu.Unlock()
		cursor++
		if int(cursor) >= len(probes) {
			return -1
		}
		return int(cursor)
	}
	for t := 0; t < threads; t++ {
		locals[t] = minheap.NewTopK(k)
		wg.Add(1)
		go func(local *minheap.TopK) {
			defer wg.Done()
			tab := make([]float32, ix.quant.M*ix.quant.KSub)
			scratch := make([]float32, ix.opts.Dim)
			for {
				pi := nextIdx()
				if pi < 0 {
					return
				}
				ix.listTable(query, probes[pi], coarseDists[pi], ipTab, tab, scratch)
				ix.scanList(probes[pi], coarseDists[pi], tab, local)
			}
		}(locals[t])
	}
	wg.Wait()
	return minheap.MergeLocal(k, locals)
}

// SizeBytes returns the index footprint: coarse centroids, codebooks,
// codes, IDs, and (when enabled) the precomputed tables.
func (ix *Index) SizeBytes() int64 {
	size := int64(len(ix.centroids))*4 + ix.quant.SizeBytes() + int64(len(ix.precomp))*4
	for i := range ix.listCodes {
		size += int64(len(ix.listCodes[i])) + int64(len(ix.listIDs[i]))*8
	}
	return size
}
