// Package ivfflat implements the specialized (Faiss-style) IVF_FLAT index:
// a K-means coarse quantizer over in-memory float32 vectors, with each
// vector stored uncompressed in the bucket (inverted list) of its nearest
// centroid.
//
// Every root-cause toggle the paper studies on this index is an explicit
// option:
//
//   - RC#1 UseGemm: SGEMM-batched assignment in the adding phase (Fig 3/4).
//   - RC#3 Threads: parallel build (Fig 9) and local-heap parallel search
//     (Fig 18).
//   - RC#5 KMeansFlavor: which K-means implementation trains the coarse
//     centroids (Fig 14/15).
//   - RC#6 is fixed "on" here: search uses a bounded heap of size k. The
//     PASE engine (internal/pase/ivfflat) uses the size-n collector.
package ivfflat

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/minheap"
	"vecstudy/internal/prof"
	"vecstudy/internal/vec"
)

// Options configures the index at construction time.
type Options struct {
	Dim          int           // vector dimensionality; required
	NList        int           // number of coarse clusters (paper parameter c); required
	UseGemm      bool          // RC#1: batched SGEMM distance computation
	Threads      int           // RC#3: build parallelism; ≤1 serial (paper default 1)
	KMeansFlavor kmeans.Flavor // RC#5
	SampleRatio  float64       // K-means training sample ratio (paper parameter sr)
	Seed         int64
	Prof         *prof.Profile // optional breakdown instrumentation
}

// Stats reports construction timing, split the way Figs 3–6 report it.
type Stats struct {
	TrainTime time.Duration
	AddTime   time.Duration
	NAdded    int
}

// Index is an in-memory IVF_FLAT index. It is safe for concurrent
// searches after construction; Train/Add are not concurrency-safe.
type Index struct {
	opts      Options
	centroids []float32 // NList×Dim
	cnorms    []float32 // cached ‖c‖², reused by the decomposed distance path
	listVecs  [][]float32
	listIDs   [][]int64
	stats     Stats
	trained   bool
}

// New creates an empty index. It returns an error for invalid options so
// misconfiguration surfaces at construction rather than mid-benchmark.
func New(opts Options) (*Index, error) {
	if opts.Dim <= 0 {
		return nil, errors.New("ivfflat: Dim must be positive")
	}
	if opts.NList <= 0 {
		return nil, errors.New("ivfflat: NList must be positive")
	}
	return &Index{opts: opts}, nil
}

// Opts returns the construction options.
func (ix *Index) Opts() Options { return ix.opts }

// Stats returns build timing collected so far.
func (ix *Index) Stats() Stats { return ix.stats }

// NList returns the number of coarse clusters.
func (ix *Index) NList() int { return ix.opts.NList }

// Centroids exposes the trained codebook (row-major NList×Dim). It is the
// hook used by the Fig 15 experiment to copy PASE's centroids into a
// Faiss-side index ("Faiss*").
func (ix *Index) Centroids() []float32 { return ix.centroids }

// SetCentroids installs externally trained centroids, marking the index
// trained. The slice is copied.
func (ix *Index) SetCentroids(c []float32) error {
	if len(c) != ix.opts.NList*ix.opts.Dim {
		return fmt.Errorf("ivfflat: centroid matrix must be %d×%d", ix.opts.NList, ix.opts.Dim)
	}
	ix.centroids = append([]float32(nil), c...)
	ix.cnorms = vec.Norms2(ix.centroids, ix.opts.NList, ix.opts.Dim, make([]float32, ix.opts.NList))
	ix.listVecs = make([][]float32, ix.opts.NList)
	ix.listIDs = make([][]int64, ix.opts.NList)
	ix.trained = true
	return nil
}

// Train runs K-means over the n×Dim row-major matrix data to build the
// coarse codebook (the paper's "training phase").
func (ix *Index) Train(data []float32, n int) error {
	start := time.Now()
	res, err := kmeans.Train(data, n, ix.opts.Dim, kmeans.Config{
		K:           ix.opts.NList,
		Seed:        ix.opts.Seed,
		SampleRatio: ix.opts.SampleRatio,
		UseGemm:     ix.opts.UseGemm,
		Threads:     ix.opts.Threads,
		Flavor:      ix.opts.KMeansFlavor,
	})
	if err != nil {
		return fmt.Errorf("ivfflat: train: %w", err)
	}
	ix.stats.TrainTime += time.Since(start)
	return ix.SetCentroids(res.Centroids)
}

// Add assigns each vector to its nearest centroid and appends it to that
// bucket (the paper's "adding phase"). ids may be nil, in which case rows
// get sequential IDs continuing from the current count.
func (ix *Index) Add(data []float32, n int, ids []int64) error {
	if !ix.trained {
		return errors.New("ivfflat: Add before Train")
	}
	if ids != nil && len(ids) != n {
		return fmt.Errorf("ivfflat: %d ids for %d vectors", len(ids), n)
	}
	start := time.Now()
	d := ix.opts.Dim
	assign := make([]int32, n)
	vec.AssignBatch(data, n, ix.centroids, ix.opts.NList, d, assign, nil, ix.opts.UseGemm, ix.opts.Threads)
	base := int64(ix.stats.NAdded)
	for i := 0; i < n; i++ {
		list := assign[i]
		ix.listVecs[list] = append(ix.listVecs[list], data[i*d:(i+1)*d]...)
		id := base + int64(i)
		if ids != nil {
			id = ids[i]
		}
		ix.listIDs[list] = append(ix.listIDs[list], id)
	}
	ix.stats.NAdded += n
	ix.stats.AddTime += time.Since(start)
	return nil
}

// SearchParams tunes one search call.
type SearchParams struct {
	NProbe  int // number of buckets to scan (paper parameter nprobe); required
	Threads int // RC#3 intra-query parallelism; ≤1 serial
}

// Search returns the k nearest stored vectors to query, ascending by
// distance.
func (ix *Index) Search(query []float32, k int, p SearchParams) ([]minheap.Item, error) {
	if !ix.trained {
		return nil, errors.New("ivfflat: Search before Train")
	}
	if len(query) != ix.opts.Dim {
		return nil, fmt.Errorf("ivfflat: query dimension %d != %d", len(query), ix.opts.Dim)
	}
	if k <= 0 {
		return nil, errors.New("ivfflat: k must be positive")
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > ix.opts.NList {
		nprobe = ix.opts.NList
	}
	probes := ix.selectProbes(query, nprobe)
	if p.Threads > 1 {
		return ix.searchParallel(query, k, probes, p.Threads), nil
	}
	pr := ix.opts.Prof
	heap := minheap.NewTopK(k)
	tDist := pr.Timer("fvec_L2sqr")
	tHeap := pr.Timer("min-heap")
	d := ix.opts.Dim
	for _, list := range probes {
		vecs, ids := ix.listVecs[list], ix.listIDs[list]
		for i, id := range ids {
			ts := tDist.Start()
			dist := kern.L2Sqr(query, vecs[i*d:(i+1)*d])
			tDist.Stop(ts)
			ts = tHeap.Start()
			heap.Push(id, dist)
			tHeap.Stop(ts)
		}
	}
	return heap.Results(), nil
}

// kern is the fixed kernel the specialized engine scores with: the
// session-level SET distance_kernel knob is a SQL-layer concept; the
// in-memory engine always uses the best registered kernel.
var kern = vec.Default()

// selectProbes ranks centroids by distance to the query and returns the
// nprobe closest list numbers.
func (ix *Index) selectProbes(query []float32, nprobe int) []int32 {
	heap := minheap.NewTopK(nprobe)
	d := ix.opts.Dim
	for c := 0; c < ix.opts.NList; c++ {
		heap.Push(int64(c), kern.L2Sqr(query, ix.centroids[c*d:(c+1)*d]))
	}
	items := heap.Results()
	out := make([]int32, len(items))
	for i, it := range items {
		out[i] = int32(it.ID)
	}
	return out
}

// searchParallel scans probed buckets across worker goroutines, each with
// a local size-k heap, then merges — the Faiss strategy the paper
// contrasts with PASE's lock-guarded global heap in Fig 18.
func (ix *Index) searchParallel(query []float32, k int, probes []int32, threads int) []minheap.Item {
	if threads > len(probes) {
		threads = len(probes)
	}
	locals := make([]*minheap.TopK, threads)
	var next int32 = -1
	var mu sync.Mutex
	nextProbe := func() (int32, bool) {
		mu.Lock()
		defer mu.Unlock()
		next++
		if int(next) >= len(probes) {
			return 0, false
		}
		return probes[next], true
	}
	var wg sync.WaitGroup
	d := ix.opts.Dim
	for t := 0; t < threads; t++ {
		locals[t] = minheap.NewTopK(k)
		wg.Add(1)
		go func(local *minheap.TopK) {
			defer wg.Done()
			for {
				list, ok := nextProbe()
				if !ok {
					return
				}
				vecs, ids := ix.listVecs[list], ix.listIDs[list]
				for i, id := range ids {
					local.Push(id, kern.L2Sqr(query, vecs[i*d:(i+1)*d]))
				}
			}
		}(locals[t])
	}
	wg.Wait()
	return minheap.MergeLocal(k, locals)
}

// SizeBytes returns the in-memory index footprint: centroids, bucket
// vectors, and 8-byte IDs — the quantity Fig 11 reports.
func (ix *Index) SizeBytes() int64 {
	size := int64(len(ix.centroids)) * 4
	for i := range ix.listVecs {
		size += int64(len(ix.listVecs[i]))*4 + int64(len(ix.listIDs[i]))*8
	}
	return size
}

// ListSizes returns the population of every bucket; benchmarks use it to
// report cluster skew between K-means flavours (RC#5).
func (ix *Index) ListSizes() []int {
	out := make([]int, ix.opts.NList)
	for i := range ix.listIDs {
		out[i] = len(ix.listIDs[i])
	}
	return out
}

// Assignments returns, for each stored vector ID, its bucket. The Fig 15
// experiment uses it to clone PASE's exact clustering into Faiss*.
func (ix *Index) Assignments() map[int64]int32 {
	out := make(map[int64]int32, ix.stats.NAdded)
	for list, ids := range ix.listIDs {
		for _, id := range ids {
			out[id] = int32(list)
		}
	}
	return out
}

// AddPreassigned appends vectors with externally determined bucket
// assignments, bypassing the quantizer (Fig 15's Faiss* construction).
func (ix *Index) AddPreassigned(data []float32, n int, ids []int64, assign []int32) error {
	if !ix.trained {
		return errors.New("ivfflat: AddPreassigned before centroids installed")
	}
	d := ix.opts.Dim
	for i := 0; i < n; i++ {
		list := assign[i]
		if int(list) >= ix.opts.NList {
			return fmt.Errorf("ivfflat: assignment %d out of range", list)
		}
		ix.listVecs[list] = append(ix.listVecs[list], data[i*d:(i+1)*d]...)
		ix.listIDs[list] = append(ix.listIDs[list], ids[i])
	}
	ix.stats.NAdded += n
	return nil
}
