package ivfflat

import (
	"testing"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/minheap"
	"vecstudy/internal/testutil"
)

func buildSmall(t *testing.T, opts Options) *Index {
	t.Helper()
	ds := testutil.SmallDataset(t)
	if opts.Dim == 0 {
		opts.Dim = ds.Dim
	}
	if opts.NList == 0 {
		opts.NList = ds.NumClusters()
	}
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Train(ds.Base.Data, ds.N()); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(ds.Base.Data, ds.N(), nil); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Dim: 0, NList: 4}); err == nil {
		t.Error("accepted Dim=0")
	}
	if _, err := New(Options{Dim: 4, NList: 0}); err == nil {
		t.Error("accepted NList=0")
	}
}

func TestLifecycleErrors(t *testing.T) {
	ix, _ := New(Options{Dim: 8, NList: 2})
	if err := ix.Add(make([]float32, 8), 1, nil); err == nil {
		t.Error("Add before Train succeeded")
	}
	if _, err := ix.Search(make([]float32, 8), 1, SearchParams{NProbe: 1}); err == nil {
		t.Error("Search before Train succeeded")
	}
}

func TestSearchRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{UseGemm: true, Seed: 1})
	recall := testutil.Recall(t, ds, 10, func(q []float32) []minheap.Item {
		items, err := ix.Search(q, 10, SearchParams{NProbe: 10})
		if err != nil {
			t.Fatal(err)
		}
		return items
	})
	if recall < 0.85 {
		t.Errorf("recall@10 with nprobe=10: %v, want >= 0.85", recall)
	}
}

func TestSearchExhaustiveProbesIsExact(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{UseGemm: true, Seed: 2})
	recall := testutil.Recall(t, ds, 10, func(q []float32) []minheap.Item {
		items, err := ix.Search(q, 10, SearchParams{NProbe: ix.NList()})
		if err != nil {
			t.Fatal(err)
		}
		return items
	})
	if recall != 1 {
		t.Errorf("probing all lists must be exact; recall = %v", recall)
	}
}

func TestSearchResultsSortedAndK(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 3})
	items, err := ix.Search(ds.Queries.Row(0), 7, SearchParams{NProbe: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 7 {
		t.Fatalf("got %d items, want 7", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Dist < items[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestParallelSearchMatchesSerial(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{UseGemm: true, Seed: 4})
	for q := 0; q < 5; q++ {
		serial, err := ix.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 8})
		if err != nil {
			t.Fatal(err)
		}
		par, err := ix.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 8, Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.SameResults(serial, par, 1e-4) {
			t.Fatalf("query %d: parallel diverged from serial", q)
		}
	}
}

func TestGemmToggleSameResults(t *testing.T) {
	ds := testutil.SmallDataset(t)
	a := buildSmall(t, Options{UseGemm: true, Seed: 5})
	b := buildSmall(t, Options{UseGemm: false, Seed: 5})
	for q := 0; q < 5; q++ {
		ra, _ := a.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: a.NList()})
		rb, _ := b.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: b.NList()})
		if !testutil.SameResults(ra, rb, 1e-3) {
			t.Fatalf("query %d: RC#1 toggle changed exhaustive results", q)
		}
	}
}

func TestStatsPhases(t *testing.T) {
	ix := buildSmall(t, Options{Seed: 6})
	st := ix.Stats()
	if st.TrainTime <= 0 || st.AddTime <= 0 {
		t.Errorf("phase timings not recorded: %+v", st)
	}
	if st.NAdded != testutil.SmallDataset(t).N() {
		t.Errorf("NAdded = %d", st.NAdded)
	}
}

func TestSizeBytes(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 7})
	// vectors (n·d·4) + ids (n·8) + centroids (c·d·4)
	want := int64(ds.N())*int64(ds.Dim)*4 + int64(ds.N())*8 + int64(ix.NList())*int64(ds.Dim)*4
	if got := ix.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestListSizesSumToN(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 8})
	total := 0
	for _, s := range ix.ListSizes() {
		total += s
	}
	if total != ds.N() {
		t.Errorf("list sizes sum to %d, want %d", total, ds.N())
	}
}

func TestFaissStarInjection(t *testing.T) {
	// Fig 15: an index built from another index's centroids and
	// assignments must return identical exhaustive results.
	ds := testutil.SmallDataset(t)
	src := buildSmall(t, Options{KMeansFlavor: kmeans.FlavorPASE, Seed: 9})

	star, err := New(Options{Dim: ds.Dim, NList: src.NList(), UseGemm: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := star.SetCentroids(src.Centroids()); err != nil {
		t.Fatal(err)
	}
	assignMap := src.Assignments()
	assign := make([]int32, ds.N())
	ids := make([]int64, ds.N())
	for i := range assign {
		assign[i] = assignMap[int64(i)]
		ids[i] = int64(i)
	}
	if err := star.AddPreassigned(ds.Base.Data, ds.N(), ids, assign); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		a, _ := src.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 20})
		b, _ := star.Search(ds.Queries.Row(q), 10, SearchParams{NProbe: 20})
		if !testutil.SameResults(a, b, 1e-4) {
			t.Fatalf("query %d: Faiss* diverged from source clustering", q)
		}
	}
}

func TestSetCentroidsValidation(t *testing.T) {
	ix, _ := New(Options{Dim: 4, NList: 2})
	if err := ix.SetCentroids(make([]float32, 7)); err == nil {
		t.Error("accepted wrong-size centroid matrix")
	}
}

func TestAddWithExplicitIDs(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix, _ := New(Options{Dim: ds.Dim, NList: 8})
	if err := ix.Train(ds.Base.Data, ds.N()); err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, 100)
	for i := range ids {
		ids[i] = int64(1000 + i)
	}
	if err := ix.Add(ds.Base.Data[:100*ds.Dim], 100, ids); err != nil {
		t.Fatal(err)
	}
	items, err := ix.Search(ds.Base.Row(0), 1, SearchParams{NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].ID != 1000 || items[0].Dist != 0 {
		t.Errorf("self-search = %+v, want id 1000 dist 0", items[0])
	}
}
