package hnsw

import (
	"testing"

	"vecstudy/internal/minheap"
	"vecstudy/internal/prof"
	"vecstudy/internal/testutil"
)

func buildSmall(t *testing.T, opts Options) *Index {
	t.Helper()
	ds := testutil.SmallDataset(t)
	if opts.Dim == 0 {
		opts.Dim = ds.Dim
	}
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(ds.Base.Data, ds.N()); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidationAndDefaults(t *testing.T) {
	if _, err := New(Options{Dim: 0}); err == nil {
		t.Error("accepted Dim=0")
	}
	if _, err := New(Options{Dim: 4, BNN: 1}); err == nil {
		t.Error("accepted BNN=1")
	}
	ix, err := New(Options{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Opts().BNN != 16 || ix.Opts().EFB != 40 {
		t.Errorf("paper defaults not applied: %+v", ix.Opts())
	}
}

func TestEmptySearch(t *testing.T) {
	ix, _ := New(Options{Dim: 4})
	if _, err := ix.Search(make([]float32, 4), 1, 10); err == nil {
		t.Error("search on empty index succeeded")
	}
}

func TestSearchRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{BNN: 16, EFB: 40, Seed: 1})
	recall := testutil.Recall(t, ds, 10, func(q []float32) []minheap.Item {
		items, err := ix.Search(q, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		return items
	})
	if recall < 0.9 {
		t.Errorf("recall@10 with efs=200: %v, want >= 0.9", recall)
	}
}

func TestRecallImprovesWithEfs(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 2})
	recallAt := func(efs int) float64 {
		return testutil.Recall(t, ds, 10, func(q []float32) []minheap.Item {
			items, _ := ix.Search(q, 10, efs)
			return items
		})
	}
	lo, hi := recallAt(10), recallAt(200)
	if hi < lo-0.02 {
		t.Errorf("recall did not improve with efs: %v -> %v", lo, hi)
	}
}

func TestSelfSearchFindsSelf(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 3})
	misses := 0
	for i := 0; i < 50; i++ {
		items, err := ix.Search(ds.Base.Row(i), 1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if items[0].Dist != 0 {
			misses++
		}
	}
	// HNSW is approximate, but self-queries should almost always hit.
	if misses > 2 {
		t.Errorf("%d/50 self-searches missed", misses)
	}
}

func TestResultsSortedAndTruncated(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 4})
	items, err := ix.Search(ds.Queries.Row(0), 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("len = %d, want 5", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Dist < items[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestDegreeBounds(t *testing.T) {
	ix := buildSmall(t, Options{BNN: 8, Seed: 5})
	for i, node := range ix.links {
		for l, list := range node {
			limit := 8
			if l == 0 {
				limit = 16
			}
			if len(list) > limit {
				t.Fatalf("vertex %d level %d has %d links (limit %d)", i, l, len(list), limit)
			}
			for _, nb := range list {
				if nb == int32(i) {
					t.Fatalf("vertex %d has a self-link at level %d", i, l)
				}
				if int(nb) >= ix.N() {
					t.Fatalf("vertex %d links to nonexistent %d", i, nb)
				}
			}
		}
	}
}

func TestLevelDistribution(t *testing.T) {
	ix := buildSmall(t, Options{Seed: 6})
	gs := ix.Graph()
	if gs.PerLevel[0] == 0 {
		t.Fatal("no vertices at level 0")
	}
	// Levels must decay roughly geometrically: level l+1 strictly smaller
	// populations than level l (allowing noise at the sparse top).
	if len(gs.PerLevel) > 1 && gs.PerLevel[1] >= gs.PerLevel[0] {
		t.Errorf("level populations not decaying: %v", gs.PerLevel)
	}
	if gs.AvgDegree <= 1 {
		t.Errorf("average degree %v too low", gs.AvgDegree)
	}
}

func TestGraphConnectivity(t *testing.T) {
	// Every vertex must be reachable from the entry point at level 0;
	// otherwise some vectors can never be returned.
	ix := buildSmall(t, Options{Seed: 7})
	n := ix.N()
	seen := make([]bool, n)
	queue := []int32{ix.entryPoint}
	seen[ix.entryPoint] = true
	count := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		count++
		for _, nb := range ix.links[v][0] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if count < n*99/100 {
		t.Errorf("only %d/%d vertices reachable at level 0", count, n)
	}
}

func TestBuildPhaseTimersRecorded(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := prof.New()
	ix, err := New(Options{Dim: ds.Dim, Seed: 8, Prof: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(ds.Base.Data[:500*ds.Dim], 500); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"SearchNbToAdd", "AddLink", "GreedyUpdate", "ShrinkNbList"} {
		if p.Timer(phase).Count() == 0 {
			t.Errorf("phase %s never recorded", phase)
		}
	}
	// Table III: SearchNbToAdd dominates construction.
	if p.Timer("SearchNbToAdd").Total() < p.Timer("AddLink").Total() {
		t.Error("SearchNbToAdd should dominate AddLink")
	}
}

func TestSizeBytes(t *testing.T) {
	ds := testutil.SmallDataset(t)
	ix := buildSmall(t, Options{Seed: 9})
	min := ds.Base.Bytes() // must at least store the vectors
	if got := ix.SizeBytes(); got <= min {
		t.Errorf("SizeBytes = %d, want > %d", got, min)
	}
	// Faiss-style accounting: neighbor storage is ~4 bytes/slot; the
	// index must be well under 2× the raw vectors at bnn=16, d=128.
	if got := ix.SizeBytes(); got > 2*min {
		t.Errorf("SizeBytes = %d suspiciously large (raw %d)", got, min)
	}
}

func TestAddValidation(t *testing.T) {
	ix, _ := New(Options{Dim: 4})
	if err := ix.Add(make([]float32, 7), 2); err == nil {
		t.Error("accepted mismatched data length")
	}
}

func TestSearchDimValidation(t *testing.T) {
	ix := buildSmall(t, Options{Seed: 10})
	if _, err := ix.Search(make([]float32, 2), 1, 10); err == nil {
		t.Error("accepted wrong-dimension query")
	}
}
