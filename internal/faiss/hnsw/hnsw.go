// Package hnsw implements the specialized (Faiss-style) HNSW graph index:
// a hierarchy of proximity graphs where every vertex is a stored vector,
// neighbor lists are flat 4-byte vertex-ID arrays, and all traversal is
// direct memory access.
//
// The build phases are named and instrumented exactly as the paper's
// Table III breaks them down — SearchNbToAdd, AddLink, GreedyUpdate,
// ShrinkNbList — so the breakdown experiments compare like with like
// against the PASE implementation (internal/pase/hnsw), whose versions of
// the same phases pay buffer-manager and tuple-access costs (RC#2) and a
// page-per-adjacency-list layout (RC#4).
package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"vecstudy/internal/minheap"
	"vecstudy/internal/prof"
	"vecstudy/internal/vec"
)

// Options configures the graph.
type Options struct {
	Dim int // required
	// BNN is the base neighbor count (paper parameter bnn, a.k.a. M):
	// upper-level vertices keep BNN links, level-0 vertices keep 2·BNN.
	BNN int
	// EFB is the construction-time priority-queue length (paper efb).
	EFB  int
	Seed int64
	Prof *prof.Profile
}

// Stats reports construction timing by phase (Table III).
type Stats struct {
	Total  time.Duration
	NAdded int
}

// Index is an in-memory HNSW graph.
type Index struct {
	opts Options
	vecs *vec.Flat
	// levels[i] is the top level of vertex i (0-based; 0 = bottom only).
	levels []int32
	// links[i][l] is the neighbor array of vertex i at level l;
	// len(links[i]) == levels[i]+1. Level 0 arrays have capacity 2·BNN,
	// upper levels BNN — matching Faiss's flat int32 storage.
	links      [][][]int32
	entryPoint int32
	maxLevel   int32
	levelMult  float64
	rng        *rand.Rand
	stats      Stats

	// visited is a Faiss-style epoch-stamped visited table: O(1) checks
	// with no hashing and no clearing between queries.
	visited      []uint32
	visitedEpoch uint32
}

// New creates an empty graph, validating options and applying the paper's
// defaults (bnn=16, efb=40) when fields are zero.
func New(opts Options) (*Index, error) {
	if opts.Dim <= 0 {
		return nil, errors.New("hnsw: Dim must be positive")
	}
	if opts.BNN == 0 {
		opts.BNN = 16
	}
	if opts.BNN < 2 {
		return nil, errors.New("hnsw: BNN must be >= 2")
	}
	if opts.EFB == 0 {
		opts.EFB = 40
	}
	return &Index{
		opts:       opts,
		vecs:       vec.NewFlat(opts.Dim, 0),
		entryPoint: -1,
		maxLevel:   -1,
		levelMult:  1 / math.Log(float64(opts.BNN)),
		rng:        rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// Opts returns the construction options.
func (ix *Index) Opts() Options { return ix.opts }

// Stats returns accumulated build statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// N returns the number of stored vectors.
func (ix *Index) N() int { return ix.vecs.N() }

// capAt returns the link capacity at a level.
func (ix *Index) capAt(level int32) int {
	if level == 0 {
		return 2 * ix.opts.BNN
	}
	return ix.opts.BNN
}

// randomLevel draws a vertex level from the HNSW exponential distribution.
func (ix *Index) randomLevel() int32 {
	r := ix.rng.Float64()
	for r <= 0 {
		r = ix.rng.Float64()
	}
	return int32(math.Floor(-math.Log(r) * ix.levelMult))
}

// Add inserts the n×Dim row-major matrix data; vertex IDs are assigned
// sequentially (vertex ID == row index across all Add calls).
func (ix *Index) Add(data []float32, n int) error {
	if len(data) != n*ix.opts.Dim {
		return fmt.Errorf("hnsw: data length %d != n*Dim", len(data))
	}
	start := time.Now()
	d := ix.opts.Dim
	for i := 0; i < n; i++ {
		ix.insert(data[i*d : (i+1)*d])
	}
	ix.stats.NAdded += n
	ix.stats.Total += time.Since(start)
	return nil
}

func (ix *Index) insert(x []float32) {
	pr := ix.opts.Prof
	id := int32(ix.vecs.N())
	ix.vecs.Append(x)
	ix.visited = append(ix.visited, 0)
	level := ix.randomLevel()
	ix.levels = append(ix.levels, level)
	nodeLinks := make([][]int32, level+1)
	for l := int32(0); l <= level; l++ {
		nodeLinks[l] = make([]int32, 0, ix.capAt(l))
	}
	ix.links = append(ix.links, nodeLinks)

	if ix.entryPoint < 0 {
		ix.entryPoint = id
		ix.maxLevel = level
		return
	}

	ep := ix.entryPoint
	epDist := ix.dist(x, ep)

	// GreedyUpdate: descend through levels above the new vertex's level,
	// greedily moving to the closest neighbor at each.
	ts := pr.Timer("GreedyUpdate").Start()
	for lev := ix.maxLevel; lev > level; lev-- {
		ep, epDist = ix.greedyClosest(x, ep, epDist, lev)
	}
	pr.Timer("GreedyUpdate").Stop(ts)

	topLevel := level
	if topLevel > ix.maxLevel {
		topLevel = ix.maxLevel
	}
	for lev := topLevel; lev >= 0; lev-- {
		// SearchNbToAdd: beam search with queue length efb to collect
		// neighbor candidates for the new vertex.
		ts := pr.Timer("SearchNbToAdd").Start()
		cands := ix.searchLayer(x, ep, epDist, ix.opts.EFB, lev, pr)
		pr.Timer("SearchNbToAdd").Stop(ts)

		// ShrinkNbList: prune candidates to the level's capacity with the
		// HNSW diversification heuristic.
		ts = pr.Timer("ShrinkNbList").Start()
		selected := ix.selectNeighbors(cands, ix.capAt(lev))
		pr.Timer("ShrinkNbList").Stop(ts)

		// AddLink: wire the new vertex and its reverse edges. Reverse
		// lists that overflow are collected and rebuilt afterwards so the
		// shrink cost is attributed to ShrinkNbList, as Table III does.
		ts = pr.Timer("AddLink").Start()
		ix.links[id][lev] = append(ix.links[id][lev], idsOf(selected)...)
		var overflow []minheap.Item
		for _, nb := range selected {
			list := ix.links[nb.ID][lev]
			if len(list) < ix.capAt(lev) {
				ix.links[nb.ID][lev] = append(list, id)
			} else {
				overflow = append(overflow, nb)
			}
		}
		pr.Timer("AddLink").Stop(ts)
		if len(overflow) > 0 {
			ts = pr.Timer("ShrinkNbList").Start()
			for _, nb := range overflow {
				ix.shrinkReverseList(int32(nb.ID), id, nb.Dist, lev)
			}
			pr.Timer("ShrinkNbList").Stop(ts)
		}

		if len(cands) > 0 {
			ep, epDist = int32(cands[0].ID), cands[0].Dist
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entryPoint = id
	}
}

// shrinkReverseList rebuilds nb's overflowed list at lev from
// (existing ∪ newID) via the diversification heuristic.
func (ix *Index) shrinkReverseList(nb, newID int32, dist float32, lev int32) {
	list := ix.links[nb][lev]
	capacity := ix.capAt(lev)
	nbVec := ix.vecs.Row(int(nb))
	cands := make([]minheap.Item, 0, len(list)+1)
	cands = append(cands, minheap.Item{ID: int64(newID), Dist: dist})
	for _, other := range list {
		cands = append(cands, minheap.Item{ID: int64(other), Dist: ix.dist(nbVec, other)})
	}
	sortByDist(cands)
	selected := ix.selectNeighbors(cands, capacity)
	ix.links[nb][lev] = append(list[:0], idsOf(selected)...)
}

// greedyClosest walks level lev moving to strictly closer neighbors until
// a local minimum is reached.
func (ix *Index) greedyClosest(x []float32, ep int32, epDist float32, lev int32) (int32, float32) {
	for {
		improved := false
		for _, nb := range ix.links[ep][lev] {
			if d := ix.dist(x, nb); d < epDist {
				ep, epDist = nb, d
				improved = true
			}
		}
		if !improved {
			return ep, epDist
		}
	}
}

// searchLayer is the HNSW beam search at one level: it maintains a
// candidate min-queue and a bounded result set of size ef, expanding the
// closest unexplored candidate until no candidate can improve the results.
// The returned items are sorted ascending by distance.
func (ix *Index) searchLayer(x []float32, ep int32, epDist float32, ef int, lev int32, pr *prof.Profile) []minheap.Item {
	ix.visitedEpoch++
	epoch := ix.visitedEpoch
	ix.visited[ep] = epoch

	results := minheap.NewTopK(ef)
	results.Push(int64(ep), epDist)
	cands := newCandQueue()
	cands.push(ep, epDist)

	tDist := pr.Timer("fvec_L2sqr")
	tVisit := pr.Timer("visited-check")

	for cands.len() > 0 {
		cur, curDist := cands.pop()
		if worst, full := results.Worst(); full && curDist > worst {
			break
		}
		for _, nb := range ix.links[cur][lev] {
			ts := tVisit.Start()
			seen := ix.visited[nb] == epoch
			if !seen {
				ix.visited[nb] = epoch
			}
			tVisit.Stop(ts)
			if seen {
				continue
			}
			ts = tDist.Start()
			d := ix.dist(x, nb)
			tDist.Stop(ts)
			if worst, full := results.Worst(); !full || d < worst {
				results.Push(int64(nb), d)
				cands.push(nb, d)
			}
		}
	}
	return results.Results()
}

// selectNeighbors applies the HNSW diversification heuristic: scan
// candidates in ascending distance order and keep one only if it is
// closer to the query vertex than to every already-kept neighbor.
// If fewer than capacity survive, the remaining slots are filled with the
// nearest rejected candidates (keepPruned, as Faiss does).
func (ix *Index) selectNeighbors(cands []minheap.Item, capacity int) []minheap.Item {
	if len(cands) <= capacity {
		return cands
	}
	kept := make([]minheap.Item, 0, capacity)
	var rejected []minheap.Item
	for _, c := range cands {
		if len(kept) >= capacity {
			break
		}
		cv := ix.vecs.Row(int(c.ID))
		diverse := true
		for _, s := range kept {
			if kern.L2Sqr(cv, ix.vecs.Row(int(s.ID))) < c.Dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, r := range rejected {
		if len(kept) >= capacity {
			break
		}
		kept = append(kept, r)
	}
	return kept
}

// kern is the fixed kernel the specialized engine scores with: the
// session-level SET distance_kernel knob is a SQL-layer concept; the
// in-memory engine always uses the best registered kernel.
var kern = vec.Default()

func (ix *Index) dist(x []float32, id int32) float32 {
	return kern.L2Sqr(x, ix.vecs.Row(int(id)))
}

// Search returns the k nearest stored vectors to query. efs is the search
// queue length (paper parameter efs); it is clamped to at least k.
func (ix *Index) Search(query []float32, k, efs int) ([]minheap.Item, error) {
	if ix.entryPoint < 0 {
		return nil, errors.New("hnsw: empty index")
	}
	if len(query) != ix.opts.Dim {
		return nil, fmt.Errorf("hnsw: query dimension %d != %d", len(query), ix.opts.Dim)
	}
	if efs < k {
		efs = k
	}
	ep := ix.entryPoint
	epDist := ix.dist(query, ep)
	for lev := ix.maxLevel; lev > 0; lev-- {
		ep, epDist = ix.greedyClosest(query, ep, epDist, lev)
	}
	items := ix.searchLayer(query, ep, epDist, efs, 0, ix.opts.Prof)
	if len(items) > k {
		items = items[:k]
	}
	return items, nil
}

// SizeBytes returns the graph footprint the way Fig 13 accounts it:
// stored vectors, level array, and 4 bytes per allocated neighbor slot.
func (ix *Index) SizeBytes() int64 {
	size := ix.vecs.Bytes() + int64(len(ix.levels))*4
	for _, node := range ix.links {
		for _, l := range node {
			size += int64(cap(l)) * 4
		}
	}
	return size
}

// GraphStats summarizes the level structure for tests and reports.
type GraphStats struct {
	MaxLevel  int32
	PerLevel  []int // vertices whose top level is l
	AvgDegree float64
}

// Graph returns structural statistics.
func (ix *Index) Graph() GraphStats {
	gs := GraphStats{MaxLevel: ix.maxLevel, PerLevel: make([]int, ix.maxLevel+1)}
	var degSum, degCnt int
	for i, l := range ix.levels {
		gs.PerLevel[l]++
		degSum += len(ix.links[i][0])
		degCnt++
	}
	if degCnt > 0 {
		gs.AvgDegree = float64(degSum) / float64(degCnt)
	}
	return gs
}

func idsOf(items []minheap.Item) []int32 {
	out := make([]int32, len(items))
	for i, it := range items {
		out[i] = int32(it.ID)
	}
	return out
}

func sortByDist(items []minheap.Item) {
	// insertion sort: candidate lists are short (≤ 2·BNN+1)
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].Dist < items[j-1].Dist; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
