package hnsw

// candQueue is a binary min-heap of (vertex, distance) pairs ordered by
// ascending distance — the "candidates to explore" queue of the HNSW beam
// search. It is separate from minheap.TopK (a bounded *max*-heap of
// results) because the two have opposite orderings.
type candQueue struct {
	ids   []int32
	dists []float32
}

func newCandQueue() *candQueue {
	return &candQueue{ids: make([]int32, 0, 64), dists: make([]float32, 0, 64)}
}

func (q *candQueue) len() int { return len(q.ids) }

func (q *candQueue) push(id int32, dist float32) {
	q.ids = append(q.ids, id)
	q.dists = append(q.dists, dist)
	i := len(q.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.dists[parent] <= q.dists[i] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *candQueue) pop() (int32, float32) {
	id, dist := q.ids[0], q.dists[0]
	last := len(q.ids) - 1
	q.ids[0], q.dists[0] = q.ids[last], q.dists[last]
	q.ids, q.dists = q.ids[:last], q.dists[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.dists[l] < q.dists[smallest] {
			smallest = l
		}
		if r < n && q.dists[r] < q.dists[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
	return id, dist
}

func (q *candQueue) swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.dists[i], q.dists[j] = q.dists[j], q.dists[i]
}
