package prof

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfileIsDisabled(t *testing.T) {
	var p *Profile
	tm := p.Timer("anything")
	if tm != nil {
		t.Fatal("nil profile handed out a live timer")
	}
	// All of these must be safe no-ops.
	start := tm.Start()
	if !start.IsZero() {
		t.Error("disabled timer returned a real start time")
	}
	tm.Stop(start)
	tm.Add(time.Second)
	if tm.Total() != 0 || tm.Count() != 0 {
		t.Error("disabled timer accumulated")
	}
	p.Count("x", 1)
	if p.Counter("x") != 0 {
		t.Error("nil profile counted")
	}
	p.Reset()
	if p.Report(time.Second) != nil {
		t.Error("nil profile reported entries")
	}
}

func TestTimerAccumulates(t *testing.T) {
	p := New()
	tm := p.Timer("work")
	for i := 0; i < 3; i++ {
		start := tm.Start()
		time.Sleep(2 * time.Millisecond)
		tm.Stop(start)
	}
	if tm.Count() != 3 {
		t.Errorf("Count = %d", tm.Count())
	}
	if tm.Total() < 5*time.Millisecond {
		t.Errorf("Total = %v, want >= ~6ms", tm.Total())
	}
	// Same name returns the same timer.
	if p.Timer("work") != tm {
		t.Error("Timer not memoized")
	}
}

func TestCounters(t *testing.T) {
	p := New()
	p.Count("pins", 5)
	p.Count("pins", 2)
	if p.Counter("pins") != 7 {
		t.Errorf("Counter = %d", p.Counter("pins"))
	}
	if p.Counter("absent") != 0 {
		t.Error("absent counter nonzero")
	}
}

func TestConcurrentObservations(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Timer("hot").Add(time.Microsecond)
				p.Count("ops", 1)
			}
		}()
	}
	wg.Wait()
	if p.Timer("hot").Count() != 8000 {
		t.Errorf("Count = %d", p.Timer("hot").Count())
	}
	if p.Counter("ops") != 8000 {
		t.Errorf("ops = %d", p.Counter("ops"))
	}
}

func TestReportSharesAndOthers(t *testing.T) {
	p := New()
	p.Timer("a").Add(60 * time.Millisecond)
	p.Timer("b").Add(20 * time.Millisecond)
	entries := p.Report(100 * time.Millisecond)
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0].Name != "a" || entries[0].Percent != 60 {
		t.Errorf("first entry = %+v", entries[0])
	}
	// Residual becomes "others".
	var others *Entry
	for i := range entries {
		if entries[i].Name == "others" {
			others = &entries[i]
		}
	}
	if others == nil || others.Percent != 20 {
		t.Errorf("others = %+v", others)
	}
}

func TestReportNestedExclusion(t *testing.T) {
	p := New()
	p.Timer("phase").Add(80 * time.Millisecond)
	p.Timer("inner").Add(50 * time.Millisecond) // runs inside "phase"
	entries := p.Report(100*time.Millisecond, "inner")
	var othersPct float64
	for _, e := range entries {
		if e.Name == "others" {
			othersPct = e.Percent
		}
	}
	// Residual must be 100−80=20, not 100−130 — inner is nested.
	if othersPct != 20 {
		t.Errorf("others = %v%%, want 20%%", othersPct)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	p := New()
	tm := p.Timer("x")
	tm.Add(time.Second)
	p.Count("c", 3)
	p.Reset()
	if tm.Total() != 0 || tm.Count() != 0 || p.Counter("c") != 0 {
		t.Error("Reset did not zero")
	}
	tm.Add(time.Millisecond)
	if p.Timer("x").Total() != time.Millisecond {
		t.Error("handle dead after Reset")
	}
}

func TestFormatReport(t *testing.T) {
	p := New()
	p.Timer("alpha").Add(time.Millisecond)
	out := FormatReport(p.Report(time.Millisecond))
	if !strings.Contains(out, "alpha") {
		t.Errorf("FormatReport = %q", out)
	}
}
