// Package maintenance is the VACUUM-style worker for the dynamic-data
// subsystem: it reclaims dead heap space (page compaction), runs every
// mutable index's Maintain pass (HNSW graph repair, IVF list
// compaction), and rebuilds the planner's reservoir sample. It runs in
// two modes: on demand (the SQL VACUUM statement, or the executor's
// auto-vacuum trigger when a table's dead fraction crosses SET
// vacuum_threshold) and periodically (Worker, the autovacuum-launcher
// analogue).
package maintenance

import (
	"fmt"
	"time"

	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"
)

// Report summarizes one vacuum pass over one table.
type Report struct {
	Table           string
	Heap            heap.VacuumStats
	IndexDead       int64 // tombstoned index entries removed
	IndexesRepaired int64 // indexes whose Maintain pass removed entries
}

// VacuumTable vacuums one table: heap compaction (which also rebuilds
// the reservoir sample) followed by a Maintain pass on every mutable
// index. Callers must hold the database's statement gate exclusively —
// the SQL executor and Worker both do; this function does not take it
// so the executor can vacuum while already holding it.
func VacuumTable(d *db.DB, table string) (Report, error) {
	tbl, err := d.Table(table)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Table: table}
	rep.Heap, err = tbl.Vacuum()
	if err != nil {
		return rep, err
	}
	for _, im := range d.Catalog().IndexesOn(table) {
		idx, err := d.Index(im.Name)
		if err != nil {
			continue // catalogued but not rebuilt this session
		}
		mi, ok := idx.(am.MutableIndex)
		if !ok {
			continue
		}
		removed, err := mi.Maintain()
		if err != nil {
			return rep, fmt.Errorf("maintenance: index %q: %w", im.Name, err)
		}
		rep.IndexDead += removed
		if removed > 0 {
			rep.IndexesRepaired++
		}
	}
	d.NoteVacuum(rep.Heap.DeadReclaimed+rep.IndexDead, rep.IndexesRepaired)
	return rep, nil
}

// VacuumAll vacuums every catalogued table. Same gate contract as
// VacuumTable.
func VacuumAll(d *db.DB) ([]Report, error) {
	var reps []Report
	for _, tm := range d.Catalog().Tables() {
		rep, err := VacuumTable(d, tm.Name)
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

// Worker periodically vacuums tables whose dead fraction has crossed a
// threshold — the autovacuum launcher. Threshold is a callback so the
// server can wire it to the live SET vacuum_threshold value; a
// threshold of 0 (or less) disables the worker's sweeps without
// stopping it.
type Worker struct {
	d         *db.DB
	interval  time.Duration
	threshold func() float64
	stop      chan struct{}
	done      chan struct{}
}

// NewWorker creates a stopped worker. interval <= 0 defaults to 1s.
func NewWorker(d *db.DB, interval time.Duration, threshold func() float64) *Worker {
	if interval <= 0 {
		interval = time.Second
	}
	return &Worker{d: d, interval: interval, threshold: threshold}
}

// Start launches the background sweep loop. Calling Start on a running
// worker is a no-op.
func (w *Worker) Start() {
	if w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop(w.stop, w.done)
}

// Stop halts the sweep loop, waiting for an in-flight sweep to finish.
func (w *Worker) Stop() {
	if w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop, w.done = nil, nil
}

func (w *Worker) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.sweep()
		}
	}
}

// sweep vacuums every table whose dead fraction meets the threshold,
// taking the statement gate exclusively per table so queries interleave
// between tables rather than stalling for the whole sweep.
func (w *Worker) sweep() {
	th := w.threshold()
	if th <= 0 {
		return
	}
	for _, tm := range w.d.Catalog().Tables() {
		tbl, err := w.d.Table(tm.Name)
		if err != nil || tbl.DeadFraction() < th {
			continue
		}
		gate := w.d.StmtGate()
		gate.Lock()
		_, _ = VacuumTable(w.d, tm.Name)
		gate.Unlock()
	}
}
