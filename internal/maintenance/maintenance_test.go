package maintenance_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vecstudy/internal/maintenance"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"

	_ "vecstudy/internal/pase/all"
)

func openLoaded(t *testing.T, n int) (*db.DB, *sql.Session) {
	t.Helper()
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s := sql.NewSession(d)
	if _, err := s.Execute("CREATE TABLE t (id int, vec float[])"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
	}
	if _, err := s.Execute(b.String()); err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestVacuumTableReport(t *testing.T) {
	d, s := openLoaded(t, 80)
	if _, err := s.Execute("CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 4, sample_ratio = 1, seed = 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("DELETE FROM t WHERE id < 20"); err != nil {
		t.Fatal(err)
	}

	d.StmtGate().Lock()
	rep, err := maintenance.VacuumTable(d, "t")
	d.StmtGate().Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Heap.DeadReclaimed != 20 {
		t.Errorf("heap reclaimed %d, want 20", rep.Heap.DeadReclaimed)
	}
	if rep.IndexDead != 20 {
		t.Errorf("index dead removed = %d, want 20", rep.IndexDead)
	}
	if rep.IndexesRepaired != 1 {
		t.Errorf("indexes repaired = %d, want 1", rep.IndexesRepaired)
	}
	st := d.Mutations()
	if st.VacuumRuns != 1 || st.DeadReclaimed == 0 {
		t.Errorf("mutation stats = %+v", st)
	}

	if _, err := maintenance.VacuumAll(d); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumUnknownTable(t *testing.T) {
	d, _ := openLoaded(t, 4)
	if _, err := maintenance.VacuumTable(d, "missing"); err == nil {
		t.Fatal("vacuum of unknown table succeeded")
	}
}

// TestWorkerAutoVacuums drives the background loop: once the dead
// fraction crosses the threshold, a sweep reclaims the table without
// any explicit VACUUM statement.
func TestWorkerAutoVacuums(t *testing.T) {
	d, s := openLoaded(t, 100)
	w := maintenance.NewWorker(d, 5*time.Millisecond, func() float64 { return 0.2 })
	w.Start()
	defer w.Stop()

	if _, err := s.Execute("DELETE FROM t WHERE id < 40"); err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tbl.NDead() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never vacuumed: NDead = %d", tbl.NDead())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d.Mutations(); st.VacuumRuns == 0 {
		t.Errorf("no vacuum recorded: %+v", st)
	}
}

// TestWorkerRespectsThreshold: below the threshold (or with the
// threshold off) the worker leaves dead tuples alone.
func TestWorkerRespectsThreshold(t *testing.T) {
	d, s := openLoaded(t, 100)
	w := maintenance.NewWorker(d, 5*time.Millisecond, func() float64 { return 0 })
	w.Start()
	defer w.Stop()

	if _, err := s.Execute("DELETE FROM t WHERE id < 40"); err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := tbl.NDead(); got != 40 {
		t.Errorf("NDead = %d with threshold off, want 40 untouched", got)
	}

	// Stop is idempotent and the loop exits promptly.
	w.Stop()
	w.Stop()
}
