package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

func maxAbsDiff(a, b []float32) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestGemmNTMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {64, 64, 64}, {65, 257, 63},
		{100, 128, 50}, {blockM + 1, blockK + 1, blockN + 1},
	}
	for _, s := range shapes {
		a := randMat(rng, s.m*s.k)
		b := randMat(rng, s.n*s.k)
		want := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		GemmNTRef(a, s.m, s.k, b, s.n, want)
		GemmNT(a, s.m, s.k, b, s.n, got)
		if d := maxAbsDiff(want, got); d > 1e-3*float64(s.k) {
			t.Errorf("shape %+v: max diff %v", s, d)
		}
	}
}

func TestGemmNTOverwritesC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 8, 16, 8
	a, b := randMat(rng, m*k), randMat(rng, n*k)
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)
	for i := range c2 {
		c2[i] = 1e9 // stale garbage must not leak into the result
	}
	GemmNT(a, m, k, b, n, c1)
	GemmNT(a, m, k, b, n, c2)
	if d := maxAbsDiff(c1, c2); d != 0 {
		t.Errorf("GemmNT did not fully overwrite C: diff %v", d)
	}
}

func TestGemmNTParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 300, 96, 40
	a, b := randMat(rng, m*k), randMat(rng, n*k)
	serial := make([]float32, m*n)
	GemmNT(a, m, k, b, n, serial)
	for _, threads := range []int{0, 1, 2, 4, 7} {
		par := make([]float32, m*n)
		GemmNTParallel(a, m, k, b, n, par, threads)
		if d := maxAbsDiff(serial, par); d > 1e-4*float64(k) {
			t.Errorf("threads=%d: max diff %v", threads, d)
		}
	}
}

func TestGemmNTEmpty(t *testing.T) {
	// Must not panic on empty inputs.
	GemmNT(nil, 0, 4, nil, 0, nil)
	GemmNTParallel(nil, 0, 4, nil, 0, nil, 4)
}

func TestGemmNTPropertyRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(40), 1+r.Intn(80), 1+r.Intn(40)
		a, b := randMat(rng, m*k), randMat(rng, n*k)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		GemmNTRef(a, m, k, b, n, want)
		GemmNT(a, m, k, b, n, got)
		return maxAbsDiff(want, got) <= 1e-3*float64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
