package blas

import (
	"runtime"
	"sync"
)

// L2SqrNT computes the full m×n matrix of *exact* squared Euclidean
// distances between the rows of A (m×k, the query batch) and the rows of
// B (n×k, e.g. the centroid cache), row-major: C[i*n+j] = ‖a_i − b_j‖².
//
// This is the batched-serving companion to GemmNT (paper RC#1 applied to
// query execution): the traversal order is SGEMM-shaped — four A rows
// share every B load, so a batch of queries streams the centroid matrix
// once instead of once per query — but each (i, j) pair is still summed
// by ONE sequential accumulator chain over the k dimensions. That makes
// every C entry bit-for-bit equal to vec.L2SqrRef(a_i, b_j) regardless
// of the batch size m, which is what lets the query coalescer promise
// results byte-identical to solo execution. (GemmNT itself cannot be
// used here: its ‖x‖²+‖c‖²−2x·c decomposition and its kernel-dependent
// summation orders both change the rounding.)
func L2SqrNT(a []float32, m, k int, b []float32, n int, c []float32) {
	if m == 0 || n == 0 {
		return
	}
	i := 0
	// 8 A rows per block: eight independent accumulator chains hide the
	// FP add latency of the one-chain-per-pair contract; every chain is
	// still a single sequential sum, so rounding is unchanged.
	for ; i+8 <= m; i += 8 {
		a0 := a[i*k : i*k+k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		a4 := a[(i+4)*k : (i+4)*k+k : (i+4)*k+k]
		a5 := a[(i+5)*k : (i+5)*k+k : (i+5)*k+k]
		a6 := a[(i+6)*k : (i+6)*k+k : (i+6)*k+k]
		a7 := a[(i+7)*k : (i+7)*k+k : (i+7)*k+k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			for p := 0; p < k; p++ {
				bv := brow[p]
				d0 := a0[p] - bv
				d1 := a1[p] - bv
				d2 := a2[p] - bv
				d3 := a3[p] - bv
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
				d4 := a4[p] - bv
				d5 := a5[p] - bv
				d6 := a6[p] - bv
				d7 := a7[p] - bv
				s4 += d4 * d4
				s5 += d5 * d5
				s6 += d6 * d6
				s7 += d7 * d7
			}
			c[i*n+j] = s0
			c[(i+1)*n+j] = s1
			c[(i+2)*n+j] = s2
			c[(i+3)*n+j] = s3
			c[(i+4)*n+j] = s4
			c[(i+5)*n+j] = s5
			c[(i+6)*n+j] = s6
			c[(i+7)*n+j] = s7
		}
	}
	for ; i+4 <= m; i += 4 {
		a0 := a[i*k : i*k+k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1, s2, s3 float32
			for p := 0; p < k; p++ {
				bv := brow[p]
				d0 := a0[p] - bv
				d1 := a1[p] - bv
				d2 := a2[p] - bv
				d3 := a3[p] - bv
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
			}
			c[i*n+j] = s0
			c[(i+1)*n+j] = s1
			c[(i+2)*n+j] = s2
			c[(i+3)*n+j] = s3
		}
	}
	// Remainder rows: the same per-pair sequential chain, one row at a
	// time, so the remainder path rounds identically to the main kernel.
	for ; i < m; i++ {
		arow := a[i*k : i*k+k : i*k+k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s float32
			for p := 0; p < k; p++ {
				d := arow[p] - brow[p]
				s += d * d
			}
			c[i*n+j] = s
		}
	}
}

// L2SqrNTRows is L2SqrNT with the A matrix supplied as a slice of rows
// instead of one flat buffer: C[i*n+j] = ‖rows_i − b_j‖², row-major.
// The batched bucket scan uses it to score tuple views that alias
// pinned pages directly — the rows never have to be copied into a
// contiguous scratch matrix. Block structure, accumulator chains, and
// therefore rounding are identical to L2SqrNT: every (i, j) pair is one
// sequential sum, bit-equal to vec.L2SqrRef(rows_i, b_j).
func L2SqrNTRows(rows [][]float32, k int, b []float32, n int, c []float32) {
	m := len(rows)
	if m == 0 || n == 0 {
		return
	}
	i := 0
	for ; i+8 <= m; i += 8 {
		a0 := rows[i][:k:k]
		a1 := rows[i+1][:k:k]
		a2 := rows[i+2][:k:k]
		a3 := rows[i+3][:k:k]
		a4 := rows[i+4][:k:k]
		a5 := rows[i+5][:k:k]
		a6 := rows[i+6][:k:k]
		a7 := rows[i+7][:k:k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			for p := 0; p < k; p++ {
				bv := brow[p]
				d0 := a0[p] - bv
				d1 := a1[p] - bv
				d2 := a2[p] - bv
				d3 := a3[p] - bv
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
				d4 := a4[p] - bv
				d5 := a5[p] - bv
				d6 := a6[p] - bv
				d7 := a7[p] - bv
				s4 += d4 * d4
				s5 += d5 * d5
				s6 += d6 * d6
				s7 += d7 * d7
			}
			c[i*n+j] = s0
			c[(i+1)*n+j] = s1
			c[(i+2)*n+j] = s2
			c[(i+3)*n+j] = s3
			c[(i+4)*n+j] = s4
			c[(i+5)*n+j] = s5
			c[(i+6)*n+j] = s6
			c[(i+7)*n+j] = s7
		}
	}
	for ; i+4 <= m; i += 4 {
		a0 := rows[i][:k:k]
		a1 := rows[i+1][:k:k]
		a2 := rows[i+2][:k:k]
		a3 := rows[i+3][:k:k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1, s2, s3 float32
			for p := 0; p < k; p++ {
				bv := brow[p]
				d0 := a0[p] - bv
				d1 := a1[p] - bv
				d2 := a2[p] - bv
				d3 := a3[p] - bv
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
			}
			c[i*n+j] = s0
			c[(i+1)*n+j] = s1
			c[(i+2)*n+j] = s2
			c[(i+3)*n+j] = s3
		}
	}
	for ; i < m; i++ {
		arow := rows[i][:k:k]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s float32
			for p := 0; p < k; p++ {
				d := arow[p] - brow[p]
				s += d * d
			}
			c[i*n+j] = s
		}
	}
}

// L2SqrNTParallel is L2SqrNT with the rows of A partitioned across
// nthreads goroutines. Row partitioning keeps every (i, j) pair on a
// single accumulator chain, so the result is bit-identical to the serial
// call. nthreads ≤ 0 means use all CPUs.
func L2SqrNTParallel(a []float32, m, k int, b []float32, n int, c []float32, nthreads int) {
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	if nthreads == 1 || m < 8 {
		L2SqrNT(a, m, k, b, n, c)
		return
	}
	if nthreads > m/4 {
		nthreads = m / 4
	}
	rowsPer := (m + nthreads - 1) / nthreads
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		lo := t * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			L2SqrNT(a[lo*k:hi*k], hi-lo, k, b, n, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}
