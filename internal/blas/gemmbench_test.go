package blas_test

import (
	"math/rand"
	"testing"
	"vecstudy/internal/blas"
	vecpkg "vecstudy/internal/vec"
)

func benchData(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

func BenchmarkGemmNT_1024x128x45(b *testing.B) {
	a, bm := benchData(1024*128), benchData(45*128)
	c := make([]float32, 1024*45)
	b.SetBytes(int64(1024 * 45 * 128 * 2))
	for i := 0; i < b.N; i++ {
		blas.GemmNT(a, 1024, 128, bm, 45, c)
	}
}

func BenchmarkGemmNT_1024x128x1000(b *testing.B) {
	a, bm := benchData(1024*128), benchData(1000*128)
	c := make([]float32, 1024*1000)
	b.SetBytes(int64(1024 * 1000 * 128 * 2))
	for i := 0; i < b.N; i++ {
		blas.GemmNT(a, 1024, 128, bm, 1000, c)
	}
}

// naiveL2 is the PASE-style per-pair scoring loop (RC#1 off): one
// reference-kernel call per (query, base) pair, no batching.
func naiveL2(a []float32, nx int, bm []float32, ny, d int, c []float32) {
	ref := vecpkg.Ref()
	for i := 0; i < nx; i++ {
		x := a[i*d : (i+1)*d]
		row := c[i*ny : (i+1)*ny]
		for j := 0; j < ny; j++ {
			row[j] = ref.L2Sqr(x, bm[j*d:(j+1)*d])
		}
	}
}

func BenchmarkNaiveL2_1024x128x45(b *testing.B) {
	a, bm := benchData(1024*128), benchData(45*128)
	c := make([]float32, 1024*45)
	b.SetBytes(int64(1024 * 45 * 128 * 2))
	for i := 0; i < b.N; i++ {
		naiveL2(a, 1024, bm, 45, 128, c)
	}
}

func BenchmarkNaiveL2_1024x128x1000(b *testing.B) {
	a, bm := benchData(1024*128), benchData(1000*128)
	c := make([]float32, 1024*1000)
	b.SetBytes(int64(1024 * 1000 * 128 * 2))
	for i := 0; i < b.N; i++ {
		naiveL2(a, 1024, bm, 1000, 128, c)
	}
}
