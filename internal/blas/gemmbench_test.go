package blas_test

import (
	"math/rand"
	"testing"
	"vecstudy/internal/blas"
	vecpkg "vecstudy/internal/vec"
)

func benchData(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

func BenchmarkGemmNT_1024x128x45(b *testing.B) {
	a, bm := benchData(1024*128), benchData(45*128)
	c := make([]float32, 1024*45)
	b.SetBytes(int64(1024 * 45 * 128 * 2))
	for i := 0; i < b.N; i++ {
		blas.GemmNT(a, 1024, 128, bm, 45, c)
	}
}

func BenchmarkGemmNT_1024x128x1000(b *testing.B) {
	a, bm := benchData(1024*128), benchData(1000*128)
	c := make([]float32, 1024*1000)
	b.SetBytes(int64(1024 * 1000 * 128 * 2))
	for i := 0; i < b.N; i++ {
		blas.GemmNT(a, 1024, 128, bm, 1000, c)
	}
}

func BenchmarkNaiveL2_1024x128x45(b *testing.B) {
	a, bm := benchData(1024*128), benchData(45*128)
	c := make([]float32, 1024*45)
	b.SetBytes(int64(1024 * 45 * 128 * 2))
	for i := 0; i < b.N; i++ {
		vecpkg.DistancesL2Naive(a, 1024, bm, 45, 128, c)
	}
}

func BenchmarkNaiveL2_1024x128x1000(b *testing.B) {
	a, bm := benchData(1024*128), benchData(1000*128)
	c := make([]float32, 1024*1000)
	b.SetBytes(int64(1024 * 1000 * 128 * 2))
	for i := 0; i < b.N; i++ {
		vecpkg.DistancesL2Naive(a, 1024, bm, 1000, 128, c)
	}
}
