// Package blas provides a pure-Go substitute for the BLAS SGEMM routine
// used by Faiss (paper RC#1). Faiss links against an optimized BLAS (MKL or
// OpenBLAS); this package implements the same interface contract —
// C = alpha·A·Bᵀ + beta·C for row-major float32 matrices — with cache
// blocking, inner-loop unrolling, and optional goroutine parallelism.
//
// The absolute speedup over the naive loop is smaller than MKL's over
// naive C, but the *relationship* the paper measures is preserved: batched
// blocked multiplication with norm reuse dominates per-pair scalar
// distance loops, and the gap grows with the number of centroids.
package blas

import (
	"runtime"
	"sync"
)

// block sizes chosen so one (mc×kc) A-panel plus one (kc×nc) B-panel fit
// comfortably in L2 cache (≈ 256 KiB of float32).
const (
	blockM = 64
	blockN = 64
	blockK = 256
)

// GemmNT computes C = A · Bᵀ where A is (m×k), B is (n×k), and C is (m×n),
// all row-major and contiguous. This "NT" shape is the one vector search
// needs: rows of A are data points, rows of B are centroids, and C[i][j]
// becomes the inner product x_i · c_j.
//
// C is fully overwritten.
func GemmNT(a []float32, m, k int, b []float32, n int, c []float32) {
	if m == 0 || n == 0 {
		return
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	for k0 := 0; k0 < k; k0 += blockK {
		kend := min(k0+blockK, k)
		for i0 := 0; i0 < m; i0 += blockM {
			iend := min(i0+blockM, m)
			for j0 := 0; j0 < n; j0 += blockN {
				jend := min(j0+blockN, n)
				gemmBlock(a, b, c, k, n, i0, iend, j0, jend, k0, kend)
			}
		}
	}
}

// gemmBlock multiplies one cache-resident block, accumulating into C.
// The micro-kernel computes a 4×2 tile of C with eight independent
// accumulator chains: four A rows share each B load, halving memory
// traffic relative to a row-at-a-time kernel while keeping the FP
// pipeline busy without SIMD intrinsics.
func gemmBlock(a, b, c []float32, k, n, i0, iend, j0, jend, k0, kend int) {
	kk := kend - k0
	i := i0
	for ; i+4 <= iend; i += 4 {
		a0 := a[i*k+k0 : i*k+kend : i*k+kend]
		a1 := a[(i+1)*k+k0 : (i+1)*k+kend : (i+1)*k+kend]
		a2 := a[(i+2)*k+k0 : (i+2)*k+kend : (i+2)*k+kend]
		a3 := a[(i+3)*k+k0 : (i+3)*k+kend : (i+3)*k+kend]
		for j := j0; j < jend; j += 2 {
			if j+2 > jend {
				b0 := b[j*k+k0 : j*k+kend : j*k+kend]
				var s0, s1, s2, s3 float32
				for p := 0; p < kk; p++ {
					bv := b0[p]
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				c[i*n+j] += s0
				c[(i+1)*n+j] += s1
				c[(i+2)*n+j] += s2
				c[(i+3)*n+j] += s3
				break
			}
			b0 := b[j*k+k0 : j*k+kend : j*k+kend]
			b1 := b[(j+1)*k+k0 : (j+1)*k+kend : (j+1)*k+kend]
			var s00, s01, s10, s11, s20, s21, s30, s31 float32
			for p := 0; p < kk; p++ {
				bv0, bv1 := b0[p], b1[p]
				av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
				s20 += av2 * bv0
				s21 += av2 * bv1
				s30 += av3 * bv0
				s31 += av3 * bv1
			}
			c[i*n+j] += s00
			c[i*n+j+1] += s01
			c[(i+1)*n+j] += s10
			c[(i+1)*n+j+1] += s11
			c[(i+2)*n+j] += s20
			c[(i+2)*n+j+1] += s21
			c[(i+3)*n+j] += s30
			c[(i+3)*n+j+1] += s31
		}
	}
	// Remainder rows: simple 1×1 kernel with a 2-deep unroll.
	for ; i < iend; i++ {
		arow := a[i*k+k0 : i*k+kend : i*k+kend]
		crow := c[i*n : i*n+n]
		for j := j0; j < jend; j++ {
			brow := b[j*k+k0 : j*k+kend : j*k+kend]
			var s0, s1 float32
			p := 0
			for ; p+2 <= kk; p += 2 {
				s0 += arow[p] * brow[p]
				s1 += arow[p+1] * brow[p+1]
			}
			if p < kk {
				s0 += arow[p] * brow[p]
			}
			crow[j] += s0 + s1
		}
	}
}

// GemmNTParallel is GemmNT with the rows of A partitioned across nthreads
// goroutines. nthreads ≤ 0 means use all CPUs.
func GemmNTParallel(a []float32, m, k int, b []float32, n int, c []float32, nthreads int) {
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	if nthreads == 1 || m < 2*blockM {
		GemmNT(a, m, k, b, n, c)
		return
	}
	rowsPer := (m + nthreads - 1) / nthreads
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		lo := t * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			GemmNT(a[lo*k:hi*k], hi-lo, k, b, n, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}

// GemmNTRef is the unblocked triple loop, used by tests as an oracle for
// the blocked implementation.
func GemmNTRef(a []float32, m, k int, b []float32, n int, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] = s
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
