package blas

import (
	"math/rand"
	"testing"
)

// l2SqrRefOracle mirrors vec.L2SqrRef's plain sequential loop (vec
// imports blas, so the real kernel cannot be imported here; the
// cross-package bitwise assertion lives in internal/vec's tests).
func l2SqrRefOracle(x, y []float32) float32 {
	var s float32
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// TestL2SqrNTBitwiseEqualsRef is the parity contract of the batched
// serving path: every entry of the batched distance matrix must be
// bit-for-bit equal to the per-pair reference kernel, for every batch
// size (the solo path scores centroids with vec.L2SqrRef one query at a
// time).
func TestL2SqrNTBitwiseEqualsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 17, 32} {
		for _, n := range []int{1, 3, 16, 65} {
			for _, k := range []int{1, 7, 96, 257, 300} {
				a := randMatRC(rng, m, k)
				b := randMatRC(rng, n, k)
				c := make([]float32, m*n)
				L2SqrNT(a, m, k, b, n, c)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						want := l2SqrRefOracle(a[i*k:(i+1)*k], b[j*k:(j+1)*k])
						if got := c[i*n+j]; got != want {
							t.Fatalf("m=%d n=%d k=%d: C[%d][%d] = %x, L2SqrRef = %x (must be bitwise equal)",
								m, n, k, i, j, got, want)
						}
					}
				}
			}
		}
	}
}

// TestL2SqrNTBatchSizeIndependent pins the property the coalescer relies
// on: the row for one query does not depend on which other queries share
// its batch.
func TestL2SqrNTBatchSizeIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 33, 128
	b := randMatRC(rng, n, k)
	q := randMatRC(rng, 1, k)
	solo := make([]float32, n)
	L2SqrNT(q, 1, k, b, n, solo)
	for _, m := range []int{2, 4, 9, 32} {
		a := randMatRC(rng, m, k)
		copy(a[(m/2)*k:], q) // plant the query mid-batch
		c := make([]float32, m*n)
		L2SqrNT(a, m, k, b, n, c)
		for j := 0; j < n; j++ {
			if c[(m/2)*n+j] != solo[j] {
				t.Fatalf("m=%d: batched row differs from solo at j=%d: %x vs %x", m, j, c[(m/2)*n+j], solo[j])
			}
		}
	}
}

// TestL2SqrNTRowsMatchesFlat pins the zero-copy variant to the flat
// kernel bit for bit, across every unroll block (8/4/remainder) and with
// rows that carry trailing capacity like pinned-page tuple views do.
func TestL2SqrNTRowsMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31} {
		for _, n := range []int{1, 2, 5, 16} {
			for _, k := range []int{1, 4, 96, 128, 130} {
				a := randMatRC(rng, m, k)
				b := randMatRC(rng, n, k)
				flat := make([]float32, m*n)
				L2SqrNT(a, m, k, b, n, flat)
				rows := make([][]float32, m)
				for i := range rows {
					// Full-capacity view of the backing array past row i,
					// mimicking a page view that extends beyond the vector.
					rows[i] = a[i*k:]
				}
				got := make([]float32, m*n)
				L2SqrNTRows(rows, k, b, n, got)
				for i := range flat {
					if got[i] != flat[i] {
						t.Fatalf("m=%d n=%d k=%d: entry %d differs: %x vs %x", m, n, k, i, got[i], flat[i])
					}
				}
			}
		}
	}
}

func TestL2SqrNTParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m, n, k = 29, 47, 100
	a := randMatRC(rng, m, k)
	b := randMatRC(rng, n, k)
	serial := make([]float32, m*n)
	par := make([]float32, m*n)
	L2SqrNT(a, m, k, b, n, serial)
	for _, threads := range []int{0, 1, 2, 3, 8} {
		for i := range par {
			par[i] = -1
		}
		L2SqrNTParallel(a, m, k, b, n, par, threads)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("threads=%d: entry %d differs: %x vs %x", threads, i, par[i], serial[i])
			}
		}
	}
}

func TestL2SqrNTEmpty(t *testing.T) {
	L2SqrNT(nil, 0, 8, nil, 0, nil) // must not panic
	L2SqrNTParallel(nil, 0, 8, nil, 0, nil, 4)
}

func randMatRC(rng *rand.Rand, rows, cols int) []float32 {
	m := make([]float32, rows*cols)
	for i := range m {
		m[i] = rng.Float32()*2 - 1
	}
	return m
}

func BenchmarkL2SqrNT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 32, 1024, 128
	a := randMatRC(rng, m, k)
	bm := randMatRC(rng, n, k)
	c := make([]float32, m*n)
	b.SetBytes(int64(m) * int64(n) * int64(k) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SqrNT(a, m, k, bm, n, c)
	}
}

func BenchmarkL2SqrRefLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 32, 1024, 128
	a := randMatRC(rng, m, k)
	bm := randMatRC(rng, n, k)
	c := make([]float32, m*n)
	b.SetBytes(int64(m) * int64(n) * int64(k) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for qi := 0; qi < m; qi++ {
			for j := 0; j < n; j++ {
				c[qi*n+j] = l2SqrRefOracle(a[qi*k:(qi+1)*k], bm[j*k:(j+1)*k])
			}
		}
	}
}
