package pq

import (
	"math"
	"math/rand"
	"testing"

	"vecstudy/internal/vec"
)

func randData(rng *rand.Rand, n, d int) []float32 {
	out := make([]float32, n*d)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func trainSmall(t *testing.T, m, ksub int) (*Quantizer, []float32, int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n, d := 2000, 32
	data := randData(rng, n, d)
	q, err := Train(data, n, d, Config{M: m, KSub: ksub, Seed: 5, UseGemm: true})
	if err != nil {
		t.Fatal(err)
	}
	return q, data, n, d
}

func TestTrainValidation(t *testing.T) {
	data := make([]float32, 300*32)
	if _, err := Train(data, 300, 32, Config{M: 0}); err == nil {
		t.Error("accepted M=0")
	}
	if _, err := Train(data, 300, 32, Config{M: 5}); err == nil {
		t.Error("accepted M not dividing D")
	}
	if _, err := Train(data, 300, 32, Config{M: 4, KSub: 512}); err == nil {
		t.Error("accepted KSub > 256")
	}
	if _, err := Train(data[:10*32], 10, 32, Config{M: 4, KSub: 64}); err == nil {
		t.Error("accepted n < KSub")
	}
}

func TestEncodeDecodeReducesError(t *testing.T) {
	q, data, n, d := trainSmall(t, 8, 64)
	code := make([]byte, q.M)
	recon := make([]float32, d)
	var errSum, normSum float64
	for i := 0; i < 200; i++ {
		row := data[i*d : (i+1)*d]
		q.Encode(row, code)
		q.Decode(code, recon)
		errSum += float64(vec.L2Sqr(row, recon))
		normSum += float64(vec.Norm2(row))
	}
	// Quantization must retain most of the signal energy.
	if errSum/normSum > 0.75 {
		t.Errorf("relative reconstruction error %v too high", errSum/normSum)
	}
	_ = n
}

func TestEncodePicksNearestCodeword(t *testing.T) {
	q, data, _, d := trainSmall(t, 4, 16)
	code := make([]byte, q.M)
	for i := 0; i < 50; i++ {
		row := data[i*d : (i+1)*d]
		q.Encode(row, code)
		for m := 0; m < q.M; m++ {
			sub := row[m*q.DSub : (m+1)*q.DSub]
			got := vec.L2Sqr(sub, q.Codeword(m, int(code[m])))
			for j := 0; j < q.KSub; j++ {
				if d := vec.L2Sqr(sub, q.Codeword(m, j)); d < got-1e-6 {
					t.Fatalf("row %d subspace %d: codeword %d closer than chosen %d", i, m, j, code[m])
				}
			}
		}
	}
}

func TestDistanceTableNaiveCorrect(t *testing.T) {
	q, data, _, d := trainSmall(t, 4, 16)
	x := data[:d]
	tab := make([]float32, q.M*q.KSub)
	q.DistanceTableNaive(x, tab)
	for m := 0; m < q.M; m++ {
		for j := 0; j < q.KSub; j++ {
			want := vec.L2SqrRef(x[m*q.DSub:(m+1)*q.DSub], q.Codeword(m, j))
			if got := tab[m*q.KSub+j]; got != want {
				t.Fatalf("tab[%d][%d] = %v, want %v", m, j, got, want)
			}
		}
	}
}

func TestTableDecompositionIdentity(t *testing.T) {
	// ‖x_m − p‖² must equal ‖x_m‖² + ‖p‖² − 2·ip from the optimized path.
	q, data, _, d := trainSmall(t, 8, 32)
	x := data[d : 2*d]
	naive := make([]float32, q.M*q.KSub)
	ip := make([]float32, q.M*q.KSub)
	q.DistanceTableNaive(x, naive)
	q.InnerProductTable(x, ip)
	norms := q.CodewordNorms()
	for m := 0; m < q.M; m++ {
		xm := x[m*q.DSub : (m+1)*q.DSub]
		xn := vec.Norm2(xm)
		for j := 0; j < q.KSub; j++ {
			idx := m*q.KSub + j
			rebuilt := xn + norms[idx] - 2*ip[idx]
			if diff := math.Abs(float64(rebuilt - naive[idx])); diff > 1e-3 {
				t.Fatalf("decomposition off at (%d,%d): %v vs %v", m, j, rebuilt, naive[idx])
			}
		}
	}
}

func TestADCApproximatesTrueDistance(t *testing.T) {
	// Asymmetric distance (query vs decoded code) computed through the
	// naive table must equal the distance to the reconstruction exactly.
	q, data, _, d := trainSmall(t, 8, 64)
	query := data[5*d : 6*d]
	tab := make([]float32, q.M*q.KSub)
	q.DistanceTableNaive(query, tab)
	code := make([]byte, q.M)
	recon := make([]float32, d)
	for i := 10; i < 30; i++ {
		row := data[i*d : (i+1)*d]
		q.Encode(row, code)
		q.Decode(code, recon)
		var viaTab float32
		for m := 0; m < q.M; m++ {
			viaTab += tab[m*q.KSub+int(code[m])]
		}
		direct := vec.L2SqrRef(query, recon)
		if diff := math.Abs(float64(viaTab - direct)); diff > 1e-2 {
			t.Fatalf("row %d: table ADC %v vs direct %v", i, viaTab, direct)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	q, _, _, _ := trainSmall(t, 4, 16)
	if q.SizeBytes() != int64(4*16*8)*4 {
		t.Errorf("SizeBytes = %d", q.SizeBytes())
	}
	if q.CodeSize() != 4 {
		t.Errorf("CodeSize = %d", q.CodeSize())
	}
}
