// Package pq implements product quantization (Jégou et al.), the
// compression layer inside IVF_PQ: each d-dimensional vector is split
// into M sub-vectors of d/M dimensions, and each sub-vector is encoded as
// the index of its nearest codeword in a per-subspace codebook of KSub
// entries, so a vector costs M·log2(KSub) bits (M bytes at the paper's
// default c_pq = 256).
//
// Both engines share this quantizer; what differs between them — the
// paper's RC#7 — is how the query-time distance table is computed, which
// lives in the respective index packages.
package pq

import (
	"errors"
	"fmt"

	"vecstudy/internal/kmeans"
	"vecstudy/internal/vec"
)

// Quantizer holds the trained per-subspace codebooks.
type Quantizer struct {
	D    int // full dimensionality
	M    int // number of subspaces (paper parameter m)
	KSub int // codewords per subspace (paper parameter c_pq, ≤ 256)
	DSub int // D / M

	// Codebooks is laid out as M × KSub × DSub, row-major.
	Codebooks []float32
}

// Config parameterizes Train.
type Config struct {
	M       int // required; must divide D
	KSub    int // 0 defaults to 256
	Seed    int64
	UseGemm bool
	Threads int
	Flavor  kmeans.Flavor
}

// Train builds the codebooks from the n×d row-major training matrix.
func Train(data []float32, n, d int, cfg Config) (*Quantizer, error) {
	if cfg.M <= 0 {
		return nil, errors.New("pq: M must be positive")
	}
	if d%cfg.M != 0 {
		return nil, fmt.Errorf("pq: dimension %d not divisible by M=%d", d, cfg.M)
	}
	ksub := cfg.KSub
	if ksub == 0 {
		ksub = 256
	}
	if ksub > 256 {
		return nil, fmt.Errorf("pq: KSub=%d exceeds one-byte codes", ksub)
	}
	if n < ksub {
		return nil, fmt.Errorf("pq: %d training points for %d codewords", n, ksub)
	}
	dsub := d / cfg.M
	q := &Quantizer{D: d, M: cfg.M, KSub: ksub, DSub: dsub, Codebooks: make([]float32, cfg.M*ksub*dsub)}

	// Train one K-means per subspace over the sliced training data.
	sub := make([]float32, n*dsub)
	for m := 0; m < cfg.M; m++ {
		for i := 0; i < n; i++ {
			copy(sub[i*dsub:(i+1)*dsub], data[i*d+m*dsub:i*d+(m+1)*dsub])
		}
		res, err := kmeans.Train(sub, n, dsub, kmeans.Config{
			K:       ksub,
			Seed:    cfg.Seed + int64(m)*7919,
			UseGemm: cfg.UseGemm,
			Threads: cfg.Threads,
			Flavor:  cfg.Flavor,
		})
		if err != nil {
			return nil, fmt.Errorf("pq: subspace %d: %w", m, err)
		}
		copy(q.Codebooks[m*ksub*dsub:(m+1)*ksub*dsub], res.Centroids)
	}
	return q, nil
}

// Codeword returns codeword j of subspace m (aliasing internal storage).
func (q *Quantizer) Codeword(m, j int) []float32 {
	base := (m*q.KSub + j) * q.DSub
	return q.Codebooks[base : base+q.DSub]
}

// refKern pins codeword assignment and naive table construction to the
// ref kernel: codes written at build time must not depend on which
// optimized kernels this host registered.
var refKern = vec.Ref()

// Encode writes the M-byte code of x into code. Both slices must have the
// right lengths (len(x)=D, len(code)=M).
func (q *Quantizer) Encode(x []float32, code []byte) {
	for m := 0; m < q.M; m++ {
		sub := x[m*q.DSub : (m+1)*q.DSub]
		best, bestD := 0, refKern.L2Sqr(sub, q.Codeword(m, 0))
		for j := 1; j < q.KSub; j++ {
			d := refKern.L2Sqr(sub, q.Codeword(m, j))
			if d < bestD {
				best, bestD = j, d
			}
		}
		code[m] = byte(best)
	}
}

// Decode reconstructs the approximate vector for code into out.
func (q *Quantizer) Decode(code []byte, out []float32) {
	for m := 0; m < q.M; m++ {
		copy(out[m*q.DSub:(m+1)*q.DSub], q.Codeword(m, int(code[m])))
	}
}

// CodewordNorms returns ‖p_mj‖² for every (m, j) as an M×KSub row-major
// table. Faiss computes this once at train time; its absence in PASE is
// part of RC#7.
func (q *Quantizer) CodewordNorms() []float32 {
	out := make([]float32, q.M*q.KSub)
	for m := 0; m < q.M; m++ {
		for j := 0; j < q.KSub; j++ {
			out[m*q.KSub+j] = vec.Norm2(q.Codeword(m, j))
		}
	}
	return out
}

// DistanceTableNaive fills tab (M×KSub) with ‖x_m − p_mj‖² using plain
// scalar loops — the PASE-style per-query, per-list computation.
func (q *Quantizer) DistanceTableNaive(x []float32, tab []float32) {
	for m := 0; m < q.M; m++ {
		sub := x[m*q.DSub : (m+1)*q.DSub]
		row := tab[m*q.KSub : (m+1)*q.KSub]
		for j := 0; j < q.KSub; j++ {
			row[j] = refKern.L2Sqr(sub, q.Codeword(m, j))
		}
	}
}

// InnerProductTable fills tab (M×KSub) with x_m · p_mj. Combined with
// cached codeword norms this is the optimized (Faiss-style) table path:
// ‖x_m − p_mj‖² = ‖x_m‖² + ‖p_mj‖² − 2·x_m·p_mj, where the query-norm
// term is constant per subspace and cancels in argmin/topk within a list.
func (q *Quantizer) InnerProductTable(x []float32, tab []float32) {
	for m := 0; m < q.M; m++ {
		sub := x[m*q.DSub : (m+1)*q.DSub]
		row := tab[m*q.KSub : (m+1)*q.KSub]
		cb := q.Codebooks[m*q.KSub*q.DSub : (m+1)*q.KSub*q.DSub]
		for j := 0; j < q.KSub; j++ {
			row[j] = vec.Dot(sub, cb[j*q.DSub:(j+1)*q.DSub])
		}
	}
}

// SizeBytes returns the codebook footprint.
func (q *Quantizer) SizeBytes() int64 { return int64(len(q.Codebooks)) * 4 }

// CodeSize returns the bytes per encoded vector.
func (q *Quantizer) CodeSize() int { return q.M }
