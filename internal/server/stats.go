package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the size of the power-of-two latency histogram:
// bucket i counts queries with latency < 2^i microseconds, so the top
// bucket covers everything beyond ~134s.
const latencyBuckets = 28

// stats is the server's hot-path instrumentation: plain atomics, no
// locks on the serving path.
type stats struct {
	accepted atomic.Int64
	active   atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
	queries  atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
	hist     [latencyBuckets]atomic.Int64
}

func (st *stats) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0µs → bucket 0, 1µs → 1, 2-3µs → 2, ...
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	st.hist[b].Add(1)
}

// Stats is a point-in-time snapshot of serving activity.
type Stats struct {
	Accepted int64 // connections accepted since start
	Active   int64 // connections currently holding a slot
	Queued   int64 // connections currently waiting for a slot
	Rejected int64 // connections turned away (queue full, queue wait expired, or drain began)
	Queries  int64 // statements answered successfully
	Errors   int64 // statements answered with an error
	Timeouts int64 // statements abandoned at the query timeout

	// P50 and P99 are per-query latency percentiles estimated from a
	// power-of-two histogram (each reported as its bucket's upper
	// bound), over every successful query since start.
	P50 time.Duration
	P99 time.Duration
}

// Stats snapshots the counters and estimates latency percentiles.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted: s.stats.accepted.Load(),
		Active:   s.stats.active.Load(),
		Queued:   s.stats.queued.Load(),
		Rejected: s.stats.rejected.Load(),
		Queries:  s.stats.queries.Load(),
		Errors:   s.stats.errors.Load(),
		Timeouts: s.stats.timeouts.Load(),
	}
	var counts [latencyBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = s.stats.hist[i].Load()
		total += counts[i]
	}
	st.P50 = histPercentile(counts, total, 0.50)
	st.P99 = histPercentile(counts, total, 0.99)
	return st
}

// histPercentile returns the upper bound of the bucket containing the
// p-quantile observation.
func histPercentile(counts [latencyBuckets]int64, total int64, p float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(p*float64(total-1)) + 1
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(latencyBuckets-1)) * time.Microsecond
}
