// Package server is the network serving layer over the generalized
// engine: a TCP listener that speaks internal/wire and gives every
// connection its own SQL session, so scan knobs set with SET stay
// per-session the way PostgreSQL GUCs do.
//
// Connections pass admission control before they are served: a bounded
// pool of connection slots (MaxActive) plus a bounded wait queue
// (QueueDepth). When both are full the connection is rejected with a
// clean wire-level error (wire.CodeRejected) instead of hanging or
// spawning an unbounded goroutine — backpressure is explicit. Each
// query runs under a per-request timeout; a timed-out connection is
// closed, and its slot is released only when the abandoned statement
// actually finishes, so the worker bound stays honest.
//
// Shutdown drains gracefully: stop accepting, let in-flight statements
// finish, unblock idle readers, then close every connection.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vecstudy/internal/batch"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/vec"
	"vecstudy/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// MaxActive bounds concurrently served connections (the worker
	// pool). 0 means 64.
	MaxActive int
	// QueueDepth bounds connections waiting for a slot beyond
	// MaxActive. 0 means 128. Arrivals beyond MaxActive+QueueDepth are
	// rejected with wire.CodeRejected.
	QueueDepth int
	// QueueWait caps how long a queued connection waits for a slot
	// before it is rejected. 0 means 5s.
	QueueWait time.Duration
	// QueryTimeout caps one statement's execution. 0 means 30s.
	QueryTimeout time.Duration
}

func (c *Config) defaults() {
	if c.MaxActive <= 0 {
		c.MaxActive = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
}

// Session executes one connection's statements. sql.Session implements
// it for the single-node database; the cluster router implements it
// with scatter-gather sessions. Sessions are single-threaded: the
// server never issues a second Execute before the first returns.
type Session interface {
	Execute(text string) (*sql.Result, error)
}

// Backend supplies per-connection sessions. It is the seam that lets
// the same serving layer (admission control, timeouts, drain, stats)
// front either one database or a shard router.
type Backend interface {
	NewSession() Session
}

// StatsRower is an optional Backend extension: backends that carry
// their own counters (the cluster router's fanout/retry/failover/
// degraded tallies) contribute extra rows to SHOW server_stats.
type StatsRower interface {
	StatsRows() [][]any
}

// dbBackend adapts a single database to Backend. Every session funnels
// through one shared query coalescer, so concurrently arriving kNN
// queries can execute as multi-query probes (SET batch_window opts a
// session in; see internal/batch).
type dbBackend struct {
	d  *db.DB
	co *batch.Coalescer
}

func (b dbBackend) NewSession() Session { return batch.NewSession(sql.NewSession(b.d), b.co) }

// StatsRows contributes the coalescer's counters and the dynamic-data
// counters (dead tuples awaiting vacuum, delete/update/vacuum tallies)
// to SHOW server_stats.
func (b dbBackend) StatsRows() [][]any {
	rows := b.co.StatsRows()
	var dead int64
	for _, tm := range b.d.Catalog().Tables() {
		if tbl, err := b.d.Table(tm.Name); err == nil {
			dead += tbl.NDead()
		}
	}
	ms := b.d.Mutations()
	return append(rows,
		[]any{"kernel_default", vec.Default().Name()},
		[]any{"kernels_registered", strings.Join(vec.RegisteredKernelNames(), ",")},
		[]any{"dead_tuples", dead},
		[]any{"tuples_deleted", ms.TuplesDeleted},
		[]any{"tuples_updated", ms.TuplesUpdated},
		[]any{"vacuum_runs", ms.VacuumRuns},
		[]any{"vacuum_dead_reclaimed", ms.DeadReclaimed},
		[]any{"index_repairs", ms.IndexRepairs},
	)
}

// Server serves a backend over TCP.
type Server struct {
	backend Backend
	cfg     Config
	stats   stats

	lis      net.Listener
	slots    chan struct{} // capacity MaxActive; holding a token = being served
	draining chan struct{} // closed when Shutdown begins
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// execDelay is a test hook: a pause (in nanoseconds) injected
	// before each statement so timeout and drain paths can be
	// exercised deterministically.
	execDelay atomic.Int64
}

// New wraps an open database in a server. The database is shared: DDL
// and data are visible to every connection; only SET knobs are
// per-session.
func New(d *db.DB, cfg Config) *Server {
	return NewWithBackend(dbBackend{d: d, co: batch.NewCoalescer()}, cfg)
}

// NewWithBackend wraps any Backend in a server — the cluster router
// mounts here so clients speak the identical wire protocol to a router
// as to a single server.
func NewWithBackend(b Backend, cfg Config) *Server {
	cfg.defaults()
	return &Server{
		backend:  b,
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxActive),
		draining: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Start binds addr (host:port; port 0 picks a free port) and begins
// accepting connections in the background.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with port 0).
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			// Listener closed (Shutdown) or fatal accept error: stop.
			return
		}
		s.stats.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection: admission, then the session loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	if !s.admit(conn) {
		conn.Close()
		return
	}
	s.track(conn, true)
	s.stats.active.Add(1)
	sessionDone := s.serveSession(conn)
	s.track(conn, false)
	s.stats.active.Add(-1)
	conn.Close()
	// Release the slot only when the session's last statement has
	// finished — a timed-out statement may still be running.
	if sessionDone != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			<-sessionDone
			<-s.slots
		}()
	} else {
		<-s.slots
	}
}

// admit applies admission control. It returns true once the connection
// holds a slot; otherwise it writes a wire-level rejection and returns
// false.
func (s *Server) admit(conn net.Conn) bool {
	select {
	case <-s.draining:
		s.stats.rejected.Add(1)
		s.reject(conn, wire.CodeShutdown, "server is shutting down")
		return false
	default:
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	// No free slot: try to queue.
	if n := s.stats.queued.Add(1); n > int64(s.cfg.QueueDepth) {
		s.stats.queued.Add(-1)
		s.stats.rejected.Add(1)
		s.reject(conn, wire.CodeRejected,
			fmt.Sprintf("admission queue full (%d active, %d queued)", s.cfg.MaxActive, s.cfg.QueueDepth))
		return false
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		s.stats.queued.Add(-1)
		return true
	case <-timer.C:
		s.stats.queued.Add(-1)
		s.stats.rejected.Add(1)
		s.reject(conn, wire.CodeRejected, "timed out waiting for a connection slot")
		return false
	case <-s.draining:
		s.stats.queued.Add(-1)
		s.stats.rejected.Add(1)
		s.reject(conn, wire.CodeShutdown, "server is shutting down")
		return false
	}
}

func (s *Server) reject(conn net.Conn, code, msg string) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	wire.WriteFrame(conn, wire.TError, wire.EncodeError(code, msg))
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// serveSession runs the frame loop for one admitted connection. When a
// statement outlived its timeout, the returned channel closes once that
// statement finishes; otherwise it returns nil.
func (s *Server) serveSession(conn net.Conn) <-chan struct{} {
	sess := s.backend.NewSession()
	for {
		select {
		case <-s.draining:
			s.reject(conn, wire.CodeShutdown, "server is shutting down")
			return nil
		default:
		}
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			// Client went away or drain unblocked an idle read.
			return nil
		}
		switch t {
		case wire.TTerminate:
			return nil
		case wire.TPing:
			if err := wire.WriteFrame(conn, wire.TDone, wire.EncodeDone(0)); err != nil {
				return nil
			}
		case wire.TQuery:
			done, alive := s.runQuery(conn, sess, wire.DecodeQuery(payload))
			if !alive {
				return done
			}
		default:
			wire.WriteFrame(conn, wire.TError,
				wire.EncodeError(wire.CodeError, fmt.Sprintf("unexpected frame type %q", byte(t))))
			return nil
		}
	}
}

// runQuery executes one statement under the per-query timeout and
// writes the response. alive reports whether the session may continue;
// when a timeout fires, alive is false and done closes when the
// abandoned statement finishes (sessions are single-threaded, so the
// connection cannot accept further statements while one is running).
func (s *Server) runQuery(conn net.Conn, sess Session, text string) (done <-chan struct{}, alive bool) {
	if res, handled := s.utilityQuery(text); handled {
		s.respond(conn, res, nil, 0)
		return nil, true
	}
	type outcome struct {
		res *sql.Result
		err error
	}
	ch := make(chan outcome, 1)
	finished := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(finished)
		if d := s.execDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		r, err := sess.Execute(text)
		ch <- outcome{r, err}
	}()
	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		s.respond(conn, out.res, out.err, time.Since(start))
		return nil, true
	case <-timer.C:
		// Drain-and-deliver race: prefer a result that arrived with the
		// timeout. Otherwise abandon the statement and close the
		// connection — the session is not safe for a second concurrent
		// statement.
		select {
		case out := <-ch:
			s.respond(conn, out.res, out.err, time.Since(start))
			return nil, true
		default:
		}
		s.stats.timeouts.Add(1)
		s.reject(conn, wire.CodeTimeout,
			fmt.Sprintf("statement exceeded the %v query timeout", s.cfg.QueryTimeout))
		return finished, false
	}
}

// respond writes one statement outcome and records serving stats.
func (s *Server) respond(conn net.Conn, res *sql.Result, err error, elapsed time.Duration) {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	defer conn.SetWriteDeadline(time.Time{})
	if err != nil {
		s.stats.errors.Add(1)
		wire.WriteFrame(conn, wire.TError, wire.EncodeError(wire.CodeError, err.Error()))
		return
	}
	s.stats.queries.Add(1)
	if elapsed > 0 {
		// Server-side utility answers (elapsed 0) stay out of the
		// latency histogram; it reports SQL execution only.
		s.stats.observe(elapsed)
	}
	wire.WriteResult(conn, &wire.Result{Cols: res.Cols, Rows: res.Rows, Msg: res.Msg})
}

// ServerStatsQuery is the utility statement the server answers itself,
// without reaching the SQL layer: the serving-side analogue of
// PostgreSQL's pg_stat_activity.
const ServerStatsQuery = "server_stats"

// utilityQuery intercepts SHOW server_stats.
func (s *Server) utilityQuery(text string) (*sql.Result, bool) {
	fields := strings.Fields(strings.ToLower(strings.TrimSuffix(strings.TrimSpace(text), ";")))
	if len(fields) != 2 || fields[0] != "show" || fields[1] != ServerStatsQuery {
		return nil, false
	}
	st := s.Stats()
	res := &sql.Result{Cols: []string{"metric", "value"}}
	for _, row := range [][]any{
		{"conns_accepted", st.Accepted},
		{"conns_active", st.Active},
		{"conns_queued", st.Queued},
		{"conns_rejected", st.Rejected},
		{"queries_served", st.Queries},
		{"query_errors", st.Errors},
		{"query_timeouts", st.Timeouts},
		{"latency_p50", st.P50.String()},
		{"latency_p99", st.P99.String()},
	} {
		res.Rows = append(res.Rows, row)
	}
	if sr, ok := s.backend.(StatsRower); ok {
		res.Rows = append(res.Rows, sr.StatsRows()...)
	}
	return res, true
}

// Shutdown drains the server: stop accepting, reject queued arrivals,
// let in-flight statements finish, unblock idle connections, and wait
// for every handler (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.draining:
		return errors.New("server: already shut down")
	default:
	}
	close(s.draining)
	if s.lis != nil {
		s.lis.Close()
	}
	// Unblock connections parked in ReadFrame between statements. A
	// connection mid-statement is unaffected until it next reads, i.e.
	// after its in-flight response is written.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		// Force-close stragglers so their handlers exit.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}
