package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/wire"

	_ "vecstudy/internal/pase/all"
)

// newServer starts a server over a fresh in-memory database preloaded
// with n vectors on a line (so nearest neighbors are unambiguous) and
// an IVF_FLAT index.
func newServer(t *testing.T, n int, cfg Config) *Server {
	t.Helper()
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	sess := sql.NewSession(d)
	mustExec := func(q string) {
		t.Helper()
		if _, err := sess.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE t (id int, vec float[])")
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, '{%d, %d, 0, 0}')", i, i, i)
	}
	mustExec(b.String())
	mustExec("CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 8, sample_ratio = 1, seed = 1)")

	s := New(d, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func dial(t *testing.T, s *Server) *client.Conn {
	t.Helper()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeBasic(t *testing.T) {
	s := newServer(t, 100, Config{})
	c := dial(t, s)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	res, err := c.Execute("SELECT id, distance FROM t ORDER BY vec <-> '{42, 42, 0, 0}' LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].(int32) != 42 {
		t.Fatalf("search rows = %v", res.Rows)
	}
	if res.Cols[1] != "distance" {
		t.Errorf("cols = %v", res.Cols)
	}

	// DDL and writes flow through too.
	res, err = c.Execute("INSERT INTO t VALUES (999, '{500, 500, 0, 0}')")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Msg, "INSERT") {
		t.Errorf("insert msg = %q", res.Msg)
	}

	// A statement error is a wire.Error, and the session survives it.
	_, err = c.Execute("SELECT nope FROM t")
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeError {
		t.Fatalf("statement error = %v, want wire.Error/XX000", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("session dead after statement error: %v", err)
	}

	// SHOW server_stats is answered by the server itself.
	res, err = c.Execute("SHOW server_stats")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]any{}
	for _, row := range res.Rows {
		vals[row[0].(string)] = row[1]
	}
	if n := vals["queries_served"].(int64); n < 2 {
		t.Errorf("queries_served = %d, want >= 2", n)
	}
	if n := vals["query_errors"].(int64); n != 1 {
		t.Errorf("query_errors = %d, want 1", n)
	}
	if vals["conns_active"].(int64) != 1 {
		t.Errorf("conns_active = %v, want 1", vals["conns_active"])
	}
}

func TestPerSessionSetIsolation(t *testing.T) {
	s := newServer(t, 50, Config{})
	c1, c2 := dial(t, s), dial(t, s)
	if _, err := c1.Execute("SET nprobe = 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Execute("SET nprobe = 7"); err != nil {
		t.Fatal(err)
	}
	for i, want := range map[*client.Conn]string{c1: "3", c2: "7"} {
		res, err := i.Execute("SHOW nprobe")
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(string); got != want {
			t.Errorf("SHOW nprobe = %q, want %q", got, want)
		}
	}
	// An unknown knob is rejected per-session as well.
	if _, err := c1.Execute("SET wibble = 1"); err == nil {
		t.Error("unknown knob accepted over the wire")
	}
}

// TestConcurrentClients drives the server from 20 connections at once,
// each with its own session knobs, under -race.
func TestConcurrentClients(t *testing.T) {
	const clients, perClient = 20, 15
	s := newServer(t, 200, Config{MaxActive: clients})
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			nprobe := 1 + i%8
			if _, err := c.Execute(fmt.Sprintf("SET nprobe = %d", nprobe)); err != nil {
				errs[i] = err
				return
			}
			for q := 0; q < perClient; q++ {
				target := (i*perClient + q) % 200
				res, err := c.Execute(fmt.Sprintf(
					"SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT 1", target, target))
				if err != nil {
					errs[i] = fmt.Errorf("client %d query %d: %w", i, q, err)
					return
				}
				if len(res.Rows) != 1 {
					errs[i] = fmt.Errorf("client %d query %d: %d rows", i, q, len(res.Rows))
					return
				}
			}
			// The session's knob must not have been clobbered by peers.
			res, err := c.Execute("SHOW nprobe")
			if err != nil {
				errs[i] = err
				return
			}
			if got := res.Rows[0][0].(string); got != fmt.Sprint(nprobe) {
				errs[i] = fmt.Errorf("client %d: nprobe = %s, want %d", i, got, nprobe)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Accepted < clients {
		t.Errorf("accepted = %d, want >= %d", st.Accepted, clients)
	}
	if st.Queries < clients*perClient {
		t.Errorf("queries = %d, want >= %d", st.Queries, clients*perClient)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d, want 0", st.Rejected)
	}
	if st.P99 == 0 || st.P50 > st.P99 {
		t.Errorf("latency percentiles p50=%v p99=%v", st.P50, st.P99)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestQueueFullRejection(t *testing.T) {
	s := newServer(t, 20, Config{MaxActive: 1, QueueDepth: 1, QueueWait: time.Minute})

	// First connection takes the only slot.
	c1 := dial(t, s)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}

	// Second connection fills the one queue spot; its ping parks.
	c2 := dial(t, s)
	pinged := make(chan error, 1)
	go func() { pinged <- c2.Ping() }()
	waitFor(t, "connection to queue", func() bool { return s.Stats().Queued == 1 })

	// Third connection overflows the queue: clean wire-level rejection,
	// not a hang.
	c3 := dial(t, s)
	_, err := c3.Execute("SELECT id FROM t LIMIT 1")
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeRejected {
		t.Fatalf("overflow conn err = %v, want wire.Error/%s", err, wire.CodeRejected)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Releasing the slot admits the queued connection.
	c1.Close()
	if err := <-pinged; err != nil {
		t.Fatalf("queued connection never admitted: %v", err)
	}
}

func TestQueryTimeout(t *testing.T) {
	s := newServer(t, 20, Config{QueryTimeout: 20 * time.Millisecond})
	s.execDelay.Store(int64(200 * time.Millisecond))
	c := dial(t, s)
	_, err := c.Execute("SELECT id FROM t LIMIT 1")
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeTimeout {
		t.Fatalf("err = %v, want wire.Error/%s", err, wire.CodeTimeout)
	}
	if got := s.Stats().Timeouts; got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	// The timed-out connection is closed; a fresh one still serves once
	// the abandoned statement releases its slot.
	waitFor(t, "slot release", func() bool { return s.Stats().Active == 0 })
	s.execDelay.Store(0)
	c2 := dial(t, s)
	if _, err := c2.Execute("SELECT id FROM t LIMIT 1"); err != nil {
		t.Fatalf("fresh connection after timeout: %v", err)
	}
}

func TestGracefulDrain(t *testing.T) {
	d, err := db.Open(db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sess := sql.NewSession(d)
	if _, err := sess.Execute("CREATE TABLE t (id int, vec float[])"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO t VALUES (1, '{1, 2}')"); err != nil {
		t.Fatal(err)
	}
	s := New(d, Config{})
	s.execDelay.Store(int64(100 * time.Millisecond))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	idle := dial(t, s)
	if err := idle.Ping(); err != nil {
		t.Fatal(err)
	}
	busy := dial(t, s)
	type outcome struct {
		res *wire.Result
		err error
	}
	inflight := make(chan outcome, 1)
	go func() {
		res, err := busy.Execute("SELECT id FROM t LIMIT 1")
		inflight <- outcome{res, err}
	}()
	// Let the in-flight statement reach the server before draining.
	waitFor(t, "in-flight query", func() bool { return s.Stats().Active == 2 })
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("drain took %v", time.Since(start))
	}

	// The in-flight statement finished and its answer was delivered.
	out := <-inflight
	if out.err != nil {
		t.Fatalf("in-flight query dropped during drain: %v", out.err)
	}
	if len(out.res.Rows) != 1 {
		t.Errorf("in-flight rows = %v", out.res.Rows)
	}

	// Connections are gone; new work fails fast.
	if st := s.Stats(); st.Active != 0 {
		t.Errorf("active after drain = %d", st.Active)
	}
	if err := idle.Ping(); err == nil {
		t.Error("idle connection still alive after drain")
	}
	if _, err := client.Dial(s.Addr().String()); err == nil {
		// A dial may still connect if the OS races the close; executing
		// must fail either way.
		t.Log("dial succeeded after shutdown (OS accept-queue race); tolerated")
	}
	if err := s.Shutdown(ctx); err == nil {
		t.Error("second shutdown did not report already shut down")
	}
}

// TestBatchedServingEndToEnd drives coalescing over the wire: clients
// opt in with SET batch_window, issue concurrent kNN queries, and get
// exactly the rows a solo session returns, while SHOW server_stats
// reports the probes the shared coalescer flushed.
func TestBatchedServingEndToEnd(t *testing.T) {
	const clients, perClient = 8, 6
	s := newServer(t, 200, Config{MaxActive: clients + 1})

	// Solo baselines through a client with coalescing off.
	base := dial(t, s)
	want := make(map[int]int32)
	for q := 0; q < perClient; q++ {
		res, err := base.Execute(fmt.Sprintf(
			"SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT 1", q*13, q*13))
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.Rows[0][0].(int32)
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for _, set := range []string{"SET batch_window = 2000", "SET batch_max = 8"} {
				if _, err := c.Execute(set); err != nil {
					errs[i] = err
					return
				}
			}
			for q := 0; q < perClient; q++ {
				res, err := c.Execute(fmt.Sprintf(
					"SELECT id FROM t ORDER BY vec <-> '{%d, %d, 0, 0}' LIMIT 1", q*13, q*13))
				if err != nil {
					errs[i] = fmt.Errorf("client %d query %d: %w", i, q, err)
					return
				}
				if got := res.Rows[0][0].(int32); got != want[q] {
					errs[i] = fmt.Errorf("client %d query %d: id %d, solo %d", i, q, got, want[q])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	res, err := base.Execute("SHOW server_stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]string{}
	for _, row := range res.Rows {
		stats[row[0].(string)] = fmt.Sprint(row[1])
	}
	for _, key := range []string{"batch_probes", "batch_queries_batched", "batch_queries_solo", "batch_queries_unbatchable", "batch_max_size"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("SHOW server_stats is missing %q", key)
		}
	}
	if stats["batch_probes"] == "0" {
		t.Error("no multi-query probe flushed despite batch_window > 0")
	}
	if stats["batch_queries_solo"] == "0" {
		t.Error("baseline client's window=0 queries were not counted solo")
	}
}
