package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[Type][]byte{
		TQuery:     []byte("SELECT 1"),
		TPing:      nil,
		TTerminate: nil,
		TDone:      EncodeDone(42),
	}
	for typ, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, typ, p); err != nil {
			t.Fatalf("write %q: %v", byte(typ), err)
		}
		gotT, gotP, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %q: %v", byte(typ), err)
		}
		if gotT != typ || !bytes.Equal(gotP, p) {
			t.Errorf("round trip %q: got (%q, %v)", byte(typ), byte(gotT), gotP)
		}
	}
}

func TestFrameCleanEOFBetweenFrames(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
		if err == io.EOF && cut > 1 {
			t.Errorf("truncation at %d reported as clean EOF", cut)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	// A forged header announcing a payload beyond MaxFrame must fail
	// before allocating.
	hdr := []byte{byte(TQuery), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized frame err = %v", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		msg  string
		cols []string
	}{
		{"CREATE TABLE", nil},
		{"", []string{"id", "distance"}},
		{"SET", []string{}},
	} {
		p, err := EncodeHeader(tc.msg, tc.cols)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		msg, cols, err := DecodeHeader(p)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if msg != tc.msg || len(cols) != len(tc.cols) {
			t.Errorf("got (%q, %v), want (%q, %v)", msg, cols, tc.msg, tc.cols)
		}
		for i := range cols {
			if cols[i] != tc.cols[i] {
				t.Errorf("col %d = %q, want %q", i, cols[i], tc.cols[i])
			}
		}
	}
}

func TestRowRoundTripAllTypes(t *testing.T) {
	row := []any{
		nil,
		int32(-7),
		int64(1 << 40),
		float32(3.25),
		float64(-2.5),
		"hello 'world'",
		[]float32{0.1, -0.2, float32(math.Inf(1))},
	}
	p, err := EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, row) {
		t.Errorf("row round trip:\n got %#v\nwant %#v", got, row)
	}
}

func TestRowRejectsUnknownType(t *testing.T) {
	if _, err := EncodeRow([]any{struct{}{}}); err == nil {
		t.Error("struct value encoded without error")
	}
}

func TestEncodeRejectsUint16Overflow(t *testing.T) {
	// Counts travel as uint16; one past the max must fail fast rather
	// than truncate and mis-decode on the peer.
	if _, err := EncodeHeader("", make([]string, math.MaxUint16+1)); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized header err = %v", err)
	}
	if _, err := EncodeRow(make([]any, math.MaxUint16+1)); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized row err = %v", err)
	}
	if p, err := EncodeHeader("", make([]string, math.MaxUint16)); err != nil {
		t.Errorf("header at the limit rejected: %v", err)
	} else if _, cols, err := DecodeHeader(p); err != nil || len(cols) != math.MaxUint16 {
		t.Errorf("header at the limit round trip: %d cols, %v", len(cols), err)
	}
}

func TestRowRejectsCorruptPayload(t *testing.T) {
	p, err := EncodeRow([]any{int64(9), "abc"})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeRow(p[:cut]); err == nil {
			t.Errorf("corrupt row (cut at %d) decoded without error", cut)
		}
	}
	bad := append([]byte{0, 1, '?'}, p...)
	if _, err := DecodeRow(bad[:3]); err == nil {
		t.Error("unknown tag decoded without error")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e, err := DecodeError(EncodeError(CodeRejected, "admission queue full"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeRejected || e.Message != "admission queue full" {
		t.Errorf("got %+v", e)
	}
	if !strings.Contains(e.Error(), CodeRejected) {
		t.Errorf("Error() = %q lacks code", e.Error())
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := &Result{
		Cols: []string{"id", "distance", "vec"},
		Rows: [][]any{
			{int32(1), float32(0.5), []float32{1, 2}},
			{int32(2), float32(1.5), []float32{3, 4}},
		},
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("result round trip:\n got %#v\nwant %#v", got, res)
	}
}

func TestResultErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TError, EncodeError(CodeTimeout, "query timed out")); err != nil {
		t.Fatal(err)
	}
	_, err := ReadResult(&buf)
	var werr *Error
	if !errors.As(err, &werr) || werr.Code != CodeTimeout {
		t.Errorf("err = %v, want wire.Error with CodeTimeout", err)
	}
}

func TestResultRowBeforeHeaderRejected(t *testing.T) {
	var buf bytes.Buffer
	p, _ := EncodeRow([]any{int32(1)})
	if err := WriteFrame(&buf, TRow, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResult(&buf); err == nil {
		t.Error("DataRow before ResultHeader accepted")
	}
}

func TestPingReplyIsBareDone(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TDone, EncodeDone(0)); err != nil {
		t.Fatal(err)
	}
	res, err := ReadResult(&buf)
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("bare Done: res=%v err=%v", res, err)
	}
}
