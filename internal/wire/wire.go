// Package wire defines the client/server protocol of the serving layer:
// a small length-prefixed binary framing, pgwire-shaped but minimal.
//
// Every frame is
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// Client-to-server types: Query (payload = UTF-8 SQL text), Ping (empty),
// Terminate (empty). Server-to-client types: ResultHeader (utility
// message + column names), DataRow (one typed row), Done (row count,
// terminates a result set and reports ready-for-query), Error
// (SQLSTATE-style code + message). A successful query is answered with
// ResultHeader, zero or more DataRows, then Done; a failed one with a
// single Error frame, after which the session is ready again. Ping is
// answered with Done(0).
//
// Encoding and decoding are pure functions over byte slices and
// io.Reader/io.Writer — no sockets — so the protocol round-trips in
// tests without a network.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Type is the one-byte frame type.
type Type byte

// Frame types. The letters follow the PostgreSQL wire protocol where a
// close analogue exists (Q query, D data row, E error, X terminate).
const (
	TQuery     Type = 'Q' // client → server: SQL text
	TPing      Type = 'p' // client → server: liveness probe
	TTerminate Type = 'X' // client → server: clean goodbye

	THeader Type = 'H' // server → client: result header (msg, columns)
	TRow    Type = 'D' // server → client: one data row
	TDone   Type = 'Z' // server → client: result complete, ready for query
	TError  Type = 'E' // server → client: statement or admission error
)

// MaxFrame bounds a frame payload (64 MiB). A peer announcing a larger
// frame is protocol-broken (or hostile); readers fail fast instead of
// allocating.
const MaxFrame = 64 << 20

// SQLSTATE-style error codes carried by TError frames.
const (
	CodeError    = "XX000" // statement failed (parse/execution error)
	CodeRejected = "53300" // admission queue full: too many connections
	CodeTimeout  = "57014" // per-query timeout exceeded
	CodeShutdown = "57P01" // server is draining for shutdown
)

// Error is a decoded TError frame. It satisfies the error interface so
// clients can return it directly.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("server error %s: %s", e.Code, e.Message) }

// Result mirrors the SQL layer's statement outcome on the client side.
type Result struct {
	Cols []string
	Rows [][]any
	Msg  string // DDL/utility acknowledgment ("CREATE TABLE", "SET", ...)
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. io.EOF is returned verbatim on a clean
// close between frames; a close mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds max %d", n, MaxFrame)
	}
	if n == 0 {
		return Type(hdr[0]), nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return Type(hdr[0]), payload, nil
}

// --- payload primitives ---------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(b[:n]), b[n:], nil
}

// --- Query ----------------------------------------------------------------

// EncodeQuery encodes a TQuery payload.
func EncodeQuery(sql string) []byte { return []byte(sql) }

// DecodeQuery decodes a TQuery payload.
func DecodeQuery(p []byte) string { return string(p) }

// --- ResultHeader ---------------------------------------------------------

// EncodeHeader encodes a THeader payload: the utility message and the
// column names. The column count travels as a uint16, so wider headers
// fail fast instead of truncating and mis-decoding on the peer.
func EncodeHeader(msg string, cols []string) ([]byte, error) {
	if len(cols) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: %d columns exceeds max %d", len(cols), math.MaxUint16)
	}
	b := appendString(nil, msg)
	b = binary.BigEndian.AppendUint16(b, uint16(len(cols)))
	for _, c := range cols {
		b = appendString(b, c)
	}
	return b, nil
}

// DecodeHeader decodes a THeader payload.
func DecodeHeader(p []byte) (msg string, cols []string, err error) {
	msg, p, err = readString(p)
	if err != nil {
		return "", nil, err
	}
	if len(p) < 2 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint16(p)
	p = p[2:]
	for i := 0; i < int(n); i++ {
		var c string
		c, p, err = readString(p)
		if err != nil {
			return "", nil, err
		}
		cols = append(cols, c)
	}
	if len(p) != 0 {
		return "", nil, fmt.Errorf("wire: %d trailing bytes after header payload", len(p))
	}
	return msg, cols, nil
}

// --- DataRow --------------------------------------------------------------

// Value tags inside a TRow payload. Each value is one tag byte followed
// by its fixed- or length-prefixed encoding.
const (
	tagNull    = 'n'
	tagInt32   = 'i'
	tagInt64   = 'l'
	tagFloat32 = 'f'
	tagFloat64 = 'd'
	tagString  = 's'
	tagVector  = 'v' // []float32: u32 count + 4 bytes per element
)

// EncodeRow encodes one row of SQL output values. The supported dynamic
// types are exactly those the SQL executor produces: nil, int32, int64,
// float32, float64, string, []float32.
func EncodeRow(vals []any) ([]byte, error) {
	if len(vals) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: %d row values exceeds max %d", len(vals), math.MaxUint16)
	}
	b := binary.BigEndian.AppendUint16(nil, uint16(len(vals)))
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			b = append(b, tagNull)
		case int32:
			b = append(b, tagInt32)
			b = binary.BigEndian.AppendUint32(b, uint32(x))
		case int64:
			b = append(b, tagInt64)
			b = binary.BigEndian.AppendUint64(b, uint64(x))
		case float32:
			b = append(b, tagFloat32)
			b = binary.BigEndian.AppendUint32(b, math.Float32bits(x))
		case float64:
			b = append(b, tagFloat64)
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(x))
		case string:
			b = append(b, tagString)
			b = appendString(b, x)
		case []float32:
			b = append(b, tagVector)
			b = binary.BigEndian.AppendUint32(b, uint32(len(x)))
			for _, f := range x {
				b = binary.BigEndian.AppendUint32(b, math.Float32bits(f))
			}
		default:
			return nil, fmt.Errorf("wire: cannot encode value of type %T", v)
		}
	}
	return b, nil
}

// DecodeRow decodes a TRow payload back into dynamic values.
func DecodeRow(p []byte) ([]any, error) {
	if len(p) < 2 {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint16(p)
	p = p[2:]
	vals := make([]any, 0, n)
	for i := 0; i < int(n); i++ {
		if len(p) < 1 {
			return nil, io.ErrUnexpectedEOF
		}
		tag := p[0]
		p = p[1:]
		switch tag {
		case tagNull:
			vals = append(vals, nil)
		case tagInt32:
			if len(p) < 4 {
				return nil, io.ErrUnexpectedEOF
			}
			vals = append(vals, int32(binary.BigEndian.Uint32(p)))
			p = p[4:]
		case tagInt64:
			if len(p) < 8 {
				return nil, io.ErrUnexpectedEOF
			}
			vals = append(vals, int64(binary.BigEndian.Uint64(p)))
			p = p[8:]
		case tagFloat32:
			if len(p) < 4 {
				return nil, io.ErrUnexpectedEOF
			}
			vals = append(vals, math.Float32frombits(binary.BigEndian.Uint32(p)))
			p = p[4:]
		case tagFloat64:
			if len(p) < 8 {
				return nil, io.ErrUnexpectedEOF
			}
			vals = append(vals, math.Float64frombits(binary.BigEndian.Uint64(p)))
			p = p[8:]
		case tagString:
			s, rest, err := readString(p)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
			p = rest
		case tagVector:
			if len(p) < 4 {
				return nil, io.ErrUnexpectedEOF
			}
			m := binary.BigEndian.Uint32(p)
			p = p[4:]
			if uint32(len(p)) < 4*m {
				return nil, io.ErrUnexpectedEOF
			}
			vec := make([]float32, m)
			for j := range vec {
				vec[j] = math.Float32frombits(binary.BigEndian.Uint32(p[4*j:]))
			}
			vals = append(vals, vec)
			p = p[4*m:]
		default:
			return nil, fmt.Errorf("wire: unknown value tag %q", tag)
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after row payload", len(p))
	}
	return vals, nil
}

// --- Done -----------------------------------------------------------------

// EncodeDone encodes a TDone payload carrying the row count.
func EncodeDone(rows int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(rows))
}

// DecodeDone decodes a TDone payload. The payload is exactly four
// bytes; trailing garbage means a framing bug (or a hostile peer) and
// is rejected rather than ignored.
func DecodeDone(p []byte) (rows int, err error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("wire: done payload is %d bytes, want 4", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), nil
}

// --- Error ----------------------------------------------------------------

// EncodeError encodes a TError payload.
func EncodeError(code, msg string) []byte {
	return appendString(appendString(nil, code), msg)
}

// DecodeError decodes a TError payload.
func DecodeError(p []byte) (*Error, error) {
	code, p, err := readString(p)
	if err != nil {
		return nil, err
	}
	msg, rest, err := readString(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after error payload", len(rest))
	}
	return &Error{Code: code, Message: msg}, nil
}

// --- whole-result helpers -------------------------------------------------

// WriteResult writes a full successful result: header, rows, done.
func WriteResult(w io.Writer, res *Result) error {
	hdr, err := EncodeHeader(res.Msg, res.Cols)
	if err != nil {
		return err
	}
	if err := WriteFrame(w, THeader, hdr); err != nil {
		return err
	}
	for _, row := range res.Rows {
		p, err := EncodeRow(row)
		if err != nil {
			return err
		}
		if err := WriteFrame(w, TRow, p); err != nil {
			return err
		}
	}
	return WriteFrame(w, TDone, EncodeDone(len(res.Rows)))
}

// ReadResult reads frames until a result completes. A TError frame is
// returned as (*Error) in err; any other protocol violation is a plain
// error.
func ReadResult(r io.Reader) (*Result, error) {
	var res *Result
	for {
		t, payload, err := ReadFrame(r)
		if err != nil {
			return nil, err
		}
		switch t {
		case THeader:
			msg, cols, err := DecodeHeader(payload)
			if err != nil {
				return nil, err
			}
			res = &Result{Msg: msg, Cols: cols}
		case TRow:
			if res == nil {
				return nil, fmt.Errorf("wire: DataRow before ResultHeader")
			}
			vals, err := DecodeRow(payload)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, vals)
		case TDone:
			if res == nil {
				res = &Result{} // Done without header: ping reply
			}
			return res, nil
		case TError:
			werr, err := DecodeError(payload)
			if err != nil {
				return nil, err
			}
			return nil, werr
		default:
			return nil, fmt.Errorf("wire: unexpected frame type %q in result", byte(t))
		}
	}
}
