package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// frameBytes builds a well-formed frame for the seed corpus.
func frameBytes(t Type, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, t, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader and,
// when a frame parses, through the per-type payload decoder and an
// encode/decode round trip. The properties under test: no decoder
// panics or over-allocates on hostile input, and every successfully
// decoded frame survives re-encoding byte-identically.
func FuzzDecodeFrame(f *testing.F) {
	header, _ := EncodeHeader("SELECT", []string{"id", "distance"})
	row, _ := EncodeRow([]any{int64(7), "x", float32(0.5), []float32{1, 2, 3}})
	f.Add(frameBytes(TQuery, EncodeQuery("SELECT count(*) FROM t")))
	f.Add(frameBytes(TPing, nil))
	f.Add(frameBytes(TTerminate, nil))
	f.Add(frameBytes(THeader, header))
	f.Add(frameBytes(TRow, row))
	f.Add(frameBytes(TDone, EncodeDone(42)))
	f.Add(frameBytes(TError, EncodeError(CodeTimeout, "canceled")))
	// Truncated and oversized headers.
	f.Add([]byte{byte(TQuery)})
	f.Add([]byte{byte(TRow), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{byte(TDone), 0, 0, 0, 9, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round trip: the frame layer must be lossless.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding read frame: %v", err)
		}
		typ2, payload2, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil || typ2 != typ || !bytes.Equal(payload, payload2) {
			t.Fatalf("frame round trip diverged: %v", err)
		}
		// Payload decoders must not panic, and successful decodes must
		// re-encode to the exact bytes they came from.
		switch typ {
		case THeader:
			msg, cols, err := DecodeHeader(payload)
			if err == nil {
				again, err := EncodeHeader(msg, cols)
				if err != nil || !bytes.Equal(again, payload) {
					t.Fatalf("header round trip diverged")
				}
			}
		case TRow:
			vals, err := DecodeRow(payload)
			if err == nil {
				again, err := EncodeRow(vals)
				if err != nil {
					t.Fatalf("re-encoding decoded row: %v", err)
				}
				vals2, err := DecodeRow(again)
				if err != nil || !reflect.DeepEqual(vals, vals2) {
					t.Fatalf("row round trip diverged: %v", err)
				}
			}
		case TDone:
			if rows, err := DecodeDone(payload); err == nil {
				if !bytes.Equal(EncodeDone(rows), payload) {
					t.Fatalf("done round trip diverged")
				}
			}
		case TError:
			if e, err := DecodeError(payload); err == nil {
				if !bytes.Equal(EncodeError(e.Code, e.Message), payload) {
					t.Fatalf("error round trip diverged")
				}
			}
		}
	})
}
