// Package deadvisibility enforces the tuple-visibility invariant on
// scan paths: code that resolves an index hit or scans the heap must
// observe the dead bit, so a DELETE is never visible through any read
// path.
//
// The heap exposes two tiers of accessors. (*heap.Table).Get and
// GetVector are raw — they return a tuple's bytes whether or not the
// tuple has been deleted (the heap only errors once VACUUM reclaims the
// slot, so between DELETE and VACUUM a raw read resurrects the row).
// GetVisible, GetVectorVisible, and Visible are the sanctioned scan-path
// forms: they report ok=false for a dead tuple and the caller skips it.
//
// In the scan-path packages — the access methods (internal/pase/...),
// the pgvector adapter, the SQL executor, and the core harness — every
// raw Get/GetVector call is one forgotten dead-bit check away from the
// delete-then-search anomaly the dynamic-data tests pin down, so the
// analyzer bans the raw forms there outright. Call sites that read
// tuples the visibility check cannot misjudge (build-time passes over a
// freshly loaded table, repair code that must see dead tuples) declare
// it with a //vetvec:visibility-checked directive on the call line or
// the line above.
package deadvisibility

import (
	"go/ast"
	"strings"

	"vecstudy/internal/analysis"
)

// HeapPath is the package that declares the accessors.
const HeapPath = "vecstudy/internal/pg/heap"

// Analyzer is the dead-tuple-visibility checker.
var Analyzer = &analysis.Analyzer{
	Name: "deadvisibility",
	Doc:  "scan-path packages must read heap tuples through GetVisible/GetVectorVisible/Visible, not raw Get/GetVector",
	Run:  run,
}

// scopedPrefixes are the scan-path package trees the invariant applies
// to. The heap itself is exempt (the visible helpers are built from the
// raw ones), as are the loaders and tests that own freshly built tables.
var scopedPrefixes = []string{
	"vecstudy/internal/pase",
	"vecstudy/internal/pgvector",
	"vecstudy/internal/pg/sql",
	"vecstudy/internal/core",
}

// rawAccessors are the banned (*heap.Table) methods and the visible
// form each call site should use instead.
var rawAccessors = map[string]string{
	"Get":       "GetVisible",
	"GetVector": "GetVectorVisible",
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for raw, visible := range rawAccessors {
				if !analysis.IsMethod(pass.Info, call, HeapPath, "Table", raw) {
					continue
				}
				if pass.Suppressed(call.Pos(), "visibility-checked") {
					continue
				}
				pass.Reportf(call.Pos(),
					"raw heap.Table.%s on a scan path can return a deleted tuple: use %s (or annotate //vetvec:visibility-checked if dead tuples are intended here)",
					raw, visible)
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, p := range scopedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
