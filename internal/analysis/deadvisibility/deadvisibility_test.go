package deadvisibility_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/deadvisibility"
)

func TestDeadVisibilityInScope(t *testing.T) {
	// The fixture must load under a scan-path import path for the
	// analyzer to fire at all.
	analysistest.RunPath(t, ".", deadvisibility.Analyzer, "scanpath",
		"vecstudy/internal/pase/scanpathfixture")
}

func TestDeadVisibilityOutOfScope(t *testing.T) {
	// Under a non-scan-path import path the same raw accessors are
	// allowed: the fixture contains no want comments, so any diagnostic
	// fails the test.
	analysistest.Run(t, ".", deadvisibility.Analyzer, "offpath")
}
