// Package offpath is the out-of-scope deadvisibility fixture: loaded
// under an import path outside the scan-path trees, raw accessors are
// allowed (loaders and tests own freshly built tables).
package offpath

import "vecstudy/internal/pg/heap"

// rawGetAllowed is fine here: this package is not a scan path.
func rawGetAllowed(tbl *heap.Table, tid heap.TID) error {
	return tbl.Get(tid, func([]byte) error { return nil })
}

// rawGetVectorAllowed likewise.
func rawGetVectorAllowed(tbl *heap.Table, tid heap.TID) ([]float32, error) {
	return tbl.GetVector(tid, 0)
}
