// Package scanpath is the deadvisibility fixture: loaded under an
// in-scope import path, each function is one accessor shape the
// analyzer must flag (// want) or must leave alone.
package scanpath

import "vecstudy/internal/pg/heap"

// rawGet resolves an index hit through the raw accessor.
func rawGet(tbl *heap.Table, tid heap.TID) (row []byte, err error) {
	err = tbl.Get(tid, func(tup []byte) error { // want "raw heap.Table.Get on a scan path"
		row = append(row, tup...)
		return nil
	})
	return row, err
}

// rawGetVector fetches the vector column without a visibility check.
func rawGetVector(tbl *heap.Table, tid heap.TID) ([]float32, error) {
	return tbl.GetVector(tid, 1) // want "raw heap.Table.GetVector on a scan path"
}

// visibleGet is the sanctioned form: dead tuples report ok=false.
func visibleGet(tbl *heap.Table, tid heap.TID) (row []byte, ok bool, err error) {
	ok, err = tbl.GetVisible(tid, func(tup []byte) error {
		row = append(row, tup...)
		return nil
	})
	return row, ok, err
}

// visibleGetVector is the sanctioned vector form.
func visibleGetVector(tbl *heap.Table, tid heap.TID) ([]float32, bool, error) {
	return tbl.GetVectorVisible(tid, 1)
}

// suppressedSameLine reads dead tuples on purpose and says so.
func suppressedSameLine(tbl *heap.Table, tid heap.TID) ([]float32, error) {
	return tbl.GetVector(tid, 1) //vetvec:visibility-checked — repair pass must see tombstones
}

// suppressedLineAbove carries the directive on the preceding line.
func suppressedLineAbove(tbl *heap.Table, tid heap.TID) error {
	//vetvec:visibility-checked build-time pass over a freshly loaded table
	return tbl.Get(tid, func([]byte) error { return nil })
}
