package rawdistance_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/rawdistance"
)

func TestRawDistanceInScope(t *testing.T) {
	// An ordinary package path puts the fixture in scope.
	analysistest.RunPath(t, ".", rawdistance.Analyzer, "kernelpath",
		"vecstudy/internal/pase/kernelpathfixture")
}

func TestRawDistanceOutOfScope(t *testing.T) {
	// Under the internal/vec import path the same loops are the kernel
	// implementations themselves: no want comments, any diagnostic fails.
	analysistest.RunPath(t, ".", rawdistance.Analyzer, "vecinternal",
		"vecstudy/internal/vec/kernels")
}
