// Package rawdistance enforces the kernel-dispatch invariant the
// distance refactor established: every distance computed on a search,
// build, or maintenance path goes through a vec.Kernel (resolved by
// vec.ForName / pinned by vec.Ref), never through the raw package-level
// helpers or a hand-rolled subtract-square loop.
//
// The invariant is what makes SET distance_kernel total: if one call
// site scores with vec.L2Sqr directly, that site silently ignores the
// session's kernel and EXPLAIN's "Kernel:" line lies. It is also what
// keeps on-disk layouts session-independent — bucket assignment and
// graph wiring must use the pinned ref kernel, and a raw helper call is
// indistinguishable from a forgotten pin.
//
// Two shapes are flagged outside internal/vec and internal/blas (the
// packages that implement kernels and are allowed raw arithmetic):
//
//   - calls to the raw entry points vec.L2Sqr, vec.L2SqrRef, and the
//     blas.L2SqrNT* family — use a Kernel method instead;
//   - manual subtract-square loops: (a[i]-b[i])*(a[i]-b[i]) inline, or
//     d := a[i]-b[i] followed by d*d inside a loop body.
//
// Call sites that are legitimately raw — a test oracle that must stay
// independent of the kernel registry, arithmetic that only looks like a
// distance — declare it with //vetvec:kernel-exempt on the call line or
// the line above.
package rawdistance

import (
	"go/ast"
	"go/token"
	"strings"

	"vecstudy/internal/analysis"
)

// VecPath and BlasPath declare the raw helpers; inside them raw
// arithmetic is the point.
const (
	VecPath  = "vecstudy/internal/vec"
	BlasPath = "vecstudy/internal/blas"
)

// Analyzer is the kernel-dispatch checker.
var Analyzer = &analysis.Analyzer{
	Name: "rawdistance",
	Doc:  "distance computation outside internal/vec must go through a vec.Kernel, not raw helpers or manual subtract-square loops",
	Run:  run,
}

// exemptPrefixes are the package trees allowed raw distance arithmetic.
var exemptPrefixes = []string{VecPath, BlasPath}

// rawVecFuncs are the banned package-level helpers in internal/vec.
var rawVecFuncs = []string{"L2Sqr", "L2SqrRef"}

// rawBlasFuncs are the banned batched helpers in internal/blas.
var rawBlasFuncs = []string{"L2SqrNT", "L2SqrNTRows", "L2SqrNTParallel"}

func run(pass *analysis.Pass) error {
	for _, p := range exemptPrefixes {
		if pass.Pkg.Path() == p || strings.HasPrefix(pass.Pkg.Path(), p+"/") {
			return nil
		}
	}
	for _, file := range pass.Files {
		// Tests carry their own kernel-independent oracles by design.
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRawCall(pass, n)
			case *ast.ForStmt:
				if n.Body != nil {
					checkLoopBody(pass, n.Body)
				}
			case *ast.RangeStmt:
				if n.Body != nil {
					checkLoopBody(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

func checkRawCall(pass *analysis.Pass, call *ast.CallExpr) {
	for _, name := range rawVecFuncs {
		if analysis.IsPkgFunc(pass.Info, call, VecPath, name) && !pass.Suppressed(call.Pos(), "kernel-exempt") {
			pass.Reportf(call.Pos(),
				"raw vec.%s bypasses the session kernel: score through a vec.Kernel (ForName/Ref/Default), or annotate //vetvec:kernel-exempt",
				name)
		}
	}
	for _, name := range rawBlasFuncs {
		if analysis.IsPkgFunc(pass.Info, call, BlasPath, name) && !pass.Suppressed(call.Pos(), "kernel-exempt") {
			pass.Reportf(call.Pos(),
				"raw blas.%s bypasses the session kernel: use Kernel.L2SqrNT/L2SqrNTRows or vec.NTParallel, or annotate //vetvec:kernel-exempt",
				name)
		}
	}
}

// checkLoopBody flags manual subtract-square arithmetic inside one loop
// body: the inline form (a[i]-b[i])*(a[i]-b[i]), and the two-step form
// where an identifier assigned a[i]-b[i] is later multiplied by itself.
func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: identifiers assigned a subtraction of two index
	// expressions anywhere in this body.
	diffIdents := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isIndexDiff(as.Rhs[i]) {
				diffIdents[id.Name] = true
			}
		}
		return true
	})
	// Pass 2: self-multiplications of either form.
	ast.Inspect(body, func(n ast.Node) bool {
		mul, ok := n.(*ast.BinaryExpr)
		if !ok || mul.Op != token.MUL {
			return true
		}
		if pass.Suppressed(mul.Pos(), "kernel-exempt") {
			return true
		}
		if isIndexDiff(mul.X) && isIndexDiff(mul.Y) {
			pass.Reportf(mul.Pos(),
				"manual subtract-square loop computes a distance outside the kernel layer: use a vec.Kernel method, or annotate //vetvec:kernel-exempt")
			return false
		}
		xi, xok := mul.X.(*ast.Ident)
		yi, yok := mul.Y.(*ast.Ident)
		if xok && yok && xi.Name == yi.Name && diffIdents[xi.Name] {
			pass.Reportf(mul.Pos(),
				"manual subtract-square loop computes a distance outside the kernel layer: use a vec.Kernel method, or annotate //vetvec:kernel-exempt")
			return false
		}
		return true
	})
}

// isIndexDiff reports whether e (modulo parens and float32 conversions)
// is a subtraction with at least one indexed operand — the elementwise
// difference at the heart of an L2 loop.
func isIndexDiff(e ast.Expr) bool {
	e = unwrap(e)
	sub, ok := e.(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB {
		return false
	}
	return isIndexed(sub.X) || isIndexed(sub.Y)
}

func isIndexed(e ast.Expr) bool {
	_, ok := unwrap(e).(*ast.IndexExpr)
	return ok
}

// unwrap strips parentheses and single-argument conversions/calls like
// float32(...) or float64(...), which wrap the difference without
// changing what it computes.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return e
			}
			e = x.Args[0]
		default:
			return e
		}
	}
}
