// Package vecinternal is the out-of-scope rawdistance fixture: loaded
// under the internal/vec import path, raw subtract-square arithmetic is
// exactly what kernel implementations are made of, so nothing here may
// be flagged.
package vecinternal

// l2 is a kernel-style scalar loop — the thing internal/vec exists for.
func l2(x, y []float32) float32 {
	var s float32
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// l2Inline likewise with the one-expression form.
func l2Inline(x, y []float32) float32 {
	var s float32
	for i := range x {
		s += (x[i] - y[i]) * (x[i] - y[i])
	}
	return s
}
