// Package kernelpath is the rawdistance fixture: loaded under an
// ordinary (non-vec, non-blas) import path, each function is one
// distance-computation shape the analyzer must flag (// want) or must
// leave alone.
package kernelpath

import (
	"vecstudy/internal/blas"
	"vecstudy/internal/vec"
)

// rawL2 scores with the package-level helper, dodging the session kernel.
func rawL2(q, v []float32) float32 {
	return vec.L2Sqr(q, v) // want "raw vec.L2Sqr bypasses the session kernel"
}

// rawL2Ref likewise for the scalar reference helper.
func rawL2Ref(q, v []float32) float32 {
	return vec.L2SqrRef(q, v) // want "raw vec.L2SqrRef bypasses the session kernel"
}

// rawBatch uses the blas batch primitives directly.
func rawBatch(a []float32, m, k int, b []float32, n int, c []float32) {
	blas.L2SqrNT(a, m, k, b, n, c) // want "raw blas.L2SqrNT bypasses the session kernel"
}

// rawBatchRows likewise for the row-slice form.
func rawBatchRows(rows [][]float32, k int, b []float32, n int, c []float32) {
	blas.L2SqrNTRows(rows, k, b, n, c) // want "raw blas.L2SqrNTRows bypasses the session kernel"
}

// inlineLoop hand-rolls L2 with the one-expression form.
func inlineLoop(q, v []float32) float32 {
	var s float32
	for i := range q {
		s += (q[i] - v[i]) * (q[i] - v[i]) // want "manual subtract-square loop"
	}
	return s
}

// twoStepLoop hand-rolls L2 via an intermediate difference.
func twoStepLoop(q, v []float32) float32 {
	var s float32
	for i := 0; i < len(q); i++ {
		d := q[i] - v[i]
		s += d * d // want "manual subtract-square loop"
	}
	return s
}

// kernelScore is the sanctioned form: dispatch through a Kernel.
func kernelScore(kern vec.Kernel, q, v []float32) float32 {
	return kern.L2Sqr(q, v)
}

// pinnedScore pins the ref kernel for layout decisions — also fine.
func pinnedScore(q, v []float32) float32 {
	return vec.Ref().L2Sqr(q, v)
}

// plainArithmetic multiplies a difference of scalars: not a distance
// loop, must not be flagged.
func plainArithmetic(a, b float32) float32 {
	var s float32
	for i := 0; i < 4; i++ {
		d := a - b
		s += d * d
	}
	return s
}

// exemptSameLine is a deliberate oracle and says so.
func exemptSameLine(q, v []float32) float32 {
	return vec.L2SqrRef(q, v) //vetvec:kernel-exempt independent oracle
}

// exemptLineAbove carries the directive on the preceding line.
func exemptLineAbove(q, v []float32) float32 {
	var s float32
	for i := range q {
		//vetvec:kernel-exempt reference arithmetic on purpose
		s += (q[i] - v[i]) * (q[i] - v[i])
	}
	return s
}
