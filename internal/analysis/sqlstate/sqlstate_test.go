package sqlstate_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/sqlstate"
)

func TestSQLState(t *testing.T) {
	analysistest.Run(t, ".", sqlstate.Analyzer, "state")
}
