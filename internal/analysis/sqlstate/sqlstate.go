// Package sqlstate enforces the wire-protocol error-code invariant:
// every SQLSTATE carried by a TError frame comes from a constant
// declared in internal/wire, never from an inline string literal.
//
// Inline codes are how SQLSTATE vocabularies rot: a typo'd "53#00"
// still compiles, still crosses the wire, and silently breaks every
// client that switches on wire.CodeRejected. Keeping the vocabulary in
// one declared place — the way PostgreSQL generates errcodes.h from
// errcodes.txt — makes the set greppable and the shape checkable.
//
// The analyzer reports:
//
//   - wire.EncodeError(code, ...) or wire.Error{Code: ...} where the
//     code expression is a string literal instead of a reference to a
//     constant declared in internal/wire;
//   - any other call argument that is a string literal shaped like a
//     SQLSTATE (five chars of [0-9A-Z] with at least one digit) in a
//     serving-layer package — the s.reject(conn, "53300", ...) pattern
//     that launders an inline code through a helper;
//   - in internal/wire itself, a declared Code* constant whose value is
//     not a well-formed five-char SQLSTATE.
package sqlstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"vecstudy/internal/analysis"
)

// WirePath is the package whose constants form the SQLSTATE vocabulary.
const WirePath = "vecstudy/internal/wire"

// Analyzer is the sqlstate checker.
var Analyzer = &analysis.Analyzer{
	Name: "sqlstate",
	Doc:  "TError frames must use SQLSTATE constants declared in internal/wire, never inline string literals",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, node)
			case *ast.CompositeLit:
				checkErrorLit(pass, node)
			case *ast.GenDecl:
				if pass.Pkg.Path() == WirePath && node.Tok == token.CONST {
					checkConstShape(pass, node)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags EncodeError with a literal code, and SQLSTATE-shaped
// literals passed to any other function.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.Info, call, WirePath, "EncodeError") && len(call.Args) > 0 {
		checkCodeExpr(pass, call.Args[0], "wire.EncodeError")
		return
	}
	// Helper laundering: any string literal argument that looks like a
	// SQLSTATE should be a declared constant, whoever it is passed to.
	for _, arg := range call.Args {
		if lit := stringLit(arg); lit != nil && looksLikeSQLSTATE(litValue(lit)) {
			pass.Reportf(lit.Pos(),
				"inline SQLSTATE literal %s: use a declared constant from internal/wire", lit.Value)
		}
	}
}

// checkErrorLit flags wire.Error{Code: "..."} composite literals.
func checkErrorLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !analysis.NamedType(tv.Type, WirePath, "Error") {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
				checkCodeExpr(pass, kv.Value, "wire.Error.Code")
			}
			continue
		}
		if i == 0 { // positional: Code is the first field
			checkCodeExpr(pass, elt, "wire.Error.Code")
		}
	}
}

// checkCodeExpr requires expr to not be an inline string literal. A
// reference to a constant declared in internal/wire is the sanctioned
// form; identifiers and call results are accepted because the analyzer
// cannot see through data flow — the literal ban is the hard line.
func checkCodeExpr(pass *analysis.Pass, expr ast.Expr, ctx string) {
	if lit := stringLit(expr); lit != nil && pass.Pkg.Path() != WirePath {
		pass.Reportf(lit.Pos(),
			"%s called with inline SQLSTATE literal %s: use a declared constant from internal/wire", ctx, lit.Value)
		return
	}
	// Constants declared outside internal/wire defeat the single-vocabulary
	// goal just as thoroughly as literals do.
	if obj := constOf(pass.Info, expr); obj != nil {
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() != WirePath {
			pass.Reportf(expr.Pos(),
				"%s called with SQLSTATE constant %s declared in %s: declare it in internal/wire", ctx, obj.Name(), pkg.Path())
		}
	}
}

// checkConstShape validates declared SQLSTATE constants in the wire
// package: name Code*, value exactly five chars of [0-9A-Z].
func checkConstShape(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if !strings.HasPrefix(name.Name, "Code") || i >= len(vs.Values) {
				continue
			}
			lit := stringLit(vs.Values[i])
			if lit == nil {
				continue
			}
			if v := litValue(lit); !wellFormed(v) {
				pass.Reportf(lit.Pos(), "SQLSTATE constant %s = %q is not five chars of [0-9A-Z]", name.Name, v)
			}
		}
	}
}

// stringLit unwraps expr to a string BasicLit, or nil.
func stringLit(expr ast.Expr) *ast.BasicLit {
	if p, ok := expr.(*ast.ParenExpr); ok {
		return stringLit(p.X)
	}
	lit, ok := expr.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	return lit
}

func litValue(lit *ast.BasicLit) string {
	v, err := strconv.Unquote(lit.Value)
	if err != nil {
		return lit.Value
	}
	return v
}

// constOf resolves expr to the constant object it references, or nil.
func constOf(info *types.Info, expr ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}

// wellFormed reports whether v has the SQLSTATE shape.
func wellFormed(v string) bool {
	if len(v) != 5 {
		return false
	}
	for _, c := range v {
		if !(c >= '0' && c <= '9' || c >= 'A' && c <= 'Z') {
			return false
		}
	}
	return true
}

// looksLikeSQLSTATE is the heuristic for laundered literals: the shape
// must hold and at least one digit must appear (ruling out plain
// five-letter words like "DEBUG" used as tags).
func looksLikeSQLSTATE(v string) bool {
	if !wellFormed(v) {
		return false
	}
	for _, c := range v {
		if c >= '0' && c <= '9' {
			return true
		}
	}
	return false
}
