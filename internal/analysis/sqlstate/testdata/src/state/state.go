// Package state is the sqlstate fixture: inline SQLSTATE literals and
// out-of-vocabulary constants must flag; the declared wire constants
// and ordinary strings must not.
package state

import (
	"fmt"

	"vecstudy/internal/wire"
)

// localCode is an out-of-vocabulary constant: well-formed, but declared
// in the wrong package.
const localCode = "53999"

// --- violations -------------------------------------------------------------

func inlineEncode() []byte {
	return wire.EncodeError("XX000", "boom") // want "wire.EncodeError called with inline SQLSTATE literal"
}

func inlineStructKeyed() error {
	return &wire.Error{Code: "57014", Message: "canceled"} // want "wire.Error.Code called with inline SQLSTATE literal"
}

func inlineStructPositional() error {
	return &wire.Error{"XX000", "boom"} // want "wire.Error.Code called with inline SQLSTATE literal"
}

func foreignConst() error {
	return &wire.Error{Code: localCode, Message: "full"} // want "declare it in internal/wire"
}

// laundered is the helper-indirection shape: the literal never reaches
// wire directly, but it is still an inline SQLSTATE.
func laundered(reject func(code, msg string)) {
	reject("53300", "too many connections") // want "inline SQLSTATE literal"
}

// --- must not flag ----------------------------------------------------------

func constEncode() []byte {
	return wire.EncodeError(wire.CodeError, "boom")
}

func constStruct() error {
	return &wire.Error{Code: wire.CodeTimeout, Message: "canceled"}
}

func passThrough(code string) []byte {
	// Parameters are accepted: the literal ban applies at the point the
	// code value is born, not where it flows.
	return wire.EncodeError(code, "relayed")
}

func ordinaryStrings() {
	fmt.Println("DEBUG", "abcde", "no-code-here", "1234", "123456")
}
