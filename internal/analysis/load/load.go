// Package load type-checks Go packages for the vetvec analyzers without
// depending on golang.org/x/tools. Dependency type information comes
// from compiler export data: one `go list -export -deps -json` run
// resolves every import (standard library and module-internal alike) to
// an export file in the build cache, and go/importer's gc reader loads
// those on demand. Only the packages under analysis are parsed and
// type-checked from source, so a whole-tree run stays fast and works
// with no network and no GOPATH.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader resolves imports via export data rooted at one module.
type Loader struct {
	ModRoot string

	fset *token.FileSet
	imp  types.ImporterFrom

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
}

// NewLoader builds a loader for the module containing dir. It runs
// `go list -export -deps -json ./...` once to map every dependency to
// its export data.
func NewLoader(dir string) (*Loader, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{ModRoot: root, fset: token.NewFileSet(), exports: make(map[string]string)}
	pkgs, err := l.goList("-export", "-deps", "./...")
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goList runs `go list -json args...` in the module root.
func (l *Loader) goList(args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = l.ModRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup feeds export data to the gc importer, filling cache misses
// with a targeted `go list -export` run.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList("-export", "--", path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %v", path, err)
		}
		for _, p := range pkgs {
			if p.ImportPath == path && p.Export != "" {
				file = p.Export
			}
		}
		if file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// Patterns loads the packages matched by go-list patterns (e.g. ./...),
// sorted by import path. Test files are excluded: the analyzers guard
// production invariants, and fixtures with deliberate violations live
// in testdata where go list never looks.
//
// Packages are type-checked in parallel. The shared FileSet and the
// export-data map are safe for concurrent use, but the gc importer's
// internal package cache is not, so each worker gets its own importer
// instance (they still share the export lookup, so each export file is
// still located only once).
func (l *Loader) Patterns(patterns ...string) ([]*Package, error) {
	pkgs, err := l.goList(append([]string{"--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var todo []listedPkg
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		todo = append(todo, p)
	}

	out := make([]*Package, len(todo))
	errs := make([]error, len(todo))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			imp := importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
			for i := range next {
				p := todo[i]
				files := make([]string, len(p.GoFiles))
				for j, f := range p.GoFiles {
					files[j] = filepath.Join(p.Dir, f)
				}
				out[i], errs[i] = l.checkWith(imp, p.ImportPath, p.Dir, files)
			}
		}()
	}
	for i := range todo {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Dir loads one directory of Go files as a package with a synthetic
// import path — the entry point for analysistest fixtures, which live
// under testdata and are invisible to go list.
func (l *Loader) Dir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package from source with the
// loader's shared importer (single-threaded entry points only).
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	return l.checkWith(l.imp, importPath, dir, filenames)
}

// checkWith parses and type-checks one package from source using the
// given importer, so parallel callers can keep importer state private.
func (l *Loader) checkWith(imp types.ImporterFrom, importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
