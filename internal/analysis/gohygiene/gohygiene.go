// Package gohygiene bans fire-and-forget goroutines on serving paths.
//
// The serving layers (internal/batch, internal/server,
// internal/cluster, internal/client) shut down by closing listeners,
// draining
// WaitGroups, and closing stop channels; a goroutine spawned with no
// tie to any of those outlives Close, races the test harness, and — on
// the benchmark paths — keeps consuming CPU after the measurement
// window ends, quietly skewing QPS numbers. Every `go` statement in
// those packages must therefore be observable: registered with a
// WaitGroup, or parameterized by a context or channel through which
// shutdown reaches it.
//
// A `go` statement passes if any of these holds:
//
//   - a WaitGroup.Add call appears in the few statements directly
//     before it in the same block (the canonical wg.Add(1); go func()
//     { defer wg.Done() } shape);
//   - the spawned function body uses a WaitGroup, performs any channel
//     operation (send, receive, close, select, range over a channel),
//     or references a context.Context — all of which give the parent a
//     handle on its lifetime;
//   - a context.Context or channel is passed to the spawned call as an
//     argument (go worker(ctx, jobs)).
//
// Anything else is flagged.
package gohygiene

import (
	"go/ast"
	"go/types"

	"vecstudy/internal/analysis"
)

// Analyzer is the goroutine-hygiene checker.
var Analyzer = &analysis.Analyzer{
	Name: "gohygiene",
	Doc:  "goroutines in internal/batch, internal/server, internal/cluster, internal/client must be WaitGroup-registered or shutdown-aware (context/channel)",
	Run:  run,
}

// scopedPkgs are the serving-path packages the invariant applies to.
var scopedPkgs = []string{
	"vecstudy/internal/batch",
	"vecstudy/internal/server",
	"vecstudy/internal/cluster",
	"vecstudy/internal/client",
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		// Walk blocks so each GoStmt is seen with its preceding siblings.
		ast.Inspect(file, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, stmt := range stmts {
				gostmt, ok := stmt.(*ast.GoStmt)
				if !ok {
					continue
				}
				if !hygienic(pass, gostmt, stmts[:i]) {
					pass.Reportf(gostmt.Pos(),
						"fire-and-forget goroutine on a serving path: register it with a WaitGroup or pass it a context/shutdown channel")
				}
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, p := range scopedPkgs {
		if path == p {
			return true
		}
	}
	return false
}

// precedingWindow is how many statements before the go statement may
// hold the wg.Add call (allows an intervening counter bump or log line).
const precedingWindow = 3

// hygienic decides whether one go statement satisfies the invariant.
func hygienic(pass *analysis.Pass, st *ast.GoStmt, preceding []ast.Stmt) bool {
	// Shape 1: wg.Add(n) shortly before the go statement.
	start := len(preceding) - precedingWindow
	if start < 0 {
		start = 0
	}
	for _, prev := range preceding[start:] {
		if callsWaitGroupAdd(pass.Info, prev) {
			return true
		}
	}

	// Shape 2/3: the spawned function is lifecycle-aware.
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		if bodyIsLifecycleAware(pass.Info, lit.Body) {
			return true
		}
	}

	// Shape 3 (named call): a context or channel flows in as an argument.
	for _, arg := range st.Call.Args {
		if isLifecycleCarrier(pass.Info, arg) {
			return true
		}
	}
	// A method call on a receiver is opaque; be strict and flag it
	// unless an argument carries lifecycle.
	return false
}

// callsWaitGroupAdd reports whether stmt contains wg.Add(...) on a
// sync.WaitGroup.
func callsWaitGroupAdd(info *types.Info, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if analysis.IsMethod(info, call, "sync", "WaitGroup", "Add") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// bodyIsLifecycleAware scans a goroutine body for WaitGroup use, any
// channel operation, or a context reference.
func bodyIsLifecycleAware(info *types.Info, body *ast.BlockStmt) bool {
	aware := false
	ast.Inspect(body, func(n ast.Node) bool {
		if aware {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt:
			aware = true
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				aware = true
			}
		case *ast.SelectStmt:
			aware = true
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					aware = true
				}
			}
		case *ast.CallExpr:
			if analysis.IsMethod(info, node, "sync", "WaitGroup", "Done") ||
				analysis.IsMethod(info, node, "sync", "WaitGroup", "Add") ||
				analysis.IsMethod(info, node, "sync", "WaitGroup", "Wait") {
				aware = true
			}
			// close(ch) of a channel is a shutdown signal.
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "close" && len(node.Args) == 1 {
				if isLifecycleCarrier(info, node.Args[0]) {
					aware = true
				}
			}
		case *ast.Ident:
			if isLifecycleCarrierType(typeOf(info, node)) {
				aware = true
			}
		}
		return !aware
	})
	return aware
}

// isLifecycleCarrier reports whether expr is a context.Context or a
// channel value.
func isLifecycleCarrier(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	return isLifecycleCarrierType(tv.Type)
}

func isLifecycleCarrierType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	return analysis.NamedType(t, "context", "Context")
}

func typeOf(info *types.Info, id *ast.Ident) types.Type {
	if obj, ok := info.Uses[id]; ok {
		return obj.Type()
	}
	return nil
}
