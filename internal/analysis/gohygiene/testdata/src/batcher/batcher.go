// Package batcher is the gohygiene fixture for the query-coalescer
// shapes, type-checked under the internal/batch import path. The real
// coalescer spawns no goroutine at all — its deferred flush rides
// time.AfterFunc and delivery goes through buffered channels — so the
// hygienic shapes here are what any future background work in that
// package must look like, and the violation is the shortcut it must
// not take.
package batcher

import (
	"sync"
	"time"
)

type group struct {
	members []chan int
}

func (g *group) execute() {}

// --- violations -------------------------------------------------------------

// flushAsync is the tempting shortcut: detach the group and kick its
// execution loose. Nothing observes the goroutine; a server draining
// mid-window would leak it.
func flushAsync(g *group) {
	go g.execute() // want "fire-and-forget goroutine on a serving path"
}

// --- must not flag ----------------------------------------------------------

// flushByTimer is the coalescer's actual idiom: time.AfterFunc is a
// plain call, not a go statement, and the timer is Stop-able.
func flushByTimer(g *group, window time.Duration) *time.Timer {
	return time.AfterFunc(window, g.execute)
}

// deliver fans outcomes out through buffered channels; the channel send
// ties the goroutine's lifetime to its receivers.
func deliver(g *group, v int) {
	go func() {
		for _, ch := range g.members {
			ch <- v
		}
	}()
}

// flushTracked registers the flush with the server's drain WaitGroup.
func flushTracked(g *group, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.execute()
	}()
}
