// Package serve is the gohygiene fixture, type-checked under a serving
// import path: goroutines with no lifecycle tie must flag; WaitGroup,
// channel, and context shapes must not.
package serve

import (
	"context"
	"sync"
)

func doWork()                    {}
func worker(ctx context.Context) { <-ctx.Done() }
func pump(jobs chan int)         { <-jobs }
func handle(c *conn)             {}

type conn struct{}

// --- violations -------------------------------------------------------------

func fireAndForget() {
	go doWork() // want "fire-and-forget goroutine on a serving path"
}

func fireAndForgetClosure() {
	go func() { // want "fire-and-forget goroutine on a serving path"
		doWork()
	}()
}

func fireAndForgetMethodArg(c *conn) {
	go handle(c) // want "fire-and-forget goroutine on a serving path"
}

// --- must not flag ----------------------------------------------------------

func waitGroupRegistered(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		doWork()
	}()
}

func waitGroupWindow(wg *sync.WaitGroup, n *int) {
	wg.Add(1)
	*n++ // an intervening bookkeeping statement is tolerated
	go func() {
		defer wg.Done()
		doWork()
	}()
}

func shutdownChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			}
		}
	}()
}

func contextAware(ctx context.Context) {
	go worker(ctx)
}

func channelArg(jobs chan int) {
	go pump(jobs)
}

func contextInClosure(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
