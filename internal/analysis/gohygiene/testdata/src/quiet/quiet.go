// Package quiet holds a bare goroutine spawn that would flag inside a
// serving package; loaded under a non-serving import path it must not.
package quiet

func compute() {}

func backgroundCompute() {
	go compute() // fine here: not a serving path
}
