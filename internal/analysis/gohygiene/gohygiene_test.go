package gohygiene_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/gohygiene"
)

func TestGoHygiene(t *testing.T) {
	// The fixture type-checks under a serving import path; the analyzer
	// is scoped to internal/server, internal/cluster, internal/client.
	analysistest.RunPath(t, ".", gohygiene.Analyzer, "serve", "vecstudy/internal/server")
}

// TestOutOfScope re-runs the same fixture under a non-serving import
// path: nothing may flag, demonstrating the scope gate.
func TestOutOfScope(t *testing.T) {
	analysistest.RunPath(t, ".", gohygiene.Analyzer, "quiet", "vecstudy/internal/pg/other")
}

// TestBatcherScope type-checks the coalescer-shaped fixture under the
// internal/batch import path, which joined the scoped packages with the
// batched-execution subsystem.
func TestBatcherScope(t *testing.T) {
	analysistest.RunPath(t, ".", gohygiene.Analyzer, "batcher", "vecstudy/internal/batch")
}
