package lockscope_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, ".", lockscope.Analyzer, "lock")
}
