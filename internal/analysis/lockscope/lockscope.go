// Package lockscope checks that no blocking call happens while a mutex
// is held.
//
// This is the RC#3 invariant: the paper attributes PostgreSQL's poor
// parallel-scan scaling to contention on buffer-partition locks, and
// the reproduction only measures lock-hold cost honestly if critical
// sections stay short and CPU-bound. A partition mutex held across a
// disk read, a channel rendezvous, or a network round-trip turns a
// nanosecond-scale critical section into a millisecond-scale one and
// serializes every backend hashing to that partition.
//
// The analyzer tracks held mutexes intraprocedurally — sync.Mutex /
// sync.RWMutex Lock/RLock acquires (plus the buffer partition's lock()
// helper), Unlock/RUnlock releases, defer-Unlock held-to-end — and
// flags, while any mutex is held:
//
//   - buffer.Pool Pin/NewPage (may evict: I/O);
//   - storage.PageStore ReadBlock/WriteBlock/Extend;
//   - wire frame I/O and client Conn/Pool network calls;
//   - net dialing and net.Conn Read/Write;
//   - channel send/receive (select with a default case is non-blocking
//     and exempt);
//   - time.Sleep and sync.WaitGroup.Wait.
//
// Sites where holding the lock across I/O is the design — the buffer
// manager deliberately trades concurrency for the simplicity of not
// having PostgreSQL's IO_IN_PROGRESS protocol — carry a
// //vetvec:locked-io directive with a justification comment.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"vecstudy/internal/analysis"
)

// Directive suppresses a locked-blocking-call report on its line.
const Directive = "locked-io"

// Analyzer is the lockscope checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking call (buffer pin, page I/O, channel op, network I/O) while a mutex is held",
	Run:  run,
}

const (
	poolPath    = "vecstudy/internal/pg/buffer"
	storagePath = "vecstudy/internal/pg/storage"
	wirePath    = "vecstudy/internal/wire"
	clientPath  = "vecstudy/internal/client"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// heldSet maps a mutex key (the printed receiver expression) to the
// position where it was acquired.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type walker struct {
	pass *analysis.Pass
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{pass: pass}
	w.walkStmts(body.List, make(heldSet))
}

// walkStmts threads the held set through a statement list and returns
// the outgoing set.
func (w *walker) walkStmts(stmts []ast.Stmt, h heldSet) heldSet {
	for _, stmt := range stmts {
		h = w.walkStmt(stmt, h)
	}
	return h
}

func (w *walker) walkStmt(stmt ast.Stmt, h heldSet) heldSet {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, acquired := lockOp(w.pass.Info, call); acquired {
				w.checkExpr(st.X, h) // args evaluated before the lock lands
				h[key] = call.Pos()
				return h
			} else if key != "" {
				delete(h, key)
				return h
			}
		}
		w.checkExpr(st.X, h)

	case *ast.DeferStmt:
		if key, acquired := lockOp(w.pass.Info, st.Call); key != "" && !acquired {
			// defer mu.Unlock(): released only at function end — the
			// rest of the body runs with the lock held, so keep it.
			return h
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs after the body; analyze it with an
			// empty held set, and apply any unlocks it performs? No —
			// unlocks inside run too late to shorten the critical
			// section. Analyze the closure body standalone only.
			_ = lit
			return h
		}
		w.checkExpr(st.Call, h)

	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkExpr(rhs, h)
		}
		for _, lhs := range st.Lhs {
			w.checkExpr(lhs, h)
		}

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkExpr(r, h)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			h = w.walkStmt(st.Init, h)
		}
		w.checkExpr(st.Cond, h)
		thenOut := w.walkStmts(st.Body.List, h.clone())
		elseOut := h.clone()
		if st.Else != nil {
			elseOut = w.walkStmt(st.Else, elseOut)
		}
		if terminates(st.Body) {
			return elseOut
		}
		if st.Else != nil && blockTerminates(st.Else) {
			return thenOut
		}
		return intersect(thenOut, elseOut)

	case *ast.BlockStmt:
		return w.walkStmts(st.List, h)

	case *ast.ForStmt:
		if st.Init != nil {
			h = w.walkStmt(st.Init, h)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, h)
		}
		out := w.walkStmts(st.Body.List, h.clone())
		return intersect(h, out)

	case *ast.RangeStmt:
		w.checkRangeOver(st, h)
		out := w.walkStmts(st.Body.List, h.clone())
		return intersect(h, out)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				h = w.walkStmt(sw.Init, h)
			}
			if sw.Tag != nil {
				w.checkExpr(sw.Tag, h)
			}
			body = sw.Body
		} else {
			body = st.(*ast.TypeSwitchStmt).Body
		}
		out := h.clone()
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				caseOut := w.walkStmts(cc.Body, h.clone())
				out = intersect(out, caseOut)
			}
		}
		return out

	case *ast.SelectStmt:
		w.checkSelect(st, h)
		out := h.clone()
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				caseOut := w.walkStmts(cc.Body, h.clone())
				out = intersect(out, caseOut)
			}
		}
		return out

	case *ast.SendStmt:
		if len(h) > 0 && !w.pass.Suppressed(st.Pos(), Directive) {
			w.report(st.Pos(), "channel send", h)
		}
		w.checkExpr(st.Value, h)

	case *ast.GoStmt:
		// The goroutine body runs concurrently without the lock; only
		// argument evaluation happens here.
		for _, a := range st.Call.Args {
			w.checkExpr(a, h)
		}

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, h)
	}
	return h
}

// checkSelect flags blocking selects; a select with a default case
// never blocks.
func (w *walker) checkSelect(st *ast.SelectStmt, h heldSet) {
	if len(h) == 0 || w.pass.Suppressed(st.Pos(), Directive) {
		return
	}
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return // has default: non-blocking
		}
	}
	w.report(st.Pos(), "blocking select", h)
}

// checkRangeOver flags ranging over a channel while locked.
func (w *walker) checkRangeOver(st *ast.RangeStmt, h heldSet) {
	w.checkExpr(st.X, h)
	if len(h) == 0 || w.pass.Suppressed(st.Pos(), Directive) {
		return
	}
	if tv, ok := w.pass.Info.Types[st.X]; ok {
		if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
			w.report(st.Pos(), "channel receive (range)", h)
		}
	}
}

// checkExpr scans an expression for blocking operations and nested
// lock effects, reporting any found while h is non-empty. FuncLit
// bodies are skipped — they execute later, without the lock (and are
// analyzed standalone by run).
func (w *walker) checkExpr(expr ast.Expr, h heldSet) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && len(h) > 0 && !w.pass.Suppressed(node.Pos(), Directive) {
				w.report(node.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if len(h) == 0 {
				return true
			}
			if what := blockingCall(w.pass.Info, node); what != "" && !w.pass.Suppressed(node.Pos(), Directive) {
				w.report(node.Pos(), what, h)
			}
		}
		return true
	})
}

func (w *walker) report(pos token.Pos, what string, h heldSet) {
	// Name one held mutex for the message; pick deterministically.
	var key string
	for k := range h {
		if key == "" || k < key {
			key = k
		}
	}
	w.pass.Reportf(pos, "%s while mutex %s is held (acquired at %s)", what, key, w.pass.Fset.Position(h[key]))
}

// intersect keeps only mutexes held on both joining paths — the
// conservative merge that avoids false "held" state after a branch
// that unlocked.
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// --- recognizers ------------------------------------------------------------

// lockOp classifies call as a lock acquire (key, true), release
// (key, false), or neither ("", false).
func lockOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if !isMutexRecv(info, sel) {
			return "", false
		}
		return types.ExprString(sel.X), name == "Lock" || name == "RLock"
	case "lock":
		// The buffer partition's TryLock-then-Lock helper.
		if analysis.IsMethod(info, call, poolPath, "partition", "lock") {
			return types.ExprString(sel.X) + ".mu", true
		}
	}
	return "", false
}

// isMutexRecv reports whether sel selects a method on sync.Mutex or
// sync.RWMutex (directly or through an embedded field).
func isMutexRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		// A named type embedding sync.Mutex: the selection's receiver is
		// still the outer type; check the method's true receiver.
		if fn, ok := selection.Obj().(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return isMutexType(sig.Recv().Type())
			}
		}
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// blockingCall names the blocking operation call performs, or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	switch {
	case analysis.IsMethod(info, call, poolPath, "Pool", "Pin"):
		return "buffer.Pool.Pin (may evict: page I/O)"
	case analysis.IsMethod(info, call, poolPath, "Pool", "NewPage"):
		return "buffer.Pool.NewPage (may extend: page I/O)"
	case analysis.IsMethod(info, call, storagePath, "PageStore", "ReadBlock"),
		analysis.IsMethod(info, call, storagePath, "PageStore", "WriteBlock"),
		analysis.IsMethod(info, call, storagePath, "PageStore", "Extend"):
		return "storage.PageStore I/O"
	case analysis.IsPkgFunc(info, call, wirePath, "ReadFrame"),
		analysis.IsPkgFunc(info, call, wirePath, "WriteFrame"),
		analysis.IsPkgFunc(info, call, wirePath, "ReadResult"),
		analysis.IsPkgFunc(info, call, wirePath, "WriteResult"):
		return "wire-protocol I/O"
	case analysis.IsMethod(info, call, clientPath, "Conn", "Execute"),
		analysis.IsMethod(info, call, clientPath, "Conn", "Ping"),
		analysis.IsMethod(info, call, clientPath, "Pool", "Get"):
		return "client network round-trip"
	case analysis.IsPkgFunc(info, call, clientPath, "Dial"),
		analysis.IsPkgFunc(info, call, clientPath, "DialTimeout"),
		analysis.IsPkgFunc(info, call, "net", "Dial"),
		analysis.IsPkgFunc(info, call, "net", "DialTimeout"):
		return "network dial"
	case analysis.IsMethod(info, call, "net", "Conn", "Read"),
		analysis.IsMethod(info, call, "net", "Conn", "Write"):
		return "net.Conn I/O"
	case analysis.IsPkgFunc(info, call, "time", "Sleep"):
		return "time.Sleep"
	case analysis.IsMethod(info, call, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait"
	}
	return ""
}

// terminates reports whether a block always exits the function.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func blockTerminates(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminates(b)
	}
	return stmtTerminates(s)
}

func stmtTerminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(st)
	}
	return false
}
