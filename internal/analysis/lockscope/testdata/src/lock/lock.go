// Package lock is the lockscope fixture: blocking operations under a
// held mutex must flag; lock-free or properly-scoped code must not.
package lock

import (
	"sync"
	"time"

	"vecstudy/internal/pg/buffer"
)

// --- violations -------------------------------------------------------------

// sleepUnderLock is the textbook critical-section inflation.
func sleepUnderLock(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mutex mu is held"
	mu.Unlock()
}

// pinUnderLock holds a mutex across a buffer pin (page I/O on a miss).
func pinUnderLock(mu *sync.Mutex, p *buffer.Pool, rel buffer.RelID) error {
	mu.Lock()
	defer mu.Unlock()
	buf, err := p.Pin(rel, 0) // want "buffer.Pool.Pin .* while mutex mu is held"
	if err != nil {
		return err
	}
	buf.Release()
	return nil
}

// sendUnderLock rendezvouses on a channel while locked.
func sendUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "channel send while mutex mu is held"
	mu.Unlock()
}

// recvUnderLock blocks on a receive while locked.
func recvUnderLock(mu *sync.RWMutex, ch chan int) int {
	mu.RLock()
	v := <-ch // want "channel receive while mutex mu is held"
	mu.RUnlock()
	return v
}

// selectUnderLock has no default case, so it blocks.
func selectUnderLock(mu *sync.Mutex, a, b chan int) {
	mu.Lock()
	select { // want "blocking select while mutex mu is held"
	case <-a:
	case <-b:
	}
	mu.Unlock()
}

// embedded mutexes count too.
type guarded struct {
	sync.Mutex
	n int
}

func embeddedUnderLock(g *guarded) {
	g.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mutex g is held"
	g.n++
	g.Unlock()
}

// waitUnderLock holds the lock across a WaitGroup drain.
func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want "sync.WaitGroup.Wait while mutex mu is held"
}

// --- must not flag ----------------------------------------------------------

// unlockFirst drops the lock before blocking.
func unlockFirst(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

// shortCritical keeps the critical section CPU-only.
func shortCritical(mu *sync.Mutex, m map[int]int) int {
	mu.Lock()
	defer mu.Unlock()
	return m[0]
}

// nonBlockingSelect has a default case and never parks.
func nonBlockingSelect(mu *sync.Mutex, ch chan int) bool {
	mu.Lock()
	defer mu.Unlock()
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// branchUnlock releases on one path and blocks only after the merge
// where neither path still holds the lock.
func branchUnlock(mu *sync.Mutex, ch chan int, fast bool) {
	mu.Lock()
	if fast {
		mu.Unlock()
	} else {
		mu.Unlock()
	}
	ch <- 1
}

// spawned work does not inherit the caller's lock.
func goroutineBody(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// suppressed is the documented escape hatch: holding the lock across
// this pin is the design, stated in the line above the call.
func suppressed(mu *sync.Mutex, p *buffer.Pool, rel buffer.RelID) error {
	mu.Lock()
	defer mu.Unlock()
	//vetvec:locked-io
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	buf.Release()
	return nil
}
