// summary.go grows the framework from per-function AST walking into an
// interprocedural engine: BuildSummaries constructs an intra-module call
// graph over every loaded package and computes, per function, a summary
// of how it treats pinned buffers and pinned-page memory:
//
//   - for each parameter of type *buffer.Buf: whether the function
//     releases the pin on every path (BufReleases), merely borrows it
//     (BufBorrows), or stores/returns/forwards it so the pin's fate is
//     out of the caller's hands (BufEscapes);
//   - for each result: which parameters' memory it may alias, and which
//     *buffer.Buf parameters' pinned frame it is derived from (a slice
//     of buf.Page(), directly or through further helper calls);
//   - whether the function returns a *Buf that carries a live pin
//     (TransfersPin), the shape //vetvec:ownership-transfer declares.
//
// Summaries are computed to a fixpoint: helpers that delegate to other
// helpers inherit their behaviour transitively. Callees outside the
// loaded set (standard library, interface methods, function values) get
// no summary and are treated conservatively by consumers — exactly the
// per-function behaviour the analyzers had before this layer existed,
// so the interprocedural results only ever sharpen, never loosen, what
// the analyzers may assume.
//
// Identity is by (*types.Func).FullName(): packages under analysis are
// type-checked from source while their dependencies come from export
// data, so the same function is represented by distinct types.Func
// objects in different passes; the full name unifies them.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufPoolPath is the package declaring the pinning API whose ownership
// discipline the summaries track.
const BufPoolPath = "vecstudy/internal/pg/buffer"

// BufMode classifies what a function does with a *buffer.Buf parameter.
type BufMode uint8

const (
	// BufUnknown: not a *Buf parameter, or no summary available.
	BufUnknown BufMode = iota
	// BufBorrows: the function uses the pin (Page/Block/MarkDirty,
	// borrow-mode helpers) but never releases or stores it. The caller
	// keeps the release obligation.
	BufBorrows
	// BufReleases: the function releases the pin on every control-flow
	// path (directly, via defer, or through a releasing helper). The
	// caller's obligation is discharged by the call.
	BufReleases
	// BufEscapes: the function stores, sends, returns, or forwards the
	// buffer somewhere the analysis cannot follow, or releases it on
	// only some paths. Callers must treat the call as an ownership
	// transfer, as they did before summaries existed.
	BufEscapes
)

func (m BufMode) String() string {
	switch m {
	case BufBorrows:
		return "borrows"
	case BufReleases:
		return "releases"
	case BufEscapes:
		return "escapes"
	default:
		return "unknown"
	}
}

// ResultAlias records, for one function result, which parameters
// (receiver-first indexing) its memory may alias.
type ResultAlias struct {
	// Aliases is a bitmask over receiver-first parameter indices whose
	// memory (slice backing, pointee) the result may alias.
	Aliases uint64
	// PageOf is a bitmask over receiver-first parameter indices of
	// *buffer.Buf parameters whose pinned frame the result is derived
	// from (buf.Page() and everything reachable from it).
	PageOf uint64
}

// FuncSummary is the interprocedural summary of one function.
type FuncSummary struct {
	ID string

	// Bufs holds one BufMode per parameter, receiver first. Entries for
	// parameters that are not *buffer.Buf stay BufUnknown.
	Bufs []BufMode

	// Results holds one ResultAlias per declared result.
	Results []ResultAlias

	// TransfersPin reports that the function returns a *buffer.Buf
	// carrying a live pin (acquired by Pin/NewPage or another
	// transferring function). Callers own the release obligation.
	TransfersPin bool

	// TransferDirective reports the //vetvec:ownership-transfer
	// directive on the declaration.
	TransferDirective bool

	// HasBufResult reports that some declared result type is *buffer.Buf.
	HasBufResult bool
}

// Summaries is the module-wide summary table, keyed by
// (*types.Func).FullName().
type Summaries struct {
	funcs map[string]*FuncSummary
}

// Lookup returns the summary for fn, or nil.
func (s *Summaries) Lookup(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.funcs[fn.FullName()]
}

// Callee resolves call to its static callee's summary, or nil for
// dynamic calls (function values, interface methods) and functions
// outside the summarized set.
func (s *Summaries) Callee(info *types.Info, call *ast.CallExpr) *FuncSummary {
	return s.Lookup(StaticCallee(info, call))
}

// StaticCallee resolves a call expression to the concrete *types.Func it
// invokes, or nil for dynamic calls, builtins, and conversions. Interface
// method calls resolve to the interface method object, which never has a
// body summary, so they stay conservatively unknown.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		if sel, ok := info.Selections[fun]; ok {
			// Concrete method: fine. Interface method: no body anywhere.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CallArgs returns the call's argument expressions receiver-first: for a
// method call x.M(a, b) it returns [x, a, b], matching the receiver-first
// parameter indexing of FuncSummary.
func CallArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			out := make([]ast.Expr, 0, len(call.Args)+1)
			out = append(out, sel.X)
			return append(out, call.Args...)
		}
	}
	return call.Args
}

// SummaryInput is one type-checked package fed to BuildSummaries.
type SummaryInput struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// declSite is one function declaration with its type-checking context.
type declSite struct {
	decl *ast.FuncDecl
	info *types.Info
	fn   *types.Func
	// directive: //vetvec:ownership-transfer on the declaration.
	directive bool
	// params receiver-first.
	params []*types.Var
}

// BuildSummaries computes the module summary table over the given
// packages, iterating the per-function analysis to a fixpoint so that
// helper chains of any depth are summarized transitively.
func BuildSummaries(inputs []SummaryInput) *Summaries {
	s := &Summaries{funcs: make(map[string]*FuncSummary)}
	var sites []*declSite
	for _, in := range inputs {
		dirs := directiveLines(in.Fset, in.Files)
		for _, file := range in.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := in.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				site := &declSite{
					decl:      fd,
					info:      in.Info,
					fn:        fn,
					directive: hasTransferDirective(in.Fset, fd, dirs),
					params:    receiverFirstParams(fn),
				}
				sites = append(sites, site)
				sig := fn.Type().(*types.Signature)
				sum := &FuncSummary{
					ID:                fn.FullName(),
					Bufs:              make([]BufMode, len(site.params)),
					Results:           make([]ResultAlias, sig.Results().Len()),
					TransferDirective: site.directive,
				}
				for i := 0; i < sig.Results().Len(); i++ {
					if isBufPtr(sig.Results().At(i).Type()) {
						sum.HasBufResult = true
					}
				}
				s.funcs[sum.ID] = sum
			}
		}
	}
	// Fixpoint: every transition is monotone (modes only grow toward
	// BufEscapes, alias masks only gain bits), so this terminates; the
	// round cap is a backstop against analysis bugs, not a tuning knob.
	for round := 0; round < 24; round++ {
		changed := false
		for _, site := range sites {
			if summarizeFunc(s, site) {
				changed = true
			}
		}
		if !changed {
			return s
		}
	}
	return s
}

// receiverFirstParams lists a function's parameters with the method
// receiver, if any, at index 0.
func receiverFirstParams(fn *types.Func) []*types.Var {
	sig := fn.Type().(*types.Signature)
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// directiveLines indexes //vetvec: directive comments by (file, line).
func directiveLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, DirectivePrefix+"ownership-transfer") {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// hasTransferDirective reports //vetvec:ownership-transfer in the doc
// comment, on the declaration line, or on the line directly above it.
func hasTransferDirective(fset *token.FileSet, fd *ast.FuncDecl, dirs map[string]map[int]bool) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, DirectivePrefix+"ownership-transfer") {
				return true
			}
		}
	}
	pos := fset.Position(fd.Pos())
	byLine := dirs[pos.Filename]
	return byLine != nil && (byLine[pos.Line] || byLine[pos.Line-1])
}

// isBufPtr reports whether t is *buffer.Buf.
func isBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return NamedType(ptr.Elem(), BufPoolPath, "Buf")
}

// summarizeFunc recomputes one function's summary against the current
// table, reporting whether it changed.
func summarizeFunc(s *Summaries, site *declSite) bool {
	old := s.funcs[site.fn.FullName()]
	fresh := &FuncSummary{
		ID:                old.ID,
		Bufs:              make([]BufMode, len(site.params)),
		Results:           make([]ResultAlias, len(old.Results)),
		TransferDirective: old.TransferDirective,
		HasBufResult:      old.HasBufResult,
	}
	for i, p := range site.params {
		if isBufPtr(p.Type()) {
			fresh.Bufs[i] = classifyBufParam(s, site, p)
		}
	}
	computeResultAliases(s, site, fresh)
	fresh.TransfersPin = transfersPin(s, site)
	if summariesEqual(old, fresh) {
		return false
	}
	*old = *fresh
	return true
}

func summariesEqual(a, b *FuncSummary) bool {
	if a.TransfersPin != b.TransfersPin || len(a.Bufs) != len(b.Bufs) || len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Bufs {
		if a.Bufs[i] != b.Bufs[i] {
			return false
		}
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	return true
}

// --- *Buf parameter classification ------------------------------------------

// bufUse classifies one syntactic use of a *Buf parameter, ordered by
// conservatism.
type bufUse uint8

const (
	useBorrow bufUse = iota
	useRelease
	useEscape
)

// bufBorrowMethods are *Buf methods that use the pin without consuming it.
var bufBorrowMethods = map[string]bool{
	"Page": true, "Block": true, "MarkDirty": true,
}

// classifyBufParam decides the BufMode of parameter v in site's body.
func classifyBufParam(s *Summaries, site *declSite, v *types.Var) BufMode {
	c := &bufClassifier{s: s, site: site, v: v}
	c.scanStmts(site.decl.Body.List, false)
	if c.escaped {
		return BufEscapes
	}
	if !c.released {
		return BufBorrows
	}
	// Release-uses exist and nothing escapes: the mode is Releases only
	// if the release happens on every path — a partial release must stay
	// conservative, or callers would be told to release again.
	released, exitsOK := mustRelease(c, site.decl.Body.List, false)
	_ = released
	if exitsOK {
		return BufReleases
	}
	return BufEscapes
}

type bufClassifier struct {
	s    *Summaries
	site *declSite
	v    *types.Var

	released bool
	escaped  bool
}

// isV reports whether expr names the tracked parameter.
func (c *bufClassifier) isV(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	return c.site.info.Uses[id] == c.v
}

// mentionsV reports whether the tracked parameter appears anywhere in n.
func (c *bufClassifier) mentionsV(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.site.info.Uses[id] == c.v {
			found = true
		}
		return !found
	})
	return found
}

// scanStmts records every use of the parameter; inDefer marks statements
// that run at function exit.
func (c *bufClassifier) scanStmts(stmts []ast.Stmt, inDefer bool) {
	for _, st := range stmts {
		c.scanStmt(st, inDefer)
	}
}

func (c *bufClassifier) scanStmt(stmt ast.Stmt, inDefer bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		c.scanExpr(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if c.isV(rhs) {
				c.escaped = true // stored somewhere: out of our hands
				continue
			}
			c.scanExpr(rhs)
		}
		for _, lhs := range st.Lhs {
			if c.isV(lhs) {
				c.escaped = true // reassigned: tracking ends
				continue
			}
			c.scanExpr(lhs)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if c.isV(r) {
				c.escaped = true // pin handed to the caller
				continue
			}
			c.scanExpr(r)
		}
	case *ast.DeferStmt:
		c.scanCall(st.Call)
	case *ast.GoStmt:
		if c.mentionsV(st.Call) {
			c.escaped = true
		}
	case *ast.SendStmt:
		if c.mentionsV(st.Value) {
			c.escaped = true
		}
		c.scanExpr(st.Chan)
	case *ast.IfStmt:
		if st.Init != nil {
			c.scanStmt(st.Init, inDefer)
		}
		c.scanExpr(st.Cond)
		c.scanStmts(st.Body.List, inDefer)
		if st.Else != nil {
			c.scanStmt(st.Else, inDefer)
		}
	case *ast.BlockStmt:
		c.scanStmts(st.List, inDefer)
	case *ast.ForStmt:
		if st.Init != nil {
			c.scanStmt(st.Init, inDefer)
		}
		if st.Cond != nil {
			c.scanExpr(st.Cond)
		}
		if st.Post != nil {
			c.scanStmt(st.Post, inDefer)
		}
		c.scanStmts(st.Body.List, inDefer)
	case *ast.RangeStmt:
		c.scanExpr(st.X)
		c.scanStmts(st.Body.List, inDefer)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.scanStmt(st.Init, inDefer)
		}
		if st.Tag != nil {
			c.scanExpr(st.Tag)
		}
		c.scanStmts(st.Body.List, inDefer)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if inner, ok := n.(ast.Stmt); ok && inner != stmt {
				c.scanStmt(inner, inDefer)
				return false
			}
			return true
		})
	case *ast.CaseClause:
		for _, e := range st.List {
			c.scanExpr(e)
		}
		c.scanStmts(st.Body, inDefer)
	case *ast.CommClause:
		if st.Comm != nil {
			c.scanStmt(st.Comm, inDefer)
		}
		c.scanStmts(st.Body, inDefer)
	case *ast.LabeledStmt:
		c.scanStmt(st.Stmt, inDefer)
	case *ast.DeclStmt:
		if c.mentionsV(st) {
			c.escaped = true
		}
	}
}

// scanExpr classifies parameter uses inside one expression.
func (c *bufClassifier) scanExpr(expr ast.Expr) {
	if expr == nil {
		return
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		c.scanCall(e)
	case *ast.BinaryExpr:
		// buf == nil / buf != nil is a borrow.
		if c.isV(e.X) || c.isV(e.Y) {
			return
		}
		c.scanExpr(e.X)
		c.scanExpr(e.Y)
	case *ast.FuncLit:
		// A non-deferred closure capturing the buffer may stash it
		// anywhere; the deferred-closure release idiom is handled by
		// scanCall via DeferStmt.
		if c.mentionsV(e) {
			c.escaped = true
		}
	case *ast.Ident:
		if c.isV(e) {
			c.escaped = true // bare use in an unknown context
		}
	default:
		if c.mentionsV(expr) {
			c.escaped = true
		}
	}
}

// scanCall classifies a call involving the parameter: method calls on it
// and argument positions with summarized callees.
func (c *bufClassifier) scanCall(call *ast.CallExpr) {
	// Method call on the parameter itself.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.isV(sel.X) {
		switch {
		case IsMethod(c.site.info, call, BufPoolPath, "Buf", "Release"):
			c.released = true
		case bufBorrowMethods[sel.Sel.Name] && IsMethod(c.site.info, call, BufPoolPath, "Buf", sel.Sel.Name):
			// borrow
		default:
			c.escaped = true
		}
		for _, a := range call.Args {
			c.scanExpr(a)
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked (or deferred) closure: its body runs here,
		// so releases inside count and stray captures are found by the
		// statement scan.
		c.scanStmts(lit.Body.List, false)
		for _, a := range call.Args {
			if c.isV(a) {
				c.escaped = true
				continue
			}
			c.scanExpr(a)
		}
		return
	}
	// Parameter passed by position to a summarized callee.
	args := CallArgs(c.site.info, call)
	sum := c.s.Callee(c.site.info, call)
	for i, a := range args {
		if !c.isV(a) {
			c.scanExpr(a)
			continue
		}
		mode := BufUnknown
		if sum != nil && i < len(sum.Bufs) {
			mode = sum.Bufs[i]
		}
		switch mode {
		case BufReleases:
			c.released = true
		case BufBorrows:
			// borrow: obligation stays with this function
		default:
			c.escaped = true
		}
	}
}

// mustRelease walks stmts path-sensitively checking that every exit has
// the parameter released. It returns (released at fallthrough, every
// exit so far released). A deferred release covers all later exits.
func mustRelease(c *bufClassifier, stmts []ast.Stmt, released bool) (bool, bool) {
	ok := true
	for _, stmt := range stmts {
		var term bool
		released, term, ok = mustReleaseStmt(c, stmt, released, ok)
		if term {
			return released, ok
		}
	}
	return released, ok
}

// mustReleaseStmt threads (released, allExitsOK) through one statement,
// additionally reporting whether the statement terminates the list.
func mustReleaseStmt(c *bufClassifier, stmt ast.Stmt, released, ok bool) (bool, bool, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, isCall := st.X.(*ast.CallExpr); isCall {
			if releasesHere(c, call) {
				return true, true, ok
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "panic" {
				if _, isBuiltin := c.site.info.Uses[id].(*types.Builtin); isBuiltin {
					return released, false, ok // the program dies: no leak to report
				}
			}
		}
	case *ast.DeferStmt:
		if releasesHere(c, st.Call) {
			return true, false, ok
		}
	case *ast.ReturnStmt:
		return released, true, ok && released
	case *ast.IfStmt:
		if st.Init != nil {
			released, _, ok = mustReleaseStmt(c, st.Init, released, ok)
		}
		thenRel, thenOK := mustRelease(c, st.Body.List, released)
		thenTerm := terminates(st.Body.List)
		elseRel, elseOK, elseTerm := released, true, false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseRel, elseOK = mustRelease(c, e.List, released)
				elseTerm = terminates(e.List)
			default:
				elseRel, elseTerm, elseOK = mustReleaseStmt(c, st.Else, released, true)
			}
		}
		ok = ok && thenOK && elseOK
		switch {
		case thenTerm && elseTerm:
			return released, true, ok
		case thenTerm:
			return elseRel, false, ok
		case elseTerm:
			return thenRel, false, ok
		default:
			return thenRel && elseRel, false, ok
		}
	case *ast.BlockStmt:
		rel, blockOK := mustRelease(c, st.List, released)
		return rel, terminates(st.List), ok && blockOK
	case *ast.ForStmt:
		_, bodyOK := mustRelease(c, st.Body.List, released)
		return released, false, ok && bodyOK // body may run zero times
	case *ast.RangeStmt:
		_, bodyOK := mustRelease(c, st.Body.List, released)
		return released, false, ok && bodyOK
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: each case body must keep exits clean; the merged
		// fallthrough state only counts as released if every case (and a
		// default) releases — rare enough that we simply require released
		// beforehand.
		allRel, haveDefault := true, false
		var body *ast.BlockStmt
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		for _, cl := range body.List {
			var caseStmts []ast.Stmt
			switch cc := cl.(type) {
			case *ast.CaseClause:
				caseStmts = cc.Body
				if cc.List == nil {
					haveDefault = true
				}
			case *ast.CommClause:
				caseStmts = cc.Body
				if cc.Comm == nil {
					haveDefault = true
				}
			}
			rel, caseOK := mustRelease(c, caseStmts, released)
			ok = ok && caseOK
			if !rel && !terminates(caseStmts) {
				allRel = false
			}
		}
		return released || (allRel && haveDefault), false, ok
	case *ast.BranchStmt:
		// break/continue/goto with an unreleased pin: refuse must-release
		// rather than reason about loop structure.
		return released, true, ok && released
	case *ast.LabeledStmt:
		return mustReleaseStmt(c, st.Stmt, released, ok)
	}
	return released, false, ok
}

// terminates reports whether a statement list always exits the function
// (trailing return or panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch st := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(st.List)
	}
	return false
}

// releasesHere reports whether call certainly releases the tracked
// parameter: v.Release(), a releasing summarized callee, or a deferred
// closure whose body releases unconditionally.
func releasesHere(c *bufClassifier, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.isV(sel.X) {
		return IsMethod(c.site.info, call, BufPoolPath, "Buf", "Release")
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		rel, _ := mustRelease(c, lit.Body.List, false)
		return rel
	}
	args := CallArgs(c.site.info, call)
	sum := c.s.Callee(c.site.info, call)
	if sum == nil {
		return false
	}
	for i, a := range args {
		if c.isV(a) && i < len(sum.Bufs) && sum.Bufs[i] == BufReleases {
			return true
		}
	}
	return false
}

// --- result alias computation ------------------------------------------------

// taint tracks which parameters' memory (alias) and which Buf
// parameters' pinned frames (pageOf) a value may reach.
type taint struct {
	alias  uint64
	pageOf uint64
}

func (t taint) union(o taint) taint {
	return taint{alias: t.alias | o.alias, pageOf: t.pageOf | o.pageOf}
}

func (t taint) empty() bool { return t.alias == 0 && t.pageOf == 0 }

// aliasScan computes flow-insensitive taints for one function body.
type aliasScan struct {
	s    *Summaries
	site *declSite
	// paramIdx maps receiver-first parameters to their bit index.
	paramIdx map[*types.Var]int
	vars     map[*types.Var]taint
	changed  bool
}

// computeResultAliases fills sum.Results for site.
func computeResultAliases(s *Summaries, site *declSite, sum *FuncSummary) {
	if len(sum.Results) == 0 {
		return
	}
	a := &aliasScan{
		s:        s,
		site:     site,
		paramIdx: make(map[*types.Var]int, len(site.params)),
		vars:     make(map[*types.Var]taint),
	}
	for i, p := range site.params {
		if i >= 64 {
			break
		}
		a.paramIdx[p] = i
	}
	// Iterate the body until local taints stabilize (chains like
	// a := b[4:]; c := a resolve regardless of declaration order).
	for range [8]int{} {
		a.changed = false
		a.scanBody(site.decl.Body)
		if !a.changed {
			break
		}
	}
	// Collect return taints.
	results := make([]ResultAlias, len(sum.Results))
	sig := site.fn.Type().(*types.Signature)
	named := make([]*types.Var, 0, sig.Results().Len())
	for i := 0; i < sig.Results().Len(); i++ {
		named = append(named, sig.Results().At(i))
	}
	ast.Inspect(site.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure returns are not this function's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == len(results):
			for i, r := range ret.Results {
				t := a.exprTaint(r)
				results[i].Aliases |= t.alias
				results[i].PageOf |= t.pageOf
			}
		case len(ret.Results) == 0:
			for i, v := range named {
				if v.Name() != "" && v.Name() != "_" {
					t := a.vars[v]
					results[i].Aliases |= t.alias
					results[i].PageOf |= t.pageOf
				}
			}
		case len(ret.Results) == 1:
			// return f() forwarding a multi-result call
			if call, ok := ret.Results[0].(*ast.CallExpr); ok {
				ts := a.callTaints(call, len(results))
				for i := range results {
					results[i].Aliases |= ts[i].alias
					results[i].PageOf |= ts[i].pageOf
				}
			}
		}
		return true
	})
	copy(sum.Results, results)
}

// taintable reports whether values of type t can carry an alias to page
// memory: slices, pointers, unsafe.Pointer, structs and arrays holding
// them. Scalars, strings (copied on conversion), funcs, chans, maps and
// interfaces do not propagate taint here.
func taintable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func (a *aliasScan) setVar(v *types.Var, t taint) {
	if v == nil || t.empty() {
		return
	}
	old := a.vars[v]
	merged := old.union(t)
	if merged != old {
		a.vars[v] = merged
		a.changed = true
	}
}

func (a *aliasScan) scanBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			a.scanAssign(st)
		case *ast.RangeStmt:
			if st.Value != nil {
				if v := defOrUseVar(a.site.info, st.Value); v != nil && taintable(v.Type()) {
					a.setVar(v, a.exprTaint(st.X))
				}
			}
		case *ast.ValueSpec:
			for i, val := range st.Values {
				if i < len(st.Names) {
					if v, ok := a.site.info.Defs[st.Names[i]].(*types.Var); ok {
						a.setVar(v, a.exprTaint(val))
					}
				}
			}
		}
		return true
	})
}

func (a *aliasScan) scanAssign(st *ast.AssignStmt) {
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			ts := a.callTaints(call, len(st.Lhs))
			for i, lhs := range st.Lhs {
				a.setVar(defOrUseVar(a.site.info, lhs), ts[i])
			}
			return
		}
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		a.setVar(defOrUseVar(a.site.info, lhs), a.exprTaint(st.Rhs[i]))
	}
}

// callTaints computes the taints of a call's n results.
func (a *aliasScan) callTaints(call *ast.CallExpr, n int) []taint {
	out := make([]taint, n)
	// Conversions behave like a single-result call.
	if tv, ok := a.site.info.Types[call.Fun]; ok && tv.IsType() {
		if n == 1 {
			out[0] = a.conversionTaint(call)
		}
		return out
	}
	// Method call on a Buf parameter: Page() derives from its frame.
	// Checked before StaticCallee resolution — Page resolves to an
	// export-data *types.Func with no summary, and the callee branch
	// below returns without ever reaching a later check.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && n == 1 {
		if IsMethod(a.site.info, call, BufPoolPath, "Buf", "Page") {
			if v := useVar(a.site.info, sel.X); v != nil {
				if idx, ok := a.paramIdx[v]; ok {
					out[0].pageOf |= 1 << uint(idx)
				}
			}
			return out
		}
	}
	if fn := StaticCallee(a.site.info, call); fn != nil {
		if sum := a.s.Lookup(fn); sum != nil {
			args := CallArgs(a.site.info, call)
			for ri := 0; ri < n && ri < len(sum.Results); ri++ {
				r := sum.Results[ri]
				for j, arg := range args {
					if j >= 64 {
						break
					}
					bit := uint64(1) << uint(j)
					if r.Aliases&bit != 0 {
						out[ri] = out[ri].union(a.exprTaint(arg))
					}
					if r.PageOf&bit != 0 {
						// The callee derives this result from arg j's
						// pinned frame: propagate only when arg j is one
						// of our own Buf parameters.
						if v := useVar(a.site.info, arg); v != nil {
							if idx, ok := a.paramIdx[v]; ok && isBufPtr(v.Type()) {
								out[ri].pageOf |= 1 << uint(idx)
							}
						}
					}
				}
			}
			return out
		}
		// unsafe.Slice / unsafe.SliceData / unsafe.Add keep pointing at
		// the argument's memory.
		if fn.Pkg() != nil && fn.Pkg().Path() == "unsafe" {
			var t taint
			for _, arg := range call.Args {
				t = t.union(a.exprTaint(arg))
			}
			if n > 0 {
				out[0] = t
			}
			return out
		}
		// Out-of-module callee: assumed non-aliasing. The audit scope is
		// this module's helpers; stdlib slice-returning helpers on page
		// bytes would be missed, a false-negative trade the analyzer
		// accepts to stay quiet.
		return out
	}
	// Builtins and dynamic calls.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.site.info.Uses[id].(*types.Builtin); isBuiltin && n == 1 {
			switch id.Name {
			case "append":
				t := a.exprTaint(call.Args[0])
				for _, extra := range call.Args[1:] {
					if tv, ok := a.site.info.Types[extra]; ok && taintableElem(tv.Type, call.Ellipsis != token.NoPos) {
						t = t.union(a.exprTaint(extra))
					}
				}
				out[0] = t
			case "min", "max", "len", "cap", "copy", "make", "new", "clear":
				// no aliasing of interest (make/new allocate fresh)
			}
		}
	}
	return out
}

// taintableElem reports whether appending expr spreads taintable values:
// for append(x, y...) the element type of y, else the value itself.
func taintableElem(t types.Type, ellipsis bool) bool {
	if ellipsis {
		if sl, ok := t.Underlying().(*types.Slice); ok {
			return taintable(sl.Elem())
		}
		return false
	}
	return taintable(t)
}

// conversionTaint handles T(x): slice/pointer reinterpretations alias,
// string round-trips copy.
func (a *aliasScan) conversionTaint(call *ast.CallExpr) taint {
	if len(call.Args) != 1 {
		return taint{}
	}
	dst := a.site.info.Types[call.Fun].Type
	src := a.site.info.Types[call.Args[0]].Type
	if dst == nil || src == nil {
		return taint{}
	}
	dstPtr := taintable(dst)
	srcPtr := taintable(src)
	if dstPtr && srcPtr {
		return a.exprTaint(call.Args[0])
	}
	return taint{}
}

// exprTaint computes the taint of one expression.
func (a *aliasScan) exprTaint(expr ast.Expr) taint {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := a.site.info.Uses[e].(*types.Var); ok {
			t := a.vars[v]
			if idx, ok := a.paramIdx[v]; ok && taintable(v.Type()) {
				t.alias |= 1 << uint(idx)
			}
			return t
		}
	case *ast.SelectorExpr:
		if sel, ok := a.site.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if taintable(sel.Type()) {
				return a.exprTaint(e.X)
			}
		}
	case *ast.IndexExpr:
		if tv, ok := a.site.info.Types[e]; ok && taintable(tv.Type) {
			return a.exprTaint(e.X)
		}
	case *ast.SliceExpr:
		return a.exprTaint(e.X)
	case *ast.StarExpr:
		return a.exprTaint(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &x[i] aliases x's backing array whatever the element type.
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return a.exprTaint(idx.X).union(a.exprTaint(e.X))
			}
			return a.exprTaint(e.X)
		}
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = t.union(a.exprTaint(el))
		}
		return t
	case *ast.CallExpr:
		return a.callTaints(e, 1)[0]
	case *ast.TypeAssertExpr:
		return a.exprTaint(e.X)
	}
	return taint{}
}

// defOrUseVar resolves an assignment target to its variable.
func defOrUseVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// useVar resolves an expression to the variable it reads.
func useVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// --- pin transfer detection ---------------------------------------------------

// transfersPin reports whether site returns a *Buf that carries a live
// pin: a Pin/NewPage result or the result of another transferring
// function, possibly via an intermediate variable.
func transfersPin(s *Summaries, site *declSite) bool {
	info := site.info
	// Vars bound (anywhere) to an acquiring call.
	carriers := make(map[*types.Var]bool)
	acquires := func(call *ast.CallExpr) bool {
		if IsMethod(info, call, BufPoolPath, "Pool", "Pin") || IsMethod(info, call, BufPoolPath, "Pool", "NewPage") {
			return true
		}
		if sum := s.Callee(info, call); sum != nil && sum.TransfersPin {
			return true
		}
		return false
	}
	ast.Inspect(site.decl.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !acquires(call) {
			return true
		}
		if v := defOrUseVar(info, st.Lhs[0]); v != nil && isBufPtr(v.Type()) {
			carriers[v] = true
		}
		return true
	})
	found := false
	ast.Inspect(site.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if v := useVar(info, r); v != nil && carriers[v] {
				found = true
			}
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && acquires(call) {
				found = true
			}
		}
		return true
	})
	return found
}
