// Package pinrelease checks that every buffer acquired from the pool is
// released on every control-flow path.
//
// This is the RC#2 invariant: the buffer manager's pin counts are what
// make eviction safe, and a *Buf whose pin is never dropped turns its
// frame permanently unevictable — the Go analogue of the leaked-buffer
// warnings PostgreSQL raises from resource-owner cleanup at transaction
// end. Unlike PostgreSQL, this codebase has no transaction boundary to
// sweep leaked pins at, so the discipline must hold per function.
//
// The analyzer walks each function body path-sensitively:
//
//   - buf, err := pool.Pin(...) / buf, blk, err := pool.NewPage(...)
//     makes buf an owned value on the success path (the error branch of
//     the paired err variable is narrowed: Pin returns a nil *Buf with
//     a non-nil error, so there is nothing to release there);
//   - buf.Release(), directly or deferred, or inside a deferred
//     closure, ends the obligation;
//   - passing buf to another function consults that function's
//     interprocedural summary (Pass.Summaries): a callee that releases
//     the parameter on every path discharges the obligation, a callee
//     that merely borrows it leaves the obligation with the caller —
//     so forgetting to release after a borrowing helper is now a
//     finding, not a silent hand-off — and only a callee that stores or
//     forwards the buffer (or has no summary) transfers ownership;
//   - storing buf in a composite literal or another variable, sending
//     it on a channel, or capturing it in a closure transfers
//     ownership — the analyzer stops tracking rather than guessing;
//   - Page, Block, MarkDirty and Release are borrows, not transfers;
//   - returning buf is only legal from a function marked
//     //vetvec:ownership-transfer, the documented escape hatch for
//     constructors that hand the pin to their caller — and the
//     directive itself is checked against the summary: a marked
//     function that never actually returns a carried pin is reported
//     as stale;
//   - calling a transferring function creates an obligation in the
//     caller, exactly as Pool.Pin does;
//   - a buffer acquired inside a loop must be resolved by the end of
//     the iteration (or before break/continue), otherwise the next
//     iteration overwrites the variable and the pin leaks.
package pinrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"vecstudy/internal/analysis"
)

// PoolPath is the package declaring the pinning API.
const PoolPath = "vecstudy/internal/pg/buffer"

// TransferDirective marks functions that intentionally return a pinned
// buffer to their caller.
const TransferDirective = "ownership-transfer"

// Analyzer is the pinrelease checker.
var Analyzer = &analysis.Analyzer{
	Name: "pinrelease",
	Doc:  "every buffer.Pool Pin/NewPage result must be Released on all control-flow paths",
	Run:  run,
}

// borrowMethods are *Buf methods that use the pin without consuming it.
var borrowMethods = map[string]bool{
	"Page": true, "Block": true, "MarkDirty": true, "Release": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkStaleTransfer(pass, fn)
					analyzeFunc(pass, fn, fn.Body)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkStaleTransfer verifies //vetvec:ownership-transfer against the
// interprocedural summary: a marked function that never returns a
// carried pin would make callers track an obligation that does not
// exist (or, worse, double-release), so the directive must go.
func checkStaleTransfer(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !pass.FuncDirective(fd, TransferDirective) {
		return
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sum := pass.Summaries.Lookup(fn)
	if sum == nil {
		return // no summary (framework self-run): trust the directive
	}
	if !sum.TransfersPin {
		pass.Reportf(fd.Pos(), "function is marked //vetvec:%s but never returns a pinned buffer: stale directive", TransferDirective)
	}
}

// owned records one live pin obligation.
type owned struct {
	acquirePos token.Pos
	errVar     *types.Var // paired error result, if any
	loopDepth  int        // loop nesting level at acquisition
}

// state is the set of variables currently holding an unreleased pin.
// walker methods mutate it; branches walk on copies.
type state map[*types.Var]*owned

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// walker analyzes one function body.
type walker struct {
	pass      *analysis.Pass
	fn        ast.Node // *ast.FuncDecl or *ast.FuncLit
	transfer  bool     // fn carries //vetvec:ownership-transfer
	loopDepth int
	reported  map[token.Pos]bool // dedupe: one report per acquisition
}

func analyzeFunc(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	w := &walker{
		pass:     pass,
		fn:       fn,
		transfer: pass.FuncDirective(fn, TransferDirective),
		reported: make(map[token.Pos]bool),
	}
	out, terminated := w.walkStmts(body.List, make(state))
	if !terminated {
		w.checkExit(out, body.End(), nil)
	}
}

func (w *walker) reportLeak(o *owned, format string, args ...any) {
	if w.reported[o.acquirePos] {
		return
	}
	w.reported[o.acquirePos] = true
	w.pass.Reportf(o.acquirePos, format, args...)
}

// checkExit reports every still-owned variable at a function exit.
// results, when non-nil, are the return expressions: returning an owned
// buffer is the transfer case.
func (w *walker) checkExit(s state, pos token.Pos, results []ast.Expr) {
	returned := make(map[*types.Var]bool)
	for _, r := range results {
		if v := identVar(w.pass.Info, r); v != nil {
			returned[v] = true
		}
	}
	for v, o := range s {
		if returned[v] {
			if !w.transfer {
				w.reportLeak(o, "pinned buffer %s is returned without a //vetvec:%s directive on the function", v.Name(), TransferDirective)
			}
			continue
		}
		w.reportLeak(o, "pinned buffer %s is not released on every path (leaks at %s)", v.Name(), w.pass.Fset.Position(pos))
	}
}

// walkStmts walks a statement list, threading ownership state through.
// It reports leaks at every exit and returns the fallthrough state plus
// whether the list always terminates (return/panic).
func (w *walker) walkStmts(stmts []ast.Stmt, s state) (state, bool) {
	for _, stmt := range stmts {
		var terminated bool
		s, terminated = w.walkStmt(stmt, s)
		if terminated {
			return s, true
		}
	}
	return s, false
}

func (w *walker) walkStmt(stmt ast.Stmt, s state) (state, bool) {
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		w.handleAssign(st, s)

	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if v := releasedVar(w.pass.Info, call); v != nil {
				delete(s, v)
				return s, false
			}
			if acq := w.acquireOf(call); acq != nil {
				// Result dropped on the floor: the pin can never be released.
				w.pass.Reportf(call.Pos(), "result of %s is discarded: the pinned buffer can never be released", acq.kind)
				return s, false
			}
		}
		w.scanEscapes(st.X, s)

	case *ast.DeferStmt:
		w.handleDefer(st, s)

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			// Escapes in return expressions other than a bare owned
			// identifier (e.g. return wrap(buf)) transfer ownership.
			if identVar(w.pass.Info, r) == nil {
				w.scanEscapes(r, s)
			}
		}
		w.checkExit(s, st.Pos(), st.Results)
		return s, true

	case *ast.IfStmt:
		return w.walkIf(st, s)

	case *ast.BlockStmt:
		return w.walkStmts(st.List, s)

	case *ast.ForStmt:
		if st.Init != nil {
			s, _ = w.walkStmt(st.Init, s)
		}
		if st.Cond != nil {
			w.scanEscapes(st.Cond, s)
		}
		w.loopDepth++
		body, _ := w.walkStmts(st.Body.List, s.clone())
		w.checkLoopEnd(body, st.Body.End())
		w.loopDepth--
		return s, false

	case *ast.RangeStmt:
		w.scanEscapes(st.X, s)
		w.loopDepth++
		body, _ := w.walkStmts(st.Body.List, s.clone())
		w.checkLoopEnd(body, st.Body.End())
		w.loopDepth--
		return s, false

	case *ast.BranchStmt:
		// break/continue exits the iteration: buffers acquired inside
		// the loop must already be resolved.
		if st.Tok == token.BREAK || st.Tok == token.CONTINUE {
			w.checkLoopEnd(s, st.Pos())
		}
		return s, st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO

	case *ast.SwitchStmt:
		if st.Init != nil {
			s, _ = w.walkStmt(st.Init, s)
		}
		if st.Tag != nil {
			w.scanEscapes(st.Tag, s)
		}
		return w.walkCases(st.Body, s)

	case *ast.TypeSwitchStmt:
		return w.walkCases(st.Body, s)

	case *ast.SelectStmt:
		return w.walkCases(st.Body, s)

	case *ast.GoStmt:
		w.scanEscapes(st.Call, s)

	case *ast.SendStmt:
		w.scanEscapes(st.Value, s)

	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanEscapes(e, s)
				return false
			}
			return true
		})

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, s)

	case *ast.IncDecStmt, *ast.EmptyStmt:
		// no pin-relevant effects
	}
	return s, false
}

// walkIf handles branch narrowing and merging.
func (w *walker) walkIf(st *ast.IfStmt, s state) (state, bool) {
	if st.Init != nil {
		s, _ = w.walkStmt(st.Init, s)
	}
	w.scanEscapes(st.Cond, s)

	thenState, elseState := s.clone(), s.clone()
	// Error-guard narrowing: after buf, err := pool.Pin(...), the
	// err != nil branch holds no pin (Pin's contract: nil *Buf on error).
	if errVar, nonNil, ok := errNilCheck(w.pass.Info, st.Cond); ok {
		narrow := thenState
		if !nonNil { // err == nil: success is the then-branch
			narrow = elseState
		}
		for v, o := range narrow {
			if o.errVar == errVar {
				delete(narrow, v)
			}
		}
	}

	thenOut, thenTerm := w.walkStmts(st.Body.List, thenState)
	elseOut, elseTerm := elseState, false
	if st.Else != nil {
		elseOut, elseTerm = w.walkStmt(st.Else, elseState)
	}

	switch {
	case thenTerm && elseTerm:
		return s, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		return mergeOwned(thenOut, elseOut), false
	}
}

// walkCases merges the bodies of switch/select cases.
func (w *walker) walkCases(body *ast.BlockStmt, s state) (state, bool) {
	var outs []state
	allTerm := true
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.scanEscapes(e, s)
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			} else {
				var comm ast.Stmt = cc.Comm
				s2 := s.clone()
				s2, _ = w.walkStmt(comm, s2)
				_ = s2
			}
		}
		out, term := w.walkStmts(stmts, s.clone())
		if !term {
			outs = append(outs, out)
			allTerm = false
		}
	}
	if !hasDefault {
		// Execution may skip every case (non-exhaustive switch).
		outs = append(outs, s)
		allTerm = false
	}
	if allTerm {
		return s, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = mergeOwned(merged, o)
	}
	return merged, false
}

// mergeOwned keeps the union of obligations: a pin still owed on either
// branch is still owed after the join.
func mergeOwned(a, b state) state {
	for v, o := range b {
		if _, ok := a[v]; !ok {
			a[v] = o
		}
	}
	return a
}

// checkLoopEnd reports buffers acquired inside the current loop
// iteration that are still owned when the iteration ends.
func (w *walker) checkLoopEnd(s state, pos token.Pos) {
	for v, o := range s {
		if o.loopDepth >= w.loopDepth && w.loopDepth > 0 {
			w.reportLeak(o, "pinned buffer %s acquired inside the loop is not released by the end of the iteration (%s)", v.Name(), w.pass.Fset.Position(pos))
		}
	}
}

// handleAssign tracks acquisitions and release-by-escape.
func (w *walker) handleAssign(st *ast.AssignStmt, s state) {
	// Acquisition: buf, err := pool.Pin(...), buf, blk, err :=
	// pool.NewPage(...), or a call to a function whose summary says it
	// transfers a pinned buffer to its caller.
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			if acq := w.acquireOf(call); acq != nil {
				w.scanEscapes(call, s) // args may carry owned values
				bufLhs := st.Lhs[0]
				if acq.bufIdx < len(st.Lhs) {
					bufLhs = st.Lhs[acq.bufIdx]
				}
				if id, ok := bufLhs.(*ast.Ident); ok && id.Name == "_" {
					w.pass.Reportf(call.Pos(), "result of %s is discarded: the pinned buffer can never be released", acq.kind)
					return
				}
				bufVar := identVar(w.pass.Info, bufLhs)
				if bufVar == nil {
					return
				}
				var errVar *types.Var
				if last := st.Lhs[len(st.Lhs)-1]; len(st.Lhs) >= 2 {
					errVar = identVar(w.pass.Info, last)
				}
				// Reassignment over a live pin loses the old obligation.
				if old, ok := s[bufVar]; ok {
					w.reportLeak(old, "pinned buffer %s is overwritten at %s before being released", bufVar.Name(), w.pass.Fset.Position(st.Pos()))
				}
				s[bufVar] = &owned{acquirePos: call.Pos(), errVar: errVar, loopDepth: w.loopDepth}
				return
			}
		}
	}
	// Otherwise: owned values on the RHS escape into the LHS targets.
	for _, rhs := range st.Rhs {
		w.scanEscapes(rhs, s)
		if v := identVar(w.pass.Info, rhs); v != nil {
			delete(s, v) // transferred to the assignment target
		}
	}
	for _, lhs := range st.Lhs {
		// Assigning over a tracked variable (buf = nil) drops the pin.
		if v := identVar(w.pass.Info, lhs); v != nil {
			if old, ok := s[v]; ok {
				w.reportLeak(old, "pinned buffer %s is overwritten at %s before being released", v.Name(), w.pass.Fset.Position(st.Pos()))
				delete(s, v)
			}
		} else {
			w.scanEscapes(lhs, s)
		}
	}
}

// handleDefer recognizes defer buf.Release() and deferred closures that
// release owned buffers; everything else deferred is an escape scan.
func (w *walker) handleDefer(st *ast.DeferStmt, s state) {
	if v := releasedVar(w.pass.Info, st.Call); v != nil {
		delete(s, v)
		return
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		// defer func() { ... buf.Release() ... }()
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := releasedVar(w.pass.Info, call); v != nil {
					delete(s, v)
				}
			}
			return true
		})
		return
	}
	w.scanEscapes(st.Call, s)
}

// scanEscapes removes from s every owned variable that escapes through
// expr: call arguments, composite literals, channel values, address-of,
// closure captures. Borrow-method calls on the variable itself do not
// count, and calls to summarized callees resolve per-parameter: a
// releasing callee discharges the obligation, a borrowing callee keeps
// it with the caller, and only an escaping (or unsummarized) callee
// transfers ownership.
func (w *walker) scanEscapes(expr ast.Expr, s state) {
	if expr == nil || len(s) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if v := identVar(w.pass.Info, sel.X); v != nil {
					if _, owned := s[v]; owned && borrowMethods[sel.Sel.Name] && isBufMethod(w.pass.Info, node) {
						if sel.Sel.Name == "Release" {
							delete(s, v)
						}
						// Borrow: do not descend into sel.X.
						for _, a := range node.Args {
							w.scanEscapes(a, s)
						}
						return false
					}
				}
			}
			// Summarized callee: resolve each owned argument by the
			// callee's per-parameter mode instead of assuming hand-off.
			if sum := w.pass.Summaries.Callee(w.pass.Info, node); sum != nil {
				args := analysis.CallArgs(w.pass.Info, node)
				for i, a := range args {
					if v := identVar(w.pass.Info, a); v != nil {
						if _, owned := s[v]; owned {
							mode := analysis.BufUnknown
							if i < len(sum.Bufs) {
								mode = sum.Bufs[i]
							}
							switch mode {
							case analysis.BufReleases:
								delete(s, v) // the callee releases on every path
							case analysis.BufBorrows:
								// obligation stays with this function
							default:
								delete(s, v) // escapes or unknown: ownership transfers
							}
							continue
						}
					}
					w.scanEscapes(a, s)
				}
				return false
			}
			// Any owned value used as an argument (or as a non-borrow
			// receiver) is handed off.
			return true
		case *ast.FuncLit:
			// Closure capture: anything the closure references escapes.
			ast.Inspect(node.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
						delete(s, v)
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if v, ok := w.pass.Info.Uses[node].(*types.Var); ok {
				if _, owned := s[v]; owned {
					delete(s, v)
				}
			}
		}
		return true
	})
}

// --- recognizers ------------------------------------------------------------

// acquisition describes a call that hands its caller a pinned buffer.
type acquisition struct {
	kind   string // what acquired it, for messages
	bufIdx int    // index of the *Buf among the call's results
}

// acquireOf recognizes calls that create a release obligation for the
// caller: Pool.Pin, Pool.NewPage, and any function whose summary shows
// it returns a carried pin (the checked form of ownership-transfer).
func (w *walker) acquireOf(call *ast.CallExpr) *acquisition {
	info := w.pass.Info
	if analysis.IsMethod(info, call, PoolPath, "Pool", "Pin") {
		return &acquisition{kind: "buffer.Pool.Pin"}
	}
	if analysis.IsMethod(info, call, PoolPath, "Pool", "NewPage") {
		return &acquisition{kind: "buffer.Pool.NewPage"}
	}
	fn := analysis.StaticCallee(info, call)
	if fn == nil {
		return nil
	}
	sum := w.pass.Summaries.Lookup(fn)
	if sum == nil || !sum.TransfersPin {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if ptr, ok := sig.Results().At(i).Type().(*types.Pointer); ok &&
			analysis.NamedType(ptr.Elem(), PoolPath, "Buf") {
			return &acquisition{kind: fn.Name(), bufIdx: i}
		}
	}
	return nil
}

// releasedVar returns the variable whose pin call releases, if call is
// v.Release() on a *buffer.Buf variable.
func releasedVar(info *types.Info, call *ast.CallExpr) *types.Var {
	if !analysis.IsMethod(info, call, PoolPath, "Buf", "Release") {
		return nil
	}
	sel := call.Fun.(*ast.SelectorExpr)
	return identVar(info, sel.X)
}

// isBufMethod reports whether call is a method on *buffer.Buf.
func isBufMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return analysis.IsMethod(info, call, PoolPath, "Buf", sel.Sel.Name)
}

// identVar resolves expr to the *types.Var it names, or nil.
func identVar(info *types.Info, expr ast.Expr) *types.Var {
	if p, ok := expr.(*ast.ParenExpr); ok {
		return identVar(info, p.X)
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// errNilCheck matches `err != nil` / `err == nil` conditions, returning
// the error variable and whether the comparison is != nil.
func errNilCheck(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false, false
	}
	x, y := bin.X, bin.Y
	if isNil(info, x) {
		x, y = y, x
	}
	if !isNil(info, y) {
		return nil, false, false
	}
	v := identVar(info, x)
	if v == nil {
		return nil, false, false
	}
	if _, ok := v.Type().Underlying().(*types.Interface); !ok {
		return nil, false, false
	}
	return v, bin.Op == token.NEQ, true
}

func isNil(info *types.Info, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}
