package pinrelease_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/pinrelease"
)

func TestPinRelease(t *testing.T) {
	analysistest.Run(t, ".", pinrelease.Analyzer, "pin")
}

// TestPinReleaseInterprocedural exercises the summary-driven side:
// release/borrow/escape callees, checked //vetvec:ownership-transfer
// acquisition, and stale-directive detection.
func TestPinReleaseInterprocedural(t *testing.T) {
	analysistest.Run(t, ".", pinrelease.Analyzer, "interpin")
}
