package pinrelease_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/pinrelease"
)

func TestPinRelease(t *testing.T) {
	analysistest.Run(t, ".", pinrelease.Analyzer, "pin")
}
