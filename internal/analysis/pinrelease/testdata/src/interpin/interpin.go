// Package interpin is the interprocedural pinrelease fixture: release
// obligations resolved through callee summaries (release / borrow /
// escape / checked transfer) instead of the old trusted blanket
// hand-off at every call boundary.
package interpin

import "vecstudy/internal/pg/buffer"

// releaseIt releases its argument on every path (summary: BufReleases).
func releaseIt(b *buffer.Buf) { b.Release() }

// borrowIt only reads its argument (summary: BufBorrows).
func borrowIt(b *buffer.Buf) uint32 { return b.Block() }

// releaseVia discharges transitively: its own summary only becomes
// BufReleases once releaseIt's has converged in the fixpoint.
func releaseVia(b *buffer.Buf) { releaseIt(b) }

// open is the checked transfer shape: the summary proves the pin
// travels to the caller, so callers inherit the obligation.
//
//vetvec:ownership-transfer
func open(p *buffer.Pool, rel buffer.RelID) (*buffer.Buf, error) {
	return p.Pin(rel, 0)
}

// --- violations -------------------------------------------------------------

// borrowedNotReleased: a borrowing callee does NOT discharge the pin —
// the obligation stays here and no path releases it.
func borrowedNotReleased(p *buffer.Pool, rel buffer.RelID) (uint32, error) {
	buf, err := p.Pin(rel, 0) // want "pinned buffer buf is not released on every path"
	if err != nil {
		return 0, err
	}
	return borrowIt(buf), nil
}

// fromOpenLeak: the obligation created by a transfer callee is tracked
// exactly like a direct Pin.
func fromOpenLeak(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := open(p, rel) // want "pinned buffer buf is not released on every path"
	if err != nil {
		return err
	}
	if buf.Block() == 9 {
		return nil // pin leaks here
	}
	buf.Release()
	return nil
}

// fromOpenDiscarded: dropping a transfer callee's buffer result loses
// the pin just like discarding Pool.Pin's.
func fromOpenDiscarded(p *buffer.Pool, rel buffer.RelID) error {
	_, err := open(p, rel) // want "result of open is discarded"
	return err
}

// reexported forwards an open()'s pin to its own caller without
// declaring the transfer.
func reexported(p *buffer.Pool, rel buffer.RelID) (*buffer.Buf, error) {
	buf, err := open(p, rel) // want "returned without a //vetvec:ownership-transfer directive"
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// stale promises a transfer its body never performs: the summary shows
// no pinned buffer reaches the caller.
//
//vetvec:ownership-transfer
func stale(p *buffer.Pool, rel buffer.RelID) error { // want "stale directive"
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	buf.Release()
	return nil
}

// --- must not flag ----------------------------------------------------------

// discharged: a releasing callee satisfies the obligation.
func discharged(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	releaseIt(buf)
	return nil
}

// transitive: the discharge resolves two summary hops deep.
func transitive(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	releaseVia(buf)
	return nil
}

// borrowedThenReleased: the borrow leaves the obligation here and the
// later Release satisfies it — a borrowing callee must not be treated
// as a hand-off (that would hide the double-release if it released).
func borrowedThenReleased(p *buffer.Pool, rel buffer.RelID) (uint32, error) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0, err
	}
	n := borrowIt(buf)
	buf.Release()
	return n, nil
}

// fromOpenOK: a transfer-acquired pin released normally.
func fromOpenOK(p *buffer.Pool, rel buffer.RelID) (uint32, error) {
	buf, err := open(p, rel)
	if err != nil {
		return 0, err
	}
	n := buf.Block()
	buf.Release()
	return n, nil
}

// keeper stores the buffer away (summary: BufEscapes): ownership
// transfers to the holder, which releases it later.
type keeper struct{ buf *buffer.Buf }

func stash(k *keeper, b *buffer.Buf) { k.buf = b }

func handedToKeeper(p *buffer.Pool, rel buffer.RelID, k *keeper) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	stash(k, buf)
	return nil
}
