// Package pin is the pinrelease fixture: each function is one shape the
// analyzer must flag (// want) or must leave alone.
package pin

import "vecstudy/internal/pg/buffer"

// --- violations -------------------------------------------------------------

// leakOnEarlyReturn drops the pin on one branch.
func leakOnEarlyReturn(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0) // want "pinned buffer buf is not released on every path"
	if err != nil {
		return err
	}
	if buf.Block() == 3 {
		return nil // pin leaks here
	}
	buf.Release()
	return nil
}

// discardedResult throws the *Buf away at the call site.
func discardedResult(p *buffer.Pool, rel buffer.RelID) error {
	_, err := p.Pin(rel, 1) // want "result of buffer.Pool.Pin is discarded"
	return err
}

// returnWithoutDirective hands the pin to the caller without declaring
// the transfer.
func returnWithoutDirective(p *buffer.Pool, rel buffer.RelID) (*buffer.Buf, error) {
	buf, err := p.Pin(rel, 2) // want "returned without a //vetvec:ownership-transfer directive"
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// leakAcrossIteration re-enters the loop with the previous pin live.
func leakAcrossIteration(p *buffer.Pool, rel buffer.RelID, n uint32) error {
	for blk := uint32(0); blk < n; blk++ {
		buf, err := p.Pin(rel, blk) // want "acquired inside the loop is not released by the end of the iteration"
		if err != nil {
			return err
		}
		if buf.Block() == 7 {
			break // pin leaks here
		}
	}
	return nil
}

// overwrittenBeforeRelease loses the first pin by reassigning.
func overwrittenBeforeRelease(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0) // want "pinned buffer buf is overwritten"
	if err != nil {
		return err
	}
	buf, err = p.Pin(rel, 1)
	if err != nil {
		return err
	}
	buf.Release()
	return nil
}

// newPageLeak covers the NewPage entry point too.
func newPageLeak(p *buffer.Pool, rel buffer.RelID) (uint32, error) {
	buf, blk, err := p.NewPage(rel) // want "pinned buffer buf is not released on every path"
	if err != nil {
		return 0, err
	}
	if blk > 100 {
		return 0, nil // pin leaks here
	}
	buf.Release()
	return blk, nil
}

// --- must not flag ----------------------------------------------------------

// straightLine releases on the only path.
func straightLine(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	buf.MarkDirty()
	buf.Release()
	return nil
}

// deferred releases via defer, covering every exit below it.
func deferred(p *buffer.Pool, rel buffer.RelID) (uint32, error) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0, err
	}
	defer buf.Release()
	if buf.Block() == 3 {
		return 3, nil
	}
	return buf.Block(), nil
}

// deferredClosure releases inside a deferred func literal.
func deferredClosure(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	defer func() {
		buf.MarkDirty()
		buf.Release()
	}()
	return nil
}

// perIteration resolves each pin before the next loop round.
func perIteration(p *buffer.Pool, rel buffer.RelID, n uint32) error {
	for blk := uint32(0); blk < n; blk++ {
		buf, err := p.Pin(rel, blk)
		if err != nil {
			return err
		}
		if buf.Block() == 7 {
			buf.Release()
			break
		}
		buf.Release()
	}
	return nil
}

// transferToCallee hands the pin to another function, which now owns it.
func transferToCallee(p *buffer.Pool, rel buffer.RelID) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	consume(buf)
	return nil
}

func consume(b *buffer.Buf) { b.Release() }

// pinned is the sanctioned constructor shape: the directive declares
// that the caller receives the pin.
//
//vetvec:ownership-transfer
func pinned(p *buffer.Pool, rel buffer.RelID, blk uint32) (*buffer.Buf, error) {
	buf, err := p.Pin(rel, blk)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// chainPages is the regression fixture for the hnsw allocNeighborPages
// leak: a page-chaining closure must release the previous page on the
// allocation-failure path. This is the fixed shape and must not flag.
func chainPages(p *buffer.Pool, rel buffer.RelID, n int) error {
	var cur *buffer.Buf
	newPage := func() error {
		buf, _, err := p.NewPage(rel)
		if err != nil {
			if cur != nil {
				cur.Release()
				cur = nil
			}
			return err
		}
		if cur != nil {
			cur.MarkDirty()
			cur.Release()
		}
		cur = buf
		return nil
	}
	for i := 0; i < n; i++ {
		if err := newPage(); err != nil {
			return err
		}
	}
	if cur != nil {
		cur.MarkDirty()
		cur.Release()
	}
	return nil
}

// storedInStruct transfers ownership into a longer-lived holder.
type holder struct{ buf *buffer.Buf }

func storedInStruct(p *buffer.Pool, rel buffer.RelID, h *holder) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	h.buf = buf
	return nil
}
