// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments, the same
// protocol as golang.org/x/tools/go/analysis/analysistest: a want
// comment on a line asserts that the analyzer reports a diagnostic on
// that line matching the regexp; every diagnostic must be wanted and
// every want must be matched.
//
// Fixtures live under testdata/src/<name> next to each analyzer, where
// `go list` never looks — they can therefore contain deliberate
// invariant violations without tripping the real vetvec run in CI.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vecstudy/internal/analysis"
	"vecstudy/internal/analysis/load"
)

// wantRE extracts the quoted pattern from a `// want "..."` comment.
var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to dir, applies the
// analyzer, and reports mismatches as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, fixture string) {
	RunPath(t, dir, a, fixture, "vetvecfixture/"+fixture)
}

// RunPath is Run with an explicit import path for the fixture package —
// needed by analyzers whose scope is decided by import path (gohygiene
// only fires inside the serving packages).
func RunPath(t *testing.T, dir string, a *analysis.Analyzer, fixture, importPath string) {
	t.Helper()
	fixtureDir := filepath.Join(dir, "testdata", "src", fixture)
	loader, err := load.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Dir(fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}

	expects := collectWants(t, pkg)

	// Fixtures get the same interprocedural context as a real run: a
	// summary table over the fixture package itself, so multi-function
	// escape/transfer/borrow cases resolve through their own helpers.
	summaries := analysis.BuildSummaries([]analysis.SummaryInput{
		{Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info, Pkg: pkg.Types},
	})

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		Summaries: summaries,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pat, err := regexp.Compile(unescape(m[1]))
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation at (file, line) whose
// pattern matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// unescape undoes the \" escaping inside the quoted want pattern.
func unescape(s string) string {
	return strings.ReplaceAll(s, `\"`, `"`)
}
