// Package pagealias flags pinned-page memory that outlives its pin.
//
// The zero-copy scan paths (RC#2: blas.L2SqrNTRows, the SQ8 decomposed
// scan) score tuple bytes in place on pinned frames: every []byte or
// []float32 obtained from buf.Page() — directly, or through any chain
// of helpers (page.Page.Item, pase.Float32View, heap accessors) — is
// valid only while buf's pin is held. Once Release runs, the frame may
// be evicted and rewritten under the slice. This analyzer makes that
// lifetime rule mechanical:
//
//   - a value derived from a pinned frame must not be used after a path
//     on which the frame's Release has run;
//   - it must not escape the frame's scope: stored into a struct field,
//     map, or package variable, written through a pointer, sent on a
//     channel, or captured by a goroutine;
//   - it may be returned only when it derives from a *Buf parameter
//     (the caller holds the pin, and the function's interprocedural
//     summary carries the derivation to the caller's own check), or
//     when the function also transfers the pin itself
//     (//vetvec:ownership-transfer and the buffer returned alongside).
//
// Derivation is computed from the interprocedural summary table
// (Pass.Summaries): helper calls propagate both memory aliasing
// (result reuses an argument's backing array) and page derivation
// (result comes from an argument buffer's pinned frame), so the
// analysis sees through pase.Float32View-style reinterpretation and
// page.Page accessors without annotations.
//
// Two structural escapes are deliberately legal:
//
//   - passing a page-derived value as a call argument — the callback
//     idiom (heap.Get, bucket-scan visitors) hands borrowed views down
//     the stack, which is exactly the zero-copy design;
//   - storing views into a struct that also carries the pins
//     (a field of type *buffer.Buf or []*buffer.Buf): a pin-escorted
//     holder like ivfflat's bucketScanScratch keeps the frames pinned
//     for as long as the views live, which is the invariant this
//     analyzer exists to protect.
//
// Sites that provably copy (and so are safe despite the syntax) carry
// //vetvec:page-copied; append([]byte(nil), view...) and copy() into a
// fresh buffer need no directive because element-wise copies of scalar
// data never propagate derivation.
package pagealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"vecstudy/internal/analysis"
)

// CopiedDirective suppresses an escape report at a site that provably
// copies the bytes out of the pinned frame.
const CopiedDirective = "page-copied"

// Analyzer is the pagealias checker.
var Analyzer = &analysis.Analyzer{
	Name: "pagealias",
	Doc:  "no slice or pointer derived from a pinned page may be used after, or escape past, the frame's Release",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, fd)
			}
		}
	}
	return nil
}

// origins maps each variable to the set of *buffer.Buf variables whose
// pinned frame its value may be derived from.
type origins map[*types.Var]map[*types.Var]bool

// checker analyzes one function.
type checker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	org    origins
	params map[*types.Var]bool // receiver-first parameter set
	// rel is path state: Buf variables whose Release has (possibly) run
	// on the current path, keyed to the release position for messages.
	reported map[token.Pos]bool
	changed  bool
}

// relState is the may-released set threaded through the path walk.
type relState map[*types.Var]token.Pos

func (s relState) clone() relState {
	c := make(relState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		fd:       fd,
		org:      make(origins),
		params:   make(map[*types.Var]bool),
		reported: make(map[token.Pos]bool),
	}
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			c.params[recv] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			c.params[sig.Params().At(i)] = true
		}
	}
	// Phase A: flow-insensitive derivation table, to a fixpoint so
	// chains resolve regardless of statement order.
	for range [8]int{} {
		c.changed = false
		c.buildOrigins()
		if !c.changed {
			break
		}
	}
	// Phase B: path-sensitive walk checking uses and escapes against
	// may-released pins.
	c.walkStmts(fd.Body.List, make(relState))
}

// --- phase A: derivation table ----------------------------------------------

func (c *checker) addOrigins(v *types.Var, from map[*types.Var]bool) {
	if v == nil || len(from) == 0 {
		return
	}
	dst := c.org[v]
	if dst == nil {
		dst = make(map[*types.Var]bool)
		c.org[v] = dst
	}
	for o := range from {
		if !dst[o] {
			dst[o] = true
			c.changed = true
		}
	}
}

func (c *checker) buildOrigins() {
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
					for i, lhs := range st.Lhs {
						c.propagateStore(lhs, c.callOrigins(call, len(st.Lhs))[i])
					}
					return true
				}
			}
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				c.propagateStore(lhs, c.exprOrigins(st.Rhs[i]))
			}
		case *ast.ValueSpec:
			for i, val := range st.Values {
				if i < len(st.Names) {
					if v, ok := c.pass.Info.Defs[st.Names[i]].(*types.Var); ok {
						c.addOrigins(v, c.exprOrigins(val))
					}
				}
			}
		case *ast.RangeStmt:
			if st.Value != nil {
				if v := identVar(c.pass.Info, st.Value); v != nil && derivable(v.Type()) {
					c.addOrigins(v, c.exprOrigins(st.X))
				}
			}
		}
		return true
	})
}

// propagateStore records derivation flowing into an assignment target:
// plain variables accumulate origins, and stores into a local value's
// field or element taint the local itself. Stores through pointers,
// parameters, or package variables do NOT propagate — those are phase
// B's escape reports, and folding them into the base variable would
// smear page derivation over unrelated (scalar-holding) fields of the
// same struct.
func (c *checker) propagateStore(lhs ast.Expr, from map[*types.Var]bool) {
	if len(from) == 0 {
		return
	}
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		c.addOrigins(identVar(c.pass.Info, t), from)
	case *ast.SelectorExpr:
		if c.localValueRoot(t.X) {
			c.propagateStore(t.X, from)
		}
	case *ast.IndexExpr:
		if c.localValueRoot(t.X) {
			c.propagateStore(t.X, from)
		}
	}
}

// derivable mirrors the summary layer's taintable: only these types can
// carry a pointer into a pinned frame.
func derivable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// exprOrigins computes the pinned-frame origins of one expression.
func (c *checker) exprOrigins(expr ast.Expr) map[*types.Var]bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v := identVar(c.pass.Info, e); v != nil {
			return c.org[v]
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal && derivable(sel.Type()) {
			return c.exprOrigins(e.X)
		}
	case *ast.IndexExpr:
		if tv, ok := c.pass.Info.Types[e]; ok && derivable(tv.Type) {
			return c.exprOrigins(e.X)
		}
	case *ast.SliceExpr:
		return c.exprOrigins(e.X)
	case *ast.StarExpr:
		return c.exprOrigins(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return union(c.exprOrigins(idx.X), c.exprOrigins(e.X))
			}
			return c.exprOrigins(e.X)
		}
	case *ast.CompositeLit:
		var out map[*types.Var]bool
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = union(out, c.exprOrigins(el))
		}
		return out
	case *ast.TypeAssertExpr:
		return c.exprOrigins(e.X)
	case *ast.CallExpr:
		return c.callOrigins(e, 1)[0]
	}
	return nil
}

func union(a, b map[*types.Var]bool) map[*types.Var]bool {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(map[*types.Var]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// callOrigins computes the origins of each of a call's n results.
func (c *checker) callOrigins(call *ast.CallExpr, n int) []map[*types.Var]bool {
	out := make([]map[*types.Var]bool, n)
	info := c.pass.Info
	// Conversion: pointer-shaped reinterpretations keep the memory.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if n == 1 && len(call.Args) == 1 {
			src := info.Types[call.Args[0]].Type
			if src != nil && derivable(tv.Type) && derivable(src) {
				out[0] = c.exprOrigins(call.Args[0])
			}
		}
		return out
	}
	// buf.Page(): the root derivation.
	if analysis.IsMethod(info, call, analysis.BufPoolPath, "Buf", "Page") {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if v := identVar(info, sel.X); v != nil && n == 1 {
			out[0] = map[*types.Var]bool{v: true}
		}
		return out
	}
	if fn := analysis.StaticCallee(info, call); fn != nil {
		// unsafe.Slice / unsafe.SliceData / unsafe.Add reinterpret.
		if fn.Pkg() != nil && fn.Pkg().Path() == "unsafe" {
			var t map[*types.Var]bool
			for _, arg := range call.Args {
				t = union(t, c.exprOrigins(arg))
			}
			if n > 0 {
				out[0] = t
			}
			return out
		}
		if sum := c.pass.Summaries.Lookup(fn); sum != nil {
			args := analysis.CallArgs(info, call)
			for ri := 0; ri < n && ri < len(sum.Results); ri++ {
				r := sum.Results[ri]
				for j, arg := range args {
					if j >= 64 {
						break
					}
					bit := uint64(1) << uint(j)
					if r.Aliases&bit != 0 {
						out[ri] = union(out[ri], c.exprOrigins(arg))
					}
					if r.PageOf&bit != 0 {
						// Result derived from arg j's pinned frame.
						if v := identVar(info, arg); v != nil {
							out[ri] = union(out[ri], map[*types.Var]bool{v: true})
						}
					}
				}
			}
			return out
		}
	}
	// Builtins: append propagates its base (element-wise scalar copies
	// do not — append([]byte(nil), view...) is the blessed copy idiom).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && n == 1 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			t := c.exprOrigins(call.Args[0])
			for _, extra := range call.Args[1:] {
				if tv, ok := info.Types[extra]; ok && spreadDerivable(tv.Type, call.Ellipsis != token.NoPos) {
					t = union(t, c.exprOrigins(extra))
				}
			}
			out[0] = t
		}
	}
	return out
}

func spreadDerivable(t types.Type, ellipsis bool) bool {
	if ellipsis {
		if sl, ok := t.Underlying().(*types.Slice); ok {
			return derivable(sl.Elem())
		}
		return false
	}
	return derivable(t)
}

// --- phase B: path walk ------------------------------------------------------

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkUse reports any value in expr derived from a may-released frame.
// skip, when non-nil, is an expression subtree to leave alone (e.g. the
// receiver of the Release call itself).
func (c *checker) checkUse(expr ast.Expr, rel relState, skip ast.Expr) {
	if expr == nil || len(rel) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures may run while the pin is still held
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := c.pass.Info.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		// The buffer itself: buf.Page() after Release panics at runtime.
		if relPos, released := rel[v]; released && isBufVar(v) {
			if sel, isSel := selParent(expr, id); isSel && sel.Sel.Name == "Page" {
				c.reportOnce(id.Pos(), "%s.Page() after %s was released at %s", v.Name(), v.Name(), c.pass.Fset.Position(relPos))
				return true
			}
		}
		for o := range c.org[v] {
			if relPos, released := rel[o]; released {
				c.reportOnce(id.Pos(), "%s is derived from the pinned page of %s, which was released at %s", v.Name(), o.Name(), c.pass.Fset.Position(relPos))
			}
		}
		return true
	})
}

// selParent reports whether id is the X of a selector within expr,
// returning that selector. Only used to phrase Page-after-Release.
func selParent(root ast.Expr, id *ast.Ident) (*ast.SelectorExpr, bool) {
	var found *ast.SelectorExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.X == id {
			found = sel
			return false
		}
		return true
	})
	return found, found != nil
}

// walkStmts threads the may-released set through a statement list.
func (c *checker) walkStmts(stmts []ast.Stmt, rel relState) (relState, bool) {
	for _, stmt := range stmts {
		var term bool
		rel, term = c.walkStmt(stmt, rel)
		if term {
			return rel, true
		}
	}
	return rel, false
}

func (c *checker) walkStmt(stmt ast.Stmt, rel relState) (relState, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if v := c.releaseOf(call); v != nil {
				c.checkUse(call, rel, nil)
				rel[v] = call.Pos()
				return rel, false
			}
		}
		c.checkUse(st.X, rel, nil)

	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			c.checkUse(rhs, rel, nil)
		}
		for i, lhs := range st.Lhs {
			// A Buf variable reassigned from a fresh acquisition is a new
			// pin: stop treating it as released.
			if v := identVar(c.pass.Info, lhs); v != nil {
				if isBufVar(v) {
					delete(rel, v)
					continue
				}
				// Fall through: a plain ident can still be a package
				// variable, which checkEscapeStore flags.
			} else {
				c.checkUse(lhs, rel, nil)
			}
			if i < len(st.Rhs) {
				c.checkEscapeStore(lhs, st.Rhs[i])
			} else if len(st.Rhs) == 1 {
				c.checkEscapeStore(lhs, st.Rhs[0])
			}
		}

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.checkUse(r, rel, nil)
		}
		c.checkEscapeReturn(st)
		return rel, true

	case *ast.SendStmt:
		c.checkUse(st.Value, rel, nil)
		if o := c.exprOrigins(st.Value); len(o) > 0 && !c.pass.Suppressed(st.Pos(), CopiedDirective) {
			c.reportOnce(st.Pos(), "value derived from a pinned page is sent on a channel and may outlive the pin; copy it (or mark the send //vetvec:%s)", CopiedDirective)
		}

	case *ast.GoStmt:
		c.checkGoroutine(st)

	case *ast.DeferStmt:
		// Deferred releases run at exit: they cannot cause uses-after-
		// release inside the body, and pinrelease owns the leak side.

	case *ast.IfStmt:
		if st.Init != nil {
			rel, _ = c.walkStmt(st.Init, rel)
		}
		c.checkUse(st.Cond, rel, nil)
		thenRel, thenTerm := c.walkStmts(st.Body.List, rel.clone())
		elseRel, elseTerm := rel.clone(), false
		if st.Else != nil {
			elseRel, elseTerm = c.walkStmt(st.Else, elseRel)
		}
		switch {
		case thenTerm && elseTerm:
			return rel, true
		case thenTerm:
			return elseRel, false
		case elseTerm:
			return thenRel, false
		default:
			return mergeRel(thenRel, elseRel), false
		}

	case *ast.BlockStmt:
		return c.walkStmts(st.List, rel)

	case *ast.ForStmt:
		if st.Init != nil {
			rel, _ = c.walkStmt(st.Init, rel)
		}
		if st.Cond != nil {
			c.checkUse(st.Cond, rel, nil)
		}
		body, term := c.walkStmts(st.Body.List, rel.clone())
		if term {
			// The body's fallthrough path exits the function: releases on
			// it never reach the code after the loop.
			return rel, false
		}
		if st.Post != nil {
			c.walkStmt(st.Post, body)
		}
		return mergeRel(rel, body), false

	case *ast.RangeStmt:
		c.checkUse(st.X, rel, nil)
		body, term := c.walkStmts(st.Body.List, rel.clone())
		if term {
			return rel, false
		}
		return mergeRel(rel, body), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodyBlock *ast.BlockStmt
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				rel, _ = c.walkStmt(sw.Init, rel)
			}
			if sw.Tag != nil {
				c.checkUse(sw.Tag, rel, nil)
			}
			bodyBlock = sw.Body
		case *ast.TypeSwitchStmt:
			bodyBlock = sw.Body
		case *ast.SelectStmt:
			bodyBlock = sw.Body
		}
		merged := rel
		for _, cl := range bodyBlock.List {
			var caseStmts []ast.Stmt
			switch cc := cl.(type) {
			case *ast.CaseClause:
				caseStmts = cc.Body
			case *ast.CommClause:
				caseStmts = cc.Body
			}
			out, term := c.walkStmts(caseStmts, rel.clone())
			if !term {
				merged = mergeRel(merged, out)
			}
		}
		return merged, false

	case *ast.BranchStmt:
		return rel, st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO

	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt, rel)

	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkUse(e, rel, nil)
				return false
			}
			return true
		})
	}
	return rel, false
}

// mergeRel unions may-released sets: released on either branch means a
// later use is unsafe on some execution.
func mergeRel(a, b relState) relState {
	for v, pos := range b {
		if _, ok := a[v]; !ok {
			a[v] = pos
		}
	}
	return a
}

// releaseOf resolves a statement-level call that certainly drops a pin:
// v.Release(), or a summarized callee that releases the argument.
func (c *checker) releaseOf(call *ast.CallExpr) *types.Var {
	info := c.pass.Info
	if analysis.IsMethod(info, call, analysis.BufPoolPath, "Buf", "Release") {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return identVar(info, sel.X)
	}
	if sum := c.pass.Summaries.Callee(info, call); sum != nil {
		args := analysis.CallArgs(info, call)
		for i, a := range args {
			if i < len(sum.Bufs) && sum.Bufs[i] == analysis.BufReleases {
				if v := identVar(info, a); v != nil {
					return v
				}
			}
		}
	}
	return nil
}

// --- escape checks -----------------------------------------------------------

// checkEscapeStore flags stores of page-derived values into non-local
// targets: struct fields (unless the struct escorts the pins), writes
// through pointers, map/slice elements of non-local bases, and package
// variables.
func (c *checker) checkEscapeStore(lhs, rhs ast.Expr) {
	from := c.exprOrigins(rhs)
	if len(from) == 0 {
		return
	}
	kind, base, escapes := c.storeTarget(lhs)
	if !escapes {
		return
	}
	if c.pass.Suppressed(lhs.Pos(), CopiedDirective) {
		return
	}
	if base != nil && c.pinEscortedHolder(base) {
		return
	}
	c.reportOnce(lhs.Pos(), "value derived from a pinned page escapes into %s and may outlive the pin; copy the bytes (append([]byte(nil), v...)) or mark the store //vetvec:%s", kind, CopiedDirective)
}

// storeTarget classifies an assignment target. It returns a description,
// the selector base expression when the target is a field (for the
// pin-escorted-holder rule), and whether the store escapes function
// scope.
func (c *checker) storeTarget(lhs ast.Expr) (string, ast.Expr, bool) {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v := identVar(c.pass.Info, t)
		if v == nil {
			return "", nil, false
		}
		if v.Parent() == v.Pkg().Scope() {
			return "package variable " + v.Name(), nil, true
		}
		return "", nil, false // local or parameter variable: tracked, not an escape
	case *ast.SelectorExpr:
		// x.f = view: escapes unless x is a plain local value.
		if c.localValueRoot(t.X) {
			return "", nil, false
		}
		return "a struct field", t.X, true
	case *ast.IndexExpr:
		if c.localValueRoot(t.X) {
			return "", nil, false
		}
		if sel, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok {
			return "a struct field element", sel.X, true
		}
		return "a map or slice element", nil, true
	case *ast.StarExpr:
		return "memory behind a pointer", nil, true
	}
	return "", nil, false
}

// localValueRoot reports whether expr bottoms out in a non-pointer local
// variable: stores into it stay inside this frame, and the derivation
// table already tracks them.
func (c *checker) localValueRoot(expr ast.Expr) bool {
	switch t := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v := identVar(c.pass.Info, t)
		if v == nil || c.params[v] || v.Parent() == v.Pkg().Scope() {
			return false
		}
		if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
			return false
		}
		return true
	case *ast.SelectorExpr:
		return c.localValueRoot(t.X)
	case *ast.IndexExpr:
		return c.localValueRoot(t.X)
	}
	return false
}

// pinEscortedHolder reports whether base's struct type also declares a
// *buffer.Buf (or []*buffer.Buf) field: such a holder carries the pins
// alongside the views, so storing views into it preserves the lifetime
// invariant (ivfflat's bucketScanScratch pattern).
func (c *checker) pinEscortedHolder(base ast.Expr) bool {
	tv, ok := c.pass.Info.Types[ast.Unparen(base)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if sl, ok := ft.Underlying().(*types.Slice); ok {
			ft = sl.Elem()
		}
		if ptr, ok := ft.(*types.Pointer); ok && analysis.NamedType(ptr.Elem(), analysis.BufPoolPath, "Buf") {
			return true
		}
	}
	return false
}

// checkEscapeReturn flags returning a value derived from a locally
// pinned frame, unless the function also hands the pin to the caller
// (//vetvec:ownership-transfer with the buffer among the results).
// Values derived from *Buf parameters may be returned freely: the
// caller holds the pin, and the summary layer carries the derivation
// into the caller's own pagealias check.
func (c *checker) checkEscapeReturn(ret *ast.ReturnStmt) {
	transfer := c.pass.FuncDirective(c.fd, "ownership-transfer")
	returnedBufs := make(map[*types.Var]bool)
	for _, r := range ret.Results {
		if v := identVar(c.pass.Info, r); v != nil && isBufVar(v) {
			returnedBufs[v] = true
		}
	}
	for _, r := range ret.Results {
		for o := range c.exprOrigins(r) {
			if c.params[o] {
				continue // caller holds this pin
			}
			if transfer && returnedBufs[o] {
				continue // pin travels with the view
			}
			if c.pass.Suppressed(r.Pos(), CopiedDirective) {
				continue
			}
			c.reportOnce(r.Pos(), "returned value is derived from the pinned page of local buffer %s; the pin does not travel with it — copy the bytes or return the buffer under //vetvec:ownership-transfer", o.Name())
		}
	}
}

// checkGoroutine flags page-derived values reaching a goroutine, either
// as call arguments or captured by the closure.
func (c *checker) checkGoroutine(st *ast.GoStmt) {
	flag := func(pos token.Pos, how string) {
		if c.pass.Suppressed(st.Pos(), CopiedDirective) || c.pass.Suppressed(pos, CopiedDirective) {
			return
		}
		c.reportOnce(pos, "value derived from a pinned page is %s a goroutine, which may run after Release; copy the bytes first", how)
	}
	for _, arg := range st.Call.Args {
		if len(c.exprOrigins(arg)) > 0 {
			flag(arg.Pos(), "passed to")
		}
	}
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := c.pass.Info.Uses[id].(*types.Var); ok && len(c.org[v]) > 0 {
				flag(id.Pos(), "captured by")
			}
			return true
		})
	}
}

// --- small helpers -----------------------------------------------------------

func isBufVar(v *types.Var) bool {
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return false
	}
	return analysis.NamedType(ptr.Elem(), analysis.BufPoolPath, "Buf")
}

func identVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}
