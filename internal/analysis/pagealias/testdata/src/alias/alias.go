// Package alias is the pagealias fixture: each function is one lifetime
// shape the analyzer must flag (// want) or must leave alone. The
// helpers at the top exercise the interprocedural summary layer — the
// analyzer has no annotations to go on, only their computed summaries.
package alias

import "vecstudy/internal/pg/buffer"

type sink struct{ data []byte }

var global []byte

// view returns page bytes of its parameter. Legal on its own: the
// caller holds the pin, and the summary records the derivation.
func view(b *buffer.Buf) []byte { return b.Page() }

// sub derives through two helper hops.
func sub(b *buffer.Buf) []byte { return view(b)[8:16] }

// --- violations -------------------------------------------------------------

// useAfterRelease reads the page view after dropping the pin.
func useAfterRelease(p *buffer.Pool, rel buffer.RelID) byte {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0
	}
	pg := buf.Page()
	buf.Release()
	return pg[0] // want "pg is derived from the pinned page of buf"
}

// throughHelper is the same bug with the derivation laundered through
// two helper calls — only the summaries connect v to buf.
func throughHelper(p *buffer.Pool, rel buffer.RelID) byte {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0
	}
	v := sub(buf)
	buf.Release()
	return v[3] // want "v is derived from the pinned page of buf"
}

// mayReleased uses the view after a branch that may have released.
func mayReleased(p *buffer.Pool, rel buffer.RelID, cond bool) byte {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0
	}
	pg := buf.Page()
	if cond {
		buf.Release()
	}
	x := pg[1] // want "pg is derived from the pinned page of buf"
	if !cond {
		buf.Release()
	}
	return x
}

// storeField parks a view in a struct that does not carry the pin.
func storeField(p *buffer.Pool, rel buffer.RelID, s *sink) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return
	}
	s.data = buf.Page() // want "escapes into a struct field"
	buf.Release()
}

// storeGlobal parks a view in a package variable.
func storeGlobal(p *buffer.Pool, rel buffer.RelID) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return
	}
	global = view(buf) // want "escapes into package variable global"
	buf.Release()
}

// sendView puts a view on a channel; the receiver outlives the pin.
func sendView(p *buffer.Pool, rel buffer.RelID, ch chan []byte) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return
	}
	ch <- buf.Page() // want "sent on a channel"
	buf.Release()
}

// goCapture hands a view to a goroutine that may run after Release.
func goCapture(p *buffer.Pool, rel buffer.RelID) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return
	}
	pg := buf.Page()
	go func() {
		_ = pg[0] // want "captured by a goroutine"
	}()
	buf.Release()
}

// returnLocalView hands the caller a view whose pin stays (deferred)
// inside this frame.
func returnLocalView(p *buffer.Pool, rel buffer.RelID) []byte {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return nil
	}
	defer buf.Release()
	return buf.Page() // want "the pin does not travel with it"
}

// --- must not flag ----------------------------------------------------------

// callbackBorrow is the sanctioned zero-copy idiom: views flow DOWN the
// stack as call arguments while the pin is held.
func callbackBorrow(p *buffer.Pool, rel buffer.RelID, fn func([]byte)) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	fn(sub(buf))
	buf.Release()
	return nil
}

// copied snapshots the bytes; the copy owes the pin nothing.
func copied(p *buffer.Pool, rel buffer.RelID) []byte {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return nil
	}
	out := append([]byte(nil), buf.Page()...)
	buf.Release()
	return out
}

// scalarOut extracts a scalar; scalars never carry derivation.
func scalarOut(p *buffer.Pool, rel buffer.RelID) uint32 {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return 0
	}
	n := uint32(buf.Page()[0])
	buf.Release()
	return n
}

// escort carries the pin next to the views it covers: the
// pin-escorted-holder rule (ivfflat's bucketScanScratch shape).
type escort struct {
	pin  *buffer.Buf
	data []byte
}

func escorted(p *buffer.Pool, rel buffer.RelID, e *escort) error {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return err
	}
	e.data = buf.Page()
	e.pin = buf
	return nil
}

// openView is the checked ownership-transfer shape: pin and view travel
// to the caller together, under the directive pinrelease verifies.
//
//vetvec:ownership-transfer
func openView(p *buffer.Pool, rel buffer.RelID) (*buffer.Buf, []byte, error) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return nil, nil, err
	}
	return buf, buf.Page(), nil
}

// blessedStore provably copies before the pin drops and says so.
func blessedStore(p *buffer.Pool, rel buffer.RelID, s *sink) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return
	}
	s.data = buf.Page()[0:2:2] //vetvec:page-copied — consumed synchronously before Release
	use(s.data)
	s.data = nil
	buf.Release()
}

func use([]byte) {}

// localAssembly builds views in locals and copies before they leave.
func localAssembly(p *buffer.Pool, rel buffer.RelID) ([]byte, error) {
	buf, err := p.Pin(rel, 0)
	if err != nil {
		return nil, err
	}
	var rows [][]byte
	pg := buf.Page()
	rows = append(rows, pg[0:4], pg[4:8])
	out := append([]byte(nil), rows[0]...)
	buf.Release()
	return out, nil
}
