package pagealias_test

import (
	"testing"

	"vecstudy/internal/analysis/analysistest"
	"vecstudy/internal/analysis/pagealias"
)

func TestPageAlias(t *testing.T) {
	analysistest.Run(t, ".", pagealias.Analyzer, "alias")
}
