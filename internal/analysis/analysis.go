// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a name
// and a Run function, a Pass hands the Run function one type-checked
// package, and diagnostics are reported back through the Pass.
//
// It exists because this repository's invariants — every pinned buffer
// released on every path, no blocking calls under a buffer-pool mutex,
// SQLSTATE codes always drawn from declared constants, no
// fire-and-forget goroutines on serving paths — are load-bearing for
// the measurements the paper reproduction makes, and convention alone
// does not keep them true as the tree grows. PostgreSQL enforces the
// same class of invariant mechanically (CHECK_FOR_LEAKED_BUFFERS,
// LWLockHeldByMe assertions); cmd/vetvec is this codebase's analogue.
//
// The x/tools module is deliberately not imported: the build must work
// from a clean module cache with no network, so the loader
// (internal/analysis/load) resolves dependency type information through
// `go list -export`, and the fixture runner
// (internal/analysis/analysistest) re-implements the `// want` comment
// protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description, shown by `vetvec -help`.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Report.
	Run func(*Pass) error
}

// Pass is the input to one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report delivers one diagnostic.
	Report func(Diagnostic)

	// Summaries is the module-wide interprocedural summary table (see
	// summary.go), built once over every loaded package and shared by
	// all passes. May be nil, in which case analyzers fall back to
	// per-function reasoning.
	Summaries *Summaries

	directives map[string]map[int][]string // filename -> line -> directive names
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix is the comment prefix of vetvec control comments, e.g.
// //vetvec:ownership-transfer or //vetvec:locked-io.
const DirectivePrefix = "vetvec:"

// buildDirectives scans every comment of every file for //vetvec:NAME
// directives and indexes them by (file, line).
func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name := strings.TrimPrefix(text, DirectivePrefix)
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
}

// Suppressed reports whether a //vetvec:name directive appears on the
// same line as pos or on the line directly above it.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	position := p.Fset.Position(pos)
	byLine := p.directives[position.Filename]
	if byLine == nil {
		return false
	}
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, d := range byLine[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// FuncDirective reports whether fn (a FuncDecl or FuncLit) carries the
// //vetvec:name directive: in the doc comment of a FuncDecl, or on the
// func's opening line or the line directly above it.
func (p *Pass) FuncDirective(fn ast.Node, name string) bool {
	if fd, ok := fn.(*ast.FuncDecl); ok && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, DirectivePrefix+name) {
				return true
			}
		}
	}
	return p.Suppressed(fn.Pos(), name)
}

// --- shared type-query helpers ---------------------------------------------

// IsMethod reports whether call invokes the method pkgPath.typeName.name
// (receiver may be a pointer; typeName may also be an interface).
func IsMethod(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	// A method's *types.Func also reports the declaring package: require
	// no receiver so kern.L2Sqr never matches the package-level L2Sqr.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// NamedType reports whether t (or the pointee of t) is the named type
// pkgPath.typeName.
func NamedType(t types.Type, pkgPath, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
