// Package dataset supplies the workloads for every experiment: seeded
// synthetic stand-ins for the paper's six real datasets, fvecs/ivecs file
// IO so the real files can be substituted when available, brute-force
// ground truth, and recall computation.
//
// Substitution note (DESIGN.md §2): the original SIFT/GIST/Deep/Turing
// files are not redistributable and total tens of GB. Every root cause
// in the paper depends on dimensionality, cardinality and cluster
// structure rather than the specific embedding distribution, so the
// generators produce Gaussian mixtures matching each dataset's shape. A
// scale factor shrinks cardinality for laptop-sized runs while preserving
// the c = √n rule and all index parameters.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"vecstudy/internal/minheap"
	"vecstudy/internal/vec"
)

// Profile describes one of the paper's datasets (Table I).
type Profile struct {
	Name        string
	Dim         int
	FullN       int // cardinality at paper scale
	FullQueries int
	// LatentClusters controls the Gaussian mixture used by the generator;
	// real embedding datasets are strongly clustered, which is what makes
	// IVF probing effective.
	LatentClusters int
	// Spread is the standard deviation of cluster centers around the
	// origin; Noise is the within-cluster standard deviation.
	Spread, Noise float64
	// PQM is the paper's per-dataset default for the IVF_PQ sub-vector
	// count m (Table II).
	PQM int
}

// Profiles lists the six datasets of Table I in paper order.
var Profiles = []Profile{
	{Name: "sift1m", Dim: 128, FullN: 1_000_000, FullQueries: 10_000, LatentClusters: 200, Spread: 30, Noise: 12, PQM: 16},
	{Name: "gist1m", Dim: 960, FullN: 1_000_000, FullQueries: 1_000, LatentClusters: 150, Spread: 8, Noise: 4, PQM: 60},
	{Name: "deep1m", Dim: 256, FullN: 1_000_000, FullQueries: 1_000, LatentClusters: 180, Spread: 12, Noise: 6, PQM: 16},
	{Name: "sift10m", Dim: 128, FullN: 10_000_000, FullQueries: 10_000, LatentClusters: 400, Spread: 30, Noise: 12, PQM: 16},
	{Name: "deep10m", Dim: 96, FullN: 10_000_000, FullQueries: 10_000, LatentClusters: 350, Spread: 12, Noise: 6, PQM: 12},
	{Name: "turing10m", Dim: 100, FullN: 10_000_000, FullQueries: 10_000, LatentClusters: 350, Spread: 10, Noise: 5, PQM: 10},
}

// ProfileByName looks a profile up by its Table I name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// Dataset is a generated (or loaded) workload: base vectors, query
// vectors, and optionally brute-force ground truth.
type Dataset struct {
	Name    string
	Dim     int
	Base    *vec.Flat
	Queries *vec.Flat
	// GroundTruth[q] lists the IDs (row indices into Base) of the true
	// nearest neighbors of query q, ascending by distance. Populated by
	// ComputeGroundTruth or loaded from an ivecs file.
	GroundTruth [][]int32
}

// N returns the number of base vectors.
func (ds *Dataset) N() int { return ds.Base.N() }

// NQ returns the number of query vectors.
func (ds *Dataset) NQ() int { return ds.Queries.N() }

// GenOptions controls Generate.
type GenOptions struct {
	// Scale shrinks FullN and FullQueries; 1.0 is paper scale. Values in
	// (0,1) produce laptop-scale datasets. 0 defaults to 0.02.
	Scale float64
	// Seed makes generation deterministic; the same (profile, scale,
	// seed) always produces byte-identical data.
	Seed int64
	// MaxQueries caps the query count regardless of scale (benchmarks
	// that average over queries rarely need all 10 000).
	MaxQueries int
}

// Generate synthesizes a dataset for the given profile.
func Generate(p Profile, opt GenOptions) *Dataset {
	scale := opt.Scale
	if scale <= 0 {
		scale = 0.02
	}
	n := int(float64(p.FullN) * scale)
	if n < 1000 {
		n = 1000
	}
	nq := int(float64(p.FullQueries) * scale)
	if nq < 20 {
		nq = 20
	}
	if opt.MaxQueries > 0 && nq > opt.MaxQueries {
		nq = opt.MaxQueries
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(len(p.Name))<<32 ^ int64(p.Dim)))

	centers := make([]float32, p.LatentClusters*p.Dim)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64() * p.Spread)
	}
	// Cluster populations follow a Zipf-ish skew, as real embedding
	// corpora do; this matters for IVF bucket-size distributions.
	weights := make([]float64, p.LatentClusters)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / float64(i+3)
		wsum += weights[i]
	}
	cum := make([]float64, p.LatentClusters)
	var acc float64
	for i, w := range weights {
		acc += w / wsum
		cum[i] = acc
	}
	pick := func() int {
		r := rng.Float64()
		i := sort.SearchFloat64s(cum, r)
		if i >= p.LatentClusters {
			i = p.LatentClusters - 1
		}
		return i
	}
	genInto := func(m *vec.Flat, count int) {
		row := make([]float32, p.Dim)
		for i := 0; i < count; i++ {
			ci := pick()
			c := centers[ci*p.Dim : (ci+1)*p.Dim]
			for j := 0; j < p.Dim; j++ {
				row[j] = c[j] + float32(rng.NormFloat64()*p.Noise)
			}
			m.Append(row)
		}
	}
	ds := &Dataset{Name: p.Name, Dim: p.Dim, Base: vec.NewFlat(p.Dim, n), Queries: vec.NewFlat(p.Dim, nq)}
	genInto(ds.Base, n)
	genInto(ds.Queries, nq)
	return ds
}

// refKern pins ground-truth arithmetic to the ref kernel: the oracle a
// recall number is measured against must not drift with whichever
// optimized kernels this host registered.
var refKern = vec.Ref()

// ComputeGroundTruth fills GroundTruth with the exact top-k neighbors of
// every query by brute force, parallelized across queries.
func (ds *Dataset) ComputeGroundTruth(k, threads int) {
	n, d := ds.Base.N(), ds.Dim
	if k > n {
		k = n
	}
	gt := make([][]int32, ds.Queries.N())
	parallelFor(ds.Queries.N(), threads, func(q int) {
		heap := minheap.NewTopK(k)
		query := ds.Queries.Row(q)
		for i := 0; i < n; i++ {
			heap.Push(int64(i), refKern.L2Sqr(query, ds.Base.Data[i*d:(i+1)*d]))
		}
		items := heap.Results()
		ids := make([]int32, len(items))
		for j, it := range items {
			ids[j] = int32(it.ID)
		}
		gt[q] = ids
	})
	ds.GroundTruth = gt
}

// Recall computes recall@k: the mean fraction of each query's true top-k
// IDs present in the returned top-k. results[q] holds the IDs returned for
// query q (only the first k entries are considered).
func (ds *Dataset) Recall(results [][]int64, k int) float64 {
	if len(ds.GroundTruth) == 0 {
		panic("dataset: ground truth not computed")
	}
	var total, hits float64
	for q, res := range results {
		truth := ds.GroundTruth[q]
		if len(truth) > k {
			truth = truth[:k]
		}
		set := make(map[int64]struct{}, len(truth))
		for _, id := range truth {
			set[int64(id)] = struct{}{}
		}
		if len(res) > k {
			res = res[:k]
		}
		for _, id := range res {
			if _, ok := set[id]; ok {
				hits++
			}
		}
		total += float64(len(truth))
	}
	if total == 0 {
		return 0
	}
	return hits / total
}

// NumClusters returns the paper's cluster-count rule c = √n applied to the
// (possibly scaled) dataset.
func (ds *Dataset) NumClusters() int {
	c := 1
	for c*c < ds.N() {
		c++
	}
	if c < 4 {
		c = 4
	}
	return c
}

func parallelFor(n, threads int, fn func(i int)) {
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	type job struct{ lo, hi int }
	per := (n + threads - 1) / threads
	done := make(chan struct{}, threads)
	workers := 0
	for t := 0; t < threads; t++ {
		lo := t * per
		if lo >= n {
			break
		}
		hi := lo + per
		if hi > n {
			hi = n
		}
		workers++
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
}
