package dataset

import (
	"path/filepath"
	"testing"

	"vecstudy/internal/vec"
)

func tiny(t *testing.T) *Dataset {
	t.Helper()
	p, err := ProfileByName("sift1m")
	if err != nil {
		t.Fatal(err)
	}
	return Generate(p, GenOptions{Scale: 0.002, Seed: 1, MaxQueries: 25})
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Dim != p.Dim {
			t.Errorf("ProfileByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("accepted unknown profile")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := tiny(t)
	if ds.Dim != 128 {
		t.Errorf("Dim = %d", ds.Dim)
	}
	if ds.N() != 2000 {
		t.Errorf("N = %d, want 2000 (0.002 × 1M)", ds.N())
	}
	if ds.NQ() != 20 {
		t.Errorf("NQ = %d, want 20 (floor at 20)", ds.NQ())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("deep1m")
	a := Generate(p, GenOptions{Scale: 0.001, Seed: 9})
	b := Generate(p, GenOptions{Scale: 0.001, Seed: 9})
	for i := range a.Base.Data {
		if a.Base.Data[i] != b.Base.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Generate(p, GenOptions{Scale: 0.001, Seed: 10})
	same := true
	for i := range a.Base.Data {
		if a.Base.Data[i] != c.Base.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGroundTruthAndRecall(t *testing.T) {
	ds := tiny(t)
	ds.ComputeGroundTruth(10, 4)
	if len(ds.GroundTruth) != ds.NQ() {
		t.Fatalf("ground truth rows %d != queries %d", len(ds.GroundTruth), ds.NQ())
	}
	// Ground truth rows must be sorted ascending by true distance.
	q0 := ds.Queries.Row(0)
	prev := float32(-1)
	for _, id := range ds.GroundTruth[0] {
		d := vec.L2Sqr(q0, ds.Base.Row(int(id)))
		if d < prev {
			t.Fatalf("ground truth not sorted: %v after %v", d, prev)
		}
		prev = d
	}
	// Perfect results give recall 1; disjoint results give 0.
	perfect := make([][]int64, ds.NQ())
	disjoint := make([][]int64, ds.NQ())
	for q := range perfect {
		ids := make([]int64, len(ds.GroundTruth[q]))
		for i, id := range ds.GroundTruth[q] {
			ids[i] = int64(id)
		}
		perfect[q] = ids
		disjoint[q] = []int64{int64(ds.N() + 1), int64(ds.N() + 2)}
	}
	if r := ds.Recall(perfect, 10); r != 1 {
		t.Errorf("perfect recall = %v", r)
	}
	if r := ds.Recall(disjoint, 10); r != 0 {
		t.Errorf("disjoint recall = %v", r)
	}
}

func TestGroundTruthSerialMatchesParallel(t *testing.T) {
	ds := tiny(t)
	ds.ComputeGroundTruth(5, 1)
	serial := ds.GroundTruth
	ds.ComputeGroundTruth(5, 8)
	for q := range serial {
		for i := range serial[q] {
			if serial[q][i] != ds.GroundTruth[q][i] {
				t.Fatalf("query %d rank %d: serial %d vs parallel %d", q, i, serial[q][i], ds.GroundTruth[q][i])
			}
		}
	}
}

func TestNumClusters(t *testing.T) {
	ds := tiny(t)
	c := ds.NumClusters()
	if c*c < ds.N() || (c-1)*(c-1) >= ds.N() {
		t.Errorf("NumClusters = %d for n = %d, want ceil(sqrt)", c, ds.N())
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fvecs")
	m := vec.NewFlat(4, 3)
	m.Append([]float32{1, 2, 3, 4})
	m.Append([]float32{5, 6, 7, 8})
	m.Append([]float32{-1, 0, 1, 2.5})
	if err := WriteFvecs(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 || got.D != 4 {
		t.Fatalf("shape %d×%d", got.N(), got.D)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
	// maxRows caps the read.
	capped, err := ReadFvecs(path, 2)
	if err != nil || capped.N() != 2 {
		t.Fatalf("capped read: %v rows, err %v", capped.N(), err)
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.ivecs")
	rows := [][]int32{{1, 2, 3}, {7, 8, 9}}
	if err := WriteIvecs(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestReadFvecsErrors(t *testing.T) {
	if _, err := ReadFvecs(filepath.Join(t.TempDir(), "missing.fvecs"), 0); err == nil {
		t.Error("read of missing file succeeded")
	}
}
