package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"vecstudy/internal/vec"
)

// This file implements the TEXMEX fvecs/ivecs/bvecs formats used to
// distribute SIFT1M, GIST1M, and friends: each vector is stored as a
// little-endian int32 dimension header followed by the components
// (float32 / int32 / uint8). Dropping the real files next to the harness
// replaces the synthetic generators.

// ReadFvecs loads an entire .fvecs file into a Flat matrix. maxRows caps
// the number of vectors read (0 = all).
func ReadFvecs(path string, maxRows int) (*vec.Flat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFvecs(bufio.NewReaderSize(f, 1<<20), maxRows, path)
}

func readFvecs(r io.Reader, maxRows int, name string) (*vec.Flat, error) {
	var flat *vec.Flat
	var hdr [4]byte
	rows := 0
	for maxRows == 0 || rows < maxRows {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: reading %s: %w", name, err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: %s: implausible dimension %d at row %d", name, d, rows)
		}
		if flat == nil {
			flat = vec.NewFlat(d, 1024)
		} else if flat.D != d {
			return nil, fmt.Errorf("dataset: %s: dimension changed from %d to %d at row %d", name, flat.D, d, rows)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("dataset: %s: truncated row %d: %w", name, rows, err)
		}
		row := make([]float32, d)
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		flat.Append(row)
		rows++
	}
	if flat == nil {
		return nil, fmt.Errorf("dataset: %s: empty fvecs file", name)
	}
	return flat, nil
}

// WriteFvecs writes a Flat matrix in fvecs format.
func WriteFvecs(path string, m *vec.Flat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(m.D))
	buf := make([]byte, 4*m.D)
	for i := 0; i < m.N(); i++ {
		if _, err := w.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		row := m.Row(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIvecs loads an .ivecs file (e.g., TEXMEX ground-truth files) as a
// slice of int32 rows.
func ReadIvecs(path string, maxRows int) ([][]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var out [][]int32
	var hdr [4]byte
	for maxRows == 0 || len(out) < maxRows {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: reading %s: %w", path, err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: %s: implausible row length %d", path, d)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("dataset: %s: truncated row %d: %w", path, len(out), err)
		}
		row := make([]int32, d)
		for i := range row {
			row[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteIvecs writes rows in ivecs format.
func WriteIvecs(path string, rows [][]int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(row)))
		if _, err := w.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(hdr[:], uint32(v))
			if _, err := w.Write(hdr[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
