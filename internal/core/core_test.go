package core

import (
	"testing"

	"vecstudy/internal/testutil"
)

func TestDefaultsResolve(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	if p.C != ds.NumClusters() {
		t.Errorf("C = %d, want √n = %d", p.C, ds.NumClusters())
	}
	if p.K > ds.N()/10 {
		t.Errorf("K = %d not clamped for n = %d", p.K, ds.N())
	}
	if p.M != 16 || p.BNN != 16 || p.EFB != 40 || p.EFS != 200 || p.NProbe != 20 {
		t.Errorf("Table II defaults wrong: %+v", p)
	}
	if !p.UseGemm || !p.PrecomputeTable {
		t.Error("specialized-engine optimizations should default on")
	}
}

func TestCompareBothIVFFlat(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	cmp, err := CompareBoth(IVFFlat, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions from the paper. At this tiny test scale the
	// K-means training sample covers most of the data, so total build
	// time is training-dominated and regime-dependent; the scale-free
	// invariant is the *adding phase* (RC#1: SGEMM-batched vs naive
	// assignment), which Fig 3 shows dominating at paper scale.
	if cmp.Specialized.AddTime >= cmp.Generalized.AddTime {
		t.Errorf("generalized adding phase should be slower: spec %v vs gen %v",
			cmp.Specialized.AddTime, cmp.Generalized.AddTime)
	}
	if cmp.SearchGapX() <= 1 {
		t.Errorf("generalized IVF_FLAT search should be slower (gap %.2fx)", cmp.SearchGapX())
	}
	if cmp.SpecSearch.Recall < 0.8 || cmp.GenSearch.Recall < 0.7 {
		t.Errorf("recalls too low: spec %.3f gen %.3f", cmp.SpecSearch.Recall, cmp.GenSearch.Recall)
	}
	// Fig 11: IVF_FLAT sizes comparable (within 2.5× either way).
	ratio := cmp.SizeGapX()
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("IVF_FLAT size ratio %.2f, want near 1 (Fig 11)", ratio)
	}
}

func TestCompareBothHNSWSizeBlowup(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	cmp, err := CompareBoth(HNSW, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SizeGapX() < 2 {
		t.Errorf("HNSW size gap %.2fx, paper reports 2.9–13.3× (Fig 13)", cmp.SizeGapX())
	}
	if cmp.SpecSearch.Recall < 0.8 || cmp.GenSearch.Recall < 0.8 {
		t.Errorf("HNSW recalls too low: spec %.3f gen %.3f", cmp.SpecSearch.Recall, cmp.GenSearch.Recall)
	}
	if cmp.SearchGapX() <= 1 {
		t.Errorf("generalized HNSW search should be slower (gap %.2fx)", cmp.SearchGapX())
	}
}

func TestFaissStarMatchesGeneralizedClustering(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	gen, _, err := BuildGeneralized(IVFFlat, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	star, err := BuildFaissStar(gen, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	// With identical clustering and identical nprobe, the two indexes
	// must return the same IDs for every query.
	for q := 0; q < 5; q++ {
		a, err := gen.Search(ds.Queries.Row(q), 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := star.Search(ds.Queries.Row(q), 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: generalized %d vs Faiss* %d", q, i, a[i], b[i])
			}
		}
	}
}

func TestRunSearchReportsRecall(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	spec, _, err := BuildSpecialized(IVFFlat, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSearch(spec, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NQ != ds.NQ() || res.Recall < 0 || res.AvgLatency <= 0 {
		t.Errorf("bad search result: %+v", res)
	}
}

func TestIVFPQBothEngines(t *testing.T) {
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	cmp, err := CompareBoth(IVFPQ, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SearchGapX() <= 1 {
		t.Errorf("generalized IVF_PQ search should be slower (gap %.2fx)", cmp.SearchGapX())
	}
	// PQ sizes comparable between engines (Fig 12) — and both lossy.
	if r := cmp.SizeGapX(); r < 0.3 || r > 3.5 {
		t.Errorf("IVF_PQ size ratio %.2f, want near 1 (Fig 12)", r)
	}
}

func TestBaselineSlowestGeneralized(t *testing.T) {
	// Fig 2's ordering: pgvector-style baseline slower than PASE-style.
	ds := testutil.SmallDataset(t)
	p := Defaults(ds)
	p.K = 10
	gen, _, err := BuildGeneralized(IVFFlat, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	base, _, err := BuildGeneralizedBaseline(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if err := WarmUp(gen, ds, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := WarmUp(base, ds, 10, 4); err != nil {
		t.Fatal(err)
	}
	genRes, err := RunSearch(gen, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := RunSearch(base, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Recall < genRes.Recall-0.05 {
		t.Errorf("baseline recall %.3f far below PASE-style %.3f", baseRes.Recall, genRes.Recall)
	}
	if baseRes.Total < genRes.Total {
		t.Logf("note: baseline (%v) beat PASE-style (%v) at this tiny scale; Fig 2's ordering is asserted in the benchmark harness",
			baseRes.Total, genRes.Total)
	}
}
