package core

import (
	"fmt"

	"vecstudy/internal/dataset"
	"vecstudy/internal/faiss/ivfflat"
	paseivfflat "vecstudy/internal/pase/ivfflat"
)

// BuildFaissStar reproduces the paper's Fig 15 construction: a
// specialized IVF_FLAT index ("Faiss*") that uses the *generalized*
// index's centroids and exact cluster assignments, isolating the K-means
// implementation difference (RC#5) from everything else.
func BuildFaissStar(gen *GeneralizedIndex, ds *dataset.Dataset, p Params) (*SpecializedIndex, error) {
	paseIdx, ok := gen.AM().(*paseivfflat.Index)
	if !ok {
		return nil, fmt.Errorf("core: Faiss* requires a generalized ivfflat index, have %s", gen.AM().AM())
	}
	star, err := ivfflat.New(ivfflat.Options{
		Dim: ds.Dim, NList: paseIdx.NList(), UseGemm: p.UseGemm,
		Threads: p.BuildThreads, Seed: p.Seed, Prof: p.Prof,
	})
	if err != nil {
		return nil, err
	}
	if err := star.SetCentroids(paseIdx.Centroids()); err != nil {
		return nil, err
	}

	// Map each indexed TID back to its dataset row ID, then feed the
	// exact same clustering into the specialized index.
	tidAssign, err := paseIdx.Assignments()
	if err != nil {
		return nil, err
	}
	assign := make([]int32, ds.N())
	ids := make([]int64, ds.N())
	found := 0
	tbl := gen.Table()
	for tid, cluster := range tidAssign {
		var rowID int64
		//vetvec:visibility-checked — build-time pass over a freshly loaded, churn-free table
		err := tbl.Get(tid, func(tup []byte) error {
			vals, err := tbl.Schema().Decode(tup)
			if err != nil {
				return err
			}
			rowID = int64(vals[0].(int32))
			return nil
		})
		if err != nil {
			return nil, err
		}
		if rowID < 0 || rowID >= int64(ds.N()) {
			return nil, fmt.Errorf("core: row id %d out of dataset range", rowID)
		}
		assign[rowID] = cluster
		ids[rowID] = rowID
		found++
	}
	if found != ds.N() {
		return nil, fmt.Errorf("core: transplant covered %d of %d rows", found, ds.N())
	}
	if err := star.AddPreassigned(ds.Base.Data, ds.N(), ids, assign); err != nil {
		return nil, err
	}
	return &SpecializedIndex{kind: IVFFlat, params: p, ivf: star}, nil
}
