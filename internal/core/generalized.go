package core

import (
	"fmt"
	"strconv"
	"time"

	"vecstudy/internal/dataset"
	paseivfflat "vecstudy/internal/pase/ivfflat"
	paseivfpq "vecstudy/internal/pase/ivfpq"
	"vecstudy/internal/pg/am"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/heap"

	_ "vecstudy/internal/pase/all" // register the generalized AMs
)

// GeneralizedIndex wraps a PASE-style index, its database, and the heap
// table it indexes. Searches return dataset row IDs by resolving each
// result TID through the heap — the same tuple fetches the SQL executor
// performs for `SELECT id ... LIMIT k`.
type GeneralizedIndex struct {
	kind   IndexKind
	engine Engine
	params Params
	db     *db.DB
	table  *heap.Table
	idx    am.Index
	scan   map[string]string
}

// amName maps (kind, engine) to the registered access-method name.
func amName(kind IndexKind, engine Engine) (string, error) {
	if engine == GeneralizedBaseline {
		if kind != IVFFlat {
			return "", fmt.Errorf("core: the pgvector-style baseline only implements IVF_FLAT")
		}
		return "pgv_ivfflat", nil
	}
	switch kind {
	case IVFFlat:
		return "ivfflat", nil
	case IVFPQ:
		return "ivfpq", nil
	case HNSW:
		return "hnsw", nil
	}
	return "", fmt.Errorf("core: unknown index kind %q", kind)
}

// BuildGeneralized loads the dataset into a fresh in-memory database
// table (id int, vec float[]) and builds the requested index on it.
// The returned BuildResult's Total covers only the index build (the
// paper's Figs 3–7 measure CREATE INDEX, not the data load).
func BuildGeneralized(kind IndexKind, ds *dataset.Dataset, p Params) (*GeneralizedIndex, BuildResult, error) {
	return buildGeneralized(kind, Generalized, ds, p)
}

// BuildGeneralizedBaseline builds the pgvector-style Fig 2 baseline.
func BuildGeneralizedBaseline(ds *dataset.Dataset, p Params) (*GeneralizedIndex, BuildResult, error) {
	return buildGeneralized(IVFFlat, GeneralizedBaseline, ds, p)
}

func buildGeneralized(kind IndexKind, engine Engine, ds *dataset.Dataset, p Params) (*GeneralizedIndex, BuildResult, error) {
	res := BuildResult{Engine: engine, Kind: kind, N: ds.N()}
	name, err := amName(kind, engine)
	if err != nil {
		return nil, res, err
	}
	frames := p.BufferFrames
	if frames == 0 {
		// Size the pool to keep the table and index memory-resident, per
		// the paper's methodology (Sec III).
		pageSize := p.PageSize
		if pageSize == 0 {
			pageSize = 8192
		}
		dataBytes := int64(ds.N()) * (int64(ds.Dim)*4 + 64)
		frames = int(6*dataBytes/int64(pageSize)) + 1024
	}
	partitions := p.BufferPartitions
	if partitions == 0 {
		partitions = 1 // paper-faithful single-lock pool (RC#2/RC#3)
	}
	d, err := db.Open(db.Config{PageSize: p.PageSize, BufferFrames: frames, BufferPartitions: partitions, Prof: p.Prof})
	if err != nil {
		return nil, res, err
	}
	schema := heap.Schema{Cols: []heap.Column{
		{Name: "id", Type: heap.Int4},
		{Name: "vec", Type: heap.Float4Array},
	}}
	tbl, err := d.CreateTable("t", schema)
	if err != nil {
		d.Close()
		return nil, res, err
	}
	row := make([]any, 2)
	for i := 0; i < ds.N(); i++ {
		row[0], row[1] = int32(i), ds.Base.Row(i)
		if _, err := tbl.Insert(row); err != nil {
			d.Close()
			return nil, res, err
		}
	}

	opts := map[string]string{"seed": strconv.FormatInt(p.Seed, 10)}
	switch kind {
	case IVFFlat:
		opts["clusters"] = strconv.Itoa(p.C)
		opts["sample_ratio"] = strconv.FormatFloat(p.SR, 'g', -1, 64)
	case IVFPQ:
		opts["clusters"] = strconv.Itoa(p.C)
		opts["sample_ratio"] = strconv.FormatFloat(p.SR, 'g', -1, 64)
		opts["m"] = strconv.Itoa(p.M)
		opts["ksub"] = strconv.Itoa(p.KSub)
	case HNSW:
		opts["bnn"] = strconv.Itoa(p.BNN)
		opts["efb"] = strconv.Itoa(p.EFB)
	}
	for k, v := range p.ExtraAMOpts {
		opts[k] = v
	}

	start := time.Now()
	idx, err := d.CreateIndex("bench_idx", "t", "vec", name, opts)
	if err != nil {
		d.Close()
		return nil, res, err
	}
	res.Total = time.Since(start)
	switch ix := idx.(type) {
	case *paseivfflat.Index:
		st := ix.Stats()
		res.TrainTime, res.AddTime = st.TrainTime, st.AddTime
	case *paseivfpq.Index:
		st := ix.Stats()
		res.TrainTime, res.AddTime = st.TrainTime, st.AddTime
	}
	size, err := idx.SizeBytes()
	if err != nil {
		d.Close()
		return nil, res, err
	}
	res.SizeBytes = size

	gi := &GeneralizedIndex{
		kind: kind, engine: engine, params: p, db: d, table: tbl, idx: idx,
		scan: map[string]string{
			"nprobe":  strconv.Itoa(p.NProbe),
			"efs":     strconv.Itoa(p.EFS),
			"threads": strconv.Itoa(p.SearchThreads),
		},
	}
	return gi, res, nil
}

// Engine implements Index.
func (gi *GeneralizedIndex) Engine() Engine { return gi.engine }

// Kind implements Index.
func (gi *GeneralizedIndex) Kind() IndexKind { return gi.kind }

// Search implements Index: index scan, then one heap tuple fetch per
// result to project the id column. A hit whose tuple has been deleted
// since the index was built is skipped, not resurrected.
func (gi *GeneralizedIndex) Search(query []float32, k int) ([]int64, error) {
	hits, err := gi.idx.Search(query, k, gi.scan)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(hits))
	for _, h := range hits {
		_, err := gi.table.GetVisible(h.TID, func(tup []byte) error {
			vals, err := gi.table.Schema().Decode(tup)
			if err != nil {
				return err
			}
			ids = append(ids, int64(vals[0].(int32)))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// SizeBytes implements Index.
func (gi *GeneralizedIndex) SizeBytes() int64 {
	size, err := gi.idx.SizeBytes()
	if err != nil {
		return -1
	}
	return size
}

// Close implements Index.
func (gi *GeneralizedIndex) Close() error { return gi.db.Close() }

// SetSearchParams adjusts scan-time knobs between workloads.
func (gi *GeneralizedIndex) SetSearchParams(nprobe, efs, threads int) {
	if nprobe > 0 {
		gi.scan["nprobe"] = strconv.Itoa(nprobe)
	}
	if efs > 0 {
		gi.scan["efs"] = strconv.Itoa(efs)
	}
	if threads > 0 {
		gi.scan["threads"] = strconv.Itoa(threads)
	}
}

// AMParams exposes the scan-parameter map passed to the access method on
// every search; ablations use it to set AM-specific knobs (e.g. heap=k).
func (gi *GeneralizedIndex) AMParams() map[string]string { return gi.scan }

// AM exposes the underlying access method (for centroid transplants and
// structure inspection).
func (gi *GeneralizedIndex) AM() am.Index { return gi.idx }

// DB exposes the backing database (buffer-pool stats, SQL sessions).
func (gi *GeneralizedIndex) DB() *db.DB { return gi.db }

// Table exposes the indexed heap table.
func (gi *GeneralizedIndex) Table() *heap.Table { return gi.table }
