package core

import (
	"fmt"
	"time"

	"vecstudy/internal/dataset"
	"vecstudy/internal/faiss/hnsw"
	"vecstudy/internal/faiss/ivfflat"
	"vecstudy/internal/faiss/ivfpq"
	"vecstudy/internal/minheap"
)

// SpecializedIndex wraps one of the in-memory indexes behind the
// engine-neutral Index interface.
type SpecializedIndex struct {
	kind    IndexKind
	params  Params
	ivf     *ivfflat.Index
	pqIdx   *ivfpq.Index
	hnswIdx *hnsw.Index
}

// BuildSpecialized trains and loads a specialized (Faiss-style) index
// over the dataset's base vectors.
func BuildSpecialized(kind IndexKind, ds *dataset.Dataset, p Params) (*SpecializedIndex, BuildResult, error) {
	res := BuildResult{Engine: Specialized, Kind: kind, N: ds.N()}
	si := &SpecializedIndex{kind: kind, params: p}
	start := time.Now()
	switch kind {
	case IVFFlat:
		ix, err := ivfflat.New(ivfflat.Options{
			Dim: ds.Dim, NList: p.C, UseGemm: p.UseGemm, Threads: p.BuildThreads,
			KMeansFlavor: p.KMeansFlavor, SampleRatio: p.SR, Seed: p.Seed, Prof: p.Prof,
		})
		if err != nil {
			return nil, res, err
		}
		if err := ix.Train(ds.Base.Data, ds.N()); err != nil {
			return nil, res, err
		}
		if err := ix.Add(ds.Base.Data, ds.N(), nil); err != nil {
			return nil, res, err
		}
		st := ix.Stats()
		res.TrainTime, res.AddTime = st.TrainTime, st.AddTime
		si.ivf = ix
	case IVFPQ:
		ix, err := ivfpq.New(ivfpq.Options{
			Dim: ds.Dim, NList: p.C, M: p.M, KSub: p.KSub,
			UseGemm: p.UseGemm, Threads: p.BuildThreads, KMeansFlavor: p.KMeansFlavor,
			SampleRatio: p.SR, Seed: p.Seed, PrecomputeTable: p.PrecomputeTable, Prof: p.Prof,
		})
		if err != nil {
			return nil, res, err
		}
		if err := ix.Train(ds.Base.Data, ds.N()); err != nil {
			return nil, res, err
		}
		if err := ix.Add(ds.Base.Data, ds.N(), nil); err != nil {
			return nil, res, err
		}
		st := ix.Stats()
		res.TrainTime, res.AddTime = st.TrainTime, st.AddTime
		si.pqIdx = ix
	case HNSW:
		ix, err := hnsw.New(hnsw.Options{Dim: ds.Dim, BNN: p.BNN, EFB: p.EFB, Seed: p.Seed, Prof: p.Prof})
		if err != nil {
			return nil, res, err
		}
		if err := ix.Add(ds.Base.Data, ds.N()); err != nil {
			return nil, res, err
		}
		si.hnswIdx = ix
	default:
		return nil, res, fmt.Errorf("core: unknown index kind %q", kind)
	}
	res.Total = time.Since(start)
	res.SizeBytes = si.SizeBytes()
	return si, res, nil
}

// Engine implements Index.
func (si *SpecializedIndex) Engine() Engine { return Specialized }

// Kind implements Index.
func (si *SpecializedIndex) Kind() IndexKind { return si.kind }

// Search implements Index.
func (si *SpecializedIndex) Search(query []float32, k int) ([]int64, error) {
	var items []minheap.Item
	var err error
	switch si.kind {
	case IVFFlat:
		items, err = si.ivf.Search(query, k, ivfflat.SearchParams{NProbe: si.params.NProbe, Threads: si.params.SearchThreads})
	case IVFPQ:
		items, err = si.pqIdx.Search(query, k, ivfpq.SearchParams{NProbe: si.params.NProbe, Threads: si.params.SearchThreads})
	case HNSW:
		items, err = si.hnswIdx.Search(query, k, si.params.EFS)
	}
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids, nil
}

// SizeBytes implements Index.
func (si *SpecializedIndex) SizeBytes() int64 {
	switch si.kind {
	case IVFFlat:
		return si.ivf.SizeBytes()
	case IVFPQ:
		return si.pqIdx.SizeBytes()
	case HNSW:
		return si.hnswIdx.SizeBytes()
	}
	return 0
}

// Close implements Index (no external resources on this side).
func (si *SpecializedIndex) Close() error { return nil }

// IVF exposes the underlying IVF_FLAT index for centroid-transplant
// experiments (Fig 15).
func (si *SpecializedIndex) IVF() *ivfflat.Index { return si.ivf }

// SetSearchParams adjusts scan-time knobs between workloads without
// rebuilding.
func (si *SpecializedIndex) SetSearchParams(nprobe, efs, threads int) {
	if nprobe > 0 {
		si.params.NProbe = nprobe
	}
	if efs > 0 {
		si.params.EFS = efs
	}
	if threads > 0 {
		si.params.SearchThreads = threads
	}
}
