package core

import (
	"fmt"
	"time"

	"vecstudy/internal/dataset"
)

// RunSearch runs every query of the dataset through the index and
// reports mean latency and recall@k. Ground truth must already be
// computed when recall is wanted (otherwise Recall is -1).
func RunSearch(ix Index, ds *dataset.Dataset, k int) (SearchResult, error) {
	res := SearchResult{Engine: ix.Engine(), Kind: ix.Kind(), NQ: ds.NQ(), Recall: -1}
	results := make([][]int64, ds.NQ())
	start := time.Now()
	for q := 0; q < ds.NQ(); q++ {
		ids, err := ix.Search(ds.Queries.Row(q), k)
		if err != nil {
			return res, fmt.Errorf("core: query %d: %w", q, err)
		}
		results[q] = ids
	}
	res.Total = time.Since(start)
	res.AvgLatency = res.Total / time.Duration(ds.NQ())
	if len(ds.GroundTruth) > 0 {
		res.Recall = ds.Recall(results, k)
	}
	return res, nil
}

// WarmUp runs a handful of queries without measuring, so the paper's
// methodology (warm caches, then average) is honoured.
func WarmUp(ix Index, ds *dataset.Dataset, k, n int) error {
	if n > ds.NQ() {
		n = ds.NQ()
	}
	for q := 0; q < n; q++ {
		if _, err := ix.Search(ds.Queries.Row(q), k); err != nil {
			return err
		}
	}
	return nil
}

// Comparison pairs the two engines' results for one experiment cell.
type Comparison struct {
	Dataset     string
	Kind        IndexKind
	Specialized BuildResult
	Generalized BuildResult
	SpecSearch  SearchResult
	GenSearch   SearchResult
}

// BuildGapX returns how many times slower the generalized build was.
func (c Comparison) BuildGapX() float64 { return Gap(c.Specialized.Total, c.Generalized.Total) }

// SearchGapX returns how many times slower the generalized search was.
func (c Comparison) SearchGapX() float64 { return Gap(c.SpecSearch.Total, c.GenSearch.Total) }

// SizeGapX returns how many times larger the generalized index was.
func (c Comparison) SizeGapX() float64 {
	if c.Specialized.SizeBytes <= 0 {
		return 0
	}
	return float64(c.Generalized.SizeBytes) / float64(c.Specialized.SizeBytes)
}

// CompareBoth builds the same index kind in both engines, runs the same
// search workload, and returns the paired results. This one call is the
// spine of Figs 3, 5, 7, 11–14, 16, 17.
func CompareBoth(kind IndexKind, ds *dataset.Dataset, p Params) (Comparison, error) {
	cmp := Comparison{Dataset: ds.Name, Kind: kind}

	spec, sb, err := BuildSpecialized(kind, ds, p)
	if err != nil {
		return cmp, fmt.Errorf("core: specialized build: %w", err)
	}
	defer spec.Close()
	cmp.Specialized = sb

	gen, gb, err := BuildGeneralized(kind, ds, p)
	if err != nil {
		return cmp, fmt.Errorf("core: generalized build: %w", err)
	}
	defer gen.Close()
	cmp.Generalized = gb

	if err := WarmUp(spec, ds, p.K, 4); err != nil {
		return cmp, err
	}
	if cmp.SpecSearch, err = RunSearch(spec, ds, p.K); err != nil {
		return cmp, err
	}
	if err := WarmUp(gen, ds, p.K, 4); err != nil {
		return cmp, err
	}
	if cmp.GenSearch, err = RunSearch(gen, ds, p.K); err != nil {
		return cmp, err
	}
	return cmp, nil
}
