package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vecstudy/internal/dataset"
)

// RunSearch runs every query of the dataset through the index and
// reports mean latency and recall@k. Ground truth must already be
// computed when recall is wanted (otherwise Recall is -1).
func RunSearch(ix Index, ds *dataset.Dataset, k int) (SearchResult, error) {
	res := SearchResult{Engine: ix.Engine(), Kind: ix.Kind(), NQ: ds.NQ(), Recall: -1}
	results := make([][]int64, ds.NQ())
	start := time.Now()
	for q := 0; q < ds.NQ(); q++ {
		ids, err := ix.Search(ds.Queries.Row(q), k)
		if err != nil {
			return res, fmt.Errorf("core: query %d: %w", q, err)
		}
		results[q] = ids
	}
	res.Total = time.Since(start)
	res.AvgLatency = res.Total / time.Duration(ds.NQ())
	if len(ds.GroundTruth) > 0 {
		res.Recall = ds.Recall(results, k)
	}
	return res, nil
}

// WarmUp runs a handful of queries without measuring, so the paper's
// methodology (warm caches, then average) is honoured.
func WarmUp(ix Index, ds *dataset.Dataset, k, n int) error {
	if n > ds.NQ() {
		n = ds.NQ()
	}
	for q := 0; q < n; q++ {
		if _, err := ix.Search(ds.Queries.Row(q), k); err != nil {
			return err
		}
	}
	return nil
}

// ConcurrentResult reports a multi-client search workload: the
// inter-query scaling numbers the paper never measures (its experiments
// are all single-query), and the metric that the buffer-pool
// partitioning exists to improve.
type ConcurrentResult struct {
	Clients int
	Queries int // total across all clients
	Wall    time.Duration
	QPS     float64
	P50     time.Duration
	P99     time.Duration
}

// RunConcurrent drives an arbitrary per-request operation from clients
// goroutines, each issuing perClient sequential requests, and reports
// aggregate QPS plus per-request latency percentiles. op(c, i) runs
// request i of client c; the in-process and remote QPS benchmarks share
// this driver so their numbers are directly comparable.
func RunConcurrent(clients, perClient int, op func(c, i int) error) (ConcurrentResult, error) {
	res := ConcurrentResult{Clients: clients, Queries: clients * perClient}
	if clients < 1 || perClient < 1 {
		return res, fmt.Errorf("core: concurrent run needs clients and queries >= 1")
	}
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if err := op(c, i); err != nil {
					errs[c] = fmt.Errorf("core: client %d request %d: %w", c, i, err)
					return
				}
				own = append(own, time.Since(t0))
			}
			lats[c] = own
		}(c)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	all := make([]time.Duration, 0, res.Queries)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.QPS = float64(len(all)) / res.Wall.Seconds()
	res.P50 = percentile(all, 0.50)
	res.P99 = percentile(all, 0.99)
	return res, nil
}

// RunSearchConcurrent drives the index from clients goroutines, each
// issuing perClient top-k searches round-robin over the dataset's query
// set. The index is shared: this measures inter-query concurrency
// (buffer pool contention included), not intra-query threading.
func RunSearchConcurrent(ix Index, ds *dataset.Dataset, k, clients, perClient int) (ConcurrentResult, error) {
	return RunConcurrent(clients, perClient, func(c, i int) error {
		q := (c*perClient + i) % ds.NQ()
		_, err := ix.Search(ds.Queries.Row(q), k)
		return err
	})
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Comparison pairs the two engines' results for one experiment cell.
type Comparison struct {
	Dataset     string
	Kind        IndexKind
	Specialized BuildResult
	Generalized BuildResult
	SpecSearch  SearchResult
	GenSearch   SearchResult
}

// BuildGapX returns how many times slower the generalized build was.
func (c Comparison) BuildGapX() float64 { return Gap(c.Specialized.Total, c.Generalized.Total) }

// SearchGapX returns how many times slower the generalized search was.
func (c Comparison) SearchGapX() float64 { return Gap(c.SpecSearch.Total, c.GenSearch.Total) }

// SizeGapX returns how many times larger the generalized index was.
func (c Comparison) SizeGapX() float64 {
	if c.Specialized.SizeBytes <= 0 {
		return 0
	}
	return float64(c.Generalized.SizeBytes) / float64(c.Specialized.SizeBytes)
}

// CompareBoth builds the same index kind in both engines, runs the same
// search workload, and returns the paired results. This one call is the
// spine of Figs 3, 5, 7, 11–14, 16, 17.
func CompareBoth(kind IndexKind, ds *dataset.Dataset, p Params) (Comparison, error) {
	cmp := Comparison{Dataset: ds.Name, Kind: kind}

	spec, sb, err := BuildSpecialized(kind, ds, p)
	if err != nil {
		return cmp, fmt.Errorf("core: specialized build: %w", err)
	}
	defer spec.Close()
	cmp.Specialized = sb

	gen, gb, err := BuildGeneralized(kind, ds, p)
	if err != nil {
		return cmp, fmt.Errorf("core: generalized build: %w", err)
	}
	defer gen.Close()
	cmp.Generalized = gb

	if err := WarmUp(spec, ds, p.K, 4); err != nil {
		return cmp, err
	}
	if cmp.SpecSearch, err = RunSearch(spec, ds, p.K); err != nil {
		return cmp, err
	}
	if err := WarmUp(gen, ds, p.K, 4); err != nil {
		return cmp, err
	}
	if cmp.GenSearch, err = RunSearch(gen, ds, p.K); err != nil {
		return cmp, err
	}
	return cmp, nil
}
