// Package core is the study itself as a library: it builds the same
// index (IVF_FLAT, IVF_PQ, or HNSW) with the same parameters in both
// engines — the specialized in-memory engine (internal/faiss/...) and the
// generalized PostgreSQL-style engine (internal/pase/... over
// internal/pg/...) — runs identical workloads against them, and reports
// build time, index size, search latency, and recall side by side.
//
// Every root cause the paper isolates is a field of Params, so each
// experiment is "flip one toggle, rerun, compare":
//
//	RC#1 UseGemm         RC#5 KMeansFlavor
//	RC#2 (inherent in engine choice)
//	RC#3 BuildThreads / SearchThreads
//	RC#4 PageSize        RC#6 (inherent in engine choice)
//	RC#7 PrecomputeTable
package core

import (
	"fmt"
	"time"

	"vecstudy/internal/dataset"
	"vecstudy/internal/kmeans"
	"vecstudy/internal/prof"
)

// IndexKind selects one of the paper's three index families.
type IndexKind string

// The three index families of Sec II-B.
const (
	IVFFlat IndexKind = "ivf_flat"
	IVFPQ   IndexKind = "ivf_pq"
	HNSW    IndexKind = "hnsw"
)

// Engine identifies which side of the comparison an index belongs to.
type Engine string

// The engines under study.
const (
	// Specialized is the Faiss-analog in-memory engine.
	Specialized Engine = "specialized"
	// Generalized is the PASE-analog engine on the PostgreSQL substrate.
	Generalized Engine = "generalized"
	// GeneralizedBaseline is the pgvector-style sibling used in Fig 2.
	GeneralizedBaseline Engine = "generalized_baseline"
)

// Params carries the paper's Table II parameters plus the root-cause
// toggles. Zero values select the paper defaults (resolved against the
// dataset by Resolve).
type Params struct {
	K      int     // top-k (default 100, clamped to n/10 at tiny scales)
	C      int     // IVF clusters (default √n)
	NProbe int     // probed clusters (default 20)
	SR     float64 // K-means sampling ratio (default 0.01, floored by trainer)
	M      int     // IVF_PQ sub-vectors (default from the dataset profile)
	KSub   int     // PQ codewords (default 256, clamped at tiny scale)
	BNN    int     // HNSW base neighbor count (default 16)
	EFB    int     // HNSW build queue (default 40)
	EFS    int     // HNSW search queue (default 200)
	Seed   int64

	// Root-cause toggles (specialized engine; the generalized engine is
	// always the PASE configuration).
	UseGemm         bool          // RC#1 (default true on specialized)
	BuildThreads    int           // RC#3 build (default 1, the paper's default)
	SearchThreads   int           // RC#3 search (default 1)
	KMeansFlavor    kmeans.Flavor // RC#5 (specialized default FlavorFaiss)
	PrecomputeTable bool          // RC#7 (default true on specialized)

	// Generalized-engine substrate knobs.
	PageSize     int // RC#4 (default 8192)
	BufferFrames int // default sized to hold the whole index
	// BufferPartitions splits the buffer pool PostgreSQL-style; 0 means 1
	// — the paper-faithful single global lock, so every RC#2/RC#3
	// experiment reproduces the paper's serialization unchanged. The
	// concurrent-query benchmark raises it (e.g. to 16) to measure
	// inter-query scaling.
	BufferPartitions int
	// ExtraAMOpts merges additional WITH-options into the generalized
	// CREATE INDEX (e.g. packed=true for the memory-optimized HNSW
	// layout ablation).
	ExtraAMOpts map[string]string

	Prof *prof.Profile
}

// Defaults returns the paper's default parameters (Table II) resolved for
// a dataset: c = √n, k = min(100, n/10), PQ m from the profile.
func Defaults(ds *dataset.Dataset) Params {
	p := Params{
		K:      100,
		C:      ds.NumClusters(),
		NProbe: 20,
		SR:     0.01,
		M:      16,
		KSub:   256,
		BNN:    16,
		EFB:    40,
		EFS:    200,
		Seed:   42,

		UseGemm:         true,
		BuildThreads:    1,
		SearchThreads:   1,
		KMeansFlavor:    kmeans.FlavorFaiss,
		PrecomputeTable: true,
		PageSize:        8192,
	}
	if prof, err := dataset.ProfileByName(ds.Name); err == nil {
		p.M = prof.PQM
	}
	if p.K > ds.N()/10 {
		p.K = ds.N() / 10
	}
	if p.K < 1 {
		p.K = 1
	}
	// At laptop scale a 256-codeword codebook cannot train on n/√n-sized
	// buckets; shrink codebooks when the dataset is small, preserving the
	// paper's configuration at full scale.
	if ds.N() < 100_000 {
		p.KSub = 64
	}
	return p
}

// BuildResult reports one index construction (Figs 3–7, 11–13).
type BuildResult struct {
	Engine    Engine
	Kind      IndexKind
	TrainTime time.Duration // quantizer training phase (IVF kinds)
	AddTime   time.Duration // adding phase
	Total     time.Duration
	SizeBytes int64
	N         int
}

// String renders the result the way the paper's bar charts are labeled.
func (r BuildResult) String() string {
	return fmt.Sprintf("%s/%s: total=%v train=%v add=%v size=%.1fMB",
		r.Engine, r.Kind, r.Total.Round(time.Millisecond),
		r.TrainTime.Round(time.Millisecond), r.AddTime.Round(time.Millisecond),
		float64(r.SizeBytes)/(1<<20))
}

// SearchResult reports a query workload (Figs 14–19).
type SearchResult struct {
	Engine     Engine
	Kind       IndexKind
	AvgLatency time.Duration // mean per-query latency
	Total      time.Duration
	Recall     float64 // recall@k against brute-force ground truth
	NQ         int
}

// String renders the result compactly.
func (r SearchResult) String() string {
	return fmt.Sprintf("%s/%s: avg=%v recall@k=%.3f (%d queries)",
		r.Engine, r.Kind, r.AvgLatency.Round(time.Microsecond), r.Recall, r.NQ)
}

// Index is the engine-neutral handle the harness searches through: it
// returns dataset row IDs, resolving TIDs through the heap table on the
// generalized side exactly as the SQL executor would.
type Index interface {
	Engine() Engine
	Kind() IndexKind
	// Search returns the IDs of the k nearest rows, ascending by distance.
	Search(query []float32, k int) ([]int64, error)
	// SizeBytes reports the index footprint.
	SizeBytes() int64
	// Close releases resources (the generalized side owns a database).
	Close() error
}

// Gap returns b/a as a human-scale ratio ("PASE is Gap× slower").
func Gap(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return float64(b) / float64(a)
}
