// AVX2 squared-L2 kernel and CPUID feature probes. See
// kernel_avx2_amd64.go for the dispatch rules and the parity contract:
// this routine's reduction order is fixed (four YMM accumulators summed
// pairwise, then a horizontal add), so for a given length the result is
// deterministic, and sub-then-square makes it sign-symmetric bitwise.

#include "textflag.h"

// func l2sqrAVX2(x, y *float32, n int) float32
// n must be a positive multiple of 8.
TEXT ·l2sqrAVX2(SB), NOSPLIT, $0-28
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop32:
	CMPQ CX, $32
	JLT  loop8
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VSUBPS  (DI), Y4, Y4
	VSUBPS  32(DI), Y5, Y5
	VSUBPS  64(DI), Y6, Y6
	VSUBPS  96(DI), Y7, Y7
	VMULPS  Y4, Y4, Y4
	VMULPS  Y5, Y5, Y5
	VMULPS  Y6, Y6, Y6
	VMULPS  Y7, Y7, Y7
	VADDPS  Y4, Y0, Y0
	VADDPS  Y5, Y1, Y1
	VADDPS  Y6, Y2, Y2
	VADDPS  Y7, Y3, Y3
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $32, CX
	JMP     loop32

loop8:
	CMPQ CX, $8
	JLT  reduce
	VMOVUPS (SI), Y4
	VSUBPS  (DI), Y4, Y4
	VMULPS  Y4, Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JMP     loop8

reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func l2sqrSQ8AVX2(q *float32, code *byte, mn, st *float32, n int) float32
// n must be a positive multiple of 8. Computes Σ (q_i − (mn_i + st_i·c_i))²
// with the byte decode done in-register: VPMOVZXBD widens 8 codes to
// dwords, VCVTDQ2PS converts to floats, then two fused chains — decode
// is st·c+mn (VFMADD132PS) and accumulation is acc += d·d (VFMADD231PS),
// which is why the feature probe requires FMA alongside AVX2. Four YMM
// accumulators (32 elements in flight) summed pairwise at the end, so
// the reduction order is a pure function of the length, matching this
// kernel's determinism contract.
TEXT ·l2sqrSQ8AVX2(SB), NOSPLIT, $0-44
	MOVQ q+0(FP), SI
	MOVQ code+8(FP), DX
	MOVQ mn+16(FP), R8
	MOVQ st+24(FP), R9
	MOVQ n+32(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

sq8loop32:
	CMPQ CX, $32
	JLT  sq8loop8
	VPMOVZXBD (DX), Y4
	VPMOVZXBD 8(DX), Y5
	VPMOVZXBD 16(DX), Y6
	VPMOVZXBD 24(DX), Y7
	VCVTDQ2PS Y4, Y4
	VCVTDQ2PS Y5, Y5
	VCVTDQ2PS Y6, Y6
	VCVTDQ2PS Y7, Y7
	VMOVUPS   (R8), Y8
	VMOVUPS   32(R8), Y9
	VMOVUPS   64(R8), Y10
	VMOVUPS   96(R8), Y11
	VFMADD132PS (R9), Y8, Y4
	VFMADD132PS 32(R9), Y9, Y5
	VFMADD132PS 64(R9), Y10, Y6
	VFMADD132PS 96(R9), Y11, Y7
	VMOVUPS   (SI), Y8
	VMOVUPS   32(SI), Y9
	VMOVUPS   64(SI), Y10
	VMOVUPS   96(SI), Y11
	VSUBPS    Y4, Y8, Y8
	VSUBPS    Y5, Y9, Y9
	VSUBPS    Y6, Y10, Y10
	VSUBPS    Y7, Y11, Y11
	VFMADD231PS Y8, Y8, Y0
	VFMADD231PS Y9, Y9, Y1
	VFMADD231PS Y10, Y10, Y2
	VFMADD231PS Y11, Y11, Y3
	ADDQ      $32, DX
	ADDQ      $128, SI
	ADDQ      $128, R8
	ADDQ      $128, R9
	SUBQ      $32, CX
	JMP       sq8loop32

sq8loop8:
	CMPQ CX, $8
	JLT  sq8reduce
	VPMOVZXBD (DX), Y4
	VCVTDQ2PS Y4, Y4
	VMOVUPS   (R8), Y8
	VFMADD132PS (R9), Y8, Y4
	VMOVUPS   (SI), Y8
	VSUBPS    Y4, Y8, Y8
	VFMADD231PS Y8, Y8, Y0
	ADDQ      $8, DX
	ADDQ      $32, SI
	ADDQ      $32, R8
	ADDQ      $32, R9
	SUBQ      $8, CX
	JMP       sq8loop8

sq8reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+40(FP)
	RET

// func l2sqrSQ8BatchAVX2(q *float32, codes [][]byte, mn, st *float32, d int, out *float32)
// d must be a positive multiple of 8; every code must hold ≥ d bytes
// (the Go shim enforces both). The per-code body is instruction-for-
// instruction the solo l2sqrSQ8AVX2 loop, so out[i] is bit-identical to
// the solo call — the L2SqrSQ8Batch parity contract. Batching exists to
// amortize the call overhead (asm entry, horizontal reduce, VZEROUPPER)
// across a page of candidates: VZEROUPPER runs once per batch, not once
// per code.
TEXT ·l2sqrSQ8BatchAVX2(SB), NOSPLIT, $0-64
	MOVQ q+0(FP), R13
	MOVQ codes_base+8(FP), R10
	MOVQ codes_len+16(FP), R11
	MOVQ mn+32(FP), R14
	MOVQ st+40(FP), BX
	MOVQ d+48(FP), AX
	MOVQ out+56(FP), R12

sq8batchloop:
	TESTQ R11, R11
	JE    sq8batchdone
	MOVQ  (R10), DX // codes[i] data pointer (slice header stride 24)
	MOVQ  R13, SI
	MOVQ  R14, R8
	MOVQ  BX, R9
	MOVQ  AX, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

sq8batch32:
	CMPQ CX, $32
	JLT  sq8batch8
	VPMOVZXBD (DX), Y4
	VPMOVZXBD 8(DX), Y5
	VPMOVZXBD 16(DX), Y6
	VPMOVZXBD 24(DX), Y7
	VCVTDQ2PS Y4, Y4
	VCVTDQ2PS Y5, Y5
	VCVTDQ2PS Y6, Y6
	VCVTDQ2PS Y7, Y7
	VMOVUPS   (R8), Y8
	VMOVUPS   32(R8), Y9
	VMOVUPS   64(R8), Y10
	VMOVUPS   96(R8), Y11
	VFMADD132PS (R9), Y8, Y4
	VFMADD132PS 32(R9), Y9, Y5
	VFMADD132PS 64(R9), Y10, Y6
	VFMADD132PS 96(R9), Y11, Y7
	VMOVUPS   (SI), Y8
	VMOVUPS   32(SI), Y9
	VMOVUPS   64(SI), Y10
	VMOVUPS   96(SI), Y11
	VSUBPS    Y4, Y8, Y8
	VSUBPS    Y5, Y9, Y9
	VSUBPS    Y6, Y10, Y10
	VSUBPS    Y7, Y11, Y11
	VFMADD231PS Y8, Y8, Y0
	VFMADD231PS Y9, Y9, Y1
	VFMADD231PS Y10, Y10, Y2
	VFMADD231PS Y11, Y11, Y3
	ADDQ      $32, DX
	ADDQ      $128, SI
	ADDQ      $128, R8
	ADDQ      $128, R9
	SUBQ      $32, CX
	JMP       sq8batch32

sq8batch8:
	CMPQ CX, $8
	JLT  sq8batchreduce
	VPMOVZXBD (DX), Y4
	VCVTDQ2PS Y4, Y4
	VMOVUPS   (R8), Y8
	VFMADD132PS (R9), Y8, Y4
	VMOVUPS   (SI), Y8
	VSUBPS    Y4, Y8, Y8
	VFMADD231PS Y8, Y8, Y0
	ADDQ      $8, DX
	ADDQ      $32, SI
	ADDQ      $32, R8
	ADDQ      $32, R9
	SUBQ      $8, CX
	JMP       sq8batch8

sq8batchreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	MOVSS X0, (R12)
	ADDQ  $24, R10
	ADDQ  $4, R12
	DECQ  R11
	JMP   sq8batchloop

sq8batchdone:
	VZEROUPPER
	RET

// func dotSQ8BatchAVX2(w *float32, codes [][]byte, d int, out *float32)
// d must be a positive multiple of 8; every code must hold ≥ d bytes
// (the Go shim enforces both). Per code: Σ w_j·float32(c_j) with the
// decode fused into the accumulate — VPMOVZXBD widen, VCVTDQ2PS
// convert, then a single VFMADD231PS against w straight from memory.
// Three instructions per 8 lanes is the whole point of the decomposed
// scan: the subtract/decode work of the full asymmetric form moves out
// of the per-candidate loop into precomputed norms. Four accumulator
// chains, pairwise reduce, one VZEROUPPER for the whole batch.
TEXT ·dotSQ8BatchAVX2(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), R13
	MOVQ codes_base+8(FP), R10
	MOVQ codes_len+16(FP), R11
	MOVQ d+32(FP), AX
	MOVQ out+40(FP), R12

dotbatchloop:
	TESTQ R11, R11
	JE    dotbatchdone
	MOVQ  (R10), DX // codes[i] data pointer (slice header stride 24)
	MOVQ  R13, SI
	MOVQ  AX, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dotbatch32:
	CMPQ CX, $32
	JLT  dotbatch8
	VPMOVZXBD (DX), Y4
	VPMOVZXBD 8(DX), Y5
	VPMOVZXBD 16(DX), Y6
	VPMOVZXBD 24(DX), Y7
	VCVTDQ2PS Y4, Y4
	VCVTDQ2PS Y5, Y5
	VCVTDQ2PS Y6, Y6
	VCVTDQ2PS Y7, Y7
	VFMADD231PS (SI), Y4, Y0
	VFMADD231PS 32(SI), Y5, Y1
	VFMADD231PS 64(SI), Y6, Y2
	VFMADD231PS 96(SI), Y7, Y3
	ADDQ      $32, DX
	ADDQ      $128, SI
	SUBQ      $32, CX
	JMP       dotbatch32

dotbatch8:
	CMPQ CX, $8
	JLT  dotbatchreduce
	VPMOVZXBD (DX), Y4
	VCVTDQ2PS Y4, Y4
	VFMADD231PS (SI), Y4, Y0
	ADDQ      $8, DX
	ADDQ      $32, SI
	SUBQ      $8, CX
	JMP       dotbatch8

dotbatchreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	MOVSS X0, (R12)
	ADDQ  $24, R10
	ADDQ  $4, R12
	DECQ  R11
	JMP   dotbatchloop

dotbatchdone:
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
